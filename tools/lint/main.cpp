// pem_lint CLI.
//
//   pem_lint [--root=DIR] [--list-rules] [--rule=a,b] [--exclude-rule=c]
//            [files...]
//
// With no file operands, walks src/, tests/, bench/ and examples/
// under --root (default: cwd).  Prints `file:line: rule-id: message`
// per finding.  Exit 0 = clean, 1 = findings, 2 = usage/IO error.
#include <cstdio>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "lint.h"

namespace {

bool TakeValue(const std::string& arg, const char* flag, std::string* out) {
  const std::string prefix = std::string(flag) + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *out = arg.substr(prefix.size());
  return true;
}

void SplitIds(const std::string& csv, std::set<std::string>* out) {
  size_t start = 0;
  while (start <= csv.size()) {
    size_t comma = csv.find(',', start);
    if (comma == std::string::npos) comma = csv.size();
    if (comma > start) out->insert(csv.substr(start, comma - start));
    start = comma + 1;
  }
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: pem_lint [--root=DIR] [--list-rules] [--rule=ids]\n"
      "                [--exclude-rule=ids] [files...]\n"
      "\n"
      "Checks PEM project invariants over src/, tests/, bench/ and\n"
      "examples/ (or just the listed repo-relative files).  Suppress a\n"
      "single finding with `// pem-lint: allow(rule-id)` on or above\n"
      "the offending line.\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::set<std::string> only, exclude;
  std::vector<std::string> files;
  bool list_rules = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (TakeValue(arg, "--root", &value)) {
      root = value;
    } else if (arg == "--list-rules") {
      list_rules = true;
    } else if (TakeValue(arg, "--rule", &value)) {
      SplitIds(value, &only);
    } else if (TakeValue(arg, "--exclude-rule", &value)) {
      SplitIds(value, &exclude);
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "pem_lint: unknown flag '%s'\n", arg.c_str());
      return Usage();
    } else {
      files.push_back(arg);
    }
  }

  const pem::lint::Registry registry = pem::lint::MakeDefaultRegistry();

  if (list_rules) {
    for (const auto& rule : registry.rules()) {
      std::printf("%-26s %s\n", std::string(rule->id()).c_str(),
                  std::string(rule->description()).c_str());
    }
    return 0;
  }

  for (const std::set<std::string>* ids : {&only, &exclude}) {
    for (const std::string& id : *ids) {
      if (registry.Find(id) == nullptr) {
        std::fprintf(stderr, "pem_lint: unknown rule '%s' (--list-rules)\n",
                     id.c_str());
        return 2;
      }
    }
  }

  try {
    if (files.empty()) files = pem::lint::WalkTree(root);
    const std::vector<pem::lint::Finding> findings =
        pem::lint::RunLint(root, files, registry, only, exclude);
    for (const pem::lint::Finding& f : findings) {
      std::printf("%s:%d: %s: %s\n", f.file.c_str(), f.line, f.rule.c_str(),
                  f.message.c_str());
    }
    if (!findings.empty()) {
      std::fprintf(stderr, "pem_lint: %zu finding(s)\n", findings.size());
      return 1;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
  return 0;
}
