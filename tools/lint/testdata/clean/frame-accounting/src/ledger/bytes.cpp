// Fixture: FramedSize() and non-arithmetic mentions are fine.
#include "net/frame.h"

namespace pem::ledger {

size_t WireBytes(size_t payload) {
  return pem::net::FramedSize(payload);
}

bool IsHeaderOnly(size_t n) {
  return n == pem::net::kFrameHeaderBytes;  // comparison, not arithmetic
}

}  // namespace pem::ledger
