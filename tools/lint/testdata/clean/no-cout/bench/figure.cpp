// Fixture: bench binaries own stdout — std::cout is their job.
#include <iostream>

int main() {
  std::cout << "transport,bytes,ms\n";
  return 0;
}
