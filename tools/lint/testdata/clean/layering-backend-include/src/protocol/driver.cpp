// Fixture: protocol code on the abstract net surface only.
#include "net/agent_supervisor.h"
#include "net/frame.h"
#include "net/message.h"
#include "net/serialize.h"
#include "net/transport.h"

namespace pem::protocol {
void Drive() {}
}  // namespace pem::protocol
