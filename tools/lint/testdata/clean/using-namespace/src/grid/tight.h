// Fixture: using-declarations and aliases are fine in headers (they
// name one thing); only the directive is banned.  A .cpp directive is
// also fine — this rule is header-only.
#pragma once

#include <vector>

namespace pem::grid {

using Cells = std::vector<int>;
using std::vector;  // declaration, not directive

struct Tight {
  Cells cells;
};

}  // namespace pem::grid
