// Fixture: every creation requests CLOEXEC atomically, plus one
// deliberate inline suppression proving the escape hatch works.
#include <fcntl.h>
#include <sys/epoll.h>
#include <sys/socket.h>

namespace pem::net {

void Listen() {
  int s = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  int fds[2];
  socketpair(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0, fds);
  int c = accept4(s, nullptr, nullptr, SOCK_CLOEXEC);
  int ep = epoll_create1(EPOLL_CLOEXEC);
  int f = open("/dev/null", O_RDONLY | O_CLOEXEC);
  // This fd is handed to an inherited-stdio child on purpose.
  int g = open("/dev/null", O_RDONLY);  // pem-lint: allow(fd-cloexec)
  (void)c;
  (void)ep;
  (void)f;
  (void)g;
}

}  // namespace pem::net
