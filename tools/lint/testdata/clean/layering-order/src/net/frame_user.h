// Fixture: net including sideways (net) and downward (util) only.
#pragma once

#include <cstdint>

#include "net/frame.h"
#include "util/error.h"

namespace pem::net {
struct FrameUser {};
}  // namespace pem::net
