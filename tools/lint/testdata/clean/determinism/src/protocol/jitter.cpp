// Fixture: deterministic protocol code.  Mentions of std::rand and
// system_clock in comments or strings must not fire, and C++14 digit
// separators must not open a char literal that swallows the rest of
// the file.
#include "crypto/rng.h"

namespace pem::protocol {

// The old code used std::rand() and system_clock; both are banned now.
int Jitter(pem::crypto::Rng& rng) {
  const char* msg = "do not call std::rand or time() here";
  constexpr int kBudget = 120'000;  // digit separator, not a char
  (void)msg;
  return static_cast<int>(rng.NextU64() % kBudget);
}

}  // namespace pem::protocol
