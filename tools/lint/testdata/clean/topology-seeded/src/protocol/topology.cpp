// Fixture: elections keyed off a MixSeed-style side stream only — the
// plan never names ProtocolContext or a ctx handle (mentions in
// comments and strings, like these, must not fire).
#include "crypto/rng.h"

namespace pem::protocol {

size_t ElectLeader(uint64_t level_seed, uint64_t ring_index, size_t m) {
  const char* note = "never draw from ctx.rng in plan code";
  (void)note;
  crypto::DeterministicRng side(level_seed ^
                                (ring_index * 0x9e37'79b9'7f4a'7c15ULL));
  return static_cast<size_t>(side.NextU64() % m);
}

}  // namespace pem::protocol
