// Fixture: member calls spelled like syscalls are not syscalls — the
// rule must only fire on free calls.  (Declaring a method named send()
// outside src/net/ still fires, deliberately: a token linter cannot
// tell `void send(int)` from `return send(fd)`, and such names are
// banned-by-confusion anyway.)
#include "util/error.h"

namespace pem::market {

struct Pipe;

void Route(Pipe& p, Pipe* q) {
  p.send(1);      // member call, fine
  q->write(2);    // member call, fine
  q->recv(3);     // member call, fine
  // A comment saying send(fd) must not fire either.
  const char* s = "neither does recv( in a string";
  (void)s;
}

}  // namespace pem::market
