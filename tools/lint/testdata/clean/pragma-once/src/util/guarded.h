// Fixture: the pragma does not have to be line 1 — long file comments
// (the house style) push it down, and the rule must still see it.
//
// More prose, to make sure the scan is not a head-of-file check.
#pragma once

#include <cstdint>

namespace pem::util {
struct Guarded {
  uint32_t v = 0;
};
}  // namespace pem::util
