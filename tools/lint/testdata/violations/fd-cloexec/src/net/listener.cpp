// Fixture: descriptor creation without CLOEXEC in src/net/.
#include <fcntl.h>
#include <sys/epoll.h>
#include <sys/socket.h>

namespace pem::net {

void Listen() {
  int s = socket(AF_INET, SOCK_STREAM, 0);          // finding
  int fds[2];
  socketpair(AF_UNIX, SOCK_STREAM, 0, fds);         // finding
  int c = accept(s, nullptr, nullptr);              // finding (use accept4)
  int ep = epoll_create1(0);                        // finding
  int f = open("/dev/null", O_RDONLY);              // finding
  (void)c;
  (void)ep;
  (void)f;
}

}  // namespace pem::net
