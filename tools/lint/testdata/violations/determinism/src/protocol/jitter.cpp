// Fixture: every banned nondeterminism source in transcript code.
#include <chrono>
#include <cstdlib>
#include <random>
#include <thread>

namespace pem::protocol {

int Jitter() {
  std::random_device rd;                                    // finding
  int x = std::rand();                                      // finding
  auto now = std::chrono::system_clock::now();              // finding
  std::this_thread::sleep_for(std::chrono::seconds(1));     // finding
  long t = time(nullptr);                                   // finding
  (void)now;
  return x + static_cast<int>(rd()) + static_cast<int>(t);
}

}  // namespace pem::protocol
