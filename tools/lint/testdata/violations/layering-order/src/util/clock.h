// Fixture: util (bottom layer) reaching up into net and protocol.
#pragma once

#include "net/transport.h"    // finding: util must not include net
#include "protocol/party.h"   // finding: util must not include protocol
#include "util/error.h"

namespace pem::util {
struct Clock {};
}  // namespace pem::util
