// Fixture: raw wire syscalls outside src/net/ bypass the ledger.
#include <sys/socket.h>
#include <unistd.h>

namespace pem::market {

void Leak(int fd, const void* buf) {
  send(fd, buf, 8, 0);       // finding
  recv(fd, nullptr, 0, 0);   // finding
  write(fd, buf, 8);         // finding
}

}  // namespace pem::market
