// Fixture: std::cout from library code.
#include <iostream>

namespace pem::util {

void Report(int n) {
  std::cout << "n=" << n << "\n";  // finding
}

}  // namespace pem::util
