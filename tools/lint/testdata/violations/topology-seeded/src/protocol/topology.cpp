// Fixture: plan code reaching for the protocol RNG carrier.  A draw
// through ctx here would shift every agent's randomness schedule
// whenever the plan shape changes, breaking flat/hierarchical
// bit-identity.
#include "crypto/rng.h"

namespace pem::protocol {

struct ProtocolContext;  // finding: naming the carrier at all

size_t ElectLeader(ProtocolContext& ctx, size_t ring_size);  // two findings

}  // namespace pem::protocol
