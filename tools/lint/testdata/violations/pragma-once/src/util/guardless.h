// Fixture: header with no include guard of any kind.  finding
#include <cstdint>

namespace pem::util {
struct Guardless {
  uint32_t v = 0;
};
}  // namespace pem::util
