// Fixture: using-directive in a header.
#pragma once

#include <vector>

using namespace std;  // finding

namespace pem::grid {
struct Leaky {
  vector<int> cells;
};
}  // namespace pem::grid
