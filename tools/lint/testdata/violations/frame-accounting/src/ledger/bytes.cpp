// Fixture: hand-rolled framed-size arithmetic outside net/frame.*.
#include "net/frame.h"

namespace pem::ledger {

size_t WireBytes(size_t payload) {
  return pem::net::kFrameHeaderBytes + payload;  // finding
}

}  // namespace pem::ledger
