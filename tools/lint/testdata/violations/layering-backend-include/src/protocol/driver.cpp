// Fixture: protocol code naming concrete net backends.
#include "net/process_transport.h"  // finding: concrete backend
#include "net/relay_util.h"         // finding: concrete backend
#include "net/transport.h"          // abstract surface, fine

namespace pem::protocol {
void Drive() {}
}  // namespace pem::protocol
