#include "lint.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace pem::lint {
namespace {

bool IsIdentChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

// Blanks comments, string literals and char literals to spaces,
// preserving newlines (and the quote delimiters themselves), so token
// scans and line numbers survive.  Handles escapes, raw strings
// (R"delim(...)delim") and C++14 digit separators (1'000 — a quote
// directly after an identifier/digit character is NOT a char literal).
std::string BlankNonCode(const std::string& raw) {
  std::string out = raw;
  enum class State { kCode, kLine, kBlock, kString, kChar, kRawString };
  State st = State::kCode;
  std::string raw_delim;  // for kRawString: the ")delim" terminator
  char prev_code = '\0';  // last significant char seen in kCode
  for (size_t i = 0; i < raw.size(); ++i) {
    const char c = raw[i];
    const char next = i + 1 < raw.size() ? raw[i + 1] : '\0';
    switch (st) {
      case State::kCode:
        if (c == '/' && next == '/') {
          st = State::kLine;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          st = State::kBlock;
          out[i] = ' ';
        } else if (c == '"') {
          // R"..( raw string?  Allow u8R / uR / UR / LR prefixes.
          size_t r = i;
          while (r > 0 && IsIdentChar(raw[r - 1])) --r;
          const std::string_view prefix(raw.data() + r, i - r);
          const bool is_raw = !prefix.empty() && prefix.back() == 'R' &&
                              prefix.size() <= 3;
          if (is_raw) {
            size_t p = i + 1;
            std::string delim;
            while (p < raw.size() && raw[p] != '(') delim += raw[p++];
            raw_delim = ")" + delim + "\"";
            st = State::kRawString;
            i = p;  // sits on '('; contents blank from i+1
          } else {
            st = State::kString;
          }
        } else if (c == '\'' && !IsIdentChar(prev_code)) {
          st = State::kChar;
        }
        if (st == State::kCode && c != ' ' && c != '\t') prev_code = c;
        break;
      case State::kLine:
        if (c == '\n') {
          st = State::kCode;
          prev_code = '\0';
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlock:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          st = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
        if (c == '\\' && next != '\0') {
          out[i] = ' ';
          if (next != '\n') out[i + 1] = ' ';
          ++i;
        } else if (c == '"') {
          st = State::kCode;
          prev_code = '"';
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\' && next != '\0') {
          out[i] = ' ';
          if (next != '\n') out[i + 1] = ' ';
          ++i;
        } else if (c == '\'') {
          st = State::kCode;
          prev_code = '\'';
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kRawString:
        if (raw.compare(i, raw_delim.size(), raw_delim) == 0) {
          i += raw_delim.size() - 1;  // keep the closing quote visible
          st = State::kCode;
          prev_code = '"';
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::string cur;
  for (const char c : text) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) lines.push_back(cur);
  return lines;
}

// `   #  include "target"` on a code (non-comment) line.
bool IsIncludeLine(const std::string& code_line) {
  size_t i = 0;
  while (i < code_line.size() &&
         (code_line[i] == ' ' || code_line[i] == '\t')) {
    ++i;
  }
  if (i >= code_line.size() || code_line[i] != '#') return false;
  ++i;
  while (i < code_line.size() &&
         (code_line[i] == ' ' || code_line[i] == '\t')) {
    ++i;
  }
  return code_line.compare(i, 7, "include") == 0;
}

}  // namespace

bool TokenAt(std::string_view code, size_t pos, std::string_view token) {
  if (pos + token.size() > code.size()) return false;
  if (code.compare(pos, token.size(), token) != 0) return false;
  // The token may itself start/end with non-ident chars (e.g.
  // "std::rand"); boundaries only matter where the token edge is an
  // identifier character.
  if (IsIdentChar(token.front()) && pos > 0 && IsIdentChar(code[pos - 1])) {
    return false;
  }
  const size_t end = pos + token.size();
  if (IsIdentChar(token.back()) && end < code.size() &&
      IsIdentChar(code[end])) {
    return false;
  }
  return true;
}

size_t FindToken(std::string_view code, std::string_view token, size_t from) {
  for (size_t pos = code.find(token, from); pos != std::string_view::npos;
       pos = code.find(token, pos + 1)) {
    if (TokenAt(code, pos, token)) return pos;
  }
  return std::string_view::npos;
}

int LineOfOffset(std::string_view text, size_t pos) {
  return 1 + static_cast<int>(
                 std::count(text.begin(),
                            text.begin() + static_cast<ptrdiff_t>(
                                               std::min(pos, text.size())),
                            '\n'));
}

bool SourceFile::Suppressed(std::string_view rule, int line) const {
  const auto line_allows = [&](int l) {
    if (l < 1 || l > static_cast<int>(raw_lines.size())) return false;
    const std::string& text = raw_lines[static_cast<size_t>(l - 1)];
    const size_t tag = text.find("pem-lint: allow(");
    if (tag == std::string::npos) return false;
    const size_t open = text.find('(', tag);
    const size_t close = text.find(')', open);
    if (close == std::string::npos) return false;
    // allow(a, b) — any listed id suppresses its rule.
    std::string inner = text.substr(open + 1, close - open - 1);
    size_t start = 0;
    while (start <= inner.size()) {
      size_t comma = inner.find(',', start);
      if (comma == std::string::npos) comma = inner.size();
      std::string id = inner.substr(start, comma - start);
      id.erase(0, id.find_first_not_of(" \t"));
      const size_t last = id.find_last_not_of(" \t");
      if (last != std::string::npos) id.erase(last + 1);
      if (id == rule) return true;
      start = comma + 1;
    }
    return false;
  };
  return line_allows(line) || line_allows(line - 1);
}

void Registry::Add(std::unique_ptr<Rule> rule) {
  rules_.push_back(std::move(rule));
}

const Rule* Registry::Find(std::string_view id) const {
  for (const auto& r : rules_) {
    if (r->id() == id) return r.get();
  }
  return nullptr;
}

SourceFile LoadSourceFile(const std::filesystem::path& abs,
                          std::string rel_path) {
  std::ifstream in(abs, std::ios::binary);
  if (!in) {
    throw std::runtime_error("pem-lint: cannot read " + abs.string());
  }
  std::ostringstream buf;
  buf << in.rdbuf();

  SourceFile f;
  f.path = std::move(rel_path);
  std::replace(f.path.begin(), f.path.end(), '\\', '/');
  f.raw = buf.str();
  f.code = BlankNonCode(f.raw);
  f.raw_lines = SplitLines(f.raw);
  f.code_lines = SplitLines(f.code);
  f.is_header = f.path.size() >= 2 &&
                f.path.compare(f.path.size() - 2, 2, ".h") == 0;
  for (size_t i = 0; i < f.code_lines.size(); ++i) {
    if (!IsIncludeLine(f.code_lines[i])) continue;
    // The include target is a literal, so it survives only in raw.
    const std::string& raw_line = f.raw_lines[i];
    const size_t q1 = raw_line.find('"');
    if (q1 == std::string::npos) continue;  // <system> include
    const size_t q2 = raw_line.find('"', q1 + 1);
    if (q2 == std::string::npos) continue;
    f.includes.push_back(raw_line.substr(q1 + 1, q2 - q1 - 1));
    f.include_lines.push_back(static_cast<int>(i + 1));
  }
  return f;
}

std::vector<std::string> WalkTree(const std::filesystem::path& root) {
  namespace fs = std::filesystem;
  std::vector<std::string> out;
  for (const char* top : {"src", "tests", "bench", "examples"}) {
    const fs::path dir = root / top;
    if (!fs::is_directory(dir)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".h" && ext != ".cpp" && ext != ".cc") continue;
      out.push_back(fs::relative(entry.path(), root).generic_string());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Finding> RunLint(const std::filesystem::path& root,
                             const std::vector<std::string>& rel_files,
                             const Registry& registry,
                             const std::set<std::string>& only,
                             const std::set<std::string>& exclude) {
  std::vector<Finding> findings;
  for (const std::string& rel : rel_files) {
    const SourceFile file = LoadSourceFile(root / rel, rel);
    for (const auto& rule : registry.rules()) {
      const std::string id(rule->id());
      if (!only.empty() && only.count(id) == 0) continue;
      if (exclude.count(id) != 0) continue;
      std::vector<Finding> raw;
      rule->Check(file, &raw);
      for (Finding& f : raw) {
        if (file.Suppressed(f.rule, f.line)) continue;
        findings.push_back(std::move(f));
      }
    }
  }
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return findings;
}

}  // namespace pem::lint
