// pem-lint: project-invariant static analysis for the PEM engine.
//
// The engine's correctness story rests on invariants no compiler
// checks: the wire transcript must be policy-invariant (so protocol and
// crypto code must never touch nondeterministic APIs), Table-I bytes
// may only be accounted through FramedSize, five fork-based transports
// depend on strict fd hygiene, and the layer order
// util -> crypto/net -> market -> protocol -> ledger -> core must hold
// or the transport abstraction quietly erodes.  PRs 1-6 enforce these
// dynamically (parity matrix, sanitizers, fault walls); pem_lint makes
// them statically enforceable on every commit.
//
// Deliberately token/include-graph based — no libclang, no compiler
// dependency — so it builds and runs everywhere the engine does.  Each
// rule is registered by id, reports `file:line: rule-id: message`
// findings, and can be suppressed at a single site with an inline
//   // pem-lint: allow(rule-id)
// comment on the finding line or the line directly above it.
#pragma once

#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace pem::lint {

// One rule violation at one source location.
struct Finding {
  std::string file;  // repo-relative path, '/'-separated
  int line = 0;      // 1-based
  std::string rule;
  std::string message;
};

// A scanned file, preprocessed once and shared by every rule.
//
// `code` is `raw` with every comment, string literal and char literal
// blanked to spaces (newlines kept), so token scans never trip over
// error-message strings or prose in comments; byte offsets and line
// numbers are identical between the two views.  Suppression comments
// are naturally invisible in `code` — Suppressed() reads `raw`.
struct SourceFile {
  std::string path;  // repo-relative, '/'-separated
  std::string raw;
  std::string code;
  std::vector<std::string> raw_lines;
  std::vector<std::string> code_lines;
  // #include "..." targets with their 1-based lines, in file order.
  std::vector<std::string> includes;
  std::vector<int> include_lines;
  bool is_header = false;

  // True when line `line` (or the line above it) carries an inline
  // `pem-lint: allow(rule)` suppression naming `rule`.
  bool Suppressed(std::string_view rule, int line) const;

  bool PathStartsWith(std::string_view prefix) const {
    return path.rfind(prefix, 0) == 0;
  }
};

// A named, suppressible project-invariant check.
class Rule {
 public:
  virtual ~Rule() = default;
  virtual std::string_view id() const = 0;
  virtual std::string_view description() const = 0;
  // Appends findings for `file`; suppression filtering happens in the
  // driver, not here.
  virtual void Check(const SourceFile& file,
                     std::vector<Finding>* out) const = 0;
};

// Pluggable rule registry: rules register by id; the CLI's --rule /
// --exclude-rule select among them.
class Registry {
 public:
  void Add(std::unique_ptr<Rule> rule);
  const std::vector<std::unique_ptr<Rule>>& rules() const { return rules_; }
  const Rule* Find(std::string_view id) const;

 private:
  std::vector<std::unique_ptr<Rule>> rules_;
};

// The project rule set (rules.cpp).
Registry MakeDefaultRegistry();

// --- engine -----------------------------------------------------------

// Loads + preprocesses one file.  `rel_path` is the path findings will
// carry; `abs` is where the bytes live.
SourceFile LoadSourceFile(const std::filesystem::path& abs,
                          std::string rel_path);

// Repo-relative .h/.cpp/.cc paths under root's src/, tests/, bench/
// and examples/ trees (whichever exist), sorted.  tools/ is excluded
// on purpose: the lint fixture corpus contains deliberate violations.
std::vector<std::string> WalkTree(const std::filesystem::path& root);

// Runs every selected rule over every file; returns surviving findings
// (suppressed ones dropped) sorted by file/line/rule.  `only` empty
// means all rules; `exclude` wins over `only`.
std::vector<Finding> RunLint(const std::filesystem::path& root,
                             const std::vector<std::string>& rel_files,
                             const Registry& registry,
                             const std::set<std::string>& only,
                             const std::set<std::string>& exclude);

// --- shared token helpers (used by rules.cpp and tests) ---------------

// True when code[pos] starts identifier token `token` with non-ident
// characters (or string edges) on both sides.
bool TokenAt(std::string_view code, size_t pos, std::string_view token);

// Finds the next whole-token occurrence of `token` at or after `from`;
// npos when absent.
size_t FindToken(std::string_view code, std::string_view token,
                 size_t from = 0);

// 1-based line number of byte offset `pos` in `text`.
int LineOfOffset(std::string_view text, size_t pos);

}  // namespace pem::lint
