// The PEM project rule set.  Each rule encodes one invariant the test
// wall checks dynamically (or cannot check at all) and makes it a
// compile-gate: determinism of the wire transcript, the layer DAG, the
// net abstraction boundary, fd hygiene across five fork-based
// transports, Table-I byte accounting, and plain header hygiene.
#include <array>
#include <initializer_list>
#include <map>

#include "lint.h"

namespace pem::lint {
namespace {

// Directory component after src/ ("net" for src/net/frame.h); empty
// for files not under src/ or sitting directly in src/ (pem.h — the
// umbrella API header, exempt from layering).
std::string SrcModule(const std::string& path) {
  if (path.rfind("src/", 0) != 0) return "";
  const size_t slash = path.find('/', 4);
  if (slash == std::string::npos) return "";
  return path.substr(4, slash - 4);
}

void Report(const SourceFile& f, int line, std::string_view rule,
            std::string message, std::vector<Finding>* out) {
  out->push_back(Finding{f.path, line, std::string(rule), std::move(message)});
}

// --- determinism ------------------------------------------------------
//
// The protocol transcript must be a pure function of seeds and inputs:
// the parity matrix (tests/net, tests/protocol) diffs transcripts
// byte-for-byte across six transports, and any wall-clock or ambient
// randomness in src/protocol/ or src/crypto/ would fork them.  All
// randomness flows through crypto/rng.h (seeded, deterministic).
class DeterminismRule final : public Rule {
 public:
  std::string_view id() const override { return "determinism"; }
  std::string_view description() const override {
    return "src/protocol/ and src/crypto/ must not use ambient randomness "
           "or wall-clock time (std::rand, random_device, time(), "
           "system_clock, sleep)";
  }
  void Check(const SourceFile& f, std::vector<Finding>* out) const override {
    if (!f.PathStartsWith("src/protocol/") && !f.PathStartsWith("src/crypto/"))
      return;
    static constexpr std::array<std::string_view, 8> kBanned = {
        "std::rand",    "random_device", "time(",
        "system_clock", "sleep(",        "usleep(",
        "nanosleep(",   "sleep_for",
    };
    for (const std::string_view token : kBanned) {
      for (size_t pos = FindToken(f.code, token);
           pos != std::string_view::npos;
           pos = FindToken(f.code, token, pos + 1)) {
        Report(f, LineOfOffset(f.code, pos), id(),
               "nondeterministic API '" + std::string(token) +
                   "' in transcript-bearing code; use crypto/rng.h",
               out);
      }
    }
  }
};

// --- layering-order ---------------------------------------------------
//
// The module DAG, derived from the tree and now frozen:
//   util -> {crypto, net, grid} -> market -> protocol -> ledger -> core
// Each module lists the modules it may include from.  src/pem.h is the
// public umbrella and may include anything.
class LayeringOrderRule final : public Rule {
 public:
  std::string_view id() const override { return "layering-order"; }
  std::string_view description() const override {
    return "src/ modules may only include downward in the layer DAG "
           "util -> crypto/net/grid -> market -> protocol -> ledger -> core";
  }
  void Check(const SourceFile& f, std::vector<Finding>* out) const override {
    static const std::map<std::string, std::set<std::string>> kAllowed = {
        {"util", {"util"}},
        {"net", {"net", "util"}},
        {"crypto", {"crypto", "net", "util"}},
        {"grid", {"grid", "util"}},
        {"market", {"market", "grid", "util"}},
        {"protocol", {"protocol", "crypto", "net", "market", "grid", "util"}},
        {"ledger",
         {"ledger", "protocol", "crypto", "net", "market", "grid", "util"}},
        {"core",
         {"core", "ledger", "protocol", "crypto", "net", "market", "grid",
          "util"}},
    };
    const std::string mod = SrcModule(f.path);
    if (mod.empty()) return;  // pem.h umbrella / non-src file
    const auto it = kAllowed.find(mod);
    if (it == kAllowed.end()) {
      Report(f, 1, id(), "module '" + mod + "' is not in the layer DAG", out);
      return;
    }
    for (size_t i = 0; i < f.includes.size(); ++i) {
      const std::string& inc = f.includes[i];
      const size_t slash = inc.find('/');
      if (slash == std::string::npos) continue;  // same-dir or system
      const std::string target = inc.substr(0, slash);
      if (kAllowed.count(target) == 0) continue;  // not a module path
      if (it->second.count(target) == 0) {
        Report(f, f.include_lines[i], id(),
               "layer '" + mod + "' must not include upward from '" + target +
                   "' (\"" + inc + "\")",
               out);
      }
    }
  }
};

// --- layering-backend-include -----------------------------------------
//
// Protocol and crypto code speak to the network only through the
// abstract surface; the moment they name a concrete backend header the
// six-backend parity guarantee stops being a property of the type
// system.
class BackendIncludeRule final : public Rule {
 public:
  std::string_view id() const override { return "layering-backend-include"; }
  std::string_view description() const override {
    return "src/protocol/ and src/crypto/ may include only net's abstract "
           "surface (transport/message/frame/serialize/agent_supervisor), "
           "never a concrete backend header";
  }
  void Check(const SourceFile& f, std::vector<Finding>* out) const override {
    if (!f.PathStartsWith("src/protocol/") && !f.PathStartsWith("src/crypto/"))
      return;
    static const std::set<std::string> kAbstract = {
        "net/transport.h", "net/message.h", "net/frame.h", "net/serialize.h",
        "net/agent_supervisor.h"};
    for (size_t i = 0; i < f.includes.size(); ++i) {
      const std::string& inc = f.includes[i];
      if (inc.rfind("net/", 0) != 0) continue;
      if (kAbstract.count(inc) != 0) continue;
      Report(f, f.include_lines[i], id(),
             "concrete net backend header \"" + inc +
                 "\" included from transcript-layer code; use the abstract "
                 "surface (net/transport.h et al.)",
             out);
    }
  }
};

// --- raw-syscall ------------------------------------------------------
//
// Every wire byte must cross a Transport (so the TrafficLedger's
// Table-I accounting sees it).  Raw send()/recv()/write() outside
// src/net/ bypasses the ledger.  Tests may drive sockets directly to
// provoke byte-level faults, so the rule scopes to src/.
class RawSyscallRule final : public Rule {
 public:
  std::string_view id() const override { return "raw-syscall"; }
  std::string_view description() const override {
    return "raw send()/recv()/write() calls are confined to src/net/ — "
           "everything else goes through a Transport";
  }
  void Check(const SourceFile& f, std::vector<Finding>* out) const override {
    if (!f.PathStartsWith("src/") || f.PathStartsWith("src/net/")) return;
    for (const std::string_view token : {"send(", "recv(", "write("}) {
      for (size_t pos = FindToken(f.code, token);
           pos != std::string_view::npos;
           pos = FindToken(f.code, token, pos + 1)) {
        // Method calls (bus.send(...), out->write(...)) are not the
        // syscall; FindToken already rejects tokens glued to an
        // identifier (ReadRecord( vs read(), so only check . and ->.
        if (pos > 0 && (f.code[pos - 1] == '.' ||
                        (pos > 1 && f.code[pos - 2] == '-' &&
                         f.code[pos - 1] == '>'))) {
          continue;
        }
        Report(f, LineOfOffset(f.code, pos), id(),
               "raw '" + std::string(token.substr(0, token.size() - 1)) +
                   "()' outside src/net/ bypasses TrafficLedger accounting",
               out);
      }
    }
  }
};

// --- fd-cloexec -------------------------------------------------------
//
// Five transports fork; a future launcher will exec.  Every descriptor
// created in src/net/ must request CLOEXEC at creation (no fcntl
// afterthoughts — those race with concurrent fork) or carry an explicit
// suppression.  accept() can never be fixed in place: accept4() is the
// only atomic form.
class FdCloexecRule final : public Rule {
 public:
  std::string_view id() const override { return "fd-cloexec"; }
  std::string_view description() const override {
    return "fd creation in src/net/ (socket/socketpair/accept/open/"
           "epoll_create*) must request CLOEXEC atomically";
  }
  void Check(const SourceFile& f, std::vector<Finding>* out) const override {
    if (!f.PathStartsWith("src/net/")) return;
    for (const std::string_view token :
         {"socket(", "socketpair(", "open(", "epoll_create(",
          "epoll_create1("}) {
      for (size_t pos = FindToken(f.code, token);
           pos != std::string_view::npos;
           pos = FindToken(f.code, token, pos + 1)) {
        if (pos > 0 && (f.code[pos - 1] == '.' ||
                        (pos > 1 && f.code[pos - 2] == '-' &&
                         f.code[pos - 1] == '>'))) {
          continue;  // method, not syscall
        }
        // Scan the statement (to the terminating ';') for a CLOEXEC
        // request.
        const size_t end = f.code.find(';', pos);
        const std::string_view stmt(
            f.code.data() + pos,
            (end == std::string::npos ? f.code.size() : end) - pos);
        if (stmt.find("CLOEXEC") != std::string_view::npos) continue;
        Report(f, LineOfOffset(f.code, pos), id(),
               "'" + std::string(token.substr(0, token.size() - 1)) +
                   "()' without SOCK_CLOEXEC/O_CLOEXEC/EPOLL_CLOEXEC leaks "
                   "the fd across a future exec()",
               out);
      }
    }
    // accept() never takes a CLOEXEC flag; accept4() does.
    for (size_t pos = FindToken(f.code, "accept(");
         pos != std::string_view::npos;
         pos = FindToken(f.code, "accept(", pos + 1)) {
      if (pos > 0 && (f.code[pos - 1] == '.' ||
                      (pos > 1 && f.code[pos - 2] == '-' &&
                       f.code[pos - 1] == '>'))) {
        continue;
      }
      Report(f, LineOfOffset(f.code, pos), id(),
             "accept() cannot set CLOEXEC atomically; use "
             "accept4(..., SOCK_CLOEXEC)",
             out);
    }
  }
};

// --- frame-accounting -------------------------------------------------
//
// Table-I message bytes are FramedSize(payload) — computed in ONE
// place.  A bare `kFrameHeaderBytes +` arithmetic expression elsewhere
// is a hand-rolled copy of that formula waiting to drift.
class FrameAccountingRule final : public Rule {
 public:
  std::string_view id() const override { return "frame-accounting"; }
  std::string_view description() const override {
    return "frame-size arithmetic (kFrameHeaderBytes + ...) lives in "
           "net/frame.* only; use FramedSize()";
  }
  void Check(const SourceFile& f, std::vector<Finding>* out) const override {
    if (f.path == "src/net/frame.h" || f.path == "src/net/frame.cpp") return;
    for (size_t pos = FindToken(f.code, "kFrameHeaderBytes");
         pos != std::string_view::npos;
         pos = FindToken(f.code, "kFrameHeaderBytes", pos + 1)) {
      // Only arithmetic re-derivations are findings; comparisons and
      // plain mentions (buffer sizing against the constant) are fine.
      size_t next = pos + std::string_view("kFrameHeaderBytes").size();
      while (next < f.code.size() &&
             (f.code[next] == ' ' || f.code[next] == '\t')) {
        ++next;
      }
      if (next >= f.code.size() || f.code[next] != '+') continue;
      Report(f, LineOfOffset(f.code, pos), id(),
             "hand-rolled framed-size arithmetic; call FramedSize() so "
             "Table-I accounting has one definition",
             out);
    }
  }
};

// --- pragma-once ------------------------------------------------------
class PragmaOnceRule final : public Rule {
 public:
  std::string_view id() const override { return "pragma-once"; }
  std::string_view description() const override {
    return "every header carries #pragma once";
  }
  void Check(const SourceFile& f, std::vector<Finding>* out) const override {
    if (!f.is_header) return;
    for (const std::string& line : f.code_lines) {
      size_t i = line.find_first_not_of(" \t");
      if (i != std::string::npos && line.compare(i, 1, "#") == 0 &&
          line.find("pragma", i) != std::string::npos &&
          line.find("once", i) != std::string::npos) {
        return;
      }
    }
    Report(f, 1, id(), "header is missing #pragma once", out);
  }
};

// --- using-namespace --------------------------------------------------
class UsingNamespaceRule final : public Rule {
 public:
  std::string_view id() const override { return "using-namespace"; }
  std::string_view description() const override {
    return "headers must not contain using-directives (using namespace)";
  }
  void Check(const SourceFile& f, std::vector<Finding>* out) const override {
    if (!f.is_header) return;
    for (size_t pos = FindToken(f.code, "using namespace");
         pos != std::string_view::npos;
         pos = FindToken(f.code, "using namespace", pos + 1)) {
      Report(f, LineOfOffset(f.code, pos), id(),
             "using-directive in a header leaks into every includer", out);
    }
  }
};

// --- no-cout ----------------------------------------------------------
//
// Library code reports through util/logging.h and structured errors;
// stray std::cout in src/ or tests/ corrupts bench CSV output and
// interleaves across forked agents.
class NoCoutRule final : public Rule {
 public:
  std::string_view id() const override { return "no-cout"; }
  std::string_view description() const override {
    return "std::cout is reserved for bench/, examples/ and tools/; "
           "library code uses util/logging.h";
  }
  void Check(const SourceFile& f, std::vector<Finding>* out) const override {
    if (f.PathStartsWith("bench/") || f.PathStartsWith("examples/") ||
        f.PathStartsWith("tools/")) {
      return;
    }
    for (size_t pos = FindToken(f.code, "std::cout");
         pos != std::string_view::npos;
         pos = FindToken(f.code, "std::cout", pos + 1)) {
      Report(f, LineOfOffset(f.code, pos), id(),
             "std::cout outside bench/examples/tools; use util/logging.h",
             out);
    }
  }
};

// --- topology-seeded --------------------------------------------------
//
// Plan construction (leader election especially) must draw only from
// MixSeed-derived side streams keyed by (seed, window, level, ring) —
// never the protocol RNG or its carrier.  A ctx.rng draw inside
// Build() would shift every agent's randomness schedule whenever the
// plan shape changes, destroying the flat/hierarchical bit-identity
// the six-backend parity row asserts.  Statically: topology sources
// must not name ProtocolContext (or a `ctx` handle) at all.
class TopologySeededRule final : public Rule {
 public:
  std::string_view id() const override { return "topology-seeded"; }
  std::string_view description() const override {
    return "src/protocol/topology.* draws only from MixSeed side streams — "
           "it must not name ProtocolContext or a ctx handle";
  }
  void Check(const SourceFile& f, std::vector<Finding>* out) const override {
    if (f.path != "src/protocol/topology.h" &&
        f.path != "src/protocol/topology.cpp") {
      return;
    }
    for (const std::string_view token : {"ProtocolContext", "ctx"}) {
      for (size_t pos = FindToken(f.code, token);
           pos != std::string_view::npos;
           pos = FindToken(f.code, token, pos + 1)) {
        Report(f, LineOfOffset(f.code, pos), id(),
               "'" + std::string(token) +
                   "' in topology plan code; elections draw from MixSeed "
                   "side streams only, so planning cannot shift the "
                   "protocol RNG schedule",
               out);
      }
    }
  }
};

}  // namespace

Registry MakeDefaultRegistry() {
  Registry r;
  r.Add(std::make_unique<DeterminismRule>());
  r.Add(std::make_unique<LayeringOrderRule>());
  r.Add(std::make_unique<BackendIncludeRule>());
  r.Add(std::make_unique<RawSyscallRule>());
  r.Add(std::make_unique<FdCloexecRule>());
  r.Add(std::make_unique<FrameAccountingRule>());
  r.Add(std::make_unique<PragmaOnceRule>());
  r.Add(std::make_unique<UsingNamespaceRule>());
  r.Add(std::make_unique<NoCoutRule>());
  r.Add(std::make_unique<TopologySeededRule>());
  return r;
}

}  // namespace pem::lint
