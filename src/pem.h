// Umbrella header: the PEM public API.
//
// Downstream users link against the `pem` CMake target and include
// this single header; fine-grained headers remain available for users
// who want only a substrate (e.g. crypto/paillier.h).
#pragma once

// Market model (plaintext oracle, incentives, parameters).
#include "market/baseline.h"
#include "market/clearing.h"
#include "market/incentives.h"
#include "market/params.h"
#include "market/stackelberg.h"

// Cryptographic substrate.
#include "crypto/bigint.h"
#include "crypto/circuit.h"
#include "crypto/commitment.h"
#include "crypto/garble.h"
#include "crypto/hash.h"
#include "crypto/modp_group.h"
#include "crypto/ot.h"
#include "crypto/paillier.h"
#include "crypto/rng.h"
#include "crypto/secure_compare.h"

// Networking and grid simulation.
#include "grid/battery.h"
#include "grid/load_model.h"
#include "grid/solar.h"
#include "grid/trace.h"
#include "grid/types.h"
#include "net/bus.h"
#include "net/concurrent_bus.h"
#include "net/frame.h"
#include "net/message.h"
#include "net/serialize.h"
#include "net/socket_transport.h"
#include "net/transport.h"

// The privacy-preserving protocols and the simulation driver.
#include "core/simulation.h"
#include "ledger/settlement.h"
#include "protocol/pem_protocol.h"
#include "protocol/topology.h"
#include "protocol/verifiable.h"
