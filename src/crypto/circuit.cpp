#include "crypto/circuit.h"

namespace pem::crypto {

size_t Circuit::AndGateCount() const {
  size_t n = 0;
  for (const Gate& g : gates) {
    if (g.type == GateType::kAnd) ++n;
  }
  return n;
}

std::vector<bool> Circuit::EvalPlain(
    const std::vector<bool>& garbler_bits,
    const std::vector<bool>& evaluator_bits) const {
  PEM_CHECK(garbler_bits.size() == garbler_inputs.size(),
            "garbler input size mismatch");
  PEM_CHECK(evaluator_bits.size() == evaluator_inputs.size(),
            "evaluator input size mismatch");
  std::vector<bool> wires(static_cast<size_t>(num_wires), false);
  for (size_t i = 0; i < garbler_inputs.size(); ++i) {
    wires[static_cast<size_t>(garbler_inputs[i])] = garbler_bits[i];
  }
  for (size_t i = 0; i < evaluator_inputs.size(); ++i) {
    wires[static_cast<size_t>(evaluator_inputs[i])] = evaluator_bits[i];
  }
  for (const Gate& g : gates) {
    const bool a = wires[static_cast<size_t>(g.a)];
    switch (g.type) {
      case GateType::kXor:
        wires[static_cast<size_t>(g.out)] =
            a ^ wires[static_cast<size_t>(g.b)];
        break;
      case GateType::kAnd:
        wires[static_cast<size_t>(g.out)] =
            a && wires[static_cast<size_t>(g.b)];
        break;
      case GateType::kNot:
        wires[static_cast<size_t>(g.out)] = !a;
        break;
    }
  }
  std::vector<bool> out;
  out.reserve(outputs.size());
  for (int32_t w : outputs) out.push_back(wires[static_cast<size_t>(w)]);
  return out;
}

CircuitBuilder::CircuitBuilder(int garbler_bits, int evaluator_bits) {
  PEM_CHECK(garbler_bits >= 0 && evaluator_bits >= 0, "negative bundle size");
  for (int i = 0; i < garbler_bits; ++i) garbler_in_.push_back(NewWire());
  for (int i = 0; i < evaluator_bits; ++i) evaluator_in_.push_back(NewWire());
}

int32_t CircuitBuilder::NewWire() { return next_wire_++; }

int32_t CircuitBuilder::Emit(GateType t, int32_t a, int32_t b) {
  PEM_CHECK(!built_, "builder already finalized");
  PEM_CHECK(a >= 0 && a < next_wire_, "bad wire a");
  PEM_CHECK(t == GateType::kNot || (b >= 0 && b < next_wire_), "bad wire b");
  const int32_t out = NewWire();
  gates_.push_back(Gate{t, a, b, out});
  return out;
}

int32_t CircuitBuilder::Xor(int32_t a, int32_t b) {
  return Emit(GateType::kXor, a, b);
}
int32_t CircuitBuilder::And(int32_t a, int32_t b) {
  return Emit(GateType::kAnd, a, b);
}
int32_t CircuitBuilder::Not(int32_t a) { return Emit(GateType::kNot, a, -1); }

int32_t CircuitBuilder::Or(int32_t a, int32_t b) {
  return Xor(Xor(a, b), And(a, b));
}

int32_t CircuitBuilder::Xnor(int32_t a, int32_t b) { return Not(Xor(a, b)); }

int32_t CircuitBuilder::Mux(int32_t sel, int32_t t, int32_t f) {
  // f ^ (sel & (t ^ f))
  return Xor(f, And(sel, Xor(t, f)));
}

void CircuitBuilder::MarkOutput(int32_t wire) {
  PEM_CHECK(wire >= 0 && wire < next_wire_, "bad output wire");
  outputs_.push_back(wire);
}

Circuit CircuitBuilder::Build() {
  PEM_CHECK(!built_, "builder already finalized");
  built_ = true;
  Circuit c;
  c.num_wires = next_wire_;
  c.garbler_inputs = garbler_in_;
  c.evaluator_inputs = evaluator_in_;
  c.outputs = std::move(outputs_);
  c.gates = std::move(gates_);
  return c;
}

Circuit BuildLessThanCircuit(int bits) {
  PEM_CHECK(bits >= 1 && bits <= 64, "bits in [1,64]");
  CircuitBuilder b(bits, bits);
  const auto& a_in = b.garbler_inputs();
  const auto& b_in = b.evaluator_inputs();
  // LSB-up recurrence: lt' = (a_i ^ b_i) ? b_i : lt
  //   x  = a_i ^ b_i
  //   t1 = x & b_i          (a_i < b_i at this bit)
  //   t2 = ~x & lt          (bits equal: carry previous result)
  //   lt' = t1 ^ t2         (disjoint cases)
  int32_t lt = -1;
  for (int i = 0; i < bits; ++i) {
    const int32_t x = b.Xor(a_in[static_cast<size_t>(i)],
                            b_in[static_cast<size_t>(i)]);
    const int32_t t1 = b.And(x, b_in[static_cast<size_t>(i)]);
    if (lt < 0) {
      lt = t1;
    } else {
      const int32_t t2 = b.And(b.Not(x), lt);
      lt = b.Xor(t1, t2);
    }
  }
  b.MarkOutput(lt);
  return b.Build();
}

Circuit BuildEqualityCircuit(int bits) {
  PEM_CHECK(bits >= 1 && bits <= 64, "bits in [1,64]");
  CircuitBuilder b(bits, bits);
  const auto& a_in = b.garbler_inputs();
  const auto& b_in = b.evaluator_inputs();
  int32_t eq = -1;
  for (int i = 0; i < bits; ++i) {
    const int32_t bit_eq = b.Xnor(a_in[static_cast<size_t>(i)],
                                  b_in[static_cast<size_t>(i)]);
    eq = (eq < 0) ? bit_eq : b.And(eq, bit_eq);
  }
  b.MarkOutput(eq);
  return b.Build();
}

Circuit BuildAdderCircuit(int bits) {
  PEM_CHECK(bits >= 1 && bits <= 64, "bits in [1,64]");
  CircuitBuilder b(bits, bits);
  const auto& a_in = b.garbler_inputs();
  const auto& b_in = b.evaluator_inputs();
  int32_t carry = -1;
  for (int i = 0; i < bits; ++i) {
    const int32_t ai = a_in[static_cast<size_t>(i)];
    const int32_t bi = b_in[static_cast<size_t>(i)];
    int32_t sum;
    if (carry < 0) {  // half adder at the LSB
      sum = b.Xor(ai, bi);
      carry = b.And(ai, bi);
    } else {
      const int32_t axc = b.Xor(ai, carry);
      const int32_t bxc = b.Xor(bi, carry);
      sum = b.Xor(axc, bi);
      // carry' = carry ^ ((a^carry) & (b^carry))
      carry = b.Xor(carry, b.And(axc, bxc));
    }
    b.MarkOutput(sum);
  }
  return b.Build();
}

Circuit BuildSubtractorCircuit(int bits) {
  PEM_CHECK(bits >= 1 && bits <= 64, "bits in [1,64]");
  CircuitBuilder b(bits, bits);
  const auto& a_in = b.garbler_inputs();
  const auto& b_in = b.evaluator_inputs();
  // a - b = a + ~b + 1: seed the ripple carry with 1 by treating the
  // LSB stage as a full adder with carry-in fixed to true:
  //   sum0   = a0 ^ ~b0 ^ 1     = a0 ^ b0
  //   carry0 = maj(a0, ~b0, 1)  = a0 | ~b0 = ~(~a0 & b0)
  int32_t carry = -1;
  for (int i = 0; i < bits; ++i) {
    const int32_t ai = a_in[static_cast<size_t>(i)];
    const int32_t nbi = b.Not(b_in[static_cast<size_t>(i)]);
    int32_t sum;
    if (carry < 0) {
      sum = b.Xor(ai, b_in[static_cast<size_t>(i)]);  // a ^ ~b ^ 1 = a ^ b
      carry = b.Not(b.And(b.Not(ai), b_in[static_cast<size_t>(i)]));
    } else {
      const int32_t axc = b.Xor(ai, carry);
      const int32_t bxc = b.Xor(nbi, carry);
      sum = b.Xor(axc, nbi);
      carry = b.Xor(carry, b.And(axc, bxc));
    }
    b.MarkOutput(sum);
  }
  return b.Build();
}

Circuit BuildMaxCircuit(int bits) {
  PEM_CHECK(bits >= 1 && bits <= 64, "bits in [1,64]");
  CircuitBuilder b(bits, bits);
  const auto& a_in = b.garbler_inputs();
  const auto& b_in = b.evaluator_inputs();
  // lt = [a < b], same LSB-up recurrence as BuildLessThanCircuit.
  int32_t lt = -1;
  for (int i = 0; i < bits; ++i) {
    const int32_t x = b.Xor(a_in[static_cast<size_t>(i)],
                            b_in[static_cast<size_t>(i)]);
    const int32_t t1 = b.And(x, b_in[static_cast<size_t>(i)]);
    lt = (lt < 0) ? t1 : b.Xor(t1, b.And(b.Not(x), lt));
  }
  // out_i = lt ? b_i : a_i
  for (int i = 0; i < bits; ++i) {
    b.MarkOutput(b.Mux(lt, b_in[static_cast<size_t>(i)],
                       a_in[static_cast<size_t>(i)]));
  }
  return b.Build();
}

std::vector<bool> ToBits(uint64_t v, int bits) {
  PEM_CHECK(bits >= 1 && bits <= 64, "bits in [1,64]");
  std::vector<bool> out(static_cast<size_t>(bits));
  for (int i = 0; i < bits; ++i) out[static_cast<size_t>(i)] = (v >> i) & 1;
  return out;
}

uint64_t FromBits(const std::vector<bool>& bits) {
  PEM_CHECK(bits.size() <= 64, "too many bits");
  uint64_t v = 0;
  for (size_t i = 0; i < bits.size(); ++i) {
    if (bits[i]) v |= (1ull << i);
  }
  return v;
}

}  // namespace pem::crypto
