#include "crypto/commitment.h"

#include <cstring>

namespace pem::crypto {
namespace {

constexpr uint64_t kCommitTag = 0x5045'4D43'4D54ull;  // "PEMCMT"

}  // namespace

Commitment Commit(std::span<const uint8_t> value,
                  std::span<const uint8_t, 32> blinder) {
  return Commitment{Kdf2(kCommitTag, value, blinder)};
}

CommitmentOpening MakeOpening(std::span<const uint8_t> value, Rng& rng) {
  CommitmentOpening opening;
  opening.value.assign(value.begin(), value.end());
  rng.Fill(opening.blinder);
  return opening;
}

bool VerifyOpening(const Commitment& commitment,
                   const CommitmentOpening& opening) {
  return Commit(opening.value, opening.blinder) == commitment;
}

Commitment CommitInt64(int64_t value, std::span<const uint8_t, 32> blinder) {
  uint8_t bytes[8];
  std::memcpy(bytes, &value, 8);
  return Commit(bytes, blinder);
}

CommitmentOpening MakeInt64Opening(int64_t value, Rng& rng) {
  uint8_t bytes[8];
  std::memcpy(bytes, &value, 8);
  return MakeOpening(bytes, rng);
}

}  // namespace pem::crypto
