// RAII big-integer type over GMP's mpz_t.
//
// This is the arithmetic substrate for the Paillier cryptosystem and
// the MODP-group oblivious transfer.  The wrapper keeps GMP's C API out
// of the rest of the codebase and adds the pieces GMP does not ship:
// CSPRNG-driven uniform sampling and prime generation, and fixed-width
// big-endian serialization for the wire.
#pragma once

#include <gmp.h>

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "crypto/rng.h"

namespace pem::crypto {

class BigInt {
 public:
  BigInt() { mpz_init(z_); }
  BigInt(int64_t v) { mpz_init(z_); *this = v; }  // NOLINT(implicit)
  BigInt(const BigInt& o) { mpz_init_set(z_, o.z_); }
  BigInt(BigInt&& o) noexcept {
    mpz_init(z_);
    mpz_swap(z_, o.z_);
  }
  BigInt& operator=(const BigInt& o) {
    if (this != &o) mpz_set(z_, o.z_);
    return *this;
  }
  BigInt& operator=(BigInt&& o) noexcept {
    if (this != &o) mpz_swap(z_, o.z_);
    return *this;
  }
  BigInt& operator=(int64_t v);
  ~BigInt() { mpz_clear(z_); }

  // --- construction helpers -------------------------------------------
  static BigInt FromDecString(const std::string& s);
  static BigInt FromHexString(const std::string& s);
  // Big-endian, unsigned.
  static BigInt FromBytes(std::span<const uint8_t> bytes);

  // Uniform in [0, bound) via rejection sampling.  bound > 0.
  static BigInt RandomBelow(const BigInt& bound, Rng& rng);
  // Uniform with exactly `bits` bits (top bit set).
  static BigInt RandomBits(int bits, Rng& rng);
  // Random probable prime with exactly `bits` bits (top two bits set so
  // products of two such primes have exactly 2*bits bits).
  static BigInt RandomPrime(int bits, Rng& rng);

  // --- arithmetic ------------------------------------------------------
  BigInt operator+(const BigInt& o) const;
  BigInt operator-(const BigInt& o) const;
  BigInt operator*(const BigInt& o) const;
  BigInt operator/(const BigInt& o) const;  // floor division, o != 0
  BigInt operator%(const BigInt& o) const;  // non-negative remainder
  BigInt operator-() const;

  BigInt& operator+=(const BigInt& o);
  BigInt& operator-=(const BigInt& o);
  BigInt& operator*=(const BigInt& o);

  // Modular arithmetic (all mod > 0; results in [0, mod)).
  BigInt AddMod(const BigInt& o, const BigInt& mod) const;
  BigInt SubMod(const BigInt& o, const BigInt& mod) const;
  BigInt MulMod(const BigInt& o, const BigInt& mod) const;
  BigInt PowMod(const BigInt& exp, const BigInt& mod) const;
  // Returns inverse mod `mod`; aborts if not invertible (callers check
  // gcd first where the input is adversarial).
  BigInt InvMod(const BigInt& mod) const;
  bool IsInvertibleMod(const BigInt& mod) const;

  BigInt Gcd(const BigInt& o) const;
  BigInt Lcm(const BigInt& o) const;
  BigInt Abs() const;
  // Integer square root (floor).
  BigInt Sqrt() const;

  bool IsProbablePrime(int reps = 30) const;

  // --- comparisons -----------------------------------------------------
  int Compare(const BigInt& o) const { return mpz_cmp(z_, o.z_); }
  bool operator==(const BigInt& o) const { return Compare(o) == 0; }
  bool operator!=(const BigInt& o) const { return Compare(o) != 0; }
  bool operator<(const BigInt& o) const { return Compare(o) < 0; }
  bool operator<=(const BigInt& o) const { return Compare(o) <= 0; }
  bool operator>(const BigInt& o) const { return Compare(o) > 0; }
  bool operator>=(const BigInt& o) const { return Compare(o) >= 0; }

  bool IsZero() const { return mpz_sgn(z_) == 0; }
  bool IsNegative() const { return mpz_sgn(z_) < 0; }
  bool IsOdd() const { return mpz_odd_p(z_) != 0; }

  // --- conversions -----------------------------------------------------
  // Number of bits in |value| (0 for value 0).
  size_t BitLength() const;
  // Fits in int64 and returns it; aborts otherwise.
  int64_t ToInt64() const;
  bool FitsInt64() const;
  double ToDouble() const { return mpz_get_d(z_); }

  std::string ToDecString() const;
  std::string ToHexString() const;
  // Big-endian, minimal length (empty for 0).  Sign is NOT encoded.
  std::vector<uint8_t> ToBytes() const;
  // Big-endian, left-padded with zeros to `width` bytes.
  std::vector<uint8_t> ToBytesPadded(size_t width) const;

  // Escape hatch for GMP interop inside the crypto module.
  mpz_srcptr raw() const { return z_; }
  mpz_ptr raw() { return z_; }

 private:
  mpz_t z_;
};

}  // namespace pem::crypto
