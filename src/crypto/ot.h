// 1-out-of-2 oblivious transfer (semi-honest), Chou–Orlandi style over
// a MODP group.
//
// Sender holds (m0, m1); receiver holds choice bit c and learns m_c and
// nothing about m_{1-c}; sender learns nothing about c.  Used to deliver
// the evaluator's wire labels in the garbled-circuit secure comparison
// (Protocol 2, line 14).
//
// The API is message-passing friendly: each step produces the bytes to
// put on the wire, so the secure-comparison driver can route them
// through the bandwidth-accounted bus.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "crypto/bigint.h"
#include "crypto/modp_group.h"
#include "crypto/rng.h"

namespace pem::crypto {

// OT payloads are 16-byte strings (exactly one wire label).
using OtMessage = std::array<uint8_t, 16>;

class OtSender {
 public:
  OtSender(const ModpGroup& group, Rng& rng);

  // Round 1: A = g^a, sent to the receiver.
  std::vector<uint8_t> Round1();

  // Round 2: given the receiver's B, encrypt both messages.
  // Wire format: pad0 || pad1 (16 bytes each).
  std::vector<uint8_t> Round2(std::span<const uint8_t> receiver_b,
                              const OtMessage& m0, const OtMessage& m1) const;

 private:
  const ModpGroup& group_;
  BigInt a_;
  BigInt big_a_;  // g^a
};

class OtReceiver {
 public:
  OtReceiver(const ModpGroup& group, Rng& rng);

  // Round 1 response: B = g^b (c=0) or A * g^b (c=1).
  std::vector<uint8_t> Round1(std::span<const uint8_t> sender_a, bool choice);

  // Final: decrypt the chosen message from the sender's Round2 bytes.
  OtMessage Decrypt(std::span<const uint8_t> sender_round2) const;

 private:
  const ModpGroup& group_;
  BigInt b_;
  BigInt big_a_;  // sender's A
  bool choice_ = false;
};

}  // namespace pem::crypto
