#include "crypto/modp_group.h"

#include "util/error.h"

namespace pem::crypto {
namespace {

// RFC 3526 group 5 (1536-bit MODP).
constexpr const char* kModp1536Hex =
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD1"
    "29024E088A67CC74020BBEA63B139B22514A08798E3404DD"
    "EF9519B3CD3A431B302B0A6DF25F14374FE1356D6D51C245"
    "E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3D"
    "C2007CB8A163BF0598DA48361C55D39A69163FA8FD24CF5F"
    "83655D23DCA3AD961C62F356208552BB9ED529077096966D"
    "670C354E4ABC9804F1746C08CA237327FFFFFFFFFFFFFFFF";

// RFC 3526 group 14 (2048-bit MODP).
constexpr const char* kModp2048Hex =
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD1"
    "29024E088A67CC74020BBEA63B139B22514A08798E3404DD"
    "EF9519B3CD3A431B302B0A6DF25F14374FE1356D6D51C245"
    "E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3D"
    "C2007CB8A163BF0598DA48361C55D39A69163FA8FD24CF5F"
    "83655D23DCA3AD961C62F356208552BB9ED529077096966D"
    "670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B"
    "E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9"
    "DE2BCBF6955817183995497CEA956AE515D2261898FA0510"
    "15728E5A8AACAA68FFFFFFFFFFFFFFFF";

// RFC 2409 Oakley group 1 (768-bit MODP safe prime).  Fast enough for
// unit tests; too small for modern deployments.
constexpr const char* kModp768Hex =
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD1"
    "29024E088A67CC74020BBEA63B139B22514A08798E3404DD"
    "EF9519B3CD3A431B302B0A6DF25F14374FE1356D6D51C245"
    "E485B576625E7EC6F44C42E9A63A3620FFFFFFFFFFFFFFFF";

}  // namespace

ModpGroup::ModpGroup(const char* p_hex, int generator) {
  p_ = BigInt::FromHexString(p_hex);
  q_ = (p_ - BigInt(1)) / BigInt(2);
  // Use generator^2 so we generate the prime-order QR subgroup; for
  // RFC 3526 groups g=2 has order 2q, squaring gives order q.
  g_ = BigInt(generator).MulMod(BigInt(generator), p_);
  element_bytes_ = (p_.BitLength() + 7) / 8;
}

const ModpGroup& ModpGroup::Get(ModpGroupId id) {
  static const ModpGroup modp768(kModp768Hex, 2);
  static const ModpGroup modp1536(kModp1536Hex, 2);
  static const ModpGroup modp2048(kModp2048Hex, 2);
  switch (id) {
    case ModpGroupId::kModp768: return modp768;
    case ModpGroupId::kModp1536: return modp1536;
    case ModpGroupId::kModp2048: return modp2048;
  }
  PEM_CHECK(false, "unknown group id");
  __builtin_unreachable();
}

BigInt ModpGroup::RandomExponent(Rng& rng) const {
  for (;;) {
    BigInt e = BigInt::RandomBelow(q_, rng);
    if (!e.IsZero()) return e;
  }
}

}  // namespace pem::crypto
