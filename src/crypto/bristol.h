// Bristol-fashion circuit format (read/write).
//
// The paper builds its secure comparison on Fairplay, which compiles a
// high-level description into a gate list.  The de-facto successor
// interchange format is "Bristol fashion": a text header with gate and
// wire counts, the two parties' input widths and the output width,
// followed by one gate per line (XOR / AND / INV).  Supporting it lets
// this library consume circuits produced by external compilers (and
// export ours for cross-checking against other MPC stacks).
//
// Grammar (classic format):
//   <num_gates> <num_wires>
//   <garbler_inputs> <evaluator_inputs> <num_outputs>
//   <blank line>
//   2 1 <in_a> <in_b> <out> XOR|AND
//   1 1 <in> <out> INV
//
// Wires 0..garbler_inputs-1 are the garbler's, the next block the
// evaluator's, and the last <num_outputs> wires are the outputs.
#pragma once

#include <string>

#include "crypto/circuit.h"
#include "util/error.h"

namespace pem::crypto {

// Parses Bristol text.  Returns an error for malformed input (bad
// counts, unknown gate kinds, wire ids out of range, non-topological
// gate order).
Result<Circuit> ParseBristolCircuit(const std::string& text);

// Serializes a circuit to Bristol text.  Requires the circuit's
// outputs to be the last wires (true for CircuitBuilder products whose
// outputs are the final gates; checked at runtime).  Use
// RenumberForBristol first when they are not.
Result<std::string> WriteBristolCircuit(const Circuit& circuit);

// Permutes wire ids so the output wires become the last ones (the
// Bristol layout), preserving gate order and semantics.  Fails if an
// output is an input wire or listed twice (no identity gates are
// inserted).
Result<Circuit> RenumberForBristol(const Circuit& circuit);

}  // namespace pem::crypto
