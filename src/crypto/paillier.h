// Paillier cryptosystem (Paillier, Eurocrypt '99).
//
// The additively homomorphic building block of Protocols 2-4:
//   Enc(a) * Enc(b)  =  Enc(a + b)      (ciphertext multiplication)
//   Enc(a) ^ k       =  Enc(a * k)      (scalar exponentiation)
//
// Plaintexts live in Z_n; market quantities are signed fixed-point
// integers mapped into [0, n) with the upper half representing negative
// values.  Decryption uses the standard CRT acceleration (can be
// disabled for the ablation bench).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "crypto/bigint.h"
#include "crypto/rng.h"
#include "util/error.h"

namespace pem::net {
struct ExecutionPolicy;  // net/transport.h
}

namespace pem::crypto {

// A Paillier ciphertext: an element of Z_{n^2}.  Serialized as
// fixed-width big-endian bytes (2 * key_bytes).
struct PaillierCiphertext {
  BigInt value;

  bool operator==(const PaillierCiphertext& o) const { return value == o.value; }
};

class PaillierPublicKey {
 public:
  PaillierPublicKey() = default;
  PaillierPublicKey(BigInt n, int key_bits);

  // Encrypts m in [0, n).
  PaillierCiphertext Encrypt(const BigInt& m, Rng& rng) const;
  // Encrypts a signed 64-bit value using the half-range encoding.
  PaillierCiphertext EncryptSigned(int64_t v, Rng& rng) const;

  // Deterministic encryption with caller-supplied randomness r
  // (invertible mod n).  Used by the verifiable-contribution check
  // (re-encrypt and compare) and by the randomness pool.
  PaillierCiphertext EncryptWithRandomness(const BigInt& m,
                                           const BigInt& r) const;
  // Samples encryption randomness r: uniform in [1, n), invertible.
  // Cheap (no exponentiation) — protocol code draws r sequentially in
  // its prepare phase and defers the r^n work to EncryptWithRandomness
  // inside a compute-phase worker.
  BigInt SampleRandomness(Rng& rng) const;
  // The expensive half of encryption: r^n mod n^2 for fresh random r.
  // Precomputable offline; see PaillierRandomnessPool.
  BigInt SampleRandomnessFactor(Rng& rng) const;
  // Assembles a ciphertext from a plaintext and a precomputed factor.
  PaillierCiphertext EncryptWithFactor(const BigInt& m,
                                       const BigInt& rn_factor) const;

  // Homomorphic addition of plaintexts.
  PaillierCiphertext Add(const PaillierCiphertext& a,
                         const PaillierCiphertext& b) const;
  // Homomorphic plaintext * scalar (scalar may be negative).
  PaillierCiphertext ScalarMul(const PaillierCiphertext& c,
                               const BigInt& k) const;
  // Fresh randomness; plaintext unchanged.  Semi-honest ring
  // aggregation does not strictly need this but tests exercise it.
  PaillierCiphertext Rerandomize(const PaillierCiphertext& c, Rng& rng) const;

  // Encryption of zero, useful as an aggregation identity.
  PaillierCiphertext EncryptZero(Rng& rng) const;

  // Maps a signed value into Z_n (negative -> n - |v|).
  BigInt EncodeSigned(int64_t v) const;
  // Inverse of EncodeSigned.
  int64_t DecodeSigned(const BigInt& m) const;

  const BigInt& n() const { return n_; }
  const BigInt& n_squared() const { return n2_; }
  int key_bits() const { return key_bits_; }
  // Serialized ciphertext width in bytes.
  size_t ciphertext_bytes() const { return (static_cast<size_t>(key_bits_) * 2 + 7) / 8; }

  // Wire format: key_bits (u32) || n (length-prefixed bytes).
  std::vector<uint8_t> Serialize() const;
  static Result<PaillierPublicKey> Deserialize(
      std::span<const uint8_t> bytes);

  bool operator==(const PaillierPublicKey& o) const {
    return n_ == o.n_ && key_bits_ == o.key_bits_;
  }

 private:
  BigInt n_;
  BigInt n2_;
  BigInt g_;  // fixed to n + 1 (standard, enables the fast L-function path)
  int key_bits_ = 0;
};

class PaillierCrtEncryptor;

class PaillierPrivateKey {
 public:
  PaillierPrivateKey() = default;
  PaillierPrivateKey(const PaillierPublicKey& pk, BigInt p, BigInt q);

  BigInt Decrypt(const PaillierCiphertext& c) const;
  int64_t DecryptSigned(const PaillierCiphertext& c) const;

  // Toggle CRT decryption (ablation: see DESIGN.md §6).
  void set_use_crt(bool use_crt) { use_crt_ = use_crt; }
  bool use_crt() const { return use_crt_; }

  const PaillierPublicKey& public_key() const { return pk_; }

  // Wire format: public key || p || q.  Handle with care — this is the
  // secret key; intended for agent-local persistence only.
  std::vector<uint8_t> Serialize() const;
  static Result<PaillierPrivateKey> Deserialize(
      std::span<const uint8_t> bytes);

 private:
  friend class PaillierCrtEncryptor;  // reads p_, q_ for the CRT tables

  BigInt DecryptPlain(const PaillierCiphertext& c) const;
  BigInt DecryptCrt(const PaillierCiphertext& c) const;

  PaillierPublicKey pk_;
  BigInt p_, q_;
  BigInt lambda_;  // lcm(p-1, q-1)
  BigInt mu_;      // (L(g^lambda mod n^2))^-1 mod n
  // CRT precomputation.
  BigInt p2_, q2_;        // p^2, q^2
  BigInt hp_, hq_;        // per-prime mu values
  BigInt q_inv_mod_p_;    // CRT (Garner) recombination coefficient
  bool use_crt_ = true;
};

struct PaillierKeyPair {
  PaillierPublicKey pub;
  PaillierPrivateKey priv;
};

// Generates a fresh key pair with an n of exactly `key_bits` bits.
// key_bits must be even and >= 128 (tests use small keys; deployments
// use 1024+).
PaillierKeyPair GeneratePaillierKeyPair(int key_bits, Rng& rng);

// Owner-side CRT acceleration of the encryption hot spot.
//
// The expensive half of Paillier encryption is r^n mod n^2.  An agent
// encrypting under its OWN key knows p and q, so it can compute the
// factor mod p^2 and q^2 separately and Garner-recombine; because p
// divides the reduced exponent n mod p(p-1), each side further splits
// into a half-width exponent at modulus p plus a half-width exponent
// at modulus p^2 (see RandomnessFactor) — ~2x cheaper at 512-bit keys
// growing to ~3x+ at 2048-bit, the encryption-side analog of the CRT
// decryption the private key already uses.  The result is
// BIT-IDENTICAL to PaillierPublicKey::SampleRandomnessFactor /
// EncryptWithRandomness for the same (m, r), so swapping the fast path
// in changes no wire byte (asserted by the crypto parity tests).
class PaillierCrtEncryptor {
 public:
  PaillierCrtEncryptor() = default;
  // Builds the CRT tables from the owner's private key.
  explicit PaillierCrtEncryptor(const PaillierPrivateKey& sk);
  // As above, but asserts `sk` actually opens `pk` — constructing an
  // encryptor for somebody else's public key is always a bug (death
  // test in tests/crypto/test_paillier.cpp).
  PaillierCrtEncryptor(const PaillierPublicKey& pk,
                       const PaillierPrivateKey& sk);

  // r^n mod n^2 via the CRT path; r must be a unit mod n.  Equal, bit
  // for bit, to r.PowMod(n, n_squared).
  BigInt RandomnessFactor(const BigInt& r) const;

  // Drop-in replacements for the PaillierPublicKey entry points, so
  // protocol code and the randomness pool can route through the owner
  // fast path transparently.
  BigInt SampleRandomnessFactor(Rng& rng) const;
  PaillierCiphertext EncryptWithRandomness(const BigInt& m,
                                           const BigInt& r) const;
  PaillierCiphertext Encrypt(const BigInt& m, Rng& rng) const;
  PaillierCiphertext EncryptSigned(int64_t v, Rng& rng) const;

  const PaillierPublicKey& public_key() const { return pk_; }

 private:
  PaillierPublicKey pk_;
  BigInt p_, q_;          // the prime factors of n
  BigInt p2_, q2_;        // p^2, q^2
  BigInt t_p_, t_q_;      // (n mod p(p-1)) / p and (n mod q(q-1)) / q
  BigInt q2_inv_mod_p2_;  // Garner recombination coefficient mod n^2
};

// Precomputed encryption randomness for one public key.
//
// Paillier encryption costs one n-bit exponentiation (r^n mod n^2)
// that does not depend on the plaintext.  The paper exploits this:
// "the encryption and decryption are independently executed in
// parallel during idle time", which is why Fig. 5(b)'s runtime barely
// moves with the key size.  Refill() is the idle-time phase; Encrypt*
// then costs one multiplication.  See bench/ablation_precompute.
//
// Refill is phased like the protocol engine: every r is drawn
// sequentially from the caller's RNG, then the exponentiations fan out
// across `threads` workers — so the factor sequence (and therefore
// every wire transcript downstream of the pool) is invariant under the
// thread count and under the owner-CRT toggle.
class PaillierRandomnessPool {
 public:
  explicit PaillierRandomnessPool(PaillierPublicKey pk) : pk_(std::move(pk)) {}

  // Offline: precompute factors until `target` are available.  The
  // threaded overload fans the r^n exponentiations out over up to
  // `threads` workers; the factor sequence is identical for any count.
  void Refill(size_t target, Rng& rng) { Refill(target, rng, 1); }
  void Refill(size_t target, Rng& rng, unsigned threads);

  // Attaches the key owner's CRT encryptor: subsequent refills compute
  // each factor mod p^2/q^2 instead of mod n^2.  Same factor bits, so
  // pooled ciphertexts are unchanged.  The encryptor must match this
  // pool's modulus.
  void AttachCrtEncryptor(PaillierCrtEncryptor enc);
  bool has_crt_encryptor() const { return crt_.has_value(); }

  size_t available() const { return factors_.size(); }
  const PaillierPublicKey& public_key() const { return pk_; }

  // Online: consumes a precomputed factor; falls back to fresh
  // randomness when the pool is dry (correct either way).
  PaillierCiphertext Encrypt(const BigInt& m, Rng& rng);
  PaillierCiphertext EncryptSigned(int64_t v, Rng& rng);

  // Pops one precomputed factor, or nullopt when the pool is dry.
  // Used by the phase-parallel engine to assign factors to ring
  // members in a deterministic sequential order before the compute
  // phase fans out.
  std::optional<BigInt> TakeFactor();

 private:
  PaillierPublicKey pk_;
  std::optional<PaillierCrtEncryptor> crt_;
  std::vector<BigInt> factors_;
};

// Pools keyed by public key (modulus), shared across protocol runs so
// idle-time refills amortize over many trading windows.
class PaillierPoolRegistry {
 public:
  // Returns the pool for `pk`, creating it on first use.
  PaillierRandomnessPool& PoolFor(const PaillierPublicKey& pk);

  // Registers the key owner with the pool for sk's public key
  // (creating the pool if needed), so idle-time refills run the CRT
  // fast path.  Idempotent.
  void AttachOwner(const PaillierPrivateKey& sk);

  // Idle-time maintenance: tops every known pool up to `target`.  The
  // threaded/policy overloads fan each pool's exponentiations out; all
  // r draws stay sequential (pools in registration order), so the
  // factor sequences match the serial overload exactly.
  void RefillAll(size_t target, Rng& rng) { RefillAll(target, rng, 1u); }
  void RefillAll(size_t target, Rng& rng, unsigned threads);
  // Convenience: workers from the run's execution policy (the same
  // knob that sizes the protocol compute phases).
  void RefillAll(size_t target, Rng& rng, const net::ExecutionPolicy& policy);

  size_t pool_count() const { return pools_.size(); }

 private:
  std::vector<std::unique_ptr<PaillierRandomnessPool>> pools_;
};

}  // namespace pem::crypto
