// Boolean circuits for Yao garbling.
//
// Gate basis: XOR (free under free-XOR), AND (one garbled table), NOT
// (free label swap).  The builders construct the comparison circuits
// used by Private Market Evaluation plus small arithmetic circuits
// (adder, mux, equality) used by tests and extensions.
#pragma once

#include <cstdint>
#include <vector>

#include "util/error.h"

namespace pem::crypto {

enum class GateType : uint8_t { kXor, kAnd, kNot };

struct Gate {
  GateType type;
  int32_t a = -1;    // first input wire
  int32_t b = -1;    // second input wire (-1 for NOT)
  int32_t out = -1;  // output wire
};

// A circuit with two input bundles: the garbler's and the evaluator's.
// Wire ids are dense; inputs come first, then gate outputs.
struct Circuit {
  int32_t num_wires = 0;
  std::vector<int32_t> garbler_inputs;
  std::vector<int32_t> evaluator_inputs;
  std::vector<int32_t> outputs;
  std::vector<Gate> gates;

  size_t AndGateCount() const;
  // Evaluates in the clear; input bit vectors must match bundle sizes.
  std::vector<bool> EvalPlain(const std::vector<bool>& garbler_bits,
                              const std::vector<bool>& evaluator_bits) const;
};

// Incremental builder.  Wires are allocated by the builder; callers
// combine the primitive ops into bundles.
class CircuitBuilder {
 public:
  // Allocates the two input bundles up front (LSB-first bit order).
  CircuitBuilder(int garbler_bits, int evaluator_bits);

  int32_t Xor(int32_t a, int32_t b);
  int32_t And(int32_t a, int32_t b);
  int32_t Not(int32_t a);
  int32_t Or(int32_t a, int32_t b);   // derived: a|b = (a^b)^(a&b)
  int32_t Xnor(int32_t a, int32_t b);
  // mux: sel ? t : f
  int32_t Mux(int32_t sel, int32_t t, int32_t f);

  const std::vector<int32_t>& garbler_inputs() const { return garbler_in_; }
  const std::vector<int32_t>& evaluator_inputs() const { return evaluator_in_; }

  void MarkOutput(int32_t wire);
  Circuit Build();

 private:
  int32_t NewWire();
  int32_t Emit(GateType t, int32_t a, int32_t b);

  int32_t next_wire_ = 0;
  std::vector<int32_t> garbler_in_;
  std::vector<int32_t> evaluator_in_;
  std::vector<int32_t> outputs_;
  std::vector<Gate> gates_;
  bool built_ = false;
};

// ---- Prebuilt circuits ---------------------------------------------------

// [garbler_value < evaluator_value] over unsigned `bits`-bit integers.
// Single output bit.  2 AND gates per bit.
Circuit BuildLessThanCircuit(int bits);

// [garbler_value == evaluator_value]; single output bit.
Circuit BuildEqualityCircuit(int bits);

// (garbler_value + evaluator_value) mod 2^bits; `bits` output wires,
// LSB first.  Ripple-carry, 1 AND per bit with the standard
// carry = c ^ ((a^c)&(b^c)) trick.
Circuit BuildAdderCircuit(int bits);

// (garbler_value - evaluator_value) mod 2^bits; `bits` output wires,
// LSB first.  Two's-complement via a + ~b + 1.
Circuit BuildSubtractorCircuit(int bits);

// max(garbler_value, evaluator_value); `bits` output wires, LSB first.
// Composes the comparator with a bit-wise mux.
Circuit BuildMaxCircuit(int bits);

// Helper: little-endian bit decomposition of a 64-bit value.
std::vector<bool> ToBits(uint64_t v, int bits);
uint64_t FromBits(const std::vector<bool>& bits);

}  // namespace pem::crypto
