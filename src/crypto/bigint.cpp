#include "crypto/bigint.h"

#include <cstring>

#include "util/error.h"

namespace pem::crypto {

BigInt& BigInt::operator=(int64_t v) {
  if (v >= 0) {
    mpz_set_ui(z_, static_cast<unsigned long>(v));
  } else {
    // Avoid UB on INT64_MIN: negate in unsigned space.
    mpz_set_ui(z_, static_cast<unsigned long>(~static_cast<uint64_t>(v) + 1));
    mpz_neg(z_, z_);
  }
  return *this;
}

BigInt BigInt::FromDecString(const std::string& s) {
  BigInt r;
  PEM_CHECK(mpz_set_str(r.z_, s.c_str(), 10) == 0, "bad decimal string");
  return r;
}

BigInt BigInt::FromHexString(const std::string& s) {
  BigInt r;
  PEM_CHECK(mpz_set_str(r.z_, s.c_str(), 16) == 0, "bad hex string");
  return r;
}

BigInt BigInt::FromBytes(std::span<const uint8_t> bytes) {
  BigInt r;
  if (!bytes.empty()) mpz_import(r.z_, bytes.size(), 1, 1, 1, 0, bytes.data());
  return r;
}

BigInt BigInt::RandomBelow(const BigInt& bound, Rng& rng) {
  PEM_CHECK(mpz_sgn(bound.z_) > 0, "RandomBelow: bound must be positive");
  const size_t bits = mpz_sizeinbase(bound.z_, 2);
  const size_t nbytes = (bits + 7) / 8;
  std::vector<uint8_t> buf(nbytes);
  // Rejection sampling: mask the top byte down to `bits` bits, retry
  // until the draw lands below the bound.  Expected < 2 iterations.
  const unsigned top_mask =
      bits % 8 == 0 ? 0xFFu : ((1u << (bits % 8)) - 1u);
  for (;;) {
    rng.Fill(buf);
    buf[0] &= static_cast<uint8_t>(top_mask);
    BigInt candidate = FromBytes(buf);
    if (candidate < bound) return candidate;
  }
}

BigInt BigInt::RandomBits(int bits, Rng& rng) {
  PEM_CHECK(bits > 0, "RandomBits: bits must be positive");
  const size_t nbytes = (static_cast<size_t>(bits) + 7) / 8;
  std::vector<uint8_t> buf(nbytes);
  rng.Fill(buf);
  const unsigned top_mask =
      bits % 8 == 0 ? 0xFFu : ((1u << (bits % 8)) - 1u);
  buf[0] &= static_cast<uint8_t>(top_mask);
  // Force the top bit so the result has exactly `bits` bits.
  const unsigned top_bit = bits % 8 == 0 ? 0x80u : (1u << ((bits - 1) % 8));
  buf[0] |= static_cast<uint8_t>(top_bit);
  return FromBytes(buf);
}

BigInt BigInt::RandomPrime(int bits, Rng& rng) {
  PEM_CHECK(bits >= 8, "RandomPrime: need at least 8 bits");
  for (;;) {
    BigInt candidate = RandomBits(bits, rng);
    // Set the second-highest bit so p*q for two b-bit primes is exactly
    // 2b bits (standard RSA/Paillier keygen practice).
    mpz_setbit(candidate.z_, static_cast<mp_bitcnt_t>(bits - 2));
    mpz_setbit(candidate.z_, 0);  // odd
    if (candidate.IsProbablePrime()) return candidate;
    // Walk forward from the candidate rather than redrawing: cheaper,
    // still uniform enough for key generation.
    mpz_nextprime(candidate.z_, candidate.z_);
    if (candidate.BitLength() == static_cast<size_t>(bits)) return candidate;
  }
}

BigInt BigInt::operator+(const BigInt& o) const {
  BigInt r;
  mpz_add(r.z_, z_, o.z_);
  return r;
}
BigInt BigInt::operator-(const BigInt& o) const {
  BigInt r;
  mpz_sub(r.z_, z_, o.z_);
  return r;
}
BigInt BigInt::operator*(const BigInt& o) const {
  BigInt r;
  mpz_mul(r.z_, z_, o.z_);
  return r;
}
BigInt BigInt::operator/(const BigInt& o) const {
  PEM_CHECK(mpz_sgn(o.z_) != 0, "division by zero");
  BigInt r;
  mpz_fdiv_q(r.z_, z_, o.z_);
  return r;
}
BigInt BigInt::operator%(const BigInt& o) const {
  PEM_CHECK(mpz_sgn(o.z_) != 0, "mod by zero");
  BigInt r;
  mpz_mod(r.z_, z_, o.z_);
  return r;
}
BigInt BigInt::operator-() const {
  BigInt r;
  mpz_neg(r.z_, z_);
  return r;
}

BigInt& BigInt::operator+=(const BigInt& o) {
  mpz_add(z_, z_, o.z_);
  return *this;
}
BigInt& BigInt::operator-=(const BigInt& o) {
  mpz_sub(z_, z_, o.z_);
  return *this;
}
BigInt& BigInt::operator*=(const BigInt& o) {
  mpz_mul(z_, z_, o.z_);
  return *this;
}

BigInt BigInt::AddMod(const BigInt& o, const BigInt& mod) const {
  BigInt r;
  mpz_add(r.z_, z_, o.z_);
  mpz_mod(r.z_, r.z_, mod.z_);
  return r;
}
BigInt BigInt::SubMod(const BigInt& o, const BigInt& mod) const {
  BigInt r;
  mpz_sub(r.z_, z_, o.z_);
  mpz_mod(r.z_, r.z_, mod.z_);
  return r;
}
BigInt BigInt::MulMod(const BigInt& o, const BigInt& mod) const {
  BigInt r;
  mpz_mul(r.z_, z_, o.z_);
  mpz_mod(r.z_, r.z_, mod.z_);
  return r;
}
BigInt BigInt::PowMod(const BigInt& exp, const BigInt& mod) const {
  PEM_CHECK(mpz_sgn(mod.z_) > 0, "PowMod: modulus must be positive");
  BigInt r;
  if (mpz_sgn(exp.z_) < 0) {
    BigInt inv = InvMod(mod);
    BigInt pos_exp = -exp;
    mpz_powm(r.z_, inv.z_, pos_exp.z_, mod.z_);
  } else {
    mpz_powm(r.z_, z_, exp.z_, mod.z_);
  }
  return r;
}
BigInt BigInt::InvMod(const BigInt& mod) const {
  BigInt r;
  PEM_CHECK(mpz_invert(r.z_, z_, mod.z_) != 0, "InvMod: not invertible");
  return r;
}
bool BigInt::IsInvertibleMod(const BigInt& mod) const {
  BigInt g;
  mpz_gcd(g.z_, z_, mod.z_);
  return mpz_cmp_ui(g.z_, 1) == 0;
}

BigInt BigInt::Gcd(const BigInt& o) const {
  BigInt r;
  mpz_gcd(r.z_, z_, o.z_);
  return r;
}
BigInt BigInt::Lcm(const BigInt& o) const {
  BigInt r;
  mpz_lcm(r.z_, z_, o.z_);
  return r;
}
BigInt BigInt::Abs() const {
  BigInt r;
  mpz_abs(r.z_, z_);
  return r;
}
BigInt BigInt::Sqrt() const {
  PEM_CHECK(mpz_sgn(z_) >= 0, "Sqrt of negative");
  BigInt r;
  mpz_sqrt(r.z_, z_);
  return r;
}

bool BigInt::IsProbablePrime(int reps) const {
  return mpz_probab_prime_p(z_, reps) != 0;
}

size_t BigInt::BitLength() const {
  if (IsZero()) return 0;
  return mpz_sizeinbase(z_, 2);
}

bool BigInt::FitsInt64() const {
  static const BigInt kMin = []() {
    BigInt v = 1;
    mpz_mul_2exp(v.raw(), v.raw(), 63);
    mpz_neg(v.raw(), v.raw());
    return v;
  }();
  static const BigInt kMax = []() {
    BigInt v = 1;
    mpz_mul_2exp(v.raw(), v.raw(), 63);
    mpz_sub_ui(v.raw(), v.raw(), 1);
    return v;
  }();
  return *this >= kMin && *this <= kMax;
}

int64_t BigInt::ToInt64() const {
  PEM_CHECK(FitsInt64(), "ToInt64: value out of range");
  const bool neg = IsNegative();
  BigInt abs = Abs();
  uint64_t mag = 0;
  // Export up to 8 bytes big-endian.
  std::vector<uint8_t> bytes = abs.ToBytes();
  for (uint8_t b : bytes) mag = (mag << 8) | b;
  // Negate in unsigned space: mag can be 2^63 (INT64_MIN), whose
  // two's-complement cast is fine but whose int64 negation overflows.
  return neg ? static_cast<int64_t>(-mag) : static_cast<int64_t>(mag);
}

std::string BigInt::ToDecString() const {
  char* s = mpz_get_str(nullptr, 10, z_);
  std::string out(s);
  void (*freefn)(void*, size_t);
  mp_get_memory_functions(nullptr, nullptr, &freefn);
  freefn(s, out.size() + 1);
  return out;
}

std::string BigInt::ToHexString() const {
  char* s = mpz_get_str(nullptr, 16, z_);
  std::string out(s);
  void (*freefn)(void*, size_t);
  mp_get_memory_functions(nullptr, nullptr, &freefn);
  freefn(s, out.size() + 1);
  return out;
}

std::vector<uint8_t> BigInt::ToBytes() const {
  PEM_CHECK(!IsNegative(), "ToBytes: negative values not supported");
  if (IsZero()) return {};
  const size_t nbytes = (BitLength() + 7) / 8;
  std::vector<uint8_t> out(nbytes);
  size_t written = 0;
  mpz_export(out.data(), &written, 1, 1, 1, 0, z_);
  out.resize(written);
  return out;
}

std::vector<uint8_t> BigInt::ToBytesPadded(size_t width) const {
  std::vector<uint8_t> raw = ToBytes();
  PEM_CHECK(raw.size() <= width, "ToBytesPadded: value too wide");
  std::vector<uint8_t> out(width, 0);
  std::memcpy(out.data() + (width - raw.size()), raw.data(), raw.size());
  return out;
}

}  // namespace pem::crypto
