#include "crypto/garble.h"

#include <cstring>

#include "crypto/hash.h"
#include "util/error.h"

namespace pem::crypto {
namespace {

constexpr uint64_t kGateKdfTagBase = 0x5945'4F47'4321ull;  // "YEOGC!"

WireLabel RandomLabel(Rng& rng) {
  WireLabel l;
  rng.Fill(l.bytes);
  return l;
}

}  // namespace

WireLabel GateKdf(const WireLabel& a, const WireLabel& b, uint64_t gate_id) {
  const Sha256Digest d = Kdf2(kGateKdfTagBase ^ gate_id, a.bytes, b.bytes);
  WireLabel out;
  std::memcpy(out.bytes.data(), d.bytes.data(), out.bytes.size());
  return out;
}

std::vector<uint8_t> GarbledTables::Serialize() const {
  std::vector<uint8_t> out;
  out.reserve(SerializedSize());
  for (const auto& table : and_tables) {
    for (const WireLabel& row : table) {
      out.insert(out.end(), row.bytes.begin(), row.bytes.end());
    }
  }
  out.insert(out.end(), output_decode.begin(), output_decode.end());
  return out;
}

size_t GarbledTables::SerializedSize() const {
  return and_tables.size() * 64 + output_decode.size();
}

GarbledTables GarbledTables::Deserialize(std::span<const uint8_t> bytes,
                                         const Circuit& circuit) {
  const size_t num_and = circuit.AndGateCount();
  const size_t num_out = circuit.outputs.size();
  PEM_CHECK(bytes.size() == num_and * 64 + num_out,
            "garbled tables: size mismatch");
  GarbledTables t;
  t.and_tables.resize(num_and);
  size_t pos = 0;
  for (auto& table : t.and_tables) {
    for (WireLabel& row : table) {
      std::memcpy(row.bytes.data(), bytes.data() + pos, 16);
      pos += 16;
    }
  }
  t.output_decode.assign(bytes.begin() + static_cast<ptrdiff_t>(pos),
                         bytes.end());
  return t;
}

Garbler::Garbler(const Circuit& circuit, Rng& rng) : circuit_(circuit) {
  delta_ = RandomLabel(rng);
  delta_.bytes[15] |= 1;  // point-and-permute needs lsb(delta) = 1

  label0_.resize(static_cast<size_t>(circuit.num_wires));
  for (int32_t w : circuit.garbler_inputs) {
    label0_[static_cast<size_t>(w)] = RandomLabel(rng);
  }
  for (int32_t w : circuit.evaluator_inputs) {
    label0_[static_cast<size_t>(w)] = RandomLabel(rng);
  }

  uint64_t gate_id = 0;
  for (const Gate& g : circuit.gates) {
    const WireLabel& a0 = label0_[static_cast<size_t>(g.a)];
    switch (g.type) {
      case GateType::kXor: {
        const WireLabel& b0 = label0_[static_cast<size_t>(g.b)];
        label0_[static_cast<size_t>(g.out)] = a0.Xor(b0);
        break;
      }
      case GateType::kNot: {
        // Lout0 = La0 ^ delta; evaluator passes its label through.
        label0_[static_cast<size_t>(g.out)] = a0.Xor(delta_);
        break;
      }
      case GateType::kAnd: {
        const WireLabel& b0 = label0_[static_cast<size_t>(g.b)];
        WireLabel out0 = RandomLabel(rng);
        label0_[static_cast<size_t>(g.out)] = out0;
        std::array<WireLabel, 4> table;
        const bool pa = a0.permute_bit();
        const bool pb = b0.permute_bit();
        for (int sa = 0; sa < 2; ++sa) {
          for (int sb = 0; sb < 2; ++sb) {
            // The label whose permute bit equals sa carries value
            // va = sa ^ pa (and likewise for b).
            const bool va = (sa != 0) ^ pa;
            const bool vb = (sb != 0) ^ pb;
            const WireLabel la = va ? a0.Xor(delta_) : a0;
            const WireLabel lb = vb ? b0.Xor(delta_) : b0;
            const bool v = va && vb;
            const WireLabel lout = v ? out0.Xor(delta_) : out0;
            table[static_cast<size_t>(sa * 2 + sb)] =
                GateKdf(la, lb, gate_id).Xor(lout);
          }
        }
        tables_.and_tables.push_back(table);
        break;
      }
    }
    ++gate_id;
  }

  tables_.output_decode.reserve(circuit.outputs.size());
  for (int32_t w : circuit.outputs) {
    tables_.output_decode.push_back(
        static_cast<uint8_t>(label0_[static_cast<size_t>(w)].permute_bit()));
  }
}

const WireLabel& Garbler::Label0(int32_t wire) const {
  return label0_[static_cast<size_t>(wire)];
}

WireLabel Garbler::Label1(int32_t wire) const {
  return Label0(wire).Xor(delta_);
}

WireLabel Garbler::GarblerInputLabel(size_t i, bool value) const {
  PEM_CHECK(i < circuit_.garbler_inputs.size(), "garbler input index");
  const int32_t w = circuit_.garbler_inputs[i];
  return value ? Label1(w) : Label0(w);
}

std::pair<WireLabel, WireLabel> Garbler::EvaluatorInputLabels(size_t i) const {
  PEM_CHECK(i < circuit_.evaluator_inputs.size(), "evaluator input index");
  const int32_t w = circuit_.evaluator_inputs[i];
  return {Label0(w), Label1(w)};
}

bool Garbler::DecodeOutput(size_t output_index, const WireLabel& label) const {
  PEM_CHECK(output_index < circuit_.outputs.size(), "output index");
  return label.permute_bit() ^
         (tables_.output_decode[output_index] != 0);
}

Evaluator::Evaluator(const Circuit& circuit, GarbledTables tables)
    : circuit_(circuit), tables_(std::move(tables)) {
  PEM_CHECK(tables_.and_tables.size() == circuit.AndGateCount(),
            "garbled tables: AND count mismatch");
  PEM_CHECK(tables_.output_decode.size() == circuit.outputs.size(),
            "garbled tables: output decode mismatch");
}

std::vector<bool> Evaluator::Evaluate(
    const std::vector<WireLabel>& garbler_labels,
    const std::vector<WireLabel>& evaluator_labels) {
  PEM_CHECK(garbler_labels.size() == circuit_.garbler_inputs.size(),
            "garbler label count");
  PEM_CHECK(evaluator_labels.size() == circuit_.evaluator_inputs.size(),
            "evaluator label count");
  std::vector<WireLabel> active(static_cast<size_t>(circuit_.num_wires));
  for (size_t i = 0; i < garbler_labels.size(); ++i) {
    active[static_cast<size_t>(circuit_.garbler_inputs[i])] =
        garbler_labels[i];
  }
  for (size_t i = 0; i < evaluator_labels.size(); ++i) {
    active[static_cast<size_t>(circuit_.evaluator_inputs[i])] =
        evaluator_labels[i];
  }

  uint64_t gate_id = 0;
  size_t and_index = 0;
  for (const Gate& g : circuit_.gates) {
    const WireLabel& la = active[static_cast<size_t>(g.a)];
    switch (g.type) {
      case GateType::kXor:
        active[static_cast<size_t>(g.out)] =
            la.Xor(active[static_cast<size_t>(g.b)]);
        break;
      case GateType::kNot:
        active[static_cast<size_t>(g.out)] = la;  // free (label passthrough)
        break;
      case GateType::kAnd: {
        const WireLabel& lb = active[static_cast<size_t>(g.b)];
        const size_t row = static_cast<size_t>(la.permute_bit()) * 2 +
                           static_cast<size_t>(lb.permute_bit());
        active[static_cast<size_t>(g.out)] =
            GateKdf(la, lb, gate_id).Xor(tables_.and_tables[and_index][row]);
        ++and_index;
        break;
      }
    }
    ++gate_id;
  }

  std::vector<bool> out;
  out.reserve(circuit_.outputs.size());
  for (size_t i = 0; i < circuit_.outputs.size(); ++i) {
    const WireLabel& l =
        active[static_cast<size_t>(circuit_.outputs[i])];
    out.push_back(l.permute_bit() ^ (tables_.output_decode[i] != 0));
  }
  return out;
}

}  // namespace pem::crypto
