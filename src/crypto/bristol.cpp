#include "crypto/bristol.h"

#include <sstream>
#include <vector>

namespace pem::crypto {
namespace {

Error Malformed(const std::string& what) {
  return Error(ErrorCode::kSerialization, "bristol: " + what);
}

}  // namespace

Result<Circuit> ParseBristolCircuit(const std::string& text) {
  std::istringstream in(text);
  int64_t num_gates = 0, num_wires = 0;
  if (!(in >> num_gates >> num_wires)) {
    return Malformed("missing gate/wire counts");
  }
  int64_t g_inputs = 0, e_inputs = 0, outputs = 0;
  if (!(in >> g_inputs >> e_inputs >> outputs)) {
    return Malformed("missing input/output widths");
  }
  if (num_gates < 0 || num_wires <= 0 || g_inputs < 0 || e_inputs < 0 ||
      outputs <= 0) {
    return Malformed("negative or zero counts");
  }
  if (g_inputs + e_inputs > num_wires || outputs > num_wires) {
    return Malformed("inputs/outputs exceed wire count");
  }

  Circuit c;
  c.num_wires = static_cast<int32_t>(num_wires);
  for (int64_t i = 0; i < g_inputs; ++i) {
    c.garbler_inputs.push_back(static_cast<int32_t>(i));
  }
  for (int64_t i = 0; i < e_inputs; ++i) {
    c.evaluator_inputs.push_back(static_cast<int32_t>(g_inputs + i));
  }
  for (int64_t i = num_wires - outputs; i < num_wires; ++i) {
    c.outputs.push_back(static_cast<int32_t>(i));
  }

  // A wire is defined once it is an input or some earlier gate's
  // output; gates must consume only defined wires (topological order).
  std::vector<bool> defined(static_cast<size_t>(num_wires), false);
  for (int64_t i = 0; i < g_inputs + e_inputs; ++i) {
    defined[static_cast<size_t>(i)] = true;
  }

  for (int64_t g = 0; g < num_gates; ++g) {
    int64_t fan_in = 0, fan_out = 0;
    if (!(in >> fan_in >> fan_out)) {
      return Malformed("truncated gate list");
    }
    if (fan_out != 1 || (fan_in != 1 && fan_in != 2)) {
      return Malformed("unsupported gate arity");
    }
    int64_t a = -1, b = -1, out = -1;
    std::string kind;
    if (fan_in == 2) {
      if (!(in >> a >> b >> out >> kind)) return Malformed("truncated gate");
    } else {
      if (!(in >> a >> out >> kind)) return Malformed("truncated gate");
    }
    auto wire_ok = [&](int64_t w) { return w >= 0 && w < num_wires; };
    if (!wire_ok(a) || !wire_ok(out) || (fan_in == 2 && !wire_ok(b))) {
      return Malformed("wire id out of range");
    }
    if (!defined[static_cast<size_t>(a)] ||
        (fan_in == 2 && !defined[static_cast<size_t>(b)])) {
      return Malformed("gate consumes undefined wire (not topological)");
    }
    if (defined[static_cast<size_t>(out)]) {
      return Malformed("wire defined twice");
    }

    Gate gate;
    gate.a = static_cast<int32_t>(a);
    gate.b = static_cast<int32_t>(b);
    gate.out = static_cast<int32_t>(out);
    if (kind == "XOR") {
      if (fan_in != 2) return Malformed("XOR needs two inputs");
      gate.type = GateType::kXor;
    } else if (kind == "AND") {
      if (fan_in != 2) return Malformed("AND needs two inputs");
      gate.type = GateType::kAnd;
    } else if (kind == "INV" || kind == "NOT") {
      if (fan_in != 1) return Malformed("INV needs one input");
      gate.type = GateType::kNot;
      gate.b = -1;
    } else {
      return Malformed("unknown gate kind '" + kind + "'");
    }
    defined[static_cast<size_t>(out)] = true;
    c.gates.push_back(gate);
  }

  for (int32_t w : c.outputs) {
    if (!defined[static_cast<size_t>(w)]) {
      return Malformed("output wire never defined");
    }
  }
  return c;
}

Result<Circuit> RenumberForBristol(const Circuit& circuit) {
  const size_t n = static_cast<size_t>(circuit.num_wires);
  const size_t n_out = circuit.outputs.size();
  // Outputs must be distinct gate-produced wires.
  std::vector<bool> is_output(n, false);
  for (int32_t w : circuit.outputs) {
    if (w < 0 || static_cast<size_t>(w) >= n) {
      return Malformed("output wire out of range");
    }
    if (is_output[static_cast<size_t>(w)]) {
      return Malformed("duplicate output wire (insert an identity gate)");
    }
    is_output[static_cast<size_t>(w)] = true;
  }
  for (int32_t w : circuit.garbler_inputs) {
    if (is_output[static_cast<size_t>(w)]) {
      return Malformed("output aliases an input wire");
    }
  }
  for (int32_t w : circuit.evaluator_inputs) {
    if (is_output[static_cast<size_t>(w)]) {
      return Malformed("output aliases an input wire");
    }
  }

  // Build the permutation: non-output wires keep their relative order
  // in the front block, outputs map to the tail in their listed order.
  std::vector<int32_t> remap(n, -1);
  int32_t next = 0;
  for (size_t w = 0; w < n; ++w) {
    if (!is_output[w]) remap[w] = next++;
  }
  for (size_t i = 0; i < n_out; ++i) {
    remap[static_cast<size_t>(circuit.outputs[i])] =
        static_cast<int32_t>(n - n_out + i);
  }

  Circuit out = circuit;
  auto apply = [&remap](int32_t w) { return w < 0 ? w : remap[static_cast<size_t>(w)]; };
  for (int32_t& w : out.garbler_inputs) w = apply(w);
  for (int32_t& w : out.evaluator_inputs) w = apply(w);
  for (int32_t& w : out.outputs) w = apply(w);
  for (Gate& g : out.gates) {
    g.a = apply(g.a);
    g.b = apply(g.b);
    g.out = apply(g.out);
  }
  return out;
}

Result<std::string> WriteBristolCircuit(const Circuit& circuit) {
  // Bristol requires inputs first and outputs last; verify the layout.
  for (size_t i = 0; i < circuit.garbler_inputs.size(); ++i) {
    if (circuit.garbler_inputs[i] != static_cast<int32_t>(i)) {
      return Malformed("garbler inputs must be wires 0..k-1");
    }
  }
  for (size_t i = 0; i < circuit.evaluator_inputs.size(); ++i) {
    if (circuit.evaluator_inputs[i] !=
        static_cast<int32_t>(circuit.garbler_inputs.size() + i)) {
      return Malformed("evaluator inputs must follow garbler inputs");
    }
  }
  const int32_t first_out =
      circuit.num_wires - static_cast<int32_t>(circuit.outputs.size());
  for (size_t i = 0; i < circuit.outputs.size(); ++i) {
    if (circuit.outputs[i] != first_out + static_cast<int32_t>(i)) {
      return Malformed(
          "outputs must be the last wires (renumber before export)");
    }
  }

  std::ostringstream out;
  out << circuit.gates.size() << ' ' << circuit.num_wires << '\n';
  out << circuit.garbler_inputs.size() << ' '
      << circuit.evaluator_inputs.size() << ' ' << circuit.outputs.size()
      << "\n\n";
  for (const Gate& g : circuit.gates) {
    switch (g.type) {
      case GateType::kXor:
        out << "2 1 " << g.a << ' ' << g.b << ' ' << g.out << " XOR\n";
        break;
      case GateType::kAnd:
        out << "2 1 " << g.a << ' ' << g.b << ' ' << g.out << " AND\n";
        break;
      case GateType::kNot:
        out << "1 1 " << g.a << ' ' << g.out << " INV\n";
        break;
    }
  }
  return out.str();
}

}  // namespace pem::crypto
