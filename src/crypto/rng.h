// Random byte sources.
//
// SystemRng wraps the OS CSPRNG (via OpenSSL RAND_bytes) and is what
// all protocol code uses.  DeterministicRng is a seeded stream for
// reproducible tests and benchmarks; it is NOT cryptographically secure
// and says so in the type name on purpose.
#pragma once

#include <cstdint>
#include <cstddef>
#include <span>

namespace pem::crypto {

class Rng {
 public:
  virtual ~Rng() = default;

  // Fills `out` with random bytes.
  virtual void Fill(std::span<uint8_t> out) = 0;

  // Position in the stream: total bytes drawn so far.  Meaningful (and
  // stable across processes) only for deterministic streams — the
  // parity walls compare cursors across engines, backends, and window
  // schedules to prove no draw was reordered.  Non-deterministic
  // sources report 0.  Non-destructive: probing never advances the
  // stream.
  virtual uint64_t Cursor() const { return 0; }

  // Uniform 64-bit draw.
  uint64_t NextU64();
};

// Process-wide CSPRNG.  Thread-compatible (OpenSSL handles locking).
class SystemRng final : public Rng {
 public:
  void Fill(std::span<uint8_t> out) override;

  static SystemRng& Instance();
};

// SHA-256-counter stream cipher over a 64-bit seed.  Deterministic,
// suitable for tests/benches only.
class DeterministicRng final : public Rng {
 public:
  explicit DeterministicRng(uint64_t seed);

  void Fill(std::span<uint8_t> out) override;

  // Bytes drawn since construction: full blocks consumed plus the
  // position inside the current one.
  uint64_t Cursor() const override {
    return counter_ == 0 ? 0 : (counter_ - 1) * 32 + pos_;
  }

 private:
  void Refill();

  uint8_t state_[32];
  uint8_t buf_[32];
  size_t pos_;
  uint64_t counter_;
};

}  // namespace pem::crypto
