#include "crypto/secure_compare.h"

#include <vector>

#include "crypto/circuit.h"
#include "crypto/garble.h"
#include "crypto/ot.h"
#include "net/serialize.h"
#include "util/error.h"

namespace pem::crypto {
namespace {

net::Message MustReceive(net::Endpoint& ep, uint32_t expected_type) {
  std::optional<net::Message> m = ep.Receive();
  PEM_CHECK(m.has_value(), "secure_compare: missing message");
  PEM_CHECK(m->type == expected_type, "secure_compare: unexpected type");
  return std::move(*m);
}

}  // namespace

bool SecureCompareLess(net::Endpoint& garbler, uint64_t x,
                       net::Endpoint& evaluator, uint64_t y,
                       const SecureCompareConfig& cfg, Rng& rng) {
  PEM_CHECK(garbler.id() != evaluator.id(),
            "secure_compare: garbler and evaluator must be distinct agents");
  PEM_CHECK(cfg.bits >= 1 && cfg.bits <= 64, "bits in [1,64]");
  if (cfg.bits < 64) {
    PEM_CHECK((x >> cfg.bits) == 0 && (y >> cfg.bits) == 0,
              "inputs exceed configured bit width");
  }
  const ModpGroup& group = ModpGroup::Get(cfg.group);
  const Circuit circuit = BuildLessThanCircuit(cfg.bits);
  const size_t nbits = static_cast<size_t>(cfg.bits);

  // ---- Garbler side: garble, prepare OTs ------------------------------
  Garbler g(circuit, rng);
  const std::vector<bool> x_bits = ToBits(x, cfg.bits);

  std::vector<OtSender> ot_senders;
  ot_senders.reserve(nbits);
  net::ByteWriter w1;
  {
    const std::vector<uint8_t> tables = g.tables().Serialize();
    w1.Bytes(tables);
    for (size_t i = 0; i < nbits; ++i) {
      w1.Bytes(g.GarblerInputLabel(i, x_bits[i]).bytes);
    }
    for (size_t i = 0; i < nbits; ++i) {
      ot_senders.emplace_back(group, rng);
      w1.Bytes(ot_senders.back().Round1());
    }
  }
  garbler.Send(evaluator.id(), kMsgGcTablesAndOt1, w1.Take());

  // ---- Evaluator side: OT round-1 responses ---------------------------
  const std::vector<bool> y_bits = ToBits(y, cfg.bits);
  net::Message msg1 = MustReceive(evaluator, kMsgGcTablesAndOt1);
  net::ByteReader r1(msg1.payload);
  GarbledTables tables = GarbledTables::Deserialize(r1.Bytes(), circuit);
  std::vector<WireLabel> garbler_labels(nbits);
  for (size_t i = 0; i < nbits; ++i) {
    const std::vector<uint8_t> b = r1.Bytes();
    PEM_CHECK(b.size() == 16, "bad label size");
    std::copy(b.begin(), b.end(), garbler_labels[i].bytes.begin());
  }
  std::vector<OtReceiver> ot_receivers;
  ot_receivers.reserve(nbits);
  net::ByteWriter w2;
  for (size_t i = 0; i < nbits; ++i) {
    const std::vector<uint8_t> a_elem = r1.Bytes();
    ot_receivers.emplace_back(group, rng);
    w2.Bytes(ot_receivers.back().Round1(a_elem, y_bits[i]));
  }
  PEM_CHECK(r1.AtEnd(), "trailing bytes in GC message 1");
  evaluator.Send(garbler.id(), kMsgGcOtResponses, w2.Take());

  // ---- Garbler side: OT round 2 ---------------------------------------
  net::Message msg2 = MustReceive(garbler, kMsgGcOtResponses);
  net::ByteReader r2(msg2.payload);
  net::ByteWriter w3;
  for (size_t i = 0; i < nbits; ++i) {
    const std::vector<uint8_t> b_elem = r2.Bytes();
    const auto [l0, l1] = g.EvaluatorInputLabels(i);
    OtMessage m0, m1;
    std::copy(l0.bytes.begin(), l0.bytes.end(), m0.begin());
    std::copy(l1.bytes.begin(), l1.bytes.end(), m1.begin());
    w3.Bytes(ot_senders[i].Round2(b_elem, m0, m1));
  }
  PEM_CHECK(r2.AtEnd(), "trailing bytes in GC message 2");
  garbler.Send(evaluator.id(), kMsgGcOtFinal, w3.Take());

  // ---- Evaluator side: decrypt labels, evaluate ------------------------
  net::Message msg3 = MustReceive(evaluator, kMsgGcOtFinal);
  net::ByteReader r3(msg3.payload);
  std::vector<WireLabel> evaluator_labels(nbits);
  for (size_t i = 0; i < nbits; ++i) {
    const std::vector<uint8_t> ct = r3.Bytes();
    const OtMessage m = ot_receivers[i].Decrypt(ct);
    std::copy(m.begin(), m.end(), evaluator_labels[i].bytes.begin());
  }
  PEM_CHECK(r3.AtEnd(), "trailing bytes in GC message 3");
  Evaluator eval(circuit, std::move(tables));
  const std::vector<bool> out = eval.Evaluate(garbler_labels, evaluator_labels);
  PEM_CHECK(out.size() == 1, "comparator must have one output");

  // ---- Share the result with the garbler ------------------------------
  net::ByteWriter w4;
  w4.U8(out[0] ? 1 : 0);
  evaluator.Send(garbler.id(), kMsgGcResult, w4.Take());
  net::Message msg4 = MustReceive(garbler, kMsgGcResult);
  net::ByteReader r4(msg4.payload);
  const bool result = r4.U8() != 0;
  PEM_CHECK(result == out[0], "result mismatch");
  return result;
}

}  // namespace pem::crypto
