#include "crypto/paillier.h"

#include <iterator>

#include "net/serialize.h"
#include "net/transport.h"
#include "util/error.h"
#include "util/parallel.h"

namespace pem::crypto {
namespace {

// L(x) = (x - 1) / d, defined on x ≡ 1 (mod d).
BigInt LFunction(const BigInt& x, const BigInt& d) {
  return (x - BigInt(1)) / d;
}

}  // namespace

PaillierPublicKey::PaillierPublicKey(BigInt n, int key_bits)
    : n_(std::move(n)), key_bits_(key_bits) {
  n2_ = n_ * n_;
  g_ = n_ + BigInt(1);
}

BigInt PaillierPublicKey::EncodeSigned(int64_t v) const {
  if (v >= 0) return BigInt(v);
  // n + v (v < 0) rather than n - (-v): negating INT64_MIN overflows.
  return n_ + BigInt(v);
}

int64_t PaillierPublicKey::DecodeSigned(const BigInt& m) const {
  const BigInt half = n_ / BigInt(2);
  // m - n is the negative representative; converting it directly (not
  // via -|n - m|) keeps INT64_MIN decodable.
  if (m > half) return (m - n_).ToInt64();
  return m.ToInt64();
}

PaillierCiphertext PaillierPublicKey::Encrypt(const BigInt& m, Rng& rng) const {
  PEM_CHECK(!m.IsNegative() && m < n_, "Paillier plaintext out of range");
  // With g = n+1:  g^m = 1 + m*n (mod n^2), saving one exponentiation.
  const BigInt gm = (BigInt(1) + m * n_) % n2_;
  const BigInt rn = SampleRandomness(rng).PowMod(n_, n2_);
  return PaillierCiphertext{gm.MulMod(rn, n2_)};
}

PaillierCiphertext PaillierPublicKey::EncryptSigned(int64_t v, Rng& rng) const {
  return Encrypt(EncodeSigned(v), rng);
}

PaillierCiphertext PaillierPublicKey::EncryptWithRandomness(
    const BigInt& m, const BigInt& r) const {
  PEM_CHECK(!r.IsZero() && r < n_ && r.IsInvertibleMod(n_),
            "encryption randomness must be a unit mod n");
  return EncryptWithFactor(m, r.PowMod(n_, n2_));
}

BigInt PaillierPublicKey::SampleRandomness(Rng& rng) const {
  // r uniform in [1, n) with gcd(r, n) = 1; for a valid key a random
  // r < n is invertible except with negligible probability.
  BigInt r = BigInt::RandomBelow(n_, rng);
  while (r.IsZero() || !r.IsInvertibleMod(n_)) {
    r = BigInt::RandomBelow(n_, rng);
  }
  return r;
}

BigInt PaillierPublicKey::SampleRandomnessFactor(Rng& rng) const {
  return SampleRandomness(rng).PowMod(n_, n2_);
}

PaillierCiphertext PaillierPublicKey::EncryptWithFactor(
    const BigInt& m, const BigInt& rn_factor) const {
  PEM_CHECK(!m.IsNegative() && m < n_, "Paillier plaintext out of range");
  const BigInt gm = (BigInt(1) + m * n_) % n2_;
  return PaillierCiphertext{gm.MulMod(rn_factor, n2_)};
}

PaillierCiphertext PaillierPublicKey::EncryptZero(Rng& rng) const {
  return Encrypt(BigInt(0), rng);
}

PaillierCiphertext PaillierPublicKey::Add(const PaillierCiphertext& a,
                                          const PaillierCiphertext& b) const {
  return PaillierCiphertext{a.value.MulMod(b.value, n2_)};
}

PaillierCiphertext PaillierPublicKey::ScalarMul(const PaillierCiphertext& c,
                                                const BigInt& k) const {
  if (k.IsNegative()) {
    // c^{-|k|}: invert the ciphertext group element then exponentiate.
    const BigInt inv = c.value.InvMod(n2_);
    return PaillierCiphertext{inv.PowMod(-k, n2_)};
  }
  return PaillierCiphertext{c.value.PowMod(k, n2_)};
}

PaillierCiphertext PaillierPublicKey::Rerandomize(const PaillierCiphertext& c,
                                                  Rng& rng) const {
  return Add(c, EncryptZero(rng));
}

PaillierPrivateKey::PaillierPrivateKey(const PaillierPublicKey& pk, BigInt p,
                                       BigInt q)
    : pk_(pk), p_(std::move(p)), q_(std::move(q)) {
  const BigInt p1 = p_ - BigInt(1);
  const BigInt q1 = q_ - BigInt(1);
  lambda_ = p1.Lcm(q1);
  // With g = n+1, L(g^lambda mod n^2) = lambda mod n, so mu = lambda^-1.
  // Computed via the generic formula to stay correct if g changes.
  const BigInt u = pk_.n().AddMod(BigInt(1), pk_.n_squared())
                       .PowMod(lambda_, pk_.n_squared());
  mu_ = LFunction(u, pk_.n()).InvMod(pk_.n());

  // CRT tables: decrypt mod p^2 and q^2 then recombine.
  p2_ = p_ * p_;
  q2_ = q_ * q_;
  const BigInt gp = pk_.n().AddMod(BigInt(1), p2_).PowMod(p1, p2_);
  hp_ = LFunction(gp, p_).InvMod(p_);
  const BigInt gq = pk_.n().AddMod(BigInt(1), q2_).PowMod(q1, q2_);
  hq_ = LFunction(gq, q_).InvMod(q_);
  q_inv_mod_p_ = q_.InvMod(p_);
}

BigInt PaillierPrivateKey::DecryptPlain(const PaillierCiphertext& c) const {
  const BigInt u = c.value.PowMod(lambda_, pk_.n_squared());
  return LFunction(u, pk_.n()).MulMod(mu_, pk_.n());
}

BigInt PaillierPrivateKey::DecryptCrt(const PaillierCiphertext& c) const {
  const BigInt p1 = p_ - BigInt(1);
  const BigInt q1 = q_ - BigInt(1);
  // m_p = L_p(c^{p-1} mod p^2) * hp mod p
  const BigInt mp =
      LFunction((c.value % p2_).PowMod(p1, p2_), p_).MulMod(hp_, p_);
  const BigInt mq =
      LFunction((c.value % q2_).PowMod(q1, q2_), q_).MulMod(hq_, q_);
  // Garner recombination: m = mq + q * ((mp - mq) * q^-1 mod p).
  const BigInt diff = mp.SubMod(mq % p_, p_);
  const BigInt h = diff.MulMod(q_inv_mod_p_, p_);
  return (mq + q_ * h) % pk_.n();
}

BigInt PaillierPrivateKey::Decrypt(const PaillierCiphertext& c) const {
  PEM_CHECK(!c.value.IsNegative() && c.value < pk_.n_squared(),
            "Paillier ciphertext out of range");
  return use_crt_ ? DecryptCrt(c) : DecryptPlain(c);
}

int64_t PaillierPrivateKey::DecryptSigned(const PaillierCiphertext& c) const {
  return pk_.DecodeSigned(Decrypt(c));
}

PaillierCrtEncryptor::PaillierCrtEncryptor(const PaillierPrivateKey& sk)
    : pk_(sk.public_key()), p_(sk.p_), q_(sk.q_) {
  p2_ = p_ * p_;
  q2_ = q_ * q_;
  // (Z/p^2)* has order p(p-1); for r a unit mod n the exponent n
  // reduces to e_p = n mod p(p-1) (Euler).  Because p divides both n
  // and p(p-1), p also divides e_p — which unlocks a second reduction
  // (see RandomnessFactor): we only ever exponentiate by t_p = e_p / p,
  // a half-width exponent, at quarter-width modulus p.  Symmetric for q.
  t_p_ = (pk_.n() % (p2_ - p_)) / p_;
  t_q_ = (pk_.n() % (q2_ - q_)) / q_;
  q2_inv_mod_p2_ = q2_.InvMod(p2_);
}

PaillierCrtEncryptor::PaillierCrtEncryptor(const PaillierPublicKey& pk,
                                           const PaillierPrivateKey& sk)
    : PaillierCrtEncryptor(sk) {
  PEM_CHECK(pk == sk.public_key(),
            "CRT encryptor: public key does not match the private key");
}

BigInt PaillierCrtEncryptor::RandomnessFactor(const BigInt& r) const {
  // Range check only: the full gcd unit test would eat a measurable
  // slice of the CRT saving, and every caller either sampled r via
  // SampleRandomness (a unit by construction) or went through
  // EncryptWithRandomness, which performs the gcd check.
  PEM_CHECK(!r.IsZero() && r < pk_.n(),
            "encryption randomness must be a unit mod n");
  // r^n mod p^2 in two short hops instead of one full-length one.
  // With e_p = n mod p(p-1) (Euler) and e_p = p * t_p (p divides n):
  //   r^n = (r^{t_p})^p  ≡  ((r^{t_p}) mod p)^p      (mod p^2)
  // because y^p mod p^2 depends only on y mod p — writing y' = y(1+pu)
  // gives (1+pu)^p = 1 + p^2*u + ... ≡ 1 (mod p^2).  So one
  // half-width exponent at modulus p, then one half-width exponent
  // (p itself) at modulus p^2; symmetric for q; Garner-recombine.
  const BigInt zp = (r % p_).PowMod(t_p_, p_);
  const BigInt xp = zp.PowMod(p_, p2_);
  const BigInt zq = (r % q_).PowMod(t_q_, q_);
  const BigInt xq = zq.PowMod(q_, q2_);
  // Garner: x = xq + q^2 * ((xp - xq) * (q^2)^-1 mod p^2), the unique
  // representative in [0, n^2) — hence bit-identical to r^n mod n^2.
  const BigInt h = xp.SubMod(xq % p2_, p2_).MulMod(q2_inv_mod_p2_, p2_);
  return xq + q2_ * h;
}

BigInt PaillierCrtEncryptor::SampleRandomnessFactor(Rng& rng) const {
  return RandomnessFactor(pk_.SampleRandomness(rng));
}

PaillierCiphertext PaillierCrtEncryptor::EncryptWithRandomness(
    const BigInt& m, const BigInt& r) const {
  // Mirrors PaillierPublicKey::EncryptWithRandomness: adversarial r is
  // rejected here, so the factor fast path can skip the gcd.
  PEM_CHECK(!r.IsZero() && r < pk_.n() && r.IsInvertibleMod(pk_.n()),
            "encryption randomness must be a unit mod n");
  return pk_.EncryptWithFactor(m, RandomnessFactor(r));
}

PaillierCiphertext PaillierCrtEncryptor::Encrypt(const BigInt& m,
                                                 Rng& rng) const {
  return EncryptWithRandomness(m, pk_.SampleRandomness(rng));
}

PaillierCiphertext PaillierCrtEncryptor::EncryptSigned(int64_t v,
                                                       Rng& rng) const {
  return Encrypt(pk_.EncodeSigned(v), rng);
}

PaillierKeyPair GeneratePaillierKeyPair(int key_bits, Rng& rng) {
  PEM_CHECK(key_bits >= 128 && key_bits % 2 == 0,
            "key_bits must be even and >= 128");
  const int prime_bits = key_bits / 2;
  for (;;) {
    BigInt p = BigInt::RandomPrime(prime_bits, rng);
    BigInt q = BigInt::RandomPrime(prime_bits, rng);
    if (p == q) continue;
    BigInt n = p * q;
    if (n.BitLength() != static_cast<size_t>(key_bits)) continue;
    // gcd(n, (p-1)(q-1)) == 1 guarantees L is well-defined; holds for
    // distinct same-size primes but we verify anyway.
    const BigInt phi = (p - BigInt(1)) * (q - BigInt(1));
    if (n.Gcd(phi) != BigInt(1)) continue;
    PaillierPublicKey pub(n, key_bits);
    PaillierPrivateKey priv(pub, std::move(p), std::move(q));
    return PaillierKeyPair{std::move(pub), std::move(priv)};
  }
}

std::vector<uint8_t> PaillierPublicKey::Serialize() const {
  net::ByteWriter w;
  w.U32(static_cast<uint32_t>(key_bits_));
  w.Bytes(n_.ToBytes());
  return w.Take();
}

Result<PaillierPublicKey> PaillierPublicKey::Deserialize(
    std::span<const uint8_t> bytes) {
  // Length checks first: the payload may come from an untrusted peer.
  if (bytes.size() < 8) {
    return Error(ErrorCode::kSerialization, "public key: truncated");
  }
  net::ByteReader r(bytes);
  const uint32_t key_bits = r.U32();
  if (key_bits < 128 || key_bits > 1u << 16 || key_bits % 2 != 0) {
    return Error(ErrorCode::kSerialization, "public key: bad key_bits");
  }
  const std::optional<std::vector<uint8_t>> n_bytes = r.TryBytes();
  if (!n_bytes.has_value() || n_bytes->size() > (key_bits + 7) / 8) {
    return Error(ErrorCode::kSerialization, "public key: bad modulus size");
  }
  const BigInt n = BigInt::FromBytes(*n_bytes);
  if (n.BitLength() != key_bits) {
    return Error(ErrorCode::kSerialization,
                 "public key: modulus width mismatch");
  }
  if (!r.AtEnd()) {
    return Error(ErrorCode::kSerialization, "public key: trailing bytes");
  }
  return PaillierPublicKey(n, static_cast<int>(key_bits));
}

std::vector<uint8_t> PaillierPrivateKey::Serialize() const {
  net::ByteWriter w;
  w.Bytes(pk_.Serialize());
  w.Bytes(p_.ToBytes());
  w.Bytes(q_.ToBytes());
  return w.Take();
}

Result<PaillierPrivateKey> PaillierPrivateKey::Deserialize(
    std::span<const uint8_t> bytes) {
  if (bytes.size() < 12) {
    return Error(ErrorCode::kSerialization, "private key: truncated");
  }
  net::ByteReader r(bytes);
  const std::optional<std::vector<uint8_t>> pk_bytes = r.TryBytes();
  if (!pk_bytes.has_value()) {
    return Error(ErrorCode::kSerialization, "private key: missing public key");
  }
  Result<PaillierPublicKey> pk = PaillierPublicKey::Deserialize(*pk_bytes);
  if (!pk.ok()) return pk.error();
  const std::optional<std::vector<uint8_t>> p_bytes = r.TryBytes();
  if (!p_bytes.has_value()) {
    return Error(ErrorCode::kSerialization, "private key: missing primes");
  }
  const BigInt p = BigInt::FromBytes(*p_bytes);
  const std::optional<std::vector<uint8_t>> q_bytes = r.TryBytes();
  if (!q_bytes.has_value()) {
    return Error(ErrorCode::kSerialization, "private key: missing q");
  }
  const BigInt q = BigInt::FromBytes(*q_bytes);
  if (!r.AtEnd()) {
    return Error(ErrorCode::kSerialization, "private key: trailing bytes");
  }
  if (p * q != pk.value().n() || !p.IsProbablePrime() ||
      !q.IsProbablePrime()) {
    return Error(ErrorCode::kSerialization,
                 "private key: primes inconsistent with modulus");
  }
  // n = p^2 passes the product/primality checks above but breaks the
  // CRT tables (q is not invertible mod p); reject it as malformed
  // input instead of aborting in the constructor.
  if (p == q) {
    return Error(ErrorCode::kSerialization,
                 "private key: primes must be distinct");
  }
  return PaillierPrivateKey(pk.value(), p, q);
}

void PaillierRandomnessPool::AttachCrtEncryptor(PaillierCrtEncryptor enc) {
  PEM_CHECK(enc.public_key().n() == pk_.n(),
            "CRT encryptor attached to a pool for a different modulus");
  crt_ = std::move(enc);
}

void PaillierRandomnessPool::Refill(size_t target, Rng& rng,
                                    unsigned threads) {
  if (factors_.size() >= target) return;
  // Phase 1 (sequential): draw every r — the only RNG consumer — so the
  // factor sequence does not depend on how phase 2 is scheduled.
  std::vector<BigInt> rs(target - factors_.size());
  for (BigInt& r : rs) r = pk_.SampleRandomness(rng);
  // Phase 2 (fan-out): the r^n exponentiations, via the owner's CRT
  // tables when attached (same bits, ~2-3x cheaper).  Computed into a
  // local buffer and appended only on success: if ParallelFor throws
  // (worker exception, or thread spawn failing under resource
  // exhaustion), the pool must not be left holding default-constructed
  // zero "factors" that TakeFactor would hand out as randomness.
  std::vector<BigInt> computed(rs.size());
  ParallelFor(0, rs.size(), threads, [&](size_t i) {
    computed[i] = crt_.has_value()
                      ? crt_->RandomnessFactor(rs[i])
                      : rs[i].PowMod(pk_.n(), pk_.n_squared());
  });
  factors_.insert(factors_.end(),
                  std::make_move_iterator(computed.begin()),
                  std::make_move_iterator(computed.end()));
}

PaillierCiphertext PaillierRandomnessPool::Encrypt(const BigInt& m, Rng& rng) {
  if (factors_.empty()) return pk_.Encrypt(m, rng);  // dry-pool fallback
  PaillierCiphertext ct = pk_.EncryptWithFactor(m, factors_.back());
  factors_.pop_back();
  return ct;
}

PaillierCiphertext PaillierRandomnessPool::EncryptSigned(int64_t v, Rng& rng) {
  return Encrypt(pk_.EncodeSigned(v), rng);
}

std::optional<BigInt> PaillierRandomnessPool::TakeFactor() {
  if (factors_.empty()) return std::nullopt;
  BigInt f = std::move(factors_.back());
  factors_.pop_back();
  return f;
}

PaillierRandomnessPool& PaillierPoolRegistry::PoolFor(
    const PaillierPublicKey& pk) {
  for (const auto& pool : pools_) {
    if (pool->public_key().n() == pk.n()) return *pool;
  }
  pools_.push_back(std::make_unique<PaillierRandomnessPool>(pk));
  return *pools_.back();
}

void PaillierPoolRegistry::AttachOwner(const PaillierPrivateKey& sk) {
  PaillierRandomnessPool& pool = PoolFor(sk.public_key());
  if (!pool.has_crt_encryptor()) {
    pool.AttachCrtEncryptor(PaillierCrtEncryptor(sk));
  }
}

void PaillierPoolRegistry::RefillAll(size_t target, Rng& rng,
                                     unsigned threads) {
  // Pools refill in registration order; each pool's r draws are
  // sequential, so the sequences match the serial overload whatever
  // `threads` is.
  for (const auto& pool : pools_) pool->Refill(target, rng, threads);
}

void PaillierPoolRegistry::RefillAll(size_t target, Rng& rng,
                                     const net::ExecutionPolicy& policy) {
  RefillAll(target, rng, policy.worker_count());
}

}  // namespace pem::crypto
