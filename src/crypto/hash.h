// Hash and KDF primitives shared by the garbled-circuit and OT code.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace pem::crypto {

struct Sha256Digest {
  std::array<uint8_t, 32> bytes{};

  bool operator==(const Sha256Digest&) const = default;
  std::string Hex() const;
};

Sha256Digest Sha256(std::span<const uint8_t> data);
Sha256Digest Sha256(const std::string& s);

// Domain-separated KDF: H(tag || chunks...).  Used to derive garbled
// rows and OT pads; the tag prevents cross-protocol collisions.
Sha256Digest Kdf(uint64_t tag, std::span<const std::span<const uint8_t>> chunks);

// Convenience two-input form.
Sha256Digest Kdf2(uint64_t tag, std::span<const uint8_t> a,
                  std::span<const uint8_t> b);

}  // namespace pem::crypto
