// Yao garbled circuits with free-XOR and point-and-permute.
//
// The paper evaluates secure comparison with Fairplay; this is the
// modern equivalent construction:
//   * a global offset R (lsb forced to 1) makes XOR and NOT gates free;
//   * AND gates cost one 4-row table, rows keyed by the labels'
//     permute bits, entries derived with a SHA-256 KDF.
//
// Semi-honest security, matching the paper's threat model (§II-B).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "crypto/circuit.h"
#include "crypto/rng.h"

namespace pem::crypto {

struct WireLabel {
  std::array<uint8_t, 16> bytes{};

  bool permute_bit() const { return bytes[15] & 1; }
  WireLabel Xor(const WireLabel& o) const {
    WireLabel r;
    for (size_t i = 0; i < bytes.size(); ++i) r.bytes[i] = bytes[i] ^ o.bytes[i];
    return r;
  }
  bool operator==(const WireLabel&) const = default;
};

// Everything the evaluator needs, minus the input labels (those arrive
// directly for the garbler's inputs and via OT for the evaluator's).
struct GarbledTables {
  // One 4-row table per AND gate, in circuit gate order.
  std::vector<std::array<WireLabel, 4>> and_tables;
  // Decode bit per circuit output wire.
  std::vector<uint8_t> output_decode;

  std::vector<uint8_t> Serialize() const;
  static GarbledTables Deserialize(std::span<const uint8_t> bytes,
                                   const Circuit& circuit);
  size_t SerializedSize() const;
};

class Garbler {
 public:
  // Garbles `circuit` immediately.  The circuit must outlive the
  // garbler.
  Garbler(const Circuit& circuit, Rng& rng);

  const GarbledTables& tables() const { return tables_; }

  // Label for the garbler's own input bit `value` at bundle index `i`.
  WireLabel GarblerInputLabel(size_t i, bool value) const;
  // Both labels for the evaluator's input at bundle index `i`
  // (fed into OT as (m0, m1)).
  std::pair<WireLabel, WireLabel> EvaluatorInputLabels(size_t i) const;

  // Decodes an output label back to a cleartext bit (used in tests and
  // when the garbler is the output receiver).
  bool DecodeOutput(size_t output_index, const WireLabel& label) const;

 private:
  const WireLabel& Label0(int32_t wire) const;
  WireLabel Label1(int32_t wire) const;

  const Circuit& circuit_;
  WireLabel delta_;                 // global free-XOR offset, lsb = 1
  std::vector<WireLabel> label0_;   // label for value 0, per wire
  GarbledTables tables_;
};

class Evaluator {
 public:
  Evaluator(const Circuit& circuit, GarbledTables tables);

  // Evaluates given the active labels for both input bundles, in
  // bundle order.  Returns the decoded output bits.
  std::vector<bool> Evaluate(const std::vector<WireLabel>& garbler_labels,
                             const std::vector<WireLabel>& evaluator_labels);

 private:
  const Circuit& circuit_;
  GarbledTables tables_;
};

// Gate-entry KDF shared by garbler and evaluator.
WireLabel GateKdf(const WireLabel& a, const WireLabel& b, uint64_t gate_id);

}  // namespace pem::crypto
