// Hash commitments (SHA-256, with a 32-byte blinder).
//
// Building block for the paper's §VI malicious-model extension:
// agents commit to their protocol contributions up front so that a
// later audit can detect data-integrity violations (an agent replacing
// its input mid-protocol).  Hiding comes from the random blinder;
// binding from SHA-256 collision resistance.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "crypto/hash.h"
#include "crypto/rng.h"

namespace pem::crypto {

struct Commitment {
  Sha256Digest digest{};

  bool operator==(const Commitment&) const = default;
};

struct CommitmentOpening {
  std::vector<uint8_t> value;
  std::array<uint8_t, 32> blinder{};
};

// Commits to `value` under `blinder`.
Commitment Commit(std::span<const uint8_t> value,
                  std::span<const uint8_t, 32> blinder);

// Samples a blinder and returns the opening for `value`.
CommitmentOpening MakeOpening(std::span<const uint8_t> value, Rng& rng);

// Constant-shape verification (recompute and compare digests).
bool VerifyOpening(const Commitment& commitment,
                   const CommitmentOpening& opening);

// Convenience pair for committing to a signed 64-bit value.
Commitment CommitInt64(int64_t value,
                       std::span<const uint8_t, 32> blinder);
CommitmentOpening MakeInt64Opening(int64_t value, Rng& rng);

}  // namespace pem::crypto
