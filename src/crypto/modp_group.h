// Multiplicative prime-order-ish groups for the base oblivious
// transfer.  The production presets are the RFC 3526 MODP safe-prime
// groups (generator 2); a small 512-bit safe prime is provided for fast
// unit tests.
#pragma once

#include "crypto/bigint.h"

namespace pem::crypto {

enum class ModpGroupId {
  kModp768,   // RFC 2409 Oakley group 1 — fast, tests/benches only
  kModp1536,  // RFC 3526 group 5
  kModp2048,  // RFC 3526 group 14
};

class ModpGroup {
 public:
  static const ModpGroup& Get(ModpGroupId id);

  const BigInt& p() const { return p_; }      // safe prime
  const BigInt& q() const { return q_; }      // (p-1)/2
  const BigInt& g() const { return g_; }      // generator of QR subgroup
  size_t element_bytes() const { return element_bytes_; }

  // g^e mod p
  BigInt Exp(const BigInt& e) const { return g_.PowMod(e, p_); }
  // a^e mod p
  BigInt Exp(const BigInt& a, const BigInt& e) const { return a.PowMod(e, p_); }
  BigInt Mul(const BigInt& a, const BigInt& b) const { return a.MulMod(b, p_); }
  BigInt Div(const BigInt& a, const BigInt& b) const {
    return a.MulMod(b.InvMod(p_), p_);
  }

  // Uniform exponent in [1, q).
  BigInt RandomExponent(Rng& rng) const;

 private:
  ModpGroup(const char* p_hex, int generator);

  BigInt p_, q_, g_;
  size_t element_bytes_;
};

}  // namespace pem::crypto
