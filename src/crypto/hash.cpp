#include "crypto/hash.h"

#include <openssl/evp.h>

#include <cstdio>
#include <cstring>

#include "util/error.h"

namespace pem::crypto {
namespace {

// RAII for EVP_MD_CTX.
struct MdCtx {
  EVP_MD_CTX* ctx;
  MdCtx() : ctx(EVP_MD_CTX_new()) { PEM_CHECK(ctx != nullptr, "EVP ctx"); }
  ~MdCtx() { EVP_MD_CTX_free(ctx); }
  MdCtx(const MdCtx&) = delete;
  MdCtx& operator=(const MdCtx&) = delete;
};

}  // namespace

std::string Sha256Digest::Hex() const {
  std::string out;
  out.reserve(64);
  for (uint8_t b : bytes) {
    char tmp[3];
    std::snprintf(tmp, sizeof tmp, "%02x", b);
    out += tmp;
  }
  return out;
}

Sha256Digest Sha256(std::span<const uint8_t> data) {
  MdCtx md;
  PEM_CHECK(EVP_DigestInit_ex(md.ctx, EVP_sha256(), nullptr) == 1, "init");
  PEM_CHECK(EVP_DigestUpdate(md.ctx, data.data(), data.size()) == 1, "update");
  Sha256Digest d;
  unsigned int len = 0;
  PEM_CHECK(EVP_DigestFinal_ex(md.ctx, d.bytes.data(), &len) == 1, "final");
  PEM_CHECK(len == 32, "sha256 length");
  return d;
}

Sha256Digest Sha256(const std::string& s) {
  return Sha256(std::span<const uint8_t>(
      reinterpret_cast<const uint8_t*>(s.data()), s.size()));
}

Sha256Digest Kdf(uint64_t tag,
                 std::span<const std::span<const uint8_t>> chunks) {
  MdCtx md;
  PEM_CHECK(EVP_DigestInit_ex(md.ctx, EVP_sha256(), nullptr) == 1, "init");
  uint8_t tag_bytes[8];
  std::memcpy(tag_bytes, &tag, 8);
  PEM_CHECK(EVP_DigestUpdate(md.ctx, tag_bytes, 8) == 1, "update");
  for (const auto& c : chunks) {
    // Length-prefix each chunk so concatenations cannot collide.
    const uint64_t len = c.size();
    uint8_t len_bytes[8];
    std::memcpy(len_bytes, &len, 8);
    PEM_CHECK(EVP_DigestUpdate(md.ctx, len_bytes, 8) == 1, "update");
    PEM_CHECK(EVP_DigestUpdate(md.ctx, c.data(), c.size()) == 1, "update");
  }
  Sha256Digest d;
  unsigned int out_len = 0;
  PEM_CHECK(EVP_DigestFinal_ex(md.ctx, d.bytes.data(), &out_len) == 1, "final");
  PEM_CHECK(out_len == 32, "sha256 length");
  return d;
}

Sha256Digest Kdf2(uint64_t tag, std::span<const uint8_t> a,
                  std::span<const uint8_t> b) {
  const std::span<const uint8_t> chunks[] = {a, b};
  return Kdf(tag, chunks);
}

}  // namespace pem::crypto
