#include "crypto/rng.h"

#include <openssl/rand.h>

#include <cstring>

#include "crypto/hash.h"
#include "util/error.h"

namespace pem::crypto {

uint64_t Rng::NextU64() {
  uint8_t b[8];
  Fill(b);
  uint64_t v = 0;
  std::memcpy(&v, b, 8);
  return v;
}

void SystemRng::Fill(std::span<uint8_t> out) {
  PEM_CHECK(RAND_bytes(out.data(), static_cast<int>(out.size())) == 1,
            "RAND_bytes failed");
}

SystemRng& SystemRng::Instance() {
  static SystemRng rng;
  return rng;
}

DeterministicRng::DeterministicRng(uint64_t seed) : pos_(32), counter_(0) {
  uint8_t seed_bytes[8];
  std::memcpy(seed_bytes, &seed, 8);
  const Sha256Digest d = Sha256(seed_bytes);
  std::memcpy(state_, d.bytes.data(), 32);
}

void DeterministicRng::Refill() {
  uint8_t block[40];
  std::memcpy(block, state_, 32);
  std::memcpy(block + 32, &counter_, 8);
  ++counter_;
  const Sha256Digest d = Sha256(block);
  std::memcpy(buf_, d.bytes.data(), 32);
  pos_ = 0;
}

void DeterministicRng::Fill(std::span<uint8_t> out) {
  for (uint8_t& b : out) {
    if (pos_ == 32) Refill();
    b = buf_[pos_++];
  }
}

}  // namespace pem::crypto
