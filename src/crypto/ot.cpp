#include "crypto/ot.h"

#include <cstring>

#include "crypto/hash.h"
#include "util/error.h"

namespace pem::crypto {
namespace {

constexpr uint64_t kOtKdfTag = 0x4F54'5041'4421ull;  // "OTPAD!"

// Derives a 16-byte pad from a group element.
OtMessage PadFromElement(const BigInt& elem, const ModpGroup& group,
                         uint8_t which) {
  const std::vector<uint8_t> bytes = elem.ToBytesPadded(group.element_bytes());
  const uint8_t which_bytes[1] = {which};
  const Sha256Digest d = Kdf2(kOtKdfTag, bytes, which_bytes);
  OtMessage pad;
  std::memcpy(pad.data(), d.bytes.data(), pad.size());
  return pad;
}

OtMessage Xor(const OtMessage& a, const OtMessage& b) {
  OtMessage r;
  for (size_t i = 0; i < r.size(); ++i) r[i] = a[i] ^ b[i];
  return r;
}

}  // namespace

OtSender::OtSender(const ModpGroup& group, Rng& rng)
    : group_(group), a_(group.RandomExponent(rng)), big_a_(group.Exp(a_)) {}

std::vector<uint8_t> OtSender::Round1() {
  return big_a_.ToBytesPadded(group_.element_bytes());
}

std::vector<uint8_t> OtSender::Round2(std::span<const uint8_t> receiver_b,
                                      const OtMessage& m0,
                                      const OtMessage& m1) const {
  PEM_CHECK(receiver_b.size() == group_.element_bytes(),
            "OT: bad receiver element size");
  const BigInt big_b = BigInt::FromBytes(receiver_b);
  // k0 = H(B^a), k1 = H((B/A)^a).
  const BigInt k0_elem = group_.Exp(big_b, a_);
  const BigInt k1_elem = group_.Exp(group_.Div(big_b, big_a_), a_);
  const OtMessage c0 = Xor(m0, PadFromElement(k0_elem, group_, 0));
  const OtMessage c1 = Xor(m1, PadFromElement(k1_elem, group_, 1));
  std::vector<uint8_t> out(32);
  std::memcpy(out.data(), c0.data(), 16);
  std::memcpy(out.data() + 16, c1.data(), 16);
  return out;
}

OtReceiver::OtReceiver(const ModpGroup& group, Rng& rng)
    : group_(group), b_(group.RandomExponent(rng)) {}

std::vector<uint8_t> OtReceiver::Round1(std::span<const uint8_t> sender_a,
                                        bool choice) {
  PEM_CHECK(sender_a.size() == group_.element_bytes(),
            "OT: bad sender element size");
  big_a_ = BigInt::FromBytes(sender_a);
  choice_ = choice;
  BigInt big_b = group_.Exp(b_);
  if (choice) big_b = group_.Mul(big_a_, big_b);
  return big_b.ToBytesPadded(group_.element_bytes());
}

OtMessage OtReceiver::Decrypt(std::span<const uint8_t> sender_round2) const {
  PEM_CHECK(sender_round2.size() == 32, "OT: bad round2 size");
  // k_c = H(A^b) for either choice: B^a = (g^b)^a (c=0) or (A g^b)^a,
  // and (B/A)^a = g^{ab} when c=1 — both equal A^b.
  const BigInt kc_elem = group_.Exp(big_a_, b_);
  const OtMessage pad =
      PadFromElement(kc_elem, group_, static_cast<uint8_t>(choice_));
  OtMessage cipher;
  std::memcpy(cipher.data(), sender_round2.data() + (choice_ ? 16 : 0), 16);
  return Xor(cipher, pad);
}

}  // namespace pem::crypto
