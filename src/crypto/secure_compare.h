// Two-party secure comparison (Yao's millionaires problem) between two
// transport endpoints: the garbler holds x, the evaluator holds y,
// both learn [x < y] and nothing else.  This is the "secure comparison
// with Fairplay" step of Private Market Evaluation (Protocol 2,
// line 14).
//
// Wire protocol (all bytes routed through the bandwidth-accounted
// transport):
//   1. G -> E : garbled tables, decode bits, G's active input labels,
//               one OT round-1 element per evaluator input bit
//   2. E -> G : one OT round-1 response per bit
//   3. G -> E : one OT round-2 ciphertext pair per bit
//   4. E -> G : the decoded result bit (both parties learn the output,
//               as in the paper)
#pragma once

#include <cstdint>

#include "crypto/modp_group.h"
#include "crypto/rng.h"
#include "net/transport.h"

namespace pem::crypto {

struct SecureCompareConfig {
  int bits = 64;
  ModpGroupId group = ModpGroupId::kModp768;
};

// Message type tags (namespaced to stay clear of protocol/ tags).
inline constexpr uint32_t kMsgGcTablesAndOt1 = 0x4743'0001;
inline constexpr uint32_t kMsgGcOtResponses = 0x4743'0002;
inline constexpr uint32_t kMsgGcOtFinal = 0x4743'0003;
inline constexpr uint32_t kMsgGcResult = 0x4743'0004;

// Runs the full protocol between the `garbler` endpoint (holding x)
// and the `evaluator` endpoint (holding y); both must belong to the
// same transport and to distinct agents.  Both agents' traffic is
// accounted on their endpoints.  Returns x < y (unsigned comparison
// over `cfg.bits` bits).
bool SecureCompareLess(net::Endpoint& garbler, uint64_t x,
                       net::Endpoint& evaluator, uint64_t y,
                       const SecureCompareConfig& cfg, Rng& rng);

}  // namespace pem::crypto
