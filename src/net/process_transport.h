// Transport backend with one forked OS process per agent.
//
// This is the deployment model the paper actually evaluates — every
// agent an independent party that exchanges nothing but wire messages —
// realized with fork(2): the parent creates one full-duplex Unix-domain
// socketpair per agent plus a control socketpair, forks one child per
// agent that inherits EXACTLY its own ends, and keeps the relay router
// in the parent.  Table-I bandwidth measured here is literal
// cross-process socket traffic, accounted by the parent as the frames
// cross its router.
//
// Execution model (see protocol/agent_driver.h for the protocol side).
// The PEM protocols are a deterministic script over one seeded RNG:
// coalition formation, ring orders, aggregator elections, nonces and
// encryption randomness all derive from state every child inherited at
// fork time.  Each child therefore re-derives the public schedule by
// running the canonical script against an in-memory shadow bus
// (MessageBus), while the wire operations of ITS OWN agent are real:
//   * Send(from == self)  writes the canonical frame to the inherited
//     socketpair (and to the shadow, which keeps the script advancing);
//   * Receive(self)       blocks on the socketpair and byte-matches the
//     arriving frame against the shadow's expectation — every message
//     this agent consumes provably crossed the kernel, byte-identical
//     to what the deterministic protocol demands;
//   * Send/Receive(other) touch only the shadow: another agent's
//     traffic is that agent's own process's business.
// Frames from concurrent senders may physically arrive out of script
// order (the processes really do run in parallel); a small stash holds
// early arrivals until the script asks for them, so per-sender FIFO
// order — the only order two independent parties can observe — is what
// the parity tests compare.
//
// Child lifecycle.  Children are commanded over the control channel
// (length-prefixed records) and report results the same way.  A child
// that exits cleanly writes a Done record first; one that throws writes
// an Error record; one that crashes is detected by control-channel
// hangup, reaped with waitpid, and surfaced as a structured
// TransportError naming the agent and its exit status or signal —
// within the watchdog timeout, never as a silent hang.  The destructor
// SIGKILLs and reaps whatever is still running, so no orphans or
// zombies survive a failed run, and every inherited descriptor is
// closed (asserted by the fd-stability lifecycle test).
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "net/bus.h"
#include "net/frame.h"
#include "net/relay_util.h"
#include "net/transport.h"

namespace pem::net {

// --- control plane ----------------------------------------------------

// Record tags on the per-child control channel.  Commands flow parent
// -> child, reports child -> parent.
inline constexpr uint32_t kCtlCmdRun = 1;       // payload: command-defined
inline constexpr uint32_t kCtlCmdShutdown = 2;  // child replies Done + exits
inline constexpr uint32_t kCtlRepWindow = 3;    // payload: a window report
inline constexpr uint32_t kCtlRepDone = 4;      // clean goodbye
inline constexpr uint32_t kCtlRepError = 5;     // payload: utf-8 what()

struct ControlRecord {
  uint32_t tag = 0;
  std::vector<uint8_t> payload;
};

// Length-prefixed records ([u32 tag | u32 len | bytes]) over one end of
// a socketpair.  Owns the descriptor.  Reads are deadline-bounded and
// surface hangup / timeout as structured TransportError (never a silent
// nullopt) — this is how a crashed child becomes a report instead of a
// 6-hour CI hang.
class ControlChannel {
 public:
  // `peer` names the agent on the other end (for error messages).
  ControlChannel(int fd, AgentId peer);
  ~ControlChannel();
  ControlChannel(const ControlChannel&) = delete;
  ControlChannel& operator=(const ControlChannel&) = delete;

  void Write(uint32_t tag, std::span<const uint8_t> payload = {});
  ControlRecord Read(int timeout_ms);

  int fd() const { return fd_; }

 private:
  int fd_ = -1;
  AgentId peer_ = -1;
  // Receive accumulator: one recv may coalesce several records (e.g. a
  // child's Done immediately followed by an Error); bytes beyond the
  // record being returned stay buffered for the next Read.
  std::vector<uint8_t> rxbuf_;
};

// --- child side -------------------------------------------------------

// The Transport a forked child hands its protocol driver: canonical
// shadow bus for the script, real socketpair for this agent's own
// traffic (see the file comment).  Accounting, HasMessage and the
// observer run on the shadow, so stats() reports exactly the canonical
// per-agent ledger every in-process backend reports — while the parent
// router independently accounts the literal socket bytes, and the two
// are asserted equal per window.
class ProcessChildTransport : public Transport {
 public:
  // Takes ownership of `wire_fd` (this agent's socketpair end).
  ProcessChildTransport(int num_agents, AgentId self, int wire_fd);
  ~ProcessChildTransport() override;
  ProcessChildTransport(const ProcessChildTransport&) = delete;
  ProcessChildTransport& operator=(const ProcessChildTransport&) = delete;

  AgentId self() const { return self_; }

  int num_agents() const override { return shadow_.num_agents(); }
  void Send(Message msg) override;
  std::optional<Message> Receive(AgentId agent) override;
  bool HasMessage(AgentId agent) const override;
  TrafficStats stats(AgentId agent) const override;
  uint64_t total_bytes() const override { return shadow_.total_bytes(); }
  uint64_t total_messages() const override { return shadow_.total_messages(); }
  double AverageBytesPerAgent() const override;
  void ResetStats() override { shadow_.ResetStats(); }
  void SetObserver(Observer observer) override;

  // Asserts nothing unconsumed remains: no stashed early arrivals, no
  // partial frame in the decoder, no unread bytes in the kernel buffer.
  // Called after the protocol script completes; anything left means the
  // wire and the deterministic script diverged.
  void VerifyQuiescent() const;

 private:
  Message ReadWireFrame();  // blocking; throws TransportError on hangup

  MessageBus shadow_;
  AgentId self_;
  int wire_fd_ = -1;
  FrameDecoder rx_;
  // Frames that physically arrived before the script asked for them.
  std::vector<Message> stash_;
};

// --- parent side ------------------------------------------------------

// Forks and supervises the per-agent children; routes their frames and
// keeps the literal-socket-bytes ledger.  Not a Transport: the parent
// is an operator, not an agent — it cannot Send or Receive, only
// command children, collect their reports, and read the wire ledger.
class ProcessTransport {
 public:
  // Runs inside the forked child.  Return value becomes the child's
  // exit code.  Everything the callable captures is fork-copied, so
  // capturing the parent's protocol state by reference is the intended
  // way to hand each child its private snapshot.  On kCtlCmdShutdown
  // the child must Write(kCtlRepDone) and return 0 (AgentDriver::Serve
  // implements this contract).
  using ChildMain =
      std::function<int(AgentId self, Transport& wire, ControlChannel& ctl)>;

  struct Options {
    // Upper bound on any single control-plane wait (a child record, an
    // exit).  A deadlocked or runaway child fails the run with a
    // structured error after this long, instead of hanging until an
    // outer ctest TIMEOUT / CI runner kill.
    int watchdog_ms = 120'000;
  };

  ProcessTransport(int num_agents, ChildMain child_main, Options opts);
  ProcessTransport(int num_agents, ChildMain child_main)
      : ProcessTransport(num_agents, std::move(child_main), Options{}) {}
  // SIGKILLs and reaps any child still running; closes every fd.
  ~ProcessTransport();
  ProcessTransport(const ProcessTransport&) = delete;
  ProcessTransport& operator=(const ProcessTransport&) = delete;

  int num_agents() const { return static_cast<int>(children_.size()); }

  // Control plane (main thread only).
  void Command(AgentId agent, uint32_t tag,
               std::span<const uint8_t> payload = {});
  void CommandAll(uint32_t tag, std::span<const uint8_t> payload = {});
  // Next record from `agent`, watchdog-bounded.  A kCtlRepError record,
  // a hangup, or a timeout is thrown as TransportError; if the child
  // already died, the message names its exit status or fatal signal.
  ControlRecord ReadRecord(AgentId agent);
  // Clean teardown: Shutdown command to every child, Done record from
  // each, then reap; throws on a nonzero exit.  Idempotent.
  void Shutdown();

  // Wire ledger: literal bytes the router moved between processes.
  TrafficStats stats(AgentId agent) const;
  uint64_t total_bytes() const;
  uint64_t total_messages() const;
  double AverageBytesPerAgent() const;
  void ResetStats();
  // Observer runs on the router thread in arrival order (concurrent
  // senders interleave nondeterministically; per-sender order is FIFO).
  void SetObserver(Transport::Observer observer);
  std::optional<TransportFault> fault() const;

  // Whether `agent`'s child has been reaped (test introspection).
  bool reaped(AgentId agent) const;

 private:
  struct Child {
    pid_t pid = -1;
    int wire_fd = -1;  // parent end; nonblocking, router thread reads
    std::unique_ptr<ControlChannel> ctl;
    bool done = false;      // clean Done record received (mu_)
    bool wire_eof = false;  // router saw the wire hang up (mu_)
    bool reaped = false;    // waitpid collected
    int wait_status = 0;
  };

  void RouterLoop();
  void RouteFrame(const Message& frame);  // router thread only
  void FlushPending(AgentId dest);        // router thread only
  void WakeRouter();
  void RecordFault(AgentId agent, std::string detail);
  // waitpid with deadline; marks reaped.  Returns false on timeout.
  bool ReapChild(AgentId agent, int timeout_ms);
  void KillAndReapAll();  // SIGKILL stragglers; never throws
  void StopRouter();
  [[noreturn]] void ThrowChildFailure(AgentId agent, const std::string& why);

  std::vector<Child> children_;
  Options opts_;
  WakePipe wake_;
  bool finished_ = false;       // Shutdown() completed cleanly
  bool router_stopped_ = false;

  mutable std::mutex mu_;
  TrafficLedger ledger_;
  Transport::Observer observer_;
  std::optional<TransportFault> fault_;
  bool shutdown_ = false;  // router exit flag

  // Router-thread-only state.
  std::vector<FrameDecoder> rx_;
  std::vector<PendingBuf> pending_;
  std::vector<bool> closed_;  // wire hangup seen

  std::thread router_;
};

}  // namespace pem::net
