// Transport backend with one forked OS process per agent.
//
// This is the deployment model the paper actually evaluates — every
// agent an independent party that exchanges nothing but wire messages —
// realized with fork(2): the parent creates one full-duplex Unix-domain
// socketpair per agent plus a control socketpair, forks one child per
// agent that inherits EXACTLY its own ends, and keeps the relay router
// in the parent.  Table-I bandwidth measured here is literal
// cross-process socket traffic, accounted by the parent as the frames
// cross its router.
//
// The parent-side machinery — child table, relay router, control
// plane, watchdog, reaping — is the shared net::AgentSupervisor
// (net/agent_supervisor.h); this backend only differs in its
// constructor: make socketpairs, fork, adopt.
//
// Execution model (see protocol/agent_driver.h for the protocol side).
// The PEM protocols are a deterministic script over one seeded RNG:
// coalition formation, ring orders, aggregator elections, nonces and
// encryption randomness all derive from state every child inherited at
// fork time.  Each child therefore re-derives the public schedule by
// running the canonical script against an in-memory shadow bus
// (MessageBus), while the wire operations of ITS OWN agent are real:
//   * Send(from == self)  writes the canonical frame to the wire fd
//     (and to the shadow, which keeps the script advancing);
//   * Receive(self)       blocks on the wire and consumes the arriving
//     frame; in verifying mode (the default here, a debug mode on TCP)
//     it additionally byte-matches it against the shadow's expectation,
//     so every message this agent consumes provably crossed the kernel
//     byte-identical to what the deterministic protocol demands;
//   * Send/Receive(other) touch only the shadow: another agent's
//     traffic is that agent's own process's business.
// Frames from concurrent senders may physically arrive out of script
// order (the processes really do run in parallel); a small stash holds
// early arrivals until the script asks for them, so per-sender FIFO
// order — the only order two independent parties can observe — is what
// the parity tests compare.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/agent_supervisor.h"
#include "net/bus.h"
#include "net/frame.h"
#include "net/transport.h"

namespace pem::net {

// --- child side -------------------------------------------------------

// The Transport a forked child hands its protocol driver: canonical
// shadow bus for the script, real wire fd for this agent's own traffic
// (see the file comment).  Accounting, HasMessage and the observer run
// on the shadow, so stats() reports exactly the canonical per-agent
// ledger every in-process backend reports — while the parent router
// independently accounts the literal socket bytes, and the two are
// asserted equal per window.
//
// Verification mode.  With `verify_frames` (the socketpair backend's
// default) every frame this agent consumes is byte-matched against the
// deterministic script, and any mismatch throws.  Without it (the TCP
// backend's default — a real remote deployment trusts its transport,
// and the per-window ledger cross-check still runs in the parent) the
// script only names WHICH sender's frame to consume next; the wire
// frame itself, matched per-sender FIFO, is what Receive returns.
class ProcessChildTransport : public Transport {
 public:
  // Takes ownership of `wire_fd` (this agent's end of the wire).
  ProcessChildTransport(int num_agents, AgentId self, int wire_fd,
                        bool verify_frames = true);
  ~ProcessChildTransport() override;
  ProcessChildTransport(const ProcessChildTransport&) = delete;
  ProcessChildTransport& operator=(const ProcessChildTransport&) = delete;

  AgentId self() const { return self_; }

  int num_agents() const override { return shadow_.num_agents(); }
  void Send(Message msg) override;
  std::optional<Message> Receive(AgentId agent) override;
  bool HasMessage(AgentId agent) const override;
  TrafficStats stats(AgentId agent) const override;
  uint64_t total_bytes() const override { return shadow_.total_bytes(); }
  uint64_t total_messages() const override { return shadow_.total_messages(); }
  double AverageBytesPerAgent() const override;
  void ResetStats() override { shadow_.ResetStats(); }
  void SetObserver(Observer observer) override;

  // Asserts nothing unconsumed remains: no stashed early arrivals, no
  // partial frame in the decoder, no unread bytes in the kernel buffer.
  // Called after the protocol script completes; anything left means the
  // wire and the deterministic script diverged.
  void VerifyQuiescent() const;

 private:
  Message ReadWireFrame();  // blocking; throws TransportError on hangup

  MessageBus shadow_;
  AgentId self_;
  int wire_fd_ = -1;
  bool verify_frames_ = true;
  FrameDecoder rx_;
  // Frames that physically arrived before the script asked for them.
  std::vector<Message> stash_;
};

// Runs inside a freshly launched child process: builds the child-side
// transport over `wire_fd` and the control channel over `ctl_fd`, runs
// `child_main`, reports an Error record on exception, and _exits with
// the callable's return value.  Shared by the fork-over-socketpair and
// the connect-over-TCP child launchers.
[[noreturn]] void RunAdoptedChild(AgentId self, int num_agents, int wire_fd,
                                  int ctl_fd, bool verify_frames,
                                  const AgentSupervisor::ChildMain& child_main);

// One forked OS process per agent over inherited socketpairs.
class ProcessTransport : public AgentSupervisor {
 public:
  using Options = AgentSupervisor::Options;

  ProcessTransport(int num_agents, ChildMain child_main, Options opts);
  ProcessTransport(int num_agents, ChildMain child_main)
      : ProcessTransport(num_agents, std::move(child_main), Options{}) {}
};

}  // namespace pem::net
