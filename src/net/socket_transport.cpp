#include "net/socket_transport.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>

#include "util/error.h"

namespace pem::net {

SocketTransport::SocketTransport(int num_agents)
    : ledger_(num_agents > 0 ? static_cast<size_t>(num_agents) : 0) {
  PEM_CHECK(num_agents > 0, "SocketTransport needs at least one agent");
  const size_t n = static_cast<size_t>(num_agents);
  channels_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    auto ch = std::make_unique<Channel>();
    MakeSocketPair(&ch->egress_agent, &ch->egress_router);
    MakeSocketPair(&ch->ingress_router, &ch->ingress_agent);
    SetNonBlocking(ch->egress_router);
    SetNonBlocking(ch->ingress_router);
    channels_.push_back(std::move(ch));
  }
  wake_.Open();

  delivered_.assign(n, 0);
  popped_.assign(n, 0);
  router_rx_.resize(n);
  router_queue_.resize(n);
  pending_.resize(n);
  router_ = std::thread([this] { RouterLoop(); });
}

SocketTransport::~SocketTransport() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  WakeRouter();
  router_.join();
  for (auto& ch : channels_) {
    CloseIfOpen(ch->egress_agent);
    CloseIfOpen(ch->egress_router);
    CloseIfOpen(ch->ingress_router);
    CloseIfOpen(ch->ingress_agent);
  }
  wake_.Close();
}

void SocketTransport::WakeRouter() { wake_.Wake(); }

void SocketTransport::Send(Message msg) {
  const int n = num_agents();
  PEM_CHECK(msg.from >= 0 && msg.from < n, "bad sender id");
  const bool broadcast = msg.to == kBroadcast;
  if (!broadcast) {
    PEM_CHECK(msg.to >= 0 && msg.to < n, "bad receiver id");
  } else if (n == 1) {
    return;  // no recipients: nothing is accounted, nothing on the wire
  }

  Channel& ch = *channels_[static_cast<size_t>(msg.from)];
  // send_mu keeps this sender's wire frames contiguous and in the same
  // order as its ledger tickets even if two threads send as one agent.
  std::lock_guard<std::mutex> send_lock(ch.send_mu);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (broadcast) {
      for (AgentId to = 0; to < n; ++to) {
        if (to == msg.from) continue;
        ledger_.Account(msg.from, to, msg.payload.size());
        delivered_[static_cast<size_t>(to)] += 1;
        if (observer_) {
          Message copy = msg;
          copy.to = to;
          observer_(copy);
        }
      }
    } else {
      ledger_.Account(msg.from, msg.to, msg.payload.size());
      delivered_[static_cast<size_t>(msg.to)] += 1;
      if (observer_) observer_(msg);
    }
    tickets_.push_back(msg.from);
  }
  // The wire write happens outside mu_: the router needs mu_ to pop
  // tickets, and it is the router's reads that free a full egress
  // buffer — holding mu_ across a blocking send would deadlock.
  //
  // Wake the router BEFORE the blocking write, not just after: with
  // the ticket already visible, the wake makes the router add this
  // sender's egress fd to its poll set and drain it concurrently.  If
  // the wake only came after SendAll, a frame larger than the socket
  // buffer could block here while the router sleeps in poll() with
  // neither the egress fd nor a pending wake byte — a deadlock (this
  // is exactly SocketTransport.LargeFramesCrossTheRouterWithoutDeadlock
  // on a single-core host, where the router always wins the race into
  // poll between two Sends).
  WakeRouter();
  const std::vector<uint8_t> frame = EncodeFrame(msg);
  SendAllOrThrow(ch.egress_agent, frame.data(), frame.size(), msg.from,
                 "socket transport: egress");
  WakeRouter();
}

std::optional<Message> SocketTransport::Receive(AgentId agent) {
  PEM_CHECK(agent >= 0 && agent < num_agents(), "bad agent id");
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (popped_[static_cast<size_t>(agent)] >=
        delivered_[static_cast<size_t>(agent)]) {
      return std::nullopt;
    }
  }
  Channel& ch = *channels_[static_cast<size_t>(agent)];
  for (;;) {
    if (std::optional<Message> m = ch.rx.Next()) {
      std::lock_guard<std::mutex> lock(mu_);
      popped_[static_cast<size_t>(agent)] += 1;
      return m;
    }
    uint8_t buf[4096];
    const ssize_t n = recv(ch.ingress_agent, buf, sizeof buf, 0);
    if (n < 0) {
      PEM_CHECK(errno == EINTR, "socket transport: recv failed");
      continue;
    }
    if (n == 0) {
      // Hangup with a message still owed: the peer (router, or in
      // ProcessTransport the parent) died.  Surface WHO and WHY as a
      // structured error instead of aborting or faking an empty inbox.
      std::lock_guard<std::mutex> lock(mu_);
      if (fault_.has_value()) throw TransportError(*fault_);
      throw TransportError(TransportFault{
          agent, ErrorCode::kProtocolViolation,
          "socket transport: agent " + std::to_string(agent) +
              " ingress channel closed with a delivered message pending"});
    }
    ch.rx.Feed(std::span<const uint8_t>(buf, static_cast<size_t>(n)));
  }
}

bool SocketTransport::HasMessage(AgentId agent) const {
  PEM_CHECK(agent >= 0 && agent < num_agents(), "bad agent id");
  std::lock_guard<std::mutex> lock(mu_);
  return popped_[static_cast<size_t>(agent)] <
         delivered_[static_cast<size_t>(agent)];
}

TrafficStats SocketTransport::stats(AgentId agent) const {
  PEM_CHECK(agent >= 0 && agent < num_agents(), "bad agent id");
  std::lock_guard<std::mutex> lock(mu_);
  return ledger_.stats(agent);
}

uint64_t SocketTransport::total_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ledger_.total_bytes;
}

uint64_t SocketTransport::total_messages() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ledger_.total_messages;
}

double SocketTransport::AverageBytesPerAgent() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ledger_.AverageBytesPerAgent();
}

void SocketTransport::ResetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  ledger_.Reset();
  // delivered_/popped_ survive: they are inbox state, not counters.
}

void SocketTransport::SetObserver(Observer observer) {
  std::lock_guard<std::mutex> lock(mu_);
  observer_ = std::move(observer);
}

std::optional<TransportFault> SocketTransport::fault() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fault_;
}

void SocketTransport::RecordFault(AgentId agent, const char* what) {
  std::lock_guard<std::mutex> lock(mu_);
  if (fault_.has_value()) return;  // first fault wins; later ones cascade
  fault_ = TransportFault{agent, ErrorCode::kProtocolViolation,
                          "socket transport: agent " + std::to_string(agent) +
                              ": " + what};
}

void SocketTransport::SimulatePeerHangupForTest(AgentId agent) {
  PEM_CHECK(agent >= 0 && agent < num_agents(), "bad agent id");
  // shutdown(2), not close(2): the fd number stays allocated, so the
  // router thread racing a write sees EPIPE rather than a recycled fd.
  shutdown(channels_[static_cast<size_t>(agent)]->ingress_router, SHUT_RDWR);
}

void SocketTransport::RouteFrame(const Message& frame) {
  if (frame.to == kBroadcast) {
    for (AgentId to = 0; to < num_agents(); ++to) {
      if (to == frame.from) continue;
      Message copy = frame;
      copy.to = to;
      AppendFrame(pending_[static_cast<size_t>(to)].bytes, copy);
    }
    return;
  }
  AppendFrame(pending_[static_cast<size_t>(frame.to)].bytes, frame);
}

void SocketTransport::FlushPending(AgentId dest) {
  PendingBuf& p = pending_[static_cast<size_t>(dest)];
  Channel& ch = *channels_[static_cast<size_t>(dest)];
  if (ch.ingress_closed) {
    // Peer already gone: drop, the fault explains the loss.
    p.Clear();
    return;
  }
  if (FlushPendingBuf(ch.ingress_router, p) == FlushResult::kPeerClosed) {
    // EPIPE/ECONNRESET: the recipient's channel is gone.  Latch the
    // fault and stop routing to it; the router must keep serving the
    // other agents rather than aborting the whole transport.
    RecordFault(dest, "router write failed, recipient channel closed (EPIPE)");
    ch.ingress_closed = true;
  }
}

void SocketTransport::RouterLoop() {
  const int n = num_agents();
  for (;;) {
    // Forward every decoded frame whose ticket is up, in ledger order.
    for (;;) {
      AgentId sender = -1;
      bool dropped = false;
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (tickets_.empty()) break;
        sender = tickets_.front();
        if (router_queue_[static_cast<size_t>(sender)].empty()) {
          if (!channels_[static_cast<size_t>(sender)]->egress_closed) break;
          // The sender hung up before its frame crossed: the ticket can
          // never be served.  Drop it (the fault explains the loss) so
          // the router keeps forwarding the surviving agents' frames.
          tickets_.pop_front();
          dropped = true;
        } else {
          tickets_.pop_front();
        }
      }
      if (dropped) continue;
      std::deque<Message>& q = router_queue_[static_cast<size_t>(sender)];
      RouteFrame(q.front());
      q.pop_front();
    }
    for (AgentId d = 0; d < n; ++d) {
      if (!pending_[static_cast<size_t>(d)].empty()) FlushPending(d);
    }

    AgentId front = -1;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!tickets_.empty()) {
        front = tickets_.front();
      } else if (shutdown_) {
        // Ledger drained; anything still pending is flushed best-effort
        // above, and a transport being destroyed has no reader left.
        return;
      }
    }

    std::vector<pollfd> fds;
    fds.push_back({wake_.recv_fd, POLLIN, 0});
    if (front >= 0 && channels_[static_cast<size_t>(front)]->egress_closed) {
      // Ticket from a hung-up sender: the drop branch above handles it
      // on the next pass; don't poll a dead fd.
      front = -1;
      continue;
    }
    if (front >= 0) {
      fds.push_back(
          {channels_[static_cast<size_t>(front)]->egress_router, POLLIN, 0});
    }
    for (AgentId d = 0; d < n; ++d) {
      if (!pending_[static_cast<size_t>(d)].empty() &&
          !channels_[static_cast<size_t>(d)]->ingress_closed) {
        fds.push_back(
            {channels_[static_cast<size_t>(d)]->ingress_router, POLLOUT, 0});
      }
    }
    if (poll(fds.data(), fds.size(), -1) < 0) {
      PEM_CHECK(errno == EINTR, "socket transport: poll failed");
      continue;
    }

    // Drain wakeup bytes.
    if (fds[0].revents & POLLIN) wake_.Drain();
    // Pull whatever the front ticket's sender has written so far.
    if (front >= 0) {
      uint8_t buf[4096];
      for (;;) {
        const ssize_t r =
            recv(channels_[static_cast<size_t>(front)]->egress_router, buf,
                 sizeof buf, MSG_DONTWAIT);
        if (r < 0) {
          if (errno == EAGAIN || errno == EWOULDBLOCK) break;
          PEM_CHECK(errno == EINTR, "socket transport: router recv failed");
          continue;
        }
        if (r == 0) {
          // Hangup mid-stream: latch the structured fault and stop
          // reading this sender instead of wedging or aborting.
          RecordFault(front, "egress channel closed (peer hung up)");
          channels_[static_cast<size_t>(front)]->egress_closed = true;
          break;
        }
        router_rx_[static_cast<size_t>(front)].Feed(
            std::span<const uint8_t>(buf, static_cast<size_t>(r)));
      }
      while (std::optional<Message> f =
                 router_rx_[static_cast<size_t>(front)].Next()) {
        router_queue_[static_cast<size_t>(front)].push_back(std::move(*f));
      }
    }
  }
}

}  // namespace pem::net
