#include "net/socket_transport.h"

#include <fcntl.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>

#include "util/error.h"

namespace pem::net {

SocketTransport::SocketTransport(int num_agents, Options opts)
    : opts_(opts),
      ledger_(num_agents > 0 ? static_cast<size_t>(num_agents) : 0) {
  PEM_CHECK(num_agents > 0, "SocketTransport needs at least one agent");
  const size_t n = static_cast<size_t>(num_agents);
  channels_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    auto ch = std::make_unique<Channel>();
    MakeSocketPair(&ch->egress_agent, &ch->egress_router);
    MakeSocketPair(&ch->ingress_router, &ch->ingress_agent);
    SetNonBlocking(ch->egress_router);
    SetNonBlocking(ch->ingress_router);
    channels_.push_back(std::move(ch));
  }
  wake_.Open();

  delivered_.assign(n, 0);
  popped_.assign(n, 0);
  ticketed_.assign(n, 0);
  decoded_.assign(n, 0);
  router_rx_.resize(n);
  router_queue_.resize(n);
  pending_.resize(n);
  router_ = std::thread([this] { RouterLoop(); });
}

SocketTransport::~SocketTransport() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  WakeRouter();
  router_.join();
  for (auto& ch : channels_) {
    CloseIfOpen(ch->egress_agent);
    CloseIfOpen(ch->egress_router);
    CloseIfOpen(ch->ingress_router);
    CloseIfOpen(ch->ingress_agent);
  }
  wake_.Close();
}

void SocketTransport::WakeRouter() { wake_.Wake(); }

void SocketTransport::Send(Message msg) {
  const int n = num_agents();
  PEM_CHECK(msg.from >= 0 && msg.from < n, "bad sender id");
  const bool broadcast = msg.to == kBroadcast;
  if (!broadcast) {
    PEM_CHECK(msg.to >= 0 && msg.to < n, "bad receiver id");
  } else if (n == 1) {
    return;  // no recipients: nothing is accounted, nothing on the wire
  }

  Channel& ch = *channels_[static_cast<size_t>(msg.from)];
  // send_mu keeps this sender's wire frames contiguous and in the same
  // order as its ledger tickets even if two threads send as one agent.
  std::lock_guard<std::mutex> send_lock(ch.send_mu);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (broadcast) {
      for (AgentId to = 0; to < n; ++to) {
        if (to == msg.from) continue;
        ledger_.Account(msg.from, to, msg.payload.size());
        delivered_[static_cast<size_t>(to)] += 1;
        if (observer_) {
          Message copy = msg;
          copy.to = to;
          observer_(copy);
        }
      }
    } else {
      ledger_.Account(msg.from, msg.to, msg.payload.size());
      delivered_[static_cast<size_t>(msg.to)] += 1;
      if (observer_) observer_(msg);
    }
    tickets_.push_back(msg.from);
    ticketed_[static_cast<size_t>(msg.from)] += 1;
  }
  // The wire write happens outside mu_: the router needs mu_ to pop
  // tickets, and it is the router's reads that free a full egress
  // buffer — holding mu_ across a blocking send would deadlock.
  //
  // Wake the router BEFORE the blocking write, not just after: with
  // the ticket already visible, the wake makes the router add this
  // sender's egress fd to its poll set and drain it concurrently.  If
  // the wake only came after SendAll, a frame larger than the socket
  // buffer could block here while the router sleeps in poll() with
  // neither the egress fd nor a pending wake byte — a deadlock (this
  // is exactly SocketTransport.LargeFramesCrossTheRouterWithoutDeadlock
  // on a single-core host, where the router always wins the race into
  // poll between two Sends).
  WakeRouter();
  const std::vector<uint8_t> frame = EncodeFrame(msg);
  SendAllOrThrow(ch.egress_agent, frame.data(), frame.size(), msg.from,
                 "socket transport: egress");
  WakeRouter();
}

std::optional<Message> SocketTransport::Receive(AgentId agent) {
  PEM_CHECK(agent >= 0 && agent < num_agents(), "bad agent id");
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (popped_[static_cast<size_t>(agent)] >=
        delivered_[static_cast<size_t>(agent)]) {
      return std::nullopt;
    }
  }
  Channel& ch = *channels_[static_cast<size_t>(agent)];
  for (;;) {
    if (std::optional<Message> m = ch.rx.Next()) {
      std::lock_guard<std::mutex> lock(mu_);
      popped_[static_cast<size_t>(agent)] += 1;
      return m;
    }
    uint8_t buf[4096];
    const ssize_t n = recv(ch.ingress_agent, buf, sizeof buf, 0);
    if (n < 0) {
      PEM_CHECK(errno == EINTR, "socket transport: recv failed");
      continue;
    }
    if (n == 0) {
      // Hangup with a message still owed: the peer (router, or in
      // ProcessTransport the parent) died.  Surface WHO and WHY as a
      // structured error instead of aborting or faking an empty inbox.
      std::lock_guard<std::mutex> lock(mu_);
      if (fault_.has_value()) throw TransportError(*fault_);
      throw TransportError(TransportFault{
          agent, ErrorCode::kProtocolViolation,
          "socket transport: agent " + std::to_string(agent) +
              " ingress channel closed with a delivered message pending"});
    }
    ch.rx.Feed(std::span<const uint8_t>(buf, static_cast<size_t>(n)));
  }
}

bool SocketTransport::HasMessage(AgentId agent) const {
  PEM_CHECK(agent >= 0 && agent < num_agents(), "bad agent id");
  std::lock_guard<std::mutex> lock(mu_);
  return popped_[static_cast<size_t>(agent)] <
         delivered_[static_cast<size_t>(agent)];
}

TrafficStats SocketTransport::stats(AgentId agent) const {
  PEM_CHECK(agent >= 0 && agent < num_agents(), "bad agent id");
  std::lock_guard<std::mutex> lock(mu_);
  return ledger_.stats(agent);
}

uint64_t SocketTransport::total_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ledger_.total_bytes;
}

uint64_t SocketTransport::total_messages() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ledger_.total_messages;
}

double SocketTransport::AverageBytesPerAgent() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ledger_.AverageBytesPerAgent();
}

void SocketTransport::ResetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  ledger_.Reset();
  // delivered_/popped_ survive: they are inbox state, not counters.
}

void SocketTransport::SetObserver(Observer observer) {
  std::lock_guard<std::mutex> lock(mu_);
  observer_ = std::move(observer);
}

std::optional<TransportFault> SocketTransport::fault() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fault_;
}

void SocketTransport::RecordFault(AgentId agent, const char* what) {
  std::lock_guard<std::mutex> lock(mu_);
  if (fault_.has_value()) return;  // first fault wins; later ones cascade
  fault_ = TransportFault{agent, ErrorCode::kProtocolViolation,
                          "socket transport: agent " + std::to_string(agent) +
                              ": " + what};
}

void SocketTransport::SimulatePeerHangupForTest(AgentId agent) {
  PEM_CHECK(agent >= 0 && agent < num_agents(), "bad agent id");
  // shutdown(2), not close(2): the fd number stays allocated, so the
  // router thread racing a write sees EPIPE rather than a recycled fd.
  shutdown(channels_[static_cast<size_t>(agent)]->ingress_router, SHUT_RDWR);
}

void SocketTransport::InjectEgressBytesForTest(AgentId agent,
                                               std::span<const uint8_t> bytes) {
  PEM_CHECK(agent >= 0 && agent < num_agents(), "bad agent id");
  Channel& ch = *channels_[static_cast<size_t>(agent)];
  // Same fd an honest Send() writes — but no ticket, no ledger entry:
  // from the router's perspective these bytes came out of nowhere.
  std::lock_guard<std::mutex> send_lock(ch.send_mu);
  WakeRouter();
  SendAllOrThrow(ch.egress_agent, bytes.data(), bytes.size(), agent,
                 "socket transport: injected egress");
  WakeRouter();
}

void SocketTransport::RouteFrame(const Message& frame) {
  if (frame.to == kBroadcast) {
    for (AgentId to = 0; to < num_agents(); ++to) {
      if (to == frame.from) continue;
      Message copy = frame;
      copy.to = to;
      AppendFrame(pending_[static_cast<size_t>(to)].bytes, copy);
    }
    return;
  }
  AppendFrame(pending_[static_cast<size_t>(frame.to)].bytes, frame);
}

void SocketTransport::FlushPending(AgentId dest) {
  PendingBuf& p = pending_[static_cast<size_t>(dest)];
  Channel& ch = *channels_[static_cast<size_t>(dest)];
  if (ch.ingress_closed) {
    // Peer already gone: drop, the fault explains the loss.
    p.Clear();
    return;
  }
  if (FlushPendingBuf(ch.ingress_router, p) == FlushResult::kPeerClosed) {
    // EPIPE/ECONNRESET: the recipient's channel is gone.  Latch the
    // fault and stop routing to it; the router must keep serving the
    // other agents rather than aborting the whole transport.
    RecordFault(dest, "router write failed, recipient channel closed (EPIPE)");
    ch.ingress_closed = true;
  }
}

void SocketTransport::RouterLoop() {
  const int n = num_agents();
  // Persistent epoll set instead of a poll array rebuilt every
  // iteration.  Egress channels stay registered (EPOLLIN,
  // level-triggered) for the transport's whole life — eagerly decoding
  // EVERY sender into its router_queue_ is safe because forwarding
  // order is imposed by the ticket ledger, and a Send pushes its
  // ticket under mu_ before its first wire byte can arrive.  Ingress
  // channels are registered (EPOLLOUT) only while frames are pending
  // for them, so an idle or severed ingress never wakes the loop.
  const int ep = epoll_create1(EPOLL_CLOEXEC);
  PEM_CHECK(ep >= 0, "socket transport: epoll_create1 failed");
  const FdGuard ep_guard{ep};
  // data.u64: [0, n) egress of agent a; [n, 2n) ingress of agent a-n;
  // 2n the wake pipe.
  const auto epoll_add = [&](int fd, uint64_t tag, uint32_t events) {
    epoll_event ev{};
    ev.events = events;
    ev.data.u64 = tag;
    PEM_CHECK(epoll_ctl(ep, EPOLL_CTL_ADD, fd, &ev) == 0,
              "socket transport: epoll_ctl(add) failed");
  };
  epoll_add(wake_.recv_fd, static_cast<uint64_t>(2 * n), EPOLLIN);
  for (AgentId a = 0; a < n; ++a) {
    epoll_add(channels_[static_cast<size_t>(a)]->egress_router,
              static_cast<uint64_t>(a), EPOLLIN);
  }
  std::vector<bool> egress_registered(static_cast<size_t>(n), true);
  std::vector<bool> ingress_registered(static_cast<size_t>(n), false);
  std::vector<uint8_t> scratch(opts_.router_scratch_bytes);
  std::vector<epoll_event> events(static_cast<size_t>(2 * n) + 1);

  for (;;) {
    // Forward every decoded frame whose ticket is up, in ledger order.
    for (;;) {
      AgentId sender = -1;
      bool dropped = false;
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (tickets_.empty()) break;
        sender = tickets_.front();
        if (router_queue_[static_cast<size_t>(sender)].empty()) {
          if (!channels_[static_cast<size_t>(sender)]->egress_closed) break;
          // The sender hung up before its frame crossed: the ticket can
          // never be served.  Drop it (the fault explains the loss) so
          // the router keeps forwarding the surviving agents' frames.
          tickets_.pop_front();
          dropped = true;
        } else {
          tickets_.pop_front();
        }
      }
      if (dropped) continue;
      std::deque<Message>& q = router_queue_[static_cast<size_t>(sender)];
      RouteFrame(q.front());
      q.pop_front();
    }
    for (AgentId d = 0; d < n; ++d) {
      if (!pending_[static_cast<size_t>(d)].empty()) FlushPending(d);
    }

    {
      std::lock_guard<std::mutex> lock(mu_);
      if (tickets_.empty() && shutdown_) {
        // Ledger drained; anything still pending is flushed best-effort
        // above, and a transport being destroyed has no reader left.
        return;
      }
    }

    // Reconcile the interest set with this iteration's state.
    for (AgentId a = 0; a < n; ++a) {
      const size_t i = static_cast<size_t>(a);
      Channel& ch = *channels_[i];
      if (egress_registered[i] && ch.egress_closed) {
        (void)epoll_ctl(ep, EPOLL_CTL_DEL, ch.egress_router, nullptr);
        egress_registered[i] = false;
      }
      const bool want_out = !pending_[i].empty() && !ch.ingress_closed;
      if (want_out && !ingress_registered[i]) {
        epoll_add(ch.ingress_router, static_cast<uint64_t>(n + a), EPOLLOUT);
        ingress_registered[i] = true;
      } else if (!want_out && ingress_registered[i]) {
        (void)epoll_ctl(ep, EPOLL_CTL_DEL, ch.ingress_router, nullptr);
        ingress_registered[i] = false;
      }
    }

    const int ne =
        epoll_wait(ep, events.data(), static_cast<int>(events.size()), -1);
    if (ne < 0) {
      PEM_CHECK(errno == EINTR, "socket transport: epoll_wait failed");
      continue;
    }
    for (int k = 0; k < ne; ++k) {
      const uint64_t tag = events[static_cast<size_t>(k)].data.u64;
      if (tag == static_cast<uint64_t>(2 * n)) {
        wake_.Drain();
        continue;
      }
      if (tag >= static_cast<uint64_t>(n)) continue;  // ingress: flushed above
      const AgentId a = static_cast<AgentId>(tag);
      Channel& ch = *channels_[static_cast<size_t>(a)];
      if (ch.egress_closed) continue;  // latched earlier in this batch
      // Batched drain into the reusable scratch, then decode every
      // complete frame; forwarding still waits for each frame's ticket.
      for (;;) {
        const ssize_t r =
            recv(ch.egress_router, scratch.data(), scratch.size(),
                 MSG_DONTWAIT);
        if (r < 0) {
          if (errno == EAGAIN || errno == EWOULDBLOCK) break;
          PEM_CHECK(errno == EINTR, "socket transport: router recv failed");
          continue;
        }
        if (r == 0) {
          // Hangup mid-stream: latch the structured fault and stop
          // reading this sender instead of wedging or aborting.
          RecordFault(a, "egress channel closed (peer hung up)");
          ch.egress_closed = true;
          break;
        }
        router_rx_[static_cast<size_t>(a)].Feed(
            std::span<const uint8_t>(scratch.data(), static_cast<size_t>(r)));
      }
      while (std::optional<Message> f =
                 router_rx_[static_cast<size_t>(a)].Next()) {
        // Ingress validation: the channel is single-owner, so a frame
        // claiming another sender is a forgery, and a frame with no
        // matching Send ticket (tickets precede wire bytes, always) is
        // a replay or injection.  Either way: latch the fault, stop
        // reading this channel, keep serving the survivors.
        if (f->from != a) {
          RecordFault(a, ("forged sender id " + std::to_string(f->from) +
                          " in frame on single-owner egress channel")
                             .c_str());
          ch.egress_closed = true;
          break;
        }
        bool unsolicited = false;
        {
          std::lock_guard<std::mutex> lock(mu_);
          if (decoded_[static_cast<size_t>(a)] >=
              ticketed_[static_cast<size_t>(a)]) {
            unsolicited = true;
          } else {
            decoded_[static_cast<size_t>(a)] += 1;
          }
        }
        if (unsolicited) {
          RecordFault(a,
                      "replayed or injected frame: no matching send ticket");
          ch.egress_closed = true;
          break;
        }
        router_queue_[static_cast<size_t>(a)].push_back(std::move(*f));
      }
    }
  }
}

}  // namespace pem::net
