// The unit of communication between agents.
//
// Split out of transport.h so the wire codec (net/frame.h) can speak
// about messages without pulling in the Transport interface: the codec
// is the source of truth for what a framed Message costs on the wire,
// and the transports depend on it, not the other way around.
#pragma once

#include <cstdint>
#include <vector>

namespace pem::net {

using AgentId = int32_t;
inline constexpr AgentId kBroadcast = -1;

struct Message {
  AgentId from = 0;
  AgentId to = 0;
  uint32_t type = 0;  // protocol-defined tag
  std::vector<uint8_t> payload;

  bool operator==(const Message& o) const {
    return from == o.from && to == o.to && type == o.type &&
           payload == o.payload;
  }
};

// Per-agent traffic counters (bytes).
struct TrafficStats {
  uint64_t bytes_sent = 0;
  uint64_t bytes_received = 0;
  uint64_t messages_sent = 0;
  uint64_t messages_received = 0;

  bool operator==(const TrafficStats&) const = default;
};

}  // namespace pem::net
