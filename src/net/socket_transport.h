// Transport backend over Unix-domain socketpairs.
//
// Models the paper's one-container-per-agent deployment inside one
// process: every agent owns a pair of SOCK_STREAM channels (egress:
// agent -> router, ingress: router -> agent), and a single relay
// thread — the router — moves net/frame.h frames between them.  What
// an Endpoint::Receive returns is whatever bytes actually crossed the
// recipient's socket, decoded by the canonical codec; nothing is
// shared in memory between sender and receiver except the counters.
//
// Delivery order.  The router forwards wire frames in Send order: each
// Send() appends a ticket to a ledger under the transport lock, and
// the router only reads the fd named by the front ticket.  Per-agent
// inboxes therefore drain in exactly the order the in-process buses
// deliver, so the three backends are transcript-identical message by
// message, not just in aggregate.
//
// Accounting and the observer run at Send() time under the transport
// lock (the same total order the buses use); each delivered copy is
// charged FramedSize(copy) — exactly the bytes the codec puts on the
// wire.  A broadcast travels as one frame to the router, which fans it
// out into n-1 per-recipient frames, and is charged as n-1 copies like
// a real broadcast over unicast links.
//
// Blocking semantics: Receive() blocks until an already-sent message
// crosses the socket, and returns nullopt only when the agent has
// popped everything ever sent to it — the same observable behavior as
// the buses, without pretending sockets have zero latency.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "net/frame.h"
#include "net/relay_util.h"
#include "net/transport.h"

namespace pem::net {

class SocketTransport : public Transport {
 public:
  struct Options {
    // Reusable router drain buffer: one recv of this size replaces the
    // old per-iteration 4 KiB stack nibbles, so a burst of frames
    // crosses the router in a handful of syscalls.
    size_t router_scratch_bytes = 64 * 1024;
  };

  SocketTransport(int num_agents, Options opts);
  explicit SocketTransport(int num_agents)
      : SocketTransport(num_agents, Options{}) {}
  ~SocketTransport() override;

  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  int num_agents() const override {
    return static_cast<int>(channels_.size());
  }

  void Send(Message msg) override;
  std::optional<Message> Receive(AgentId agent) override;
  bool HasMessage(AgentId agent) const override;

  TrafficStats stats(AgentId agent) const override;
  uint64_t total_bytes() const override;
  uint64_t total_messages() const override;
  double AverageBytesPerAgent() const override;
  void ResetStats() override;
  void SetObserver(Observer observer) override;
  std::optional<TransportFault> fault() const override;

  // Test hook: severs the router->agent ingress channel of `agent` as a
  // crashed peer would (shutdown(2), so no fd-reuse race with the
  // router thread).  The next router write surfaces EPIPE and the
  // agent's next blocked Receive() throws a structured TransportError —
  // exactly the closed-peer path ProcessTransport hits when a child
  // dies.  Never called outside tests.
  void SimulatePeerHangupForTest(AgentId agent);

  // Test hook: writes raw bytes into `agent`'s egress wire as an
  // adversary squatting on the channel would — bypassing Send(), so no
  // ledger ticket exists for them.  The router rejects what it decodes:
  // a frame whose sender field names another agent is a forgery, and a
  // well-formed frame with no matching ticket is a replay/injection;
  // either latches a structured fault naming the channel and stops
  // reading it, while the survivors keep flowing.  Never called outside
  // tests.
  void InjectEgressBytesForTest(AgentId agent,
                                std::span<const uint8_t> bytes);

 private:
  // One agent's pair of channels.  The agent-side fds block; the
  // router-side fds are non-blocking (the router must never stall on
  // one slow peer).  rx/send_mu make the channel non-movable, hence
  // the unique_ptr storage.
  struct Channel {
    int egress_agent = -1;   // agent writes frames here (Send)
    int egress_router = -1;  // router reads them
    int ingress_router = -1; // router writes routed frames here
    int ingress_agent = -1;  // agent reads them (Receive)
    FrameDecoder rx;         // agent-side reassembly; owner thread only
    std::mutex send_mu;      // keeps one sender's frames contiguous
    // Router-thread-only hangup latches: a closed direction is skipped
    // by the poll set and its tickets are dropped (frames are lost, the
    // fault records why) instead of wedging the router.
    bool egress_closed = false;
    bool ingress_closed = false;
  };

  void RouterLoop();
  void RouteFrame(const Message& frame);  // router thread only
  void FlushPending(AgentId dest);        // router thread only
  void WakeRouter();
  void RecordFault(AgentId agent, const char* what);  // keeps the first

  Options opts_;
  std::vector<std::unique_ptr<Channel>> channels_;
  WakePipe wake_;  // Send/destructor wake the router parked in epoll

  mutable std::mutex mu_;
  TrafficLedger ledger_;
  // Inbox bookkeeping, never reset by ResetStats: messages accounted
  // for an agent vs. messages it has popped.
  std::vector<uint64_t> delivered_;
  std::vector<uint64_t> popped_;
  // The delivery ledger: one entry (the sender) per wire frame, in
  // global Send order; the router forwards frames in this order.
  std::deque<AgentId> tickets_;
  // Per-sender ingress validation: frames Send() ticketed vs. frames
  // the router decoded off the wire.  A ticket is pushed under mu_
  // BEFORE the first wire byte is written, so the router decoding MORE
  // frames than were ever ticketed proves bytes entered the egress
  // channel without going through Send() — an injected or replayed
  // frame.
  std::vector<uint64_t> ticketed_;
  std::vector<uint64_t> decoded_;
  Observer observer_;
  bool shutdown_ = false;
  std::optional<TransportFault> fault_;  // first hangup observed

  // Router-thread-only state.
  std::vector<FrameDecoder> router_rx_;          // per egress channel
  std::vector<std::deque<Message>> router_queue_;  // decoded, unmatched
  std::vector<PendingBuf> pending_;              // per ingress channel

  std::thread router_;
};

}  // namespace pem::net
