#include "net/bus.h"

#include "util/error.h"

namespace pem::net {

MessageBus::MessageBus(int num_agents)
    : inboxes_(static_cast<size_t>(num_agents)),
      ledger_(static_cast<size_t>(num_agents)) {
  PEM_CHECK(num_agents > 0, "MessageBus needs at least one agent");
}

void MessageBus::Send(Message msg) {
  PEM_CHECK(msg.from >= 0 && msg.from < num_agents(), "bad sender id");
  if (msg.to == kBroadcast) {
    for (AgentId to = 0; to < num_agents(); ++to) {
      if (to == msg.from) continue;
      Message copy = msg;
      copy.to = to;
      ledger_.Account(msg.from, to, copy.payload.size());
      if (observer_) observer_(copy);
      inboxes_[static_cast<size_t>(to)].push_back(std::move(copy));
    }
    return;
  }
  PEM_CHECK(msg.to >= 0 && msg.to < num_agents(), "bad receiver id");
  ledger_.Account(msg.from, msg.to, msg.payload.size());
  if (observer_) observer_(msg);
  inboxes_[static_cast<size_t>(msg.to)].push_back(std::move(msg));
}

std::optional<Message> MessageBus::Receive(AgentId agent) {
  PEM_CHECK(agent >= 0 && agent < num_agents(), "bad agent id");
  auto& box = inboxes_[static_cast<size_t>(agent)];
  if (box.empty()) return std::nullopt;
  Message m = std::move(box.front());
  box.pop_front();
  return m;
}

bool MessageBus::HasMessage(AgentId agent) const {
  PEM_CHECK(agent >= 0 && agent < num_agents(), "bad agent id");
  return !inboxes_[static_cast<size_t>(agent)].empty();
}

TrafficStats MessageBus::stats(AgentId agent) const {
  PEM_CHECK(agent >= 0 && agent < num_agents(), "bad agent id");
  return ledger_.stats(agent);
}

double MessageBus::AverageBytesPerAgent() const {
  return ledger_.AverageBytesPerAgent();
}

void MessageBus::ResetStats() { ledger_.Reset(); }

}  // namespace pem::net
