#include "net/bus.h"

#include "util/error.h"

namespace pem::net {

MessageBus::MessageBus(int num_agents)
    : inboxes_(static_cast<size_t>(num_agents)),
      stats_(static_cast<size_t>(num_agents)) {
  PEM_CHECK(num_agents > 0, "MessageBus needs at least one agent");
}

void MessageBus::Account(AgentId from, AgentId to, size_t payload_size) {
  const uint64_t size = payload_size + kFrameOverheadBytes;
  stats_[static_cast<size_t>(from)].bytes_sent += size;
  stats_[static_cast<size_t>(from)].messages_sent += 1;
  stats_[static_cast<size_t>(to)].bytes_received += size;
  stats_[static_cast<size_t>(to)].messages_received += 1;
  total_bytes_ += size;
  total_messages_ += 1;
}

void MessageBus::Send(Message msg) {
  PEM_CHECK(msg.from >= 0 && msg.from < num_agents(), "bad sender id");
  if (msg.to == kBroadcast) {
    for (AgentId to = 0; to < num_agents(); ++to) {
      if (to == msg.from) continue;
      Message copy = msg;
      copy.to = to;
      Account(msg.from, to, copy.payload.size());
      if (observer_) observer_(copy);
      inboxes_[static_cast<size_t>(to)].push_back(std::move(copy));
    }
    return;
  }
  PEM_CHECK(msg.to >= 0 && msg.to < num_agents(), "bad receiver id");
  Account(msg.from, msg.to, msg.payload.size());
  if (observer_) observer_(msg);
  inboxes_[static_cast<size_t>(msg.to)].push_back(std::move(msg));
}

std::optional<Message> MessageBus::Receive(AgentId agent) {
  PEM_CHECK(agent >= 0 && agent < num_agents(), "bad agent id");
  auto& box = inboxes_[static_cast<size_t>(agent)];
  if (box.empty()) return std::nullopt;
  Message m = std::move(box.front());
  box.pop_front();
  return m;
}

bool MessageBus::HasMessage(AgentId agent) const {
  PEM_CHECK(agent >= 0 && agent < num_agents(), "bad agent id");
  return !inboxes_[static_cast<size_t>(agent)].empty();
}

TrafficStats MessageBus::stats(AgentId agent) const {
  PEM_CHECK(agent >= 0 && agent < num_agents(), "bad agent id");
  return stats_[static_cast<size_t>(agent)];
}

double MessageBus::AverageBytesPerAgent() const {
  if (inboxes_.empty()) return 0.0;
  uint64_t sum = 0;
  for (const auto& s : stats_) sum += s.bytes_sent + s.bytes_received;
  return static_cast<double>(sum) / static_cast<double>(inboxes_.size());
}

void MessageBus::ResetStats() {
  for (auto& s : stats_) s = TrafficStats{};
  total_bytes_ = 0;
  total_messages_ = 0;
}

}  // namespace pem::net
