#include "net/transport.h"

#include "net/concurrent_bus.h"
#include "util/error.h"

namespace pem::net {

std::unique_ptr<Transport> MakeTransport(TransportKind kind, int num_agents) {
  switch (kind) {
    case TransportKind::kSerialBus:
      return std::make_unique<MessageBus>(num_agents);
    case TransportKind::kConcurrentBus:
      return std::make_unique<ConcurrentMessageBus>(num_agents);
  }
  PEM_CHECK(false, "unknown transport kind");
  return nullptr;
}

}  // namespace pem::net
