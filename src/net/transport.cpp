#include "net/transport.h"

#include "net/concurrent_bus.h"
#include "net/socket_transport.h"
#include "util/error.h"

namespace pem::net {

std::unique_ptr<Transport> MakeTransport(TransportKind kind, int num_agents) {
  PEM_CHECK(num_agents > 0, "MakeTransport: agent count must be positive");
  switch (kind) {
    case TransportKind::kSerialBus:
      return std::make_unique<MessageBus>(num_agents);
    case TransportKind::kConcurrentBus:
      return std::make_unique<ConcurrentMessageBus>(num_agents);
    case TransportKind::kSocket:
      return std::make_unique<SocketTransport>(num_agents);
    case TransportKind::kProcess:
      PEM_CHECK(false,
                "MakeTransport: kProcess forks one child per agent and needs "
                "a child entry point; construct net::ProcessTransport "
                "directly (RunSimulation does for ExecutionPolicy::Process())");
      return nullptr;
    case TransportKind::kTcp:
      PEM_CHECK(false,
                "MakeTransport: kTcp launches one child per agent over a TCP "
                "rendezvous and needs a child entry point; construct "
                "net::TcpTransport directly (RunSimulation does for "
                "ExecutionPolicy::Tcp())");
      return nullptr;
    case TransportKind::kShm:
      PEM_CHECK(false,
                "MakeTransport: kShm forks one child per agent over shared-"
                "memory rings and needs a child entry point; construct "
                "net::ShmTransport directly (RunSimulation does for "
                "ExecutionPolicy::Shm())");
      return nullptr;
  }
  PEM_CHECK(false, "unknown transport kind");
  return nullptr;
}

}  // namespace pem::net
