#include "net/spsc_ring.h"

#include <linux/futex.h>
#include <sys/syscall.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <climits>
#include <cstring>
#include <new>

#include "util/error.h"

namespace pem::net {
namespace {

constexpr uint32_t kRingMagic = 0x52505350;  // "PSPR"

}  // namespace

void FutexWait(std::atomic<uint32_t>* word, uint32_t expected,
               int timeout_ms) {
  timespec ts;
  ts.tv_sec = timeout_ms / 1000;
  ts.tv_nsec = static_cast<long>(timeout_ms % 1000) * 1'000'000L;
  // No FUTEX_PRIVATE_FLAG: the word lives in MAP_SHARED memory and the
  // waiter/waker may be different processes.  EAGAIN (word already
  // changed), EINTR and ETIMEDOUT are all fine — the caller rechecks.
  syscall(SYS_futex, reinterpret_cast<uint32_t*>(word), FUTEX_WAIT, expected,
          &ts, nullptr, 0);
}

void FutexWake(std::atomic<uint32_t>* word) {
  syscall(SYS_futex, reinterpret_cast<uint32_t*>(word), FUTEX_WAKE, INT_MAX,
          nullptr, nullptr, 0);
}

size_t SpscRing::RegionBytes(size_t capacity) {
  return sizeof(SpscRingHeader) + capacity;
}

SpscRing SpscRing::Init(void* mem, size_t capacity) {
  PEM_CHECK(mem != nullptr, "spsc ring: null region");
  PEM_CHECK(reinterpret_cast<uintptr_t>(mem) % 64 == 0,
            "spsc ring: region must be 64-byte aligned");
  PEM_CHECK(capacity > 0 && (capacity & (capacity - 1)) == 0,
            "spsc ring: capacity must be a power of two");
  auto* h = new (mem) SpscRingHeader();
  h->tail.store(0, std::memory_order_relaxed);
  h->head.store(0, std::memory_order_relaxed);
  h->snoop.store(0, std::memory_order_relaxed);
  h->data_seq.store(0, std::memory_order_relaxed);
  h->space_seq.store(0, std::memory_order_relaxed);
  h->capacity = capacity;
  h->magic = kRingMagic;
  return SpscRing(h, reinterpret_cast<uint8_t*>(mem) + sizeof(SpscRingHeader));
}

SpscRing SpscRing::Attach(void* mem) {
  auto* h = reinterpret_cast<SpscRingHeader*>(mem);
  PEM_CHECK(h != nullptr && h->magic == kRingMagic,
            "spsc ring: attach to unformatted region");
  return SpscRing(h, reinterpret_cast<uint8_t*>(mem) + sizeof(SpscRingHeader));
}

size_t SpscRing::FreeBytes() const {
  const uint64_t tail = h_->tail.load(std::memory_order_relaxed);
  // Acquire: the consumers' reads of the freed bytes happened-before,
  // so overwriting them cannot race.  Space is gated by the SLOWER of
  // the reader and the snooper — bytes stay live until both are past.
  const uint64_t head = h_->head.load(std::memory_order_acquire);
  const uint64_t snoop = h_->snoop.load(std::memory_order_acquire);
  return static_cast<size_t>(h_->capacity - (tail - std::min(head, snoop)));
}

void SpscRing::CopyIn(uint64_t at, std::span<const uint8_t> bytes) {
  const uint64_t cap = h_->capacity;
  const size_t pos = static_cast<size_t>(at & (cap - 1));
  const size_t first = std::min(bytes.size(), static_cast<size_t>(cap) - pos);
  std::memcpy(data_ + pos, bytes.data(), first);
  if (first < bytes.size()) {
    std::memcpy(data_, bytes.data() + first, bytes.size() - first);
  }
}

void SpscRing::CopyOut(uint64_t from, uint8_t* dst, size_t len) const {
  const uint64_t cap = h_->capacity;
  const size_t pos = static_cast<size_t>(from & (cap - 1));
  const size_t first = std::min(len, static_cast<size_t>(cap) - pos);
  std::memcpy(dst, data_ + pos, first);
  if (first < len) std::memcpy(dst + first, data_, len - first);
}

bool SpscRing::TryAppend(std::span<const uint8_t> a,
                         std::span<const uint8_t> b) {
  const size_t total = a.size() + b.size();
  PEM_CHECK(total <= h_->capacity,
            "spsc ring: record larger than the whole ring");
  if (FreeBytes() < total) return false;
  const uint64_t tail = h_->tail.load(std::memory_order_relaxed);
  if (!a.empty()) CopyIn(tail, a);
  if (!b.empty()) CopyIn(tail + a.size(), b);
  // ONE release publish for the whole record: a reader's acquire load
  // of tail sees either none of it or all of it, never a torn prefix.
  h_->tail.store(tail + total, std::memory_order_release);
  h_->data_seq.fetch_add(1, std::memory_order_release);
  FutexWake(&h_->data_seq);
  return true;
}

void SpscRing::WaitWritable(size_t bytes, int timeout_ms) {
  const uint32_t seq = h_->space_seq.load(std::memory_order_acquire);
  if (FreeBytes() >= bytes) return;
  FutexWait(&h_->space_seq, seq, timeout_ms);
}

size_t SpscRing::ReadableBytes() const {
  return static_cast<size_t>(h_->tail.load(std::memory_order_acquire) -
                             h_->head.load(std::memory_order_relaxed));
}

void SpscRing::Peek(size_t offset, uint8_t* dst, size_t len) const {
  CopyOut(h_->head.load(std::memory_order_relaxed) + offset, dst, len);
}

void SpscRing::Consume(size_t len) {
  const uint64_t head = h_->head.load(std::memory_order_relaxed);
  h_->head.store(head + len, std::memory_order_release);
  h_->space_seq.fetch_add(1, std::memory_order_release);
  FutexWake(&h_->space_seq);
}

void SpscRing::WaitReadable(int timeout_ms) {
  // Doorbell snapshot BEFORE the recheck: a publish that lands between
  // the two makes the wait return immediately (word changed).
  const uint32_t seq = h_->data_seq.load(std::memory_order_acquire);
  if (ReadableBytes() > 0) return;
  FutexWait(&h_->data_seq, seq, timeout_ms);
}

size_t SpscRing::SnoopReadableBytes() const {
  return static_cast<size_t>(h_->tail.load(std::memory_order_acquire) -
                             h_->snoop.load(std::memory_order_relaxed));
}

void SpscRing::SnoopPeek(size_t offset, uint8_t* dst, size_t len) const {
  CopyOut(h_->snoop.load(std::memory_order_relaxed) + offset, dst, len);
}

void SpscRing::SnoopConsume(size_t len) {
  const uint64_t snoop = h_->snoop.load(std::memory_order_relaxed);
  h_->snoop.store(snoop + len, std::memory_order_release);
  h_->space_seq.fetch_add(1, std::memory_order_release);
  FutexWake(&h_->space_seq);
}

}  // namespace pem::net
