// Mutex-guarded Transport backend.
//
// Behaviorally identical to MessageBus — same framing, same accounting,
// same per-agent FIFO delivery — but every operation takes an internal
// lock, so ParallelFor workers may Send() concurrently.  Messages from
// one sender keep that sender's order (its Send() calls happen-before
// each other); interleaving across senders follows lock acquisition,
// exactly like packets racing into a switch.  The observer runs under
// the lock so the recorded transcript is a consistent total order;
// consequently an observer must never call back into the bus (the
// lock is not recursive) — it should only read the Message it is
// handed.
//
// The phase-parallel protocol engine keeps all protocol sends in its
// sequential forward phase, so when driven by the engine this backend
// produces byte-identical transcripts to the serial bus; the locking
// is what makes it safe for compute-phase workers (or future async
// backends) to touch the transport at all.
#pragma once

#include <mutex>

#include "net/bus.h"

namespace pem::net {

class ConcurrentMessageBus : public Transport {
 public:
  explicit ConcurrentMessageBus(int num_agents) : bus_(num_agents) {}

  int num_agents() const override { return bus_.num_agents(); }

  void Send(Message msg) override;
  std::optional<Message> Receive(AgentId agent) override;
  bool HasMessage(AgentId agent) const override;

  TrafficStats stats(AgentId agent) const override;
  uint64_t total_bytes() const override;
  uint64_t total_messages() const override;
  double AverageBytesPerAgent() const override;
  void ResetStats() override;
  void SetObserver(Observer observer) override;

 private:
  mutable std::mutex mu_;
  MessageBus bus_;  // guarded by mu_
};

}  // namespace pem::net
