// Single-producer/single-consumer byte ring over caller-provided
// shared memory — the data path of the zero-copy shm transport.
//
// The ring lives entirely inside a region the caller maps
// (mmap MAP_SHARED | MAP_ANONYMOUS before fork, so parent and children
// address the same pages): a 64-byte-aligned header of cursors plus a
// power-of-two data area.  The writer owns `tail`, the reader owns
// `head`, and a third cursor, `snoop`, lets a supervising process tap
// every byte without racing the reader — the writer's free space is
// gated by min(head, snoop), so nothing is overwritten until BOTH the
// consumer and the tap have moved past it.  This is how ShmTransport
// keeps the parent's TrafficLedger exact with no router hop: frames
// flow peer-to-peer through the ring, and the parent accounts them
// from the snoop cursor at its leisure.
//
// Memory ordering is the classic SPSC discipline, acquire/release
// only, no locks on the data path:
//   * the writer publishes bytes with a release store of `tail`; a
//     reader's acquire load of `tail` therefore observes the bytes
//     fully written — a torn length prefix is impossible by
//     construction (asserted by test_spsc_ring, machine-checked by the
//     TSan CI leg);
//   * the reader frees space with a release store of `head` (resp.
//     `snoop`); the writer's acquire load observes the reads done.
//
// Blocking never spins: each side parks on a futex doorbell (data_seq
// for "bytes arrived", space_seq for "space freed").  The futexes are
// non-PRIVATE so they work across the fork, and every wait is bounded
// (the caller passes a timeout and rechecks), so a missed wake
// degrades to a poll tick, never a deadlock.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <span>

namespace pem::net {

// Bounded cross-process futex wait/wake on a 32-bit doorbell word in
// shared memory.  Wait returns when the word no longer equals
// `expected`, on a wake, or after `timeout_ms` — callers always
// recheck their real condition in a loop.
void FutexWait(std::atomic<uint32_t>* word, uint32_t expected,
               int timeout_ms);
void FutexWake(std::atomic<uint32_t>* word);

// The shared-memory header.  Each cursor sits on its own cache line so
// the producer and consumer cores never false-share; the doorbells and
// geometry share a fourth line (written rarely relative to the data
// path, and never concurrently with initialization).
struct alignas(64) SpscRingHeader {
  alignas(64) std::atomic<uint64_t> tail;   // writer: bytes published
  alignas(64) std::atomic<uint64_t> head;   // reader: bytes consumed
  alignas(64) std::atomic<uint64_t> snoop;  // tap: bytes accounted
  alignas(64) std::atomic<uint32_t> data_seq;   // bumped per publish
  std::atomic<uint32_t> space_seq;              // bumped per consume
  uint64_t capacity = 0;                        // data area, power of two
  uint32_t magic = 0;
};

// A handle onto one ring in a mapped region (cheap to copy: two
// pointers).  Exactly one thread/process may act as writer, one as
// reader, one as snooper; the cursor accessors are safe from anywhere.
class SpscRing {
 public:
  SpscRing() = default;

  // Region bytes needed for a ring with `capacity` data bytes.
  static size_t RegionBytes(size_t capacity);

  // Formats `mem` (RegionBytes(capacity) bytes, 64-byte aligned) as an
  // empty ring.  Call once, before any peer attaches.
  static SpscRing Init(void* mem, size_t capacity);
  // Attaches to a ring some peer already Init'ed (checks the magic).
  static SpscRing Attach(void* mem);

  uint64_t capacity() const { return h_->capacity; }
  uint64_t tail() const { return h_->tail.load(std::memory_order_acquire); }
  uint64_t head() const { return h_->head.load(std::memory_order_acquire); }
  uint64_t snoop() const { return h_->snoop.load(std::memory_order_acquire); }

  // --- writer side ---
  size_t FreeBytes() const;
  // Appends a+b as one contiguous publish (one release store of tail,
  // so a reader sees either nothing or all of it).  False if the ring
  // lacks space — nothing written.
  bool TryAppend(std::span<const uint8_t> a, std::span<const uint8_t> b);
  // Parks on the space doorbell until FreeBytes() may have grown;
  // bounded by `timeout_ms`.
  void WaitWritable(size_t bytes, int timeout_ms);

  // --- reader side ---
  size_t ReadableBytes() const;
  // Copies `len` bytes starting `offset` past the head cursor (no
  // consume).  Caller guarantees offset+len <= ReadableBytes().
  void Peek(size_t offset, uint8_t* dst, size_t len) const;
  void Consume(size_t len);
  // Parks on the data doorbell until bytes may have arrived; bounded.
  void WaitReadable(int timeout_ms);

  // --- snooper side (same protocol against the snoop cursor) ---
  size_t SnoopReadableBytes() const;
  void SnoopPeek(size_t offset, uint8_t* dst, size_t len) const;
  void SnoopConsume(size_t len);

 private:
  SpscRing(SpscRingHeader* h, uint8_t* data) : h_(h), data_(data) {}

  void CopyIn(uint64_t at, std::span<const uint8_t> bytes);
  void CopyOut(uint64_t from, uint8_t* dst, size_t len) const;

  SpscRingHeader* h_ = nullptr;
  uint8_t* data_ = nullptr;
};

}  // namespace pem::net
