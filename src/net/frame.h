// Canonical wire framing: the single definition of what one Message
// costs and looks like on a byte stream.
//
// Layout (all integers little-endian):
//
//   [u32 payload_len | i32 from | i32 to | u32 type | u32 check] payload
//
// `check` is an FNV-1a digest of the 16 preceding header bytes, so a
// corrupted or misaligned length prefix is rejected instead of making
// the decoder swallow garbage as a giant payload.  Every transport
// backend accounts exactly FramedSize(msg) bytes per delivered copy;
// SocketTransport additionally puts these literal bytes on its
// socketpairs, which is what lets test_transcript_parity assert that
// the in-process buses and the socket backend carry identical traffic.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "net/message.h"

namespace pem::net {

inline constexpr size_t kFrameHeaderBytes = 20;
// Sanity bound on a decoded length prefix; no protocol message comes
// within orders of magnitude of it.
inline constexpr uint32_t kMaxFramePayloadBytes = uint32_t{1} << 28;

// FNV-1a over the 16 header bytes preceding the check field.
uint32_t FrameHeaderChecksum(uint32_t payload_len, AgentId from, AgentId to,
                             uint32_t type);

constexpr size_t FramedSize(size_t payload_bytes) {
  return kFrameHeaderBytes + payload_bytes;
}
inline size_t FramedSize(const Message& m) { return FramedSize(m.payload.size()); }

// Appends the framed encoding of `m` to `out`.
void AppendFrame(std::vector<uint8_t>& out, const Message& m);
std::vector<uint8_t> EncodeFrame(const Message& m);

enum class FrameDecodeStatus {
  kFrame,     // one complete frame decoded
  kNeedMore,  // buffer holds only a frame prefix — feed more bytes
  kCorrupt,   // header checksum mismatch or insane length prefix
};

struct FrameDecodeResult {
  FrameDecodeStatus status = FrameDecodeStatus::kNeedMore;
  Message frame;        // valid when status == kFrame
  size_t consumed = 0;  // bytes consumed from the buffer front
};

// Decodes at most one frame from the front of `buf`.
FrameDecodeResult DecodeFrame(std::span<const uint8_t> buf);

// Streaming reassembly of a frame sequence (one per socket direction).
// Feed() appends raw bytes; Next() pops complete frames in order.  The
// stream comes from our own encoder, so corruption is a programming
// error: Next() aborts on it (use DecodeFrame directly to handle
// untrusted input non-fatally).
class FrameDecoder {
 public:
  void Feed(std::span<const uint8_t> bytes);
  std::optional<Message> Next();
  size_t buffered_bytes() const { return buf_.size() - off_; }

 private:
  std::vector<uint8_t> buf_;
  size_t off_ = 0;  // consumed prefix, compacted lazily
};

}  // namespace pem::net
