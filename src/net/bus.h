// In-process message bus with bandwidth accounting.
//
// The paper deploys each agent in a Docker container on one host; the
// protocols are ring-sequential, so an in-process bus with per-agent
// FIFO inboxes reproduces both the message pattern and the bytes on the
// wire.  Every Send() adds a small frame header (sender, receiver,
// type) to the accounted size, mirroring a TCP/protobuf-style framing.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/serialize.h"

namespace pem::net {

using AgentId = int32_t;
inline constexpr AgentId kBroadcast = -1;

struct Message {
  AgentId from = 0;
  AgentId to = 0;
  uint32_t type = 0;  // protocol-defined tag
  std::vector<uint8_t> payload;
};

// Per-agent traffic counters (bytes).
struct TrafficStats {
  uint64_t bytes_sent = 0;
  uint64_t bytes_received = 0;
  uint64_t messages_sent = 0;
  uint64_t messages_received = 0;
};

class MessageBus {
 public:
  // Frame overhead charged per message, approximating the
  // sender/receiver/type/length header of a real transport.
  static constexpr uint64_t kFrameOverheadBytes = 20;

  explicit MessageBus(int num_agents);

  int num_agents() const { return static_cast<int>(inboxes_.size()); }

  // Queues a message for `msg.to`.  kBroadcast delivers a copy to every
  // agent except the sender (each copy is accounted separately, as a
  // real broadcast over unicast links would be).
  void Send(Message msg);

  // Pops the next message for `agent`; nullopt when inbox is empty.
  std::optional<Message> Receive(AgentId agent);
  bool HasMessage(AgentId agent) const;

  const TrafficStats& stats(AgentId agent) const;
  uint64_t total_bytes() const { return total_bytes_; }
  uint64_t total_messages() const { return total_messages_; }

  // Average bytes (sent + received) per agent since the last reset.
  double AverageBytesPerAgent() const;

  // Zeroes the counters (per-window accounting keeps inboxes intact —
  // they are expected to be empty between windows).
  void ResetStats();

  // Observer invoked for every delivered message (after broadcast
  // fan-out).  Used by transcript-inspection tests and debug tracing;
  // pass nullptr to clear.
  using Observer = std::function<void(const Message&)>;
  void SetObserver(Observer observer) { observer_ = std::move(observer); }

 private:
  void Account(AgentId from, AgentId to, size_t payload_size);

  std::vector<std::deque<Message>> inboxes_;
  std::vector<TrafficStats> stats_;
  Observer observer_;
  uint64_t total_bytes_ = 0;
  uint64_t total_messages_ = 0;
};

}  // namespace pem::net
