// In-process message bus with bandwidth accounting.
//
// The paper deploys each agent in a Docker container on one host; the
// protocols are ring-sequential, so an in-process bus with per-agent
// FIFO inboxes reproduces both the message pattern and the bytes on the
// wire.  Every Send() adds a small frame header (sender, receiver,
// type) to the accounted size, mirroring a TCP/protobuf-style framing.
//
// MessageBus is the serial Transport backend: no locking, so it must
// only be touched from one thread.  For phase-parallel runs see
// ConcurrentMessageBus (net/concurrent_bus.h); for per-agent kernel
// channels see SocketTransport (net/socket_transport.h).
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>
#include <vector>

#include "net/serialize.h"
#include "net/transport.h"

namespace pem::net {

class MessageBus : public Transport {
 public:
  explicit MessageBus(int num_agents);

  int num_agents() const override {
    return static_cast<int>(inboxes_.size());
  }

  void Send(Message msg) override;
  std::optional<Message> Receive(AgentId agent) override;
  bool HasMessage(AgentId agent) const override;

  TrafficStats stats(AgentId agent) const override;
  uint64_t total_bytes() const override { return ledger_.total_bytes; }
  uint64_t total_messages() const override { return ledger_.total_messages; }
  double AverageBytesPerAgent() const override;
  void ResetStats() override;

  void SetObserver(Observer observer) override {
    observer_ = std::move(observer);
  }

 private:
  std::vector<std::deque<Message>> inboxes_;
  TrafficLedger ledger_;
  Observer observer_;
};

}  // namespace pem::net
