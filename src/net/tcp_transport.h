// TCP remote transport: the paper's distributed deployment over a real
// network stack.
//
// The frame codec and the AgentDriver protocol loop are already
// transport-agnostic — a child needs nothing but a wire fd and a
// control fd — so distributing agents is a rendezvous problem: the
// parent binds a TCP listener (loopback by default, host:port
// configurable, port 0 auto-assigns), every agent dials in with TWO
// connections (wire + control), and each connection introduces itself
// with a fixed 16-byte hello naming the protocol magic, version,
// connection kind, and agent id.  After the rendezvous the parent runs
// the exact relay router, TrafficLedger and watchdog-bounded control
// plane of the fork-over-socketpair backend (net/process_transport.h's
// AgentSupervisor), so Table-I per-agent bytes become literal NETWORK
// bytes with no new accounting code.
//
// Two launch modes:
//   * forked   — the convenience constructor forks one local child per
//     agent; each closes the inherited listener fd and connects back
//     over loopback.  This is what ExecutionPolicy::Tcp() runs.
//   * external — the rendezvous-only constructor binds the listener
//     and returns; the operator reads port(), launches agents anywhere
//     (another host via ssh/k8s, a test thread), and WaitForAgents()
//     blocks until every hello has arrived or the connect timeout
//     expires with a structured error naming the missing agents.
//     ConnectTcpAgent() is the client half an external agent calls.
//
// TCP vs. the socketpair backends is not a rename: the stream
// arbitrarily segments and coalesces frames (SO_SNDBUF-sized partial
// writes, Nagle coalescing — disabled via TCP_NODELAY, 1-byte reads
// under load), and a dead peer is an RST/FIN race instead of a tidy
// EOF.  The torture and fault-injection suites in
// tests/net/test_tcp_transport.cpp exist precisely because this
// backend is the first to exercise those paths.
//
// Child-side shadow verification defaults OFF here (a remote
// deployment trusts its transport; the parent still cross-checks the
// canonical ledger against routed bytes every window) and can be
// re-enabled as a debug mode via Options::verify_frames.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/agent_supervisor.h"

namespace pem::net {

// --- hello handshake --------------------------------------------------

// [u32 magic | u32 version | u32 kind | i32 agent], little-endian.
inline constexpr uint32_t kTcpHelloMagic = 0x544d4550;  // "PEMT"
inline constexpr uint32_t kTcpHelloVersion = 1;
inline constexpr uint32_t kTcpHelloKindWire = 1;
inline constexpr uint32_t kTcpHelloKindControl = 2;
inline constexpr size_t kTcpHelloBytes = 16;

// --- rendezvous listener ----------------------------------------------

// A bound, listening TCP socket (nonblocking, so a deadline-bounded
// Accept can never hang on the handshake-then-RST race).  `port` 0
// lets the kernel pick; the chosen port is cached at bind time, so
// port() stays valid after Close().  Numeric IPv4 hosts only
// ("127.0.0.1" loopback default; "0.0.0.0" to accept agents from
// other hosts).  `socket_buffer_bytes` > 0 shrinks SO_SNDBUF/SO_RCVBUF
// on the listener so accepted connections inherit them (post-accept is
// too late for the receive window).
class TcpListener {
 public:
  TcpListener(const std::string& host, uint16_t port, int backlog,
              int socket_buffer_bytes = 0);
  ~TcpListener();
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  uint16_t port() const { return port_; }
  int fd() const { return fd_; }

  // Blocking accept bounded by `timeout_ms`; throws TransportError on
  // expiry (`who` flavors the message with what was being waited for).
  int Accept(int timeout_ms, const std::string& who);

  void Close();

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
};

// --- client half ------------------------------------------------------

struct TcpAgentSockets {
  int wire_fd = -1;
  int ctl_fd = -1;
};

// Dials one connection to the rendezvous and sends its hello.  Retries
// a refused connect (listener backlog full, or not yet up) until the
// deadline, sets TCP_NODELAY, and optionally shrinks SO_SNDBUF/RCVBUF
// (tests use this to force partial writes).  Throws TransportError on
// timeout.
int TcpConnectAndHello(const std::string& host, uint16_t port, uint32_t kind,
                       AgentId agent, int timeout_ms,
                       int socket_buffer_bytes = 0);

// The two connections an agent needs, hellos included.
TcpAgentSockets ConnectTcpAgent(const std::string& host, uint16_t port,
                                AgentId agent, int timeout_ms,
                                int socket_buffer_bytes = 0);

// --- the transport ----------------------------------------------------

class TcpTransport : public AgentSupervisor {
 public:
  struct Options {
    // See AgentSupervisor::Options.
    int watchdog_ms = 120'000;
    // Where the rendezvous listens and children/external agents dial.
    std::string host = "127.0.0.1";
    uint16_t port = 0;  // 0: kernel auto-assigns; read back via port()
    // Rendezvous deadline: every agent must complete both hellos
    // within this long or the constructor / WaitForAgents() throws a
    // structured error naming the missing agents.
    int connect_timeout_ms = 30'000;
    // Debug mode: byte-match every frame a child consumes against its
    // deterministic shadow script (the socketpair backend's default).
    // Off by default — a remote deployment trusts its transport, and
    // the per-window ledger cross-check still runs in the parent.
    bool verify_frames = false;
    // Shrink SO_SNDBUF/SO_RCVBUF on every wire socket (0: kernel
    // default).  Tests set this smaller than one frame to prove short
    // writes are fully retried on both sides of the router.
    int socket_buffer_bytes = 0;
  };

  // Forked mode: one local child per agent, each connecting back over
  // TCP.  The rendezvous completes inside the constructor.
  TcpTransport(int num_agents, ChildMain child_main, Options opts);
  TcpTransport(int num_agents, ChildMain child_main)
      : TcpTransport(num_agents, std::move(child_main), Options{}) {}

  // External mode: binds the listener and returns immediately.  Read
  // port(), launch the agents (ConnectTcpAgent on their side), then
  // call WaitForAgents() to complete the rendezvous.
  TcpTransport(int num_agents, Options opts);

  uint16_t port() const { return listener_.port(); }
  const std::string& host() const { return opts_.host; }

  // Accepts connections until every agent has completed both hellos,
  // validates them (magic/version/kind, agent id in range, no
  // duplicates), then starts the relay router and closes the listener.
  // Throws TransportError on timeout, garbage, or a duplicate hello.
  // The forked constructor calls this itself; external mode calls it
  // once after launching the agents.  No-op if already rendezvoused.
  void WaitForAgents();

 private:
  void KillForkedChildren(const std::vector<pid_t>& pids);

  TcpListener listener_;
  Options opts_;
  std::vector<pid_t> pids_;  // forked mode; -1 per agent in external mode
  bool accepted_ = false;
};

}  // namespace pem::net
