#include "net/serialize.h"

// Header-only today; translation unit kept so the target has a stable
// archive and future non-inline helpers have a home.
namespace pem::net {}
