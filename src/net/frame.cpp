#include "net/frame.h"

#include <cstring>

#include "util/error.h"

namespace pem::net {
namespace {

void PutU32(uint8_t* p, uint32_t v) { std::memcpy(p, &v, 4); }

uint32_t GetU32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

}  // namespace

uint32_t FrameHeaderChecksum(uint32_t payload_len, AgentId from, AgentId to,
                             uint32_t type) {
  uint8_t h[16];
  PutU32(h, payload_len);
  PutU32(h + 4, static_cast<uint32_t>(from));
  PutU32(h + 8, static_cast<uint32_t>(to));
  PutU32(h + 12, type);
  uint32_t x = 2166136261u;  // FNV-1a
  for (uint8_t b : h) {
    x ^= b;
    x *= 16777619u;
  }
  return x;
}

void AppendFrame(std::vector<uint8_t>& out, const Message& m) {
  PEM_CHECK(m.payload.size() <= kMaxFramePayloadBytes,
            "frame payload exceeds the codec bound");
  const uint32_t len = static_cast<uint32_t>(m.payload.size());
  uint8_t header[kFrameHeaderBytes];
  PutU32(header, len);
  PutU32(header + 4, static_cast<uint32_t>(m.from));
  PutU32(header + 8, static_cast<uint32_t>(m.to));
  PutU32(header + 12, m.type);
  PutU32(header + 16, FrameHeaderChecksum(len, m.from, m.to, m.type));
  out.insert(out.end(), header, header + kFrameHeaderBytes);
  out.insert(out.end(), m.payload.begin(), m.payload.end());
}

std::vector<uint8_t> EncodeFrame(const Message& m) {
  std::vector<uint8_t> out;
  out.reserve(FramedSize(m));
  AppendFrame(out, m);
  return out;
}

FrameDecodeResult DecodeFrame(std::span<const uint8_t> buf) {
  FrameDecodeResult r;
  if (buf.size() < kFrameHeaderBytes) return r;  // kNeedMore
  const uint32_t len = GetU32(buf.data());
  const AgentId from = static_cast<AgentId>(GetU32(buf.data() + 4));
  const AgentId to = static_cast<AgentId>(GetU32(buf.data() + 8));
  const uint32_t type = GetU32(buf.data() + 12);
  const uint32_t check = GetU32(buf.data() + 16);
  if (check != FrameHeaderChecksum(len, from, to, type) ||
      len > kMaxFramePayloadBytes) {
    r.status = FrameDecodeStatus::kCorrupt;
    return r;
  }
  if (buf.size() < FramedSize(len)) return r;  // kNeedMore
  r.status = FrameDecodeStatus::kFrame;
  r.frame.from = from;
  r.frame.to = to;
  r.frame.type = type;
  r.frame.payload.assign(buf.begin() + kFrameHeaderBytes,
                         buf.begin() + static_cast<ptrdiff_t>(FramedSize(len)));
  r.consumed = FramedSize(len);
  return r;
}

void FrameDecoder::Feed(std::span<const uint8_t> bytes) {
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

std::optional<Message> FrameDecoder::Next() {
  FrameDecodeResult r = DecodeFrame(std::span<const uint8_t>(buf_).subspan(off_));
  if (r.status == FrameDecodeStatus::kNeedMore) return std::nullopt;
  PEM_CHECK(r.status == FrameDecodeStatus::kFrame,
            "frame stream corrupt (encoder/decoder mismatch)");
  off_ += r.consumed;
  if (off_ == buf_.size()) {
    buf_.clear();
    off_ = 0;
  } else if (off_ >= (size_t{1} << 16)) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<ptrdiff_t>(off_));
    off_ = 0;
  }
  return std::move(r.frame);
}

}  // namespace pem::net
