#include "net/process_transport.h"

#include <signal.h>
#include <sys/prctl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "util/error.h"

namespace pem::net {
namespace {

std::string HexU32(uint32_t v) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "0x%08x", v);
  return buf;
}

// Divergence guard: if this many frames arrive without the script's
// expected one among them, the wire and the deterministic replica have
// parted ways and blocking further would only hide it.
constexpr size_t kMaxStashedFrames = size_t{1} << 16;

}  // namespace

// --- ProcessChildTransport --------------------------------------------

ProcessChildTransport::ProcessChildTransport(int num_agents, AgentId self,
                                             int wire_fd, bool verify_frames)
    : shadow_(num_agents),
      self_(self),
      wire_fd_(wire_fd),
      verify_frames_(verify_frames) {
  PEM_CHECK(self >= 0 && self < num_agents,
            "process child transport: self id out of range");
  PEM_CHECK(wire_fd >= 0, "process child transport: bad wire descriptor");
}

ProcessChildTransport::~ProcessChildTransport() { CloseIfOpen(wire_fd_); }

void ProcessChildTransport::Send(Message msg) {
  if (msg.from == self_) {
    // Own traffic is real: one canonical frame to the parent router
    // (broadcasts fan out there, as they would at a switch).  Encode
    // before the shadow consumes the message.
    const std::vector<uint8_t> frame = EncodeFrame(msg);
    shadow_.Send(std::move(msg));
    SendAllOrThrow(wire_fd_, frame.data(), frame.size(), self_,
                   "process child transport: wire");
    return;
  }
  // Another agent's send: shadow only, to keep the script advancing.
  shadow_.Send(std::move(msg));
}

Message ProcessChildTransport::ReadWireFrame() {
  for (;;) {
    if (std::optional<Message> m = rx_.Next()) return std::move(*m);
    uint8_t buf[4096];
    const ssize_t n = recv(wire_fd_, buf, sizeof buf, 0);
    if (n < 0) {
      PEM_CHECK(errno == EINTR, "process child transport: recv failed");
      continue;
    }
    if (n == 0) {
      throw TransportError(TransportFault{
          self_, ErrorCode::kProtocolViolation,
          "process child transport: agent " + std::to_string(self_) +
              " wire closed by the parent router mid-protocol"});
    }
    rx_.Feed(std::span<const uint8_t>(buf, static_cast<size_t>(n)));
  }
}

std::optional<Message> ProcessChildTransport::Receive(AgentId agent) {
  std::optional<Message> expected = shadow_.Receive(agent);
  if (agent != self_ || !expected.has_value()) return expected;
  if (verify_frames_) {
    // Own receive, verifying: the deterministic script names the exact
    // frame this agent must consume next; insist a byte-identical frame
    // physically arrives.  Frames from concurrent senders may arrive
    // early relative to the script (the processes really run in
    // parallel) — stash them until their turn.
    for (size_t i = 0; i < stash_.size(); ++i) {
      if (stash_[i] == *expected) {
        stash_.erase(stash_.begin() + static_cast<ptrdiff_t>(i));
        return expected;
      }
    }
    for (;;) {
      Message m = ReadWireFrame();
      if (m == *expected) return expected;
      stash_.push_back(std::move(m));
      if (stash_.size() >= kMaxStashedFrames) {
        throw TransportError(TransportFault{
            self_, ErrorCode::kProtocolViolation,
            "process child transport: agent " + std::to_string(self_) +
                " stashed " + std::to_string(stash_.size()) +
                " frames without seeing the expected one (type " +
                HexU32(expected->type) + " from " +
                std::to_string(expected->from) +
                ") — wire and deterministic script diverged"});
      }
    }
  }
  // Trusting mode: the script names only WHICH sender's frame this
  // agent consumes next; the wire frame itself, matched per-sender FIFO
  // (the only order two independent parties define), is what the
  // protocol sees — a real remote deployment trusts its transport, and
  // the parent's per-window ledger cross-check still runs.
  const AgentId want = expected->from;
  for (size_t i = 0; i < stash_.size(); ++i) {
    if (stash_[i].from == want) {
      Message m = std::move(stash_[i]);
      stash_.erase(stash_.begin() + static_cast<ptrdiff_t>(i));
      return m;
    }
  }
  for (;;) {
    Message m = ReadWireFrame();
    if (m.from == want) return m;
    stash_.push_back(std::move(m));
    if (stash_.size() >= kMaxStashedFrames) {
      throw TransportError(TransportFault{
          self_, ErrorCode::kProtocolViolation,
          "process child transport: agent " + std::to_string(self_) +
              " stashed " + std::to_string(stash_.size()) +
              " frames without one from sender " + std::to_string(want) +
              " — wire and deterministic script diverged"});
    }
  }
}

bool ProcessChildTransport::HasMessage(AgentId agent) const {
  return shadow_.HasMessage(agent);
}

TrafficStats ProcessChildTransport::stats(AgentId agent) const {
  return shadow_.stats(agent);
}

double ProcessChildTransport::AverageBytesPerAgent() const {
  return shadow_.AverageBytesPerAgent();
}

void ProcessChildTransport::SetObserver(Observer observer) {
  shadow_.SetObserver(std::move(observer));
}

void ProcessChildTransport::VerifyQuiescent() const {
  PEM_CHECK(stash_.empty(),
            "process child transport: unconsumed stashed frames at teardown");
  PEM_CHECK(rx_.buffered_bytes() == 0,
            "process child transport: partial frame buffered at teardown");
  uint8_t probe;
  const ssize_t n = recv(wire_fd_, &probe, 1, MSG_DONTWAIT | MSG_PEEK);
  PEM_CHECK(n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK),
            "process child transport: unread wire bytes at teardown");
}

// --- child entry point ------------------------------------------------

void RunAdoptedChild(AgentId self, int num_agents, int wire_fd, int ctl_fd,
                     bool verify_frames,
                     const AgentSupervisor::ChildMain& child_main) {
  // Die with the parent: a crashed/killed orchestrator must never leave
  // agent processes behind.
  prctl(PR_SET_PDEATHSIG, SIGKILL);
  ControlChannel ctl(ctl_fd, self);
  int code = 127;
  try {
    ProcessChildTransport wire(num_agents, self, wire_fd, verify_frames);
    code = child_main(self, wire, ctl);
    wire.VerifyQuiescent();
  } catch (const std::exception& e) {
    try {
      const char* what = e.what();
      ctl.Write(kCtlRepError,
                std::span<const uint8_t>(
                    reinterpret_cast<const uint8_t*>(what),
                    std::strlen(what)));
    } catch (...) {
      // Parent gone too; the wait status is all that is left to say.
    }
    _exit(1);
  } catch (...) {
    _exit(2);
  }
  // _exit, not exit: the child shares the parent's stdio buffers and
  // must not flush them (or run the parent's atexit hooks) twice.
  _exit(code);
}

// --- ProcessTransport -------------------------------------------------

namespace {

struct ChildFds {
  int wire_parent = -1;
  int wire_child = -1;
  int ctl_parent = -1;
  int ctl_child = -1;
};

[[noreturn]] void RunForkedChild(AgentId self, int num_agents,
                                 const std::vector<ChildFds>& fds,
                                 const AgentSupervisor::ChildMain& main) {
  // Inherit EXACTLY this agent's ends; every other descriptor in the
  // table belongs to the parent or a sibling.
  for (int j = 0; j < num_agents; ++j) {
    CloseIfOpen(fds[static_cast<size_t>(j)].wire_parent);
    CloseIfOpen(fds[static_cast<size_t>(j)].ctl_parent);
    if (j != self) {
      CloseIfOpen(fds[static_cast<size_t>(j)].wire_child);
      CloseIfOpen(fds[static_cast<size_t>(j)].ctl_child);
    }
  }
  RunAdoptedChild(self, num_agents, fds[static_cast<size_t>(self)].wire_child,
                  fds[static_cast<size_t>(self)].ctl_child,
                  /*verify_frames=*/true, main);
}

}  // namespace

ProcessTransport::ProcessTransport(int num_agents, ChildMain child_main,
                                   Options opts)
    : AgentSupervisor(num_agents, opts) {
  PEM_CHECK(child_main != nullptr, "ProcessTransport needs a child entry point");
  const size_t n = static_cast<size_t>(num_agents);

  std::vector<ChildFds> fds(n);
  for (size_t i = 0; i < n; ++i) {
    MakeSocketPair(&fds[i].wire_parent, &fds[i].wire_child);
    MakeSocketPair(&fds[i].ctl_parent, &fds[i].ctl_child);
  }

  // Fork every child BEFORE starting the router thread: fork only
  // clones the calling thread, and forking a process that holds live
  // mutex-owning threads is how post-fork deadlocks are made.
  for (size_t i = 0; i < n; ++i) {
    const pid_t pid = fork();
    PEM_CHECK(pid >= 0, "process transport: fork failed");
    if (pid == 0) {
      RunForkedChild(static_cast<AgentId>(i), num_agents, fds, child_main);
    }
    AdoptChild(static_cast<AgentId>(i), pid, fds[i].wire_parent,
               fds[i].ctl_parent);
    close(fds[i].wire_child);
    close(fds[i].ctl_child);
    fds[i].wire_child = fds[i].ctl_child = -1;
  }

  StartRouter();
}

}  // namespace pem::net
