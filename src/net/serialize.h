// Binary wire format helpers.
//
// All protocol payloads (Paillier ciphertexts, garbled tables, OT group
// elements) are serialized through ByteWriter/ByteReader so the message
// bus can count real on-the-wire bytes for the Table-I bandwidth
// reproduction.  Format: little-endian fixed-width integers,
// length-prefixed blobs.
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "util/error.h"

namespace pem::net {

class ByteWriter {
 public:
  void U8(uint8_t v) { buf_.push_back(v); }
  void U16(uint16_t v) { Raw(&v, 2); }
  void U32(uint32_t v) { Raw(&v, 4); }
  void U64(uint64_t v) { Raw(&v, 8); }
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void F64(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, 8);
    U64(bits);
  }
  void Bytes(std::span<const uint8_t> b) {
    U32(static_cast<uint32_t>(b.size()));
    buf_.insert(buf_.end(), b.begin(), b.end());
  }
  void Str(const std::string& s) {
    Bytes(std::span<const uint8_t>(
        reinterpret_cast<const uint8_t*>(s.data()), s.size()));
  }

  const std::vector<uint8_t>& data() const { return buf_; }
  std::vector<uint8_t> Take() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  void Raw(const void* p, size_t n) {
    const auto* b = static_cast<const uint8_t*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }

  std::vector<uint8_t> buf_;
};

class ByteReader {
 public:
  // Non-owning view: `data` must outlive the reader (binding a
  // temporary here dangles).
  explicit ByteReader(std::span<const uint8_t> data) : data_(data) {}

  uint8_t U8() { return ReadRaw<uint8_t>(); }
  uint16_t U16() { return ReadRaw<uint16_t>(); }
  uint32_t U32() { return ReadRaw<uint32_t>(); }
  uint64_t U64() { return ReadRaw<uint64_t>(); }
  int64_t I64() { return static_cast<int64_t>(U64()); }
  double F64() {
    const uint64_t bits = U64();
    double v;
    std::memcpy(&v, &bits, 8);
    return v;
  }
  std::vector<uint8_t> Bytes() {
    const uint32_t n = U32();
    PEM_CHECK(pos_ + n <= data_.size(), "ByteReader: truncated blob");
    std::vector<uint8_t> out(data_.begin() + pos_, data_.begin() + pos_ + n);
    pos_ += n;
    return out;
  }
  // Non-aborting variant for parsing untrusted input (key material from
  // peers): nullopt on truncation instead of PEM_CHECK.
  std::optional<std::vector<uint8_t>> TryBytes() {
    if (remaining() < 4) return std::nullopt;
    const uint32_t n = U32();
    if (pos_ + n > data_.size()) return std::nullopt;
    std::vector<uint8_t> out(data_.begin() + pos_, data_.begin() + pos_ + n);
    pos_ += n;
    return out;
  }
  std::string Str() {
    std::vector<uint8_t> b = Bytes();
    return std::string(b.begin(), b.end());
  }

  bool AtEnd() const { return pos_ == data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  template <typename T>
  T ReadRaw() {
    PEM_CHECK(pos_ + sizeof(T) <= data_.size(), "ByteReader: truncated");
    T v;
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  std::span<const uint8_t> data_;
  size_t pos_ = 0;
};

}  // namespace pem::net
