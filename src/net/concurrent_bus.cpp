#include "net/concurrent_bus.h"

namespace pem::net {

void ConcurrentMessageBus::Send(Message msg) {
  std::lock_guard<std::mutex> lock(mu_);
  bus_.Send(std::move(msg));
}

std::optional<Message> ConcurrentMessageBus::Receive(AgentId agent) {
  std::lock_guard<std::mutex> lock(mu_);
  return bus_.Receive(agent);
}

bool ConcurrentMessageBus::HasMessage(AgentId agent) const {
  std::lock_guard<std::mutex> lock(mu_);
  return bus_.HasMessage(agent);
}

TrafficStats ConcurrentMessageBus::stats(AgentId agent) const {
  std::lock_guard<std::mutex> lock(mu_);
  return bus_.stats(agent);
}

uint64_t ConcurrentMessageBus::total_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bus_.total_bytes();
}

uint64_t ConcurrentMessageBus::total_messages() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bus_.total_messages();
}

double ConcurrentMessageBus::AverageBytesPerAgent() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bus_.AverageBytesPerAgent();
}

void ConcurrentMessageBus::ResetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  bus_.ResetStats();
}

void ConcurrentMessageBus::SetObserver(Observer observer) {
  std::lock_guard<std::mutex> lock(mu_);
  bus_.SetObserver(std::move(observer));
}

}  // namespace pem::net
