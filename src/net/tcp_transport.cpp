#include "net/tcp_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <signal.h>
#include <sys/prctl.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "net/process_transport.h"
#include "util/error.h"

namespace pem::net {
namespace {

[[noreturn]] void ThrowTcp(AgentId agent, ErrorCode code, std::string detail) {
  throw TransportError(TransportFault{agent, code, std::move(detail)});
}

sockaddr_in ResolveNumericHost(const std::string& host, uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string numeric = host == "localhost" ? "127.0.0.1" : host;
  PEM_CHECK(inet_pton(AF_INET, numeric.c_str(), &addr.sin_addr) == 1,
            "tcp transport: host must be a numeric IPv4 address");
  return addr;
}

// Small frames dominate the protocol; Nagle would batch them behind
// 40ms delayed-ACK stalls.
void SetNoDelay(int fd) {
  const int one = 1;
  (void)setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

void ShrinkSocketBuffers(int fd, int bytes) {
  if (bytes <= 0) return;
  // The kernel clamps to its floor (and doubles for bookkeeping); the
  // point is a bound FAR below one large frame, not an exact size.
  (void)setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &bytes, sizeof bytes);
  (void)setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &bytes, sizeof bytes);
}

int RemainingMs(std::chrono::steady_clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - std::chrono::steady_clock::now());
  return left.count() > 0 ? static_cast<int>(left.count()) : 0;
}

struct Hello {
  uint32_t magic = 0;
  uint32_t version = 0;
  uint32_t kind = 0;
  AgentId agent = -1;
};

// Reads exactly the 16 hello bytes with a deadline.  A connection that
// stalls, hangs up, or sends garbage is rejected with a structured
// error — the rendezvous must never block on a misbehaving dialer.
Hello ReadHelloOrThrow(int fd, std::chrono::steady_clock::time_point deadline) {
  uint8_t buf[kTcpHelloBytes];
  size_t got = 0;
  while (got < sizeof buf) {
    pollfd pfd{fd, POLLIN, 0};
    const int pr = poll(&pfd, 1, RemainingMs(deadline) > 0
                                     ? RemainingMs(deadline)
                                     : 1);
    if (pr < 0) {
      PEM_CHECK(errno == EINTR, "tcp transport: poll failed");
      continue;
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      ThrowTcp(-1, ErrorCode::kProtocolViolation,
               "tcp transport: connection stalled before completing its "
               "hello");
    }
    if (pr == 0) continue;
    const ssize_t n = recv(fd, buf + got, sizeof buf - got, 0);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      ThrowTcp(-1, ErrorCode::kProtocolViolation,
               std::string("tcp transport: hello recv failed (") +
                   std::strerror(errno) + ")");
    }
    if (n == 0) {
      ThrowTcp(-1, ErrorCode::kProtocolViolation,
               "tcp transport: peer hung up before completing its hello");
    }
    got += static_cast<size_t>(n);
  }
  Hello h;
  h.magic = LoadU32(buf);
  h.version = LoadU32(buf + 4);
  h.kind = LoadU32(buf + 8);
  h.agent = static_cast<AgentId>(LoadU32(buf + 12));
  return h;
}

const char* HelloKindName(uint32_t kind) {
  return kind == kTcpHelloKindWire ? "wire" : "control";
}

}  // namespace

// --- TcpListener ------------------------------------------------------

TcpListener::TcpListener(const std::string& host, uint16_t port, int backlog,
                         int socket_buffer_bytes) {
  const sockaddr_in addr = ResolveNumericHost(host, port);
  // SOCK_CLOEXEC: the rendezvous listener must never leak into an
  // exec()ed process; forked children still close it explicitly.
  fd_ = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  PEM_CHECK(fd_ >= 0, "tcp transport: socket() failed");
  const int one = 1;
  (void)setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  // Buffer sizes must be set on the LISTENER: accepted sockets inherit
  // them, and SO_RCVBUF after accept is too late to shrink the window
  // scale negotiated at SYN time.
  ShrinkSocketBuffers(fd_, socket_buffer_bytes);
  // Nonblocking so Accept() can never hang past its deadline: a dialer
  // that completes the handshake and RSTs before we reach accept(2)
  // silently vanishes from the queue, and a blocking accept would then
  // sleep with no timeout (the race accept(2)'s man page warns about).
  SetNonBlocking(fd_);
  PEM_CHECK(bind(fd_, reinterpret_cast<const sockaddr*>(&addr),
                 sizeof addr) == 0,
            "tcp transport: bind failed (port in use?)");
  PEM_CHECK(listen(fd_, backlog) == 0, "tcp transport: listen failed");
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  PEM_CHECK(getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0,
            "tcp transport: getsockname failed");
  port_ = ntohs(bound.sin_port);
}

TcpListener::~TcpListener() { Close(); }

void TcpListener::Close() {
  CloseIfOpen(fd_);
  fd_ = -1;
}

int TcpListener::Accept(int timeout_ms, const std::string& who) {
  PEM_CHECK(fd_ >= 0, "tcp transport: accept on a closed listener");
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    pollfd pfd{fd_, POLLIN, 0};
    const int left = RemainingMs(deadline);
    if (left <= 0) {
      ThrowTcp(-1, ErrorCode::kProtocolViolation,
               "tcp transport: rendezvous timeout after " +
                   std::to_string(timeout_ms) + "ms waiting for " + who);
    }
    const int pr = poll(&pfd, 1, left);
    if (pr < 0) {
      PEM_CHECK(errno == EINTR, "tcp transport: poll failed");
      continue;
    }
    if (pr == 0) continue;  // deadline check above fires next pass
    const int fd = accept4(fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) {
      // Transient per-connection failures (dialer aborted between
      // SYN and accept) must not kill the rendezvous.
      if (errno == EINTR || errno == ECONNABORTED || errno == EAGAIN ||
          errno == EWOULDBLOCK) {
        continue;
      }
      PEM_CHECK(false, "tcp transport: accept failed");
    }
    return fd;
  }
}

// --- client half ------------------------------------------------------

namespace {

// One nonblocking connect attempt bounded by the caller's deadline.
// Returns a connected fd, or -1 with `err` set for a retryable refusal
// (listener not up yet / backlog full); throws on deadline expiry so a
// blackholed route (SYNs silently dropped: the kernel's own retry
// schedule runs minutes) cannot outlive timeout_ms.
int TryConnectOnce(const sockaddr_in& addr, int socket_buffer_bytes,
                   std::chrono::steady_clock::time_point deadline,
                   AgentId agent, int* err) {
  const int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  PEM_CHECK(fd >= 0, "tcp transport: socket() failed");
  // Buffer sizes must be set before connect to take effect on the
  // receive window.
  ShrinkSocketBuffers(fd, socket_buffer_bytes);
  SetNonBlocking(fd);
  if (connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
          0 &&
      errno != EINPROGRESS) {
    *err = errno;
    close(fd);
    return -1;
  }
  for (;;) {
    pollfd pfd{fd, POLLOUT, 0};
    const int left = RemainingMs(deadline);
    if (left <= 0) {
      close(fd);
      ThrowTcp(agent, ErrorCode::kProtocolViolation,
               "tcp transport: agent " + std::to_string(agent) +
                   " connect timed out (SYN unanswered)");
    }
    const int pr = poll(&pfd, 1, left);
    if (pr < 0) {
      PEM_CHECK(errno == EINTR, "tcp transport: poll failed");
      continue;
    }
    if (pr == 0) continue;  // deadline check above fires next pass
    int so_error = 0;
    socklen_t len = sizeof so_error;
    PEM_CHECK(getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) == 0,
              "tcp transport: getsockopt(SO_ERROR) failed");
    if (so_error != 0) {
      *err = so_error;
      close(fd);
      return -1;
    }
    // Connected: the rest of the stack (blocking SendAll / recv loops)
    // expects a blocking descriptor.
    const int flags = fcntl(fd, F_GETFL, 0);
    PEM_CHECK(flags >= 0 && fcntl(fd, F_SETFL, flags & ~O_NONBLOCK) == 0,
              "tcp transport: fcntl failed");
    return fd;
  }
}

}  // namespace

int TcpConnectAndHello(const std::string& host, uint16_t port, uint32_t kind,
                       AgentId agent, int timeout_ms,
                       int socket_buffer_bytes) {
  const sockaddr_in addr = ResolveNumericHost(host, port);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  int fd = -1;
  for (;;) {
    int err = 0;
    fd = TryConnectOnce(addr, socket_buffer_bytes, deadline, agent, &err);
    if (fd >= 0) break;
    if (RemainingMs(deadline) <= 0) {
      ThrowTcp(agent, ErrorCode::kProtocolViolation,
               "tcp transport: agent " + std::to_string(agent) +
                   " could not connect to " + host + ":" +
                   std::to_string(port) + " within " +
                   std::to_string(timeout_ms) + "ms (" + std::strerror(err) +
                   ")");
    }
    // The listener may not be up yet (parent still forking siblings)
    // or its backlog momentarily full; retry until the deadline.
    usleep(2000);
  }
  SetNoDelay(fd);
  uint8_t hello[kTcpHelloBytes];
  StoreU32(hello, kTcpHelloMagic);
  StoreU32(hello + 4, kTcpHelloVersion);
  StoreU32(hello + 8, kind);
  StoreU32(hello + 12, static_cast<uint32_t>(agent));
  try {
    SendAllOrThrow(fd, hello, sizeof hello, agent, "tcp transport: hello");
  } catch (...) {
    close(fd);
    throw;
  }
  return fd;
}

TcpAgentSockets ConnectTcpAgent(const std::string& host, uint16_t port,
                                AgentId agent, int timeout_ms,
                                int socket_buffer_bytes) {
  TcpAgentSockets s;
  s.wire_fd = TcpConnectAndHello(host, port, kTcpHelloKindWire, agent,
                                 timeout_ms, socket_buffer_bytes);
  try {
    s.ctl_fd = TcpConnectAndHello(host, port, kTcpHelloKindControl, agent,
                                  timeout_ms, socket_buffer_bytes);
  } catch (...) {
    close(s.wire_fd);
    throw;
  }
  return s;
}

// --- TcpTransport -----------------------------------------------------

namespace {

[[noreturn]] void RunTcpChild(AgentId self, int num_agents, int listener_fd,
                              uint16_t port, const TcpTransport::Options& opts,
                              const AgentSupervisor::ChildMain& child_main) {
  // Die with the parent even while still dialing.
  prctl(PR_SET_PDEATHSIG, SIGKILL);
  // The rendezvous socket is the parent's; this child owns EXACTLY the
  // two connections it is about to dial.
  CloseIfOpen(listener_fd);
  try {
    const TcpAgentSockets s =
        ConnectTcpAgent(opts.host, port, self, opts.connect_timeout_ms,
                        opts.socket_buffer_bytes);
    RunAdoptedChild(self, num_agents, s.wire_fd, s.ctl_fd, opts.verify_frames,
                    child_main);
  } catch (...) {
    // Could not even reach the rendezvous; the parent's accept timeout
    // (or the control-channel hangup) reports the loss.
    _exit(3);
  }
}

}  // namespace

TcpTransport::TcpTransport(int num_agents, Options opts)
    : AgentSupervisor(num_agents, {opts.watchdog_ms}),
      listener_(opts.host, opts.port, /*backlog=*/2 * num_agents + 8,
                opts.socket_buffer_bytes),
      opts_(std::move(opts)),
      pids_(static_cast<size_t>(num_agents), -1) {}

TcpTransport::TcpTransport(int num_agents, ChildMain child_main, Options opts)
    : TcpTransport(num_agents, std::move(opts)) {
  PEM_CHECK(child_main != nullptr, "TcpTransport needs a child entry point");
  // Fork BEFORE the router thread exists (fork clones only the calling
  // thread) and before any accept: the children dial in while we sit
  // in the rendezvous loop.
  for (int i = 0; i < num_agents; ++i) {
    const pid_t pid = fork();
    PEM_CHECK(pid >= 0, "tcp transport: fork failed");
    if (pid == 0) {
      RunTcpChild(static_cast<AgentId>(i), num_agents, listener_.fd(),
                  listener_.port(), opts_, child_main);
    }
    pids_[static_cast<size_t>(i)] = pid;
  }
  try {
    WaitForAgents();
  } catch (...) {
    // The constructor is the only owner the forked children ever had:
    // on a failed rendezvous, kill and reap them here (the base class
    // never learned their pids).
    KillForkedChildren(pids_);
    throw;
  }
}

void TcpTransport::KillForkedChildren(const std::vector<pid_t>& pids) {
  for (const pid_t pid : pids) {
    if (pid > 0) kill(pid, SIGKILL);
  }
  for (const pid_t pid : pids) {
    if (pid > 0) (void)waitpid(pid, nullptr, 0);
  }
}

void TcpTransport::WaitForAgents() {
  if (accepted_) return;
  const int n = num_agents();
  std::vector<int> wire_fds(static_cast<size_t>(n), -1);
  std::vector<int> ctl_fds(static_cast<size_t>(n), -1);
  const auto close_all = [&] {
    for (const int fd : wire_fds) CloseIfOpen(fd);
    for (const int fd : ctl_fds) CloseIfOpen(fd);
  };
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(opts_.connect_timeout_ms);
  try {
    int missing = 2 * n;
    while (missing > 0) {
      // Name the still-absent agents so a rendezvous timeout reads as
      // "agent 3 never connected", not a bare deadline.
      std::string who;
      for (AgentId a = 0; a < n; ++a) {
        if (wire_fds[static_cast<size_t>(a)] >= 0 &&
            ctl_fds[static_cast<size_t>(a)] >= 0) {
          continue;
        }
        if (!who.empty()) who += ", ";
        who += "agent " + std::to_string(a);
      }
      const int fd = listener_.Accept(RemainingMs(deadline), who);
      Hello h;
      try {
        h = ReadHelloOrThrow(fd, deadline);
        if (h.magic != kTcpHelloMagic) {
          ThrowTcp(-1, ErrorCode::kSerialization,
                   "tcp transport: connection sent garbage before its hello "
                   "(bad magic)");
        }
        if (h.version != kTcpHelloVersion) {
          ThrowTcp(-1, ErrorCode::kSerialization,
                   "tcp transport: hello version " + std::to_string(h.version) +
                       " != " + std::to_string(kTcpHelloVersion));
        }
        if (h.kind != kTcpHelloKindWire && h.kind != kTcpHelloKindControl) {
          ThrowTcp(-1, ErrorCode::kSerialization,
                   "tcp transport: hello names unknown connection kind " +
                       std::to_string(h.kind));
        }
        if (h.agent < 0 || h.agent >= n) {
          ThrowTcp(h.agent, ErrorCode::kProtocolViolation,
                   "tcp transport: hello names agent " +
                       std::to_string(h.agent) + " out of range [0, " +
                       std::to_string(n) + ")");
        }
        std::vector<int>& slot =
            h.kind == kTcpHelloKindWire ? wire_fds : ctl_fds;
        if (slot[static_cast<size_t>(h.agent)] >= 0) {
          ThrowTcp(h.agent, ErrorCode::kProtocolViolation,
                   "tcp transport: duplicate " +
                       std::string(HelloKindName(h.kind)) +
                       " connect for agent " + std::to_string(h.agent));
        }
        SetNoDelay(fd);
        slot[static_cast<size_t>(h.agent)] = fd;
        --missing;
      } catch (...) {
        close(fd);
        throw;
      }
    }
  } catch (...) {
    close_all();
    throw;
  }
  for (AgentId a = 0; a < n; ++a) {
    AdoptChild(a, pids_[static_cast<size_t>(a)],
               wire_fds[static_cast<size_t>(a)],
               ctl_fds[static_cast<size_t>(a)]);
  }
  StartRouter();
  // Rendezvous over: no reconnects are expected, and an idle listening
  // port is one more thing a lifecycle test would flag as leaked.
  listener_.Close();
  accepted_ = true;
}

}  // namespace pem::net
