#include "net/agent_supervisor.h"

#include <poll.h>
#include <signal.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "util/error.h"

namespace pem::net {
namespace {

// Sanity bound on control payloads (window reports are kilobytes).
constexpr uint32_t kMaxControlPayload = uint32_t{1} << 26;

}  // namespace

// --- ControlChannel ---------------------------------------------------

ControlChannel::ControlChannel(int fd, AgentId peer) : fd_(fd), peer_(peer) {
  PEM_CHECK(fd >= 0, "control channel: bad descriptor");
}

ControlChannel::~ControlChannel() { CloseIfOpen(fd_); }

void ControlChannel::Write(uint32_t tag, std::span<const uint8_t> payload) {
  PEM_CHECK(payload.size() < kMaxControlPayload, "control record too large");
  uint8_t header[8];
  StoreU32(header, tag);
  StoreU32(header + 4, static_cast<uint32_t>(payload.size()));
  SendAllOrThrow(fd_, header, sizeof header, peer_, "control channel");
  if (!payload.empty()) {
    SendAllOrThrow(fd_, payload.data(), payload.size(), peer_,
                   "control channel");
  }
}

ControlRecord ControlChannel::Read(int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  ControlRecord rec;
  for (;;) {
    if (rxbuf_.size() >= 8) {
      rec.tag = LoadU32(rxbuf_.data());
      const uint32_t len = LoadU32(rxbuf_.data() + 4);
      if (len >= kMaxControlPayload) {
        throw TransportError(TransportFault{
            peer_, ErrorCode::kSerialization,
            "control channel: insane record length from agent " +
                std::to_string(peer_)});
      }
      const size_t need = 8 + len;
      if (rxbuf_.size() >= need) {
        rec.payload.assign(rxbuf_.begin() + 8,
                           rxbuf_.begin() + static_cast<ptrdiff_t>(need));
        // One recv may have coalesced several records; keep the rest
        // buffered for the next Read.
        rxbuf_.erase(rxbuf_.begin(),
                     rxbuf_.begin() + static_cast<ptrdiff_t>(need));
        return rec;
      }
    }
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      throw ControlTimeout(TransportFault{
          peer_, ErrorCode::kProtocolViolation,
          "control channel: watchdog timeout after " +
              std::to_string(timeout_ms) + "ms waiting on agent " +
              std::to_string(peer_)});
    }
    pollfd pfd{fd_, POLLIN, 0};
    const int wait_ms = static_cast<int>(
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
            .count());
    const int pr = poll(&pfd, 1, wait_ms > 0 ? wait_ms : 1);
    if (pr < 0) {
      PEM_CHECK(errno == EINTR, "control channel: poll failed");
      continue;
    }
    if (pr == 0) continue;  // deadline check above fires next pass
    uint8_t chunk[4096];
    const ssize_t n = recv(fd_, chunk, sizeof chunk, MSG_DONTWAIT);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) continue;
      throw TransportError(TransportFault{
          peer_, ErrorCode::kProtocolViolation,
          std::string("control channel: recv failed (") +
              std::strerror(errno) + ")"});
    }
    if (n == 0) {
      throw TransportError(TransportFault{
          peer_, ErrorCode::kProtocolViolation,
          "control channel: peer hung up (agent " + std::to_string(peer_) +
              " closed its end)"});
    }
    rxbuf_.insert(rxbuf_.end(), chunk, chunk + n);
  }
}

// --- AgentSupervisor --------------------------------------------------

AgentSupervisor::AgentSupervisor(int num_agents, Options opts)
    : opts_(opts),
      ledger_(num_agents > 0 ? static_cast<size_t>(num_agents) : 0) {
  PEM_CHECK(num_agents > 0, "agent supervisor needs at least one agent");
  const size_t n = static_cast<size_t>(num_agents);
  children_.resize(n);
  rx_.resize(n);
  pending_.resize(n);
  closed_.assign(n, false);
}

AgentSupervisor::~AgentSupervisor() {
  KillAndReapAll();
  StopRouter();
  for (Child& c : children_) {
    CloseIfOpen(c.wire_fd);
    c.wire_fd = -1;
    c.ctl.reset();
  }
  wake_.Close();
}

void AgentSupervisor::AdoptChild(AgentId agent, pid_t pid, int wire_fd,
                                 int ctl_fd) {
  PEM_CHECK(agent >= 0 && agent < num_agents(), "adopt: bad agent id");
  PEM_CHECK(!router_started_, "adopt: router already running");
  Child& c = children_[static_cast<size_t>(agent)];
  PEM_CHECK(c.wire_fd < 0 && c.ctl == nullptr, "adopt: agent already adopted");
  c.pid = pid;
  c.wire_fd = wire_fd;
  c.ctl = std::make_unique<ControlChannel>(ctl_fd, agent);
}

void AgentSupervisor::StartRouter() {
  PEM_CHECK(!router_started_, "router already started");
  for (const Child& c : children_) {
    PEM_CHECK(c.wire_fd >= 0 && c.ctl != nullptr,
              "router start: an agent was never adopted");
  }
  // Opened after any forking so no child inherits it.
  wake_.Open();
  for (Child& c : children_) SetNonBlocking(c.wire_fd);
  router_started_ = true;
  router_ = std::thread([this] { RouterLoop(); });
}

void AgentSupervisor::WakeRouter() { wake_.Wake(); }

void AgentSupervisor::RecordFault(AgentId agent, std::string detail) {
  std::lock_guard<std::mutex> lock(mu_);
  if (fault_.has_value()) return;  // first fault wins
  fault_ = TransportFault{agent, ErrorCode::kProtocolViolation,
                          std::move(detail)};
}

void AgentSupervisor::AccountDeliveredCopy(const Message& copy) {
  std::lock_guard<std::mutex> lock(mu_);
  ledger_.Account(copy.from, copy.to, copy.payload.size());
  if (observer_) observer_(copy);
}

void AgentSupervisor::RouteFrame(const Message& frame) {
  const int n = num_agents();
  PEM_CHECK(frame.from >= 0 && frame.from < n,
            "agent supervisor: routed frame forges its sender");
  if (frame.to == kBroadcast) {
    for (AgentId to = 0; to < n; ++to) {
      if (to == frame.from) continue;
      Message copy = frame;
      copy.to = to;
      AccountDeliveredCopy(copy);
      AppendFrame(pending_[static_cast<size_t>(to)].bytes, copy);
    }
    return;
  }
  PEM_CHECK(frame.to >= 0 && frame.to < n,
            "agent supervisor: routed frame has a bad recipient");
  AccountDeliveredCopy(frame);
  AppendFrame(pending_[static_cast<size_t>(frame.to)].bytes, frame);
}

void AgentSupervisor::FlushPending(AgentId dest) {
  PendingBuf& p = pending_[static_cast<size_t>(dest)];
  if (closed_[static_cast<size_t>(dest)]) {
    p.Clear();
    return;
  }
  if (FlushPendingBuf(children_[static_cast<size_t>(dest)].wire_fd, p) ==
      FlushResult::kPeerClosed) {
    // Routed frames with nowhere to go: a child that exited cleanly
    // has consumed everything addressed to it, so an EPIPE with data
    // pending is a crash unless Done already arrived.
    bool clean;
    {
      std::lock_guard<std::mutex> lock(mu_);
      clean = children_[static_cast<size_t>(dest)].done;
      children_[static_cast<size_t>(dest)].wire_eof = true;
    }
    if (!clean) {
      RecordFault(dest, "agent supervisor: agent " + std::to_string(dest) +
                            " wire write failed with frames pending — "
                            "peer gone?");
    }
    closed_[static_cast<size_t>(dest)] = true;
  }
}

void AgentSupervisor::RouterLoop() {
  const int n = num_agents();
  // Persistent epoll set: the wire fds are registered once (EPOLLIN,
  // level-triggered) instead of a poll set rebuilt every iteration;
  // EPOLLOUT is armed per destination only while its pending queue is
  // nonempty, and a hung-up wire is deleted from the set for good.
  const int ep = epoll_create1(EPOLL_CLOEXEC);
  PEM_CHECK(ep >= 0, "agent supervisor: epoll_create1 failed");
  const FdGuard ep_guard{ep};
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = static_cast<uint64_t>(n);  // sentinel: the wake pipe
  PEM_CHECK(epoll_ctl(ep, EPOLL_CTL_ADD, wake_.recv_fd, &ev) == 0,
            "agent supervisor: epoll_ctl(wake) failed");
  for (AgentId a = 0; a < n; ++a) {
    ev.events = EPOLLIN;
    ev.data.u64 = static_cast<uint64_t>(a);
    PEM_CHECK(epoll_ctl(ep, EPOLL_CTL_ADD,
                        children_[static_cast<size_t>(a)].wire_fd, &ev) == 0,
              "agent supervisor: epoll_ctl(wire) failed");
  }
  std::vector<bool> registered(static_cast<size_t>(n), true);
  std::vector<bool> out_armed(static_cast<size_t>(n), false);
  std::vector<uint8_t> scratch(opts_.router_scratch_bytes);
  std::vector<epoll_event> events(static_cast<size_t>(n) + 1);

  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (shutdown_) return;
    }
    // Reconcile the interest set with this iteration's state.
    for (AgentId a = 0; a < n; ++a) {
      const size_t i = static_cast<size_t>(a);
      if (!registered[i]) continue;
      if (closed_[i]) {
        (void)epoll_ctl(ep, EPOLL_CTL_DEL, children_[i].wire_fd, nullptr);
        registered[i] = false;
        continue;
      }
      const bool want_out = !pending_[i].empty();
      if (want_out != out_armed[i]) {
        ev.events = EPOLLIN;
        if (want_out) ev.events |= EPOLLOUT;
        ev.data.u64 = static_cast<uint64_t>(a);
        PEM_CHECK(epoll_ctl(ep, EPOLL_CTL_MOD, children_[i].wire_fd, &ev) == 0,
                  "agent supervisor: epoll_ctl(mod) failed");
        out_armed[i] = want_out;
      }
    }
    const int ne =
        epoll_wait(ep, events.data(), static_cast<int>(events.size()), -1);
    if (ne < 0) {
      PEM_CHECK(errno == EINTR, "agent supervisor: epoll_wait failed");
      continue;
    }
    for (int k = 0; k < ne; ++k) {
      const uint64_t tag = events[static_cast<size_t>(k)].data.u64;
      const uint32_t revents = events[static_cast<size_t>(k)].events;
      if (tag == static_cast<uint64_t>(n)) {
        wake_.Drain();
        continue;
      }
      const AgentId a = static_cast<AgentId>(tag);
      const size_t i = static_cast<size_t>(a);
      if (closed_[i]) continue;  // latched earlier in this same batch
      if (revents & (EPOLLIN | EPOLLHUP | EPOLLERR)) {
        // Batched drain: pull everything this sender has written into
        // the reusable scratch, then decode and route every complete
        // frame; same-destination frames coalesce in its PendingBuf
        // and leave in one send.
        for (;;) {
          const ssize_t r = recv(children_[i].wire_fd, scratch.data(),
                                 scratch.size(), MSG_DONTWAIT);
          if (r < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK) break;
            if (errno == EINTR) continue;
            RecordFault(a, "agent supervisor: agent " + std::to_string(a) +
                               " wire read failed (" + std::strerror(errno) +
                               ")");
            closed_[i] = true;
            break;
          }
          if (r == 0) {
            // Hangup.  The router cannot judge crash vs. clean exit
            // here: a child closes its wire the instant it _exits after
            // writing Done, usually before the main thread's ReadRecord
            // loop has marked it done.  Record the bare fact; fault()
            // and the control plane judge it against `done` when asked.
            {
              std::lock_guard<std::mutex> lock(mu_);
              children_[i].wire_eof = true;
            }
            closed_[i] = true;
            break;
          }
          rx_[i].Feed(std::span<const uint8_t>(scratch.data(),
                                               static_cast<size_t>(r)));
          while (std::optional<Message> f = rx_[i].Next()) {
            PEM_CHECK(f->from == a,
                      "agent supervisor: child framed another agent's id");
            RouteFrame(*f);
          }
        }
      }
    }
    for (AgentId d = 0; d < n; ++d) {
      if (!pending_[static_cast<size_t>(d)].empty()) FlushPending(d);
    }
  }
}

void AgentSupervisor::Command(AgentId agent, uint32_t tag,
                              std::span<const uint8_t> payload) {
  PEM_CHECK(agent >= 0 && agent < num_agents(), "bad agent id");
  children_[static_cast<size_t>(agent)].ctl->Write(tag, payload);
}

void AgentSupervisor::CommandAll(uint32_t tag,
                                 std::span<const uint8_t> payload) {
  for (AgentId a = 0; a < num_agents(); ++a) Command(a, tag, payload);
}

void AgentSupervisor::ThrowChildFailure(AgentId agent,
                                        const std::string& why) {
  TransportFault fault{agent, ErrorCode::kProtocolViolation,
                       "agent supervisor: agent " + std::to_string(agent) +
                           " child process " + why};
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!fault_.has_value()) fault_ = fault;
  }
  throw TransportError(std::move(fault));
}

ControlRecord AgentSupervisor::ReadRecord(AgentId agent) {
  PEM_CHECK(agent >= 0 && agent < num_agents(), "bad agent id");
  Child& c = children_[static_cast<size_t>(agent)];
  ControlRecord rec;
  try {
    rec = c.ctl->Read(opts_.watchdog_ms);
  } catch (const ControlTimeout&) {
    // Watchdog expiry with the channel still open: the peer is alive
    // but silent.  A local child might nonetheless have died without
    // the hangup reaching us yet — say how if so; otherwise surface
    // the timeout itself (the destructor will kill and reap local
    // stragglers; an external agent being slow is not a disconnect).
    if (c.pid > 0 && ReapChild(agent, /*timeout_ms=*/2000)) {
      ThrowChildFailure(agent, DescribeWaitStatus(c.wait_status) +
                                   " before reporting");
    }
    throw;
  } catch (const TransportError&) {
    // Hangup or recv failure: the peer is gone.  If it was a local
    // child, say exactly how it died; an external agent has no process
    // to interrogate — its hangup IS the disconnect.
    if (c.pid <= 0) {
      ThrowChildFailure(agent, "disconnected before reporting");
    }
    if (ReapChild(agent, /*timeout_ms=*/2000)) {
      ThrowChildFailure(agent, DescribeWaitStatus(c.wait_status) +
                                   " before reporting");
    }
    throw;
  }
  if (rec.tag == kCtlRepError) {
    (void)ReapChild(agent, /*timeout_ms=*/2000);
    ThrowChildFailure(
        agent, "reported: " + std::string(rec.payload.begin(),
                                          rec.payload.end()));
  }
  if (rec.tag == kCtlRepDone) {
    std::lock_guard<std::mutex> lock(mu_);
    c.done = true;
  }
  return rec;
}

bool AgentSupervisor::ReapChild(AgentId agent, int timeout_ms) {
  Child& c = children_[static_cast<size_t>(agent)];
  if (c.reaped) return true;
  if (c.pid <= 0) {
    // Externally launched: no local process, nothing to collect.
    c.reaped = true;
    c.wait_status = 0;
    return true;
  }
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    int status = 0;
    const pid_t r = waitpid(c.pid, &status, WNOHANG);
    if (r == c.pid) {
      c.reaped = true;
      c.wait_status = status;
      return true;
    }
    if (r < 0) {
      // ECHILD: someone else collected it; treat as reaped-clean.
      c.reaped = true;
      c.wait_status = 0;
      return true;
    }
    if (std::chrono::steady_clock::now() >= deadline) return false;
    usleep(2000);
  }
}

void AgentSupervisor::KillAndReapAll() {
  for (AgentId a = 0; a < num_agents(); ++a) {
    Child& c = children_[static_cast<size_t>(a)];
    if (c.reaped || c.pid <= 0) continue;
    kill(c.pid, SIGKILL);
  }
  for (AgentId a = 0; a < num_agents(); ++a) {
    Child& c = children_[static_cast<size_t>(a)];
    if (c.reaped || c.pid <= 0) continue;
    int status = 0;
    // SIGKILL cannot be caught; the blocking wait returns promptly.
    if (waitpid(c.pid, &status, 0) == c.pid) c.wait_status = status;
    c.reaped = true;
  }
}

void AgentSupervisor::StopRouter() {
  if (router_stopped_ || !router_started_) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  WakeRouter();
  if (router_.joinable()) router_.join();
  router_stopped_ = true;
}

void AgentSupervisor::Shutdown() {
  if (finished_) return;
  CommandAll(kCtlCmdShutdown);
  for (AgentId a = 0; a < num_agents(); ++a) {
    const ControlRecord rec = ReadRecord(a);
    if (rec.tag != kCtlRepDone) {
      ThrowChildFailure(a, "sent record tag " + std::to_string(rec.tag) +
                               " where Done was expected");
    }
  }
  for (AgentId a = 0; a < num_agents(); ++a) {
    Child& c = children_[static_cast<size_t>(a)];
    if (!ReapChild(a, opts_.watchdog_ms)) {
      ThrowChildFailure(a, "did not exit within the watchdog after Done");
    }
    if (c.pid > 0 &&
        (!WIFEXITED(c.wait_status) || WEXITSTATUS(c.wait_status) != 0)) {
      ThrowChildFailure(a, DescribeWaitStatus(c.wait_status));
    }
  }
  StopRouter();
  finished_ = true;
}

TrafficStats AgentSupervisor::stats(AgentId agent) const {
  PEM_CHECK(agent >= 0 && agent < num_agents(), "bad agent id");
  std::lock_guard<std::mutex> lock(mu_);
  return ledger_.stats(agent);
}

uint64_t AgentSupervisor::total_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ledger_.total_bytes;
}

uint64_t AgentSupervisor::total_messages() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ledger_.total_messages;
}

double AgentSupervisor::AverageBytesPerAgent() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ledger_.AverageBytesPerAgent();
}

void AgentSupervisor::ResetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  ledger_.Reset();
}

void AgentSupervisor::SetObserver(Transport::Observer observer) {
  std::lock_guard<std::mutex> lock(mu_);
  observer_ = std::move(observer);
}

std::optional<TransportFault> AgentSupervisor::fault() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (fault_.has_value()) return fault_;
  // A wire hangup is judged lazily against `done`: the router sees EOF
  // even on a clean exit (the child closes its fds the instant it
  // _exits after writing Done, typically before the main thread has
  // read the Done record), so only an EOF with no Done is a crash.
  for (size_t a = 0; a < children_.size(); ++a) {
    const Child& c = children_[a];
    if (c.wire_eof && !c.done) {
      return TransportFault{
          static_cast<AgentId>(a), ErrorCode::kProtocolViolation,
          "agent supervisor: agent " + std::to_string(a) +
              " hung up its wire before reporting Done (peer crashed?)"};
    }
  }
  return std::nullopt;
}

bool AgentSupervisor::reaped(AgentId agent) const {
  PEM_CHECK(agent >= 0 && agent < num_agents(), "bad agent id");
  const Child& c = children_[static_cast<size_t>(agent)];
  return c.reaped || c.pid <= 0;
}

void AgentSupervisor::SeverWireForTest(AgentId agent) {
  PEM_CHECK(agent >= 0 && agent < num_agents(), "bad agent id");
  // shutdown(2), not close(2): the fd number stays allocated, so the
  // router thread racing a read or write sees EOF/EPIPE rather than a
  // recycled descriptor.
  shutdown(children_[static_cast<size_t>(agent)].wire_fd, SHUT_RDWR);
}

}  // namespace pem::net
