// Transport abstraction for the protocol engine.
//
// The paper deploys each agent in its own container, so "the network"
// is whatever carries frames between them.  Protocol code never holds
// the whole transport: it acts through per-agent Endpoint handles
// (Transport::endpoint), so a protocol step can only touch the inbox
// and counters of the agent it is acting for — which is what keeps an
// out-of-process backend honest.  Concrete backends decide the
// threading and process model:
//   * MessageBus        — single-threaded FIFO bus (the original
//                         engine; cheapest, no locking);
//   * ConcurrentMessageBus — mutex-guarded bus that accepts Send()
//                         from ParallelFor workers while preserving
//                         per-agent FIFO order and byte-exact
//                         TrafficStats accounting;
//   * SocketTransport   — per-agent Unix-domain socketpairs carrying
//                         net/frame.h frames through one relay-thread
//                         router, modelling the paper's one-container-
//                         per-agent deployment inside one process.
// All backends account identical bytes for identical message
// sequences — exactly FramedSize(msg) per delivered copy — which is
// what lets test_transcript_parity assert a serial/concurrent/socket
// three-way parity of the wire transcript.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/frame.h"
#include "net/message.h"
#include "util/error.h"

namespace pem::net {

class Endpoint;

// Structured description of a channel whose peer went away (EPIPE /
// hangup / EOF).  A closed peer is a runtime failure of the deployment,
// not a programming error, so it must reach the caller as data —
// ProcessTransport needs it to report WHICH child died and HOW —
// instead of a bare abort in the relay thread or a silent nullopt from
// Receive().
struct TransportFault {
  AgentId agent = -1;   // whose channel closed (-1: the transport itself)
  ErrorCode code = ErrorCode::kProtocolViolation;
  std::string detail;   // human-readable: syscall, errno, exit status
};

// Thrown by Receive()/control-plane reads when the underlying channel
// is gone.  Transports record the first fault they observe (see
// Transport::fault()) and throw it from every blocked or subsequent
// read, so protocol code unwinds with a report instead of hanging.
class TransportError : public std::runtime_error {
 public:
  explicit TransportError(TransportFault fault)
      : std::runtime_error(std::string(ErrorCodeName(fault.code)) + ": " +
                           fault.detail),
        fault_(std::move(fault)) {}

  const TransportFault& fault() const { return fault_; }

 private:
  TransportFault fault_;
};

// Shared per-agent traffic accounting.  Every backend charges exactly
// the codec's framed size per delivered copy through this one
// implementation, so "all backends account identical bytes" is true
// by construction rather than by keeping copies in sync.  Backends
// with internal concurrency guard the ledger with their own lock.
struct TrafficLedger {
  std::vector<TrafficStats> per_agent;
  uint64_t total_bytes = 0;
  uint64_t total_messages = 0;

  explicit TrafficLedger(size_t num_agents) : per_agent(num_agents) {}

  void Account(AgentId from, AgentId to, size_t payload_size) {
    const uint64_t size = FramedSize(payload_size);
    per_agent[static_cast<size_t>(from)].bytes_sent += size;
    per_agent[static_cast<size_t>(from)].messages_sent += 1;
    per_agent[static_cast<size_t>(to)].bytes_received += size;
    per_agent[static_cast<size_t>(to)].messages_received += 1;
    total_bytes += size;
    total_messages += 1;
  }

  TrafficStats stats(AgentId agent) const {
    return per_agent[static_cast<size_t>(agent)];
  }

  double AverageBytesPerAgent() const {
    if (per_agent.empty()) return 0.0;
    uint64_t sum = 0;
    for (const TrafficStats& s : per_agent) {
      sum += s.bytes_sent + s.bytes_received;
    }
    return static_cast<double>(sum) / static_cast<double>(per_agent.size());
  }

  void Reset() {
    for (TrafficStats& s : per_agent) s = TrafficStats{};
    total_bytes = 0;
    total_messages = 0;
  }
};

class Transport {
 public:
  // Frame overhead charged per message.  The codec (net/frame.h) is
  // the source of truth; this alias exists for accounting arithmetic.
  static constexpr uint64_t kFrameOverheadBytes = kFrameHeaderBytes;

  // Observer invoked for every delivered message (after broadcast
  // fan-out).  Used by transcript-inspection tests and debug tracing;
  // pass nullptr to clear.  Concurrent backends invoke it under their
  // internal lock, so one observer sees a consistent total order —
  // which also means the observer MUST NOT call back into the
  // transport (self-deadlock on the non-recursive lock); record what
  // you need from the Message and query the transport between turns.
  using Observer = std::function<void(const Message&)>;

  virtual ~Transport() = default;

  virtual int num_agents() const = 0;

  // Queues a message for `msg.to`.  kBroadcast delivers a copy to every
  // agent except the sender (each copy is accounted separately, as a
  // real broadcast over unicast links would be).
  virtual void Send(Message msg) = 0;

  // Pops the next message for `agent`; nullopt when nothing has been
  // sent to it that it has not already popped.  Backends with delivery
  // latency (SocketTransport) block until an already-sent message
  // arrives rather than returning a spurious nullopt.
  virtual std::optional<Message> Receive(AgentId agent) = 0;
  virtual bool HasMessage(AgentId agent) const = 0;

  // Snapshot of the agent's counters (by value: concurrent backends
  // cannot hand out references into state another thread may touch).
  virtual TrafficStats stats(AgentId agent) const = 0;
  virtual uint64_t total_bytes() const = 0;
  virtual uint64_t total_messages() const = 0;

  // Average bytes (sent + received) per agent since the last reset.
  virtual double AverageBytesPerAgent() const = 0;

  // Zeroes the counters (per-window accounting keeps inboxes intact —
  // they are expected to be empty between windows).
  virtual void ResetStats() = 0;

  virtual void SetObserver(Observer observer) = 0;

  // First channel fault observed (closed peer, dead router), if any.
  // Backends without kernel channels can never fault.  Receive() on a
  // faulted transport throws TransportError carrying this description.
  virtual std::optional<TransportFault> fault() const { return std::nullopt; }

  // The per-agent handle protocol code acts through (defined below).
  Endpoint endpoint(AgentId id);
  std::vector<Endpoint> endpoints();
};

// Per-agent transport handle: the only object per-agent protocol code
// may touch.  Sending stamps the owner as the sender, receiving pops
// the owner's inbox only — there is no way to read another agent's
// messages or counters through it.  Cheap to copy (pointer + id); the
// Transport must outlive every handle.
class Endpoint {
 public:
  Endpoint() = default;

  AgentId id() const { return id_; }
  bool valid() const { return transport_ != nullptr; }
  int num_agents() const { return transport_->num_agents(); }

  // Sends to `to` (or kBroadcast) as this agent.
  void Send(AgentId to, uint32_t type, std::vector<uint8_t> payload) {
    transport_->Send(Message{id_, to, type, std::move(payload)});
  }
  // Whole-message overload; the sender field must be the owner.
  void Send(Message msg) {
    PEM_CHECK(msg.from == id_, "Endpoint::Send: message forges its sender");
    transport_->Send(std::move(msg));
  }

  std::optional<Message> Receive() { return transport_->Receive(id_); }
  bool HasMessage() const { return transport_->HasMessage(id_); }
  TrafficStats stats() const { return transport_->stats(id_); }

 private:
  friend class Transport;
  Endpoint(Transport* transport, AgentId id) : transport_(transport), id_(id) {}

  Transport* transport_ = nullptr;
  AgentId id_ = -1;
};

inline Endpoint Transport::endpoint(AgentId id) {
  PEM_CHECK(id >= 0 && id < num_agents(), "endpoint: agent id out of range");
  return Endpoint(this, id);
}

inline std::vector<Endpoint> Transport::endpoints() {
  std::vector<Endpoint> out;
  out.reserve(static_cast<size_t>(num_agents()));
  for (AgentId a = 0; a < num_agents(); ++a) out.push_back(endpoint(a));
  return out;
}

// Sum of bytes sent across a community's endpoints.  Every delivered
// copy is accounted once on its sender, so this equals the transport's
// total_bytes() — it lets driver code (RunPemWindow) measure a window
// without holding the whole transport.
inline uint64_t TotalBytesSent(std::span<const Endpoint> endpoints) {
  uint64_t sum = 0;
  for (const Endpoint& ep : endpoints) sum += ep.stats().bytes_sent;
  return sum;
}

// Which concrete Transport a run uses.
enum class TransportKind {
  kSerialBus,      // MessageBus: single-threaded, no locking
  kConcurrentBus,  // ConcurrentMessageBus: safe under ParallelFor
  kSocket,         // SocketTransport: framed Unix-domain socketpairs
  kProcess,        // ProcessTransport: one forked OS process per agent
  kTcp,            // TcpTransport: one process per agent over TCP
  kShm,            // ShmTransport: one process per agent over shared-
                   // memory SPSC rings (zero kernel copies)
};

inline const char* TransportKindName(TransportKind k) {
  // Exhaustive on purpose: adding a TransportKind without naming it is
  // a compile-time -Wswitch warning here, not a silent "unknown".
  switch (k) {
    case TransportKind::kSerialBus: return "serial";
    case TransportKind::kConcurrentBus: return "concurrent";
    case TransportKind::kSocket: return "socket";
    case TransportKind::kProcess: return "process";
    case TransportKind::kTcp: return "tcp";
    case TransportKind::kShm: return "shm";
  }
  PEM_CHECK(false, "invalid TransportKind value");
  return nullptr;
}

// Backend-specific tuning for the process-isolated transports, carried
// by ExecutionPolicy so ONE object fully specifies a backend (which
// kind, how many compute workers, and how that kind is parameterized).
// Fields a backend does not use are ignored by it; the defaults
// reproduce every backend's stock behavior.
struct TransportOptions {
  // Process/TCP/Shm: upper bound on any wait for a child (a window
  // report, an exit).  A crashed or deadlocked agent process fails the
  // run with a structured error naming the child after this long,
  // instead of hanging until a ctest TIMEOUT or CI runner kill.
  int watchdog_ms = 120'000;
  // TCP only: where the parent's rendezvous listener binds and the
  // forked children dial.  Port 0 auto-assigns; the default loopback
  // host keeps the run on one machine while still pushing every frame
  // through the network stack.
  std::string tcp_host = "127.0.0.1";
  uint16_t tcp_port = 0;
  // TCP debug mode: byte-match every frame a child consumes against
  // its deterministic shadow script (always on for the socketpair
  // process backend).  Off by default — the parent's per-window ledger
  // cross-check still runs.
  bool tcp_verify_frames = false;
  // Shm only: data capacity of each directed per-pair ring (power of
  // two).  The default comfortably holds a window's largest frame
  // burst; raise it for communities with very large ciphertext
  // payloads.
  size_t shm_ring_bytes = size_t{1} << 20;
};

// How a protocol run executes: which transport carries the frames and
// how many workers the local-compute phases may use.  Threaded through
// SimulationConfig -> ProtocolContext so RunSimulation can select
// serial vs. phase-parallel per run.  The wire transcript is invariant
// under this policy (see RingAggregate's prepare/compute/forward
// phasing).
struct ExecutionPolicy {
  TransportKind transport_kind = TransportKind::kSerialBus;
  int threads = 1;
  // Appended member with defaults, so every existing aggregate
  // initializer ({kind, threads}) stays valid.
  TransportOptions transport;

  bool parallel() const { return threads > 1; }
  unsigned worker_count() const {
    return threads > 1 ? static_cast<unsigned>(threads) : 1u;
  }

  static ExecutionPolicy Serial() { return {}; }
  static ExecutionPolicy Parallel(int threads) {
    return {TransportKind::kConcurrentBus, threads};
  }
  // Frames over Unix-domain socketpairs (the per-container deployment
  // model); compute workers are independent of the backend choice.
  static ExecutionPolicy Socket(int threads = 1) {
    return {TransportKind::kSocket, threads};
  }
  // One forked OS process per agent: each child inherits exactly its
  // own socketpair end and runs a single agent's side of every phase
  // (protocol/agent_driver.h); the relay router and result collection
  // stay in the parent.  `threads` sets each child's compute fan-out.
  static ExecutionPolicy Process(int threads = 1) {
    return {TransportKind::kProcess, threads};
  }
  // One OS process per agent over real TCP connections (loopback by
  // default): children dial the parent's rendezvous listener instead
  // of inheriting a socketpair, so per-agent bytes are literal network
  // bytes and the agents could as well live on other hosts
  // (net/tcp_transport.h).  `threads` sets each child's compute
  // fan-out.
  static ExecutionPolicy Tcp(int threads = 1) {
    return {TransportKind::kTcp, threads};
  }
  // One forked OS process per agent exchanging frames through shared-
  // memory SPSC rings (net/shm_transport.h): zero kernel copies and no
  // router hop for co-located agents, with the parent accounting every
  // frame from a tap cursor.  `threads` sets each child's compute
  // fan-out.
  static ExecutionPolicy Shm(int threads = 1) {
    return {TransportKind::kShm, threads};
  }
};

// Constructs the backend selected by `kind`.  Aborts on a non-positive
// agent count — a zero-agent transport can only hide bugs.  kProcess is
// not constructible here: forking children requires a child entry
// point, so the driver must build net::ProcessTransport directly (as
// core::RunSimulation does for ExecutionPolicy::Process()).
std::unique_ptr<Transport> MakeTransport(TransportKind kind, int num_agents);

}  // namespace pem::net
