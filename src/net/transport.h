// Transport abstraction for the protocol engine.
//
// The paper deploys each agent in its own container, so "the network"
// is whatever carries frames between them.  Protocol code talks to this
// interface only; concrete backends decide the threading model:
//   * MessageBus        — single-threaded FIFO bus (the original
//                         engine; cheapest, no locking);
//   * ConcurrentMessageBus — mutex-guarded bus that accepts Send()
//                         from ParallelFor workers while preserving
//                         per-agent FIFO order and byte-exact
//                         TrafficStats accounting.
// Both backends account identical bytes for identical message
// sequences, which is what lets test_transcript_parity assert the
// serial and phase-parallel engines produce the same wire transcript.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

namespace pem::net {

using AgentId = int32_t;
inline constexpr AgentId kBroadcast = -1;

struct Message {
  AgentId from = 0;
  AgentId to = 0;
  uint32_t type = 0;  // protocol-defined tag
  std::vector<uint8_t> payload;

  bool operator==(const Message& o) const {
    return from == o.from && to == o.to && type == o.type &&
           payload == o.payload;
  }
};

// Per-agent traffic counters (bytes).
struct TrafficStats {
  uint64_t bytes_sent = 0;
  uint64_t bytes_received = 0;
  uint64_t messages_sent = 0;
  uint64_t messages_received = 0;
};

class Transport {
 public:
  // Frame overhead charged per message, approximating the
  // sender/receiver/type/length header of a real transport.
  static constexpr uint64_t kFrameOverheadBytes = 20;

  // Observer invoked for every delivered message (after broadcast
  // fan-out).  Used by transcript-inspection tests and debug tracing;
  // pass nullptr to clear.  Concurrent backends invoke it under their
  // internal lock, so one observer sees a consistent total order —
  // which also means the observer MUST NOT call back into the
  // transport (self-deadlock on the non-recursive lock); record what
  // you need from the Message and query the bus between turns.
  using Observer = std::function<void(const Message&)>;

  virtual ~Transport() = default;

  virtual int num_agents() const = 0;

  // Queues a message for `msg.to`.  kBroadcast delivers a copy to every
  // agent except the sender (each copy is accounted separately, as a
  // real broadcast over unicast links would be).
  virtual void Send(Message msg) = 0;

  // Pops the next message for `agent`; nullopt when inbox is empty.
  virtual std::optional<Message> Receive(AgentId agent) = 0;
  virtual bool HasMessage(AgentId agent) const = 0;

  // Snapshot of the agent's counters (by value: concurrent backends
  // cannot hand out references into state another thread may touch).
  virtual TrafficStats stats(AgentId agent) const = 0;
  virtual uint64_t total_bytes() const = 0;
  virtual uint64_t total_messages() const = 0;

  // Average bytes (sent + received) per agent since the last reset.
  virtual double AverageBytesPerAgent() const = 0;

  // Zeroes the counters (per-window accounting keeps inboxes intact —
  // they are expected to be empty between windows).
  virtual void ResetStats() = 0;

  virtual void SetObserver(Observer observer) = 0;
};

// Which concrete Transport a run uses.
enum class TransportKind {
  kSerialBus,      // MessageBus: single-threaded, no locking
  kConcurrentBus,  // ConcurrentMessageBus: safe under ParallelFor
};

inline const char* TransportKindName(TransportKind k) {
  switch (k) {
    case TransportKind::kSerialBus: return "serial";
    case TransportKind::kConcurrentBus: return "concurrent";
  }
  return "unknown";
}

// How a protocol run executes: which transport carries the frames and
// how many workers the local-compute phases may use.  Threaded through
// SimulationConfig -> ProtocolContext so RunSimulation can select
// serial vs. phase-parallel per run.  The wire transcript is invariant
// under this policy (see RingAggregate's prepare/compute/forward
// phasing).
struct ExecutionPolicy {
  TransportKind transport_kind = TransportKind::kSerialBus;
  int threads = 1;

  bool parallel() const { return threads > 1; }
  unsigned worker_count() const {
    return threads > 1 ? static_cast<unsigned>(threads) : 1u;
  }

  static ExecutionPolicy Serial() { return {}; }
  static ExecutionPolicy Parallel(int threads) {
    return {TransportKind::kConcurrentBus, threads};
  }
};

// Constructs the backend selected by `kind`.
std::unique_ptr<Transport> MakeTransport(TransportKind kind, int num_agents);

}  // namespace pem::net
