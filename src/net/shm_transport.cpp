#include "net/shm_transport.h"

#include <signal.h>
#include <sys/mman.h>
#include <sys/prctl.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <new>
#include <utility>

#include "net/bus.h"
#include "util/error.h"

namespace pem::net {
namespace {

// One cache line at the region base: the publish doorbell the parent
// snooper parks on (every child bumps + wakes it after any append).
constexpr size_t kGlobalHeaderBytes = 64;
// Doorbell re-check period: a missed futex wake costs at most one tick.
constexpr int kDoorbellTickMs = 50;

inline void StoreU64(uint8_t* p, uint64_t v) {
  StoreU32(p, static_cast<uint32_t>(v));
  StoreU32(p + 4, static_cast<uint32_t>(v >> 32));
}

inline uint64_t LoadU64(const uint8_t* p) {
  return static_cast<uint64_t>(LoadU32(p)) |
         static_cast<uint64_t>(LoadU32(p + 4)) << 32;
}

// --- child side -------------------------------------------------------

// The Transport a forked child drives: shadow MessageBus for the
// deterministic script (exactly like ProcessChildTransport), but this
// agent's own frames go straight into the per-pair rings — no wire fd,
// no router.  Receives need no reorder stash: ring(s -> self) IS
// sender s's FIFO toward this agent.
class ShmChildTransport : public Transport {
 public:
  ShmChildTransport(int num_agents, AgentId self, std::vector<SpscRing> rings,
                    std::atomic<uint32_t>* epoch, bool verify_frames)
      : shadow_(num_agents),
        self_(self),
        rings_(std::move(rings)),
        epoch_(epoch),
        verify_frames_(verify_frames) {
    PEM_CHECK(self >= 0 && self < num_agents,
              "shm child transport: self id out of range");
    PEM_CHECK(rings_.size() ==
                  static_cast<size_t>(num_agents) * static_cast<size_t>(num_agents),
              "shm child transport: ring grid size mismatch");
  }

  int num_agents() const override { return shadow_.num_agents(); }

  void Send(Message msg) override {
    if (msg.from == self_) {
      // Own traffic is real: the canonical frame is written ONCE into
      // ring(self -> recipient) and consumed there in place.  A
      // broadcast fans out into n-1 per-recipient copies with `to`
      // rewritten, in recipient order — byte-identical to what the
      // relay routers put on their wires.
      const int n = num_agents();
      if (msg.to == kBroadcast) {
        for (AgentId to = 0; to < n; ++to) {
          if (to == self_) continue;
          Message copy = msg;
          copy.to = to;
          WriteRecord(copy);
        }
      } else {
        PEM_CHECK(msg.to >= 0 && msg.to < n,
                  "shm child transport: bad receiver id");
        WriteRecord(msg);
      }
    }
    shadow_.Send(std::move(msg));
  }

  std::optional<Message> Receive(AgentId agent) override {
    std::optional<Message> expected = shadow_.Receive(agent);
    if (agent != self_ || !expected.has_value()) return expected;
    // The script names the sender whose frame this agent consumes
    // next; that sender's ring toward us is its FIFO, so the front
    // record is the frame — no stash, unlike the socket backends where
    // concurrent senders interleave on one stream.
    Message wire = ReadRecord(expected->from);
    if (verify_frames_ && !(wire == *expected)) {
      throw TransportError(TransportFault{
          self_, ErrorCode::kProtocolViolation,
          "shm child transport: agent " + std::to_string(self_) +
              " consumed a frame from sender " +
              std::to_string(expected->from) +
              " that diverges from the deterministic script"});
    }
    return verify_frames_ ? expected : std::optional<Message>(std::move(wire));
  }

  bool HasMessage(AgentId agent) const override {
    return shadow_.HasMessage(agent);
  }
  TrafficStats stats(AgentId agent) const override {
    return shadow_.stats(agent);
  }
  uint64_t total_bytes() const override { return shadow_.total_bytes(); }
  uint64_t total_messages() const override { return shadow_.total_messages(); }
  double AverageBytesPerAgent() const override {
    return shadow_.AverageBytesPerAgent();
  }
  void ResetStats() override { shadow_.ResetStats(); }
  void SetObserver(Observer observer) override {
    shadow_.SetObserver(std::move(observer));
  }

  // Asserts every inbound ring is fully consumed — anything left means
  // the rings and the deterministic script diverged.
  void VerifyQuiescent() const {
    const int n = num_agents();
    for (AgentId src = 0; src < n; ++src) {
      if (src == self_) continue;
      PEM_CHECK(Ring(src, self_).ReadableBytes() == 0,
                "shm child transport: unconsumed ring records at teardown");
    }
  }

 private:
  const SpscRing& Ring(AgentId from, AgentId to) const {
    return rings_[static_cast<size_t>(from) *
                      static_cast<size_t>(num_agents()) +
                  static_cast<size_t>(to)];
  }
  SpscRing& Ring(AgentId from, AgentId to) {
    return rings_[static_cast<size_t>(from) *
                      static_cast<size_t>(num_agents()) +
                  static_cast<size_t>(to)];
  }

  void WriteRecord(const Message& copy) {
    const uint32_t payload_len = static_cast<uint32_t>(copy.payload.size());
    const uint32_t frame_len = static_cast<uint32_t>(FramedSize(copy));
    // Ring record header + frame header in one stack buffer; the
    // payload is appended from its own storage — one copy total, into
    // memory the receiver reads in place.
    uint8_t hdr[kShmRecordHeaderBytes + kFrameHeaderBytes];
    StoreU32(hdr, frame_len);
    StoreU32(hdr + 4, 0);  // reserved
    StoreU64(hdr + 8, seq_);
    StoreU32(hdr + 16, payload_len);
    StoreU32(hdr + 20, static_cast<uint32_t>(copy.from));
    StoreU32(hdr + 24, static_cast<uint32_t>(copy.to));
    StoreU32(hdr + 28, copy.type);
    StoreU32(hdr + 32,
             FrameHeaderChecksum(payload_len, copy.from, copy.to, copy.type));
    ++seq_;
    SpscRing& ring = Ring(self_, copy.to);
    const size_t total = sizeof hdr + copy.payload.size();
    // Block (bounded ticks, never a spin) while the ring is full: the
    // reader or the parent snooper trailing this much means backpressure
    // is doing its job.  A dead receiver resolves through the parent's
    // watchdog + teardown SIGKILL, never through this loop.
    while (!ring.TryAppend(std::span<const uint8_t>(hdr, sizeof hdr),
                           std::span<const uint8_t>(copy.payload))) {
      ring.WaitWritable(total, kDoorbellTickMs);
    }
    epoch_->fetch_add(1, std::memory_order_release);
    FutexWake(epoch_);
  }

  Message ReadRecord(AgentId src) {
    SpscRing& ring = Ring(src, self_);
    while (ring.ReadableBytes() < kShmRecordHeaderBytes) {
      ring.WaitReadable(kDoorbellTickMs);
    }
    uint8_t rh[kShmRecordHeaderBytes];
    ring.Peek(0, rh, sizeof rh);
    const uint32_t frame_len = LoadU32(rh);
    PEM_CHECK(frame_len >= kFrameHeaderBytes &&
                  frame_len <= FramedSize(kMaxFramePayloadBytes),
              "shm child transport: insane ring record length");
    // Records are published whole (one release store of tail), so a
    // visible header implies the full record is visible.
    PEM_CHECK(ring.ReadableBytes() >= kShmRecordHeaderBytes + frame_len,
              "shm child transport: torn ring record");
    scratch_.resize(frame_len);
    ring.Peek(kShmRecordHeaderBytes, scratch_.data(), frame_len);
    FrameDecodeResult d = DecodeFrame(std::span<const uint8_t>(scratch_));
    PEM_CHECK(d.status == FrameDecodeStatus::kFrame &&
                  d.consumed == frame_len,
              "shm child transport: ring record failed frame decode");
    ring.Consume(kShmRecordHeaderBytes + frame_len);
    PEM_CHECK(d.frame.from == src && d.frame.to == self_,
              "shm child transport: ring record routed to the wrong pair");
    return std::move(d.frame);
  }

  MessageBus shadow_;
  AgentId self_;
  std::vector<SpscRing> rings_;
  std::atomic<uint32_t>* epoch_;
  bool verify_frames_;
  uint64_t seq_ = 0;  // this sender's global send counter, all rings
  std::vector<uint8_t> scratch_;
};

// Mirrors RunAdoptedChild for a ring-backed child: PDEATHSIG, control
// channel, error record on exception, _exit.
[[noreturn]] void RunShmChild(AgentId self, int num_agents,
                              const std::vector<SpscRing>& rings,
                              std::atomic<uint32_t>* epoch, int ctl_fd,
                              bool verify_frames,
                              const AgentSupervisor::ChildMain& child_main) {
  prctl(PR_SET_PDEATHSIG, SIGKILL);
  ControlChannel ctl(ctl_fd, self);
  int code = 127;
  try {
    ShmChildTransport wire(num_agents, self, rings, epoch, verify_frames);
    code = child_main(self, wire, ctl);
    wire.VerifyQuiescent();
  } catch (const std::exception& e) {
    try {
      const char* what = e.what();
      ctl.Write(kCtlRepError,
                std::span<const uint8_t>(
                    reinterpret_cast<const uint8_t*>(what),
                    std::strlen(what)));
    } catch (...) {
      // Parent gone too; the wait status is all that is left to say.
    }
    _exit(1);
  } catch (...) {
    _exit(2);
  }
  _exit(code);
}

}  // namespace

// --- ShmTransport -----------------------------------------------------

ShmTransport::ShmTransport(int num_agents, ChildMain child_main, Options opts)
    : AgentSupervisor(num_agents,
                      AgentSupervisor::Options{opts.watchdog_ms}),
      shm_opts_(opts) {
  PEM_CHECK(child_main != nullptr, "ShmTransport needs a child entry point");
  PEM_CHECK(opts.ring_bytes >= 4096 &&
                (opts.ring_bytes & (opts.ring_bytes - 1)) == 0,
            "ShmTransport: ring_bytes must be a power of two >= 4096");
  const size_t n = static_cast<size_t>(num_agents);

  // Map the whole grid before forking, so every child inherits the
  // SAME pages at the same address and ring handles stay valid across
  // the fork.
  const size_t ring_region = SpscRing::RegionBytes(opts.ring_bytes);
  region_bytes_ = kGlobalHeaderBytes + n * n * ring_region;
  region_ = mmap(nullptr, region_bytes_, PROT_READ | PROT_WRITE,
                 MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  PEM_CHECK(region_ != MAP_FAILED, "ShmTransport: mmap failed");
  epoch_ = new (region_) std::atomic<uint32_t>(0);
  uint8_t* base = static_cast<uint8_t*>(region_) + kGlobalHeaderBytes;
  rings_.reserve(n * n);
  for (size_t i = 0; i < n * n; ++i) {
    rings_.push_back(SpscRing::Init(base + i * ring_region, opts.ring_bytes));
  }
  next_seq_.assign(n, 0);
  reorder_.resize(n);

  // Control socketpairs, then fork — before any thread exists in the
  // parent (forking a process with live mutex-owning threads is how
  // post-fork deadlocks are made).
  std::vector<int> ctl_parent(n, -1), ctl_child(n, -1);
  for (size_t i = 0; i < n; ++i) MakeSocketPair(&ctl_parent[i], &ctl_child[i]);
  for (size_t i = 0; i < n; ++i) {
    const pid_t pid = fork();
    PEM_CHECK(pid >= 0, "shm transport: fork failed");
    if (pid == 0) {
      // Inherit EXACTLY this agent's control end; the mapping itself
      // is shared by construction.
      for (size_t j = 0; j < n; ++j) {
        CloseIfOpen(ctl_parent[j]);
        if (j != i) CloseIfOpen(ctl_child[j]);
      }
      RunShmChild(static_cast<AgentId>(i), num_agents, rings_, epoch_,
                  ctl_child[i], opts.verify_frames, child_main);
    }
    AdoptChild(static_cast<AgentId>(i), pid, /*wire_fd=*/-1, ctl_parent[i]);
    close(ctl_child[i]);
    ctl_child[i] = -1;
  }

  // No relay router: frames never cross the parent.  The snooper tails
  // every ring through its snoop cursor and feeds the shared
  // accounting path instead.
  snooper_ = std::thread([this] { SnooperLoop(); });
}

ShmTransport::~ShmTransport() {
  // Order matters: children write the region and the snooper reads it,
  // so both must be gone before munmap — and the base destructor runs
  // only after our members are destroyed, too late.
  KillAndReapAll();
  StopSnooper();
  if (region_ != nullptr) {
    munmap(region_, region_bytes_);
    region_ = nullptr;
  }
}

void ShmTransport::StopSnooper() {
  if (!snooper_.joinable()) return;
  snoop_stop_.store(true, std::memory_order_release);
  FutexWake(epoch_);
  snooper_.join();
}

void ShmTransport::SnooperLoop() {
  const int n = num_agents();
  for (;;) {
    const uint32_t epoch_seen = epoch_->load(std::memory_order_acquire);
    bool progress = false;
    for (AgentId from = 0; from < n; ++from) {
      for (AgentId to = 0; to < n; ++to) {
        SpscRing& ring =
            rings_[static_cast<size_t>(from) * static_cast<size_t>(n) +
                   static_cast<size_t>(to)];
        while (ring.SnoopReadableBytes() >= kShmRecordHeaderBytes) {
          progress = true;
          uint8_t rh[kShmRecordHeaderBytes];
          ring.SnoopPeek(0, rh, sizeof rh);
          const uint32_t frame_len = LoadU32(rh);
          const uint64_t seq = LoadU64(rh + 8);
          PEM_CHECK(ring.SnoopReadableBytes() >=
                        kShmRecordHeaderBytes + frame_len,
                    "shm snooper: torn ring record");
          snoop_scratch_.resize(frame_len);
          ring.SnoopPeek(kShmRecordHeaderBytes, snoop_scratch_.data(),
                         frame_len);
          FrameDecodeResult d =
              DecodeFrame(std::span<const uint8_t>(snoop_scratch_));
          // A record that decodes wrong is adversarial, not a torn
          // read (publication is a single release store of tail, and
          // honest writers only publish whole canonical frames), so it
          // latches a structured fault naming the ring's sender and is
          // consumed WITHOUT being accounted: the ledger holds only
          // honest traffic, SyncLedger still terminates, and the
          // surviving rings keep flowing.
          if (d.status != FrameDecodeStatus::kFrame ||
              d.consumed != frame_len) {
            RecordFault(from,
                        "forged ring record: frame fails checksum/decode");
            ring.SnoopConsume(kShmRecordHeaderBytes + frame_len);
            continue;
          }
          if (d.frame.from != from || d.frame.to != to) {
            RecordFault(from, "forged ring record: frame names pair " +
                                  std::to_string(d.frame.from) + "->" +
                                  std::to_string(d.frame.to) +
                                  " but sits in ring " +
                                  std::to_string(from) + "->" +
                                  std::to_string(to));
            ring.SnoopConsume(kShmRecordHeaderBytes + frame_len);
            continue;
          }
          // Merge this sender's records back into exact send order
          // before accounting, so the observer sees the same
          // per-sender transcript order every other backend delivers.
          // The account happens BEFORE SnoopConsume: once every ring
          // shows snoop == tail, the ledger is provably complete
          // (SyncLedger relies on exactly this ordering).
          const size_t s = static_cast<size_t>(from);
          if (seq == next_seq_[s]) {
            AccountDeliveredCopy(d.frame);
            ++next_seq_[s];
            auto& stash = reorder_[s];
            for (auto it = stash.begin();
                 it != stash.end() && it->first == next_seq_[s];
                 it = stash.erase(it)) {
              AccountDeliveredCopy(it->second);
              ++next_seq_[s];
            }
          } else if (seq < next_seq_[s] ||
                     reorder_[s].count(seq) != 0) {
            // An honest sender's sequence counter is strictly
            // monotone, so a sequence number the merge has already
            // passed — or one already parked in the stash — can only
            // be a replayed record.
            RecordFault(from, "replayed ring record: sender sequence " +
                                  std::to_string(seq) +
                                  " repeats an already-published frame");
            ring.SnoopConsume(kShmRecordHeaderBytes + frame_len);
            continue;
          } else {
            reorder_[s].emplace(seq, std::move(d.frame));
          }
          ring.SnoopConsume(kShmRecordHeaderBytes + frame_len);
        }
      }
    }
    if (progress) continue;
    if (snoop_stop_.load(std::memory_order_acquire)) return;
    FutexWait(epoch_, epoch_seen, kDoorbellTickMs);
  }
}

void ShmTransport::InjectRingRecordForTest(AgentId from, AgentId to,
                                           uint64_t seq, const Message& msg,
                                           bool corrupt_frame) {
  const size_t n = static_cast<size_t>(num_agents());
  PEM_CHECK(from >= 0 && static_cast<size_t>(from) < n && to >= 0 &&
                static_cast<size_t>(to) < n && from != to,
            "shm inject: agent pair out of range");
  std::vector<uint8_t> frame = EncodeFrame(msg);
  if (corrupt_frame) {
    // Flip a bit in the stored checksum (frame byte 16): the record
    // layout stays intact, only the frame fails decode.
    frame[16] ^= 0x01;
  }
  uint8_t rh[kShmRecordHeaderBytes];
  StoreU32(rh, static_cast<uint32_t>(frame.size()));
  StoreU32(rh + 4, 0);  // reserved
  StoreU64(rh + 8, seq);
  SpscRing& ring = rings_[static_cast<size_t>(from) * n +
                          static_cast<size_t>(to)];
  PEM_CHECK(ring.TryAppend(std::span<const uint8_t>(rh, sizeof rh),
                           std::span<const uint8_t>(frame)),
            "shm inject: ring full");
  epoch_->fetch_add(1, std::memory_order_release);
  FutexWake(epoch_);
}

void ShmTransport::SyncLedger() {
  // All children have reported, so every tail is final; wait for the
  // snooper to chase them.  Accounting precedes SnoopConsume in the
  // snooper, so snoop == tail everywhere implies the ledger holds
  // every published record (a record parked in the reorder stash
  // keeps its missing predecessor's ring short of its tail).
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(shm_opts_.watchdog_ms);
  for (;;) {
    bool synced = true;
    for (const SpscRing& ring : rings_) {
      if (ring.snoop() != ring.tail()) {
        synced = false;
        break;
      }
    }
    if (synced) return;
    PEM_CHECK(std::chrono::steady_clock::now() < deadline,
              "shm transport: snooper failed to drain the rings within "
              "the watchdog");
    usleep(500);
  }
}

}  // namespace pem::net
