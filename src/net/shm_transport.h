// Zero-copy shared-memory transport: co-located agents exchanging
// frames through SPSC rings instead of kernel sockets.
//
// The paper's agents are containers on one host; for that co-located
// case every frame through the socketpair backends still pays two
// kernel copies (sender write, receiver read) plus a router wakeup.
// This backend removes all three: the parent mmaps one
// MAP_SHARED | MAP_ANONYMOUS region holding an n x n grid of
// net/spsc_ring.h rings (one per directed agent pair; the diagonal is
// unused), forks one child per agent, and a Send writes the canonical
// net/frame.h frame ONCE into ring(sender -> recipient), where the
// recipient consumes it in place — no kernel copies, no router hop.
//
// What does NOT change is everything the other out-of-process
// backends established:
//   * the control plane, watchdog, fault reporting, reaping and
//     per-window report collection all reuse net::AgentSupervisor;
//   * Table-I accounting still charges exactly FramedSize(payload)
//     per delivered copy, through the same AccountDeliveredCopy path
//     the relay routers use.  The parent cannot sit on a router hop
//     here, so each ring carries a third cursor — the SNOOP cursor —
//     gating the writer's free space: a parent snooper thread tails
//     every ring, decodes the records it (re)reads, and accounts +
//     observes them.  Nothing is overwritten until the parent has
//     accounted it, so the ledger is exact, not sampled.
//
// Per-sender order.  A sender's frames spread across n-1 rings, so
// ring position alone cannot reconstruct its global send order (which
// the parity tests assert, and the observer transcript needs).  Every
// ring record therefore carries a per-sender sequence number, and the
// snooper merges each sender's records back into exact send order
// with a small reorder stash.  Receivers need no such machinery:
// ring(s -> r) IS sender s's FIFO toward r, which is the only order
// two independent parties can observe.
//
// Record layout inside a ring (all integers little-endian):
//   [u32 frame_len | u32 reserved | u64 sender_seq] frame
// where `frame` is the canonical codec frame (header + checksum +
// payload).  A record is published with one release store, so readers
// never see a torn prefix; records larger than a ring are rejected at
// Send (size the ring via Options::ring_bytes for bigger payloads).
//
// Failure model.  Children die with the parent (PDEATHSIG) and the
// parent SIGKILLs stragglers in its destructor, so a writer parked on
// a dead receiver's full ring is always resolved by teardown.  A
// crashed child surfaces exactly as in the socket backends: its
// control channel hangs up, ReadRecord reaps it and throws a
// structured TransportError naming the agent and its fatal signal
// within the watchdog — asserted by tests/net/test_shm_transport.cpp.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <thread>
#include <vector>

#include "net/agent_supervisor.h"
#include "net/spsc_ring.h"

namespace pem::net {

// Ring record header: [u32 frame_len | u32 reserved | u64 sender_seq].
inline constexpr size_t kShmRecordHeaderBytes = 16;

class ShmTransport : public AgentSupervisor {
 public:
  struct Options {
    // See AgentSupervisor::Options.
    int watchdog_ms = 120'000;
    // Data capacity of each directed ring (power of two).  A record
    // (16-byte ring header + framed message) must fit in one ring.
    size_t ring_bytes = size_t{1} << 20;
    // Byte-match every frame a child consumes against its
    // deterministic shadow script, like the socketpair backend.
    bool verify_frames = true;
  };

  ShmTransport(int num_agents, ChildMain child_main, Options opts);
  ShmTransport(int num_agents, ChildMain child_main)
      : ShmTransport(num_agents, std::move(child_main), Options{}) {}
  ~ShmTransport() override;

  // Blocks until the snooper has accounted every published record
  // (snoop == tail on all rings, reorder stash empty).  Called by
  // CollectWindowReports after all children reported a window, when
  // the tails are quiesced.
  void SyncLedger() override;

  // Test hook: publishes a ring record into ring(from -> to) directly
  // from the parent, as an adversary with mapping access would —
  // choosing the per-sender sequence number freely and optionally
  // corrupting the frame checksum.  The snooper rejects what it snoops
  // (a stale/duplicate sequence is a replay, a record whose frame names
  // another pair is a forgery, a corrupt frame is garbage), latching a
  // structured fault naming the ring's sender while the surviving
  // rings keep accounting.  Only safe while the named sender's child is
  // quiescent (SPSC: one producer per ring).  Never called outside
  // tests.
  void InjectRingRecordForTest(AgentId from, AgentId to, uint64_t seq,
                               const Message& msg,
                               bool corrupt_frame = false);

 private:
  void SnooperLoop();
  void StopSnooper();

  Options shm_opts_;
  void* region_ = nullptr;
  size_t region_bytes_ = 0;
  std::atomic<uint32_t>* epoch_ = nullptr;  // publish doorbell (shared)
  std::vector<SpscRing> rings_;             // [from * n + to]; diagonal unused

  // Snooper-thread-only per-sender merge state.
  std::vector<uint64_t> next_seq_;
  std::vector<std::map<uint64_t, Message>> reorder_;
  std::vector<uint8_t> snoop_scratch_;

  std::atomic<bool> snoop_stop_{false};
  std::thread snooper_;
};

}  // namespace pem::net
