// Parent-side supervision of out-of-process agents — the control
// plane every forked/remote backend shares.
//
// The parent-side machinery — the child table, the relay router, the
// control plane, the watchdog, the reaping — never looks at HOW a
// child's descriptors came to be (inherited socketpair ends in
// net/process_transport.h, accepted TCP connections in
// net/tcp_transport.h, a pre-fork shared mapping in
// net/shm_transport.h), so it lives here and the concrete backends
// only differ in their constructors.
//
// This header is deliberately free of any concrete transport: protocol
// code that drives children (protocol/agent_driver.cpp) depends on the
// supervision contract — ControlChannel records, AgentSupervisor
// commands, the wire ledger — not on which kernel primitive carries
// the frames.  pem_lint's layering rule enforces exactly that split.
//
// Child lifecycle.  Children are commanded over the control channel
// (length-prefixed records) and report results the same way.  A child
// that exits cleanly writes a Done record first; one that throws writes
// an Error record; one that crashes is detected by control-channel
// hangup, reaped with waitpid, and surfaced as a structured
// TransportError naming the agent and its exit status or signal —
// within the watchdog timeout, never as a silent hang.  The destructor
// SIGKILLs and reaps whatever is still running, so no orphans or
// zombies survive a failed run, and every inherited descriptor is
// closed (asserted by the fd-stability lifecycle tests).
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "net/frame.h"
#include "net/relay_util.h"
#include "net/transport.h"

namespace pem::net {

// --- control plane ----------------------------------------------------

// Record tags on the per-child control channel.  Commands flow parent
// -> child, reports child -> parent.
//
// Report keying: the channel is FIFO, so a child's kCtlRepWindow
// records answer its kCtlCmdRun commands strictly in order — but the
// parent may pipeline several Run commands per child (batched
// multi-window scheduling), and different children progress through
// the batch at different rates.  Each report therefore ECHOES the
// window id it answers (protocol::WindowReport::window); the parent
// keys collection on the echo and rejects any mismatch as a stale
// report, instead of trusting queue position alone.
inline constexpr uint32_t kCtlCmdRun = 1;       // payload: command-defined
inline constexpr uint32_t kCtlCmdShutdown = 2;  // child replies Done + exits
inline constexpr uint32_t kCtlRepWindow = 3;    // payload: a window report
inline constexpr uint32_t kCtlRepDone = 4;      // clean goodbye
inline constexpr uint32_t kCtlRepError = 5;     // payload: utf-8 what()

struct ControlRecord {
  uint32_t tag = 0;
  std::vector<uint8_t> payload;
};

// Thrown by ControlChannel::Read when the watchdog deadline expires
// with the peer still connected — a distinct type from the hangup /
// recv-failure TransportError so the supervisor can tell "alive but
// slow" (surface the timeout) from "gone" (report a disconnect).  An
// externally launched agent on a distant host makes the difference
// matter: a slow window report is not a dead peer.
class ControlTimeout : public TransportError {
 public:
  using TransportError::TransportError;
};

// Length-prefixed records ([u32 tag | u32 len | bytes]) over one end of
// a stream socket (a socketpair end or a connected TCP socket).  Owns
// the descriptor.  Reads are deadline-bounded and surface hangup /
// timeout as structured TransportError (never a silent nullopt) — this
// is how a crashed child becomes a report instead of a 6-hour CI hang.
class ControlChannel {
 public:
  // `peer` names the agent on the other end (for error messages).
  ControlChannel(int fd, AgentId peer);
  ~ControlChannel();
  ControlChannel(const ControlChannel&) = delete;
  ControlChannel& operator=(const ControlChannel&) = delete;

  void Write(uint32_t tag, std::span<const uint8_t> payload = {});
  ControlRecord Read(int timeout_ms);

  int fd() const { return fd_; }

 private:
  int fd_ = -1;
  AgentId peer_ = -1;
  // Receive accumulator: one recv may coalesce several records (e.g. a
  // child's Done immediately followed by an Error); bytes beyond the
  // record being returned stay buffered for the next Read.
  std::vector<uint8_t> rxbuf_;
};

// --- parent side ------------------------------------------------------

// Supervises one out-of-process child per agent: routes their frames
// through the relay thread, keeps the literal-wire-bytes ledger, and
// runs the watchdog-bounded control plane.  Not a Transport: the parent
// is an operator, not an agent — it cannot Send or Receive, only
// command children, collect their reports, and read the wire ledger.
//
// Concrete backends (ProcessTransport, TcpTransport, ShmTransport)
// differ only in how each child comes to exist and how its descriptors
// reach the parent; their constructors fill the child table via
// AdoptChild and then StartRouter.
class AgentSupervisor {
 public:
  // Runs a child's agent.  Return value becomes the child's exit code.
  // Everything the callable captures is fork-copied, so capturing the
  // parent's protocol state by reference is the intended way to hand
  // each child its private snapshot.  On kCtlCmdShutdown the child must
  // Write(kCtlRepDone) and return 0 (AgentDriver::Serve implements this
  // contract).
  using ChildMain =
      std::function<int(AgentId self, Transport& wire, ControlChannel& ctl)>;

  struct Options {
    // Upper bound on any single control-plane wait (a child record, an
    // exit).  A deadlocked or runaway child fails the run with a
    // structured error after this long, instead of hanging until an
    // outer ctest TIMEOUT / CI runner kill.
    int watchdog_ms = 120'000;
    // Reusable router drain buffer: one recv of this size replaces the
    // old per-iteration 4-16 KiB stack nibbles, so a burst of frames
    // crosses the router in a handful of syscalls.
    size_t router_scratch_bytes = 64 * 1024;
  };

  // SIGKILLs and reaps any child still running; closes every fd.
  virtual ~AgentSupervisor();
  AgentSupervisor(const AgentSupervisor&) = delete;
  AgentSupervisor& operator=(const AgentSupervisor&) = delete;

  int num_agents() const { return static_cast<int>(children_.size()); }

  // Control plane (main thread only).
  void Command(AgentId agent, uint32_t tag,
               std::span<const uint8_t> payload = {});
  void CommandAll(uint32_t tag, std::span<const uint8_t> payload = {});
  // Next record from `agent`, watchdog-bounded.  A kCtlRepError record,
  // a hangup, or a timeout is thrown as TransportError; if the child
  // already died, the message names its exit status or fatal signal.
  ControlRecord ReadRecord(AgentId agent);
  // Clean teardown: Shutdown command to every child, Done record from
  // each, then reap; throws on a nonzero exit.  Idempotent.
  void Shutdown();

  // Wire ledger: literal bytes the router moved between processes.
  TrafficStats stats(AgentId agent) const;
  uint64_t total_bytes() const;
  uint64_t total_messages() const;
  double AverageBytesPerAgent() const;
  void ResetStats();
  // Observer runs on the router thread in arrival order (concurrent
  // senders interleave nondeterministically; per-sender order is FIFO).
  void SetObserver(Transport::Observer observer);
  std::optional<TransportFault> fault() const;

  // Blocks until every frame the children have sent is reflected in
  // the ledger.  The relay-router backends account a frame BEFORE
  // delivering it, so they are always in sync and this is a no-op; the
  // shm backend's parent accounts from a tap cursor that trails the
  // peer-to-peer delivery, so CollectWindowReports calls this before
  // cross-checking the ledger against the children's reports.
  virtual void SyncLedger() {}

  // Whether `agent`'s child has been reaped (test introspection; true
  // for externally launched agents, which have no local pid).
  bool reaped(AgentId agent) const;

  // Test hook: severs `agent`'s wire from the parent side as a broken
  // network/crashed peer would (shutdown(2), so no fd-reuse race with
  // the router thread).  The child's next blocked Receive() throws a
  // structured TransportError; the router latches the fault and keeps
  // routing the survivors.  Never called outside tests.
  void SeverWireForTest(AgentId agent);

 protected:
  AgentSupervisor(int num_agents, Options opts);

  // Hands `agent`'s child to the supervisor: a local pid (or -1 for an
  // externally launched agent), the parent end of its wire, and the
  // parent end of its control channel.  Constructor phase only, before
  // StartRouter.
  void AdoptChild(AgentId agent, pid_t pid, int wire_fd, int ctl_fd);
  // All children adopted: open the wake pipe, flip the wire fds
  // nonblocking, and start the relay router.  Call once, last.  A
  // backend whose frames never cross the parent (ShmTransport) skips
  // this and runs its own accounting thread instead.
  void StartRouter();

  // Ledger + observer entry for one delivered copy, under the
  // supervisor lock — the single accounting path shared by the relay
  // router and the shm snooper, so "every backend charges FramedSize
  // per copy" stays true by construction.
  void AccountDeliveredCopy(const Message& copy);

  // Latches the first fault (later ones are dropped: the first cause is
  // the report, cascading symptoms are noise).  Exposed to backends so
  // a derived accounting thread (the shm snooper) can surface forged or
  // replayed ring records as the same structured fault the relay router
  // raises for severed wires.
  void RecordFault(AgentId agent, std::string detail);

  // Teardown halves, exposed so a derived destructor can stop the
  // children / router BEFORE its own members (e.g. a shared mapping an
  // accounting thread still reads) are destroyed.  Both idempotent.
  void KillAndReapAll();  // SIGKILL stragglers; never throws
  void StopRouter();

 private:
  struct Child {
    pid_t pid = -1;    // -1: externally launched, nothing to reap
    int wire_fd = -1;  // parent end; nonblocking, router thread reads
    std::unique_ptr<ControlChannel> ctl;
    bool done = false;      // clean Done record received (mu_)
    bool wire_eof = false;  // router saw the wire hang up (mu_)
    bool reaped = false;    // waitpid collected (or nothing to collect)
    int wait_status = 0;
  };

  void RouterLoop();
  void RouteFrame(const Message& frame);  // router thread only
  void FlushPending(AgentId dest);        // router thread only
  void WakeRouter();
  // waitpid with deadline; marks reaped.  Returns false on timeout.
  bool ReapChild(AgentId agent, int timeout_ms);
  [[noreturn]] void ThrowChildFailure(AgentId agent, const std::string& why);

  std::vector<Child> children_;
  Options opts_;
  WakePipe wake_;
  bool finished_ = false;  // Shutdown() completed cleanly
  bool router_started_ = false;
  bool router_stopped_ = false;

  mutable std::mutex mu_;
  TrafficLedger ledger_;
  Transport::Observer observer_;
  std::optional<TransportFault> fault_;
  bool shutdown_ = false;  // router exit flag

  // Router-thread-only state.
  std::vector<FrameDecoder> rx_;
  std::vector<PendingBuf> pending_;
  std::vector<bool> closed_;  // wire hangup seen

  std::thread router_;
};

}  // namespace pem::net
