// Shared scaffolding for the relay-thread routers.
//
// SocketTransport (in-process socketpairs), ProcessTransport
// (fork-per-agent) and TcpTransport (TCP rendezvous) all run a single
// router thread that must never block on one slow peer: routed frames
// queue in a per-destination PendingBuf and are flushed with
// nonblocking writes, and senders unpark a router sleeping in poll()
// through a wake socketpair.  This header is the one copy of that
// machinery — plus the descriptor helpers (nonblocking toggles, fully
// retried writes, wait-status pretty printing) every backend needs —
// because the PR-3 deadlock fix (wake-before-blocking-write) taught us
// that hand-synced copies of relay plumbing is how such bugs survive.
#pragma once

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "net/message.h"
#include "net/transport.h"
#include "util/error.h"

namespace pem::net {

// Little-endian u32 load/store for the small fixed-layout records the
// out-of-process backends exchange beside the frame codec (control
// records, TCP hellos).  One copy, used by every transport.
inline uint32_t LoadU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

inline void StoreU32(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
  p[2] = static_cast<uint8_t>(v >> 16);
  p[3] = static_cast<uint8_t>(v >> 24);
}

inline void SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  PEM_CHECK(flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
            "relay: fcntl(O_NONBLOCK) failed");
}

inline void MakeSocketPair(int* a, int* b) {
  int fds[2];
  // SOCK_CLOEXEC: a forked child inherits exactly the ends its launcher
  // hands over (fork keeps fds regardless); anything that ever exec()s
  // — a future ssh/k8s agent launcher — must not leak wire fds into
  // the new program.
  PEM_CHECK(socketpair(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0, fds) == 0,
            "relay: socketpair failed");
  *a = fds[0];
  *b = fds[1];
}

inline void CloseIfOpen(int fd) {
  if (fd >= 0) close(fd);
}

// Scope-bound descriptor (the routers' epoll fd): closed on every exit
// path of a thread body without threading close() through each return.
struct FdGuard {
  explicit FdGuard(int f) : fd(f) {}
  ~FdGuard() { CloseIfOpen(fd); }
  FdGuard(const FdGuard&) = delete;
  FdGuard& operator=(const FdGuard&) = delete;
  int fd = -1;
};

// Blocking FULL write: a short send() — routine on TCP, where the
// kernel takes whatever fits in SO_SNDBUF — is retried until every
// byte is queued, and a dead peer surfaces as a structured error
// (MSG_NOSIGNAL keeps EPIPE an errno, not a SIGPIPE).  `agent` and
// `what` only flavor the error message.
inline void SendAllOrThrow(int fd, const uint8_t* data, size_t len,
                           AgentId agent, const char* what) {
  while (len > 0) {
    const ssize_t n = send(fd, data, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw TransportError(TransportFault{
          agent, ErrorCode::kProtocolViolation,
          std::string(what) + ": write failed (" + std::strerror(errno) +
              ")"});
    }
    data += n;
    len -= static_cast<size_t>(n);
  }
}

inline std::string DescribeWaitStatus(int status) {
  if (WIFEXITED(status)) {
    return "exited with status " + std::to_string(WEXITSTATUS(status));
  }
  if (WIFSIGNALED(status)) {
    return "killed by signal " + std::to_string(WTERMSIG(status));
  }
  return "ended with raw wait status " + std::to_string(status);
}

// Bytes routed to a destination but not yet flushed into its (full)
// socket.  Router-thread-only.
struct PendingBuf {
  std::vector<uint8_t> bytes;
  size_t off = 0;

  bool empty() const { return off == bytes.size(); }
  void Clear() {
    bytes.clear();
    off = 0;
  }
};

enum class FlushResult {
  kDrained,     // everything written; buffer cleared
  kWouldBlock,  // socket full; try again on POLLOUT
  kPeerClosed,  // EPIPE/hard error; buffer cleared, caller latches fault
};

// Nonblocking flush of `p` into `fd` (MSG_NOSIGNAL keeps a dead peer
// an errno, not a SIGPIPE).
inline FlushResult FlushPendingBuf(int fd, PendingBuf& p) {
  while (!p.empty()) {
    const ssize_t n = send(fd, p.bytes.data() + p.off, p.bytes.size() - p.off,
                           MSG_DONTWAIT | MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return FlushResult::kWouldBlock;
      if (errno == EINTR) continue;
      p.Clear();
      return FlushResult::kPeerClosed;
    }
    p.off += static_cast<size_t>(n);
  }
  p.Clear();
  return FlushResult::kDrained;
}

// The wakeup channel: anyone may Wake() (nonblocking, coalescing), the
// router polls recv_fd and Drain()s.
struct WakePipe {
  int send_fd = -1;
  int recv_fd = -1;

  void Open() {
    int fds[2];
    PEM_CHECK(socketpair(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0, fds) == 0,
              "wake pipe: socketpair failed");
    send_fd = fds[0];
    recv_fd = fds[1];
    for (const int fd : {send_fd, recv_fd}) {
      const int flags = fcntl(fd, F_GETFL, 0);
      PEM_CHECK(flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
                "wake pipe: fcntl(O_NONBLOCK) failed");
    }
  }

  void Close() {
    if (send_fd >= 0) close(send_fd);
    if (recv_fd >= 0) close(recv_fd);
    send_fd = recv_fd = -1;
  }

  void Wake() const {
    const uint8_t b = 1;
    // A full pipe already guarantees a pending wake.
    (void)send(send_fd, &b, 1, MSG_DONTWAIT | MSG_NOSIGNAL);
  }

  void Drain() const {
    uint8_t buf[64];
    while (recv(recv_fd, buf, sizeof buf, MSG_DONTWAIT) > 0) {
    }
  }
};

}  // namespace pem::net
