// Shared scaffolding for the relay-thread routers.
//
// SocketTransport (in-process socketpairs) and ProcessTransport
// (fork-per-agent) both run a single router thread that must never
// block on one slow peer: routed frames queue in a per-destination
// PendingBuf and are flushed with nonblocking writes, and senders
// unpark a router sleeping in poll() through a wake socketpair.  This
// header is the one copy of that machinery — the PR-3 deadlock fix
// (wake-before-blocking-write) taught us that two hand-synced copies
// of relay plumbing is how such bugs survive.
#pragma once

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <vector>

#include "util/error.h"

namespace pem::net {

// Bytes routed to a destination but not yet flushed into its (full)
// socket.  Router-thread-only.
struct PendingBuf {
  std::vector<uint8_t> bytes;
  size_t off = 0;

  bool empty() const { return off == bytes.size(); }
  void Clear() {
    bytes.clear();
    off = 0;
  }
};

enum class FlushResult {
  kDrained,     // everything written; buffer cleared
  kWouldBlock,  // socket full; try again on POLLOUT
  kPeerClosed,  // EPIPE/hard error; buffer cleared, caller latches fault
};

// Nonblocking flush of `p` into `fd` (MSG_NOSIGNAL keeps a dead peer
// an errno, not a SIGPIPE).
inline FlushResult FlushPendingBuf(int fd, PendingBuf& p) {
  while (!p.empty()) {
    const ssize_t n = send(fd, p.bytes.data() + p.off, p.bytes.size() - p.off,
                           MSG_DONTWAIT | MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return FlushResult::kWouldBlock;
      if (errno == EINTR) continue;
      p.Clear();
      return FlushResult::kPeerClosed;
    }
    p.off += static_cast<size_t>(n);
  }
  p.Clear();
  return FlushResult::kDrained;
}

// The wakeup channel: anyone may Wake() (nonblocking, coalescing), the
// router polls recv_fd and Drain()s.
struct WakePipe {
  int send_fd = -1;
  int recv_fd = -1;

  void Open() {
    int fds[2];
    PEM_CHECK(socketpair(AF_UNIX, SOCK_STREAM, 0, fds) == 0,
              "wake pipe: socketpair failed");
    send_fd = fds[0];
    recv_fd = fds[1];
    for (const int fd : {send_fd, recv_fd}) {
      const int flags = fcntl(fd, F_GETFL, 0);
      PEM_CHECK(flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
                "wake pipe: fcntl(O_NONBLOCK) failed");
    }
  }

  void Close() {
    if (send_fd >= 0) close(send_fd);
    if (recv_fd >= 0) close(recv_fd);
    send_fd = recv_fd = -1;
  }

  void Wake() const {
    const uint8_t b = 1;
    // A full pipe already guarantees a pending wake.
    (void)send(send_fd, &b, 1, MSG_DONTWAIT | MSG_NOSIGNAL);
  }

  void Drain() const {
    uint8_t buf[64];
    while (recv(recv_fd, buf, sizeof buf, MSG_DONTWAIT) > 0) {
    }
  }
};

}  // namespace pem::net
