// Plaintext market clearing — the functional specification of one PEM
// trading window (paper §III).
//
// The cryptographic protocols in src/protocol compute exactly this
// outcome without revealing the inputs; the integration tests assert
// the two paths agree.  Net energies are quantized to the market's
// fixed-point scale first so both paths see identical numbers.
#pragma once

#include <span>
#include <vector>

#include "grid/types.h"
#include "market/params.h"
#include "market/stackelberg.h"

namespace pem::market {

struct AgentWindowInput {
  grid::AgentParams params;
  grid::WindowState state;
};

enum class MarketType : uint8_t {
  kGeneral,   // E_s < E_b: Stackelberg price (Protocol 3)
  kExtreme,   // E_s >= E_b: price pinned at the floor pl
  kNoMarket,  // a coalition is empty: everyone trades with the grid
};

struct MarketOutcome {
  MarketType type = MarketType::kNoMarket;
  double price = 0.0;           // p* (general), pl (extreme), ps (no market)
  double interior_price = 0.0;  // p_hat before clamping (0 if not computed)
  double supply_total = 0.0;    // E_s
  double demand_total = 0.0;    // E_b

  std::vector<grid::Role> roles;
  std::vector<double> net_energy;       // quantized sn_i
  // Per-agent market quantities (zero when not applicable):
  std::vector<double> market_purchase;  // x_j, buyers
  std::vector<double> market_sale;      // kWh sold into the market, sellers
  std::vector<double> money_paid;       // buyers: total bill (market + grid)
  std::vector<double> money_received;   // sellers: market + grid revenue

  double buyer_total_cost = 0.0;  // Γ (Eq. 7)
  double grid_import_kwh = 0.0;   // drawn from the main grid
  double grid_export_kwh = 0.0;   // fed back into the main grid

  double GridInteraction() const { return grid_import_kwh + grid_export_kwh; }

  int CountRole(grid::Role r) const;
};

// Clears one window.  `inputs[i]` is agent i; outputs are indexed the
// same way.
MarketOutcome ClearMarket(std::span<const AgentWindowInput> inputs,
                          const MarketParams& params);

// Pairwise allocation e_ij implied by the outcome (paper §III-D):
// general market: e_ij = sn_i * |sn_j| / E_b
// extreme market: e_ij = |sn_j| * sn_i / E_s
// Zero if either agent is not in the respective coalition.
double PairwiseAllocation(const MarketOutcome& outcome, int seller, int buyer);

// Quantizes a net energy to the market fixed-point grid (the protocols
// operate on these integers).
double QuantizeNetEnergy(double net_kwh);

}  // namespace pem::market
