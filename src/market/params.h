// Market-wide price parameters (Eq. 3): pb_g < pl <= ph < ps_g.
//
// Prices are in dollars/kWh internally; the paper quotes cents/kWh
// (ps=120, pb=80, range [90,110]) and the benches print cents.
#pragma once

#include "util/error.h"

namespace pem::market {

struct MarketParams {
  double retail_price = 1.20;    // ps_g: buy from the main grid
  double buyback_price = 0.80;   // pb_g: sell to the main grid
  double price_floor = 0.90;     // pl
  double price_ceiling = 1.10;   // ph

  void Validate() const {
    PEM_CHECK(buyback_price > 0.0, "pb must be positive");
    PEM_CHECK(buyback_price < price_floor, "need pb < pl (Eq. 3)");
    PEM_CHECK(price_floor <= price_ceiling, "need pl <= ph (Eq. 3)");
    PEM_CHECK(price_ceiling < retail_price, "need ph < ps (Eq. 3)");
  }
};

}  // namespace pem::market
