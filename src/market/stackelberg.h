// Stackelberg pricing (paper §III-B).
//
// The buyer coalition leads with a price; each seller responds with the
// optimal load profile (Eq. 15).  The interior optimum (Eq. 13) is
//
//   p_hat = sqrt( ps * Σ k_i  /  Σ (g_i + 1 + eps_i*b_i - b_i) )
//
// clamped to the market range [pl, ph] (Eq. 14).
#pragma once

#include <span>
#include <vector>

#include "market/params.h"

namespace pem::market {

// One seller's private inputs to the pricing game.
struct SellerGameInput {
  double k = 1.0;        // preference k_i
  double generation = 0; // g_i
  double epsilon = 0.9;  // eps_i
  double battery = 0;    // b_i
};

struct PriceSolution {
  double interior_price = 0.0;  // p_hat (Eq. 13), before clamping
  double price = 0.0;           // p*    (Eq. 14)
  bool clamped_low = false;
  bool clamped_high = false;
};

// Aggregates the two seller sums of Eq. 13.  Exposed separately because
// Private Pricing (Protocol 3) computes exactly these two numbers under
// encryption.
struct PricingSums {
  double sum_k = 0.0;         // Σ k_i
  double sum_supply = 0.0;    // Σ (g_i + 1 + eps_i*b_i - b_i)
};
PricingSums AggregatePricingSums(std::span<const SellerGameInput> sellers);

// Derives p* from the aggregated sums.
PriceSolution SolvePriceFromSums(const PricingSums& sums,
                                 const MarketParams& params);

// Convenience wrapper over the two steps above.
PriceSolution SolveStackelbergPrice(std::span<const SellerGameInput> sellers,
                                    const MarketParams& params);

// Total buyer-coalition cost at price p (Eq. 7):
//   Γ(p) = p * E_s(p) + ps * (E_b - E_s(p))
// with E_s(p) = Σ (g_i - l_i*(p) - b_i) the supply under the sellers'
// best response.  Used by the equilibrium property tests to verify
// convexity and that p* minimizes Γ.
double BuyerCoalitionCost(std::span<const SellerGameInput> sellers,
                          double price, double market_demand,
                          const MarketParams& params);

}  // namespace pem::market
