// Incentive measurement functions (paper §III-A).
#pragma once

namespace pem::market {

// Seller utility (Eq. 4):
//   U_i = k_i * log(1 + l_i + eps_i * b_i) + p * (g_i - l_i - b_i)
double SellerUtility(double k, double load, double epsilon, double battery,
                     double price, double generation);

// Buyer cost (Eq. 5):
//   C_j = p * x_j + ps * (l_j + b_j - g_j - x_j)
// where x_j is the amount bought from the trading market.
double BuyerCost(double price, double market_purchase, double retail_price,
                 double load, double battery, double generation);

// Seller's best-response load profile at price p:
//   l* = k / p - 1 - eps * b
// Clamped at 0 (a load cannot be negative; the clamp only binds for
// tiny k or huge p, outside the paper's operating range).
//
// Erratum note: the paper prints l* = k*eps/p - 1 - eps*b (Eq. 15),
// but that contradicts Eq. 4 (whose derivative in l is k/(1+l+eps*b),
// with no eps factor) and Eq. 13 (whose price is derived from Σ k_i,
// not Σ k_i*eps_i).  Dropping the spurious eps makes Eqs. 4, 13 and 15
// mutually consistent; see DESIGN.md §4.
double OptimalSellerLoad(double k, double epsilon, double price,
                         double battery);

// Interior (unclamped) best response.  Lemma 1's convexity and
// uniqueness statements assume the interior optimum; the property
// tests use this variant.
double OptimalSellerLoadInterior(double k, double epsilon, double price,
                                 double battery);

}  // namespace pem::market
