// The paper's benchmark: traditional trading without PEM (§VII-A).
// Every seller sells surplus back to the grid at pb_g; every buyer
// covers its deficit from the grid at ps_g.
#pragma once

#include <span>

#include "market/clearing.h"
#include "market/params.h"

namespace pem::market {

struct BaselineOutcome {
  double buyer_total_cost = 0.0;  // Σ ps * deficit_j
  double grid_import_kwh = 0.0;   // = E_b
  double grid_export_kwh = 0.0;   // = E_s

  double GridInteraction() const { return grid_import_kwh + grid_export_kwh; }
};

BaselineOutcome ComputeBaseline(std::span<const AgentWindowInput> inputs,
                                const MarketParams& params);

// Seller utility under a given trading price, with the seller playing
// its best-response load (Eq. 15 substituted into Eq. 4).  Used for the
// Fig. 6(b) with-PEM (price = p*) vs. without-PEM (price = pb_g)
// comparison.
double SellerUtilityAtPrice(const grid::AgentParams& params,
                            const grid::WindowState& state, double price);

}  // namespace pem::market
