#include "market/incentives.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace pem::market {

double SellerUtility(double k, double load, double epsilon, double battery,
                     double price, double generation) {
  PEM_CHECK(k > 0.0, "k must be positive (Eq. 4)");
  const double comfort = 1.0 + load + epsilon * battery;
  PEM_CHECK(comfort > 0.0, "utility log argument must be positive");
  return k * std::log(comfort) + price * (generation - load - battery);
}

double BuyerCost(double price, double market_purchase, double retail_price,
                 double load, double battery, double generation) {
  const double deficit = load + battery - generation;
  PEM_CHECK(market_purchase >= -1e-12 && market_purchase <= deficit + 1e-9,
            "market purchase exceeds deficit (0 < x_j <= l+b-g)");
  return price * market_purchase +
         retail_price * (deficit - market_purchase);
}

double OptimalSellerLoadInterior(double k, double epsilon, double price,
                                 double battery) {
  PEM_CHECK(k > 0.0 && price > 0.0, "k, p must be positive");
  PEM_CHECK(epsilon > 0.0 && epsilon < 1.0, "epsilon in (0,1)");
  return k / price - 1.0 - epsilon * battery;
}

double OptimalSellerLoad(double k, double epsilon, double price,
                         double battery) {
  return std::max(0.0, OptimalSellerLoadInterior(k, epsilon, price, battery));
}

}  // namespace pem::market
