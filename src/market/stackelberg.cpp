#include "market/stackelberg.h"

#include <cmath>

#include "market/incentives.h"
#include "util/error.h"

namespace pem::market {

PricingSums AggregatePricingSums(std::span<const SellerGameInput> sellers) {
  PricingSums sums;
  for (const SellerGameInput& s : sellers) {
    sums.sum_k += s.k;
    sums.sum_supply += s.generation + 1.0 + s.epsilon * s.battery - s.battery;
  }
  return sums;
}

PriceSolution SolvePriceFromSums(const PricingSums& sums,
                                 const MarketParams& params) {
  params.Validate();
  PEM_CHECK(sums.sum_k > 0.0, "Σk must be positive (needs >= 1 seller)");
  PEM_CHECK(sums.sum_supply > 0.0, "Σ(g+1+εb-b) must be positive");
  PriceSolution sol;
  sol.interior_price =
      std::sqrt(params.retail_price * sums.sum_k / sums.sum_supply);
  sol.price = sol.interior_price;
  if (sol.price < params.price_floor) {
    sol.price = params.price_floor;
    sol.clamped_low = true;
  } else if (sol.price > params.price_ceiling) {
    sol.price = params.price_ceiling;
    sol.clamped_high = true;
  }
  return sol;
}

PriceSolution SolveStackelbergPrice(std::span<const SellerGameInput> sellers,
                                    const MarketParams& params) {
  return SolvePriceFromSums(AggregatePricingSums(sellers), params);
}

double BuyerCoalitionCost(std::span<const SellerGameInput> sellers,
                          double price, double market_demand,
                          const MarketParams& params) {
  PEM_CHECK(price > 0.0, "price must be positive");
  double supply = 0.0;
  for (const SellerGameInput& s : sellers) {
    // Interior best response: Lemma 1's convexity statement is about
    // the interior game (no clamping at l = 0).
    const double l =
        OptimalSellerLoadInterior(s.k, s.epsilon, price, s.battery);
    supply += s.generation - l - s.battery;
  }
  return price * supply + params.retail_price * (market_demand - supply);
}

}  // namespace pem::market
