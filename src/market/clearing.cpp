#include "market/clearing.h"

#include <cmath>

#include "util/error.h"
#include "util/fixed_point.h"

namespace pem::market {

int MarketOutcome::CountRole(grid::Role r) const {
  int n = 0;
  for (grid::Role role : roles) {
    if (role == r) ++n;
  }
  return n;
}

double QuantizeNetEnergy(double net_kwh) {
  return FixedPoint::FromDouble(net_kwh).ToDouble();
}

MarketOutcome ClearMarket(std::span<const AgentWindowInput> inputs,
                          const MarketParams& params) {
  params.Validate();
  const size_t n = inputs.size();
  MarketOutcome out;
  out.roles.resize(n, grid::Role::kOffMarket);
  out.net_energy.resize(n, 0.0);
  out.market_purchase.resize(n, 0.0);
  out.market_sale.resize(n, 0.0);
  out.money_paid.resize(n, 0.0);
  out.money_received.resize(n, 0.0);

  // --- Coalition formation (Protocol 1, line 4) -----------------------
  std::vector<SellerGameInput> seller_inputs;
  for (size_t i = 0; i < n; ++i) {
    const double sn = QuantizeNetEnergy(inputs[i].state.NetEnergy());
    out.net_energy[i] = sn;
    out.roles[i] = grid::ClassifyRole(sn, 0.0);
    if (out.roles[i] == grid::Role::kSeller) {
      out.supply_total += sn;
      seller_inputs.push_back(SellerGameInput{
          inputs[i].params.preference_k, inputs[i].state.generation_kwh,
          inputs[i].params.battery_epsilon, inputs[i].state.battery_kwh});
    } else if (out.roles[i] == grid::Role::kBuyer) {
      out.demand_total += -sn;
    }
  }

  const bool have_sellers = out.supply_total > 0.0;
  const bool have_buyers = out.demand_total > 0.0;

  // --- Market evaluation (Protocol 2) ----------------------------------
  if (!have_sellers || !have_buyers) {
    out.type = MarketType::kNoMarket;
    out.price = params.retail_price;
  } else if (out.supply_total < out.demand_total) {
    out.type = MarketType::kGeneral;
    const PriceSolution sol = SolveStackelbergPrice(seller_inputs, params);
    out.price = sol.price;
    out.interior_price = sol.interior_price;
  } else {
    out.type = MarketType::kExtreme;
    out.price = params.price_floor;
  }

  // --- Distribution and settlement (Protocol 4 / §III-D) ---------------
  for (size_t i = 0; i < n; ++i) {
    const double sn = out.net_energy[i];
    switch (out.roles[i]) {
      case grid::Role::kSeller: {
        double sold = 0.0;
        if (out.type == MarketType::kGeneral) {
          sold = sn;  // all supply absorbed by the buyer coalition
        } else if (out.type == MarketType::kExtreme) {
          sold = sn * (out.demand_total / out.supply_total);
        }
        const double to_grid = sn - sold;
        out.market_sale[i] = sold;
        out.money_received[i] =
            out.price * sold + params.buyback_price * to_grid;
        out.grid_export_kwh += to_grid;
        break;
      }
      case grid::Role::kBuyer: {
        const double deficit = -sn;
        double bought = 0.0;
        if (out.type == MarketType::kGeneral) {
          bought = deficit * (out.supply_total / out.demand_total);
        } else if (out.type == MarketType::kExtreme) {
          bought = deficit;  // market covers all demand
        }
        const double from_grid = deficit - bought;
        out.market_purchase[i] = bought;
        out.money_paid[i] =
            out.price * bought + params.retail_price * from_grid;
        out.buyer_total_cost += out.money_paid[i];
        out.grid_import_kwh += from_grid;
        break;
      }
      case grid::Role::kOffMarket:
        break;
    }
  }
  return out;
}

double PairwiseAllocation(const MarketOutcome& outcome, int seller,
                          int buyer) {
  PEM_CHECK(seller >= 0 && static_cast<size_t>(seller) < outcome.roles.size(),
            "seller index");
  PEM_CHECK(buyer >= 0 && static_cast<size_t>(buyer) < outcome.roles.size(),
            "buyer index");
  if (outcome.roles[static_cast<size_t>(seller)] != grid::Role::kSeller ||
      outcome.roles[static_cast<size_t>(buyer)] != grid::Role::kBuyer) {
    return 0.0;
  }
  const double sn_i = outcome.net_energy[static_cast<size_t>(seller)];
  const double dn_j = -outcome.net_energy[static_cast<size_t>(buyer)];
  switch (outcome.type) {
    case MarketType::kGeneral:
      return sn_i * dn_j / outcome.demand_total;
    case MarketType::kExtreme:
      return dn_j * sn_i / outcome.supply_total;
    case MarketType::kNoMarket:
      return 0.0;
  }
  return 0.0;
}

}  // namespace pem::market
