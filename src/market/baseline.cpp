#include "market/baseline.h"

#include "market/incentives.h"

namespace pem::market {

BaselineOutcome ComputeBaseline(std::span<const AgentWindowInput> inputs,
                                const MarketParams& params) {
  params.Validate();
  BaselineOutcome out;
  for (const AgentWindowInput& in : inputs) {
    const double sn = QuantizeNetEnergy(in.state.NetEnergy());
    if (sn > 0.0) {
      out.grid_export_kwh += sn;
    } else if (sn < 0.0) {
      out.grid_import_kwh += -sn;
      out.buyer_total_cost += params.retail_price * -sn;
    }
  }
  return out;
}

double SellerUtilityAtPrice(const grid::AgentParams& params,
                            const grid::WindowState& state, double price) {
  const double load = OptimalSellerLoad(params.preference_k,
                                        params.battery_epsilon, price,
                                        state.battery_kwh);
  return SellerUtility(params.preference_k, load, params.battery_epsilon,
                       state.battery_kwh, price, state.generation_kwh);
}

}  // namespace pem::market
