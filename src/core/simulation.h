// Day-long market simulation driver.
//
// Feeds a CommunityTrace through the market window by window, with a
// choice of engine:
//   * kPlaintext — the clearing oracle (fast; used for the Fig. 4/6
//     trading-performance figures, provably equal to the crypto path by
//     the integration tests);
//   * kCrypto    — the full PEM protocol stack over the message bus
//     (used for the Fig. 5 runtime and Table I bandwidth figures).
//
// Battery state evolves every window; with window_stride > 1 the
// market itself runs on a sampled subset (the protocol benches use
// this to keep full-day sweeps tractable — see EXPERIMENTS.md).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "grid/trace.h"
#include "market/baseline.h"
#include "market/clearing.h"
#include "net/transport.h"
#include "protocol/pem_protocol.h"

namespace pem::core {

enum class Engine { kPlaintext, kCrypto };

// Dynamic membership: one roster change, applied when the simulation
// reaches `window` (before that window's market runs).  A leave
// deactivates the party — it classifies kOffMarket, coalitions and
// rings re-form deterministically around the survivors, and its key
// directory binding is retired; a join (re-)activates it.  Every
// window with at least one event advances the key directory epoch, so
// a rejoining agent may announce a fresh key without tripping the
// equivocation check.  Inactive parties keep consuming their
// BeginWindow randomness draws, so churn never shifts another agent's
// stream (the roster-invariance the adversarial wall asserts).
struct ChurnEvent {
  int window = 0;
  net::AgentId agent = -1;
  bool join = false;  // false: leave
};

struct SimulationConfig {
  Engine engine = Engine::kPlaintext;
  protocol::PemConfig pem;
  // Crypto engine execution model: which Transport backend carries the
  // frames and how many workers the protocol compute phases use.  The
  // default is the serial engine; ExecutionPolicy::Parallel(n) selects
  // the phase-parallel engine on the mutex-guarded bus,
  // ExecutionPolicy::Socket() routes frames over per-agent Unix-domain
  // socketpairs like the paper's per-container deployment, and
  // ExecutionPolicy::Process() forks one OS process per agent — each
  // child runs its own agent's side of every phase over its inherited
  // socketpair end, the parent routes frames and collects results, and
  // bus_bytes are literal cross-process socket bytes.  The wire
  // transcript and market outcomes are policy-invariant (asserted by
  // test_transcript_parity's serial/concurrent/socket/process matrix).
  // The between-window randomness-pool refill
  // (pem.precompute_encryption) fans out across the same worker count —
  // the paper's "executed in parallel during idle time" — without
  // affecting the factor order.
  // The aggregation-plan shape (flat ring vs k-ary hierarchy of
  // sub-rings) is part of the protocol configuration: pem.topology.
  // Both engine paths honor it — the in-process crypto loop and the
  // forked backends, whose children copy pem (and with it the plan
  // seed) at fork time.
  net::ExecutionPolicy policy;
  // DEPRECATED backend-knob aliases — the per-backend tuning moved
  // into net::TransportOptions (config.policy.transport), so one
  // ExecutionPolicy object fully specifies a backend.  These five
  // fields are kept for exactly one release: a field that was
  // explicitly ASSIGNED wins over policy.transport, even when assigned
  // its historical default (optional-backed so "set back to the
  // default" is distinguishable from "never touched" — the old
  // default-inequality precedence silently dropped e.g. tcp_port = 0
  // restoring auto-assign).  New code sets config.policy.transport.*
  // instead.  Historical defaults, applied by ResolveTransportOptions
  // only when a field was set: watchdog 120'000 ms, host "127.0.0.1",
  // port 0 (auto), verify_frames false, ring 1 MiB.
  std::optional<int> process_watchdog_ms;  // -> policy.transport.watchdog_ms
  std::optional<std::string> tcp_host;     // -> policy.transport.tcp_host
  std::optional<uint16_t> tcp_port;        // -> policy.transport.tcp_port
  std::optional<bool> tcp_verify_frames;
  // -> policy.transport.tcp_verify_frames
  std::optional<size_t> shm_ring_bytes;  // -> policy.transport.shm_ring_bytes
  // Optional tap on every delivered bus message (crypto engine only);
  // used for transcript comparison and debugging.  The callback may
  // run under the transport's lock, so it must not call back into the
  // bus — copy what you need from the Message instead.
  net::Transport::Observer bus_observer;
  // Run the market only on windows where window >= window_offset and
  // (window - window_offset) % stride == 0.  The offset lets sampled
  // runs skip the inactive early-morning windows.
  int window_stride = 1;
  int window_offset = 0;
  // Batched multi-window scheduling (protocol::WindowScheduler): up to
  // this many sampled windows are kept in flight (>= 1).  Randomness
  // and sends stay sequential per window — every window's wire
  // transcript, prices, trades, ledger bytes, and rng cursors are
  // bit-identical to the serial loop's (the serial-vs-batched parity
  // wall) — but compute phases share one persistent worker fan-out
  // in-process, and the forked backends pipeline kCtlCmdRun dispatch
  // so children overlap across windows.  1 (the default) is exactly
  // the serial loop.
  int windows_in_flight = 1;
  // Record each home's resolved WindowState (needed by the utility
  // figure); costs memory on big traces.
  bool record_states = false;
  uint64_t crypto_seed = 1;  // DeterministicRng seed for the crypto path
  // Membership churn schedule, applied in window order (crypto engine;
  // forked backends replay it inside every child so all processes
  // agree on the roster).  Agents named here must exist in the trace —
  // churn changes who participates, never the community size.
  std::vector<ChurnEvent> churn;
};

struct WindowRecord {
  int window = 0;
  market::MarketType type = market::MarketType::kNoMarket;
  double price = 0.0;  // dollars/kWh
  int num_sellers = 0;
  int num_buyers = 0;
  double supply_total = 0.0;
  double demand_total = 0.0;
  double buyer_cost_pem = 0.0;
  double buyer_cost_baseline = 0.0;
  double grid_interaction_pem = 0.0;
  double grid_interaction_baseline = 0.0;
  // Crypto engine only.  With windows_in_flight > 1 on a forked
  // backend, runtime_seconds spans the batch's dispatch to THIS
  // window's completion — overlapping windows share wall clock, and
  // total_runtime_seconds charges each batch once (its max), so the
  // total never double-counts overlap (total <= Σ per-window spans).
  double runtime_seconds = 0.0;
  uint64_t bus_bytes = 0;
  // crypto::Rng::Cursor() after the window's last protocol draw: the
  // stream position every engine, backend, and window schedule must
  // agree on bit-for-bit (0 for the plaintext engine).
  uint64_t rng_cursor = 0;
  // §VI audit outcome for this window (crypto engine with
  // pem.audit.enabled): whether it was audited, by whom, and any
  // detected cheats (the cheaters were excluded mid-window).
  protocol::AuditOutcome audit;
};

struct SimulationResult {
  std::vector<WindowRecord> windows;  // one per *executed* window
  // resolved_states[w][h]; populated when record_states is set (indexed
  // by executed-window position, aligned with `windows`).
  std::vector<std::vector<grid::WindowState>> resolved_states;

  double total_runtime_seconds = 0.0;
  uint64_t total_bus_bytes = 0;

  double AverageRuntimeSeconds() const;
  double AverageBusBytes() const;
};

SimulationResult RunSimulation(const grid::CommunityTrace& trace,
                               const SimulationConfig& config);

// The backend tuning a run will actually use: config.policy.transport,
// overridden by any deprecated SimulationConfig alias that was
// explicitly assigned (optional engaged) — including one assigned its
// historical default.  Exposed so the alias-compat tests can assert
// the folding without forking a backend; RunSimulation's process paths
// call exactly this.
net::TransportOptions ResolveTransportOptions(const SimulationConfig& config);

}  // namespace pem::core
