#include "core/simulation.h"

#include "crypto/rng.h"
#include "util/error.h"

namespace pem::core {

double SimulationResult::AverageRuntimeSeconds() const {
  if (windows.empty()) return 0.0;
  return total_runtime_seconds / static_cast<double>(windows.size());
}

double SimulationResult::AverageBusBytes() const {
  if (windows.empty()) return 0.0;
  return static_cast<double>(total_bus_bytes) /
         static_cast<double>(windows.size());
}

SimulationResult RunSimulation(const grid::CommunityTrace& trace,
                               const SimulationConfig& config) {
  PEM_CHECK(config.window_stride >= 1, "window stride must be >= 1");
  PEM_CHECK(config.window_offset >= 0, "window offset must be >= 0");
  config.pem.market.Validate();

  const int num_homes = trace.num_homes();
  SimulationResult result;

  std::vector<grid::Battery> batteries = trace.MakeBatteries();

  // Crypto-engine state persists across windows (keys are cached).
  // The transport backend is chosen by the execution policy: the
  // serial FIFO bus, or the mutex-guarded bus that tolerates sends
  // from compute-phase workers.
  crypto::DeterministicRng rng(config.crypto_seed);
  std::unique_ptr<net::Transport> bus;
  std::vector<net::Endpoint> endpoints;
  std::vector<protocol::Party> parties;
  crypto::PaillierPoolRegistry pools;
  if (config.engine == Engine::kCrypto) {
    bus = net::MakeTransport(config.policy.transport_kind, num_homes);
    if (config.bus_observer) bus->SetObserver(config.bus_observer);
    // Protocol code acts through per-agent handles only; the whole
    // transport stays here in the driver.
    endpoints = bus->endpoints();
    parties.reserve(static_cast<size_t>(num_homes));
    for (int h = 0; h < num_homes; ++h) {
      parties.emplace_back(static_cast<net::AgentId>(h),
                           trace.homes[static_cast<size_t>(h)].params);
    }
  }

  for (int w = 0; w < trace.windows_per_day; ++w) {
    // Battery dynamics advance every window regardless of sampling.
    std::vector<grid::WindowState> states(static_cast<size_t>(num_homes));
    for (int h = 0; h < num_homes; ++h) {
      states[static_cast<size_t>(h)] = trace.ResolveWindow(h, w, batteries);
    }
    if (w < config.window_offset ||
        (w - config.window_offset) % config.window_stride != 0) {
      continue;
    }

    std::vector<market::AgentWindowInput> inputs(
        static_cast<size_t>(num_homes));
    for (int h = 0; h < num_homes; ++h) {
      inputs[static_cast<size_t>(h)] = market::AgentWindowInput{
          trace.homes[static_cast<size_t>(h)].params,
          states[static_cast<size_t>(h)]};
    }
    const market::BaselineOutcome baseline =
        market::ComputeBaseline(inputs, config.pem.market);

    WindowRecord rec;
    rec.window = w;
    rec.buyer_cost_baseline = baseline.buyer_total_cost;
    rec.grid_interaction_baseline = baseline.GridInteraction();

    if (config.engine == Engine::kPlaintext) {
      const market::MarketOutcome outcome =
          market::ClearMarket(inputs, config.pem.market);
      rec.type = outcome.type;
      rec.price = outcome.price;
      rec.num_sellers = outcome.CountRole(grid::Role::kSeller);
      rec.num_buyers = outcome.CountRole(grid::Role::kBuyer);
      rec.supply_total = outcome.supply_total;
      rec.demand_total = outcome.demand_total;
      rec.buyer_cost_pem = outcome.buyer_total_cost;
      rec.grid_interaction_pem = outcome.GridInteraction();
    } else {
      for (int h = 0; h < num_homes; ++h) {
        parties[static_cast<size_t>(h)].BeginWindow(
            states[static_cast<size_t>(h)], config.pem.nonce_bound, rng);
      }
      protocol::ProtocolContext ctx{endpoints, rng, config.pem,
                                    config.pem.precompute_encryption
                                        ? &pools
                                        : nullptr,
                                    config.policy};
      const protocol::PemWindowResult out = protocol::RunPemWindow(ctx, parties);
      if (config.pem.precompute_encryption) {
        // Idle-time phase: top the pools back up between windows, so
        // the next window's encryptions are one multiplication each.
        // Deliberately outside the per-window runtime measurement.
        // The window may have elected new aggregators (and thus minted
        // new keys/pools); registering the owners first lets the
        // refill exponentiate mod p^2/q^2 instead of mod n^2.
        if (config.pem.crt_encryption) {
          for (const protocol::Party& p : parties) {
            if (p.HasKeys()) pools.AttachOwner(p.private_key());
          }
        }
        // The refill fans out across the policy's compute workers;
        // factor order (and every later transcript byte) is invariant
        // under the worker count.
        pools.RefillAll(config.pem.encryption_pool_target, rng,
                        config.policy);
      }
      rec.type = out.type;
      rec.price = out.price;
      rec.supply_total = out.supply_total;
      rec.demand_total = out.demand_total;
      for (const protocol::Party& p : parties) {
        if (p.role() == grid::Role::kSeller) ++rec.num_sellers;
        if (p.role() == grid::Role::kBuyer) ++rec.num_buyers;
      }
      rec.buyer_cost_pem = out.buyer_total_cost;
      rec.grid_interaction_pem = out.GridInteraction();
      rec.runtime_seconds = out.runtime_seconds;
      rec.bus_bytes = out.bus_bytes;
      result.total_runtime_seconds += out.runtime_seconds;
      result.total_bus_bytes += out.bus_bytes;
    }

    result.windows.push_back(rec);
    if (config.record_states) {
      result.resolved_states.push_back(std::move(states));
    }
  }
  return result;
}

}  // namespace pem::core
