#include "core/simulation.h"

#include "crypto/rng.h"
#include "net/process_transport.h"
#include "protocol/key_directory.h"
#include "net/serialize.h"
#include "net/shm_transport.h"
#include "net/tcp_transport.h"
#include "protocol/agent_driver.h"
#include "protocol/window_scheduler.h"
#include "util/error.h"
#include "util/stopwatch.h"

namespace pem::core {

double SimulationResult::AverageRuntimeSeconds() const {
  if (windows.empty()) return 0.0;
  return total_runtime_seconds / static_cast<double>(windows.size());
}

double SimulationResult::AverageBusBytes() const {
  if (windows.empty()) return 0.0;
  return static_cast<double>(total_bus_bytes) /
         static_cast<double>(windows.size());
}

namespace {

// Resolves window `w` for every home, advancing the battery dynamics.
// Shared by the main loop, the process-mode parent, and the forked
// children, so all three evolve bit-identical window state.
std::vector<grid::WindowState> ResolveCommunityWindow(
    const grid::CommunityTrace& trace, int w,
    std::vector<grid::Battery>& batteries) {
  const int num_homes = trace.num_homes();
  std::vector<grid::WindowState> states(static_cast<size_t>(num_homes));
  for (int h = 0; h < num_homes; ++h) {
    states[static_cast<size_t>(h)] = trace.ResolveWindow(h, w, batteries);
  }
  return states;
}

bool WindowSampled(const SimulationConfig& config, int w) {
  return w >= config.window_offset &&
         (w - config.window_offset) % config.window_stride == 0;
}

// Applies the roster changes scheduled for window `w`.  Runs for EVERY
// window (sampled or not, and inside each forked child's catch-up
// loop), so the roster and directory epoch evolve identically in the
// parent and in all n independent replays.
void ApplyChurn(const SimulationConfig& config, int w,
                std::span<protocol::Party> parties,
                protocol::KeyDirectory& directory) {
  bool epoch_advanced = false;
  for (const ChurnEvent& e : config.churn) {
    if (e.window != w) continue;
    if (!epoch_advanced) {
      directory.AdvanceEpoch();
      epoch_advanced = true;
    }
    for (protocol::Party& p : parties) {
      if (p.id() == e.agent) p.SetActive(e.join);
    }
    if (!e.join) directory.Retire(e.agent);
  }
}

// The public per-window bookkeeping both engine drivers share.
std::vector<market::AgentWindowInput> BuildWindowInputs(
    const grid::CommunityTrace& trace,
    std::span<const grid::WindowState> states) {
  const int num_homes = trace.num_homes();
  std::vector<market::AgentWindowInput> inputs(static_cast<size_t>(num_homes));
  for (int h = 0; h < num_homes; ++h) {
    inputs[static_cast<size_t>(h)] = market::AgentWindowInput{
        trace.homes[static_cast<size_t>(h)].params,
        states[static_cast<size_t>(h)]};
  }
  return inputs;
}

// A WindowRecord pre-filled with the window's baseline outcome.
WindowRecord BaselineRecord(int w,
                            std::span<const market::AgentWindowInput> inputs,
                            const SimulationConfig& config) {
  const market::BaselineOutcome baseline =
      market::ComputeBaseline(inputs, config.pem.market);
  WindowRecord rec;
  rec.window = w;
  rec.buyer_cost_baseline = baseline.buyer_total_cost;
  rec.grid_interaction_baseline = baseline.GridInteraction();
  return rec;
}

// One OS process per agent (ExecutionPolicy::Process() over inherited
// socketpairs, ExecutionPolicy::Tcp() over a loopback TCP rendezvous).
// The parent never runs protocol code: it schedules windows over the
// control channels, routes the children's frames, and merges their
// reports; each child executes its own agent's side of every phase
// against the state snapshot it inherited at fork time (see
// protocol/agent_driver.h for the execution model).
SimulationResult RunSimulationProcess(const grid::CommunityTrace& trace,
                                      const SimulationConfig& config) {
  const int num_homes = trace.num_homes();
  SimulationResult result;

  std::vector<grid::Battery> batteries = trace.MakeBatteries();

  // Template protocol state.  Created before the fork so every child
  // inherits the same snapshot: the shared seed is what lets n
  // independent processes re-derive one deterministic schedule.
  crypto::DeterministicRng rng(config.crypto_seed);
  std::vector<protocol::Party> parties;
  parties.reserve(static_cast<size_t>(num_homes));
  for (int h = 0; h < num_homes; ++h) {
    parties.emplace_back(static_cast<net::AgentId>(h),
                         trace.homes[static_cast<size_t>(h)].params);
  }
  crypto::PaillierPoolRegistry pools;
  // Fork-copied like the parties: every child maintains its own replica
  // of the key directory, which stays identical across all n replicas
  // because registrations follow the deterministic script.
  protocol::KeyDirectory directory;

  net::ProcessTransport::ChildMain child_main =
      [&trace, &config, &rng, &parties, &pools, &batteries, &directory](
          net::AgentId self, net::Transport& wire,
          net::ControlChannel& ctl) -> int {
    // Everything captured by reference is this child's fork copy; the
    // parent's own copies diverge freely after the fork.
    std::vector<net::Endpoint> endpoints = wire.endpoints();
    protocol::ProtocolContext ctx{
        endpoints, rng, config.pem,
        config.pem.precompute_encryption ? &pools : nullptr, config.policy,
        &directory};
    int next_window = 0;
    std::vector<grid::WindowState> states;
    protocol::AgentDriver::Callbacks callbacks;
    callbacks.begin_window = [&](int w) {
      PEM_CHECK(w >= next_window,
                "process child: windows scheduled out of order");
      // Battery dynamics — and the churn schedule — advance through the
      // skipped windows too, mirroring the parent loop exactly.
      for (; next_window <= w; ++next_window) {
        ApplyChurn(config, next_window, parties, directory);
        states = ResolveCommunityWindow(trace, next_window, batteries);
      }
      for (size_t h = 0; h < parties.size(); ++h) {
        parties[h].BeginWindow(states[h], config.pem.nonce_bound, rng);
      }
    };
    callbacks.after_window = [&](int) {
      if (!config.pem.precompute_encryption) return;
      // Idle-time pool refill, same as the in-process engine (outside
      // the reported per-window runtime).
      if (config.pem.crt_encryption) {
        for (const protocol::Party& p : parties) {
          if (p.HasKeys()) pools.AttachOwner(p.private_key());
        }
      }
      pools.RefillAll(config.pem.encryption_pool_target, rng, config.policy);
    };
    protocol::AgentDriver driver(self, ctx, parties, callbacks);
    driver.Serve(ctl);
    return 0;
  };

  const net::TransportOptions topts = ResolveTransportOptions(config);
  std::unique_ptr<net::AgentSupervisor> transport_owner;
  if (config.policy.transport_kind == net::TransportKind::kTcp) {
    net::TcpTransport::Options opts;
    opts.watchdog_ms = topts.watchdog_ms;
    opts.host = topts.tcp_host;
    opts.port = topts.tcp_port;
    opts.verify_frames = topts.tcp_verify_frames;
    transport_owner = std::make_unique<net::TcpTransport>(
        num_homes, child_main, std::move(opts));
  } else if (config.policy.transport_kind == net::TransportKind::kShm) {
    net::ShmTransport::Options opts;
    opts.watchdog_ms = topts.watchdog_ms;
    opts.ring_bytes = topts.shm_ring_bytes;
    transport_owner = std::make_unique<net::ShmTransport>(
        num_homes, child_main, opts);
  } else {
    net::ProcessTransport::Options opts;
    opts.watchdog_ms = topts.watchdog_ms;
    transport_owner =
        std::make_unique<net::ProcessTransport>(num_homes, child_main, opts);
  }
  net::AgentSupervisor& transport = *transport_owner;
  if (config.bus_observer) transport.SetObserver(config.bus_observer);

  // Prepass (parent-side bookkeeping only — the children replay their
  // own catch-up loops): battery dynamics AND the churn schedule
  // advance through every window, mirroring the in-process loop
  // exactly — skipping churn here let the parent's roster/epoch
  // bookkeeping drift from the children's under churn + stride.  The
  // sampled windows come out with their baseline records pre-built, so
  // the dispatch loop below touches no parent state mid-batch.
  struct PendingWindow {
    int window = 0;
    WindowRecord rec;
    std::vector<grid::WindowState> states;
  };
  std::vector<PendingWindow> pending;
  std::vector<int> sampled;
  for (int w = 0; w < trace.windows_per_day; ++w) {
    ApplyChurn(config, w, parties, directory);
    std::vector<grid::WindowState> states =
        ResolveCommunityWindow(trace, w, batteries);
    if (!WindowSampled(config, w)) continue;

    const std::vector<market::AgentWindowInput> inputs =
        BuildWindowInputs(trace, states);
    PendingWindow p;
    p.window = w;
    p.rec = BaselineRecord(w, inputs, config);
    if (config.record_states) p.states = std::move(states);
    pending.push_back(std::move(p));
    sampled.push_back(w);
  }

  // Batched dispatch: up to windows_in_flight kCtlCmdRun commands are
  // pipelined per child; each child still executes its windows in
  // order (per-window transcripts stay bit-identical to the serial
  // loop), but children overlap with each other across the batch.
  protocol::WindowScheduler scheduler({config.windows_in_flight, 1});
  size_t next = 0;
  for (const std::vector<int>& batch :
       protocol::WindowScheduler::PlanBatches(sampled,
                                              config.windows_in_flight)) {
    const std::vector<protocol::CollectedWindow> collected =
        scheduler.RunForkedBatch(transport, batch);
    double batch_seconds = 0.0;
    for (const protocol::CollectedWindow& cw : collected) {
      PendingWindow& p = pending[next++];
      PEM_CHECK(p.window == cw.window, "simulation: batch window mismatch");
      WindowRecord rec = std::move(p.rec);
      const protocol::WindowReport& report = cw.report;
      rec.type = report.type;
      rec.price = report.price;
      rec.num_sellers = report.num_sellers;
      rec.num_buyers = report.num_buyers;
      rec.supply_total = report.supply_total;
      rec.demand_total = report.demand_total;
      rec.buyer_cost_pem = report.buyer_total_cost;
      rec.grid_interaction_pem =
          report.grid_import_kwh + report.grid_export_kwh;
      // End-to-end wall clock in the parent: batch dispatch to this
      // window's slowest child, IPC included.  In-flight windows share
      // the span, so the day total charges each batch once (its max) —
      // never the sum, which would double-count the overlap.
      rec.runtime_seconds = cw.parent_seconds;
      rec.bus_bytes = report.bus_bytes;
      rec.rng_cursor = report.rng_cursor;
      rec.audit = report.audit;
      if (cw.parent_seconds > batch_seconds) batch_seconds = cw.parent_seconds;
      result.total_bus_bytes += rec.bus_bytes;
      result.windows.push_back(std::move(rec));
      if (config.record_states) {
        result.resolved_states.push_back(std::move(p.states));
      }
    }
    result.total_runtime_seconds += batch_seconds;
  }
  transport.Shutdown();
  return result;
}

}  // namespace

net::TransportOptions ResolveTransportOptions(const SimulationConfig& config) {
  net::TransportOptions opts = config.policy.transport;
  // Deprecated SimulationConfig aliases, kept one release: a legacy
  // field that was explicitly assigned wins — including one assigned
  // its historical default (the optionals latch "was set", so
  // e.g. tcp_port = 0 restoring auto-assign is honored instead of
  // silently dropped, the old default-inequality precedence bug).
  if (config.process_watchdog_ms.has_value()) {
    opts.watchdog_ms = *config.process_watchdog_ms;
  }
  if (config.tcp_host.has_value()) opts.tcp_host = *config.tcp_host;
  if (config.tcp_port.has_value()) opts.tcp_port = *config.tcp_port;
  if (config.tcp_verify_frames.has_value()) {
    opts.tcp_verify_frames = *config.tcp_verify_frames;
  }
  if (config.shm_ring_bytes.has_value()) {
    opts.shm_ring_bytes = *config.shm_ring_bytes;
  }
  return opts;
}

SimulationResult RunSimulation(const grid::CommunityTrace& trace,
                               const SimulationConfig& config) {
  PEM_CHECK(config.window_stride >= 1, "window stride must be >= 1");
  PEM_CHECK(config.window_offset >= 0, "window offset must be >= 0");
  PEM_CHECK(config.windows_in_flight >= 1, "windows_in_flight must be >= 1");
  config.pem.market.Validate();

  if (config.engine == Engine::kCrypto &&
      (config.policy.transport_kind == net::TransportKind::kProcess ||
       config.policy.transport_kind == net::TransportKind::kTcp ||
       config.policy.transport_kind == net::TransportKind::kShm)) {
    return RunSimulationProcess(trace, config);
  }

  const int num_homes = trace.num_homes();
  SimulationResult result;

  std::vector<grid::Battery> batteries = trace.MakeBatteries();

  // Crypto-engine state persists across windows (keys are cached).
  // The transport backend is chosen by the execution policy: the
  // serial FIFO bus, or the mutex-guarded bus that tolerates sends
  // from compute-phase workers.
  crypto::DeterministicRng rng(config.crypto_seed);
  std::unique_ptr<net::Transport> bus;
  std::vector<net::Endpoint> endpoints;
  std::vector<protocol::Party> parties;
  crypto::PaillierPoolRegistry pools;
  protocol::KeyDirectory directory;
  // Batched scheduling, in-process realization: one persistent worker
  // team shared by every compute phase of the in-flight windows (the
  // fork/join amortization), engaged through ctx.scheduler only when
  // fused — windows_in_flight = 1 leaves the per-call ParallelFor
  // pools, i.e. exactly the pre-batching engine.
  protocol::WindowScheduler scheduler(
      {config.windows_in_flight, config.policy.worker_count()});
  if (config.engine == Engine::kCrypto) {
    bus = net::MakeTransport(config.policy.transport_kind, num_homes);
    if (config.bus_observer) bus->SetObserver(config.bus_observer);
    // Protocol code acts through per-agent handles only; the whole
    // transport stays here in the driver.
    endpoints = bus->endpoints();
    parties.reserve(static_cast<size_t>(num_homes));
    for (int h = 0; h < num_homes; ++h) {
      parties.emplace_back(static_cast<net::AgentId>(h),
                           trace.homes[static_cast<size_t>(h)].params);
    }
  }

  for (int w = 0; w < trace.windows_per_day; ++w) {
    // Battery dynamics (and roster churn) advance every window
    // regardless of sampling.
    if (config.engine == Engine::kCrypto) {
      ApplyChurn(config, w, parties, directory);
    }
    std::vector<grid::WindowState> states =
        ResolveCommunityWindow(trace, w, batteries);
    if (!WindowSampled(config, w)) continue;

    const std::vector<market::AgentWindowInput> inputs =
        BuildWindowInputs(trace, states);
    WindowRecord rec = BaselineRecord(w, inputs, config);

    if (config.engine == Engine::kPlaintext) {
      const market::MarketOutcome outcome =
          market::ClearMarket(inputs, config.pem.market);
      rec.type = outcome.type;
      rec.price = outcome.price;
      rec.num_sellers = outcome.CountRole(grid::Role::kSeller);
      rec.num_buyers = outcome.CountRole(grid::Role::kBuyer);
      rec.supply_total = outcome.supply_total;
      rec.demand_total = outcome.demand_total;
      rec.buyer_cost_pem = outcome.buyer_total_cost;
      rec.grid_interaction_pem = outcome.GridInteraction();
    } else {
      for (int h = 0; h < num_homes; ++h) {
        parties[static_cast<size_t>(h)].BeginWindow(
            states[static_cast<size_t>(h)], config.pem.nonce_bound, rng);
      }
      protocol::ProtocolContext ctx{endpoints, rng, config.pem,
                                    config.pem.precompute_encryption
                                        ? &pools
                                        : nullptr,
                                    config.policy, &directory};
      ctx.scheduler = scheduler.fused() ? &scheduler : nullptr;
      const protocol::PemWindowResult out =
          protocol::RunPemWindow(ctx, parties, w);
      if (config.pem.precompute_encryption) {
        // Idle-time phase: top the pools back up between windows, so
        // the next window's encryptions are one multiplication each.
        // Deliberately outside the per-window runtime measurement.
        // The window may have elected new aggregators (and thus minted
        // new keys/pools); registering the owners first lets the
        // refill exponentiate mod p^2/q^2 instead of mod n^2.
        if (config.pem.crt_encryption) {
          for (const protocol::Party& p : parties) {
            if (p.HasKeys()) pools.AttachOwner(p.private_key());
          }
        }
        // The refill fans out across the policy's compute workers;
        // factor order (and every later transcript byte) is invariant
        // under the worker count.
        pools.RefillAll(config.pem.encryption_pool_target, rng,
                        config.policy);
      }
      rec.type = out.type;
      rec.price = out.price;
      rec.supply_total = out.supply_total;
      rec.demand_total = out.demand_total;
      for (const protocol::Party& p : parties) {
        if (p.role() == grid::Role::kSeller) ++rec.num_sellers;
        if (p.role() == grid::Role::kBuyer) ++rec.num_buyers;
      }
      rec.buyer_cost_pem = out.buyer_total_cost;
      rec.grid_interaction_pem = out.GridInteraction();
      rec.runtime_seconds = out.runtime_seconds;
      rec.bus_bytes = out.bus_bytes;
      rec.rng_cursor = out.rng_cursor;
      rec.audit = out.audit;
      result.total_runtime_seconds += out.runtime_seconds;
      result.total_bus_bytes += out.bus_bytes;
    }

    result.windows.push_back(rec);
    if (config.record_states) {
      result.resolved_states.push_back(std::move(states));
    }
  }
  return result;
}

}  // namespace pem::core
