#include "ledger/block.h"

#include "net/serialize.h"

namespace pem::ledger {
namespace {

constexpr uint64_t kTxTag = 0x5045'4D54'5821ull;     // "PEMTX!"
constexpr uint64_t kHeaderTag = 0x5045'4D42'4C4Bull; // "PEMBLK"
constexpr uint64_t kNodeTag = 0x5045'4D4E'4F44ull;   // "PEMNOD"

}  // namespace

std::vector<uint8_t> Transaction::Serialize() const {
  net::ByteWriter w;
  w.U32(static_cast<uint32_t>(window));
  w.U32(static_cast<uint32_t>(seller));
  w.U32(static_cast<uint32_t>(buyer));
  w.I64(energy_micro_kwh);
  w.I64(payment_micro_usd);
  return w.Take();
}

crypto::Sha256Digest Transaction::Digest() const {
  const std::vector<uint8_t> bytes = Serialize();
  const std::span<const uint8_t> chunks[] = {bytes};
  return crypto::Kdf(kTxTag, chunks);
}

std::vector<uint8_t> BlockHeader::Serialize() const {
  net::ByteWriter w;
  w.U64(index);
  w.Bytes(previous_hash.bytes);
  w.Bytes(tx_root.bytes);
  w.U64(logical_time);
  return w.Take();
}

crypto::Sha256Digest Block::Hash() const {
  const std::vector<uint8_t> bytes = header.Serialize();
  const std::span<const uint8_t> chunks[] = {bytes};
  return crypto::Kdf(kHeaderTag, chunks);
}

crypto::Sha256Digest Block::ComputeTxRoot(
    const std::vector<Transaction>& txs) {
  if (txs.empty()) {
    const std::span<const uint8_t> none[] = {};
    return crypto::Kdf(kNodeTag, std::span<const std::span<const uint8_t>>(
                                     none, 0));
  }
  std::vector<crypto::Sha256Digest> level;
  level.reserve(txs.size());
  for (const Transaction& tx : txs) level.push_back(tx.Digest());
  while (level.size() > 1) {
    std::vector<crypto::Sha256Digest> next;
    next.reserve((level.size() + 1) / 2);
    for (size_t i = 0; i < level.size(); i += 2) {
      if (i + 1 < level.size()) {
        next.push_back(crypto::Kdf2(kNodeTag, level[i].bytes,
                                    level[i + 1].bytes));
      } else {
        next.push_back(level[i]);  // odd leaf promoted
      }
    }
    level = std::move(next);
  }
  return level[0];
}

bool Block::IsConsistent() const {
  return header.tx_root == ComputeTxRoot(transactions);
}

}  // namespace pem::ledger
