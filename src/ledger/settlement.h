// Settlement "smart contract" (§VI): turns a PEM window result into a
// validated block of transactions.
//
// The contract enforces the market rules the paper wants the
// blockchain to guarantee — every payment equals price x energy, no
// negative quantities, and the per-window conservation identities —
// then appends the block.  Rejected windows leave the chain untouched.
#pragma once

#include <string>
#include <vector>

#include "ledger/chain.h"
#include "protocol/pem_protocol.h"

namespace pem::ledger {

struct SettlementReport {
  bool accepted = false;
  std::vector<std::string> violations;
  uint64_t transactions_recorded = 0;
  crypto::Sha256Digest block_hash{};
};

class SettlementContract {
 public:
  // Relative tolerance for the price*energy check (the protocol ships
  // doubles; the chain stores fixed-point).
  explicit SettlementContract(Ledger& ledger, double tolerance = 1e-6)
      : ledger_(ledger), tolerance_(tolerance) {}

  // Validates and records one window.  `window` is the trading-window
  // id used as the logical timestamp.
  SettlementReport SettleWindow(int32_t window,
                                const protocol::PemWindowResult& result);

 private:
  Ledger& ledger_;
  double tolerance_;
};

}  // namespace pem::ledger
