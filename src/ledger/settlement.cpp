#include "ledger/settlement.h"

#include <cmath>

#include "util/fixed_point.h"

namespace pem::ledger {

SettlementReport SettlementContract::SettleWindow(
    int32_t window, const protocol::PemWindowResult& result) {
  SettlementReport report;

  // --- contract checks -------------------------------------------------
  double market_energy = 0.0;
  double market_money = 0.0;
  for (const protocol::Trade& t : result.trades) {
    if (t.energy_kwh < 0.0) {
      report.violations.push_back("negative trade energy");
    }
    if (t.payment < 0.0) {
      report.violations.push_back("negative payment");
    }
    const double expected = result.price * t.energy_kwh;
    if (std::abs(t.payment - expected) >
        tolerance_ * std::max(1.0, std::abs(expected))) {
      report.violations.push_back("payment != price * energy");
    }
    if (t.seller_index == t.buyer_index) {
      report.violations.push_back("self-trade");
    }
    market_energy += t.energy_kwh;
    market_money += t.payment;
  }
  // Conservation: the market cannot move more energy than the smaller
  // coalition side offers/demands.
  const double cap = std::min(result.supply_total, result.demand_total);
  if (market_energy > cap * (1.0 + tolerance_) + 1e-9) {
    report.violations.push_back("market energy exceeds min(supply, demand)");
  }
  if (std::abs(market_money - result.price * market_energy) >
      tolerance_ * std::max(1.0, market_money)) {
    report.violations.push_back("money flow inconsistent with price");
  }

  if (!report.violations.empty()) {
    report.accepted = false;
    return report;
  }

  // --- record -----------------------------------------------------------
  std::vector<Transaction> txs;
  txs.reserve(result.trades.size());
  for (const protocol::Trade& t : result.trades) {
    Transaction tx;
    tx.window = window;
    tx.seller = static_cast<int32_t>(t.seller_index);
    tx.buyer = static_cast<int32_t>(t.buyer_index);
    tx.energy_micro_kwh = FixedPoint::FromDouble(t.energy_kwh).raw();
    tx.payment_micro_usd = FixedPoint::FromDouble(t.payment).raw();
    txs.push_back(tx);
  }
  report.transactions_recorded = txs.size();
  report.block_hash =
      ledger_.Append(std::move(txs), static_cast<uint64_t>(window));
  report.accepted = true;
  return report;
}

}  // namespace pem::ledger
