// Blocks and transactions for the settlement ledger.
//
// The paper's §VI ("Blockchain Deployment") proposes realizing the
// final distribution and payments through a blockchain so integrity
// and truthfulness of the settled trades are auditable.  This module
// provides the block structure: hash-chained blocks of energy-trade
// transactions with a Merkle-style transaction digest.  Quantities are
// stored as fixed-point integers so hashes are platform-stable.
#pragma once

#include <cstdint>
#include <vector>

#include "crypto/hash.h"

namespace pem::ledger {

// One settled pairwise trade (Protocol 4 lines 10-12).
struct Transaction {
  int32_t window = 0;
  int32_t seller = 0;
  int32_t buyer = 0;
  int64_t energy_micro_kwh = 0;  // e_ij, fixed-point
  int64_t payment_micro_usd = 0; // m_ji, fixed-point

  std::vector<uint8_t> Serialize() const;
  crypto::Sha256Digest Digest() const;

  bool operator==(const Transaction&) const = default;
};

struct BlockHeader {
  uint64_t index = 0;
  crypto::Sha256Digest previous_hash{};
  crypto::Sha256Digest tx_root{};  // Merkle root of the transactions
  uint64_t logical_time = 0;       // trading-window clock, not wall time

  std::vector<uint8_t> Serialize() const;
};

struct Block {
  BlockHeader header;
  std::vector<Transaction> transactions;

  // Hash of the serialized header (the chain link).
  crypto::Sha256Digest Hash() const;

  // Recomputes the Merkle root over `transactions` (pairwise SHA-256,
  // odd leaf promoted).  Empty blocks hash a fixed empty-root tag.
  static crypto::Sha256Digest ComputeTxRoot(
      const std::vector<Transaction>& txs);

  // Header root matches the transaction list.
  bool IsConsistent() const;
};

}  // namespace pem::ledger
