// Append-only hash-chained ledger.
//
// A deliberately minimal permissioned chain: no proof-of-work, no
// forks — the PEM coalition is the (semi-honest) consensus group, and
// what §VI needs from the blockchain is tamper-evidence for settled
// trades, not Sybil resistance.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ledger/block.h"

namespace pem::ledger {

struct ValidationIssue {
  uint64_t block_index = 0;
  std::string what;
};

class Ledger {
 public:
  // Creates a chain holding only the genesis block.
  Ledger();

  // Appends a block of transactions at the given logical time.
  // Returns the new block's hash.
  crypto::Sha256Digest Append(std::vector<Transaction> transactions,
                              uint64_t logical_time);

  size_t block_count() const { return blocks_.size(); }  // incl. genesis
  const Block& block(size_t i) const;
  const Block& tip() const { return blocks_.back(); }

  // Full-chain audit: hash links, header/tx-root consistency, and
  // monotone indices.  Returns every violation found (empty == valid).
  std::vector<ValidationIssue> Validate() const;

  // --- queries ---------------------------------------------------------
  // Net settled balance of an agent in micro-USD (received - paid).
  int64_t BalanceOf(int32_t agent) const;
  // All transactions recorded for a trading window.
  std::vector<Transaction> TransactionsInWindow(int32_t window) const;
  uint64_t TotalTransactions() const;

  // Test hook: direct mutable access to a block, for tamper tests.
  Block& MutableBlockForTest(size_t i);

 private:
  std::vector<Block> blocks_;
};

}  // namespace pem::ledger
