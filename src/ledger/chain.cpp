#include "ledger/chain.h"

#include "util/error.h"

namespace pem::ledger {

Ledger::Ledger() {
  Block genesis;
  genesis.header.index = 0;
  genesis.header.tx_root = Block::ComputeTxRoot({});
  blocks_.push_back(std::move(genesis));
}

crypto::Sha256Digest Ledger::Append(std::vector<Transaction> transactions,
                                    uint64_t logical_time) {
  Block b;
  b.header.index = blocks_.back().header.index + 1;
  b.header.previous_hash = blocks_.back().Hash();
  b.header.tx_root = Block::ComputeTxRoot(transactions);
  b.header.logical_time = logical_time;
  b.transactions = std::move(transactions);
  blocks_.push_back(std::move(b));
  return blocks_.back().Hash();
}

const Block& Ledger::block(size_t i) const {
  PEM_CHECK(i < blocks_.size(), "block index out of range");
  return blocks_[i];
}

Block& Ledger::MutableBlockForTest(size_t i) {
  PEM_CHECK(i < blocks_.size(), "block index out of range");
  return blocks_[i];
}

std::vector<ValidationIssue> Ledger::Validate() const {
  std::vector<ValidationIssue> issues;
  for (size_t i = 0; i < blocks_.size(); ++i) {
    const Block& b = blocks_[i];
    if (b.header.index != i) {
      issues.push_back({b.header.index, "non-monotone block index"});
    }
    if (!b.IsConsistent()) {
      issues.push_back({b.header.index, "tx root does not match body"});
    }
    if (i > 0 && b.header.previous_hash != blocks_[i - 1].Hash()) {
      issues.push_back({b.header.index, "broken hash link to predecessor"});
    }
  }
  return issues;
}

int64_t Ledger::BalanceOf(int32_t agent) const {
  int64_t balance = 0;
  for (const Block& b : blocks_) {
    for (const Transaction& tx : b.transactions) {
      if (tx.seller == agent) balance += tx.payment_micro_usd;
      if (tx.buyer == agent) balance -= tx.payment_micro_usd;
    }
  }
  return balance;
}

std::vector<Transaction> Ledger::TransactionsInWindow(int32_t window) const {
  std::vector<Transaction> out;
  for (const Block& b : blocks_) {
    for (const Transaction& tx : b.transactions) {
      if (tx.window == window) out.push_back(tx);
    }
  }
  return out;
}

uint64_t Ledger::TotalTransactions() const {
  uint64_t n = 0;
  for (const Block& b : blocks_) n += b.transactions.size();
  return n;
}

}  // namespace pem::ledger
