// §VI active-cheater audit round.
//
// At the top of a window (when PemConfig::audit enables it and the
// seeded coin flip selects the window), one market participant is
// chosen as auditor.  Every other participant publishes a verifiable
// contribution — a Paillier encryption of its blinded net energy under
// the auditor's key plus a commitment binding (window, agent, value,
// randomness) — and, on demand, opens the witness.  The auditor
// re-encrypts and compares, cross-checks the attested byte count
// against the traffic ledger, and broadcasts a per-agent verdict.  A
// guilty agent is excluded on the spot: the window re-forms its
// coalitions around the survivors and completes without the cheater.
//
// Determinism contract.  ALL audit randomness comes from side streams
// keyed by (policy.seed, window[, agent]) — never from the protocol
// RNG — and inactive parties keep consuming their BeginWindow draws.
// Consequence: an honest agent's wire bytes are identical whether or
// not anybody cheats, which is what the adversarial wall's
// byte-identity rows assert.  The cheat plan lives in PemConfig, so
// forked backends replay the same misbehavior in every child and each
// independent process derives the identical verdict.
#pragma once

#include <span>
#include <vector>

#include "protocol/context.h"
#include "protocol/fault.h"

namespace pem::protocol {

// What the audit round concluded; carried in PemWindowResult /
// WindowReport so every backend's reports can be cross-checked.
struct AuditOutcome {
  bool audited = false;      // did an audit round run this window?
  net::AgentId auditor = -1; // who audited (-1 when not audited)
  std::vector<ProtocolFault> faults;  // detected cheats, agent order

  bool operator==(const AuditOutcome&) const = default;
};

// Runs the audit round over the active market participants.  Excludes
// detected cheaters from `parties` (Party::Exclude) and returns the
// structured outcome.  No-op (audited == false) when auditing is
// disabled, the coin flip skips the window, or fewer than two
// participants are on the market.  Throws ProtocolError only for
// cheats that cannot be survived by exclusion (key equivocation inside
// the auditor's broadcast).
AuditOutcome RunAuditRound(ProtocolContext& ctx, std::span<Party> parties);

}  // namespace pem::protocol
