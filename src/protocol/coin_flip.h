// Joint randomness via commit-reveal (§VI, collusion resistance).
//
// Protocols 2-4 randomly select the agents who get to decrypt
// aggregates (Hr1, Hr2, Hb, Hs).  If that choice were made by any
// single party, colluders could steer it toward themselves.  Here the
// coalition flips the coin jointly: every participant commits to a
// random 64-bit share, all commitments are exchanged, then all shares
// are revealed and verified; the XOR of the shares drives the choice.
// No participant can bias the result without breaking the commitment
// (binding) or aborting (detectable).
//
// This is optional machinery (PemConfig::collusion_resistant_selection)
// since it costs O(m^2) small messages per draw.
#pragma once

#include <span>

#include "protocol/context.h"

namespace pem::protocol {

inline constexpr uint32_t kMsgCoinCommit = 0x5045'0010;
inline constexpr uint32_t kMsgCoinReveal = 0x5045'0011;

// Jointly draws a uniform 64-bit value among `participants` (indices
// into `parties`).  Every commitment/reveal is exchanged pairwise over
// the bus and verified by every receiver; a bad opening aborts (a
// protocol violation under the semi-honest-with-incentives model).
uint64_t JointRandomU64(ProtocolContext& ctx, std::span<Party> parties,
                        std::span<const size_t> participants);

// Selection helper used by Protocols 2-4: jointly random when the
// config enables collusion resistance, runner-random otherwise.
size_t SelectAgent(ProtocolContext& ctx, std::span<Party> parties,
                   std::span<const size_t> candidates);

}  // namespace pem::protocol
