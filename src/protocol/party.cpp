#include "protocol/party.h"

#include "util/error.h"

namespace pem::protocol {

void Party::BeginWindow(const grid::WindowState& state, int64_t nonce_bound,
                        crypto::Rng& rng) {
  state_ = state;
  net_raw_ = FixedPoint::FromDouble(state.NetEnergy()).raw();
  // An inactive party sits out the market but still consumes its nonce
  // draw below: the RNG schedule every other agent derives from must
  // not depend on the roster.
  role_ = active_ ? grid::ClassifyRole(static_cast<double>(net_raw_), 0.0)
                  : grid::Role::kOffMarket;
  PEM_CHECK(nonce_bound > 0, "nonce bound must be positive");
  nonce_ = static_cast<int64_t>(
      crypto::BigInt::RandomBelow(crypto::BigInt(nonce_bound), rng).ToInt64());
}

int64_t Party::PreferenceRaw() const {
  return FixedPoint::FromDouble(params_.preference_k).raw();
}

int64_t Party::SupplyTermRaw() const {
  const double term = state_.generation_kwh + 1.0 +
                      params_.battery_epsilon * state_.battery_kwh -
                      state_.battery_kwh;
  return FixedPoint::FromDouble(term).raw();
}

const crypto::PaillierKeyPair& Party::EnsureKeys(int key_bits,
                                                 crypto::Rng& rng) {
  if (!keys_.has_value() || keys_->pub.key_bits() != key_bits) {
    keys_ = crypto::GeneratePaillierKeyPair(key_bits, rng);
    crt_ = crypto::PaillierCrtEncryptor(keys_->priv);
  }
  return *keys_;
}

const crypto::PaillierPublicKey& Party::public_key() const {
  PEM_CHECK(keys_.has_value(), "party has no keys yet");
  return keys_->pub;
}

const crypto::PaillierPrivateKey& Party::private_key() const {
  PEM_CHECK(keys_.has_value(), "party has no keys yet");
  return keys_->priv;
}

}  // namespace pem::protocol
