// AggregationTopology: the deterministic plan behind every ring
// aggregation.
//
// The flat ring of Protocols 2-4 is O(n) sequential hops — the
// aggregation critical path.  A k-ary hierarchy of sub-rings (leaf
// rings aggregate shard-locally, elected leaders re-aggregate up the
// tree, the root ring forwards to the final recipient) computes the
// same homomorphic sum in O(log n) sequential hops.  This header is
// the PLAN only: which party sits in which ring at which level, and
// who leads each ring.  Execution (prepare/compute/forward over a
// transport) lives in protocol/context.h, which consumes plans.
//
// Two invariants make a hierarchical plan's market outcome
// bit-identical to the flat ring's:
//   1. Leaf rings are CONTIGUOUS chunks of the member list in its
//      original order, so the phase-1 randomness draws happen in
//      exactly the flat ring's sequence — no downstream ctx.rng draw
//      ever shifts.
//   2. Upper levels aggregate the partial ciphertexts their members
//      (the level below's leaders) already hold — no fresh encryption,
//      no randomness draw.  Paillier addition is a commutative product
//      mod n^2, so even the final ciphertext is bit-identical to the
//      flat ring's.
// Leader election draws only from MixSeed-derived side streams keyed
// by (seed, window, level, ring) — never the protocol RNG — the same
// cheat-invariance discipline the §VI audits follow (and the
// `topology-seeded` pem_lint rule enforces it statically).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace pem::protocol {

// SplitMix64 finalizer shared by the audit round and topology leader
// election: derives independent deterministic side streams from
// (seed, window[, level, ring, agent]) so consuming (or skipping) a
// side-stream draw never perturbs the protocol RNG schedule.
uint64_t MixSeed(uint64_t a, uint64_t b);

enum class TopologyKind {
  kFlat,          // one ring over all members (the paper's Protocol 2-4)
  kHierarchical,  // k-ary tree of sub-rings with elected leaders
};

// The aggregation-plan knob carried by PemConfig (config.topology):
// forked backends copy it into every child, so all n independent
// processes derive the identical plan for every window.
struct TopologyConfig {
  TopologyKind kind = TopologyKind::kFlat;
  // Maximum members per sub-ring (>= 2).  Also the grouping factor for
  // the leader rings above the leaves.
  int fanout = 4;
  // Seed of the leader-election side streams; independent of the
  // protocol RNG by construction.
  uint64_t seed = 0x5045'4d54'4f50'4f31ULL;  // "PEMTOPO1"
};

// One sub-ring: party indices (into the parties span) in forwarding
// order, plus the elected leader's position within `members`.  At the
// leaf level the leader carries the ring's partial sum up the tree; at
// the root the leader is elected but unused (the sink is the
// aggregation's final recipient).
struct TopologyRing {
  std::vector<size_t> members;
  size_t leader_pos = 0;

  size_t leader() const { return members[leader_pos]; }

  friend bool operator==(const TopologyRing&, const TopologyRing&) = default;
};

// All rings of one tree level, bottom (leaves) first.
struct TopologyLevel {
  std::vector<TopologyRing> rings;

  friend bool operator==(const TopologyLevel&, const TopologyLevel&) = default;
};

// The immutable plan object: levels of sub-rings, leaves first, ending
// in a single root ring.  Level l+1's rings, concatenated, list exactly
// the leaders of level l's rings in ring order — the executor relies
// on this to route each partial to its member without extra state.
class AggregationTopology {
 public:
  // The flat plan: one level, one ring, in the given order.  The
  // span-of-size_t RingAggregate overloads wrap their ring in this, so
  // a flat plan's execution is byte-identical to the pre-plan engine.
  static AggregationTopology Flat(std::span<const size_t> ring);

  // Builds the plan for `members` (coalition indices in coalition
  // order) from the configured topology, keyed by `window` so churn
  // epochs re-elect every leader.  kFlat — and any community of <= 2
  // members — yields the flat plan; kHierarchical always forms at
  // least two leaf rings, so the tree never silently degenerates to
  // flat and its critical path stays strictly below n-1 hops.
  static AggregationTopology Build(std::span<const size_t> members,
                                   const TopologyConfig& config, int window);

  const std::vector<TopologyLevel>& levels() const { return levels_; }
  bool flat() const { return levels_.size() == 1; }
  size_t num_members() const;

  // Leaf members in ring-concatenation order — identical to the member
  // list Build() was given (contiguous-chunk invariant), which is what
  // keeps the phase-1 randomness sequence flat-identical.
  std::vector<size_t> LeafMembers() const;

  // Sequential ring-multiply hops on the critical path: per level, the
  // largest ring's (size - 1) interior hops plus one leader-delivery
  // hop when the leader is not the ring's last member.  The root level
  // counts interior hops only — the delivery to the final recipient is
  // common to every plan shape, so it is excluded everywhere.  A flat
  // plan over n members scores exactly n - 1.
  int CriticalPathHops() const;

 private:
  std::vector<TopologyLevel> levels_;
};

}  // namespace pem::protocol
