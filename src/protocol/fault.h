// Protocol-level fault taxonomy: the cheat classes an active adversary
// can attempt inside a window, and the structured fault that names the
// cheater when the audit machinery catches one.
//
// The transport layer already latches net::TransportFault for crashed
// peers and severed wires; this is its protocol-layer twin for agents
// that stay alive but DEVIATE — a mis-encrypted ring contribution, a
// commitment that does not open, a replayed contribution from an old
// window, a byte count that disagrees with the TrafficLedger, a key
// equivocation.  A detected cheat either ends the window with a
// ProtocolError naming the cheater (equivocation, forged reports) or —
// the audit path — excludes the cheater and lets the honest survivors
// complete the window, with the fault carried in the window result.
#pragma once

#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "net/message.h"
#include "util/error.h"

namespace pem::protocol {

// Every way an agent can actively deviate that this repo detects.
enum class CheatClass : uint8_t {
  kNone = 0,
  // The ciphertext entering the ring does not encrypt the committed
  // blinded value under the committed randomness.
  kMisEncryptedContribution = 1,
  // The witness does not open the published commitment.
  kCommitmentMismatch = 2,
  // A stale contribution replayed from an earlier window (wrong audit
  // domain), or a frame replayed/injected at the transport layer.
  kReplayedFrame = 3,
  // The byte count an agent attests disagrees with the TrafficLedger.
  kForgedByteCount = 4,
  // Two different public keys announced for the same epoch.
  kKeyEquivocation = 5,
  // A child's window report diverges from the canonical ledger or from
  // its peers (parent-side CollectWindowReportsBatch cross-check).
  kForgedReport = 6,
  // A child's report echoes a window other than the one the parent
  // commanded — a replayed/stale report, which the window-id echo in
  // WindowReport exists to reject (and which keys out-of-order
  // collection when several windows are in flight).
  kStaleReport = 7,
};

inline const char* CheatClassName(CheatClass c) {
  switch (c) {
    case CheatClass::kNone: return "none";
    case CheatClass::kMisEncryptedContribution:
      return "mis_encrypted_contribution";
    case CheatClass::kCommitmentMismatch: return "commitment_mismatch";
    case CheatClass::kReplayedFrame: return "replayed_frame";
    case CheatClass::kForgedByteCount: return "forged_byte_count";
    case CheatClass::kKeyEquivocation: return "key_equivocation";
    case CheatClass::kForgedReport: return "forged_report";
    case CheatClass::kStaleReport: return "stale_report";
  }
  return "unknown";
}

// A detected deviation, naming the cheater.  `detail` is built from
// deterministic inputs only, so every independent process derives the
// identical fault (CollectWindowReports compares them field by field).
struct ProtocolFault {
  net::AgentId cheater = -1;
  CheatClass cheat = CheatClass::kNone;
  int window = -1;
  std::string detail;

  bool operator==(const ProtocolFault& o) const {
    return cheater == o.cheater && cheat == o.cheat && window == o.window &&
           detail == o.detail;
  }
};

// Thrown when a cheat cannot be survived by exclusion (the equivocated
// key is already woven into the window, a child's report is forged) —
// the protocol-layer analogue of net::TransportError.
class ProtocolError : public std::runtime_error {
 public:
  explicit ProtocolError(ProtocolFault fault)
      : std::runtime_error(std::string("protocol_violation: agent ") +
                           std::to_string(fault.cheater) + " [" +
                           CheatClassName(fault.cheat) +
                           "]: " + fault.detail),
        fault_(std::move(fault)) {}

  const ProtocolFault& fault() const { return fault_; }

 private:
  ProtocolFault fault_;
};

// The adversarial twin of AgentSupervisor::SeverWireForTest: a scripted
// misbehavior one agent executes at one window.  It lives inside
// PemConfig so a forked backend copies it into EVERY child — each
// child's deterministic shadow script then includes the cheater's real
// perturbed bytes, and every independent process derives the identical
// verdict.  Defaults to "nobody cheats", which is byte-for-byte the
// honest protocol.
struct CheatPlan {
  net::AgentId cheater = -1;
  CheatClass cheat = CheatClass::kNone;
  int window = -1;  // fire at exactly this window; -1 = never

  bool ActiveFor(net::AgentId agent, int window_now) const {
    return cheat != CheatClass::kNone && agent == cheater &&
           window_now == window;
  }
};

// §VI active-cheater auditing: each window a seeded coin flip decides
// whether an audit round runs; a deterministic draw (or the pinned
// test knob) selects the auditor, every market participant publishes a
// verifiable contribution, and the auditor demands witness openings.
// The audit draws all of its randomness from side streams keyed by
// (seed, window[, agent]) — never from the protocol RNG — so honest
// agents' wire bytes are identical whether or not a cheater is present.
struct AuditPolicy {
  bool enabled = false;
  uint64_t seed = 0x5045'4155'4449'5421ULL;  // "PEAUDIT!"
  // Audit roughly one window in `audit_one_in` (1 = every window).
  uint32_t audit_one_in = 1;
  // Test knob: pin the auditor instead of drawing it, so byte-identity
  // comparisons across rosters keep the same auditor.  -1 = draw.
  net::AgentId fixed_auditor = -1;
};

}  // namespace pem::protocol
