#include "protocol/topology.h"

#include <algorithm>

#include "crypto/bigint.h"
#include "crypto/rng.h"
#include "util/error.h"

namespace pem::protocol {

uint64_t MixSeed(uint64_t a, uint64_t b) {
  uint64_t x = a + 0x9e37'79b9'7f4a'7c15ULL * (b + 0x632b'e59b'd9b4'e019ULL);
  x ^= x >> 30;
  x *= 0xbf58'476d'1ce4'e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d0'49bb'1331'11ebULL;
  x ^= x >> 31;
  return x;
}

namespace {

// Splits `count` items into `parts` contiguous chunks, sizes as even
// as possible (earlier chunks take the remainder).
std::vector<size_t> ChunkSizes(size_t count, size_t parts) {
  std::vector<size_t> sizes(parts, count / parts);
  for (size_t i = 0; i < count % parts; ++i) ++sizes[i];
  return sizes;
}

// Contiguous chunks of `items` as rings, in order.
TopologyLevel ChunkIntoRings(std::span<const size_t> items, size_t parts) {
  TopologyLevel level;
  level.rings.reserve(parts);
  size_t offset = 0;
  for (size_t size : ChunkSizes(items.size(), parts)) {
    TopologyRing ring;
    ring.members.assign(items.begin() + static_cast<ptrdiff_t>(offset),
                        items.begin() + static_cast<ptrdiff_t>(offset + size));
    offset += size;
    level.rings.push_back(std::move(ring));
  }
  return level;
}

// Elects every ring's leader on `level` from its own side stream,
// keyed (seed, window, level, ring) — so two rings, two windows, or
// two levels never share a stream, and a membership change in one
// ring cannot shift another ring's election.
void ElectLeaders(TopologyLevel& level, const TopologyConfig& config,
                  int window, size_t level_index) {
  const uint64_t level_seed = MixSeed(
      MixSeed(config.seed, static_cast<uint64_t>(static_cast<int64_t>(window))),
      static_cast<uint64_t>(level_index));
  for (size_t r = 0; r < level.rings.size(); ++r) {
    TopologyRing& ring = level.rings[r];
    crypto::DeterministicRng side(MixSeed(level_seed, r));
    ring.leader_pos = static_cast<size_t>(
        crypto::BigInt::RandomBelow(
            crypto::BigInt(static_cast<int64_t>(ring.members.size())), side)
            .ToInt64());
  }
}

}  // namespace

AggregationTopology AggregationTopology::Flat(std::span<const size_t> ring) {
  PEM_CHECK(!ring.empty(), "topology: a ring needs at least one member");
  AggregationTopology topo;
  TopologyRing r;
  r.members.assign(ring.begin(), ring.end());
  r.leader_pos = r.members.size() - 1;  // unused at the root; tidy default
  TopologyLevel level;
  level.rings.push_back(std::move(r));
  topo.levels_.push_back(std::move(level));
  return topo;
}

AggregationTopology AggregationTopology::Build(std::span<const size_t> members,
                                               const TopologyConfig& config,
                                               int window) {
  PEM_CHECK(!members.empty(), "topology: a ring needs at least one member");
  PEM_CHECK(config.fanout >= 2, "topology: fanout must be >= 2");
  const size_t n = members.size();
  if (config.kind == TopologyKind::kFlat || n <= 2) return Flat(members);

  const size_t fanout = static_cast<size_t>(config.fanout);
  AggregationTopology topo;
  // Leaf level: contiguous chunks of the member list, at least two of
  // them — a "hierarchy" of one leaf ring would just be the flat ring
  // with extra bookkeeping, and its critical path would not shrink.
  const size_t leaf_rings = std::max<size_t>(2, (n + fanout - 1) / fanout);
  topo.levels_.push_back(ChunkIntoRings(members, leaf_rings));

  while (true) {
    TopologyLevel& current = topo.levels_.back();
    ElectLeaders(current, config, window, topo.levels_.size() - 1);
    if (current.rings.size() == 1) break;  // root reached
    std::vector<size_t> leaders;
    leaders.reserve(current.rings.size());
    for (const TopologyRing& ring : current.rings) {
      leaders.push_back(ring.leader());
    }
    const size_t parts = (leaders.size() + fanout - 1) / fanout;
    topo.levels_.push_back(ChunkIntoRings(leaders, parts));
  }
  return topo;
}

size_t AggregationTopology::num_members() const {
  size_t n = 0;
  for (const TopologyRing& ring : levels_.front().rings) {
    n += ring.members.size();
  }
  return n;
}

std::vector<size_t> AggregationTopology::LeafMembers() const {
  std::vector<size_t> members;
  members.reserve(num_members());
  for (const TopologyRing& ring : levels_.front().rings) {
    members.insert(members.end(), ring.members.begin(), ring.members.end());
  }
  return members;
}

int AggregationTopology::CriticalPathHops() const {
  int hops = 0;
  for (size_t l = 0; l < levels_.size(); ++l) {
    const bool root = l + 1 == levels_.size();
    int level_max = 0;
    for (const TopologyRing& ring : levels_[l].rings) {
      int h = static_cast<int>(ring.members.size()) - 1;
      if (!root && ring.leader_pos != ring.members.size() - 1) ++h;
      level_max = std::max(level_max, h);
    }
    hops += level_max;
  }
  return hops;
}

}  // namespace pem::protocol
