#include "protocol/context.h"

#include "protocol/key_directory.h"
#include "protocol/window_scheduler.h"
#include "util/error.h"
#include "util/parallel.h"

namespace pem::protocol {

Coalitions FormCoalitions(std::span<const Party> parties) {
  Coalitions c;
  for (size_t i = 0; i < parties.size(); ++i) {
    switch (parties[i].role()) {
      case grid::Role::kSeller: c.sellers.push_back(i); break;
      case grid::Role::kBuyer: c.buyers.push_back(i); break;
      case grid::Role::kOffMarket: break;
    }
  }
  return c;
}

size_t PickRandomIndex(std::span<const size_t> candidates, crypto::Rng& rng) {
  PEM_CHECK(!candidates.empty(), "cannot pick from empty candidate set");
  const crypto::BigInt bound(static_cast<int64_t>(candidates.size()));
  const int64_t i = crypto::BigInt::RandomBelow(bound, rng).ToInt64();
  return candidates[static_cast<size_t>(i)];
}

void WriteCiphertext(net::ByteWriter& w, const crypto::PaillierPublicKey& pk,
                     const crypto::PaillierCiphertext& ct) {
  w.Bytes(ct.value.ToBytesPadded(pk.ciphertext_bytes()));
}

crypto::PaillierCiphertext ReadCiphertext(net::ByteReader& r) {
  return crypto::PaillierCiphertext{crypto::BigInt::FromBytes(r.Bytes())};
}

// --- phase primitives -------------------------------------------------

EncryptionSlot PrepareEncryption(ProtocolContext& ctx,
                                 const crypto::PaillierPublicKey& pk,
                                 int64_t value,
                                 const Party* encryptor) {
  EncryptionSlot slot;
  slot.value = value;
  if (ctx.config.crt_encryption && encryptor != nullptr &&
      encryptor->HasKeys() && encryptor->public_key().n() == pk.n()) {
    slot.crt = encryptor->crt_encryptor();
  }
  if (ctx.pools != nullptr) {
    slot.pooled_factor = ctx.pools->PoolFor(pk).TakeFactor();
    if (slot.pooled_factor.has_value()) return slot;
  }
  slot.randomness = pk.SampleRandomness(ctx.rng);
  return slot;
}

crypto::PaillierCiphertext ComputeEncryption(
    const crypto::PaillierPublicKey& pk, const EncryptionSlot& slot) {
  const crypto::BigInt m = pk.EncodeSigned(slot.value);
  if (slot.pooled_factor.has_value()) {
    return pk.EncryptWithFactor(m, *slot.pooled_factor);
  }
  // Same bits either way; the owner path is just cheaper.
  return slot.crt != nullptr
             ? slot.crt->EncryptWithRandomness(m, slot.randomness)
             : pk.EncryptWithRandomness(m, slot.randomness);
}

std::vector<crypto::PaillierCiphertext> ComputeEncryptions(
    const ProtocolContext& ctx, const crypto::PaillierPublicKey& pk,
    std::span<const EncryptionSlot> slots) {
  std::vector<crypto::PaillierCiphertext> out(slots.size());
  const auto compute = [&](size_t i) { out[i] = ComputeEncryption(pk, slots[i]); };
  if (ctx.scheduler != nullptr && ctx.scheduler->fused()) {
    // Batched scheduling: the fan-out runs on the scheduler's
    // persistent team, amortizing fork/join across every compute phase
    // of the in-flight windows.  Identical iteration results either
    // way — phase 1 fixed all randomness already.
    ctx.scheduler->ParallelFor(0, slots.size(), compute);
  } else {
    ParallelFor(0, slots.size(), ctx.policy.worker_count(), compute);
  }
  return out;
}

// --- ring aggregation -------------------------------------------------

net::Message ExpectMessage(net::Endpoint& ep, uint32_t expected_type) {
  std::optional<net::Message> m = ep.Receive();
  PEM_CHECK(m.has_value(), "protocol: expected a message");
  PEM_CHECK(m->type == expected_type, "protocol: unexpected message type");
  return std::move(*m);
}

namespace {

// Phase 3: the sequential ring-multiply/forward pass over
// pre-computed member ciphertexts.
crypto::PaillierCiphertext ForwardRing(
    ProtocolContext& ctx, const crypto::PaillierPublicKey& pk,
    std::span<Party> parties, std::span<const size_t> ring,
    std::span<const crypto::PaillierCiphertext> shares,
    net::AgentId final_recipient) {
  crypto::PaillierCiphertext running;
  for (size_t pos = 0; pos < ring.size(); ++pos) {
    Party& member = parties[ring[pos]];
    // Each member multiplies its (pre-encrypted) contribution in.
    const crypto::PaillierCiphertext& mine = shares[pos];
    running = (pos == 0) ? mine : pk.Add(running, mine);

    const bool last = pos + 1 == ring.size();
    const net::AgentId next =
        last ? final_recipient : parties[ring[pos + 1]].id();
    if (member.id() == next) continue;  // the recipient already holds it
    net::ByteWriter w;
    WriteCiphertext(w, pk, running);
    ctx.ep(member.id()).Send(next, last ? kMsgRingFinal : kMsgRingHop,
                             w.Take());
    if (!last) {
      // The next member pops the hop message before adding its own
      // share (sequential execution of the ring).
      net::Message m = ExpectMessage(ctx.ep(next), kMsgRingHop);
      net::ByteReader r(m.payload);
      running = ReadCiphertext(r);
    }
  }
  // Deliver to the final recipient's inbox (unless it was the last ring
  // member itself).
  const net::AgentId last_member = parties[ring.back()].id();
  if (last_member != final_recipient) {
    net::Message m = ExpectMessage(ctx.ep(final_recipient), kMsgRingFinal);
    net::ByteReader r(m.payload);
    running = ReadCiphertext(r);
  }
  return running;
}

}  // namespace

AggregationTopology PlanRingTopology(const ProtocolContext& ctx,
                                     std::span<const size_t> members) {
  return AggregationTopology::Build(members, ctx.config.topology, ctx.window);
}

crypto::PaillierCiphertext RingAggregate(
    ProtocolContext& ctx, const crypto::PaillierPublicKey& pk,
    std::span<Party> parties, const AggregationTopology& topology,
    const std::function<int64_t(const Party&)>& value_of,
    net::AgentId final_recipient) {
  const std::function<int64_t(const Party&)> fns[] = {value_of};
  std::vector<crypto::PaillierCiphertext> aggs =
      RingAggregateBatch(ctx, pk, parties, topology, fns, final_recipient);
  return std::move(aggs.front());
}

crypto::PaillierCiphertext RingAggregate(
    ProtocolContext& ctx, const crypto::PaillierPublicKey& pk,
    std::span<Party> parties, std::span<const size_t> ring,
    const std::function<int64_t(const Party&)>& value_of,
    net::AgentId final_recipient) {
  return RingAggregate(ctx, pk, parties, AggregationTopology::Flat(ring),
                       value_of, final_recipient);
}

std::vector<crypto::PaillierCiphertext> RingAggregateBatch(
    ProtocolContext& ctx, const crypto::PaillierPublicKey& pk,
    std::span<Party> parties, const AggregationTopology& topology,
    std::span<const std::function<int64_t(const Party&)>> value_fns,
    net::AgentId final_recipient) {
  PEM_CHECK(topology.num_members() > 0,
            "ring aggregation needs at least one member");
  PEM_CHECK(!value_fns.empty(), "ring aggregation needs a value function");
  const std::vector<size_t> leaf_members = topology.LeafMembers();

  // Phase 1 (prepare, sequential): fix every lane x member encryption's
  // randomness in a deterministic order, so the transcript does not
  // depend on how phase 2 is scheduled.  Leaf rings are contiguous
  // chunks of the member list (topology.h invariant 1), so this order —
  // and with it every later ctx.rng draw — is identical to the flat
  // ring's.
  std::vector<EncryptionSlot> slots;
  slots.reserve(value_fns.size() * leaf_members.size());
  for (const auto& value_of : value_fns) {
    for (size_t member : leaf_members) {
      // Passing the member lets an aggregator that sits in its own ring
      // (Hr1/Hr2/Hb do) take the owner-side CRT fast path.
      slots.push_back(PrepareEncryption(ctx, pk, value_of(parties[member]),
                                        &parties[member]));
    }
  }

  // Phase 2 (compute, policy-driven): the dominant crypto cost — one
  // r^n exponentiation per slot — fans out across workers, fused over
  // every lane and every leaf ring.
  const std::vector<crypto::PaillierCiphertext> shares =
      ComputeEncryptions(ctx, pk, slots);

  // Phase 3 (forward, sequential): per lane, run every ring of every
  // level bottom-up.  Leaf rings aggregate their members' fresh
  // ciphertexts and deliver to their elected leaders; upper rings
  // aggregate the partials their members (the level below's leaders)
  // already hold — no fresh encryption, no RNG draw (topology.h
  // invariant 2) — and the root ring delivers to the final recipient.
  std::vector<crypto::PaillierCiphertext> results;
  results.reserve(value_fns.size());
  const std::vector<TopologyLevel>& levels = topology.levels();
  for (size_t lane = 0; lane < value_fns.size(); ++lane) {
    const std::span<const crypto::PaillierCiphertext> lane_shares(
        shares.data() + lane * leaf_members.size(), leaf_members.size());
    std::vector<crypto::PaillierCiphertext> partials;
    size_t leaf_offset = 0;
    for (size_t l = 0; l < levels.size(); ++l) {
      const bool root = l + 1 == levels.size();
      std::vector<crypto::PaillierCiphertext> next;
      next.reserve(levels[l].rings.size());
      size_t child = 0;  // partial index: level l's rings list level
                         // l-1's leaders contiguously, in ring order
      for (const TopologyRing& ring : levels[l].rings) {
        const size_t m = ring.members.size();
        std::span<const crypto::PaillierCiphertext> ring_shares;
        if (l == 0) {
          ring_shares = lane_shares.subspan(leaf_offset, m);
          leaf_offset += m;
        } else {
          ring_shares = {partials.data() + child, m};
          child += m;
        }
        const net::AgentId sink =
            root ? final_recipient : parties[ring.leader()].id();
        next.push_back(
            ForwardRing(ctx, pk, parties, ring.members, ring_shares, sink));
      }
      partials = std::move(next);
    }
    results.push_back(std::move(partials.front()));
  }
  return results;
}

std::vector<crypto::PaillierCiphertext> RingAggregateBatch(
    ProtocolContext& ctx, const crypto::PaillierPublicKey& pk,
    std::span<Party> parties, std::span<const size_t> ring,
    std::span<const std::function<int64_t(const Party&)>> value_fns,
    net::AgentId final_recipient) {
  return RingAggregateBatch(ctx, pk, parties, AggregationTopology::Flat(ring),
                            value_fns, final_recipient);
}

namespace {

std::vector<uint8_t> EncodePublicKey(const crypto::PaillierPublicKey& pk) {
  net::ByteWriter w;
  w.U32(static_cast<uint32_t>(pk.key_bits()));
  w.Bytes(pk.n().ToBytes());
  return w.Take();
}

}  // namespace

void BroadcastPublicKey(ProtocolContext& ctx, const Party& owner) {
  const crypto::PaillierPublicKey& pk = owner.public_key();
  const bool equivocate =
      ctx.config.cheat.ActiveFor(owner.id(), ctx.window) &&
      ctx.config.cheat.cheat == CheatClass::kKeyEquivocation;
  if (!equivocate) {
    ctx.ep(owner.id()).Send(net::kBroadcast, kMsgPublicKey,
                            EncodePublicKey(pk));
  } else {
    // Equivocation cheat: the announcer unicasts instead of
    // broadcasting and hands the LAST peer a doctored modulus (n ^ 2 —
    // same byte width, so per-copy wire bytes match the broadcast
    // exactly and the traffic ledger cannot tell the paths apart).
    net::AgentId last = -1;
    for (net::AgentId a = 0; a < ctx.num_agents(); ++a) {
      if (a != owner.id()) last = a;
    }
    crypto::BigInt doctored_n = pk.n();
    std::vector<uint8_t> n_bytes = doctored_n.ToBytes();
    n_bytes.back() ^= 2;
    doctored_n = crypto::BigInt::FromBytes(n_bytes);
    const crypto::PaillierPublicKey forged(doctored_n, pk.key_bits());
    for (net::AgentId a = 0; a < ctx.num_agents(); ++a) {
      if (a == owner.id()) continue;
      ctx.ep(owner.id()).Send(
          a, kMsgPublicKey, EncodePublicKey(a == last ? forged : pk));
    }
  }
  // Peers drain the announcement; when a directory is attached each
  // copy is registered, and two different keys from the same announcer
  // inside one epoch surface as a named protocol fault.
  for (net::AgentId a = 0; a < ctx.num_agents(); ++a) {
    if (a == owner.id()) continue;
    net::Message m = ExpectMessage(ctx.ep(a), kMsgPublicKey);
    if (ctx.directory == nullptr) continue;
    net::ByteReader r(m.payload);
    const int key_bits = static_cast<int>(r.U32());
    const crypto::PaillierPublicKey announced(
        crypto::BigInt::FromBytes(r.Bytes()), key_bits);
    const pem::Status st = ctx.directory->Register(owner.id(), announced);
    if (!st.ok()) {
      throw ProtocolError(ProtocolFault{
          owner.id(), CheatClass::kKeyEquivocation, ctx.window,
          st.error().message()});
    }
  }
}

}  // namespace pem::protocol
