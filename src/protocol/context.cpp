#include "protocol/context.h"

#include "util/error.h"
#include "util/parallel.h"

namespace pem::protocol {

Coalitions FormCoalitions(std::span<const Party> parties) {
  Coalitions c;
  for (size_t i = 0; i < parties.size(); ++i) {
    switch (parties[i].role()) {
      case grid::Role::kSeller: c.sellers.push_back(i); break;
      case grid::Role::kBuyer: c.buyers.push_back(i); break;
      case grid::Role::kOffMarket: break;
    }
  }
  return c;
}

size_t PickRandomIndex(std::span<const size_t> candidates, crypto::Rng& rng) {
  PEM_CHECK(!candidates.empty(), "cannot pick from empty candidate set");
  const crypto::BigInt bound(static_cast<int64_t>(candidates.size()));
  const int64_t i = crypto::BigInt::RandomBelow(bound, rng).ToInt64();
  return candidates[static_cast<size_t>(i)];
}

void WriteCiphertext(net::ByteWriter& w, const crypto::PaillierPublicKey& pk,
                     const crypto::PaillierCiphertext& ct) {
  w.Bytes(ct.value.ToBytesPadded(pk.ciphertext_bytes()));
}

crypto::PaillierCiphertext ReadCiphertext(net::ByteReader& r) {
  return crypto::PaillierCiphertext{crypto::BigInt::FromBytes(r.Bytes())};
}

crypto::PaillierCiphertext ContextEncryptSigned(
    ProtocolContext& ctx, const crypto::PaillierPublicKey& pk, int64_t v) {
  if (ctx.pools != nullptr) {
    return ctx.pools->PoolFor(pk).EncryptSigned(v, ctx.rng);
  }
  return pk.EncryptSigned(v, ctx.rng);
}

net::Message ExpectMessage(net::MessageBus& bus, net::AgentId agent,
                           uint32_t expected_type) {
  std::optional<net::Message> m = bus.Receive(agent);
  PEM_CHECK(m.has_value(), "protocol: expected a message");
  PEM_CHECK(m->type == expected_type, "protocol: unexpected message type");
  return std::move(*m);
}

crypto::PaillierCiphertext RingAggregate(
    ProtocolContext& ctx, const crypto::PaillierPublicKey& pk,
    std::span<Party> parties, std::span<const size_t> ring,
    const std::function<int64_t(const Party&)>& value_of,
    net::AgentId final_recipient) {
  PEM_CHECK(!ring.empty(), "ring aggregation needs at least one member");

  // The per-member encryptions are independent of the running product,
  // so with parallel_threads > 1 we compute them concurrently first —
  // exactly what the paper's one-container-per-agent deployment does.
  // Per-member seeds are drawn sequentially so a fixed context seed
  // still yields a deterministic transcript.
  std::vector<crypto::PaillierCiphertext> shares(ring.size());
  if (ctx.config.parallel_threads > 1 && ring.size() > 1) {
    std::vector<uint64_t> seeds(ring.size());
    for (uint64_t& s : seeds) s = ctx.rng.NextU64();
    ParallelFor(0, ring.size(),
                static_cast<unsigned>(ctx.config.parallel_threads),
                [&](size_t i) {
                  crypto::DeterministicRng worker_rng(seeds[i]);
                  shares[i] = pk.EncryptSigned(value_of(parties[ring[i]]),
                                               worker_rng);
                });
  } else {
    for (size_t i = 0; i < ring.size(); ++i) {
      shares[i] = ContextEncryptSigned(ctx, pk, value_of(parties[ring[i]]));
    }
  }

  crypto::PaillierCiphertext running;
  for (size_t pos = 0; pos < ring.size(); ++pos) {
    Party& member = parties[ring[pos]];
    // Each member multiplies its (pre-encrypted) contribution in.
    const crypto::PaillierCiphertext& mine = shares[pos];
    running = (pos == 0) ? mine : pk.Add(running, mine);

    const bool last = pos + 1 == ring.size();
    const net::AgentId next =
        last ? final_recipient : parties[ring[pos + 1]].id();
    if (member.id() == next) continue;  // the recipient already holds it
    net::ByteWriter w;
    WriteCiphertext(w, pk, running);
    ctx.bus.Send({member.id(), next, last ? kMsgRingFinal : kMsgRingHop,
                  w.Take()});
    if (!last) {
      // The next member pops the hop message before adding its own
      // share (sequential execution of the ring).
      net::Message m = ExpectMessage(ctx.bus, next, kMsgRingHop);
      net::ByteReader r(m.payload);
      running = ReadCiphertext(r);
    }
  }
  // Deliver to the final recipient's inbox (unless it was the last ring
  // member itself).
  const net::AgentId last_member = parties[ring.back()].id();
  if (last_member != final_recipient) {
    net::Message m = ExpectMessage(ctx.bus, final_recipient, kMsgRingFinal);
    net::ByteReader r(m.payload);
    running = ReadCiphertext(r);
  }
  return running;
}

void BroadcastPublicKey(ProtocolContext& ctx, const Party& owner) {
  net::ByteWriter w;
  const crypto::PaillierPublicKey& pk = owner.public_key();
  w.U32(static_cast<uint32_t>(pk.key_bits()));
  w.Bytes(pk.n().ToBytes());
  ctx.bus.Send({owner.id(), net::kBroadcast, kMsgPublicKey, w.Take()});
  // Peers drain the broadcast (content is re-derivable from their own
  // stored copy of the key directory; we model the traffic).
  for (net::AgentId a = 0; a < ctx.bus.num_agents(); ++a) {
    if (a == owner.id()) continue;
    ExpectMessage(ctx.bus, a, kMsgPublicKey);
  }
}

}  // namespace pem::protocol
