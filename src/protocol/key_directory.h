// Public-key directory (Protocol 1, lines 1-2).
//
// "Each agent generates a key pair and shares its public key in Φ."
// The directory is each agent's local view of those announcements:
// append-only, first-write-wins, with a consistency check against
// equivocation (an agent announcing two different keys is a protocol
// violation worth surfacing, not silently overwriting).
//
// Dynamic membership adds an epoch axis: the churn driver bumps the
// epoch whenever the roster changes (a join or a leave between
// windows).  First-write-wins holds PER EPOCH — within one epoch a
// second, different key for the same agent is equivocation, while an
// agent that left (Retire) and rejoins in a later epoch may announce a
// fresh key without tripping the check.  Bindings persist across
// epochs until retired or re-announced, so steady-state windows pay no
// re-registration traffic.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "crypto/paillier.h"
#include "net/message.h"

namespace pem::protocol {

class KeyDirectory {
 public:
  // Registers `key` for `agent` in the current epoch.  Returns an
  // error if the agent already registered a *different* key in THIS
  // epoch (equivocation); re-registering the identical key is a no-op,
  // and a different key carried over from an earlier epoch is
  // superseded (the agent re-keyed across a membership change).
  pem::Status Register(net::AgentId agent, const crypto::PaillierPublicKey& key);

  // Returns the registered key, or kNotFound.
  pem::Result<crypto::PaillierPublicKey> Lookup(net::AgentId agent) const;

  bool Has(net::AgentId agent) const;
  size_t size() const { return entries_.size(); }

  // --- membership churn ------------------------------------------------

  // Enters the next epoch: the first-write-wins window resets, existing
  // bindings carry over.  Called once per roster change by the churn
  // driver.
  void AdvanceEpoch() { ++epoch_; }
  uint64_t epoch() const { return epoch_; }

  // Drops `agent`'s binding (it left the community).  Idempotent; a
  // later Register — in any epoch — starts fresh.
  void Retire(net::AgentId agent);

 private:
  struct Entry {
    net::AgentId agent;
    crypto::PaillierPublicKey key;
    uint64_t epoch = 0;  // epoch of the binding's announcement
  };
  const Entry* Find(net::AgentId agent) const;
  Entry* Find(net::AgentId agent);

  uint64_t epoch_ = 0;
  std::vector<Entry> entries_;
};

}  // namespace pem::protocol
