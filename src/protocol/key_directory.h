// Public-key directory (Protocol 1, lines 1-2).
//
// "Each agent generates a key pair and shares its public key in Φ."
// The directory is each agent's local view of those announcements:
// append-only, first-write-wins, with a consistency check against
// equivocation (an agent announcing two different keys is a protocol
// violation worth surfacing, not silently overwriting).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "crypto/paillier.h"
#include "net/message.h"

namespace pem::protocol {

class KeyDirectory {
 public:
  // Registers `key` for `agent`.  Returns an error if the agent
  // already registered a *different* key (equivocation); re-registering
  // the identical key is a no-op.
  pem::Status Register(net::AgentId agent, const crypto::PaillierPublicKey& key);

  // Returns the registered key, or kNotFound.
  pem::Result<crypto::PaillierPublicKey> Lookup(net::AgentId agent) const;

  bool Has(net::AgentId agent) const;
  size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    net::AgentId agent;
    crypto::PaillierPublicKey key;
  };
  const Entry* Find(net::AgentId agent) const;

  std::vector<Entry> entries_;
};

}  // namespace pem::protocol
