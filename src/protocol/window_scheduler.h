// Batched multi-window scheduling (ROADMAP: the throughput lever for
// heavy-traffic serving, where many windows are in flight at once).
//
// The protocol is interactive: mid-window decryptions drive control
// flow, and consecutive windows are coupled through the shared RNG
// cursor, the cached keys, and the churn/election schedule.  So the
// scheduler must NOT reorder any randomness draw or any send — the
// wire transcript of every window has to stay bit-identical to the
// serial loop's (the serial-vs-batched parity wall asserts prices,
// trades, per-window ledger bytes, AND rng cursors).  What CAN be
// fused is the compute work the prepare/compute/forward phasing made
// explicit, and the scheduler exploits it differently per engine:
//
//  * In-process engines: every compute phase of the in-flight windows
//    fans out over ONE persistent worker team instead of forking and
//    joining a fresh pem::ParallelFor pool per call — the same
//    amortization RingAggregateBatch applies to Private Pricing's two
//    sums, lifted from "two lanes of one aggregation" to "every
//    compute phase of every in-flight window".  Randomness stays
//    phase-1-sequential and sends stay phase-3-sequential, so the
//    transcript cannot move.
//
//  * Forked backends: the parent pipelines up to windows_in_flight
//    kCtlCmdRun commands per child and collects the reports as they
//    complete, keyed by the window id each report now echoes.  Each
//    child still executes its windows strictly in order (its per-pair
//    frame streams — and therefore every transcript byte — are
//    untouched), but child i's window w+1 compute overlaps child j's
//    window w tail instead of idling behind the slowest straggler —
//    the idle-time overlap of the paper's Fig. 5 runtime story.
//
// windows_in_flight = 1 degenerates to exactly today's serial loop in
// both modes (no team is spawned, one command is outstanding).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "protocol/agent_driver.h"

namespace pem::protocol {

class WindowScheduler {
 public:
  struct Options {
    // Upper bound on sampled windows in flight; >= 1.
    int windows_in_flight = 1;
    // Compute workers for the fused fan-outs (ExecutionPolicy::
    // worker_count() in the drivers).  <= 1 means compute stays serial
    // and no team is spawned.
    unsigned threads = 1;
  };

  explicit WindowScheduler(Options opts);
  ~WindowScheduler();

  WindowScheduler(const WindowScheduler&) = delete;
  WindowScheduler& operator=(const WindowScheduler&) = delete;

  int windows_in_flight() const { return windows_in_flight_; }
  unsigned threads() const { return threads_; }

  // True when the scheduler actually fuses compute phases (batching
  // requested AND parallel compute requested).  Call sites route their
  // fan-outs through ParallelFor() below exactly when this holds;
  // otherwise they keep the per-call pem::ParallelFor pool, so the
  // degenerate configuration is bit-for-bit today's engine.
  bool fused() const { return windows_in_flight_ > 1 && threads_ > 1; }

  // pem::ParallelFor's contract over the persistent team: invokes
  // fn(i) for i in [begin, end) across the workers, blocks until all
  // iterations complete, and rethrows the first exception a worker
  // captured (remaining iterations are abandoned).  The team survives
  // a throwing job — the next call runs on the same workers — so one
  // window's failure cannot corrupt its in-flight siblings.  Not
  // reentrant: fn must not call back into the same scheduler.  With no
  // team (fused() false) the loop runs serially on the caller.
  void ParallelFor(size_t begin, size_t end,
                   const std::function<void(size_t)>& fn);

  // Groups the sampled windows into consecutive batches of at most
  // windows_in_flight, preserving order.  The drivers dispatch one
  // batch at a time so battery/churn/rng evolution between batches
  // stays identical to the serial loop's.
  static std::vector<std::vector<int>> PlanBatches(
      std::span<const int> sampled, int windows_in_flight);

  // Forked-backend batch: pipelines one kCtlCmdRun per window to every
  // child, then collects and cross-checks the reports window by window
  // (CollectWindowReportsBatch), stamping each window's parent-side
  // completion time.  Returns one CollectedWindow per entry of
  // `windows`, in order.  The per-window parent_seconds spans dispatch
  // of the WHOLE batch to that window's last report, so overlapping
  // windows share wall clock instead of double-counting it — callers
  // charge a batch's elapsed time once (the max), not the sum.
  std::vector<CollectedWindow> RunForkedBatch(net::AgentSupervisor& transport,
                                              std::span<const int> windows);

 private:
  void WorkerLoop(unsigned worker);

  int windows_in_flight_ = 1;
  unsigned threads_ = 1;

  // Persistent team state.  A job is published under mu_ by bumping
  // generation_; workers stride over [job_begin_, job_end_) and the
  // last one out wakes the caller.  The first exception is captured
  // under mu_ and rethrown on the calling thread, like
  // pem::ParallelFor.
  std::vector<std::thread> team_;
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  uint64_t generation_ = 0;
  bool stopping_ = false;
  size_t job_begin_ = 0;
  size_t job_end_ = 0;
  const std::function<void(size_t)>* job_fn_ = nullptr;
  unsigned active_workers_ = 0;
  std::exception_ptr first_error_;
  std::atomic<bool> failed_{false};
};

}  // namespace pem::protocol
