#include "protocol/distribution.h"

#include <cmath>

#include "protocol/coin_flip.h"
#include "protocol/window_scheduler.h"
#include "util/error.h"
#include "util/fixed_point.h"
#include "util/parallel.h"

namespace pem::protocol {
namespace {

// Shared core of both market cases.
//
// ratio_members: the coalition whose shares define the allocation
// ratios (buyers in the general market, sellers in the extreme one).
// The aggregator is drawn from the counterpart coalition.  Returns the
// per-member ratios share_m / total, indexed like ratio_members.
std::vector<double> ComputeRatios(ProtocolContext& ctx,
                                  std::span<Party> parties,
                                  std::span<const size_t> ratio_members,
                                  std::span<const size_t> counterpart,
                                  size_t aggregator_index) {
  Party& aggregator = parties[aggregator_index];
  aggregator.EnsureKeys(ctx.config.key_bits, ctx.rng);
  BroadcastPublicKey(ctx, aggregator);
  const crypto::PaillierPublicKey& pk = aggregator.public_key();

  // Lines 3-5: ring-aggregate the encrypted coalition total (shaped by
  // the configured aggregation topology); the last member broadcasts
  // it within the coalition.
  auto share_of = [](const Party& p) { return std::abs(p.net_raw()); };
  const size_t last = ratio_members.back();
  const crypto::PaillierCiphertext enc_total =
      RingAggregate(ctx, pk, parties, PlanRingTopology(ctx, ratio_members),
                    share_of, parties[last].id());
  {
    net::ByteWriter w;
    WriteCiphertext(w, pk, enc_total);
    const std::vector<uint8_t> payload = w.Take();
    for (size_t m : ratio_members) {
      if (m == last) continue;
      ctx.ep(parties[last].id()).Send(parties[m].id(), kMsgEncTotal, payload);
      (void)ExpectMessage(ctx.ep(parties[m].id()), kMsgEncTotal);
    }
  }

  // Lines 6-7: each member sends Enc(total * K / share) to the
  // aggregator.  K/share is rounded to an integer scalar; the scale K
  // keeps the relative rounding error below ~1e-5 (see DESIGN.md §6).
  // Phased like the ring aggregations: the scalars and rerandomization
  // randomness are fixed sequentially, the per-member exponentiations
  // (ScalarMul + rerandomize — each member's dominant cost) fan out
  // across compute workers, and the sends stay sequential so the
  // transcript is policy-invariant.
  const int64_t big_k = ctx.config.ratio_scale;
  std::vector<crypto::BigInt> scalars;
  std::vector<EncryptionSlot> rerand_slots;
  scalars.reserve(ratio_members.size());
  rerand_slots.reserve(ratio_members.size());
  for (size_t m : ratio_members) {
    const int64_t share = share_of(parties[m]);
    PEM_CHECK(share > 0, "coalition member with zero share");
    scalars.emplace_back(RoundDiv(big_k, share));
    // Rerandomization is an Enc(0) multiplied in; planning it as a
    // regular encryption slot lets it draw from the idle-time
    // randomness pool like every ring encryption does.
    rerand_slots.push_back(PrepareEncryption(ctx, pk, 0, &parties[m]));
  }
  std::vector<crypto::PaillierCiphertext> ratio_cts(ratio_members.size());
  const auto compute_ratio = [&](size_t i) {
    // Enc(0) hides the scalar from the wire; one fused fan-out covers
    // both exponentiations per member.
    ratio_cts[i] = pk.Add(pk.ScalarMul(enc_total, scalars[i]),
                          ComputeEncryption(pk, rerand_slots[i]));
  };
  if (ctx.scheduler != nullptr && ctx.scheduler->fused()) {
    // Batched scheduling: reuse the scheduler's persistent team (see
    // ComputeEncryptions) — randomness was fixed above, sends follow
    // sequentially, so the transcript cannot move.
    ctx.scheduler->ParallelFor(0, ratio_members.size(), compute_ratio);
  } else {
    ParallelFor(0, ratio_members.size(), ctx.policy.worker_count(),
                compute_ratio);
  }
  for (size_t i = 0; i < ratio_members.size(); ++i) {
    const size_t m = ratio_members[i];
    net::ByteWriter w;
    w.U32(static_cast<uint32_t>(m));
    w.I64(big_k);
    WriteCiphertext(w, pk, ratio_cts[i]);
    ctx.ep(parties[m].id()).Send(aggregator.id(), kMsgRatioCipher, w.Take());
  }

  // Line 8: the aggregator decrypts each total/share ratio.  The
  // decrypted value total_raw * K / share_raw can exceed 2^63, so it is
  // read as a BigInt and converted to double.
  std::vector<double> ratios(ratio_members.size(), 0.0);
  for (size_t i = 0; i < ratio_members.size(); ++i) {
    net::Message msg = ExpectMessage(ctx.ep(aggregator.id()), kMsgRatioCipher);
    net::ByteReader r(msg.payload);
    const uint32_t member_index = r.U32();
    const int64_t k_received = r.I64();
    const crypto::PaillierCiphertext ct = ReadCiphertext(r);
    const double v = aggregator.private_key().Decrypt(ct).ToDouble();
    PEM_CHECK(v > 0.0, "ratio ciphertext decrypted to non-positive value");
    const double ratio = static_cast<double>(k_received) / v;  // share/total
    // Map back to the ratio_members slot.
    bool found = false;
    for (size_t j = 0; j < ratio_members.size(); ++j) {
      if (ratio_members[j] == member_index) {
        ratios[j] = ratio;
        found = true;
        break;
      }
    }
    PEM_CHECK(found, "ratio message from unknown coalition member");
  }

  // Broadcast the ratio vector within the counterpart coalition (the
  // coalition that computes the pairwise amounts from it).
  net::ByteWriter w;
  w.U32(static_cast<uint32_t>(ratios.size()));
  for (size_t j = 0; j < ratios.size(); ++j) {
    w.U32(static_cast<uint32_t>(ratio_members[j]));
    w.F64(ratios[j]);
  }
  const std::vector<uint8_t> payload = w.Take();
  for (size_t c : counterpart) {
    if (c == aggregator_index) continue;
    ctx.ep(parties[aggregator_index].id())
        .Send(parties[c].id(), kMsgRatioBroadcast, payload);
    (void)ExpectMessage(ctx.ep(parties[c].id()), kMsgRatioBroadcast);
  }
  return ratios;
}

}  // namespace

DistributionResult RunPrivateDistribution(ProtocolContext& ctx,
                                          std::span<Party> parties,
                                          const Coalitions& coalitions,
                                          bool general_market, double price) {
  PEM_CHECK(!coalitions.sellers.empty() && !coalitions.buyers.empty(),
            "distribution requires both coalitions");
  PEM_CHECK(price > 0.0, "price must be positive");

  DistributionResult result;
  if (general_market) {
    // Demand ratios |sn_j| / E_b, revealed only to the seller coalition.
    const size_t hs = SelectAgent(ctx, parties, coalitions.sellers);
    result.aggregator_index = hs;
    const std::vector<double> ratios = ComputeRatios(
        ctx, parties, coalitions.buyers, coalitions.sellers, hs);

    // Lines 9-13: every seller routes e_ij = ratio_j * sn_i to every
    // buyer; the buyer pays m_ji = p * e_ij.
    for (size_t si : coalitions.sellers) {
      const double sn_i = parties[si].net_kwh();
      for (size_t j = 0; j < coalitions.buyers.size(); ++j) {
        const size_t bj = coalitions.buyers[j];
        const double e_ij = ratios[j] * sn_i;
        net::ByteWriter we;
        we.U32(static_cast<uint32_t>(si));
        we.F64(e_ij);
        ctx.ep(parties[si].id())
            .Send(parties[bj].id(), kMsgEnergyTransfer, we.Take());
        (void)ExpectMessage(ctx.ep(parties[bj].id()), kMsgEnergyTransfer);

        const double m_ji = price * e_ij;
        net::ByteWriter wp;
        wp.U32(static_cast<uint32_t>(bj));
        wp.F64(m_ji);
        ctx.ep(parties[bj].id()).Send(parties[si].id(), kMsgPayment,
                                      wp.Take());
        (void)ExpectMessage(ctx.ep(parties[si].id()), kMsgPayment);

        result.trades.push_back(Trade{si, bj, e_ij, m_ji});
      }
    }
  } else {
    // Extreme market: supply ratios sn_i / E_s, revealed only to the
    // buyer coalition; buyers compute e_ij and pay, sellers route.
    const size_t hb = SelectAgent(ctx, parties, coalitions.buyers);
    result.aggregator_index = hb;
    const std::vector<double> ratios = ComputeRatios(
        ctx, parties, coalitions.sellers, coalitions.buyers, hb);

    for (size_t bj : coalitions.buyers) {
      const double demand_j = -parties[bj].net_kwh();
      for (size_t i = 0; i < coalitions.sellers.size(); ++i) {
        const size_t si = coalitions.sellers[i];
        const double e_ij = ratios[i] * demand_j;
        const double m_ji = price * e_ij;
        net::ByteWriter wp;
        wp.U32(static_cast<uint32_t>(bj));
        wp.F64(m_ji);
        ctx.ep(parties[bj].id()).Send(parties[si].id(), kMsgPayment,
                                      wp.Take());
        (void)ExpectMessage(ctx.ep(parties[si].id()), kMsgPayment);

        net::ByteWriter we;
        we.U32(static_cast<uint32_t>(si));
        we.F64(e_ij);
        ctx.ep(parties[si].id())
            .Send(parties[bj].id(), kMsgEnergyTransfer, we.Take());
        (void)ExpectMessage(ctx.ep(parties[bj].id()), kMsgEnergyTransfer);

        result.trades.push_back(Trade{si, bj, e_ij, m_ji});
      }
    }
  }
  return result;
}

}  // namespace pem::protocol
