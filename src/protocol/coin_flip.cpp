#include "protocol/coin_flip.h"

#include <cstring>

#include "crypto/commitment.h"
#include "util/error.h"

namespace pem::protocol {

uint64_t JointRandomU64(ProtocolContext& ctx, std::span<Party> parties,
                        std::span<const size_t> participants) {
  PEM_CHECK(!participants.empty(), "joint draw needs participants");
  const size_t m = participants.size();
  if (m == 1) return ctx.rng.NextU64();  // nothing to agree on

  // --- Phase 1: everyone samples a share and broadcasts a commitment.
  std::vector<uint64_t> shares(m);
  std::vector<crypto::CommitmentOpening> openings(m);
  std::vector<crypto::Commitment> commitments(m);
  for (size_t i = 0; i < m; ++i) {
    shares[i] = ctx.rng.NextU64();
    openings[i] =
        crypto::MakeInt64Opening(static_cast<int64_t>(shares[i]), ctx.rng);
    commitments[i] = crypto::Commit(openings[i].value, openings[i].blinder);
  }
  for (size_t i = 0; i < m; ++i) {
    net::ByteWriter w;
    w.U32(static_cast<uint32_t>(participants[i]));
    w.Bytes(commitments[i].digest.bytes);
    const std::vector<uint8_t> payload = w.Take();
    for (size_t j = 0; j < m; ++j) {
      if (j == i) continue;
      ctx.ep(parties[participants[i]].id())
          .Send(parties[participants[j]].id(), kMsgCoinCommit, payload);
    }
  }
  // Receivers record every peer commitment (drain inboxes).
  std::vector<std::vector<crypto::Commitment>> seen(
      m, std::vector<crypto::Commitment>(m));
  for (size_t j = 0; j < m; ++j) {
    seen[j][j] = commitments[j];
    for (size_t k = 0; k + 1 < m; ++k) {
      net::Message msg =
          ExpectMessage(ctx.ep(parties[participants[j]].id()), kMsgCoinCommit);
      net::ByteReader r(msg.payload);
      const uint32_t from_index = r.U32();
      const std::vector<uint8_t> digest = r.Bytes();
      PEM_CHECK(digest.size() == 32, "bad commitment digest");
      for (size_t i = 0; i < m; ++i) {
        if (participants[i] == from_index) {
          std::memcpy(seen[j][i].digest.bytes.data(), digest.data(), 32);
        }
      }
    }
  }

  // --- Phase 2: reveal and verify everywhere.
  for (size_t i = 0; i < m; ++i) {
    net::ByteWriter w;
    w.U32(static_cast<uint32_t>(participants[i]));
    w.U64(shares[i]);
    w.Bytes(openings[i].blinder);
    const std::vector<uint8_t> payload = w.Take();
    for (size_t j = 0; j < m; ++j) {
      if (j == i) continue;
      ctx.ep(parties[participants[i]].id())
          .Send(parties[participants[j]].id(), kMsgCoinReveal, payload);
    }
  }
  uint64_t combined = 0;
  for (size_t i = 0; i < m; ++i) combined ^= shares[i];
  for (size_t j = 0; j < m; ++j) {
    for (size_t k = 0; k + 1 < m; ++k) {
      net::Message msg =
          ExpectMessage(ctx.ep(parties[participants[j]].id()), kMsgCoinReveal);
      net::ByteReader r(msg.payload);
      const uint32_t from_index = r.U32();
      const uint64_t share = r.U64();
      const std::vector<uint8_t> blinder = r.Bytes();
      PEM_CHECK(blinder.size() == 32, "bad reveal blinder");
      crypto::CommitmentOpening opening;
      opening.value.resize(8);
      std::memcpy(opening.value.data(), &share, 8);
      std::memcpy(opening.blinder.data(), blinder.data(), 32);
      for (size_t i = 0; i < m; ++i) {
        if (participants[i] != from_index) continue;
        PEM_CHECK(crypto::VerifyOpening(seen[j][i], opening),
                  "coin-flip reveal does not match commitment");
      }
    }
  }
  return combined;
}

size_t SelectAgent(ProtocolContext& ctx, std::span<Party> parties,
                   std::span<const size_t> candidates) {
  PEM_CHECK(!candidates.empty(), "cannot select from empty candidate set");
  if (!ctx.config.collusion_resistant_selection || candidates.size() == 1) {
    return PickRandomIndex(candidates, ctx.rng);
  }
  const uint64_t joint = JointRandomU64(ctx, parties, candidates);
  return candidates[joint % candidates.size()];
}

}  // namespace pem::protocol
