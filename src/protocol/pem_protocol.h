// Private Energy Market (Protocol 1): one full trading window.
//
// Orchestrates coalition formation, Private Market Evaluation,
// Private Pricing (general market) / floor pricing (extreme market),
// and Private Distribution, then settles each agent's residual with
// the main grid.  The output mirrors market::MarketOutcome so tests
// can assert the cryptographic path computes exactly the plaintext
// clearing result.
#pragma once

#include <span>

#include "market/clearing.h"
#include "protocol/audit.h"
#include "protocol/context.h"
#include "protocol/distribution.h"

namespace pem::protocol {

struct PemWindowResult {
  market::MarketType type = market::MarketType::kNoMarket;
  double price = 0.0;
  double supply_total = 0.0;  // derived from the public trades
  double demand_total = 0.0;
  std::vector<Trade> trades;

  // Per-agent settlement (indexed like the parties span).
  std::vector<double> market_purchase;
  std::vector<double> market_sale;
  std::vector<double> money_paid;
  std::vector<double> money_received;
  double buyer_total_cost = 0.0;
  double grid_import_kwh = 0.0;
  double grid_export_kwh = 0.0;

  // Window-level measurements (Figs. 5a-c, Table I).
  double runtime_seconds = 0.0;
  uint64_t bus_bytes = 0;
  // ctx.rng.Cursor() after the window's last draw (0 for
  // non-deterministic rngs): the serial-vs-batched and cross-backend
  // parity walls compare these to prove no schedule reorders a draw.
  uint64_t rng_cursor = 0;

  // §VI audit round result: whether this window was audited, by whom,
  // and every detected cheat (the cheaters were excluded before the
  // market ran).
  AuditOutcome audit;

  double GridInteraction() const { return grid_import_kwh + grid_export_kwh; }
};

// Runs one window.  Parties must have BeginWindow() applied for this
// window already.  Reads the per-endpoint counters around the run, so
// bus_bytes is this window's traffic only.  `window` is the day index
// of the window (drives the audit domain separation and the cheat
// plan's trigger); single-window callers may leave it 0.
PemWindowResult RunPemWindow(ProtocolContext& ctx, std::span<Party> parties,
                             int window = 0);

}  // namespace pem::protocol
