#include "protocol/window_scheduler.h"

#include <algorithm>
#include <cstddef>

#include "net/agent_supervisor.h"
#include "net/serialize.h"
#include "util/error.h"
#include "util/stopwatch.h"

namespace pem::protocol {

WindowScheduler::WindowScheduler(Options opts)
    : windows_in_flight_(opts.windows_in_flight),
      threads_(opts.threads == 0 ? 1 : opts.threads) {
  PEM_CHECK(windows_in_flight_ >= 1,
            "window scheduler: windows_in_flight must be >= 1");
  if (!fused()) return;
  team_.reserve(threads_);
  try {
    for (unsigned w = 0; w < threads_; ++w) {
      team_.emplace_back([this, w] { WorkerLoop(w); });
    }
  } catch (...) {
    // std::thread construction can throw; stop and join what started
    // rather than std::terminate-ing past joinable threads.
    {
      const std::lock_guard<std::mutex> lock(mu_);
      stopping_ = true;
    }
    cv_work_.notify_all();
    for (std::thread& t : team_) t.join();
    throw;
  }
}

WindowScheduler::~WindowScheduler() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& t : team_) t.join();
}

void WindowScheduler::WorkerLoop(unsigned worker) {
  uint64_t seen = 0;
  for (;;) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_work_.wait(lock, [&] { return stopping_ || generation_ != seen; });
    if (stopping_) return;
    seen = generation_;
    const size_t begin = job_begin_;
    const size_t end = job_end_;
    const std::function<void(size_t)>* fn = job_fn_;
    lock.unlock();
    // Strided assignment, like pem::ParallelFor: contiguous chunks
    // would serialize when the per-iteration cost is skewed.
    for (size_t i = begin + worker; i < end; i += threads_) {
      if (failed_.load(std::memory_order_relaxed)) break;
      try {
        (*fn)(i);
      } catch (...) {
        {
          const std::lock_guard<std::mutex> elock(mu_);
          if (!first_error_) first_error_ = std::current_exception();
        }
        failed_.store(true, std::memory_order_relaxed);
        break;
      }
    }
    lock.lock();
    if (--active_workers_ == 0) cv_done_.notify_one();
  }
}

void WindowScheduler::ParallelFor(size_t begin, size_t end,
                                  const std::function<void(size_t)>& fn) {
  if (end <= begin) return;
  if (team_.empty() || end - begin == 1) {
    for (size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  std::exception_ptr err;
  {
    std::unique_lock<std::mutex> lock(mu_);
    PEM_CHECK(active_workers_ == 0,
              "window scheduler: ParallelFor is not reentrant");
    job_begin_ = begin;
    job_end_ = end;
    job_fn_ = &fn;
    first_error_ = nullptr;
    failed_.store(false, std::memory_order_relaxed);
    active_workers_ = threads_;
    ++generation_;
    cv_work_.notify_all();
    cv_done_.wait(lock, [&] { return active_workers_ == 0; });
    err = first_error_;
    first_error_ = nullptr;
    job_fn_ = nullptr;
  }
  if (err) std::rethrow_exception(err);
}

std::vector<std::vector<int>> WindowScheduler::PlanBatches(
    std::span<const int> sampled, int windows_in_flight) {
  PEM_CHECK(windows_in_flight >= 1,
            "window scheduler: windows_in_flight must be >= 1");
  std::vector<std::vector<int>> batches;
  const size_t width = static_cast<size_t>(windows_in_flight);
  for (size_t i = 0; i < sampled.size(); i += width) {
    const size_t end = std::min(sampled.size(), i + width);
    batches.emplace_back(sampled.begin() + static_cast<ptrdiff_t>(i),
                         sampled.begin() + static_cast<ptrdiff_t>(end));
  }
  return batches;
}

std::vector<CollectedWindow> WindowScheduler::RunForkedBatch(
    net::AgentSupervisor& transport, std::span<const int> windows) {
  PEM_CHECK(!windows.empty(), "window scheduler: empty forked batch");
  PEM_CHECK(windows.size() <= static_cast<size_t>(windows_in_flight_),
            "window scheduler: batch exceeds windows_in_flight");
  const int n = transport.num_agents();
  std::vector<net::TrafficStats> stats_before;
  stats_before.reserve(static_cast<size_t>(n));
  for (net::AgentId a = 0; a < n; ++a) {
    stats_before.push_back(transport.stats(a));
  }
  const Stopwatch timer;
  // Pipelined dispatch: every child gets the whole batch up front and
  // works through it in order; the parent only blocks in collection.
  for (const int w : windows) {
    net::ByteWriter cmd;
    cmd.U32(static_cast<uint32_t>(w));
    transport.CommandAll(net::kCtlCmdRun, cmd.Take());
  }
  return CollectWindowReportsBatch(transport, stats_before, windows, &timer);
}

}  // namespace pem::protocol
