// Per-process protocol driver: ONE agent's side of a trading window.
//
// In the in-process backends a single thread simulates every agent.
// Under net::ProcessTransport each forked child owns exactly one agent:
// it replays the deterministic protocol script (everything public —
// coalition formation, ring orders, elections — plus the shadow of the
// other agents' steps, all derived from the fork-time state snapshot
// and the shared seeded RNG), while its own agent's sends and receives
// are real kernel socketpair I/O, byte-verified against the script (see
// net/process_transport.h).  The SAME RunPemWindow code path therefore
// drives all four backends; what AgentDriver adds is the per-child
// command loop, the per-window report, and the parent-side collector
// that cross-checks every child's view of the window.
//
// Determinism contract: the context RNG must be a seeded deterministic
// generator (RunSimulation uses DeterministicRng) — with a system RNG
// the children's scripts would diverge at the first random draw, and
// the byte-verification in the child transport would fail loudly.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "net/message.h"
#include "net/transport.h"
#include "protocol/pem_protocol.h"
#include "util/stopwatch.h"

namespace pem::net {
// Supervision control plane (net/agent_supervisor.h).  Only referenced
// through references here, so the protocol layer's public surface
// depends on no concrete transport backend — pem_lint's layering rule
// keeps it that way; the .cpp includes the real header.
class AgentSupervisor;
class ControlChannel;
}  // namespace pem::net

namespace pem::protocol {

// One agent's view of a finished window, shipped to the parent over the
// control channel.  The protocol makes every field public knowledge by
// its last step (prices and cases are broadcast, trades are pairwise
// messages the script derives for everyone), so all children must
// report identical values — CollectWindowReports asserts exactly that.
struct WindowReport {
  // The window this report answers, echoed from the kCtlCmdRun payload.
  // The parent rejects a mismatch (a slow or replayed report from a
  // prior window must never be merged silently) — and with several
  // windows in flight the echo is what keys each report to its
  // command.  -1 until RunWindow fills it.
  int window = -1;
  market::MarketType type = market::MarketType::kNoMarket;
  double price = 0.0;
  double supply_total = 0.0;
  double demand_total = 0.0;
  double buyer_total_cost = 0.0;
  double grid_import_kwh = 0.0;
  double grid_export_kwh = 0.0;
  int num_sellers = 0;
  int num_buyers = 0;
  std::vector<Trade> trades;
  double runtime_seconds = 0.0;  // this child's wall clock for the window
  uint64_t bus_bytes = 0;        // canonical ledger delta for the window
  // crypto::Rng::Cursor() after the window's last draw.  Every child
  // replays the same deterministic stream, so the cursors must agree
  // bit-for-bit — and the serial-vs-batched parity wall compares them
  // across schedules to prove batching never reorders a draw.
  uint64_t rng_cursor = 0;
  // §VI audit outcome: derived identically by every replaying child
  // (the cheat plan is part of the fork-copied config), so it joins the
  // fields CollectWindowReports requires bit-level agreement on.
  AuditOutcome audit;
  // This agent's own per-window counter delta (canonical shadow ledger);
  // the parent asserts it equals the literal socket bytes its router
  // moved for this agent.
  net::TrafficStats self_stats;
};

std::vector<uint8_t> EncodeWindowReport(const WindowReport& report);
WindowReport DecodeWindowReport(std::span<const uint8_t> bytes);

// Runs inside a forked child: executes this agent's side of each window
// the parent schedules, reports the result, and says goodbye on
// Shutdown (the ProcessTransport::ChildMain contract).
class AgentDriver {
 public:
  struct Callbacks {
    // Loads window `w`'s inputs into the parties (trace resolution,
    // BeginWindow); must mirror the parent's own per-window evolution
    // exactly, including the windows the sampling skips.
    std::function<void(int window)> begin_window;
    // Idle-time work after a window (randomness-pool refill); runs
    // outside the reported runtime, like RunSimulation's refill.
    std::function<void(int window)> after_window;
  };

  // `parties` is this child's fork-copied snapshot; `self` names the
  // one agent whose wire I/O is real.
  AgentDriver(net::AgentId self, ProtocolContext& ctx,
              std::span<Party> parties, Callbacks callbacks);

  net::AgentId self() const { return self_; }

  // One window of this agent's side; also usable in-process (tests).
  WindowReport RunWindow(int window);

  // Command loop: kCtlCmdRun (payload: i32 window) runs a window and
  // writes its report; kCtlCmdShutdown writes Done and returns the
  // number of windows executed.
  int Serve(net::ControlChannel& ctl);

 private:
  net::AgentId self_;
  ProtocolContext& ctx_;
  std::span<Party> parties_;
  Callbacks callbacks_;
};

// One collected window of a (possibly pipelined) batch: the merged,
// cross-checked report plus the parent-side wall clock from the
// batch's dispatch to this window's last report.  Overlapping windows
// share that span, so callers charge a batch's elapsed time once (the
// max over the batch), never the sum.
struct CollectedWindow {
  int window = -1;
  WindowReport report;
  double parent_seconds = 0.0;
};

// Parent side of a batch of pipelined windows: for each entry of
// `windows` (the commanded order) reads one report from every child,
// keyed and verified by the echoed window id, and merges them,
// asserting
//  (a) each report answers the commanded window — a stale echo is a
//      structured kStaleReport fault naming the agent;
//  (b) all children agree on every public field (including the rng
//      cursor) — a divergence is a kForgedReport fault;
//  (c) accounting closes over the batch: each child's summed attested
//      deltas equal the literal wire bytes the router relayed for it
//      since `stats_before`, and the attested per-window totals sum to
//      the canonical ledger delta.  (Per-window router snapshots are
//      meaningless mid-batch — later in-flight windows' frames are
//      already moving — so the wire cross-check closes at batch
//      granularity; a one-window batch is exactly the per-window
//      check.)
// `stats_before` is the router's per-agent snapshot taken when the
// batch was dispatched; `since` (optional) stamps each window's
// parent_seconds as it completes.  A divergence is an ACTIVE cheat (a
// child forging or replaying its report), so it surfaces as a
// ProtocolError naming the deviating agent, not an abort.
std::vector<CollectedWindow> CollectWindowReportsBatch(
    net::AgentSupervisor& transport,
    std::span<const net::TrafficStats> stats_before,
    std::span<const int> windows, const Stopwatch* since = nullptr);

// One-window wrapper (the serial loop's collector): collects
// `expected_window` and returns the merged report — the batch
// collector with a single outstanding window.
WindowReport CollectWindowReports(
    net::AgentSupervisor& transport,
    std::span<const net::TrafficStats> stats_before, int expected_window);

}  // namespace pem::protocol
