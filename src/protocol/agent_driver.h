// Per-process protocol driver: ONE agent's side of a trading window.
//
// In the in-process backends a single thread simulates every agent.
// Under net::ProcessTransport each forked child owns exactly one agent:
// it replays the deterministic protocol script (everything public —
// coalition formation, ring orders, elections — plus the shadow of the
// other agents' steps, all derived from the fork-time state snapshot
// and the shared seeded RNG), while its own agent's sends and receives
// are real kernel socketpair I/O, byte-verified against the script (see
// net/process_transport.h).  The SAME RunPemWindow code path therefore
// drives all four backends; what AgentDriver adds is the per-child
// command loop, the per-window report, and the parent-side collector
// that cross-checks every child's view of the window.
//
// Determinism contract: the context RNG must be a seeded deterministic
// generator (RunSimulation uses DeterministicRng) — with a system RNG
// the children's scripts would diverge at the first random draw, and
// the byte-verification in the child transport would fail loudly.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "net/message.h"
#include "net/transport.h"
#include "protocol/pem_protocol.h"

namespace pem::net {
// Supervision control plane (net/agent_supervisor.h).  Only referenced
// through references here, so the protocol layer's public surface
// depends on no concrete transport backend — pem_lint's layering rule
// keeps it that way; the .cpp includes the real header.
class AgentSupervisor;
class ControlChannel;
}  // namespace pem::net

namespace pem::protocol {

// One agent's view of a finished window, shipped to the parent over the
// control channel.  The protocol makes every field public knowledge by
// its last step (prices and cases are broadcast, trades are pairwise
// messages the script derives for everyone), so all children must
// report identical values — CollectWindowReports asserts exactly that.
struct WindowReport {
  market::MarketType type = market::MarketType::kNoMarket;
  double price = 0.0;
  double supply_total = 0.0;
  double demand_total = 0.0;
  double buyer_total_cost = 0.0;
  double grid_import_kwh = 0.0;
  double grid_export_kwh = 0.0;
  int num_sellers = 0;
  int num_buyers = 0;
  std::vector<Trade> trades;
  double runtime_seconds = 0.0;  // this child's wall clock for the window
  uint64_t bus_bytes = 0;        // canonical ledger delta for the window
  // §VI audit outcome: derived identically by every replaying child
  // (the cheat plan is part of the fork-copied config), so it joins the
  // fields CollectWindowReports requires bit-level agreement on.
  AuditOutcome audit;
  // This agent's own per-window counter delta (canonical shadow ledger);
  // the parent asserts it equals the literal socket bytes its router
  // moved for this agent.
  net::TrafficStats self_stats;
};

std::vector<uint8_t> EncodeWindowReport(const WindowReport& report);
WindowReport DecodeWindowReport(std::span<const uint8_t> bytes);

// Runs inside a forked child: executes this agent's side of each window
// the parent schedules, reports the result, and says goodbye on
// Shutdown (the ProcessTransport::ChildMain contract).
class AgentDriver {
 public:
  struct Callbacks {
    // Loads window `w`'s inputs into the parties (trace resolution,
    // BeginWindow); must mirror the parent's own per-window evolution
    // exactly, including the windows the sampling skips.
    std::function<void(int window)> begin_window;
    // Idle-time work after a window (randomness-pool refill); runs
    // outside the reported runtime, like RunSimulation's refill.
    std::function<void(int window)> after_window;
  };

  // `parties` is this child's fork-copied snapshot; `self` names the
  // one agent whose wire I/O is real.
  AgentDriver(net::AgentId self, ProtocolContext& ctx,
              std::span<Party> parties, Callbacks callbacks);

  net::AgentId self() const { return self_; }

  // One window of this agent's side; also usable in-process (tests).
  WindowReport RunWindow(int window);

  // Command loop: kCtlCmdRun (payload: i32 window) runs a window and
  // writes its report; kCtlCmdShutdown writes Done and returns the
  // number of windows executed.
  int Serve(net::ControlChannel& ctl);

 private:
  net::AgentId self_;
  ProtocolContext& ctx_;
  std::span<Party> parties_;
  Callbacks callbacks_;
};

// Parent side: reads one window report from every child and merges
// them, asserting (a) all children agree on every public field and
// (b) each child's canonical self-byte delta equals the literal socket
// bytes the router relayed for that agent since `stats_before` — the
// out-of-process parity wall that runs on every window, not just in
// tests, for both the fork-over-socketpair and the TCP backend.
// `stats_before` is the router's per-agent snapshot taken when the
// window was scheduled.  A divergence is an ACTIVE cheat (a child
// forging its report or its attested byte counts), so it surfaces as a
// ProtocolError naming the deviating agent, not an abort.
WindowReport CollectWindowReports(
    net::AgentSupervisor& transport,
    std::span<const net::TrafficStats> stats_before);

}  // namespace pem::protocol
