#include "protocol/market_eval.h"

#include <algorithm>

#include "crypto/secure_compare.h"
#include "protocol/coin_flip.h"
#include "util/error.h"

namespace pem::protocol {

MarketEvalResult RunPrivateMarketEvaluation(ProtocolContext& ctx,
                                            std::span<Party> parties,
                                            const Coalitions& coalitions) {
  PEM_CHECK(!coalitions.sellers.empty() && !coalitions.buyers.empty(),
            "market evaluation requires both coalitions");

  MarketEvalResult result;

  // --- Round 1: aggregate blinded demand under a random seller's key --
  const size_t hr1 = SelectAgent(ctx, parties, coalitions.sellers);
  result.hr1_seller_index = hr1;
  Party& seller_hr1 = parties[hr1];
  seller_hr1.EnsureKeys(ctx.config.key_bits, ctx.rng);
  BroadcastPublicKey(ctx, seller_hr1);

  // Ring: every buyer contributes |sn_j| + r_j, then every seller
  // except Hr1 contributes its nonce r_i; Hr1 decrypts and adds its own
  // nonce locally (equivalent to being the last ring member).
  std::vector<size_t> ring1 = coalitions.buyers;
  for (size_t s : coalitions.sellers) {
    if (s != hr1) ring1.push_back(s);
  }
  const crypto::PaillierCiphertext agg1 = RingAggregate(
      ctx, seller_hr1.public_key(), parties, PlanRingTopology(ctx, ring1),
      [](const Party& p) {
        if (p.role() == grid::Role::kBuyer) return -p.net_raw() + p.nonce();
        return p.nonce();
      },
      seller_hr1.id());
  const int64_t rb =
      seller_hr1.private_key().DecryptSigned(agg1) + seller_hr1.nonce();

  // --- Round 2: aggregate blinded supply under a random buyer's key ---
  const size_t hr2 = SelectAgent(ctx, parties, coalitions.buyers);
  result.hr2_buyer_index = hr2;
  Party& buyer_hr2 = parties[hr2];
  buyer_hr2.EnsureKeys(ctx.config.key_bits, ctx.rng);
  BroadcastPublicKey(ctx, buyer_hr2);

  std::vector<size_t> ring2 = coalitions.sellers;
  for (size_t b : coalitions.buyers) {
    if (b != hr2) ring2.push_back(b);
  }
  const crypto::PaillierCiphertext agg2 = RingAggregate(
      ctx, buyer_hr2.public_key(), parties, PlanRingTopology(ctx, ring2),
      [](const Party& p) {
        if (p.role() == grid::Role::kSeller) return p.net_raw() + p.nonce();
        return p.nonce();
      },
      buyer_hr2.id());
  const int64_t rs =
      buyer_hr2.private_key().DecryptSigned(agg2) + buyer_hr2.nonce();

  // Both blinded sums carry the same Σ nonces, so [Rs < Rb] iff
  // [E_s < E_b].  They are non-negative and bounded well below 2^63.
  PEM_CHECK(rs >= 0 && rb >= 0, "blinded sums must be non-negative");

  // --- Secure comparison (garbled circuit, Protocol 2 line 14) --------
  result.general_market = crypto::SecureCompareLess(
      ctx.ep(buyer_hr2.id()), static_cast<uint64_t>(rs),
      ctx.ep(seller_hr1.id()), static_cast<uint64_t>(rb), ctx.config.compare,
      ctx.rng);

  // Hr1 announces the market case to everyone (1 bit).
  net::ByteWriter w;
  w.U8(result.general_market ? 1 : 0);
  ctx.ep(seller_hr1.id()).Send(net::kBroadcast, kMsgMarketCase, w.Take());
  for (net::AgentId a = 0; a < ctx.num_agents(); ++a) {
    if (a == seller_hr1.id()) continue;
    net::Message m = ExpectMessage(ctx.ep(a), kMsgMarketCase);
    net::ByteReader r(m.payload);
    PEM_CHECK((r.U8() != 0) == result.general_market, "market case mismatch");
  }
  return result;
}

}  // namespace pem::protocol
