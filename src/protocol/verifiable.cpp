#include "protocol/verifiable.h"

#include <cstring>

namespace pem::protocol {
namespace {

// Commitment preimage: blinded value || encryption randomness bytes.
std::vector<uint8_t> WitnessBytes(int64_t blinded_value,
                                  const crypto::BigInt& randomness) {
  std::vector<uint8_t> out(8);
  std::memcpy(out.data(), &blinded_value, 8);
  const std::vector<uint8_t> r = randomness.ToBytes();
  out.insert(out.end(), r.begin(), r.end());
  return out;
}

}  // namespace

VerifiableResult MakeVerifiableContribution(
    const crypto::PaillierPublicKey& pk, int64_t blinded_value,
    crypto::Rng& rng) {
  // Sample the encryption randomness explicitly so it can be retained.
  crypto::BigInt r = crypto::BigInt::RandomBelow(pk.n(), rng);
  while (r.IsZero() || !r.IsInvertibleMod(pk.n())) {
    r = crypto::BigInt::RandomBelow(pk.n(), rng);
  }

  VerifiableResult result;
  result.witness.blinded_value = blinded_value;
  result.witness.encryption_randomness = r;
  rng.Fill(result.witness.blinder);

  result.contribution.ciphertext =
      pk.EncryptWithRandomness(pk.EncodeSigned(blinded_value), r);
  result.contribution.commitment =
      crypto::Commit(WitnessBytes(blinded_value, r), result.witness.blinder);
  return result;
}

bool VerifyContribution(const crypto::PaillierPublicKey& pk,
                        const VerifiableContribution& contribution,
                        const ContributionWitness& witness) {
  // 1. Commitment opens to the claimed witness.
  crypto::CommitmentOpening opening;
  opening.value =
      WitnessBytes(witness.blinded_value, witness.encryption_randomness);
  opening.blinder = witness.blinder;
  if (!crypto::VerifyOpening(contribution.commitment, opening)) return false;

  // 2. Deterministic re-encryption reproduces the aggregated ciphertext.
  if (witness.encryption_randomness.IsZero() ||
      !witness.encryption_randomness.IsInvertibleMod(pk.n())) {
    return false;
  }
  const crypto::PaillierCiphertext expected = pk.EncryptWithRandomness(
      pk.EncodeSigned(witness.blinded_value), witness.encryption_randomness);
  return expected.value == contribution.ciphertext.value;
}

}  // namespace pem::protocol
