#include "protocol/verifiable.h"

#include <cstring>

namespace pem::protocol {
namespace {

// Commitment preimage: domain || blinded value || randomness bytes.
// The domain rides in the preimage (not alongside it) so a replayed
// witness cannot be re-bound to the current window without breaking
// the opening.  domain == 0 reproduces the legacy preimage layout
// prefixed with eight zero bytes, which is fine: the commitment is
// opaque either way.
std::vector<uint8_t> WitnessBytes(uint64_t domain, int64_t blinded_value,
                                  const crypto::BigInt& randomness) {
  std::vector<uint8_t> out(16);
  std::memcpy(out.data(), &domain, 8);
  std::memcpy(out.data() + 8, &blinded_value, 8);
  const std::vector<uint8_t> r = randomness.ToBytes();
  out.insert(out.end(), r.begin(), r.end());
  return out;
}

}  // namespace

VerifiableResult MakeVerifiableContribution(
    const crypto::PaillierPublicKey& pk, int64_t blinded_value,
    crypto::Rng& rng, uint64_t domain) {
  // Sample the encryption randomness explicitly so it can be retained.
  crypto::BigInt r = crypto::BigInt::RandomBelow(pk.n(), rng);
  while (r.IsZero() || !r.IsInvertibleMod(pk.n())) {
    r = crypto::BigInt::RandomBelow(pk.n(), rng);
  }

  VerifiableResult result;
  result.witness.blinded_value = blinded_value;
  result.witness.domain = domain;
  result.witness.encryption_randomness = r;
  rng.Fill(result.witness.blinder);

  result.contribution.ciphertext =
      pk.EncryptWithRandomness(pk.EncodeSigned(blinded_value), r);
  result.contribution.commitment = crypto::Commit(
      WitnessBytes(domain, blinded_value, r), result.witness.blinder);
  return result;
}

namespace {

bool OpensCommitment(const VerifiableContribution& contribution,
                     const ContributionWitness& witness) {
  crypto::CommitmentOpening opening;
  opening.value = WitnessBytes(witness.domain, witness.blinded_value,
                               witness.encryption_randomness);
  opening.blinder = witness.blinder;
  return crypto::VerifyOpening(contribution.commitment, opening);
}

bool ReEncryptsToCiphertext(const crypto::PaillierPublicKey& pk,
                            const VerifiableContribution& contribution,
                            const ContributionWitness& witness) {
  if (witness.encryption_randomness.IsZero() ||
      !witness.encryption_randomness.IsInvertibleMod(pk.n())) {
    return false;
  }
  const crypto::PaillierCiphertext expected = pk.EncryptWithRandomness(
      pk.EncodeSigned(witness.blinded_value), witness.encryption_randomness);
  return expected.value == contribution.ciphertext.value;
}

}  // namespace

bool VerifyContribution(const crypto::PaillierPublicKey& pk,
                        const VerifiableContribution& contribution,
                        const ContributionWitness& witness) {
  return OpensCommitment(contribution, witness) &&
         ReEncryptsToCiphertext(pk, contribution, witness);
}

ContributionVerdict JudgeContribution(
    const crypto::PaillierPublicKey& pk,
    const VerifiableContribution& contribution,
    const ContributionWitness& witness, uint64_t expected_domain) {
  if (!OpensCommitment(contribution, witness)) {
    return ContributionVerdict::kCommitmentMismatch;
  }
  if (!ReEncryptsToCiphertext(pk, contribution, witness)) {
    return ContributionVerdict::kMisEncrypted;
  }
  // Self-consistent but bound to another (window, agent) slot: a
  // replayed contribution from an earlier window.
  if (witness.domain != expected_domain) {
    return ContributionVerdict::kReplayedDomain;
  }
  return ContributionVerdict::kHonest;
}

}  // namespace pem::protocol
