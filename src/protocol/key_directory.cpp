#include "protocol/key_directory.h"

#include <algorithm>

namespace pem::protocol {

const KeyDirectory::Entry* KeyDirectory::Find(net::AgentId agent) const {
  for (const Entry& e : entries_) {
    if (e.agent == agent) return &e;
  }
  return nullptr;
}

KeyDirectory::Entry* KeyDirectory::Find(net::AgentId agent) {
  for (Entry& e : entries_) {
    if (e.agent == agent) return &e;
  }
  return nullptr;
}

pem::Status KeyDirectory::Register(net::AgentId agent,
                                   const crypto::PaillierPublicKey& key) {
  if (Entry* existing = Find(agent)) {
    if (existing->key == key) {
      existing->epoch = epoch_;  // re-announcement, same binding
      return pem::Status::Ok();
    }
    if (existing->epoch == epoch_) {
      return pem::Error(pem::ErrorCode::kProtocolViolation,
                        "agent announced two different public keys");
    }
    // A different key announced across an epoch boundary: the agent
    // re-keyed over a membership change — supersede the old binding.
    existing->key = key;
    existing->epoch = epoch_;
    return pem::Status::Ok();
  }
  entries_.push_back(Entry{agent, key, epoch_});
  return pem::Status::Ok();
}

pem::Result<crypto::PaillierPublicKey> KeyDirectory::Lookup(
    net::AgentId agent) const {
  if (const Entry* e = Find(agent)) return e->key;
  return pem::Error(pem::ErrorCode::kNotFound,
                    "no public key registered for agent");
}

bool KeyDirectory::Has(net::AgentId agent) const { return Find(agent) != nullptr; }

void KeyDirectory::Retire(net::AgentId agent) {
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [agent](const Entry& e) {
                                  return e.agent == agent;
                                }),
                 entries_.end());
}

}  // namespace pem::protocol
