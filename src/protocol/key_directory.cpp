#include "protocol/key_directory.h"

namespace pem::protocol {

const KeyDirectory::Entry* KeyDirectory::Find(net::AgentId agent) const {
  for (const Entry& e : entries_) {
    if (e.agent == agent) return &e;
  }
  return nullptr;
}

pem::Status KeyDirectory::Register(net::AgentId agent,
                                   const crypto::PaillierPublicKey& key) {
  if (const Entry* existing = Find(agent)) {
    if (existing->key == key) return pem::Status::Ok();
    return pem::Error(pem::ErrorCode::kProtocolViolation,
                      "agent announced two different public keys");
  }
  entries_.push_back(Entry{agent, key});
  return pem::Status::Ok();
}

pem::Result<crypto::PaillierPublicKey> KeyDirectory::Lookup(
    net::AgentId agent) const {
  if (const Entry* e = Find(agent)) return e->key;
  return pem::Error(pem::ErrorCode::kNotFound,
                    "no public key registered for agent");
}

bool KeyDirectory::Has(net::AgentId agent) const { return Find(agent) != nullptr; }

}  // namespace pem::protocol
