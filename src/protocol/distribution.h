// Private Distribution (Protocol 4).
//
// Allocates the pairwise trading amounts e_ij proportionally without
// revealing demands/supplies: the receiving coalition ring-aggregates
// its encrypted total under a random counterpart's key, each member
// scalar-multiplies the encrypted total by round(K / |own share|), and
// the counterpart decrypts only the ratio total/share — from which
// nothing about the individual shares or the total leaks (Lemma 4).
// Sellers then route energy and buyers pay m_ji = p* · e_ij pairwise.
#pragma once

#include <span>
#include <vector>

#include "protocol/context.h"

namespace pem::protocol {

struct Trade {
  size_t seller_index = 0;
  size_t buyer_index = 0;
  double energy_kwh = 0.0;
  double payment = 0.0;  // dollars, m_ji = p * e_ij
};

struct DistributionResult {
  std::vector<Trade> trades;
  size_t aggregator_index = 0;  // Hs (general) / Hb (extreme)
};

// `general_market` selects the branch of Protocol 4; `price` is p*
// (general) or pl (extreme).
DistributionResult RunPrivateDistribution(ProtocolContext& ctx,
                                          std::span<Party> parties,
                                          const Coalitions& coalitions,
                                          bool general_market, double price);

}  // namespace pem::protocol
