// Private Market Evaluation (Protocol 2).
//
// The two coalitions learn whether E_s < E_b (general market) without
// revealing either total: both sums are blinded with the same set of
// per-agent nonces, decrypted by two randomly chosen agents, and the
// blinded values are compared with a garbled-circuit secure comparison.
#pragma once

#include <span>

#include "protocol/context.h"

namespace pem::protocol {

struct MarketEvalResult {
  bool general_market = false;
  // The randomly chosen decryptors (for tests / transcript checks).
  size_t hr1_seller_index = 0;
  size_t hr2_buyer_index = 0;
};

// Preconditions: both coalitions non-empty (Protocol 1 handles the
// empty cases before calling this).
MarketEvalResult RunPrivateMarketEvaluation(ProtocolContext& ctx,
                                            std::span<Party> parties,
                                            const Coalitions& coalitions);

}  // namespace pem::protocol
