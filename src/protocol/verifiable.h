// Verifiable ring contributions — the §VI malicious-model extension.
//
// In the semi-honest protocols an agent could silently contribute a
// ciphertext of the wrong value.  Here each agent also publishes a
// commitment to (blinded contribution, encryption randomness); a
// randomly selected auditor (random selection is the paper's
// collusion-resistance lever) may later demand the opening, re-encrypt
// deterministically, and compare against the ciphertext that actually
// entered the aggregation.
//
// Privacy is preserved by auditing the *blinded* contribution
// (value + nonce, as in Protocol 2): the opening reveals nothing about
// the raw net energy as long as the window nonce stays secret.
#pragma once

#include "crypto/commitment.h"
#include "crypto/paillier.h"

namespace pem::protocol {

// What the contributor publishes alongside its ciphertext.
struct VerifiableContribution {
  crypto::PaillierCiphertext ciphertext;
  crypto::Commitment commitment;
};

// What the contributor keeps, and hands to the auditor on demand.
struct ContributionWitness {
  int64_t blinded_value = 0;
  crypto::BigInt encryption_randomness;
  std::array<uint8_t, 32> blinder{};
};

// Encrypts `blinded_value` with fresh (retained) randomness and
// commits to (value, randomness).
struct VerifiableResult {
  VerifiableContribution contribution;
  ContributionWitness witness;
};
VerifiableResult MakeVerifiableContribution(
    const crypto::PaillierPublicKey& pk, int64_t blinded_value,
    crypto::Rng& rng);

// The auditor's check: the witness opens the commitment AND
// re-encrypting with the witness randomness reproduces the ciphertext.
bool VerifyContribution(const crypto::PaillierPublicKey& pk,
                        const VerifiableContribution& contribution,
                        const ContributionWitness& witness);

}  // namespace pem::protocol
