// Verifiable ring contributions — the §VI malicious-model extension.
//
// In the semi-honest protocols an agent could silently contribute a
// ciphertext of the wrong value.  Here each agent also publishes a
// commitment to (blinded contribution, encryption randomness); a
// randomly selected auditor (random selection is the paper's
// collusion-resistance lever) may later demand the opening, re-encrypt
// deterministically, and compare against the ciphertext that actually
// entered the aggregation.
//
// Privacy is preserved by auditing the *blinded* contribution
// (value + nonce, as in Protocol 2): the opening reveals nothing about
// the raw net energy as long as the window nonce stays secret.
#pragma once

#include "crypto/commitment.h"
#include "crypto/paillier.h"

namespace pem::protocol {

// What the contributor publishes alongside its ciphertext.
struct VerifiableContribution {
  crypto::PaillierCiphertext ciphertext;
  crypto::Commitment commitment;
};

// What the contributor keeps, and hands to the auditor on demand.
// `domain` binds the commitment to one (window, agent) slot: a witness
// whose commitment only opens under an old window's domain is a REPLAY,
// distinguishable from a value lie — the audit round builds domains via
// AuditDomain below.
struct ContributionWitness {
  int64_t blinded_value = 0;
  uint64_t domain = 0;
  crypto::BigInt encryption_randomness;
  std::array<uint8_t, 32> blinder{};
};

// Canonical domain tag for one agent's contribution in one window.
constexpr uint64_t AuditDomain(int window, int agent) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(window)) << 32) |
         static_cast<uint32_t>(agent);
}

// Encrypts `blinded_value` with fresh (retained) randomness and
// commits to (domain, value, randomness).
struct VerifiableResult {
  VerifiableContribution contribution;
  ContributionWitness witness;
};
VerifiableResult MakeVerifiableContribution(
    const crypto::PaillierPublicKey& pk, int64_t blinded_value,
    crypto::Rng& rng, uint64_t domain = 0);

// The auditor's check: the witness opens the commitment AND
// re-encrypting with the witness randomness reproduces the ciphertext.
bool VerifyContribution(const crypto::PaillierPublicKey& pk,
                        const VerifiableContribution& contribution,
                        const ContributionWitness& witness);

// Graded verdict for the audit round: WHICH check failed names the
// cheat class.  Checked in order — a witness for the wrong domain that
// is otherwise self-consistent is a replay; one whose opening fails is
// a commitment/ciphertext mismatch; one that opens but re-encrypts to
// a different ciphertext entered the ring mis-encrypted.
enum class ContributionVerdict {
  kHonest,
  kReplayedDomain,      // opens, re-encrypts, but under a stale domain
  kCommitmentMismatch,  // the witness does not open the commitment
  kMisEncrypted,        // opens, but re-encryption != ring ciphertext
};
ContributionVerdict JudgeContribution(
    const crypto::PaillierPublicKey& pk,
    const VerifiableContribution& contribution,
    const ContributionWitness& witness, uint64_t expected_domain);

}  // namespace pem::protocol
