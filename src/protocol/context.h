// Shared protocol machinery: execution context, message tags, and the
// Paillier ring-aggregation pattern that Protocols 2-4 all build on.
//
// Execution model.  Every ring aggregation runs an AggregationTopology
// plan (protocol/topology.h — the flat ring, or a hierarchy of
// sub-rings) in three phases:
//   1. prepare  (sequential)  — fix each leaf member's encryption
//      randomness: a pooled r^n factor when a PaillierRandomnessPool
//      is attached and non-dry, otherwise a fresh r drawn from the
//      context RNG;
//   2. compute  (policy-driven) — produce each member's ciphertext
//      from its fixed randomness; with ExecutionPolicy::threads > 1
//      the ciphertexts are computed by ParallelFor workers, mirroring
//      the paper's one-container-per-agent deployment;
//   3. forward  (sequential)  — the ring-multiply/forward passes over
//      the transport, hop by hop: leaf rings aggregate shard-locally
//      and deliver to their elected leaders, leaders re-aggregate up
//      the tree (partials only — no fresh encryption, no RNG draw),
//      and the root ring delivers to the final recipient.
// Because all randomness is fixed in phase 1 and all sends happen in
// phase 3, the wire transcript is byte-identical whatever the policy —
// test_transcript_parity asserts exactly this.  The transcript DOES
// depend on the plan shape, but the market outcome does not: a
// hierarchical plan's prices and trades are bit-identical to the flat
// ring's (the plan invariants in topology.h; test_topology asserts it
// across all six transport backends).
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "crypto/paillier.h"
#include "crypto/rng.h"
#include "net/serialize.h"
#include "net/transport.h"
#include "protocol/party.h"
#include "protocol/topology.h"

namespace pem::protocol {

class KeyDirectory;
class WindowScheduler;

// Message type tags.  The high half namespaces the subsystem ("PE").
inline constexpr uint32_t kMsgRingHop = 0x5045'0001;
inline constexpr uint32_t kMsgRingFinal = 0x5045'0002;
inline constexpr uint32_t kMsgMarketCase = 0x5045'0003;
inline constexpr uint32_t kMsgPrice = 0x5045'0004;
inline constexpr uint32_t kMsgEncTotal = 0x5045'0005;
inline constexpr uint32_t kMsgRatioCipher = 0x5045'0006;
inline constexpr uint32_t kMsgRatioBroadcast = 0x5045'0007;
inline constexpr uint32_t kMsgEnergyTransfer = 0x5045'0008;
inline constexpr uint32_t kMsgPayment = 0x5045'0009;
inline constexpr uint32_t kMsgPublicKey = 0x5045'000A;
// Audit round (protocol/audit.h); 0x5045'0010/11 are the coin flip's.
inline constexpr uint32_t kMsgAuditContribution = 0x5045'0012;
inline constexpr uint32_t kMsgAuditDemand = 0x5045'0013;
inline constexpr uint32_t kMsgAuditWitness = 0x5045'0014;
inline constexpr uint32_t kMsgAuditVerdict = 0x5045'0015;

struct ProtocolContext {
  // Per-agent transport handles, indexed by AgentId.  Protocol code
  // never sees the whole Transport: every Send/Receive goes through
  // the endpoint of the agent performing it, so a step cannot read
  // another agent's inbox — the property that keeps the socket
  // backend's per-agent channels honest.  The driver builds this span
  // once per community via Transport::endpoints().
  std::span<net::Endpoint> endpoints;
  crypto::Rng& rng;
  const PemConfig& config;
  // Optional idle-time encryption-randomness pools (see
  // PaillierRandomnessPool).  When set, ring encryptions draw from the
  // pool; when null or dry, they fall back to fresh randomness.
  crypto::PaillierPoolRegistry* pools = nullptr;
  // Serial vs. phase-parallel execution (transport choice + compute
  // workers).  Defaults to the serial engine.
  net::ExecutionPolicy policy;
  // Appended members default so every existing aggregate initializer
  // (endpoints, rng, config[, pools, policy]) stays valid.
  //
  // Shared key directory: when set, BroadcastPublicKey registers every
  // announced key and surfaces equivocation as a ProtocolError naming
  // the announcer.  Null (the default) preserves the drain-only
  // behavior for drivers that keep no directory.
  KeyDirectory* directory = nullptr;
  // The window RunPemWindow is currently executing (set by it); the
  // audit round and the cheat plan key off this.
  int window = 0;
  // Batched multi-window scheduler (protocol/window_scheduler.h).
  // When set and fused(), the compute phases (ComputeEncryptions and
  // Private Distribution's ratio fan-out) run on its persistent worker
  // team instead of forking a fresh pem::ParallelFor pool per call —
  // the fork/join amortization across in-flight windows.  Null (the
  // default): per-call pools, the pre-batching engine exactly.
  WindowScheduler* scheduler = nullptr;

  // The handle of the agent currently acting.
  net::Endpoint& ep(net::AgentId id) const {
    PEM_CHECK(id >= 0 && static_cast<size_t>(id) < endpoints.size(),
              "ProtocolContext: agent id out of range");
    return endpoints[static_cast<size_t>(id)];
  }
  int num_agents() const { return static_cast<int>(endpoints.size()); }
};

// --- phase primitives -------------------------------------------------

// Phase-1 product: one planned encryption with its randomness fixed.
struct EncryptionSlot {
  int64_t value = 0;
  // Exactly one of the two is set: a pooled r^n factor, or fresh r.
  std::optional<crypto::BigInt> pooled_factor;
  crypto::BigInt randomness;
  // Owner fast path: set when the encrypting agent owns the key (and
  // config.crt_encryption is on), so the fresh-randomness branch of
  // phase 2 computes r^n mod p^2/q^2 instead of mod n^2.  Produces the
  // same ciphertext bits, so the transcript is invariant under it.
  const crypto::PaillierCrtEncryptor* crt = nullptr;
};

// Sequentially fixes the randomness for one encryption of `value`
// under `pk` (pool pop, else fresh draw from ctx.rng).  When the
// encrypting party is passed and owns `pk`, the slot routes phase 2
// through its CRT encryptor.
EncryptionSlot PrepareEncryption(ProtocolContext& ctx,
                                 const crypto::PaillierPublicKey& pk,
                                 int64_t value,
                                 const Party* encryptor = nullptr);

// Phase-2 work for a single prepared slot.  Thread-safe for distinct
// slots; callers embedding extra per-item work in their own fan-out
// (e.g. Protocol 4's ScalarMul) use this directly.
crypto::PaillierCiphertext ComputeEncryption(
    const crypto::PaillierPublicKey& pk, const EncryptionSlot& slot);

// Computes slots[i] -> out[i] under the context policy: ParallelFor
// across workers when policy.threads > 1, a plain loop otherwise.  The
// result is independent of the worker count because every slot's
// randomness was fixed in phase 1.
std::vector<crypto::PaillierCiphertext> ComputeEncryptions(
    const ProtocolContext& ctx, const crypto::PaillierPublicKey& pk,
    std::span<const EncryptionSlot> slots);

// --- ring aggregation -------------------------------------------------

// Index lists into the parties span, built once per window
// (Protocol 1, line 4).
struct Coalitions {
  std::vector<size_t> sellers;
  std::vector<size_t> buyers;
};
Coalitions FormCoalitions(std::span<const Party> parties);

// Uniform draw from `candidates` (protocol-level random agent choice).
size_t PickRandomIndex(std::span<const size_t> candidates, crypto::Rng& rng);

// Ciphertext wire helpers: fixed-width big-endian (2 * key bytes).
void WriteCiphertext(net::ByteWriter& w, const crypto::PaillierPublicKey& pk,
                     const crypto::PaillierCiphertext& ct);
crypto::PaillierCiphertext ReadCiphertext(net::ByteReader& r);

// The per-window aggregation plan for `members`: built from
// (members, ctx.config.topology) and keyed by ctx.window, so churn
// epochs re-elect every leader.  Leader election draws only from
// MixSeed side streams — never ctx.rng — so planning cannot shift any
// agent's randomness schedule.  Protocols 2-4 call their aggregations
// through this.
AggregationTopology PlanRingTopology(const ProtocolContext& ctx,
                                     std::span<const size_t> members);

// Paillier ring aggregation (the Lines 2-10 pattern of Protocol 2):
// each leaf member of `topology` (indices into `parties`) encrypts
// value_of(party) under `pk` and multiplies it into its ring's running
// ciphertext, forwarding hop-by-hop over the bus; leaders carry the
// partials up the tree, and the root ring's last holder sends the
// product to `final_recipient`, who is returned the ciphertext of
// Σ value_of.  Every hop's bytes are accounted.  Runs the three-phase
// schedule described at the top of this header.  A one-lane wrapper
// over RingAggregateBatch — there is exactly one executor.
crypto::PaillierCiphertext RingAggregate(
    ProtocolContext& ctx, const crypto::PaillierPublicKey& pk,
    std::span<Party> parties, const AggregationTopology& topology,
    const std::function<int64_t(const Party&)>& value_of,
    net::AgentId final_recipient);

// Flat-plan shorthand: aggregates over `ring` as a single flat ring,
// whatever ctx.config.topology says.  Equivalent to passing
// AggregationTopology::Flat(ring).
crypto::PaillierCiphertext RingAggregate(
    ProtocolContext& ctx, const crypto::PaillierPublicKey& pk,
    std::span<Party> parties, std::span<const size_t> ring,
    const std::function<int64_t(const Party&)>& value_of,
    net::AgentId final_recipient);

// Batched variant: runs `value_fns.size()` independent aggregations
// over the same plan and key with ONE fused compute phase (all
// lanes' ciphertexts are produced by the same ParallelFor fan-out),
// then one forward pass per lane.  Used by Private Pricing, whose two
// sums (Σ k_i and Σ supply_i) would otherwise pay the fork/join cost
// twice.  Transcript-equivalent to calling RingAggregate per lane in
// order.
std::vector<crypto::PaillierCiphertext> RingAggregateBatch(
    ProtocolContext& ctx, const crypto::PaillierPublicKey& pk,
    std::span<Party> parties, const AggregationTopology& topology,
    std::span<const std::function<int64_t(const Party&)>> value_fns,
    net::AgentId final_recipient);

// Flat-plan shorthand for the batched variant.
std::vector<crypto::PaillierCiphertext> RingAggregateBatch(
    ProtocolContext& ctx, const crypto::PaillierPublicKey& pk,
    std::span<Party> parties, std::span<const size_t> ring,
    std::span<const std::function<int64_t(const Party&)>> value_fns,
    net::AgentId final_recipient);

// Pops the endpoint's next message, asserting the expected type.
net::Message ExpectMessage(net::Endpoint& ep, uint32_t expected_type);

// Announces the aggregator's public key to the coalition peers that
// must encrypt under it (Protocol 1, line 2 amortizes this; we send it
// per window so the bandwidth accounting is conservative).
void BroadcastPublicKey(ProtocolContext& ctx, const Party& owner);

}  // namespace pem::protocol
