// Shared protocol machinery: execution context, message tags, and the
// Paillier ring-aggregation pattern that Protocols 2-4 all build on.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "crypto/paillier.h"
#include "crypto/rng.h"
#include "net/bus.h"
#include "protocol/party.h"

namespace pem::protocol {

// Message type tags.  The high half namespaces the subsystem ("PE").
inline constexpr uint32_t kMsgRingHop = 0x5045'0001;
inline constexpr uint32_t kMsgRingFinal = 0x5045'0002;
inline constexpr uint32_t kMsgMarketCase = 0x5045'0003;
inline constexpr uint32_t kMsgPrice = 0x5045'0004;
inline constexpr uint32_t kMsgEncTotal = 0x5045'0005;
inline constexpr uint32_t kMsgRatioCipher = 0x5045'0006;
inline constexpr uint32_t kMsgRatioBroadcast = 0x5045'0007;
inline constexpr uint32_t kMsgEnergyTransfer = 0x5045'0008;
inline constexpr uint32_t kMsgPayment = 0x5045'0009;
inline constexpr uint32_t kMsgPublicKey = 0x5045'000A;

struct ProtocolContext {
  net::MessageBus& bus;
  crypto::Rng& rng;
  const PemConfig& config;
  // Optional idle-time encryption-randomness pools (see
  // PaillierRandomnessPool).  When set, ring encryptions draw from the
  // pool; when null or dry, they fall back to fresh randomness.
  crypto::PaillierPoolRegistry* pools = nullptr;
};

// Encrypts through the context's randomness pool when available.
crypto::PaillierCiphertext ContextEncryptSigned(
    ProtocolContext& ctx, const crypto::PaillierPublicKey& pk, int64_t v);

// Index lists into the parties span, built once per window
// (Protocol 1, line 4).
struct Coalitions {
  std::vector<size_t> sellers;
  std::vector<size_t> buyers;
};
Coalitions FormCoalitions(std::span<const Party> parties);

// Uniform draw from `candidates` (protocol-level random agent choice).
size_t PickRandomIndex(std::span<const size_t> candidates, crypto::Rng& rng);

// Ciphertext wire helpers: fixed-width big-endian (2 * key bytes).
void WriteCiphertext(net::ByteWriter& w, const crypto::PaillierPublicKey& pk,
                     const crypto::PaillierCiphertext& ct);
crypto::PaillierCiphertext ReadCiphertext(net::ByteReader& r);

// Paillier ring aggregation (the Lines 2-10 pattern of Protocol 2):
// each party in `ring` (indices into `parties`) encrypts
// value_of(party) under `pk` and multiplies it into the running
// ciphertext, forwarding hop-by-hop over the bus; the last party sends
// the product to `final_recipient`, who is returned the ciphertext of
// Σ value_of.  Every hop's bytes are accounted.
crypto::PaillierCiphertext RingAggregate(
    ProtocolContext& ctx, const crypto::PaillierPublicKey& pk,
    std::span<Party> parties, std::span<const size_t> ring,
    const std::function<int64_t(const Party&)>& value_of,
    net::AgentId final_recipient);

// Pops the next message for `agent`, asserting the expected type.
net::Message ExpectMessage(net::MessageBus& bus, net::AgentId agent,
                           uint32_t expected_type);

// Announces the aggregator's public key to the coalition peers that
// must encrypt under it (Protocol 1, line 2 amortizes this; we send it
// per window so the bandwidth accounting is conservative).
void BroadcastPublicKey(ProtocolContext& ctx, const Party& owner);

}  // namespace pem::protocol
