// Private Pricing (Protocol 3).
//
// In the general market, a randomly chosen buyer Hb homomorphically
// aggregates the two seller sums of Eq. 13 — Σ k_i and
// Σ (g_i + 1 + ε_i b_i − b_i) — derives the Stackelberg price p* per
// Eq. 14, and broadcasts it.  Hb learns only the aggregates (Lemma 3).
#pragma once

#include <span>

#include "market/stackelberg.h"
#include "protocol/context.h"

namespace pem::protocol {

struct PricingResult {
  double price = 0.0;           // p* (Eq. 14)
  double interior_price = 0.0;  // p̂ (Eq. 13)
  market::PricingSums sums;     // what Hb learned (aggregates only)
  size_t hb_buyer_index = 0;
};

PricingResult RunPrivatePricing(ProtocolContext& ctx, std::span<Party> parties,
                                const Coalitions& coalitions);

}  // namespace pem::protocol
