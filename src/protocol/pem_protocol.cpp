#include "protocol/pem_protocol.h"

#include "protocol/market_eval.h"
#include "protocol/pricing.h"
#include "util/stopwatch.h"

namespace pem::protocol {

PemWindowResult RunPemWindow(ProtocolContext& ctx, std::span<Party> parties,
                             int window) {
  const Stopwatch timer;
  ctx.window = window;
  // Window traffic is measured as the delta of per-endpoint counters
  // (every delivered copy is charged once on its sender, so the sum of
  // bytes_sent equals the transport's total) — the driver never needs
  // the whole transport, and counters accumulate across windows.
  const uint64_t bytes_before = net::TotalBytesSent(ctx.endpoints);

  PemWindowResult result;
  const size_t n = parties.size();
  result.market_purchase.assign(n, 0.0);
  result.market_sale.assign(n, 0.0);
  result.money_paid.assign(n, 0.0);
  result.money_received.assign(n, 0.0);

  // §VI audit round: runs before the market, so a detected cheater is
  // excluded and the window completes over the honest survivors.
  result.audit = RunAuditRound(ctx, parties);

  // Protocol 1, line 4: coalition formation.  Formed AFTER the audit —
  // an excluded cheater classifies kOffMarket, so the coalitions (and
  // every ring derived from them) re-form around the survivors.
  const Coalitions coalitions = FormCoalitions(parties);

  const market::MarketParams& mp = ctx.config.market;
  if (coalitions.sellers.empty() || coalitions.buyers.empty()) {
    // Degenerate market: everyone trades with the main grid only.
    result.type = market::MarketType::kNoMarket;
    result.price = mp.retail_price;
  } else {
    // Line 5: Private Market Evaluation.
    const MarketEvalResult eval =
        RunPrivateMarketEvaluation(ctx, parties, coalitions);
    if (eval.general_market) {
      // Lines 6-7: Private Pricing.
      result.type = market::MarketType::kGeneral;
      result.price = RunPrivatePricing(ctx, parties, coalitions).price;
    } else {
      // Line 9: extreme market trades at the floor.
      result.type = market::MarketType::kExtreme;
      result.price = mp.price_floor;
    }
    // Line 10: Private Distribution.
    DistributionResult dist = RunPrivateDistribution(
        ctx, parties, coalitions, eval.general_market, result.price);
    result.trades = std::move(dist.trades);
  }

  // Settle: apply trades, then clear each agent's residual with the
  // main grid (public per-agent bookkeeping, not part of the MPC).
  for (const Trade& t : result.trades) {
    result.market_sale[t.seller_index] += t.energy_kwh;
    result.market_purchase[t.buyer_index] += t.energy_kwh;
    result.money_received[t.seller_index] += t.payment;
    result.money_paid[t.buyer_index] += t.payment;
  }
  for (size_t i = 0; i < n; ++i) {
    const Party& p = parties[i];
    switch (p.role()) {
      case grid::Role::kSeller: {
        result.supply_total += p.net_kwh();
        const double leftover = p.net_kwh() - result.market_sale[i];
        result.grid_export_kwh += leftover;
        result.money_received[i] += mp.buyback_price * leftover;
        break;
      }
      case grid::Role::kBuyer: {
        const double demand = -p.net_kwh();
        result.demand_total += demand;
        const double residual = demand - result.market_purchase[i];
        result.grid_import_kwh += residual;
        result.money_paid[i] += mp.retail_price * residual;
        result.buyer_total_cost += result.money_paid[i];
        break;
      }
      case grid::Role::kOffMarket:
        break;
    }
  }

  result.runtime_seconds = timer.ElapsedSeconds();
  result.bus_bytes = net::TotalBytesSent(ctx.endpoints) - bytes_before;
  // Measured before the idle-time pool refill (which draws too), so
  // every engine and schedule probes the identical stream position.
  result.rng_cursor = ctx.rng.Cursor();
  return result;
}

}  // namespace pem::protocol
