// Per-agent protocol state.
//
// A Party owns exactly the data the paper calls private: its window
// state (g, l, b), utility parameter k, battery coefficient ε, its
// Paillier key pair, and the per-window blinding nonce.  Protocol code
// is written so that another party's fields are never read directly —
// all cross-party information flows through bus messages.
#pragma once

#include <cstdint>
#include <optional>

#include "crypto/paillier.h"
#include "crypto/rng.h"
#include "crypto/secure_compare.h"
#include "grid/types.h"
#include "market/params.h"
#include "net/message.h"
#include "protocol/fault.h"
#include "protocol/topology.h"
#include "util/fixed_point.h"

namespace pem::protocol {

struct PemConfig {
  int key_bits = 1024;
  crypto::SecureCompareConfig compare;  // 64-bit comparator by default
  // Blinding nonces r_i are drawn uniformly from [0, nonce_bound).
  int64_t nonce_bound = int64_t{1} << 40;
  // The integer K of Protocol 4's reciprocal trick.
  int64_t ratio_scale = int64_t{1} << 40;
  // Idle-time precomputation of Paillier encryption randomness (the
  // paper's "executed in parallel during idle time" optimization that
  // flattens Fig. 5(b)'s key-size lines).  When enabled, the
  // simulation refills pools between windows, outside the per-window
  // runtime measurement.
  bool precompute_encryption = false;
  size_t encryption_pool_target = 1024;
  // Owner-side CRT encryption (the encryption-side twin of the CRT
  // decryption the private key always uses): when an agent encrypts
  // under its OWN key — the elected aggregators' ring contributions,
  // and every idle-time pool refill for a key whose owner is known —
  // the r^n factor runs mod p^2/q^2 instead of mod n^2.  Bit-identical
  // ciphertexts either way (asserted by the crypto parity tests), so
  // this is purely a speed knob; off reproduces the public-path-only
  // seed behavior for the ablation bench.
  bool crt_encryption = true;
  // NOTE: compute-phase parallelism is no longer configured here; it
  // moved to net::ExecutionPolicy (transport kind + worker count),
  // threaded through ProtocolContext/SimulationConfig.
  // §VI collusion resistance: select the decrypting agents (Hr1, Hr2,
  // Hb, Hs) by a jointly-random commit-reveal coin flip within the
  // candidate coalition instead of trusting a single source of
  // randomness.  Costs O(m^2) small messages per selection.
  bool collusion_resistant_selection = false;
  // §VI active-cheater auditing (protocol/audit.h runs it at the top
  // of every window when enabled) and the scripted misbehavior the
  // adversarial test wall injects.  Both live here — inside the config
  // that forked backends copy into every child — so each independent
  // process replays the same audit and the same cheat, and the window
  // verdict is derived identically everywhere.
  AuditPolicy audit;
  CheatPlan cheat;
  // Aggregation plan shape (protocol/topology.h): the flat ring of the
  // paper, or a k-ary hierarchy of sub-rings whose leaders re-aggregate
  // up the tree.  Market outcomes are bit-identical either way (the
  // plan invariants in topology.h); only the wire shape — and the
  // critical-path hop count — changes.  Lives here so forked backends
  // copy it into every child and all processes derive the same plan.
  TopologyConfig topology;
  market::MarketParams market;
};

class Party {
 public:
  Party(net::AgentId id, grid::AgentParams params) : id_(id), params_(params) {}

  net::AgentId id() const { return id_; }
  const grid::AgentParams& params() const { return params_; }
  grid::Role role() const { return role_; }

  // Dynamic membership.  An inactive party (left the community, or
  // excluded as a detected cheater) classifies as kOffMarket at every
  // BeginWindow until reactivated — coalitions and rings re-form around
  // it automatically.  BeginWindow still consumes the same RNG draws
  // for inactive parties, so a roster change never shifts another
  // agent's randomness stream (what keeps honest transcripts
  // byte-identical across rosters).
  bool active() const { return active_; }
  void SetActive(bool active) { active_ = active; }
  // Detected cheater: banned from the market for the rest of the day
  // (until a churn event explicitly re-admits it).  Takes effect
  // immediately — the role flips to kOffMarket mid-window so the
  // re-formed coalitions exclude it.
  void Exclude() {
    active_ = false;
    role_ = grid::Role::kOffMarket;
  }

  // Loads the window state: quantizes the net energy and draws the
  // blinding nonce for this window.
  void BeginWindow(const grid::WindowState& state, int64_t nonce_bound,
                   crypto::Rng& rng);

  const grid::WindowState& state() const { return state_; }
  // Quantized sn_i as a fixed-point raw integer (µkWh).
  int64_t net_raw() const { return net_raw_; }
  double net_kwh() const {
    return FixedPoint::FromRaw(net_raw_).ToDouble();
  }
  int64_t nonce() const { return nonce_; }

  // Fixed-point raws of the two Private Pricing aggregands.
  int64_t PreferenceRaw() const;   // k_i
  int64_t SupplyTermRaw() const;   // g_i + 1 + ε_i*b_i - b_i

  // Lazily generates this party's Paillier key pair.  The paper has
  // every agent generate keys at setup (Protocol 1, lines 1-2); we
  // defer to first use since only the randomly chosen aggregators'
  // keys are ever exercised in a window.
  const crypto::PaillierKeyPair& EnsureKeys(int key_bits, crypto::Rng& rng);
  bool HasKeys() const { return keys_.has_value(); }
  const crypto::PaillierPublicKey& public_key() const;
  const crypto::PaillierPrivateKey& private_key() const;

  // The owner-side CRT fast path over this party's own key; nullptr
  // until EnsureKeys has run.  Protocol code uses it for encryptions
  // where this party encrypts under its own public key.
  const crypto::PaillierCrtEncryptor* crt_encryptor() const {
    return crt_.has_value() ? &*crt_ : nullptr;
  }

 private:
  net::AgentId id_;
  grid::AgentParams params_;
  grid::WindowState state_;
  grid::Role role_ = grid::Role::kOffMarket;
  bool active_ = true;
  int64_t net_raw_ = 0;
  int64_t nonce_ = 0;
  std::optional<crypto::PaillierKeyPair> keys_;
  std::optional<crypto::PaillierCrtEncryptor> crt_;
};

}  // namespace pem::protocol
