#include "protocol/pricing.h"

#include "protocol/coin_flip.h"
#include "util/error.h"
#include "util/fixed_point.h"

namespace pem::protocol {

PricingResult RunPrivatePricing(ProtocolContext& ctx,
                                std::span<Party> parties,
                                const Coalitions& coalitions) {
  PEM_CHECK(!coalitions.sellers.empty(), "pricing requires sellers");
  PEM_CHECK(!coalitions.buyers.empty(), "pricing requires buyers");

  PricingResult result;
  const size_t hb = SelectAgent(ctx, parties, coalitions.buyers);
  result.hb_buyer_index = hb;
  Party& buyer_hb = parties[hb];
  buyer_hb.EnsureKeys(ctx.config.key_bits, ctx.rng);
  BroadcastPublicKey(ctx, buyer_hb);

  // Lines 2-7: ring-aggregate Σ k_i and Σ (g_i + 1 + ε_i b_i − b_i)
  // over the seller coalition, shaped by the configured aggregation
  // topology.  Both sums run under the same key and plan, so their 2m
  // encryptions are fused into one compute phase (one ParallelFor
  // fan-out) before the two sequential forward passes.
  const AggregationTopology plan =
      PlanRingTopology(ctx, coalitions.sellers);
  const std::function<int64_t(const Party&)> lanes[] = {
      [](const Party& p) { return p.PreferenceRaw(); },
      [](const Party& p) { return p.SupplyTermRaw(); },
  };
  const std::vector<crypto::PaillierCiphertext> sums = RingAggregateBatch(
      ctx, buyer_hb.public_key(), parties, plan, lanes, buyer_hb.id());
  const int64_t sum_k_raw = buyer_hb.private_key().DecryptSigned(sums[0]);
  const int64_t sum_supply_raw =
      buyer_hb.private_key().DecryptSigned(sums[1]);

  // Lines 8-9: Hb derives p̂ and clamps to [pl, ph].
  result.sums.sum_k = FixedPoint::FromRaw(sum_k_raw).ToDouble();
  result.sums.sum_supply = FixedPoint::FromRaw(sum_supply_raw).ToDouble();
  const market::PriceSolution sol =
      market::SolvePriceFromSums(result.sums, ctx.config.market);
  result.price = sol.price;
  result.interior_price = sol.interior_price;

  net::ByteWriter w;
  w.F64(result.price);
  ctx.ep(buyer_hb.id()).Send(net::kBroadcast, kMsgPrice, w.Take());
  for (net::AgentId a = 0; a < ctx.num_agents(); ++a) {
    if (a == buyer_hb.id()) continue;
    net::Message m = ExpectMessage(ctx.ep(a), kMsgPrice);
    net::ByteReader r(m.payload);
    PEM_CHECK(r.F64() == result.price, "price broadcast mismatch");
  }
  return result;
}

}  // namespace pem::protocol
