#include "protocol/pricing.h"

#include "protocol/coin_flip.h"
#include "util/error.h"
#include "util/fixed_point.h"

namespace pem::protocol {

PricingResult RunPrivatePricing(ProtocolContext& ctx,
                                std::span<Party> parties,
                                const Coalitions& coalitions) {
  PEM_CHECK(!coalitions.sellers.empty(), "pricing requires sellers");
  PEM_CHECK(!coalitions.buyers.empty(), "pricing requires buyers");

  PricingResult result;
  const size_t hb = SelectAgent(ctx, parties, coalitions.buyers);
  result.hb_buyer_index = hb;
  Party& buyer_hb = parties[hb];
  buyer_hb.EnsureKeys(ctx.config.key_bits, ctx.rng);
  BroadcastPublicKey(ctx, buyer_hb);

  // Lines 2-5: ring-aggregate Σ k_i over the seller coalition.
  const crypto::PaillierCiphertext enc_sum_k =
      RingAggregate(ctx, buyer_hb.public_key(), parties, coalitions.sellers,
                    [](const Party& p) { return p.PreferenceRaw(); },
                    buyer_hb.id());
  const int64_t sum_k_raw = buyer_hb.private_key().DecryptSigned(enc_sum_k);

  // Lines 6-7: repeat for Σ (g_i + 1 + ε_i b_i − b_i).
  const crypto::PaillierCiphertext enc_sum_supply =
      RingAggregate(ctx, buyer_hb.public_key(), parties, coalitions.sellers,
                    [](const Party& p) { return p.SupplyTermRaw(); },
                    buyer_hb.id());
  const int64_t sum_supply_raw =
      buyer_hb.private_key().DecryptSigned(enc_sum_supply);

  // Lines 8-9: Hb derives p̂ and clamps to [pl, ph].
  result.sums.sum_k = FixedPoint::FromRaw(sum_k_raw).ToDouble();
  result.sums.sum_supply = FixedPoint::FromRaw(sum_supply_raw).ToDouble();
  const market::PriceSolution sol =
      market::SolvePriceFromSums(result.sums, ctx.config.market);
  result.price = sol.price;
  result.interior_price = sol.interior_price;

  net::ByteWriter w;
  w.F64(result.price);
  ctx.bus.Send({buyer_hb.id(), net::kBroadcast, kMsgPrice, w.Take()});
  for (net::AgentId a = 0; a < ctx.bus.num_agents(); ++a) {
    if (a == buyer_hb.id()) continue;
    net::Message m = ExpectMessage(ctx.bus, a, kMsgPrice);
    net::ByteReader r(m.payload);
    PEM_CHECK(r.F64() == result.price, "price broadcast mismatch");
  }
  return result;
}

}  // namespace pem::protocol
