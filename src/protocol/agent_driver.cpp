#include "protocol/agent_driver.h"

#include <cmath>
#include <limits>
#include <string>

#include "net/agent_supervisor.h"
#include "net/serialize.h"
#include "util/error.h"

namespace pem::protocol {
namespace {

void WriteStats(net::ByteWriter& w, const net::TrafficStats& s) {
  w.U64(s.bytes_sent);
  w.U64(s.bytes_received);
  w.U64(s.messages_sent);
  w.U64(s.messages_received);
}

net::TrafficStats ReadStats(net::ByteReader& r) {
  net::TrafficStats s;
  s.bytes_sent = r.U64();
  s.bytes_received = r.U64();
  s.messages_sent = r.U64();
  s.messages_received = r.U64();
  return s;
}

net::TrafficStats Delta(const net::TrafficStats& now,
                        const net::TrafficStats& before) {
  net::TrafficStats d;
  d.bytes_sent = now.bytes_sent - before.bytes_sent;
  d.bytes_received = now.bytes_received - before.bytes_received;
  d.messages_sent = now.messages_sent - before.messages_sent;
  d.messages_received = now.messages_received - before.messages_received;
  return d;
}

bool SameDouble(double a, double b) {
  // Exact bit-level agreement is the claim: every child computed the
  // identical arithmetic from identical inputs.
  return a == b || (std::isnan(a) && std::isnan(b));
}

bool SameReport(const WindowReport& a, const WindowReport& b) {
  if (a.audit != b.audit) return false;
  if (a.window != b.window || a.rng_cursor != b.rng_cursor) return false;
  if (a.type != b.type || !SameDouble(a.price, b.price) ||
      !SameDouble(a.supply_total, b.supply_total) ||
      !SameDouble(a.demand_total, b.demand_total) ||
      !SameDouble(a.buyer_total_cost, b.buyer_total_cost) ||
      !SameDouble(a.grid_import_kwh, b.grid_import_kwh) ||
      !SameDouble(a.grid_export_kwh, b.grid_export_kwh) ||
      a.num_sellers != b.num_sellers || a.num_buyers != b.num_buyers ||
      a.bus_bytes != b.bus_bytes || a.trades.size() != b.trades.size()) {
    return false;
  }
  for (size_t i = 0; i < a.trades.size(); ++i) {
    const Trade& x = a.trades[i];
    const Trade& y = b.trades[i];
    if (x.seller_index != y.seller_index || x.buyer_index != y.buyer_index ||
        !SameDouble(x.energy_kwh, y.energy_kwh) ||
        !SameDouble(x.payment, y.payment)) {
      return false;
    }
  }
  return true;
}

}  // namespace

std::vector<uint8_t> EncodeWindowReport(const WindowReport& report) {
  net::ByteWriter w;
  w.I64(report.window);
  w.U32(static_cast<uint32_t>(report.type));
  w.F64(report.price);
  w.F64(report.supply_total);
  w.F64(report.demand_total);
  w.F64(report.buyer_total_cost);
  w.F64(report.grid_import_kwh);
  w.F64(report.grid_export_kwh);
  w.U32(static_cast<uint32_t>(report.num_sellers));
  w.U32(static_cast<uint32_t>(report.num_buyers));
  w.U32(static_cast<uint32_t>(report.trades.size()));
  for (const Trade& t : report.trades) {
    w.U64(static_cast<uint64_t>(t.seller_index));
    w.U64(static_cast<uint64_t>(t.buyer_index));
    w.F64(t.energy_kwh);
    w.F64(t.payment);
  }
  w.F64(report.runtime_seconds);
  w.U64(report.bus_bytes);
  w.U64(report.rng_cursor);
  w.U8(report.audit.audited ? 1 : 0);
  w.I64(report.audit.auditor);
  w.U32(static_cast<uint32_t>(report.audit.faults.size()));
  for (const ProtocolFault& f : report.audit.faults) {
    w.I64(f.cheater);
    w.U8(static_cast<uint8_t>(f.cheat));
    w.I64(f.window);
    w.Str(f.detail);
  }
  WriteStats(w, report.self_stats);
  return w.Take();
}

WindowReport DecodeWindowReport(std::span<const uint8_t> bytes) {
  net::ByteReader r(bytes);
  WindowReport report;
  report.window = static_cast<int>(r.I64());
  report.type = static_cast<market::MarketType>(r.U32());
  report.price = r.F64();
  report.supply_total = r.F64();
  report.demand_total = r.F64();
  report.buyer_total_cost = r.F64();
  report.grid_import_kwh = r.F64();
  report.grid_export_kwh = r.F64();
  report.num_sellers = static_cast<int>(r.U32());
  report.num_buyers = static_cast<int>(r.U32());
  const uint32_t trades = r.U32();
  report.trades.reserve(trades);
  for (uint32_t i = 0; i < trades; ++i) {
    Trade t;
    t.seller_index = static_cast<size_t>(r.U64());
    t.buyer_index = static_cast<size_t>(r.U64());
    t.energy_kwh = r.F64();
    t.payment = r.F64();
    report.trades.push_back(t);
  }
  report.runtime_seconds = r.F64();
  report.bus_bytes = r.U64();
  report.rng_cursor = r.U64();
  report.audit.audited = r.U8() != 0;
  report.audit.auditor = static_cast<net::AgentId>(r.I64());
  const uint32_t faults = r.U32();
  report.audit.faults.reserve(faults);
  for (uint32_t i = 0; i < faults; ++i) {
    ProtocolFault f;
    f.cheater = static_cast<net::AgentId>(r.I64());
    f.cheat = static_cast<CheatClass>(r.U8());
    f.window = static_cast<int>(r.I64());
    f.detail = r.Str();
    report.audit.faults.push_back(std::move(f));
  }
  report.self_stats = ReadStats(r);
  PEM_CHECK(r.AtEnd(), "window report: trailing bytes");
  return report;
}

AgentDriver::AgentDriver(net::AgentId self, ProtocolContext& ctx,
                         std::span<Party> parties, Callbacks callbacks)
    : self_(self), ctx_(ctx), parties_(parties),
      callbacks_(std::move(callbacks)) {
  PEM_CHECK(self >= 0 && self < ctx.num_agents(),
            "agent driver: self id out of range");
  PEM_CHECK(parties_.size() == static_cast<size_t>(ctx.num_agents()),
            "agent driver: parties/endpoints size mismatch");
  PEM_CHECK(callbacks_.begin_window != nullptr,
            "agent driver: begin_window callback is required");
}

WindowReport AgentDriver::RunWindow(int window) {
  callbacks_.begin_window(window);
  const net::TrafficStats before = ctx_.ep(self_).stats();
  const PemWindowResult result = RunPemWindow(ctx_, parties_, window);

  WindowReport report;
  report.window = window;
  report.type = result.type;
  report.price = result.price;
  report.supply_total = result.supply_total;
  report.demand_total = result.demand_total;
  report.buyer_total_cost = result.buyer_total_cost;
  report.grid_import_kwh = result.grid_import_kwh;
  report.grid_export_kwh = result.grid_export_kwh;
  for (const Party& p : parties_) {
    if (p.role() == grid::Role::kSeller) ++report.num_sellers;
    if (p.role() == grid::Role::kBuyer) ++report.num_buyers;
  }
  report.trades = result.trades;
  report.runtime_seconds = result.runtime_seconds;
  report.bus_bytes = result.bus_bytes;
  report.rng_cursor = result.rng_cursor;
  report.audit = result.audit;
  report.self_stats = Delta(ctx_.ep(self_).stats(), before);
  // Driver-level cheats: only the cheater's own process lies — its
  // peers report honestly — so the parent's cross-checks in
  // CollectWindowReportsBatch are what must catch them.
  if (ctx_.config.cheat.ActiveFor(self_, window)) {
    if (ctx_.config.cheat.cheat == CheatClass::kForgedReport) {
      // Forged attested traffic vs the router's wire bytes.
      report.self_stats.bytes_sent += 7;
    } else if (ctx_.config.cheat.cheat == CheatClass::kStaleReport) {
      // Replays the previous window's id: the report no longer answers
      // the command it follows, which the parent's echo check rejects.
      report.window = window - 1;
    }
  }
  return report;
}

int AgentDriver::Serve(net::ControlChannel& ctl) {
  // The parent's watchdog bounds ITS waits on us; our wait for the next
  // command is idle time with no natural upper bound (a day-long
  // simulation schedules windows as it reaches them), so wait
  // effectively forever — if the parent dies, the control read throws
  // on hangup (and PDEATHSIG reaps us outright anyway).
  constexpr int kIdleMs = std::numeric_limits<int>::max();
  int windows_run = 0;
  for (;;) {
    const net::ControlRecord cmd = ctl.Read(kIdleMs);
    if (cmd.tag == net::kCtlCmdShutdown) {
      ctl.Write(net::kCtlRepDone);
      return windows_run;
    }
    PEM_CHECK(cmd.tag == net::kCtlCmdRun,
              "agent driver: unexpected control command");
    net::ByteReader r(cmd.payload);
    const int window = static_cast<int>(r.U32());
    PEM_CHECK(r.AtEnd(), "agent driver: trailing bytes in run command");
    const WindowReport report = RunWindow(window);
    ctl.Write(net::kCtlRepWindow, EncodeWindowReport(report));
    if (callbacks_.after_window) callbacks_.after_window(window);
    ++windows_run;
  }
}

std::vector<CollectedWindow> CollectWindowReportsBatch(
    net::AgentSupervisor& transport,
    std::span<const net::TrafficStats> stats_before,
    std::span<const int> windows, const Stopwatch* since) {
  const int n = transport.num_agents();
  PEM_CHECK(stats_before.size() == static_cast<size_t>(n),
            "collect: stats snapshot size mismatch");
  PEM_CHECK(!windows.empty(), "collect: empty window batch");
  // Each child's control stream yields its reports in commanded order,
  // so window k's report is the k-th record of every agent — but the
  // agents progress through the batch independently, so the reads
  // below interleave their windows out of order in wall-clock terms.
  // The echoed window id is what proves each record really answers the
  // command the parent keys it to.
  std::vector<CollectedWindow> out;
  out.reserve(windows.size());
  // attested_sum[a]: this agent's summed per-window attested deltas,
  // for the batch-granularity wire cross-check below.
  std::vector<net::TrafficStats> attested_sum(static_cast<size_t>(n));
  uint64_t ledger_total = 0;
  for (const int w : windows) {
    std::vector<WindowReport> reports;
    reports.reserve(static_cast<size_t>(n));
    for (net::AgentId a = 0; a < n; ++a) {
      const net::ControlRecord rec = transport.ReadRecord(a);
      PEM_CHECK(rec.tag == net::kCtlRepWindow,
                "collect: child sent a non-report record");
      WindowReport report = DecodeWindowReport(rec.payload);
      // (a) The echo check: a report that names any window other than
      // the commanded one is stale (replayed, or a child that lost
      // sync) and must never be merged.  An active deviation, surfaced
      // as a structured fault naming the agent rather than an abort.
      if (report.window != w) {
        throw ProtocolError(ProtocolFault{
            a, CheatClass::kStaleReport, w,
            "report echoes window " + std::to_string(report.window) +
                ", parent commanded window " + std::to_string(w)});
      }
      reports.push_back(std::move(report));
    }
    // (b) Every independent process derived the same public outcome
    // (including the rng cursor).  A divergent child is lying about
    // (or wrong about) the window.
    for (net::AgentId a = 1; a < n; ++a) {
      if (!SameReport(reports[0], reports[static_cast<size_t>(a)])) {
        throw ProtocolError(ProtocolFault{
            a, CheatClass::kForgedReport, w,
            "window report diverges from agent 0's"});
      }
    }
    for (net::AgentId a = 0; a < n; ++a) {
      const net::TrafficStats& s = reports[static_cast<size_t>(a)].self_stats;
      net::TrafficStats& sum = attested_sum[static_cast<size_t>(a)];
      sum.bytes_sent += s.bytes_sent;
      sum.bytes_received += s.bytes_received;
      sum.messages_sent += s.messages_sent;
      sum.messages_received += s.messages_received;
    }
    ledger_total += reports[0].bus_bytes;

    CollectedWindow cw;
    cw.window = w;
    cw.report = reports[0];
    // The window is done when its slowest agent is: report the max.
    for (const WindowReport& rep : reports) {
      if (rep.runtime_seconds > cw.report.runtime_seconds) {
        cw.report.runtime_seconds = rep.runtime_seconds;
      }
    }
    // Parent-side completion stamp: dispatch of the batch to this
    // window's last report.  In-flight windows share the span.
    if (since != nullptr) cw.parent_seconds = since->ElapsedSeconds();
    out.push_back(std::move(cw));
  }
  // Every child has reported every window of the batch, so every frame
  // is consumed.  Relay-routed backends account a frame before
  // delivering it, so their ledgers are already complete; the shm
  // backend's accounting tap trails delivery and must be drained to
  // the write cursors before the cross-checks below read the ledger.
  transport.SyncLedger();
  // (c) Canonical accounting == literal socket traffic, closed over
  // the batch: a child whose summed attested deltas disagree with the
  // bytes the router actually moved for it forged a report.  (With one
  // window in flight this is exactly the per-window check.)
  uint64_t wire_total = 0;
  for (net::AgentId a = 0; a < n; ++a) {
    const net::TrafficStats wire =
        Delta(transport.stats(a), stats_before[static_cast<size_t>(a)]);
    const net::TrafficStats& attested = attested_sum[static_cast<size_t>(a)];
    if (!(wire == attested)) {
      throw ProtocolError(ProtocolFault{
          a, CheatClass::kForgedReport, -1,
          "attested traffic (sent " + std::to_string(attested.bytes_sent) +
              ") != router wire bytes (sent " +
              std::to_string(wire.bytes_sent) + ")"});
    }
    wire_total += wire.bytes_sent;
  }
  if (wire_total != ledger_total) {
    throw ProtocolError(ProtocolFault{
        -1, CheatClass::kForgedReport, -1,
        "batch wire total " + std::to_string(wire_total) +
            " != canonical ledger " + std::to_string(ledger_total)});
  }
  return out;
}

WindowReport CollectWindowReports(
    net::AgentSupervisor& transport,
    std::span<const net::TrafficStats> stats_before, int expected_window) {
  const int windows[] = {expected_window};
  return CollectWindowReportsBatch(transport, stats_before, windows)
      .front()
      .report;
}

}  // namespace pem::protocol
