#include "protocol/audit.h"

#include <string>

#include "net/frame.h"
#include "protocol/key_directory.h"
#include "protocol/topology.h"
#include "protocol/verifiable.h"
#include "util/error.h"

namespace pem::protocol {
namespace {

// The audit side streams derive from (policy.seed, window[, agent])
// through the shared MixSeed finalizer (protocol/topology.h) — the
// same discipline topology leader election follows.  These streams
// are independent of the protocol RNG by construction, so running (or
// skipping) an audit draw never shifts an honest agent's randomness
// schedule.
uint64_t AgentStreamSeed(uint64_t seed, int window, net::AgentId agent) {
  return MixSeed(
      MixSeed(seed, static_cast<uint64_t>(static_cast<int64_t>(window))),
      static_cast<uint64_t>(static_cast<int64_t>(agent)));
}

// The audited quantity: the nonce-blinded net energy, the same blinding
// Protocol 2 applies to ring contributions.  The opening reveals
// value + nonce only, so the audit costs no privacy while the nonce
// stays secret.
int64_t BlindedContribution(const Party& p) { return p.net_raw() + p.nonce(); }

// Builds one participant's (possibly cheating) contribution.  Honest
// bytes depend only on (policy.seed, window, agent, blinded value), so
// a cheater elsewhere in the roster cannot perturb them.
VerifiableResult BuildContribution(const ProtocolContext& ctx,
                                   const crypto::PaillierPublicKey& pk,
                                   const Party& p) {
  const AuditPolicy& policy = ctx.config.audit;
  const CheatPlan& plan = ctx.config.cheat;
  const bool cheating = plan.ActiveFor(p.id(), ctx.window);
  const int64_t blinded = BlindedContribution(p);

  if (cheating && plan.cheat == CheatClass::kReplayedFrame) {
    // Replay: re-publish the previous window's contribution verbatim —
    // stale domain, stale randomness stream.  Self-consistent, so only
    // the domain binding can catch it.
    crypto::DeterministicRng stale(
        AgentStreamSeed(policy.seed, ctx.window - 1, p.id()));
    return MakeVerifiableContribution(pk, blinded, stale,
                                      AuditDomain(ctx.window - 1, p.id()));
  }

  crypto::DeterministicRng rng(
      AgentStreamSeed(policy.seed, ctx.window, p.id()));
  VerifiableResult vr = MakeVerifiableContribution(
      pk, blinded, rng, AuditDomain(ctx.window, p.id()));
  if (cheating && plan.cheat == CheatClass::kMisEncryptedContribution) {
    // The ciphertext entering the ring encrypts value+1 under the
    // committed randomness; commitment and witness stay honest.
    vr.contribution.ciphertext = pk.EncryptWithRandomness(
        pk.EncodeSigned(blinded + 1), vr.witness.encryption_randomness);
  }
  if (cheating && plan.cheat == CheatClass::kCommitmentMismatch) {
    // Publish a commitment the witness cannot open.
    vr.contribution.commitment.digest.bytes[0] ^= 0x01;
  }
  return vr;
}

}  // namespace

AuditOutcome RunAuditRound(ProtocolContext& ctx, std::span<Party> parties) {
  const AuditPolicy& policy = ctx.config.audit;
  AuditOutcome outcome;
  if (!policy.enabled) return outcome;

  // Active market participants only: off-market (and churned-out)
  // parties neither contribute to rings nor get audited.
  std::vector<size_t> participants;
  for (size_t i = 0; i < parties.size(); ++i) {
    if (parties[i].active() && parties[i].role() != grid::Role::kOffMarket) {
      participants.push_back(i);
    }
  }
  if (participants.size() < 2) return outcome;

  // Window coin flip + auditor draw, from the window side stream.
  crypto::DeterministicRng side(
      MixSeed(policy.seed, static_cast<uint64_t>(
                               static_cast<int64_t>(ctx.window))));
  if (policy.audit_one_in > 1) {
    const int64_t draw =
        crypto::BigInt::RandomBelow(
            crypto::BigInt(static_cast<int64_t>(policy.audit_one_in)), side)
            .ToInt64();
    if (draw != 0) return outcome;
  }
  size_t auditor_idx = participants.front();
  bool pinned = false;
  if (policy.fixed_auditor >= 0) {
    for (size_t i : participants) {
      if (parties[i].id() == policy.fixed_auditor) {
        auditor_idx = i;
        pinned = true;
        break;
      }
    }
  }
  if (!pinned) auditor_idx = PickRandomIndex(participants, side);

  Party& auditor = parties[auditor_idx];
  outcome.audited = true;
  outcome.auditor = auditor.id();

  // The auditor announces the key contributions encrypt under.  (May
  // throw ProtocolError if the announcer equivocates — that cheat is
  // woven into the key material and cannot be survived by exclusion.)
  auditor.EnsureKeys(ctx.config.key_bits, ctx.rng);
  BroadcastPublicKey(ctx, auditor);
  const crypto::PaillierPublicKey& pk = auditor.public_key();

  // Round 1: every audited participant publishes ciphertext +
  // commitment (agent order — the deterministic script order every
  // backend replays).
  struct Slot {
    net::AgentId agent = -1;
    VerifiableContribution published;
    ContributionWitness witness;  // retained contributor-side
  };
  std::vector<Slot> slots;
  for (size_t i : participants) {
    if (i == auditor_idx) continue;
    Party& p = parties[i];
    Slot slot;
    slot.agent = p.id();
    VerifiableResult vr = BuildContribution(ctx, pk, p);
    slot.witness = vr.witness;

    net::ByteWriter w;
    WriteCiphertext(w, pk, vr.contribution.ciphertext);
    w.Bytes(vr.contribution.commitment.digest.bytes);
    ctx.ep(p.id()).Send(auditor.id(), kMsgAuditContribution, w.Take());

    net::Message m = ExpectMessage(ctx.ep(auditor.id()), kMsgAuditContribution);
    PEM_CHECK(m.from == p.id(), "audit: contribution from unexpected agent");
    net::ByteReader r(m.payload);
    slot.published.ciphertext = ReadCiphertext(r);
    const std::vector<uint8_t> digest = r.Bytes();
    PEM_CHECK(digest.size() == slot.published.commitment.digest.bytes.size(),
              "audit: malformed commitment digest");
    std::copy(digest.begin(), digest.end(),
              slot.published.commitment.digest.bytes.begin());
    slots.push_back(std::move(slot));
  }

  // Round 2: demand -> witness -> judgment, one agent at a time.  The
  // verdict for each agent is a pure function of published bytes, the
  // witness bytes, and the ledger, so every replaying process derives
  // the same fault list.
  std::vector<uint8_t> verdicts(static_cast<size_t>(ctx.num_agents()),
                                static_cast<uint8_t>(CheatClass::kNone));
  for (Slot& slot : slots) {
    const uint64_t expected_domain = AuditDomain(ctx.window, slot.agent);
    {
      net::ByteWriter w;
      w.U64(expected_domain);
      ctx.ep(auditor.id()).Send(slot.agent, kMsgAuditDemand, w.Take());
    }
    ExpectMessage(ctx.ep(slot.agent), kMsgAuditDemand);

    // The contributor attests its cumulative sent-byte count as of the
    // moment before this witness goes out; cheat class 4 forges it.
    uint64_t claimed = ctx.ep(slot.agent).stats().bytes_sent;
    if (ctx.config.cheat.ActiveFor(slot.agent, ctx.window) &&
        ctx.config.cheat.cheat == CheatClass::kForgedByteCount) {
      claimed += 7;
    }
    {
      net::ByteWriter w;
      w.U64(slot.witness.domain);
      w.I64(slot.witness.blinded_value);
      w.Bytes(slot.witness.encryption_randomness.ToBytes());
      w.Bytes(slot.witness.blinder);
      w.U64(claimed);
      ctx.ep(slot.agent).Send(auditor.id(), kMsgAuditWitness, w.Take());
    }

    net::Message m = ExpectMessage(ctx.ep(auditor.id()), kMsgAuditWitness);
    PEM_CHECK(m.from == slot.agent, "audit: witness from unexpected agent");
    net::ByteReader r(m.payload);
    ContributionWitness witness;
    witness.domain = r.U64();
    witness.blinded_value = r.I64();
    witness.encryption_randomness = crypto::BigInt::FromBytes(r.Bytes());
    const std::vector<uint8_t> blinder = r.Bytes();
    PEM_CHECK(blinder.size() == witness.blinder.size(),
              "audit: malformed witness blinder");
    std::copy(blinder.begin(), blinder.end(), witness.blinder.begin());
    const uint64_t attested = r.U64();
    PEM_CHECK(r.AtEnd(), "audit: trailing witness bytes");

    // Byte attestation first: the auditor holds the ledger's view of
    // the sender (every backend accounts FramedSize per delivered
    // copy), minus the witness frame that just arrived.
    const uint64_t ledger_sent = ctx.ep(slot.agent).stats().bytes_sent -
                                 net::FramedSize(m.payload.size());
    CheatClass cheat = CheatClass::kNone;
    std::string detail;
    if (attested != ledger_sent) {
      cheat = CheatClass::kForgedByteCount;
      detail = "attested bytes_sent " + std::to_string(attested) +
               " != ledger " + std::to_string(ledger_sent);
    } else {
      switch (JudgeContribution(pk, slot.published, witness,
                                expected_domain)) {
        case ContributionVerdict::kHonest:
          break;
        case ContributionVerdict::kReplayedDomain:
          cheat = CheatClass::kReplayedFrame;
          detail = "witness domain " + std::to_string(witness.domain) +
                   " != expected " + std::to_string(expected_domain);
          break;
        case ContributionVerdict::kCommitmentMismatch:
          cheat = CheatClass::kCommitmentMismatch;
          detail = "witness does not open the published commitment";
          break;
        case ContributionVerdict::kMisEncrypted:
          cheat = CheatClass::kMisEncryptedContribution;
          detail = "re-encryption does not reproduce the ring ciphertext";
          break;
      }
    }
    if (cheat != CheatClass::kNone) {
      verdicts[static_cast<size_t>(slot.agent)] = static_cast<uint8_t>(cheat);
      outcome.faults.push_back(
          ProtocolFault{slot.agent, cheat, ctx.window, std::move(detail)});
    }
  }

  // Round 3: fixed-size verdict broadcast (one byte per agent,
  // cheat-invariant size) so honest transcripts stay byte-identical in
  // shape; everyone applies the exclusions.
  ctx.ep(auditor.id()).Send(net::kBroadcast, kMsgAuditVerdict, verdicts);
  for (net::AgentId a = 0; a < ctx.num_agents(); ++a) {
    if (a == auditor.id()) continue;
    ExpectMessage(ctx.ep(a), kMsgAuditVerdict);
  }
  for (const ProtocolFault& f : outcome.faults) {
    for (Party& p : parties) {
      if (p.id() == f.cheater) p.Exclude();
    }
  }
  return outcome;
}

}  // namespace pem::protocol
