// Deterministic PRNG for the *simulation* side (trace generation,
// agent parameter sampling).  Cryptographic randomness lives in
// crypto/rng.h and must never be swapped for this.
#pragma once

#include <cstdint>
#include <random>

namespace pem {

class SimRandom {
 public:
  explicit SimRandom(uint64_t seed) : eng_(seed) {}

  double Uniform(double lo, double hi) {
    std::uniform_real_distribution<double> d(lo, hi);
    return d(eng_);
  }

  double Gaussian(double mean, double stddev) {
    std::normal_distribution<double> d(mean, stddev);
    return d(eng_);
  }

  int64_t UniformInt(int64_t lo, int64_t hi) {  // inclusive range
    std::uniform_int_distribution<int64_t> d(lo, hi);
    return d(eng_);
  }

  bool Bernoulli(double p) {
    std::bernoulli_distribution d(p);
    return d(eng_);
  }

  std::mt19937_64& engine() { return eng_; }

 private:
  std::mt19937_64 eng_;
};

}  // namespace pem
