// Minimal leveled logger.  Protocol code logs at kDebug; benches and
// examples set the level explicitly.  Not thread-safe by design: the
// simulation driver is single-threaded (see DESIGN.md §2 item 9).
#pragma once

#include <cstdarg>
#include <string>

namespace pem {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// printf-style logging; message is prefixed with level and subsystem tag.
void Logf(LogLevel level, const char* tag, const char* fmt, ...)
    __attribute__((format(printf, 3, 4)));

}  // namespace pem

#define PEM_LOG_DEBUG(tag, ...) ::pem::Logf(::pem::LogLevel::kDebug, tag, __VA_ARGS__)
#define PEM_LOG_INFO(tag, ...) ::pem::Logf(::pem::LogLevel::kInfo, tag, __VA_ARGS__)
#define PEM_LOG_WARN(tag, ...) ::pem::Logf(::pem::LogLevel::kWarn, tag, __VA_ARGS__)
#define PEM_LOG_ERROR(tag, ...) ::pem::Logf(::pem::LogLevel::kError, tag, __VA_ARGS__)
