// Lightweight error type used across the PEM library.
//
// Protocol and crypto code reports recoverable failures through
// pem::Result<T>; programming errors (precondition violations) use
// PEM_CHECK which aborts with a message.  We avoid exceptions on hot
// protocol paths but allow them at API boundaries (e.g. key parsing).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace pem {

// Error category tags.  Kept coarse on purpose: callers branch on
// category, humans read the message.
enum class ErrorCode {
  kInvalidArgument,
  kOutOfRange,
  kCryptoFailure,
  kProtocolViolation,
  kSerialization,
  kNotFound,
  kInternal,
};

inline const char* ErrorCodeName(ErrorCode c) {
  switch (c) {
    case ErrorCode::kInvalidArgument: return "invalid_argument";
    case ErrorCode::kOutOfRange: return "out_of_range";
    case ErrorCode::kCryptoFailure: return "crypto_failure";
    case ErrorCode::kProtocolViolation: return "protocol_violation";
    case ErrorCode::kSerialization: return "serialization";
    case ErrorCode::kNotFound: return "not_found";
    case ErrorCode::kInternal: return "internal";
  }
  return "unknown";
}

class Error {
 public:
  Error(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    return std::string(ErrorCodeName(code_)) + ": " + message_;
  }

 private:
  ErrorCode code_;
  std::string message_;
};

// Minimal expected-like result.  Intentionally small: value xor error.
template <typename T>
class Result {
 public:
  Result(T value) : v_(std::move(value)) {}          // NOLINT(implicit)
  Result(Error error) : v_(std::move(error)) {}      // NOLINT(implicit)

  bool ok() const { return std::holds_alternative<T>(v_); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    CheckOk();
    return std::get<T>(v_);
  }
  T& value() & {
    CheckOk();
    return std::get<T>(v_);
  }
  T&& value() && {
    CheckOk();
    return std::get<T>(std::move(v_));
  }

  const Error& error() const {
    if (ok()) Fail("Result::error() called on ok result");
    return std::get<Error>(v_);
  }

  T value_or(T fallback) const {
    return ok() ? std::get<T>(v_) : std::move(fallback);
  }

 private:
  [[noreturn]] static void Fail(const char* what) {
    std::fprintf(stderr, "pem fatal: %s\n", what);
    std::abort();
  }
  void CheckOk() const {
    if (!ok()) {
      std::fprintf(stderr, "pem fatal: Result::value() on error: %s\n",
                   std::get<Error>(v_).ToString().c_str());
      std::abort();
    }
  }

  std::variant<T, Error> v_;
};

// Result<void> specialization-by-alias.
class Status {
 public:
  Status() = default;
  Status(Error error) : err_(std::move(error)) {}  // NOLINT(implicit)

  static Status Ok() { return Status(); }

  bool ok() const { return !err_.has_value(); }
  explicit operator bool() const { return ok(); }
  const Error& error() const { return *err_; }

 private:
  std::optional<Error> err_;
};

}  // namespace pem

// Precondition check: aborts on violation.  Used for programmer errors
// only, never for input validation of remote data.
#define PEM_CHECK(cond, msg)                                              \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "PEM_CHECK failed at %s:%d: %s\n", __FILE__,   \
                   __LINE__, (msg));                                      \
      std::abort();                                                       \
    }                                                                     \
  } while (0)
