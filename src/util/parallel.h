// Minimal fork-join parallel loop.
//
// Used to emulate the paper's deployment parallelism: each agent runs
// in its own Docker container, so the per-agent encryptions of a ring
// aggregation all happen concurrently in real life.  ParallelFor gives
// the simulation the same property without a dependency on TBB/OpenMP.
#pragma once

#include <atomic>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pem {

// Invokes fn(i) for i in [begin, end) across up to `threads` workers.
// Blocks until all iterations complete.  fn must be safe to run
// concurrently for distinct i.  threads <= 1 degrades to a serial loop.
//
// If a worker's fn throws, remaining iterations are abandoned (workers
// stop picking up new indices), the pool is joined, and the first
// captured exception is rethrown on the calling thread — matching the
// serial loop's behavior instead of std::terminate-ing the process.
inline void ParallelFor(size_t begin, size_t end, unsigned threads,
                        const std::function<void(size_t)>& fn) {
  if (end <= begin) return;
  const size_t count = end - begin;
  if (threads <= 1 || count == 1) {
    for (size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  const unsigned workers =
      static_cast<unsigned>(std::min<size_t>(threads, count));
  std::vector<std::thread> pool;
  pool.reserve(workers);
  std::mutex error_mutex;
  std::exception_ptr first_error;
  std::atomic<bool> failed{false};
  try {
    for (unsigned w = 0; w < workers; ++w) {
      pool.emplace_back([&, w]() {
        // Strided assignment: contiguous chunks would serialize when the
        // per-iteration cost is skewed.
        for (size_t i = begin + w; i < end; i += workers) {
          if (failed.load(std::memory_order_relaxed)) return;
          try {
            fn(i);
          } catch (...) {
            {
              const std::lock_guard<std::mutex> lock(error_mutex);
              if (!first_error) first_error = std::current_exception();
            }
            failed.store(true, std::memory_order_relaxed);
            return;
          }
        }
      });
    }
  } catch (...) {
    // std::thread construction can throw (e.g. EAGAIN under resource
    // exhaustion); letting it unwind past joinable threads would
    // std::terminate.  Stop the workers already running, join them,
    // and surface the spawn failure instead.
    failed.store(true, std::memory_order_relaxed);
    for (std::thread& t : pool) t.join();
    throw;
  }
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

// Default worker count: the machine's concurrency, at least 1.
inline unsigned DefaultThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace pem
