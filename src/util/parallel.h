// Minimal fork-join parallel loop.
//
// Used to emulate the paper's deployment parallelism: each agent runs
// in its own Docker container, so the per-agent encryptions of a ring
// aggregation all happen concurrently in real life.  ParallelFor gives
// the simulation the same property without a dependency on TBB/OpenMP.
#pragma once

#include <functional>
#include <thread>
#include <vector>

namespace pem {

// Invokes fn(i) for i in [begin, end) across up to `threads` workers.
// Blocks until all iterations complete.  fn must be safe to run
// concurrently for distinct i.  threads <= 1 degrades to a serial loop.
inline void ParallelFor(size_t begin, size_t end, unsigned threads,
                        const std::function<void(size_t)>& fn) {
  if (end <= begin) return;
  const size_t count = end - begin;
  if (threads <= 1 || count == 1) {
    for (size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  const unsigned workers =
      static_cast<unsigned>(std::min<size_t>(threads, count));
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    pool.emplace_back([&, w]() {
      // Strided assignment: contiguous chunks would serialize when the
      // per-iteration cost is skewed.
      for (size_t i = begin + w; i < end; i += workers) fn(i);
    });
  }
  for (std::thread& t : pool) t.join();
}

// Default worker count: the machine's concurrency, at least 1.
inline unsigned DefaultThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace pem
