// Fixed-point encoding of market quantities (kWh, cents/kWh, utility
// parameters) into signed 64-bit integers, and from there into the
// Paillier plaintext group.
//
// All homomorphic aggregation in Protocols 2-4 operates on these
// fixed-point integers; the scale is a market-wide constant so sums and
// comparisons of encoded values equal encoded sums/comparisons of the
// underlying reals (up to quantization).
#pragma once

#include <cstdint>
#include <string>

#include "util/error.h"

namespace pem {

// Default scale: micro-units.  1 kWh -> 1'000'000 units.  Chosen so a
// 300-home market over a day stays far below 2^63 (see DESIGN.md §6 for
// the scale ablation).
inline constexpr int64_t kFixedPointScale = 1'000'000;

class FixedPoint {
 public:
  FixedPoint() = default;

  // Encodes a real quantity.  Rounds to nearest unit.
  static FixedPoint FromDouble(double v, int64_t scale = kFixedPointScale);

  // Wraps an already-scaled raw value.
  static FixedPoint FromRaw(int64_t raw, int64_t scale = kFixedPointScale);

  double ToDouble() const;
  int64_t raw() const { return raw_; }
  int64_t scale() const { return scale_; }

  bool IsZero() const { return raw_ == 0; }
  bool IsNegative() const { return raw_ < 0; }

  FixedPoint operator+(const FixedPoint& o) const;
  FixedPoint operator-(const FixedPoint& o) const;
  FixedPoint operator-() const;
  bool operator==(const FixedPoint& o) const = default;
  auto operator<=>(const FixedPoint& o) const {
    PEM_CHECK(scale_ == o.scale_, "fixed-point scale mismatch");
    return raw_ <=> o.raw_;
  }

  std::string ToString() const;

 private:
  FixedPoint(int64_t raw, int64_t scale) : raw_(raw), scale_(scale) {}

  int64_t raw_ = 0;
  int64_t scale_ = kFixedPointScale;
};

// Rounded integer division helper used by the Protocol-4 reciprocal
// trick: computes round(num / den) with den > 0.
int64_t RoundDiv(int64_t num, int64_t den);

}  // namespace pem
