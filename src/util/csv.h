// Tiny CSV writer used by the bench harnesses to dump paper-figure
// series next to the human-readable stdout tables.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace pem {

class CsvWriter {
 public:
  // Opens `path` for writing and emits the header row.  If the file
  // cannot be opened the writer silently degrades to a no-op (benches
  // still print to stdout).
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  void Row(const std::vector<std::string>& cells);

  // Convenience: formats doubles with 6 significant digits.
  static std::string Num(double v);
  static std::string Num(int64_t v);

  bool ok() const { return out_.is_open(); }

 private:
  std::ofstream out_;
};

}  // namespace pem
