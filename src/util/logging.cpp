#include "util/logging.h"

#include <cstdio>

namespace pem {
namespace {

LogLevel g_level = LogLevel::kWarn;

const char* LevelName(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }
LogLevel GetLogLevel() { return g_level; }

void Logf(LogLevel level, const char* tag, const char* fmt, ...) {
  if (level < g_level) return;
  std::fprintf(stderr, "[%s] %s: ", LevelName(level), tag);
  va_list ap;
  va_start(ap, fmt);
  std::vfprintf(stderr, fmt, ap);
  va_end(ap);
  std::fputc('\n', stderr);
}

}  // namespace pem
