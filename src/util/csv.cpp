#include "util/csv.h"

#include <cstdio>

namespace pem {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header) {
  out_.open(path);
  if (out_.is_open()) Row(header);
}

void CsvWriter::Row(const std::vector<std::string>& cells) {
  if (!out_.is_open()) return;
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << cells[i];
  }
  out_ << '\n';
}

std::string CsvWriter::Num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

std::string CsvWriter::Num(int64_t v) { return std::to_string(v); }

}  // namespace pem
