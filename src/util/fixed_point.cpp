#include "util/fixed_point.h"

#include <cmath>
#include <cstdio>

namespace pem {

FixedPoint FixedPoint::FromDouble(double v, int64_t scale) {
  PEM_CHECK(scale > 0, "scale must be positive");
  const double scaled = v * static_cast<double>(scale);
  PEM_CHECK(std::abs(scaled) < 9.0e18, "fixed-point overflow");
  return FixedPoint(static_cast<int64_t>(std::llround(scaled)), scale);
}

FixedPoint FixedPoint::FromRaw(int64_t raw, int64_t scale) {
  PEM_CHECK(scale > 0, "scale must be positive");
  return FixedPoint(raw, scale);
}

double FixedPoint::ToDouble() const {
  return static_cast<double>(raw_) / static_cast<double>(scale_);
}

FixedPoint FixedPoint::operator+(const FixedPoint& o) const {
  PEM_CHECK(scale_ == o.scale_, "fixed-point scale mismatch");
  return FixedPoint(raw_ + o.raw_, scale_);
}

FixedPoint FixedPoint::operator-(const FixedPoint& o) const {
  PEM_CHECK(scale_ == o.scale_, "fixed-point scale mismatch");
  return FixedPoint(raw_ - o.raw_, scale_);
}

FixedPoint FixedPoint::operator-() const { return FixedPoint(-raw_, scale_); }

std::string FixedPoint::ToString() const {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6f", ToDouble());
  return buf;
}

int64_t RoundDiv(int64_t num, int64_t den) {
  PEM_CHECK(den > 0, "RoundDiv: denominator must be positive");
  if (num >= 0) return (num + den / 2) / den;
  return -((-num + den / 2) / den);
}

}  // namespace pem
