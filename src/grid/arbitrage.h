// Price-arbitrage storage policy (paper §VI: "energy trading by
// possibly storing energy for the future").
//
// The greedy Battery policy charges on any surplus and discharges on
// any deficit.  An arbitrage-aware owner instead looks at a price
// forecast for the day: charge extra (even buying) in the cheap
// midday window, hold, and discharge into the expensive evening —
// shifting revenue from the pb_g buyback toward evening market prices.
//
// The forecast is a vector of expected prices per window (e.g. the
// previous day's clearing prices, or the bounds in Eq. 3).
#pragma once

#include <vector>

#include "grid/battery.h"
#include "util/error.h"

namespace pem::grid {

struct ArbitrageConfig {
  // Charge when the forecast price is below this quantile of the day's
  // forecast, discharge when above the upper quantile.
  double cheap_quantile = 0.25;
  double expensive_quantile = 0.75;
  // Fraction of the rate limit to commit to arbitrage actions (the
  // rest stays available for the greedy self-balancing behavior).
  double aggressiveness = 1.0;
};

class ArbitrageBattery {
 public:
  // `forecast` holds one expected price per window of the day.
  ArbitrageBattery(double capacity_kwh, double rate_kwh,
                   std::vector<double> forecast,
                   const ArbitrageConfig& config = {});

  // Decides b for `window` given the metered generation and load.
  // Positive = charging (added load), negative = discharging.
  double Step(int window, double generation_kwh, double load_kwh);

  double state_of_charge() const { return soc_kwh_; }
  bool installed() const { return capacity_kwh_ > 0.0; }

  // Thresholds derived from the forecast (exposed for tests).
  double cheap_threshold() const { return cheap_threshold_; }
  double expensive_threshold() const { return expensive_threshold_; }

 private:
  double capacity_kwh_;
  double rate_kwh_;
  double soc_kwh_ = 0.0;
  std::vector<double> forecast_;
  ArbitrageConfig config_;
  double cheap_threshold_ = 0.0;
  double expensive_threshold_ = 0.0;
};

}  // namespace pem::grid
