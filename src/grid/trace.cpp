#include "grid/trace.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "grid/load_model.h"
#include "grid/solar.h"
#include "util/error.h"

namespace pem::grid {

WindowState CommunityTrace::ResolveWindow(
    int home, int window, std::vector<Battery>& batteries) const {
  PEM_CHECK(home >= 0 && home < num_homes(), "home index");
  PEM_CHECK(window >= 0 && window < windows_per_day, "window index");
  PEM_CHECK(batteries.size() == homes.size(), "battery vector size");
  const WindowObservation& obs =
      homes[static_cast<size_t>(home)].observations[static_cast<size_t>(window)];
  WindowState st;
  st.generation_kwh = obs.generation_kwh;
  st.load_kwh = obs.load_kwh;
  st.battery_kwh = batteries[static_cast<size_t>(home)].Step(
      obs.generation_kwh, obs.load_kwh);
  return st;
}

std::vector<Battery> CommunityTrace::MakeBatteries() const {
  std::vector<Battery> out;
  out.reserve(homes.size());
  for (const HomeTrace& h : homes) {
    out.emplace_back(h.params.battery_capacity_kwh, h.params.battery_rate_kwh);
  }
  return out;
}

void CommunityTrace::SaveCsv(const std::string& path) const {
  std::ofstream out(path);
  PEM_CHECK(out.is_open(), "cannot open trace CSV for writing");
  out << "home,window,generation_kwh,load_kwh,preference_k,epsilon,"
         "battery_capacity_kwh,battery_rate_kwh\n";
  char buf[256];
  for (size_t h = 0; h < homes.size(); ++h) {
    const HomeTrace& home = homes[h];
    for (size_t w = 0; w < home.observations.size(); ++w) {
      const WindowObservation& o = home.observations[w];
      std::snprintf(buf, sizeof buf, "%zu,%zu,%.9f,%.9f,%.6f,%.6f,%.4f,%.4f\n",
                    h, w, o.generation_kwh, o.load_kwh,
                    home.params.preference_k, home.params.battery_epsilon,
                    home.params.battery_capacity_kwh,
                    home.params.battery_rate_kwh);
      out << buf;
    }
  }
}

CommunityTrace CommunityTrace::LoadCsv(const std::string& path) {
  std::ifstream in(path);
  PEM_CHECK(in.is_open(), "cannot open trace CSV for reading");
  std::string line;
  PEM_CHECK(static_cast<bool>(std::getline(in, line)), "empty trace CSV");

  CommunityTrace trace;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ss(line);
    std::string cell;
    auto next = [&]() -> double {
      PEM_CHECK(static_cast<bool>(std::getline(ss, cell, ',')),
                "trace CSV: short row");
      return std::stod(cell);
    };
    const int h = static_cast<int>(next());
    const int w = static_cast<int>(next());
    WindowObservation obs;
    obs.generation_kwh = next();
    obs.load_kwh = next();
    AgentParams params;
    params.preference_k = next();
    params.battery_epsilon = next();
    params.battery_capacity_kwh = next();
    params.battery_rate_kwh = next();

    if (h >= static_cast<int>(trace.homes.size())) {
      trace.homes.resize(static_cast<size_t>(h) + 1);
    }
    HomeTrace& home = trace.homes[static_cast<size_t>(h)];
    home.params = params;
    if (w >= static_cast<int>(home.observations.size())) {
      home.observations.resize(static_cast<size_t>(w) + 1);
    }
    home.observations[static_cast<size_t>(w)] = obs;
  }
  trace.windows_per_day =
      trace.homes.empty() ? 0
                          : static_cast<int>(trace.homes[0].observations.size());
  return trace;
}

CommunityTrace GenerateCommunityTrace(const TraceConfig& config) {
  PEM_CHECK(config.num_homes > 0, "num_homes must be positive");
  PEM_CHECK(config.windows_per_day > 0, "windows_per_day must be positive");

  CommunityTrace trace;
  trace.windows_per_day = config.windows_per_day;
  trace.homes.resize(static_cast<size_t>(config.num_homes));

  const double hours_per_window = 12.0 / config.windows_per_day;

  for (int h = 0; h < config.num_homes; ++h) {
    // Per-home seed: decorrelates homes while keeping the trace
    // reproducible for a given config seed.
    SimRandom rng(config.seed * 1000003ull + static_cast<uint64_t>(h));
    HomeTrace& home = trace.homes[static_cast<size_t>(h)];

    const bool has_panel = !rng.Bernoulli(config.no_panel_fraction);
    const double panel_kw =
        has_panel ? rng.Uniform(config.min_panel_kw, config.max_panel_kw) : 0.0;
    const bool has_battery = has_panel && rng.Bernoulli(config.battery_fraction);

    home.params.preference_k =
        rng.Uniform(config.min_preference_k, config.max_preference_k);
    home.params.battery_epsilon =
        rng.Uniform(config.min_epsilon, config.max_epsilon);
    home.params.battery_capacity_kwh =
        has_battery ? rng.Uniform(config.min_battery_kwh, config.max_battery_kwh)
                    : 0.0;
    home.params.battery_rate_kwh =
        has_battery ? config.battery_rate_kw * hours_per_window : 0.0;

    SolarConfig solar_cfg;
    solar_cfg.capacity_kw = panel_kw;
    solar_cfg.windows_per_day = config.windows_per_day;
    SolarModel solar(solar_cfg, rng);

    LoadConfig load_cfg;
    load_cfg.windows_per_day = config.windows_per_day;
    // Vary household size a bit.
    const double scale = rng.Uniform(0.7, 1.3);
    load_cfg.base_kw *= scale;
    load_cfg.morning_peak_kw *= scale;
    load_cfg.evening_peak_kw *= scale;
    LoadModel load(load_cfg, rng);

    home.observations.resize(static_cast<size_t>(config.windows_per_day));
    for (int w = 0; w < config.windows_per_day; ++w) {
      home.observations[static_cast<size_t>(w)].generation_kwh =
          solar.GenerationAt(w);
      home.observations[static_cast<size_t>(w)].load_kwh = load.LoadAt(w);
    }
  }
  return trace;
}

}  // namespace pem::grid
