// Common smart-grid value types.
#pragma once

#include <cstdint>

namespace pem::grid {

// One agent's metered quantities for one trading window (kWh).
struct WindowObservation {
  double generation_kwh = 0.0;
  double load_kwh = 0.0;
};

// Static per-agent parameters (private data in the threat model).
struct AgentParams {
  // Load-behavior preference k_i > 0 in the seller utility (Eq. 4).
  double preference_k = 1.0;
  // Battery loss coefficient ε_i ∈ (0, 1).
  double battery_epsilon = 0.9;
  // Battery capacity Cap_i (kWh); 0 means no battery installed.
  double battery_capacity_kwh = 0.0;
  // Max charge/discharge per window (kWh).
  double battery_rate_kwh = 0.0;
};

// The resolved per-window state an agent brings to the market:
// sn_i = g_i - l_i - b_i  (Eq. 1).
struct WindowState {
  double generation_kwh = 0.0;  // g_i
  double load_kwh = 0.0;        // l_i
  double battery_kwh = 0.0;     // b_i (charge > 0, discharge < 0)

  double NetEnergy() const { return generation_kwh - load_kwh - battery_kwh; }
};

enum class Role : uint8_t { kSeller, kBuyer, kOffMarket };

inline Role ClassifyRole(double net_energy, double tolerance = 1e-9) {
  if (net_energy > tolerance) return Role::kSeller;
  if (net_energy < -tolerance) return Role::kBuyer;
  return Role::kOffMarket;
}

}  // namespace pem::grid
