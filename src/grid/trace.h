// Synthetic one-day community trace.
//
// Stands in for the UMass Smart* dataset the paper uses (300 homes'
// solar generation + load over one day; see DESIGN.md §4).  Each home
// gets its own panel capacity, load shape, utility preference k_i,
// battery and seed, so roles churn across windows the way Fig. 4 shows.
// Traces round-trip through CSV for the examples.
#pragma once

#include <string>
#include <vector>

#include "grid/battery.h"
#include "grid/types.h"
#include "util/sim_random.h"

namespace pem::grid {

struct HomeTrace {
  AgentParams params;
  // One observation per window.
  std::vector<WindowObservation> observations;
};

struct CommunityTrace {
  int windows_per_day = 0;
  std::vector<HomeTrace> homes;

  int num_homes() const { return static_cast<int>(homes.size()); }

  // Resolves window `w` for home `h` by running its battery policy;
  // `batteries` carries state of charge across windows and must have
  // one entry per home (created by MakeBatteries()).
  WindowState ResolveWindow(int home, int window,
                            std::vector<Battery>& batteries) const;

  std::vector<Battery> MakeBatteries() const;

  // CSV round-trip: header row, then one row per (home, window).
  void SaveCsv(const std::string& path) const;
  static CommunityTrace LoadCsv(const std::string& path);
};

struct TraceConfig {
  int num_homes = 300;
  int windows_per_day = 720;
  uint64_t seed = 20200425;  // paper's arXiv date, for flavor

  // Population heterogeneity.  Calibrated so market supply generally
  // stays below market demand (the paper's standing assumption:
  // "renewable energy cannot feed all the load in current practice"),
  // with sellers still peaking midday as in Fig. 4.
  double min_panel_kw = 0.8;
  double max_panel_kw = 3.5;
  // Fraction of homes with no panel at all (pure consumers).
  double no_panel_fraction = 0.30;
  // Fraction of homes with a battery; capacities sampled in
  // [min_battery_kwh, max_battery_kwh].
  double battery_fraction = 0.4;
  double min_battery_kwh = 2.0;
  double max_battery_kwh = 10.0;
  double battery_rate_kw = 2.0;  // converted to kWh/window internally
  // Preference parameter k_i range (see Fig. 6(a) calibration note in
  // EXPERIMENTS.md).
  double min_preference_k = 0.6;
  double max_preference_k = 1.4;
  double min_epsilon = 0.85;
  double max_epsilon = 0.95;
};

// Deterministic for a given config (seeded per home).
CommunityTrace GenerateCommunityTrace(const TraceConfig& config);

}  // namespace pem::grid
