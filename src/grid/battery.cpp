#include "grid/battery.h"

#include <algorithm>

namespace pem::grid {

Battery::Battery(double capacity_kwh, double rate_kwh, double initial_soc_kwh)
    : capacity_kwh_(capacity_kwh),
      rate_kwh_(rate_kwh),
      soc_kwh_(initial_soc_kwh) {
  PEM_CHECK(capacity_kwh >= 0.0, "battery capacity must be >= 0");
  PEM_CHECK(rate_kwh >= 0.0, "battery rate must be >= 0");
  PEM_CHECK(initial_soc_kwh >= 0.0 && initial_soc_kwh <= capacity_kwh + 1e-9,
            "initial SoC out of range");
}

double Battery::Step(double generation_kwh, double load_kwh) {
  if (!installed()) return 0.0;
  const double surplus = generation_kwh - load_kwh;
  if (surplus > 0.0) {
    // Charge from excess: bounded by rate and remaining headroom.  Any
    // remaining surplus becomes market supply.
    const double headroom = capacity_kwh_ - soc_kwh_;
    const double b = std::min({surplus, rate_kwh_, headroom});
    soc_kwh_ += b;
    return b;
  }
  if (surplus < 0.0) {
    // Discharge to cover the deficit: bounded by rate and stored energy.
    const double need = -surplus;
    const double d = std::min({need, rate_kwh_, soc_kwh_});
    soc_kwh_ -= d;
    return -d;
  }
  return 0.0;
}

}  // namespace pem::grid
