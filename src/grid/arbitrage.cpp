#include "grid/arbitrage.h"

#include <algorithm>
#include <cmath>

namespace pem::grid {
namespace {

double Quantile(std::vector<double> values, double q) {
  PEM_CHECK(!values.empty(), "quantile of empty forecast");
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

}  // namespace

ArbitrageBattery::ArbitrageBattery(double capacity_kwh, double rate_kwh,
                                   std::vector<double> forecast,
                                   const ArbitrageConfig& config)
    : capacity_kwh_(capacity_kwh),
      rate_kwh_(rate_kwh),
      forecast_(std::move(forecast)),
      config_(config) {
  PEM_CHECK(capacity_kwh >= 0.0 && rate_kwh >= 0.0, "negative battery spec");
  PEM_CHECK(!forecast_.empty(), "forecast must cover the day");
  PEM_CHECK(config_.cheap_quantile <= config_.expensive_quantile,
            "quantiles must be ordered");
  cheap_threshold_ = Quantile(forecast_, config_.cheap_quantile);
  expensive_threshold_ = Quantile(forecast_, config_.expensive_quantile);
}

double ArbitrageBattery::Step(int window, double generation_kwh,
                              double load_kwh) {
  if (!installed()) return 0.0;
  PEM_CHECK(window >= 0 &&
                static_cast<size_t>(window) < forecast_.size(),
            "window outside forecast");
  const double price = forecast_[static_cast<size_t>(window)];
  const double surplus = generation_kwh - load_kwh;
  const double budget = rate_kwh_ * config_.aggressiveness;

  double b = 0.0;
  if (price <= cheap_threshold_) {
    // Cheap window: absorb surplus and top up from the market/grid.
    const double headroom = capacity_kwh_ - soc_kwh_;
    b = std::min(budget, headroom);
  } else if (price >= expensive_threshold_) {
    // Expensive window: discharge what we have (bounded by the rate).
    b = -std::min(budget, soc_kwh_);
  } else {
    // Neutral band: behave greedily (self-balance only).
    if (surplus > 0.0) {
      b = std::min({surplus, rate_kwh_, capacity_kwh_ - soc_kwh_});
    } else if (surplus < 0.0) {
      b = -std::min({-surplus, rate_kwh_, soc_kwh_});
    }
  }
  soc_kwh_ += b;
  return b;
}

}  // namespace pem::grid
