#include "grid/load_model.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace pem::grid {
namespace {

double Hump(double hour, double center, double width, double height) {
  const double d = (hour - center) / width;
  return height * std::exp(-0.5 * d * d);
}

}  // namespace

LoadModel::LoadModel(const LoadConfig& config, SimRandom& rng)
    : cfg_(config), rng_(rng) {
  PEM_CHECK(cfg_.windows_per_day > 0, "windows_per_day must be positive");
}

double LoadModel::LoadAt(int window) {
  PEM_CHECK(window >= 0 && window < cfg_.windows_per_day, "window range");
  const double hours_per_window =
      (cfg_.day_end_hour - cfg_.day_start_hour) / cfg_.windows_per_day;
  const double hour = cfg_.day_start_hour + (window + 0.5) * hours_per_window;

  double kw = cfg_.base_kw +
              Hump(hour, cfg_.morning_peak_hour, cfg_.morning_peak_width,
                   cfg_.morning_peak_kw) +
              Hump(hour, cfg_.evening_peak_hour, cfg_.evening_peak_width,
                   cfg_.evening_peak_kw);
  const double noise = 1.0 + rng_.Gaussian(0.0, cfg_.noise_fraction);
  kw *= std::max(0.1, noise);
  return kw * hours_per_window;
}

}  // namespace pem::grid
