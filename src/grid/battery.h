// Household battery model.
//
// The paper treats the battery action b_i as part of each agent's
// private window state (charge > 0 adds load, discharge < 0 adds
// supply).  This model implements the simple greedy policy the paper's
// setup implies: charge from excess generation up to the rate and
// capacity limits, discharge to cover deficits.  The remainder after
// the battery acts is the agent's market position.
#pragma once

#include "grid/types.h"
#include "util/error.h"

namespace pem::grid {

class Battery {
 public:
  // capacity 0 models "no battery installed" (b_i ≡ 0).
  Battery(double capacity_kwh, double rate_kwh, double initial_soc_kwh = 0.0);

  // Decides b for this window given generation and load, and applies it
  // to the state of charge.  Returns b (kWh; charge > 0).
  double Step(double generation_kwh, double load_kwh);

  double state_of_charge() const { return soc_kwh_; }
  double capacity() const { return capacity_kwh_; }
  bool installed() const { return capacity_kwh_ > 0.0; }

 private:
  double capacity_kwh_;
  double rate_kwh_;
  double soc_kwh_;
};

}  // namespace pem::grid
