// Residential demand model.
//
// Base load plus morning and evening peaks with per-window noise —
// the standard two-hump household shape.  Ensures buyers dominate the
// market early and late in the day (Fig. 4) and keeps market demand
// above supply in most windows (the paper's "general market" case).
#pragma once

#include "util/sim_random.h"

namespace pem::grid {

struct LoadConfig {
  double base_kw = 0.35;
  double morning_peak_kw = 0.9;
  double morning_peak_hour = 7.8;
  double morning_peak_width = 1.1;   // hours (std-dev of the hump)
  double evening_peak_kw = 1.4;
  double evening_peak_hour = 18.2;
  double evening_peak_width = 1.4;
  double noise_fraction = 0.15;      // multiplicative noise per window
  int windows_per_day = 720;
  double day_start_hour = 7.0;
  double day_end_hour = 19.0;
};

class LoadModel {
 public:
  LoadModel(const LoadConfig& config, SimRandom& rng);

  // kWh consumed in window w (0-based).
  double LoadAt(int window);

  const LoadConfig& config() const { return cfg_; }

 private:
  LoadConfig cfg_;
  SimRandom& rng_;
};

}  // namespace pem::grid
