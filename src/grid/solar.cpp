#include "grid/solar.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace pem::grid {

SolarModel::SolarModel(const SolarConfig& config, SimRandom& rng)
    : cfg_(config), rng_(rng) {
  PEM_CHECK(cfg_.windows_per_day > 0, "windows_per_day must be positive");
  PEM_CHECK(cfg_.capacity_kw >= 0.0, "capacity must be >= 0");
}

double SolarModel::ClearSkyKw(double hour) const {
  if (hour <= cfg_.sunrise_hour || hour >= cfg_.sunset_hour) return 0.0;
  const double x =
      (hour - cfg_.sunrise_hour) / (cfg_.sunset_hour - cfg_.sunrise_hour);
  // sin^1.5 bell: flatter shoulders than a pure sine, matching typical
  // PV irradiance profiles.
  const double s = std::sin(M_PI * x);
  return cfg_.capacity_kw * std::pow(std::max(0.0, s), 1.5);
}

double SolarModel::GenerationAt(int window) {
  PEM_CHECK(window >= 0 && window < cfg_.windows_per_day, "window range");
  const double hours_per_window =
      (cfg_.day_end_hour - cfg_.day_start_hour) / cfg_.windows_per_day;
  const double hour = cfg_.day_start_hour + (window + 0.5) * hours_per_window;

  // AR(1) cloud attenuation: correlated dips in output.
  cloud_state_ = cfg_.cloud_persistence * cloud_state_ +
                 rng_.Gaussian(0.0, cfg_.cloud_noise);
  const double attenuation = std::clamp(1.0 - std::abs(cloud_state_), 0.05, 1.0);

  const double kw = ClearSkyKw(hour) * attenuation;
  return kw * hours_per_window;
}

}  // namespace pem::grid
