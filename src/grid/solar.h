// Rooftop-solar generation model.
//
// Produces per-window kWh for a panel of a given kW capacity over a
// 7:00–19:00 trading day (the paper's window range): a clear-sky bell
// curve modulated by an AR(1) cloud process, so generation is zero at
// the edges of the day and peaks around noon — the driver behind the
// paper's Fig. 4 role dynamics and the midday price dip in Fig. 6(a).
#pragma once

#include "util/sim_random.h"

namespace pem::grid {

struct SolarConfig {
  double capacity_kw = 3.0;
  int windows_per_day = 720;    // one-minute windows, 7:00 -> 19:00
  double day_start_hour = 7.0;
  double day_end_hour = 19.0;
  double sunrise_hour = 6.5;
  double sunset_hour = 19.5;
  // Cloud AR(1) parameters: attenuation in [0, 1].
  double cloud_persistence = 0.97;
  double cloud_noise = 0.08;
};

class SolarModel {
 public:
  SolarModel(const SolarConfig& config, SimRandom& rng);

  // kWh generated in window w (0-based).
  double GenerationAt(int window);

  const SolarConfig& config() const { return cfg_; }

 private:
  double ClearSkyKw(double hour) const;

  SolarConfig cfg_;
  SimRandom& rng_;
  double cloud_state_ = 0.0;  // current attenuation deviation
};

}  // namespace pem::grid
