// Vehicle-to-Grid (V2G) extension (paper §VI, "Generalization of
// PEM"): electric vehicles join the market as agents whose only local
// resource is the battery.
//
// A commuter EV is a buyer while charging (morning, at the office) and
// a seller in the evening peak, discharging part of its pack into the
// neighborhood at the PEM price instead of letting homes draw from the
// grid at retail.  This example runs the *real cryptographic
// protocols* for three evening windows on a mixed fleet+homes market.
//
// Build & run:  ./build/examples/v2g_fleet
#include <cstdio>
#include <vector>

#include "crypto/rng.h"
#include "net/bus.h"
#include "protocol/pem_protocol.h"

namespace {

struct FleetAgent {
  const char* name;
  bool is_ev;
  double generation_kwh, load_kwh, battery_kwh, k;
};

}  // namespace

int main() {
  using namespace pem;

  // Evening windows (~18:00): no solar, high household load, EVs home
  // with packs charged midday.
  const std::vector<std::vector<FleetAgent>> evening_windows = {
      {
          {"ev-taxi-1", true, 0.0, 0.002, -0.080, 1.0},  // discharging 80 Wh
          {"ev-sedan-2", true, 0.0, 0.002, -0.050, 1.0},
          {"home-1", false, 0.0, 0.035, 0.0, 0.9},
          {"home-2", false, 0.0, 0.045, 0.0, 1.0},
          {"home-3", false, 0.0, 0.030, 0.0, 1.1},
          {"home-4", false, 0.0, 0.055, 0.0, 1.0},
      },
      {
          {"ev-taxi-1", true, 0.0, 0.002, -0.070, 1.0},
          {"ev-sedan-2", true, 0.0, 0.002, -0.060, 1.0},
          {"home-1", false, 0.0, 0.040, 0.0, 0.9},
          {"home-2", false, 0.0, 0.040, 0.0, 1.0},
          {"home-3", false, 0.0, 0.035, 0.0, 1.1},
          {"home-4", false, 0.0, 0.050, 0.0, 1.0},
      },
      {
          // Later: packs depleted, EVs stop selling; grid takes over.
          {"ev-taxi-1", true, 0.0, 0.002, 0.000, 1.0},
          {"ev-sedan-2", true, 0.0, 0.002, -0.010, 1.0},
          {"home-1", false, 0.0, 0.038, 0.0, 0.9},
          {"home-2", false, 0.0, 0.042, 0.0, 1.0},
          {"home-3", false, 0.0, 0.036, 0.0, 1.1},
          {"home-4", false, 0.0, 0.048, 0.0, 1.0},
      },
  };

  protocol::PemConfig config;
  config.key_bits = 512;  // demo speed; use 2048 in deployments
  crypto::SystemRng& rng = crypto::SystemRng::Instance();

  double ev_revenue = 0.0, home_cost = 0.0, home_cost_baseline = 0.0;
  for (size_t w = 0; w < evening_windows.size(); ++w) {
    const auto& fleet = evening_windows[w];
    net::MessageBus bus(static_cast<int>(fleet.size()));
    std::vector<net::Endpoint> agents = bus.endpoints();
    std::vector<protocol::Party> parties;
    for (size_t i = 0; i < fleet.size(); ++i) {
      grid::AgentParams params;
      params.preference_k = fleet[i].k;
      params.battery_epsilon = 0.9;
      parties.emplace_back(static_cast<net::AgentId>(i), params);
      grid::WindowState st;
      st.generation_kwh = fleet[i].generation_kwh;
      st.load_kwh = fleet[i].load_kwh;
      st.battery_kwh = fleet[i].battery_kwh;
      parties.back().BeginWindow(st, config.nonce_bound, rng);
    }
    protocol::ProtocolContext ctx{agents, rng, config};
    const protocol::PemWindowResult out = protocol::RunPemWindow(ctx, parties);

    std::printf("window %zu: %s, price %.1f c/kWh, %zu trades\n", w,
                out.type == market::MarketType::kGeneral
                    ? "general"
                    : out.type == market::MarketType::kExtreme ? "extreme"
                                                               : "no market",
                out.price * 100, out.trades.size());
    for (size_t i = 0; i < fleet.size(); ++i) {
      if (fleet[i].is_ev) {
        ev_revenue += out.money_received[i];
      } else {
        home_cost += out.money_paid[i];
        const double deficit = fleet[i].load_kwh + fleet[i].battery_kwh -
                               fleet[i].generation_kwh;
        if (deficit > 0) {
          home_cost_baseline += config.market.retail_price * deficit;
        }
      }
    }
  }

  std::printf("\nfleet revenue from V2G trading : $%.4f\n", ev_revenue);
  std::printf("home cost with V2G market      : $%.4f\n", home_cost);
  std::printf("home cost buying from the grid : $%.4f (%.1f%% saved)\n",
              home_cost_baseline,
              100 * (1 - home_cost / home_cost_baseline));
  std::printf("\nEVs earned above the %.0f c/kWh buyback price while homes "
              "paid below the %.0f c/kWh retail price — the §VI win-win.\n",
              config.market.buyback_price * 100,
              config.market.retail_price * 100);
  return 0;
}
