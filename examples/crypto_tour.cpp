// A guided tour of the cryptographic substrate, bottom-up:
// Paillier homomorphic aggregation, the Protocol-4 reciprocal trick,
// oblivious transfer, and a garbled-circuit secure comparison — the
// exact building blocks Protocols 2-4 compose.
//
// Build & run:  ./build/examples/crypto_tour
#include <cstdio>

#include "crypto/circuit.h"
#include "crypto/garble.h"
#include "crypto/ot.h"
#include "crypto/paillier.h"
#include "crypto/rng.h"
#include "crypto/secure_compare.h"
#include "net/bus.h"
#include "util/fixed_point.h"

int main() {
  using namespace pem;
  using namespace pem::crypto;
  SystemRng& rng = SystemRng::Instance();

  // --- Paillier: encrypted aggregation --------------------------------
  std::printf("1) Paillier (1024-bit): homomorphic sum of net energies\n");
  const PaillierKeyPair kp = GeneratePaillierKeyPair(1024, rng);
  const int64_t nets[] = {150'000, -90'000, 42'000, -1'000};  // micro-kWh
  PaillierCiphertext acc = kp.pub.EncryptZero(rng);
  int64_t expected = 0;
  for (int64_t v : nets) {
    acc = kp.pub.Add(acc, kp.pub.EncryptSigned(v, rng));
    expected += v;
  }
  std::printf("   sum of {0.15, -0.09, 0.042, -0.001} kWh = %.3f kWh "
              "(expected %.3f)\n",
              FixedPoint::FromRaw(kp.priv.DecryptSigned(acc)).ToDouble(),
              FixedPoint::FromRaw(expected).ToDouble());

  // --- The Protocol-4 reciprocal trick ---------------------------------
  std::printf("\n2) Reciprocal trick: reveal only share/total\n");
  const int64_t total = 2'000'000, share = 350'000;  // E_b and |sn_j|
  const int64_t big_k = int64_t{1} << 40;
  const PaillierCiphertext enc_total = kp.pub.EncryptSigned(total, rng);
  const PaillierCiphertext blinded =
      kp.pub.ScalarMul(enc_total, BigInt(RoundDiv(big_k, share)));
  const double ratio =
      static_cast<double>(big_k) / kp.priv.Decrypt(blinded).ToDouble();
  std::printf("   decrypted ratio = %.6f (true share/total = %.6f)\n", ratio,
              static_cast<double>(share) / total);

  // --- Oblivious transfer ----------------------------------------------
  std::printf("\n3) 1-of-2 oblivious transfer (768-bit MODP group)\n");
  const ModpGroup& group = ModpGroup::Get(ModpGroupId::kModp768);
  OtSender sender(group, rng);
  OtReceiver receiver(group, rng);
  OtMessage m0{}, m1{};
  m0.fill(0x11);
  m1.fill(0x22);
  const auto b = receiver.Round1(sender.Round1(), /*choice=*/true);
  const OtMessage got = receiver.Decrypt(sender.Round2(b, m0, m1));
  std::printf("   receiver chose bit 1 and got message starting 0x%02x "
              "(sender never learns the choice)\n",
              got[0]);

  // --- Garbled-circuit secure comparison -------------------------------
  std::printf("\n4) Yao garbled circuit: the millionaires' comparison\n");
  const Circuit circuit = BuildLessThanCircuit(64);
  std::printf("   64-bit comparator: %zu gates, %zu of them AND "
              "(XOR/NOT are free)\n",
              circuit.gates.size(), circuit.AndGateCount());
  net::MessageBus bus(2);
  net::Endpoint garbler = bus.endpoint(0);
  net::Endpoint evaluator = bus.endpoint(1);
  SecureCompareConfig cfg;
  cfg.group = ModpGroupId::kModp768;
  const uint64_t rs = 123'456'789, rb = 987'654'321;
  const bool less = SecureCompareLess(garbler, rs, evaluator, rb, cfg, rng);
  std::printf("   [R_s < R_b] = %s, using %llu bytes on the wire — this is "
              "Protocol 2's market evaluation step\n",
              less ? "true" : "false",
              static_cast<unsigned long long>(bus.total_bytes()));
  return 0;
}
