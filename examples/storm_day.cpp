// Storm day: solar collapse + EV surge + membership churn, audited.
//
// A thunderstorm rolls over the community mid-afternoon: rooftop solar
// collapses to a few percent of clear-sky output at exactly the moment
// a wave of commuter EVs comes home and plugs in.  One home loses its
// connection in the storm and rejoins after the front passes; another
// stays dark for the rest of the day.  The §VI audit machinery runs
// throughout — the seeded coin flip picks audit windows, an auditor is
// drawn, every participant proves its ring contribution — so the table
// below shows what a hostile-weather day costs on the wire with
// cheater detection armed (the Table I bandwidth columns, per window).
//
// Build & run:  ./build/examples/example_storm_day
#include <cstdio>
#include <vector>

#include "core/simulation.h"
#include "protocol/fault.h"

int main() {
  using namespace pem;

  // Eight homes, eight 2-hour windows (06:00 .. 22:00).  The generated
  // trace supplies per-home panels/loads/preferences; the storm is
  // edited in on top of it.
  grid::TraceConfig tc;
  tc.num_homes = 8;
  tc.windows_per_day = 8;
  tc.seed = 20200807;
  grid::CommunityTrace trace = grid::GenerateCommunityTrace(tc);

  // Windows 3-5 (midday into afternoon): the storm front.  Solar
  // collapses to 5% of clear-sky output; from window 4 the EV surge
  // adds 60 Wh of charging load at half the homes.
  for (int h = 0; h < trace.num_homes(); ++h) {
    for (int w = 3; w <= 5; ++w) {
      trace.homes[static_cast<size_t>(h)]
          .observations[static_cast<size_t>(w)]
          .generation_kwh *= 0.05;
    }
    if (h % 2 == 0) {
      for (int w = 4; w <= 6; ++w) {
        trace.homes[static_cast<size_t>(h)]
            .observations[static_cast<size_t>(w)]
            .load_kwh += 0.060;
      }
    }
  }

  core::SimulationConfig cfg;
  cfg.engine = core::Engine::kCrypto;
  cfg.pem.key_bits = 512;  // demo speed; use 2048 in deployments
  cfg.pem.audit.enabled = true;
  cfg.pem.audit.audit_one_in = 2;  // audit roughly every other window
  // The storm takes home 4 offline just as the front arrives; it
  // rejoins (fresh key, next directory epoch) two windows later.  Home
  // 6's service drop fails at the peak and stays dead all day.  Rings
  // and coalitions re-form deterministically around the survivors.
  cfg.churn = {{3, 4, false}, {5, 6, false}, {5, 4, true}};

  const core::SimulationResult r = core::RunSimulation(trace, cfg);

  std::printf("storm day: %d homes, %d windows, 512-bit keys, audits "
              "armed (1-in-%u)\n\n",
              trace.num_homes(), trace.windows_per_day,
              cfg.pem.audit.audit_one_in);
  std::printf("%-7s %-9s %9s %4s %4s %10s %9s  %s\n", "window", "market",
              "c/kWh", "sell", "buy", "bytes", "runtime", "audit");
  uint64_t audited = 0;
  for (const core::WindowRecord& rec : r.windows) {
    const char* type = rec.type == market::MarketType::kGeneral ? "general"
                       : rec.type == market::MarketType::kExtreme
                           ? "extreme"
                           : "closed";
    char audit_col[32];
    if (rec.audit.audited) {
      ++audited;
      std::snprintf(audit_col, sizeof audit_col, "auditor %d",
                    rec.audit.auditor);
    } else {
      std::snprintf(audit_col, sizeof audit_col, "-");
    }
    std::printf("%-7d %-9s %9.1f %4d %4d %10llu %7.0f ms  %s\n", rec.window,
                type, rec.price * 100, rec.num_sellers, rec.num_buyers,
                static_cast<unsigned long long>(rec.bus_bytes),
                rec.runtime_seconds * 1000, audit_col);
    for (const protocol::ProtocolFault& f : rec.audit.faults) {
      std::printf("        !! agent %d convicted: %s\n", f.cheater,
                  protocol::CheatClassName(f.cheat));
    }
  }

  std::printf("\ntotal   %10.0f ms end-to-end, %llu bytes on the bus\n",
              r.total_runtime_seconds * 1000,
              static_cast<unsigned long long>(r.total_bus_bytes));
  std::printf("audited %llu of %zu windows; every proof opened clean — the "
              "honest community paid the audit bandwidth and nothing "
              "else.\n",
              static_cast<unsigned long long>(audited), r.windows.size());
  std::printf("churn: home 4 dropped in the storm (window 3) and rejoined "
              "with a fresh key (window 5); home 6 stayed offline from "
              "window 5 on.\n");
  return 0;
}
