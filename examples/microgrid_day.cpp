// A full trading day for a synthetic 120-home microgrid community.
//
// Generates a UMass-style one-day trace, runs the plaintext market
// engine over all 720 one-minute windows (provably identical output to
// the crypto protocols — see tests/integration), and reports the
// community-level benefits the paper's Fig. 6 quantifies: buyer
// savings, seller revenue uplift, and reduced grid interaction.
// Writes the trace and the per-window series next to the binary.
//
// Build & run:  ./build/examples/microgrid_day [num_homes]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/simulation.h"
#include "protocol/topology.h"
#include "util/csv.h"

int main(int argc, char** argv) {
  using namespace pem;
  const int homes = argc > 1 ? std::atoi(argv[1]) : 120;

  grid::TraceConfig trace_cfg;
  trace_cfg.num_homes = homes;
  trace_cfg.windows_per_day = 720;
  const grid::CommunityTrace trace = grid::GenerateCommunityTrace(trace_cfg);
  trace.SaveCsv("microgrid_day_trace.csv");
  std::printf("generated %d homes x %d windows (saved to "
              "microgrid_day_trace.csv)\n\n",
              trace.num_homes(), trace.windows_per_day);

  core::SimulationConfig cfg;
  const core::SimulationResult r = core::RunSimulation(trace, cfg);

  CsvWriter csv("microgrid_day_series.csv",
                {"window", "price_cents", "sellers", "buyers", "cost_pem",
                 "cost_baseline", "grid_pem", "grid_baseline"});
  double cost_pem = 0, cost_base = 0, grid_pem = 0, grid_base = 0;
  int general = 0, extreme = 0, closed = 0;
  for (const core::WindowRecord& rec : r.windows) {
    csv.Row({CsvWriter::Num(int64_t{rec.window}),
             CsvWriter::Num(rec.price * 100),
             CsvWriter::Num(int64_t{rec.num_sellers}),
             CsvWriter::Num(int64_t{rec.num_buyers}),
             CsvWriter::Num(rec.buyer_cost_pem),
             CsvWriter::Num(rec.buyer_cost_baseline),
             CsvWriter::Num(rec.grid_interaction_pem),
             CsvWriter::Num(rec.grid_interaction_baseline)});
    cost_pem += rec.buyer_cost_pem;
    cost_base += rec.buyer_cost_baseline;
    grid_pem += rec.grid_interaction_pem;
    grid_base += rec.grid_interaction_baseline;
    switch (rec.type) {
      case market::MarketType::kGeneral: ++general; break;
      case market::MarketType::kExtreme: ++extreme; break;
      case market::MarketType::kNoMarket: ++closed; break;
    }
  }

  std::printf("market cases : %d general, %d extreme, %d closed\n", general,
              extreme, closed);
  std::printf("buyer cost   : $%.1f with PEM vs $%.1f baseline (%.1f%% saved)\n",
              cost_pem, cost_base, 100 * (1 - cost_pem / cost_base));
  std::printf("grid traffic : %.1f kWh with PEM vs %.1f kWh baseline "
              "(%.1f%% reduced)\n",
              grid_pem, grid_base, 100 * (1 - grid_pem / grid_base));
  std::printf("series saved to microgrid_day_series.csv\n");

  // --- coda: the same market as a true distributed deployment ---------
  // Eight of the homes, three midday windows, one forked OS process per
  // home: every agent runs only its own side of Protocols 1-4 over its
  // inherited socketpair, and the bytes below are literal cross-process
  // socket traffic routed by the parent — the paper's per-container
  // deployment on one host.
  grid::TraceConfig small_cfg = trace_cfg;
  small_cfg.num_homes = homes < 8 ? homes : 8;
  const grid::CommunityTrace small = grid::GenerateCommunityTrace(small_cfg);
  core::SimulationConfig pcfg;
  pcfg.engine = core::Engine::kCrypto;
  pcfg.pem.key_bits = 512;
  pcfg.policy = net::ExecutionPolicy::Process();
  pcfg.window_offset = small.windows_per_day / 2;  // midday: active market
  pcfg.window_stride = small.windows_per_day / 6;  // three sampled windows
  const core::SimulationResult pr = core::RunSimulation(small, pcfg);
  std::printf("\nfork-per-agent deployment (%d homes, %zu midday windows, "
              "512-bit keys):\n",
              small.num_homes(), pr.windows.size());
  std::printf("  avg window : %.3f s end-to-end, %.0f bytes on the wire\n",
              pr.AverageRuntimeSeconds(), pr.AverageBusBytes());

  // The same market again with every agent behind a loopback TCP
  // connection (parent rendezvous listener, per-agent wire + control
  // dial-ins): the bytes are now literal network traffic, and they
  // must equal the socketpair run's to the byte.
  pcfg.policy = net::ExecutionPolicy::Tcp();
  const core::SimulationResult tr = core::RunSimulation(small, pcfg);
  std::printf("tcp deployment (same homes and windows, port auto-assigned):\n");
  std::printf("  avg window : %.3f s end-to-end, %.0f bytes on the network\n",
              tr.AverageRuntimeSeconds(), tr.AverageBusBytes());
  std::printf("  byte parity: %s\n",
              tr.total_bus_bytes == pr.total_bus_bytes ? "exact" : "DIVERGED");

  // And once more over shared memory: the same forked processes, but
  // every frame now travels through a per-pair ring mapped into both
  // address spaces — zero kernel copies, no router hop.  The parent's
  // snoop cursor taps the rings for accounting, so the byte count must
  // still equal the socketpair run's exactly.
  pcfg.policy = net::ExecutionPolicy::Shm();
  const core::SimulationResult sr = core::RunSimulation(small, pcfg);
  std::printf("shm deployment (same homes and windows, zero-copy rings):\n");
  std::printf("  avg window : %.3f s end-to-end, %.0f bytes through shared "
              "memory\n",
              sr.AverageRuntimeSeconds(), sr.AverageBusBytes());
  std::printf("  byte parity: %s\n",
              sr.total_bus_bytes == pr.total_bus_bytes ? "exact" : "DIVERGED");

  // Finally the topology knob: the same windows with every ring
  // aggregation planned as a fanout-2 hierarchy of sub-rings
  // (PemConfig::topology) instead of one flat ring.  The critical path
  // shrinks from n-1 sequential hops toward log n, the wire grows a
  // few leader-delivery frames — and the market outcome must not move
  // by a cent (the plan invariants of protocol/topology.h).
  core::SimulationConfig hcfg = pcfg;
  hcfg.policy = net::ExecutionPolicy::Serial();
  const core::SimulationResult flat_run = core::RunSimulation(small, hcfg);
  hcfg.pem.topology.kind = protocol::TopologyKind::kHierarchical;
  hcfg.pem.topology.fanout = 2;
  const core::SimulationResult hier_run = core::RunSimulation(small, hcfg);
  std::vector<size_t> all(static_cast<size_t>(small.num_homes()));
  for (size_t i = 0; i < all.size(); ++i) all[i] = i;
  const int flat_hops =
      protocol::AggregationTopology::Flat(all).CriticalPathHops();
  const int hier_hops =
      protocol::AggregationTopology::Build(all, hcfg.pem.topology, 0)
          .CriticalPathHops();
  bool same_market = flat_run.windows.size() == hier_run.windows.size();
  for (size_t w = 0; same_market && w < flat_run.windows.size(); ++w) {
    same_market = flat_run.windows[w].price == hier_run.windows[w].price &&
                  flat_run.windows[w].type == hier_run.windows[w].type;
  }
  std::printf("hierarchical aggregation (fanout 2, same homes and windows):\n");
  std::printf("  critical path: %d sequential hops vs %d flat (full ring)\n",
              hier_hops, flat_hops);
  std::printf("  wire bytes   : %llu vs %llu flat (leader-delivery frames)\n",
              static_cast<unsigned long long>(hier_run.total_bus_bytes),
              static_cast<unsigned long long>(flat_run.total_bus_bytes));
  std::printf("  market parity: %s\n",
              same_market ? "identical prices and cases" : "DIVERGED");
  return 0;
}
