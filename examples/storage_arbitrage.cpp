// Storage arbitrage (paper §VI: "energy trading by possibly storing
// energy for the future"): a battery owner uses yesterday's PEM price
// curve as a forecast, charges through the cheap midday valley and
// sells into the expensive evening — then we compare the owner's day
// revenue under the greedy and arbitrage policies.
//
// Build & run:  ./build/examples/storage_arbitrage
#include <cstdio>
#include <vector>

#include "core/simulation.h"
#include "grid/arbitrage.h"

int main() {
  using namespace pem;

  // Day 1: run the community market to obtain a price curve.
  grid::TraceConfig trace_cfg;
  trace_cfg.num_homes = 150;
  trace_cfg.windows_per_day = 720;
  const grid::CommunityTrace trace = grid::GenerateCommunityTrace(trace_cfg);
  core::SimulationConfig sim_cfg;
  const core::SimulationResult day1 = RunSimulation(trace, sim_cfg);

  std::vector<double> forecast;
  forecast.reserve(day1.windows.size());
  for (const core::WindowRecord& rec : day1.windows) {
    forecast.push_back(rec.price);
  }
  std::printf("day-1 price curve: min %.2f, max %.2f $/kWh\n",
              *std::min_element(forecast.begin(), forecast.end()),
              *std::max_element(forecast.begin(), forecast.end()));

  // Day 2 (same weather for a clean comparison): one solar home with a
  // 8 kWh / 3 kW battery, greedy vs arbitrage.
  const grid::HomeTrace& home = trace.homes[2];
  const double rate_kwh = 3.0 * 12.0 / 720;  // 3 kW in kWh/window

  auto day_revenue = [&](auto&& step) {
    double revenue = 0.0;
    for (int w = 0; w < trace.windows_per_day; ++w) {
      const grid::WindowObservation& o =
          home.observations[static_cast<size_t>(w)];
      const double b = step(w, o.generation_kwh, o.load_kwh);
      const double net = o.generation_kwh - o.load_kwh - b;
      // Sell surplus at the market price, buy deficits likewise (the
      // market absorbs both sides at the cleared price curve).
      revenue += forecast[static_cast<size_t>(w)] * net;
    }
    return revenue;
  };

  grid::Battery greedy(8.0, rate_kwh);
  const double greedy_revenue = day_revenue(
      [&](int, double g, double l) { return greedy.Step(g, l); });

  grid::ArbitrageBattery smart(8.0, rate_kwh, forecast);
  const double smart_revenue = day_revenue(
      [&](int w, double g, double l) { return smart.Step(w, g, l); });

  std::printf("\nhome #2 day revenue (positive = net seller):\n");
  std::printf("  greedy battery    : $%+.3f\n", greedy_revenue);
  std::printf("  arbitrage battery : $%+.3f  (%.1f%% better)\n", smart_revenue,
              100.0 * (smart_revenue - greedy_revenue) /
                  std::max(1e-9, std::abs(greedy_revenue)));
  std::printf(
      "\nthe arbitrage policy charges in the %.2f-floor midday valley and "
      "discharges at the %.2f evening prices — §VI's store-for-the-future "
      "trading\n",
      smart.cheap_threshold(), smart.expensive_threshold());
  return 0;
}
