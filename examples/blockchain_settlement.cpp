// Blockchain settlement (paper §VI, "Blockchain Deployment"): record
// every PEM trade on a hash-chained ledger through the settlement
// smart contract, then demonstrate tamper detection.
//
// Build & run:  ./build/examples/blockchain_settlement
#include <cstdio>

#include "core/simulation.h"
#include "crypto/rng.h"
#include "ledger/settlement.h"
#include "net/bus.h"

int main() {
  using namespace pem;

  // A morning of trading for a 40-home community, real protocols.
  grid::TraceConfig trace_cfg;
  trace_cfg.num_homes = 40;
  trace_cfg.windows_per_day = 720;
  const grid::CommunityTrace trace = grid::GenerateCommunityTrace(trace_cfg);

  protocol::PemConfig config;
  config.key_bits = 512;  // demo speed
  crypto::SystemRng& rng = crypto::SystemRng::Instance();

  ledger::Ledger chain;
  ledger::SettlementContract contract(chain);

  net::MessageBus bus(trace.num_homes());
  std::vector<net::Endpoint> agents = bus.endpoints();
  std::vector<protocol::Party> parties;
  for (int h = 0; h < trace.num_homes(); ++h) {
    parties.emplace_back(h, trace.homes[static_cast<size_t>(h)].params);
  }
  std::vector<grid::Battery> batteries = trace.MakeBatteries();

  // Settle a midday slice of windows on-chain.
  const int first = 350, last = 357;
  for (int w = 0; w <= last; ++w) {
    std::vector<grid::WindowState> states;
    states.reserve(static_cast<size_t>(trace.num_homes()));
    for (int h = 0; h < trace.num_homes(); ++h) {
      states.push_back(trace.ResolveWindow(h, w, batteries));
    }
    if (w < first) continue;  // batteries still evolve before the slice
    for (int h = 0; h < trace.num_homes(); ++h) {
      parties[static_cast<size_t>(h)].BeginWindow(
          states[static_cast<size_t>(h)], config.nonce_bound, rng);
    }
    protocol::ProtocolContext ctx{agents, rng, config};
    const protocol::PemWindowResult out = protocol::RunPemWindow(ctx, parties);
    const ledger::SettlementReport report = contract.SettleWindow(w, out);
    std::printf("window %d: price %5.1f c/kWh, %3zu trades -> block %zu %s\n",
                w, out.price * 100, out.trades.size(),
                chain.block_count() - 1,
                report.accepted ? "sealed" : "REJECTED");
  }

  std::printf("\nchain: %zu blocks, %llu transactions, audit: %s\n",
              chain.block_count(),
              static_cast<unsigned long long>(chain.TotalTransactions()),
              chain.Validate().empty() ? "VALID" : "INVALID");

  // Balances settle to zero across the coalition (closed market).
  int64_t sum = 0;
  for (int h = 0; h < trace.num_homes(); ++h) sum += chain.BalanceOf(h);
  std::printf("sum of all balances: %lld micro-USD (money conservation)\n",
              static_cast<long long>(sum));

  // A malicious rewrite of history is caught by the audit.
  if (chain.TotalTransactions() > 0) {
    for (size_t b = 1; b < chain.block_count(); ++b) {
      if (!chain.block(b).transactions.empty()) {
        chain.MutableBlockForTest(b).transactions[0].payment_micro_usd += 1;
        break;
      }
    }
    const auto issues = chain.Validate();
    std::printf("\nafter tampering with one recorded payment:\n");
    for (const auto& issue : issues) {
      std::printf("  audit: block %llu — %s\n",
                  static_cast<unsigned long long>(issue.block_index),
                  issue.what.c_str());
    }
    std::printf("tamper detection: %s\n", issues.empty() ? "FAILED" : "OK");
  }

  // A forged window (payment not matching price*energy) is refused by
  // the contract before it ever reaches the chain.
  protocol::PemWindowResult forged;
  forged.type = market::MarketType::kGeneral;
  forged.price = 1.0;
  forged.supply_total = 1.0;
  forged.demand_total = 2.0;
  forged.trades.push_back(protocol::Trade{0, 1, 0.5, 0.7});  // overpriced
  const ledger::SettlementReport rejected =
      contract.SettleWindow(999, forged);
  std::printf("\nforged window accepted? %s (%s)\n",
              rejected.accepted ? "yes" : "no",
              rejected.violations.empty() ? "-"
                                          : rejected.violations[0].c_str());
  return 0;
}
