// Quickstart: one privacy-preserving trading window among five homes.
//
// Shows the minimal public-API flow:
//   1. describe each agent's private window data (generation, load,
//      battery action, utility parameter),
//   2. run the full PEM protocol stack (Protocols 1-4) over the
//      byte-counting message bus,
//   3. read the public outcome: market case, clearing price, pairwise
//      trades, and what each agent paid/earned.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "crypto/rng.h"
#include "net/bus.h"
#include "protocol/pem_protocol.h"

int main() {
  using namespace pem;

  // --- 1. Five homes, one minute of smart-meter data ------------------
  struct Home {
    const char* name;
    double generation_kwh, load_kwh, battery_kwh, preference_k;
  };
  const Home homes[] = {
      {"solar-roof-A", 0.060, 0.020, 0.010, 0.9},   // seller (charging)
      {"solar-roof-B", 0.045, 0.015, 0.000, 1.1},   // seller
      {"apartment-C", 0.000, 0.030, 0.000, 1.0},    // buyer
      {"apartment-D", 0.005, 0.040, 0.000, 1.0},    // buyer
      {"ev-garage-E", 0.000, 0.010, 0.020, 1.0},    // buyer (EV charging)
  };

  net::MessageBus bus(5);
  // Each home acts through its own per-agent handle; the bus itself
  // stays with the driver.
  std::vector<net::Endpoint> agents = bus.endpoints();
  crypto::SystemRng& rng = crypto::SystemRng::Instance();
  protocol::PemConfig config;
  config.key_bits = 1024;

  std::vector<protocol::Party> parties;
  for (int i = 0; i < 5; ++i) {
    grid::AgentParams params;
    params.preference_k = homes[i].preference_k;
    params.battery_epsilon = 0.9;
    parties.emplace_back(i, params);
    grid::WindowState st;
    st.generation_kwh = homes[i].generation_kwh;
    st.load_kwh = homes[i].load_kwh;
    st.battery_kwh = homes[i].battery_kwh;
    parties.back().BeginWindow(st, config.nonce_bound, rng);
  }

  // --- 2. Run the window ----------------------------------------------
  protocol::ProtocolContext ctx{agents, rng, config};
  const protocol::PemWindowResult out = protocol::RunPemWindow(ctx, parties);

  // --- 3. Inspect the public outcome ----------------------------------
  const char* market =
      out.type == market::MarketType::kGeneral
          ? "general (demand > supply; Stackelberg price)"
          : out.type == market::MarketType::kExtreme
                ? "extreme (supply >= demand; floor price)"
                : "no market";
  std::printf("market case : %s\n", market);
  std::printf("price       : %.1f cents/kWh  (band [%.0f, %.0f])\n",
              out.price * 100, config.market.price_floor * 100,
              config.market.price_ceiling * 100);
  std::printf("supply/demand: %.3f / %.3f kWh\n\n", out.supply_total,
              out.demand_total);

  std::printf("trades:\n");
  for (const protocol::Trade& t : out.trades) {
    std::printf("  %-12s -> %-12s  %7.4f kWh  for %6.4f $\n",
                homes[t.seller_index].name, homes[t.buyer_index].name,
                t.energy_kwh, t.payment);
  }
  std::printf("\nper-home settlement:\n");
  for (int i = 0; i < 5; ++i) {
    std::printf("  %-12s  role=%-7s  paid %6.4f $  received %6.4f $\n",
                homes[i].name,
                parties[i].role() == grid::Role::kSeller
                    ? "seller"
                    : parties[i].role() == grid::Role::kBuyer ? "buyer"
                                                              : "off",
                out.money_paid[i], out.money_received[i]);
  }
  std::printf(
      "\nprotocol cost: %.3f s, %llu bytes on the wire "
      "(all private inputs stayed encrypted)\n",
      out.runtime_seconds, static_cast<unsigned long long>(out.bus_bytes));
  return 0;
}
