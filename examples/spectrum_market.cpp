// Divisible-resource generalization (paper §VI): the PEM machinery
// allocating kWh among homes works unchanged for spectrum among radio
// operators — "the allocation of spectrum in cognitive radio networks,
// and the WiFi & LTE sharing".
//
// Units: "generation" = licensed-but-idle MHz an operator can lease
// out this scheduling epoch; "load" = MHz of subscriber demand;
// prices in $ per MHz-epoch.  Primary operators with slack lease to
// oversubscribed virtual operators at a Stackelberg price between the
// regulator's floor and the commercial ceiling — all without revealing
// anyone's utilization, which is competitive information.
//
// Build & run:  ./build/examples/spectrum_market
#include <cstdio>

#include "crypto/rng.h"
#include "net/transport.h"
#include "protocol/pem_protocol.h"

int main() {
  using namespace pem;

  struct Operator {
    const char* name;
    double idle_mhz;    // lease supply
    double demand_mhz;  // subscriber demand beyond owned spectrum
    double k;           // willingness to keep spectrum as margin
  };
  const Operator operators[] = {
      {"primary-A", 24.0, 6.0, 0.8},   // 18 MHz to lease
      {"primary-B", 30.0, 14.0, 1.2},  // 16 MHz to lease
      {"virtual-C", 0.0, 12.0, 1.0},   // needs 12 MHz
      {"virtual-D", 0.0, 25.0, 1.0},   // needs 25 MHz
      {"iot-E", 0.0, 4.0, 1.0},        // needs 4 MHz
  };
  const int n = 5;

  protocol::PemConfig config;
  config.key_bits = 1024;
  // Price band: regulator floor $0.90/MHz, commercial cap $1.10/MHz,
  // carrier-grade fallback $1.20 (the "main grid" analog), residual
  // buy-back $0.80.
  config.market.retail_price = 1.20;
  config.market.buyback_price = 0.80;
  config.market.price_floor = 0.90;
  config.market.price_ceiling = 1.10;

  // Run this market over the socket backend: each operator's frames
  // cross its own Unix-domain channel pair, the way the paper deploys
  // one container per agent.
  std::unique_ptr<net::Transport> bus =
      net::MakeTransport(net::TransportKind::kSocket, n);
  std::vector<net::Endpoint> agents = bus->endpoints();
  crypto::SystemRng& rng = crypto::SystemRng::Instance();
  std::vector<protocol::Party> parties;
  for (int i = 0; i < n; ++i) {
    grid::AgentParams params;
    params.preference_k = operators[i].k;
    params.battery_epsilon = 0.9;  // unused (no storage in this market)
    parties.emplace_back(i, params);
    grid::WindowState st;
    st.generation_kwh = operators[i].idle_mhz;   // supply, in MHz
    st.load_kwh = operators[i].demand_mhz;       // demand, in MHz
    parties.back().BeginWindow(st, config.nonce_bound, rng);
  }

  protocol::ProtocolContext ctx{agents, rng, config};
  const protocol::PemWindowResult out = protocol::RunPemWindow(ctx, parties);

  std::printf("spectrum epoch cleared: %s market, %.2f $/MHz\n",
              out.type == market::MarketType::kGeneral ? "general" : "extreme",
              out.price);
  std::printf("leased %.1f MHz of %.1f offered (demand %.1f MHz)\n\n",
              std::min(out.supply_total, out.demand_total), out.supply_total,
              out.demand_total);
  for (const protocol::Trade& t : out.trades) {
    std::printf("  %-10s leases %5.2f MHz to %-10s for $%.2f\n",
                operators[t.seller_index].name, t.energy_kwh,
                operators[t.buyer_index].name, t.payment);
  }
  std::printf("\nresiduals: %.2f MHz drawn from the carrier-grade pool at "
              "$%.2f/MHz\n",
              out.grid_import_kwh, config.market.retail_price);
  std::printf("privacy: utilization figures never left the operators — only "
              "the ratios of Lemma 4 were revealed\n");
  return 0;
}
