// The lint wall's own wall.
//
// Three layers of assurance:
//   1. Engine unit tests — the comment/string blanker, whole-token
//      matching and inline suppressions, i.e. everything a token-based
//      linter can get subtly wrong (digit separators opening a phantom
//      char literal is the classic).
//   2. Fixture corpus — for every rule, a violating mini-tree that must
//      fire and a clean mini-tree that must stay silent.  The fixtures
//      live under tools/lint/testdata/, which WalkTree() deliberately
//      skips so the corpus never trips the self-run.
//   3. Self-run — the shipped tree is lint-clean, and the transcript
//      layers (src/protocol/, src/crypto/) carry ZERO suppressions:
//      the determinism and backend-include guarantees hold with no
//      escape hatches spent.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "lint.h"

namespace pem::lint {
namespace {

namespace fs = std::filesystem;

const fs::path kTestdata = PEM_LINT_TESTDATA;
const fs::path kSourceRoot = PEM_SOURCE_ROOT;

std::vector<Finding> LintFixture(const std::string& kind,
                                 const std::string& rule) {
  const fs::path root = kTestdata / kind / rule;
  EXPECT_TRUE(fs::is_directory(root)) << root;
  const Registry registry = MakeDefaultRegistry();
  return RunLint(root, WalkTree(root), registry, {rule}, {});
}

int CountRule(const std::vector<Finding>& findings, const std::string& rule) {
  int n = 0;
  for (const Finding& f : findings) n += (f.rule == rule);
  return n;
}

// --- engine -----------------------------------------------------------

TEST(LintEngine, BlankerHidesCommentsAndStrings) {
  const fs::path p =
      kTestdata / "clean/determinism/src/protocol/jitter.cpp";
  const SourceFile f = LoadSourceFile(p, "src/protocol/jitter.cpp");
  // Raw mentions std::rand in a comment and a string; code must not.
  EXPECT_NE(f.raw.find("std::rand"), std::string::npos);
  EXPECT_EQ(FindToken(f.code, "std::rand"), std::string::npos);
  EXPECT_EQ(FindToken(f.code, "time("), std::string::npos);
  // The digit separator in 120'000 must not open a char literal and
  // swallow the identifier after it.
  EXPECT_NE(FindToken(f.code, "kBudget"), std::string::npos);
}

TEST(LintEngine, TokenBoundaries) {
  EXPECT_TRUE(TokenAt("x = rand();", 4, "rand"));
  EXPECT_FALSE(TokenAt("x = srand();", 5, "rand"));   // prefix glued
  EXPECT_FALSE(TokenAt("x = rands();", 4, "rand"));   // suffix glued
  EXPECT_EQ(FindToken("resend(send(", "send("), 7u);  // skips resend(
}

TEST(LintEngine, IncludeExtraction) {
  const fs::path p =
      kTestdata / "violations/layering-order/src/util/clock.h";
  const SourceFile f = LoadSourceFile(p, "src/util/clock.h");
  ASSERT_EQ(f.includes.size(), 3u);
  EXPECT_EQ(f.includes[0], "net/transport.h");
  EXPECT_EQ(f.includes[1], "protocol/party.h");
  EXPECT_EQ(f.includes[2], "util/error.h");
  EXPECT_TRUE(f.is_header);
}

TEST(LintEngine, SuppressionSameLineAndLineAbove) {
  const fs::path p =
      kTestdata / "clean/fd-cloexec/src/net/listener.cpp";
  const SourceFile f = LoadSourceFile(p, "src/net/listener.cpp");
  // The fixture carries exactly one allow(fd-cloexec); find its line.
  int allow_line = 0;
  for (size_t i = 0; i < f.raw_lines.size(); ++i) {
    if (f.raw_lines[i].find("pem-lint: allow(fd-cloexec)") !=
        std::string::npos) {
      allow_line = static_cast<int>(i + 1);
    }
  }
  ASSERT_GT(allow_line, 0);
  EXPECT_TRUE(f.Suppressed("fd-cloexec", allow_line));      // same line
  EXPECT_TRUE(f.Suppressed("fd-cloexec", allow_line + 1));  // line below
  EXPECT_FALSE(f.Suppressed("fd-cloexec", allow_line + 2));
  EXPECT_FALSE(f.Suppressed("determinism", allow_line));  // other rule
}

TEST(LintEngine, RegistryFindsEveryAdvertisedRule) {
  const Registry registry = MakeDefaultRegistry();
  EXPECT_EQ(registry.rules().size(), 10u);
  for (const char* id :
       {"determinism", "layering-order", "layering-backend-include",
        "raw-syscall", "fd-cloexec", "frame-accounting", "pragma-once",
        "using-namespace", "no-cout", "topology-seeded"}) {
    EXPECT_NE(registry.Find(id), nullptr) << id;
  }
  EXPECT_EQ(registry.Find("no-such-rule"), nullptr);
}

// --- fixture corpus ---------------------------------------------------

struct RuleExpectation {
  const char* rule;
  int min_violations;  // the violating fixture fires at least this many
};

class LintRuleFixtures : public ::testing::TestWithParam<RuleExpectation> {};

TEST_P(LintRuleFixtures, ViolatingFixtureFires) {
  const RuleExpectation e = GetParam();
  const std::vector<Finding> findings = LintFixture("violations", e.rule);
  EXPECT_GE(CountRule(findings, e.rule), e.min_violations);
  for (const Finding& f : findings) {
    EXPECT_EQ(f.rule, e.rule);
    EXPECT_GE(f.line, 1);
    EXPECT_FALSE(f.message.empty());
  }
}

TEST_P(LintRuleFixtures, CleanFixtureStaysSilent) {
  const RuleExpectation e = GetParam();
  std::ostringstream listing;
  const std::vector<Finding> findings = LintFixture("clean", e.rule);
  for (const Finding& f : findings) {
    listing << f.file << ":" << f.line << ": " << f.rule << ": " << f.message
            << "\n";
  }
  EXPECT_EQ(findings.size(), 0u) << listing.str();
}

INSTANTIATE_TEST_SUITE_P(
    AllRules, LintRuleFixtures,
    ::testing::Values(RuleExpectation{"determinism", 5},
                      RuleExpectation{"layering-order", 2},
                      RuleExpectation{"layering-backend-include", 2},
                      RuleExpectation{"raw-syscall", 3},
                      RuleExpectation{"fd-cloexec", 5},
                      RuleExpectation{"frame-accounting", 1},
                      RuleExpectation{"pragma-once", 1},
                      RuleExpectation{"using-namespace", 1},
                      RuleExpectation{"no-cout", 1},
                      RuleExpectation{"topology-seeded", 2}),
    [](const ::testing::TestParamInfo<RuleExpectation>& info) {
      std::string name = info.param.rule;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// Clean fixtures must be clean under EVERY rule, not just their own —
// otherwise the corpus teaches rules to contradict each other.
TEST(LintFixtureCorpus, CleanTreesPassAllRules) {
  const Registry registry = MakeDefaultRegistry();
  for (const auto& entry : fs::directory_iterator(kTestdata / "clean")) {
    const std::vector<Finding> findings =
        RunLint(entry.path(), WalkTree(entry.path()), registry, {}, {});
    std::ostringstream listing;
    for (const Finding& f : findings) {
      listing << f.file << ":" << f.line << ": " << f.rule << "\n";
    }
    EXPECT_EQ(findings.size(), 0u)
        << entry.path().filename() << ":\n"
        << listing.str();
  }
}

// --- self-run ---------------------------------------------------------

TEST(LintSelfRun, ShippedTreeIsClean) {
  const Registry registry = MakeDefaultRegistry();
  const std::vector<std::string> files = WalkTree(kSourceRoot);
  // A broken root (wrong PEM_SOURCE_ROOT) would pass vacuously.
  ASSERT_GT(files.size(), 40u);
  const std::vector<Finding> findings =
      RunLint(kSourceRoot, files, registry, {}, {});
  std::ostringstream listing;
  for (const Finding& f : findings) {
    listing << f.file << ":" << f.line << ": " << f.rule << ": " << f.message
            << "\n";
  }
  EXPECT_EQ(findings.size(), 0u) << listing.str();
}

// The acceptance bar: determinism and backend-include hold over the
// transcript layers with ZERO suppressions — not one escape hatch.
TEST(LintSelfRun, TranscriptLayersCarryNoSuppressions) {
  for (const char* dir : {"src/protocol", "src/crypto"}) {
    for (const auto& entry :
         fs::recursive_directory_iterator(kSourceRoot / dir)) {
      if (!entry.is_regular_file()) continue;
      std::ifstream in(entry.path());
      std::ostringstream buf;
      buf << in.rdbuf();
      EXPECT_EQ(buf.str().find("pem-lint: allow("), std::string::npos)
          << entry.path();
    }
  }
}

}  // namespace
}  // namespace pem::lint
