#include "market/baseline.h"

#include <gtest/gtest.h>

#include "market/incentives.h"

namespace pem::market {
namespace {

AgentWindowInput Agent(double g, double l, double b = 0.0) {
  AgentWindowInput in;
  in.params.preference_k = 1.0;
  in.params.battery_epsilon = 0.9;
  in.state.generation_kwh = g;
  in.state.load_kwh = l;
  in.state.battery_kwh = b;
  return in;
}

TEST(Baseline, GridAbsorbsAllFlows) {
  const std::vector<AgentWindowInput> agents = {
      Agent(2.0, 1.0),  // +1.0 exported
      Agent(0.0, 1.5),  // 1.5 imported
      Agent(1.0, 1.0),  // balanced
  };
  const BaselineOutcome out = ComputeBaseline(agents, MarketParams{});
  EXPECT_NEAR(out.grid_export_kwh, 1.0, 1e-9);
  EXPECT_NEAR(out.grid_import_kwh, 1.5, 1e-9);
  EXPECT_NEAR(out.GridInteraction(), 2.5, 1e-9);
}

TEST(Baseline, BuyersPayFullRetail) {
  const std::vector<AgentWindowInput> agents = {Agent(0.0, 2.0),
                                                Agent(0.5, 1.0)};
  const BaselineOutcome out = ComputeBaseline(agents, MarketParams{});
  EXPECT_NEAR(out.buyer_total_cost, 1.2 * 2.5, 1e-9);
}

TEST(Baseline, InteractionAlwaysAtLeastPemInteraction) {
  // Without PEM the grid sees E_s + E_b; with PEM only |E_b - E_s|.
  const std::vector<AgentWindowInput> agents = {
      Agent(2.5, 1.0), Agent(0.0, 2.0), Agent(0.3, 1.4), Agent(1.9, 0.2)};
  const MarketParams p;
  const BaselineOutcome base = ComputeBaseline(agents, p);
  const MarketOutcome pem = ClearMarket(agents, p);
  EXPECT_GE(base.GridInteraction(), pem.GridInteraction() - 1e-9);
}

TEST(Baseline, EmptyMarketIsZero) {
  const std::vector<AgentWindowInput> none;
  const BaselineOutcome out = ComputeBaseline(none, MarketParams{});
  EXPECT_DOUBLE_EQ(out.buyer_total_cost, 0.0);
  EXPECT_DOUBLE_EQ(out.GridInteraction(), 0.0);
}

TEST(SellerUtilityAtPrice, HigherPriceHigherUtilityForProducers) {
  grid::AgentParams params;
  params.preference_k = 1.0;
  params.battery_epsilon = 0.9;
  grid::WindowState st;
  st.generation_kwh = 4.0;
  st.load_kwh = 0.5;
  const double at_buyback = SellerUtilityAtPrice(params, st, 0.8);
  const double at_pem = SellerUtilityAtPrice(params, st, 1.0);
  EXPECT_GT(at_pem, at_buyback);
}

TEST(SellerUtilityAtPrice, UsesBestResponseLoad) {
  // Utility at the best-response load must dominate a fixed load.
  grid::AgentParams params;
  params.preference_k = 2.0;
  params.battery_epsilon = 0.9;
  grid::WindowState st;
  st.generation_kwh = 5.0;
  const double best = SellerUtilityAtPrice(params, st, 1.0);
  const double fixed = SellerUtility(2.0, 0.2, 0.9, 0.0, 1.0, 5.0);
  EXPECT_GE(best, fixed);
}

}  // namespace
}  // namespace pem::market
