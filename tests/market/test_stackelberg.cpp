#include "market/stackelberg.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace pem::market {
namespace {

MarketParams DefaultParams() { return MarketParams{}; }

std::vector<SellerGameInput> MakeSellers(int n, double k, double g) {
  std::vector<SellerGameInput> out(static_cast<size_t>(n));
  for (auto& s : out) {
    s.k = k;
    s.generation = g;
    s.epsilon = 0.9;
    s.battery = 0.0;
  }
  return out;
}

TEST(Stackelberg, InteriorPriceMatchesEquation13) {
  const auto sellers = MakeSellers(10, 1.0, 0.05);
  const PriceSolution sol = SolveStackelbergPrice(sellers, DefaultParams());
  // p_hat = sqrt(ps * n*k / (n*(g+1))) = sqrt(1.2 * 1.0 / 1.05)
  EXPECT_NEAR(sol.interior_price, std::sqrt(1.2 / 1.05), 1e-12);
}

TEST(Stackelberg, PriceClampedToFloor) {
  // Small k drives the interior price below pl = 0.9.
  const auto sellers = MakeSellers(5, 0.3, 0.1);
  const PriceSolution sol = SolveStackelbergPrice(sellers, DefaultParams());
  EXPECT_LT(sol.interior_price, 0.9);
  EXPECT_DOUBLE_EQ(sol.price, 0.9);
  EXPECT_TRUE(sol.clamped_low);
  EXPECT_FALSE(sol.clamped_high);
}

TEST(Stackelberg, PriceClampedToCeiling) {
  const auto sellers = MakeSellers(5, 3.0, 0.1);
  const PriceSolution sol = SolveStackelbergPrice(sellers, DefaultParams());
  EXPECT_GT(sol.interior_price, 1.1);
  EXPECT_DOUBLE_EQ(sol.price, 1.1);
  EXPECT_TRUE(sol.clamped_high);
}

TEST(Stackelberg, InRangePriceNotClamped) {
  const auto sellers = MakeSellers(5, 0.85, 0.02);
  const PriceSolution sol = SolveStackelbergPrice(sellers, DefaultParams());
  EXPECT_GE(sol.price, 0.9);
  EXPECT_LE(sol.price, 1.1);
  EXPECT_DOUBLE_EQ(sol.price, sol.interior_price);
  EXPECT_FALSE(sol.clamped_low);
  EXPECT_FALSE(sol.clamped_high);
}

TEST(Stackelberg, AggregateSumsAreLinear) {
  std::vector<SellerGameInput> sellers;
  sellers.push_back({1.0, 2.0, 0.9, 1.0});   // supply term: 2+1+0.9-1 = 2.9
  sellers.push_back({2.0, 0.5, 0.8, -1.0});  // 0.5+1-0.8+1 = 1.7
  const PricingSums sums = AggregatePricingSums(sellers);
  EXPECT_NEAR(sums.sum_k, 3.0, 1e-12);
  EXPECT_NEAR(sums.sum_supply, 4.6, 1e-12);
}

TEST(Stackelberg, BatteryChargingLowersEffectiveSupplyTerm) {
  // Charging (b > 0, eps < 1) reduces g+1+eps*b-b relative to b = 0,
  // which raises the interior price.
  const auto idle = MakeSellers(1, 1.0, 1.0);
  auto charging = MakeSellers(1, 1.0, 1.0);
  charging[0].battery = 0.5;
  const double p_idle =
      SolveStackelbergPrice(idle, DefaultParams()).interior_price;
  const double p_chg =
      SolveStackelbergPrice(charging, DefaultParams()).interior_price;
  EXPECT_GT(p_chg, p_idle);
}

TEST(Stackelberg, MoreGenerationLowersPrice) {
  const double p_low_gen =
      SolveStackelbergPrice(MakeSellers(10, 1.0, 0.01), DefaultParams())
          .interior_price;
  const double p_high_gen =
      SolveStackelbergPrice(MakeSellers(10, 1.0, 0.5), DefaultParams())
          .interior_price;
  EXPECT_LT(p_high_gen, p_low_gen);
}

TEST(Stackelberg, CostFunctionEvaluates) {
  const auto sellers = MakeSellers(3, 1.0, 0.1);
  const double cost =
      BuyerCoalitionCost(sellers, 1.0, /*market_demand=*/2.0, DefaultParams());
  EXPECT_TRUE(std::isfinite(cost));
}

TEST(StackelbergDeath, EmptySellerSetAborts) {
  const std::vector<SellerGameInput> none;
  EXPECT_DEATH((void)SolveStackelbergPrice(none, DefaultParams()), "seller");
}

TEST(StackelbergDeath, InvalidParamsAbort) {
  MarketParams bad;
  bad.price_floor = 0.5;  // violates pb < pl
  const auto sellers = MakeSellers(2, 1.0, 0.1);
  EXPECT_DEATH((void)SolveStackelbergPrice(sellers, bad), "pb < pl");
}

}  // namespace
}  // namespace pem::market
