// Property tests for the paper's three theoretical guarantees
// (§V-B): equilibrium existence/uniqueness (Lemma 1), individual
// rationality and incentive compatibility (Theorem 2).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "market/baseline.h"
#include "market/clearing.h"
#include "market/incentives.h"
#include "market/stackelberg.h"
#include "util/sim_random.h"

namespace pem::market {
namespace {

std::vector<SellerGameInput> RandomSellers(int n, uint64_t seed) {
  pem::SimRandom rng(seed);
  std::vector<SellerGameInput> out(static_cast<size_t>(n));
  for (auto& s : out) {
    s.k = rng.Uniform(0.6, 1.4);
    s.generation = rng.Uniform(0.0, 0.2);
    s.epsilon = rng.Uniform(0.85, 0.95);
    s.battery = rng.Uniform(-0.05, 0.05);
  }
  return out;
}

class EquilibriumProperties : public ::testing::TestWithParam<uint64_t> {};

// Lemma 1 (convexity): Γ(p) is strictly convex in p, so the interior
// optimum is the unique minimizer.
TEST_P(EquilibriumProperties, TotalCostIsConvexInPrice) {
  const auto sellers = RandomSellers(20, GetParam());
  const MarketParams params;
  const double demand = 50.0;
  // Discrete convexity check over a price grid.
  const double lo = 0.5, hi = 2.0;
  const int steps = 60;
  std::vector<double> gamma;
  for (int i = 0; i <= steps; ++i) {
    const double p = lo + (hi - lo) * i / steps;
    gamma.push_back(BuyerCoalitionCost(sellers, p, demand, params));
  }
  for (size_t i = 1; i + 1 < gamma.size(); ++i) {
    EXPECT_LE(gamma[i], (gamma[i - 1] + gamma[i + 1]) / 2 + 1e-9) << i;
  }
}

// Lemma 1 (optimality): the Eq. 13 price minimizes Γ over the grid.
TEST_P(EquilibriumProperties, InteriorPriceMinimizesTotalCost) {
  const auto sellers = RandomSellers(20, GetParam() + 100);
  const MarketParams params;
  const double demand = 50.0;
  const double p_star =
      SolveStackelbergPrice(sellers, params).interior_price;
  const double at_star = BuyerCoalitionCost(sellers, p_star, demand, params);
  for (double delta : {0.01, 0.05, 0.2}) {
    EXPECT_LE(at_star,
              BuyerCoalitionCost(sellers, p_star + delta, demand, params) + 1e-9);
    EXPECT_LE(at_star,
              BuyerCoalitionCost(sellers, p_star - delta, demand, params) + 1e-9);
  }
}

// Lemma 1 (best response): no seller can improve its utility by
// deviating from the Eq. 15 load at the equilibrium price.
TEST_P(EquilibriumProperties, SellersCannotImproveByUnilateralDeviation) {
  const auto sellers = RandomSellers(10, GetParam() + 200);
  const MarketParams params;
  const double p = SolveStackelbergPrice(sellers, params).price;
  for (const SellerGameInput& s : sellers) {
    const double l_star = OptimalSellerLoad(s.k, s.epsilon, p, s.battery);
    const double u_star =
        SellerUtility(s.k, l_star, s.epsilon, s.battery, p, s.generation);
    for (double frac : {0.5, 0.9, 1.1, 2.0}) {
      const double l_dev = l_star * frac;
      if (1.0 + l_dev + s.epsilon * s.battery <= 0) continue;
      EXPECT_GE(u_star + 1e-9, SellerUtility(s.k, l_dev, s.epsilon, s.battery,
                                             p, s.generation));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EquilibriumProperties,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

AgentWindowInput Agent(double g, double l, double k, pem::SimRandom& rng) {
  AgentWindowInput in;
  in.params.preference_k = k;
  in.params.battery_epsilon = rng.Uniform(0.85, 0.95);
  in.state.generation_kwh = g;
  in.state.load_kwh = l;
  return in;
}

std::vector<AgentWindowInput> RandomMarket(int n, uint64_t seed,
                                           double supply_bias) {
  pem::SimRandom rng(seed);
  std::vector<AgentWindowInput> agents;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Uniform(0.0, 0.1 + supply_bias);
    const double l = rng.Uniform(0.01, 0.1);
    agents.push_back(Agent(g, l, rng.Uniform(0.6, 1.4), rng));
  }
  return agents;
}

class RationalityProperties
    : public ::testing::TestWithParam<std::tuple<uint64_t, double>> {};

// Theorem 2 (individual rationality): every buyer pays no more than it
// would buying everything from the grid; every seller earns at least
// the grid-buyback revenue.
TEST_P(RationalityProperties, NoAgentWorseOffThanGridOnly) {
  const auto [seed, bias] = GetParam();
  const auto agents = RandomMarket(30, seed, bias);
  const MarketParams params;
  const MarketOutcome out = ClearMarket(agents, params);
  for (size_t i = 0; i < agents.size(); ++i) {
    if (out.roles[i] == grid::Role::kBuyer) {
      const double grid_only = params.retail_price * -out.net_energy[i];
      EXPECT_LE(out.money_paid[i], grid_only + 1e-9) << i;
    } else if (out.roles[i] == grid::Role::kSeller) {
      const double grid_only = params.buyback_price * out.net_energy[i];
      EXPECT_GE(out.money_received[i], grid_only - 1e-9) << i;
    }
  }
}

// Buyer-coalition cost with PEM never exceeds the no-PEM baseline.
TEST_P(RationalityProperties, CoalitionCostBelowBaseline) {
  const auto [seed, bias] = GetParam();
  const auto agents = RandomMarket(30, seed + 50, bias);
  const MarketParams params;
  const MarketOutcome pem = ClearMarket(agents, params);
  const BaselineOutcome base = ComputeBaseline(agents, params);
  EXPECT_LE(pem.buyer_total_cost, base.buyer_total_cost + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Markets, RationalityProperties,
    ::testing::Combine(::testing::Values(uint64_t{1}, uint64_t{9},
                                         uint64_t{33}, uint64_t{77}),
                       ::testing::Values(0.0, 0.15)));  // general & extreme mix

// Incentive analysis, buyer side.  An individual buyer overstating its
// demand in the general market grabs a larger share of the (cheaper)
// market supply — the attack Protocol 4 explicitly worries about.  The
// mechanism-level guarantees are: (a) the price is untouched (it is
// derived from seller data only), and (b) the redistribution is
// zero-sum across the buyer coalition — the cheat's gain is exactly
// the other buyers' loss, never a reduction of the coalition's total
// cost.  (The protocol's defense against the individual attack is
// informational: E_b stays hidden, so a buyer cannot compute a
// profitable lie; see Lemma 4.)
TEST(IncentiveCompatibility, DemandOverstatementIsZeroSumAmongBuyers) {
  std::vector<AgentWindowInput> agents = RandomMarket(20, 5, 0.0);
  const MarketParams params;
  const MarketOutcome honest = ClearMarket(agents, params);
  ASSERT_EQ(honest.type, MarketType::kGeneral);
  size_t cheat = SIZE_MAX;
  for (size_t i = 0; i < agents.size(); ++i) {
    if (honest.roles[i] == grid::Role::kBuyer) {
      cheat = i;
      break;
    }
  }
  ASSERT_NE(cheat, SIZE_MAX);

  std::vector<AgentWindowInput> cheating = agents;
  cheating[cheat].state.load_kwh += 0.5 * -honest.net_energy[cheat];
  const MarketOutcome cheated = ClearMarket(cheating, params);
  ASSERT_EQ(cheated.type, MarketType::kGeneral);

  // (a) Price is seller-determined, hence unchanged.
  EXPECT_NEAR(cheated.price, honest.price, 1e-12);

  // (b) The coalition's cost of covering the TRUE demands does not
  // drop: each buyer's effective cost = market purchases at p plus the
  // true residual at retail (surpluses dumped at the buyback price).
  double honest_total = 0.0, cheat_total = 0.0;
  for (size_t j = 0; j < agents.size(); ++j) {
    if (honest.roles[j] != grid::Role::kBuyer) continue;
    const double true_deficit = -honest.net_energy[j];
    honest_total += honest.money_paid[j];
    const double bought = cheated.market_purchase[j];
    const double from_grid = std::max(0.0, true_deficit - bought);
    const double dumped = std::max(0.0, bought - true_deficit);
    cheat_total += cheated.price * bought +
                   params.retail_price * from_grid -
                   params.buyback_price * dumped;
  }
  EXPECT_GE(cheat_total, honest_total - 1e-9);
}

// Theorem 2 (seller side, extreme market): inflating supply depresses
// no price further (already at the floor) and forces the seller to dump
// unsold claimed energy — no gain.
TEST(IncentiveCompatibility, OverstatingSupplyInExtremeMarketDoesNotPay) {
  pem::SimRandom rng(6);
  std::vector<AgentWindowInput> agents = RandomMarket(20, 6, 0.3);
  const MarketParams params;
  const MarketOutcome honest = ClearMarket(agents, params);
  ASSERT_EQ(honest.type, MarketType::kExtreme);
  size_t seller = SIZE_MAX;
  for (size_t i = 0; i < agents.size(); ++i) {
    if (honest.roles[i] == grid::Role::kSeller) {
      seller = i;
      break;
    }
  }
  ASSERT_NE(seller, SIZE_MAX);

  std::vector<AgentWindowInput> cheating = agents;
  cheating[seller].state.generation_kwh += 1.0;  // claim phantom energy
  const MarketOutcome cheated = ClearMarket(cheating, params);
  ASSERT_EQ(cheated.type, MarketType::kExtreme);

  // Market revenue for real energy: the cheat wins a bigger share of
  // demand, but the phantom energy cannot be delivered; netting it out,
  // the deliverable revenue cannot beat honest revenue by more than the
  // phantom share it must cover from... nothing.  The honest revenue
  // counts only real energy, so deliverable cheat revenue (sales capped
  // by real supply) at the same floor price cannot exceed it by the
  // price spread.
  const double real_supply = honest.net_energy[seller];
  const double deliverable_sales =
      std::min(cheated.market_sale[seller], real_supply);
  const double cheat_revenue =
      cheated.price * deliverable_sales +
      params.buyback_price * std::max(0.0, real_supply - deliverable_sales);
  // Honest revenue uses the same floor price with a smaller market
  // share — the cheat's *deliverable* gain is bounded by shifting kWh
  // from buyback to floor price.  Verify the bound and that total market
  // sales stay demand-limited (phantom supply does not create demand).
  EXPECT_LE(cheat_revenue,
            honest.money_received[seller] +
                (params.price_floor - params.buyback_price) * real_supply +
                1e-9);
  double total_sold = 0.0;
  for (double s : cheated.market_sale) total_sold += s;
  EXPECT_NEAR(total_sold, cheated.demand_total, 1e-9);
}

}  // namespace
}  // namespace pem::market
