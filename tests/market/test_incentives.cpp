#include "market/incentives.h"

#include <gtest/gtest.h>

#include <cmath>

namespace pem::market {
namespace {

TEST(SellerUtility, MatchesEquation4ByHand) {
  // U = k log(1 + l + eps*b) + p (g - l - b)
  const double u = SellerUtility(/*k=*/2.0, /*load=*/1.0, /*eps=*/0.5,
                                 /*b=*/2.0, /*p=*/1.1, /*g=*/5.0);
  EXPECT_NEAR(u, 2.0 * std::log(3.0) + 1.1 * 2.0, 1e-12);
}

TEST(SellerUtility, ZeroLoadNoBattery) {
  const double u = SellerUtility(1.0, 0.0, 0.9, 0.0, 1.0, 3.0);
  EXPECT_NEAR(u, 3.0, 1e-12);  // log(1) = 0
}

TEST(SellerUtility, DischargingBatteryAddsSupplyRevenue) {
  const double discharging = SellerUtility(1.0, 0.5, 0.9, -1.0, 1.0, 2.0);
  const double idle = SellerUtility(1.0, 0.5, 0.9, 0.0, 1.0, 2.0);
  // b = -1 adds 1 kWh of paid supply but subtracts comfort.
  EXPECT_GT(discharging, idle - 1e12);
  EXPECT_NEAR(discharging - idle,
              1.0 * 1.0 + (std::log(1.5 - 0.9) - std::log(1.5)), 1e-12);
}

TEST(SellerUtility, IncreasingInPriceForNetProducers) {
  // g - l - b > 0 => dU/dp > 0.
  const double lo = SellerUtility(1.0, 1.0, 0.9, 0.0, 0.9, 5.0);
  const double hi = SellerUtility(1.0, 1.0, 0.9, 0.0, 1.1, 5.0);
  EXPECT_GT(hi, lo);
}

TEST(BuyerCost, MatchesEquation5ByHand) {
  // C = p*x + ps*(l + b - g - x)
  const double c = BuyerCost(/*p=*/1.0, /*x=*/2.0, /*ps=*/1.2,
                             /*l=*/5.0, /*b=*/0.0, /*g=*/1.0);
  EXPECT_NEAR(c, 1.0 * 2.0 + 1.2 * 2.0, 1e-12);
}

TEST(BuyerCost, FullMarketCoverageCheaperThanGridOnly) {
  const double deficit_covered = BuyerCost(0.9, 4.0, 1.2, 5.0, 0.0, 1.0);
  const double grid_only = BuyerCost(0.9, 0.0, 1.2, 5.0, 0.0, 1.0);
  EXPECT_LT(deficit_covered, grid_only);
}

TEST(BuyerCost, ChargingBatteryIncreasesDeficit) {
  const double with_charge = BuyerCost(1.0, 1.0, 1.2, 3.0, 1.0, 1.0);
  const double without = BuyerCost(1.0, 1.0, 1.2, 3.0, 0.0, 1.0);
  EXPECT_NEAR(with_charge - without, 1.2, 1e-12);
}

TEST(BuyerCostDeath, PurchaseBeyondDeficitAborts) {
  EXPECT_DEATH((void)BuyerCost(1.0, 10.0, 1.2, 3.0, 0.0, 1.0), "deficit");
}

TEST(OptimalSellerLoad, MatchesCorrectedEquation15) {
  // l* = k/p - 1 - eps*b (paper's Eq. 15 with the spurious eps factor
  // dropped; see the erratum note in incentives.h).
  EXPECT_NEAR(OptimalSellerLoad(2.0, 0.9, 1.0, 0.5), 2.0 - 1 - 0.45, 1e-12);
}

TEST(OptimalSellerLoad, InteriorVariantCanGoNegative) {
  EXPECT_LT(OptimalSellerLoadInterior(0.1, 0.9, 1.1, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(OptimalSellerLoad(0.1, 0.9, 1.1, 0.0), 0.0);
}

TEST(OptimalSellerLoad, SatisfiesFirstOrderCondition) {
  // dU/dl at l* must vanish: k/(1+l*+eps*b) == p.
  const double k = 2.5, eps = 0.9, p = 1.0, b = 0.3;
  const double l = OptimalSellerLoadInterior(k, eps, p, b);
  EXPECT_NEAR(k / (1.0 + l + eps * b), p, 1e-12);
}

TEST(OptimalSellerLoad, ClampsAtZero) {
  EXPECT_DOUBLE_EQ(OptimalSellerLoad(0.1, 0.9, 1.1, 0.0), 0.0);
}

TEST(OptimalSellerLoad, DecreasingInPrice) {
  const double lo_price = OptimalSellerLoad(3.0, 0.9, 0.9, 0.0);
  const double hi_price = OptimalSellerLoad(3.0, 0.9, 1.1, 0.0);
  EXPECT_GT(lo_price, hi_price);
}

TEST(OptimalSellerLoad, IsTheArgmaxOfUtility) {
  // First-order condition check: U(l*) >= U(l* ± delta).
  const double k = 2.5, eps = 0.9, p = 1.0, b = 0.3, g = 6.0;
  const double l_star = OptimalSellerLoad(k, eps, p, b);
  const double u_star = SellerUtility(k, l_star, eps, b, p, g);
  for (double delta : {0.01, 0.1, 0.5}) {
    EXPECT_GE(u_star, SellerUtility(k, l_star + delta, eps, b, p, g));
    if (l_star - delta > 0) {
      EXPECT_GE(u_star, SellerUtility(k, l_star - delta, eps, b, p, g));
    }
  }
}

TEST(SellerUtilityDeath, NonPositiveKAborts) {
  EXPECT_DEATH((void)SellerUtility(0.0, 1.0, 0.9, 0.0, 1.0, 1.0), "positive");
}

}  // namespace
}  // namespace pem::market
