#include "market/clearing.h"

#include <gtest/gtest.h>

#include <numeric>

namespace pem::market {
namespace {

AgentWindowInput Agent(double g, double l, double b = 0.0, double k = 1.0) {
  AgentWindowInput in;
  in.params.preference_k = k;
  in.params.battery_epsilon = 0.9;
  in.state.generation_kwh = g;
  in.state.load_kwh = l;
  in.state.battery_kwh = b;
  return in;
}

MarketParams Params() { return MarketParams{}; }

TEST(Clearing, ClassifiesRoles) {
  const std::vector<AgentWindowInput> agents = {
      Agent(2.0, 1.0),  // seller
      Agent(0.5, 1.5),  // buyer
      Agent(1.0, 1.0),  // off market
  };
  const MarketOutcome out = ClearMarket(agents, Params());
  EXPECT_EQ(out.roles[0], grid::Role::kSeller);
  EXPECT_EQ(out.roles[1], grid::Role::kBuyer);
  EXPECT_EQ(out.roles[2], grid::Role::kOffMarket);
  EXPECT_EQ(out.CountRole(grid::Role::kSeller), 1);
  EXPECT_EQ(out.CountRole(grid::Role::kBuyer), 1);
}

TEST(Clearing, GeneralMarketWhenDemandExceedsSupply) {
  const std::vector<AgentWindowInput> agents = {
      Agent(1.5, 1.0),  // sn = +0.5
      Agent(0.0, 2.0),  // sn = -2.0
  };
  const MarketOutcome out = ClearMarket(agents, Params());
  EXPECT_EQ(out.type, MarketType::kGeneral);
  EXPECT_NEAR(out.supply_total, 0.5, 1e-9);
  EXPECT_NEAR(out.demand_total, 2.0, 1e-9);
}

TEST(Clearing, ExtremeMarketWhenSupplyCoversDemand) {
  const std::vector<AgentWindowInput> agents = {
      Agent(3.0, 0.5),  // sn = +2.5
      Agent(0.0, 1.0),  // sn = -1.0
  };
  const MarketOutcome out = ClearMarket(agents, Params());
  EXPECT_EQ(out.type, MarketType::kExtreme);
  EXPECT_DOUBLE_EQ(out.price, Params().price_floor);
}

TEST(Clearing, NoMarketWithoutSellers) {
  const std::vector<AgentWindowInput> agents = {Agent(0.0, 1.0),
                                                Agent(0.5, 2.0)};
  const MarketOutcome out = ClearMarket(agents, Params());
  EXPECT_EQ(out.type, MarketType::kNoMarket);
  EXPECT_DOUBLE_EQ(out.price, Params().retail_price);
  // Buyers pay full retail.
  EXPECT_NEAR(out.buyer_total_cost, 1.2 * (1.0 + 1.5), 1e-9);
}

TEST(Clearing, NoMarketWithoutBuyers) {
  const std::vector<AgentWindowInput> agents = {Agent(2.0, 1.0),
                                                Agent(3.0, 1.0)};
  const MarketOutcome out = ClearMarket(agents, Params());
  EXPECT_EQ(out.type, MarketType::kNoMarket);
  // All surplus exported at the buyback price.
  EXPECT_NEAR(out.grid_export_kwh, 3.0, 1e-9);
  EXPECT_NEAR(out.money_received[0], 0.8 * 1.0, 1e-9);
}

TEST(Clearing, GeneralMarketSellsAllSupply) {
  const std::vector<AgentWindowInput> agents = {
      Agent(2.0, 1.0),  // seller +1.0
      Agent(0.0, 1.5),  // buyer -1.5
      Agent(0.0, 0.5),  // buyer -0.5
  };
  const MarketOutcome out = ClearMarket(agents, Params());
  ASSERT_EQ(out.type, MarketType::kGeneral);
  EXPECT_NEAR(out.market_sale[0], 1.0, 1e-9);
  // Buyers split supply by demand ratio: 1.5/2.0 and 0.5/2.0.
  EXPECT_NEAR(out.market_purchase[1], 0.75, 1e-9);
  EXPECT_NEAR(out.market_purchase[2], 0.25, 1e-9);
  // Residual demand covered by the grid.
  EXPECT_NEAR(out.grid_import_kwh, 1.0, 1e-9);
  EXPECT_NEAR(out.grid_export_kwh, 0.0, 1e-9);
}

TEST(Clearing, ExtremeMarketCoversAllDemand) {
  const std::vector<AgentWindowInput> agents = {
      Agent(4.0, 1.0),  // seller +3.0
      Agent(2.0, 1.0),  // seller +1.0
      Agent(0.0, 2.0),  // buyer  -2.0
  };
  const MarketOutcome out = ClearMarket(agents, Params());
  ASSERT_EQ(out.type, MarketType::kExtreme);
  EXPECT_NEAR(out.market_purchase[2], 2.0, 1e-9);
  // Sellers sell proportionally to supply: 3/4 and 1/4 of demand.
  EXPECT_NEAR(out.market_sale[0], 1.5, 1e-9);
  EXPECT_NEAR(out.market_sale[1], 0.5, 1e-9);
  // Leftover supply exported: 4 - 2 = 2.
  EXPECT_NEAR(out.grid_export_kwh, 2.0, 1e-9);
  EXPECT_NEAR(out.grid_import_kwh, 0.0, 1e-9);
}

TEST(Clearing, BuyerTotalCostMatchesEquation7) {
  const std::vector<AgentWindowInput> agents = {
      Agent(1.6, 1.0, 0.0, 0.9),  // seller +0.6
      Agent(0.0, 1.0),            // buyer -1.0
      Agent(0.0, 0.8),            // buyer -0.8
  };
  const MarketOutcome out = ClearMarket(agents, Params());
  ASSERT_EQ(out.type, MarketType::kGeneral);
  const double gamma = out.price * out.supply_total +
                       Params().retail_price *
                           (out.demand_total - out.supply_total);
  EXPECT_NEAR(out.buyer_total_cost, gamma, 1e-9);
}

TEST(Clearing, MoneyConservation) {
  // Total buyer payments == seller market revenue + grid retail revenue;
  // seller receipts == market revenue + grid buyback payments.
  const std::vector<AgentWindowInput> agents = {
      Agent(2.0, 1.0), Agent(1.8, 1.2), Agent(0.0, 1.4), Agent(0.2, 1.5),
  };
  const MarketOutcome out = ClearMarket(agents, Params());
  double paid = std::accumulate(out.money_paid.begin(), out.money_paid.end(), 0.0);
  double market_volume = 0.0;
  for (double s : out.market_sale) market_volume += s;
  const double expected_paid = out.price * market_volume +
                               Params().retail_price * out.grid_import_kwh;
  EXPECT_NEAR(paid, expected_paid, 1e-9);

  double received = std::accumulate(out.money_received.begin(),
                                    out.money_received.end(), 0.0);
  EXPECT_NEAR(received, out.price * market_volume +
                            Params().buyback_price * out.grid_export_kwh,
              1e-9);
}

TEST(Clearing, EnergyConservation) {
  const std::vector<AgentWindowInput> agents = {
      Agent(3.0, 1.0), Agent(0.5, 1.6), Agent(0.1, 2.2), Agent(2.2, 0.3),
  };
  const MarketOutcome out = ClearMarket(agents, Params());
  double sold = 0.0, bought = 0.0;
  for (double s : out.market_sale) sold += s;
  for (double b : out.market_purchase) bought += b;
  EXPECT_NEAR(sold, bought, 1e-9);
  EXPECT_NEAR(sold + out.grid_export_kwh, out.supply_total, 1e-9);
  EXPECT_NEAR(bought + out.grid_import_kwh, out.demand_total, 1e-9);
}

TEST(Clearing, PairwiseAllocationSumsToTotals) {
  const std::vector<AgentWindowInput> agents = {
      Agent(2.0, 1.0), Agent(1.5, 1.0), Agent(0.0, 1.9), Agent(0.0, 1.1),
  };
  const MarketOutcome out = ClearMarket(agents, Params());
  for (int i = 0; i < 2; ++i) {
    double row = 0.0;
    for (int j = 2; j < 4; ++j) row += PairwiseAllocation(out, i, j);
    EXPECT_NEAR(row, out.market_sale[static_cast<size_t>(i)], 1e-9) << i;
  }
  for (int j = 2; j < 4; ++j) {
    double col = 0.0;
    for (int i = 0; i < 2; ++i) col += PairwiseAllocation(out, i, j);
    EXPECT_NEAR(col, out.market_purchase[static_cast<size_t>(j)], 1e-9) << j;
  }
}

TEST(Clearing, PairwiseAllocationZeroForWrongRoles) {
  const std::vector<AgentWindowInput> agents = {Agent(2.0, 1.0),
                                                Agent(0.0, 1.9)};
  const MarketOutcome out = ClearMarket(agents, Params());
  EXPECT_DOUBLE_EQ(PairwiseAllocation(out, 1, 0), 0.0);  // roles swapped
  EXPECT_DOUBLE_EQ(PairwiseAllocation(out, 0, 0), 0.0);  // buyer == seller id
}

TEST(Clearing, QuantizationMakesTinyNetsOffMarket) {
  // |sn| below half a fixed-point unit quantizes to zero.
  const std::vector<AgentWindowInput> agents = {Agent(1.0, 1.0 - 4e-7),
                                                Agent(1.0, 1.0 + 4e-7)};
  const MarketOutcome out = ClearMarket(agents, Params());
  EXPECT_EQ(out.roles[0], grid::Role::kOffMarket);
  EXPECT_EQ(out.roles[1], grid::Role::kOffMarket);
  EXPECT_EQ(out.type, MarketType::kNoMarket);
}

TEST(Clearing, BalancedMarketIsExtremeWithNoGridFlows) {
  // E_s == E_b exactly: extreme market, everything trades locally.
  const std::vector<AgentWindowInput> agents = {Agent(2.0, 1.0),
                                                Agent(0.0, 1.0)};
  const MarketOutcome out = ClearMarket(agents, Params());
  ASSERT_EQ(out.type, MarketType::kExtreme);
  EXPECT_NEAR(out.market_sale[0], 1.0, 1e-9);
  EXPECT_NEAR(out.market_purchase[1], 1.0, 1e-9);
  EXPECT_NEAR(out.GridInteraction(), 0.0, 1e-9);
}

TEST(Clearing, SingleSellerSingleBuyerGeneral) {
  const std::vector<AgentWindowInput> agents = {Agent(1.3, 1.0),  // +0.3
                                                Agent(0.0, 0.9)}; // -0.9
  const MarketOutcome out = ClearMarket(agents, Params());
  ASSERT_EQ(out.type, MarketType::kGeneral);
  EXPECT_NEAR(out.market_sale[0], 0.3, 1e-9);     // all supply sold
  EXPECT_NEAR(out.market_purchase[1], 0.3, 1e-9);
  EXPECT_NEAR(out.grid_import_kwh, 0.6, 1e-9);    // residual from grid
  EXPECT_NEAR(PairwiseAllocation(out, 0, 1), 0.3, 1e-9);
}

TEST(Clearing, ManyAgentsStressInvariants) {
  // 200 agents with varied positions: conservation must hold exactly.
  std::vector<AgentWindowInput> agents;
  for (int i = 0; i < 200; ++i) {
    const double g = (i % 3 == 0) ? 0.01 * (i % 17) : 0.0;
    const double l = 0.005 * (i % 23) + 0.001;
    agents.push_back(Agent(g, l, 0.0, 0.6 + 0.004 * (i % 100)));
  }
  const MarketOutcome out = ClearMarket(agents, Params());
  double sold = 0, bought = 0;
  for (double s : out.market_sale) sold += s;
  for (double b : out.market_purchase) bought += b;
  EXPECT_NEAR(sold, bought, 1e-9);
  EXPECT_NEAR(sold + out.grid_export_kwh, out.supply_total, 1e-9);
  EXPECT_NEAR(bought + out.grid_import_kwh, out.demand_total, 1e-9);
}

TEST(Clearing, EmptyMarketIsNoMarket) {
  const std::vector<AgentWindowInput> agents;
  const MarketOutcome out = ClearMarket(agents, Params());
  EXPECT_EQ(out.type, MarketType::kNoMarket);
  EXPECT_DOUBLE_EQ(out.buyer_total_cost, 0.0);
}

}  // namespace
}  // namespace pem::market
