#include "ledger/block.h"

#include <gtest/gtest.h>

namespace pem::ledger {
namespace {

Transaction Tx(int32_t window, int32_t seller, int32_t buyer, int64_t energy,
               int64_t payment) {
  Transaction t;
  t.window = window;
  t.seller = seller;
  t.buyer = buyer;
  t.energy_micro_kwh = energy;
  t.payment_micro_usd = payment;
  return t;
}

TEST(Transaction, SerializationIsStable) {
  const Transaction t = Tx(5, 1, 2, 1'000'000, 950'000);
  EXPECT_EQ(t.Serialize(), t.Serialize());
  EXPECT_EQ(t.Serialize().size(), 4u + 4u + 4u + 8u + 8u);
}

TEST(Transaction, DigestChangesWithEveryField) {
  const Transaction base = Tx(1, 2, 3, 100, 90);
  EXPECT_NE(Tx(9, 2, 3, 100, 90).Digest(), base.Digest());
  EXPECT_NE(Tx(1, 9, 3, 100, 90).Digest(), base.Digest());
  EXPECT_NE(Tx(1, 2, 9, 100, 90).Digest(), base.Digest());
  EXPECT_NE(Tx(1, 2, 3, 999, 90).Digest(), base.Digest());
  EXPECT_NE(Tx(1, 2, 3, 100, 99).Digest(), base.Digest());
  EXPECT_EQ(Tx(1, 2, 3, 100, 90).Digest(), base.Digest());
}

TEST(Block, EmptyTxRootIsDefined) {
  const crypto::Sha256Digest a = Block::ComputeTxRoot({});
  const crypto::Sha256Digest b = Block::ComputeTxRoot({});
  EXPECT_EQ(a, b);
}

TEST(Block, TxRootCoversAllTransactions) {
  std::vector<Transaction> txs = {Tx(1, 0, 1, 10, 9), Tx(1, 0, 2, 20, 18),
                                  Tx(1, 3, 1, 5, 4)};
  const crypto::Sha256Digest root = Block::ComputeTxRoot(txs);
  txs[2].payment_micro_usd += 1;  // tamper with the last (odd) leaf
  EXPECT_NE(Block::ComputeTxRoot(txs), root);
}

TEST(Block, TxRootOrderSensitive) {
  const std::vector<Transaction> ab = {Tx(1, 0, 1, 10, 9), Tx(1, 0, 2, 20, 18)};
  const std::vector<Transaction> ba = {Tx(1, 0, 2, 20, 18), Tx(1, 0, 1, 10, 9)};
  EXPECT_NE(Block::ComputeTxRoot(ab), Block::ComputeTxRoot(ba));
}

TEST(Block, SingleTransactionRootIsLeafDigest) {
  const Transaction t = Tx(1, 0, 1, 10, 9);
  EXPECT_EQ(Block::ComputeTxRoot({t}), t.Digest());
}

TEST(Block, HashDependsOnEveryHeaderField) {
  Block b;
  b.header.index = 1;
  b.header.logical_time = 100;
  b.header.tx_root = Block::ComputeTxRoot({});
  const crypto::Sha256Digest base = b.Hash();
  Block c = b;
  c.header.index = 2;
  EXPECT_NE(c.Hash(), base);
  c = b;
  c.header.logical_time = 101;
  EXPECT_NE(c.Hash(), base);
  c = b;
  c.header.previous_hash.bytes[0] ^= 1;
  EXPECT_NE(c.Hash(), base);
}

// Merkle-root property sweep: tampering with ANY transaction in a
// block of any size must change the root.
class MerkleRootProperty : public ::testing::TestWithParam<int> {};

TEST_P(MerkleRootProperty, AnySingleTamperChangesRoot) {
  const int n = GetParam();
  std::vector<Transaction> txs;
  for (int i = 0; i < n; ++i) {
    txs.push_back(Tx(1, i, i + 1, 100 + i, 90 + i));
  }
  const crypto::Sha256Digest root = Block::ComputeTxRoot(txs);
  for (int i = 0; i < n; ++i) {
    std::vector<Transaction> tampered = txs;
    tampered[static_cast<size_t>(i)].payment_micro_usd ^= 1;
    EXPECT_NE(Block::ComputeTxRoot(tampered), root) << "leaf " << i;
  }
}

TEST_P(MerkleRootProperty, RootIsDeterministic) {
  const int n = GetParam();
  std::vector<Transaction> txs;
  for (int i = 0; i < n; ++i) txs.push_back(Tx(2, i, i + 1, i, i));
  EXPECT_EQ(Block::ComputeTxRoot(txs), Block::ComputeTxRoot(txs));
}

INSTANTIATE_TEST_SUITE_P(Sizes, MerkleRootProperty,
                         ::testing::Values(1, 2, 3, 4, 7, 8, 15, 16, 33));

TEST(Block, ConsistencyDetectsBodyTampering) {
  Block b;
  b.transactions = {Tx(1, 0, 1, 10, 9)};
  b.header.tx_root = Block::ComputeTxRoot(b.transactions);
  EXPECT_TRUE(b.IsConsistent());
  b.transactions[0].energy_micro_kwh = 11;
  EXPECT_FALSE(b.IsConsistent());
}

}  // namespace
}  // namespace pem::ledger
