#include "ledger/chain.h"

#include <gtest/gtest.h>

namespace pem::ledger {
namespace {

Transaction Tx(int32_t window, int32_t seller, int32_t buyer, int64_t energy,
               int64_t payment) {
  Transaction t;
  t.window = window;
  t.seller = seller;
  t.buyer = buyer;
  t.energy_micro_kwh = energy;
  t.payment_micro_usd = payment;
  return t;
}

TEST(Ledger, StartsWithGenesisOnly) {
  const Ledger chain;
  EXPECT_EQ(chain.block_count(), 1u);
  EXPECT_EQ(chain.TotalTransactions(), 0u);
  EXPECT_TRUE(chain.Validate().empty());
}

TEST(Ledger, AppendLinksBlocks) {
  Ledger chain;
  chain.Append({Tx(0, 0, 1, 10, 9)}, 0);
  chain.Append({Tx(1, 0, 2, 20, 18)}, 1);
  EXPECT_EQ(chain.block_count(), 3u);
  EXPECT_EQ(chain.block(2).header.previous_hash, chain.block(1).Hash());
  EXPECT_EQ(chain.block(1).header.previous_hash, chain.block(0).Hash());
  EXPECT_TRUE(chain.Validate().empty());
}

TEST(Ledger, AppendReturnsTipHash) {
  Ledger chain;
  const crypto::Sha256Digest h = chain.Append({Tx(0, 0, 1, 1, 1)}, 0);
  EXPECT_EQ(h, chain.tip().Hash());
}

TEST(Ledger, EmptyBlocksAreLegal) {
  Ledger chain;
  chain.Append({}, 7);
  EXPECT_TRUE(chain.Validate().empty());
  EXPECT_EQ(chain.tip().header.logical_time, 7u);
}

TEST(Ledger, DetectsBodyTampering) {
  Ledger chain;
  chain.Append({Tx(0, 0, 1, 10, 9)}, 0);
  chain.Append({Tx(1, 0, 1, 10, 9)}, 1);
  chain.MutableBlockForTest(1).transactions[0].payment_micro_usd = 1;
  const std::vector<ValidationIssue> issues = chain.Validate();
  ASSERT_FALSE(issues.empty());
  EXPECT_EQ(issues[0].block_index, 1u);
  EXPECT_NE(issues[0].what.find("tx root"), std::string::npos);
}

TEST(Ledger, DetectsRewrittenHistory) {
  Ledger chain;
  chain.Append({Tx(0, 0, 1, 10, 9)}, 0);
  chain.Append({Tx(1, 2, 3, 5, 4)}, 1);
  // Rewrite block 1 entirely (consistent body + root, but the link
  // from block 2 must now fail).
  Block& b1 = chain.MutableBlockForTest(1);
  b1.transactions[0].buyer = 9;
  b1.header.tx_root = Block::ComputeTxRoot(b1.transactions);
  const std::vector<ValidationIssue> issues = chain.Validate();
  ASSERT_FALSE(issues.empty());
  bool link_issue = false;
  for (const auto& i : issues) {
    if (i.what.find("hash link") != std::string::npos) link_issue = true;
  }
  EXPECT_TRUE(link_issue);
}

TEST(Ledger, BalancesNetOut) {
  Ledger chain;
  chain.Append({Tx(0, /*seller=*/0, /*buyer=*/1, 10, 9),
                Tx(0, /*seller=*/0, /*buyer=*/2, 10, 9)},
               0);
  chain.Append({Tx(1, /*seller=*/2, /*buyer=*/0, 30, 27)}, 1);
  EXPECT_EQ(chain.BalanceOf(0), 9 + 9 - 27);
  EXPECT_EQ(chain.BalanceOf(1), -9);
  EXPECT_EQ(chain.BalanceOf(2), -9 + 27);
  EXPECT_EQ(chain.BalanceOf(99), 0);
  // Money conservation: balances sum to zero.
  EXPECT_EQ(chain.BalanceOf(0) + chain.BalanceOf(1) + chain.BalanceOf(2), 0);
}

TEST(Ledger, WindowQueryFiltersCorrectly) {
  Ledger chain;
  chain.Append({Tx(3, 0, 1, 1, 1), Tx(3, 0, 2, 2, 2)}, 3);
  chain.Append({Tx(4, 0, 1, 3, 3)}, 4);
  EXPECT_EQ(chain.TransactionsInWindow(3).size(), 2u);
  EXPECT_EQ(chain.TransactionsInWindow(4).size(), 1u);
  EXPECT_TRUE(chain.TransactionsInWindow(5).empty());
  EXPECT_EQ(chain.TotalTransactions(), 3u);
}

TEST(LedgerDeath, BlockIndexOutOfRangeAborts) {
  const Ledger chain;
  EXPECT_DEATH((void)chain.block(5), "out of range");
}

}  // namespace
}  // namespace pem::ledger
