#include "ledger/settlement.h"

#include <gtest/gtest.h>

namespace pem::ledger {
namespace {

protocol::PemWindowResult MakeResult(double price,
                                     std::vector<protocol::Trade> trades) {
  protocol::PemWindowResult r;
  r.type = market::MarketType::kGeneral;
  r.price = price;
  for (const protocol::Trade& t : trades) {
    r.supply_total += t.energy_kwh;
    r.demand_total += t.energy_kwh * 2;  // demand exceeds supply
  }
  r.trades = std::move(trades);
  return r;
}

protocol::Trade Trade(size_t seller, size_t buyer, double kwh, double pay) {
  return protocol::Trade{seller, buyer, kwh, pay};
}

TEST(Settlement, AcceptsConsistentWindow) {
  Ledger chain;
  SettlementContract contract(chain);
  const auto result =
      MakeResult(1.0, {Trade(0, 1, 0.5, 0.5), Trade(0, 2, 0.25, 0.25)});
  const SettlementReport report = contract.SettleWindow(10, result);
  EXPECT_TRUE(report.accepted);
  EXPECT_TRUE(report.violations.empty());
  EXPECT_EQ(report.transactions_recorded, 2u);
  EXPECT_EQ(chain.TotalTransactions(), 2u);
  EXPECT_TRUE(chain.Validate().empty());
  EXPECT_EQ(report.block_hash, chain.tip().Hash());
}

TEST(Settlement, RecordsFixedPointQuantities) {
  Ledger chain;
  SettlementContract contract(chain);
  (void)contract.SettleWindow(3, MakeResult(0.9, {Trade(0, 1, 0.123456,
                                                        0.9 * 0.123456)}));
  const std::vector<Transaction> txs = chain.TransactionsInWindow(3);
  ASSERT_EQ(txs.size(), 1u);
  EXPECT_EQ(txs[0].energy_micro_kwh, 123'456);
  EXPECT_EQ(txs[0].payment_micro_usd, 111'110);  // round(0.1111104e6)
}

TEST(Settlement, RejectsWrongPayment) {
  Ledger chain;
  SettlementContract contract(chain);
  const auto result = MakeResult(1.0, {Trade(0, 1, 0.5, 0.6)});  // overpaid
  const SettlementReport report = contract.SettleWindow(1, result);
  EXPECT_FALSE(report.accepted);
  ASSERT_FALSE(report.violations.empty());
  EXPECT_NE(report.violations[0].find("payment"), std::string::npos);
  EXPECT_EQ(chain.TotalTransactions(), 0u);  // chain untouched
}

TEST(Settlement, RejectsNegativeEnergy) {
  Ledger chain;
  SettlementContract contract(chain);
  const auto result = MakeResult(1.0, {Trade(0, 1, -0.5, -0.5)});
  const SettlementReport report = contract.SettleWindow(1, result);
  EXPECT_FALSE(report.accepted);
}

TEST(Settlement, RejectsSelfTrade) {
  Ledger chain;
  SettlementContract contract(chain);
  const auto result = MakeResult(1.0, {Trade(1, 1, 0.5, 0.5)});
  EXPECT_FALSE(contract.SettleWindow(1, result).accepted);
}

TEST(Settlement, RejectsOverAllocation) {
  Ledger chain;
  SettlementContract contract(chain);
  protocol::PemWindowResult r = MakeResult(1.0, {Trade(0, 1, 0.5, 0.5)});
  r.supply_total = 0.2;  // claims less supply than was traded
  r.demand_total = 0.4;
  EXPECT_FALSE(contract.SettleWindow(1, r).accepted);
}

TEST(Settlement, EmptyWindowMakesEmptyBlock) {
  Ledger chain;
  SettlementContract contract(chain);
  const SettlementReport report =
      contract.SettleWindow(5, MakeResult(1.0, {}));
  EXPECT_TRUE(report.accepted);
  EXPECT_EQ(report.transactions_recorded, 0u);
  EXPECT_EQ(chain.block_count(), 2u);
}

TEST(Settlement, MultiWindowChainStaysValid) {
  Ledger chain;
  SettlementContract contract(chain);
  for (int w = 0; w < 20; ++w) {
    const double price = 0.9 + 0.01 * w;
    const double kwh = 0.1 + 0.01 * w;
    EXPECT_TRUE(contract
                    .SettleWindow(w, MakeResult(price,
                                                {Trade(0, 1, kwh,
                                                       price * kwh)}))
                    .accepted);
  }
  EXPECT_EQ(chain.block_count(), 21u);
  EXPECT_TRUE(chain.Validate().empty());
  // Buyer 1 paid everything seller 0 received.
  EXPECT_EQ(chain.BalanceOf(0), -chain.BalanceOf(1));
}

}  // namespace
}  // namespace pem::ledger
