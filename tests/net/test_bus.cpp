#include "net/bus.h"

#include <gtest/gtest.h>

namespace pem::net {
namespace {

Message Make(AgentId from, AgentId to, uint32_t type, size_t payload_size) {
  Message m;
  m.from = from;
  m.to = to;
  m.type = type;
  m.payload.assign(payload_size, 0x5A);
  return m;
}

TEST(MessageBus, DeliversInFifoOrder) {
  MessageBus bus(3);
  bus.Send(Make(0, 1, 10, 4));
  bus.Send(Make(2, 1, 20, 4));
  auto m1 = bus.Receive(1);
  auto m2 = bus.Receive(1);
  ASSERT_TRUE(m1 && m2);
  EXPECT_EQ(m1->type, 10u);
  EXPECT_EQ(m1->from, 0);
  EXPECT_EQ(m2->type, 20u);
  EXPECT_EQ(m2->from, 2);
  EXPECT_FALSE(bus.Receive(1).has_value());
}

TEST(MessageBus, EmptyInboxReturnsNullopt) {
  MessageBus bus(2);
  EXPECT_FALSE(bus.Receive(0).has_value());
  EXPECT_FALSE(bus.HasMessage(0));
}

TEST(MessageBus, HasMessageReflectsState) {
  MessageBus bus(2);
  bus.Send(Make(0, 1, 1, 0));
  EXPECT_TRUE(bus.HasMessage(1));
  EXPECT_FALSE(bus.HasMessage(0));
  (void)bus.Receive(1);
  EXPECT_FALSE(bus.HasMessage(1));
}

TEST(MessageBus, AccountsPayloadPlusFrameOverhead) {
  MessageBus bus(2);
  bus.Send(Make(0, 1, 1, 100));
  const uint64_t expected = 100 + MessageBus::kFrameOverheadBytes;
  EXPECT_EQ(bus.stats(0).bytes_sent, expected);
  EXPECT_EQ(bus.stats(1).bytes_received, expected);
  EXPECT_EQ(bus.total_bytes(), expected);
  EXPECT_EQ(bus.total_messages(), 1u);
}

TEST(MessageBus, BroadcastReachesEveryoneExceptSender) {
  MessageBus bus(4);
  bus.Send(Make(1, kBroadcast, 9, 10));
  EXPECT_FALSE(bus.HasMessage(1));
  for (AgentId a : {0, 2, 3}) {
    auto m = bus.Receive(a);
    ASSERT_TRUE(m.has_value()) << a;
    EXPECT_EQ(m->to, a);
    EXPECT_EQ(m->from, 1);
  }
  // Three unicast copies accounted.
  EXPECT_EQ(bus.total_messages(), 3u);
  EXPECT_EQ(bus.stats(1).bytes_sent,
            3 * (10 + MessageBus::kFrameOverheadBytes));
}

TEST(MessageBus, PerAgentCountersAreIndependent) {
  MessageBus bus(3);
  bus.Send(Make(0, 1, 1, 5));
  bus.Send(Make(0, 2, 1, 7));
  bus.Send(Make(1, 0, 1, 3));
  EXPECT_EQ(bus.stats(0).messages_sent, 2u);
  EXPECT_EQ(bus.stats(0).messages_received, 1u);
  EXPECT_EQ(bus.stats(1).messages_sent, 1u);
  EXPECT_EQ(bus.stats(2).messages_sent, 0u);
}

TEST(MessageBus, AverageBytesPerAgent) {
  MessageBus bus(2);
  bus.Send(Make(0, 1, 1, 80));  // 100 accounted
  // sent(0)=100, received(1)=100 -> (100+100)/2.
  EXPECT_DOUBLE_EQ(bus.AverageBytesPerAgent(), 100.0);
}

TEST(MessageBus, ResetStatsKeepsInboxes) {
  MessageBus bus(2);
  bus.Send(Make(0, 1, 1, 10));
  bus.ResetStats();
  EXPECT_EQ(bus.total_bytes(), 0u);
  EXPECT_EQ(bus.stats(0).bytes_sent, 0u);
  EXPECT_TRUE(bus.HasMessage(1));  // message survives the stat reset
}

TEST(MessageBus, PayloadContentPreserved) {
  MessageBus bus(2);
  Message m = Make(0, 1, 77, 0);
  m.payload = {9, 8, 7};
  bus.Send(std::move(m));
  auto got = bus.Receive(1);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->payload, (std::vector<uint8_t>{9, 8, 7}));
}

TEST(MessageBusDeath, BadAgentIdsAbort) {
  MessageBus bus(2);
  EXPECT_DEATH(bus.Send(Make(5, 0, 1, 0)), "bad sender");
  EXPECT_DEATH(bus.Send(Make(0, 5, 1, 0)), "bad receiver");
  EXPECT_DEATH((void)bus.Receive(-2), "bad agent");
}

}  // namespace
}  // namespace pem::net
