// Randomized round-trip tests for the wire format: arbitrary
// sequences of writes must read back exactly, independent of content.
#include <gtest/gtest.h>

#include "crypto/rng.h"
#include "net/serialize.h"

namespace pem::net {
namespace {

enum class Op : uint8_t { kU8, kU16, kU32, kU64, kI64, kF64, kBytes, kStr };

struct Written {
  Op op;
  uint64_t scalar = 0;
  double real = 0;
  std::vector<uint8_t> blob;
  std::string str;
};

class SerializeFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SerializeFuzz, RandomSequencesRoundTrip) {
  crypto::DeterministicRng rng(GetParam());
  ByteWriter w;
  std::vector<Written> log;
  const int ops = 200;
  for (int i = 0; i < ops; ++i) {
    Written rec;
    rec.op = static_cast<Op>(rng.NextU64() % 8);
    switch (rec.op) {
      case Op::kU8:
        rec.scalar = rng.NextU64() & 0xFF;
        w.U8(static_cast<uint8_t>(rec.scalar));
        break;
      case Op::kU16:
        rec.scalar = rng.NextU64() & 0xFFFF;
        w.U16(static_cast<uint16_t>(rec.scalar));
        break;
      case Op::kU32:
        rec.scalar = rng.NextU64() & 0xFFFFFFFF;
        w.U32(static_cast<uint32_t>(rec.scalar));
        break;
      case Op::kU64:
        rec.scalar = rng.NextU64();
        w.U64(rec.scalar);
        break;
      case Op::kI64:
        rec.scalar = rng.NextU64();
        w.I64(static_cast<int64_t>(rec.scalar));
        break;
      case Op::kF64: {
        // Use a bit pattern that is a valid non-NaN double.
        rec.real = static_cast<double>(static_cast<int64_t>(rng.NextU64())) /
                   3.7;
        w.F64(rec.real);
        break;
      }
      case Op::kBytes: {
        rec.blob.resize(rng.NextU64() % 64);
        rng.Fill(rec.blob);
        w.Bytes(rec.blob);
        break;
      }
      case Op::kStr: {
        const size_t len = rng.NextU64() % 32;
        rec.str.resize(len);
        for (char& c : rec.str) {
          c = static_cast<char>('a' + (rng.NextU64() % 26));
        }
        w.Str(rec.str);
        break;
      }
    }
    log.push_back(std::move(rec));
  }

  ByteReader r(w.data());
  for (const Written& rec : log) {
    switch (rec.op) {
      case Op::kU8: EXPECT_EQ(r.U8(), rec.scalar); break;
      case Op::kU16: EXPECT_EQ(r.U16(), rec.scalar); break;
      case Op::kU32: EXPECT_EQ(r.U32(), rec.scalar); break;
      case Op::kU64: EXPECT_EQ(r.U64(), rec.scalar); break;
      case Op::kI64:
        EXPECT_EQ(r.I64(), static_cast<int64_t>(rec.scalar));
        break;
      case Op::kF64: EXPECT_DOUBLE_EQ(r.F64(), rec.real); break;
      case Op::kBytes: EXPECT_EQ(r.Bytes(), rec.blob); break;
      case Op::kStr: EXPECT_EQ(r.Str(), rec.str); break;
    }
  }
  EXPECT_TRUE(r.AtEnd());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializeFuzz,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

}  // namespace
}  // namespace pem::net
