// SpscRing: the lock-free data path under the shm transport.
//
// Four properties, each load-bearing for ShmTransport's correctness
// argument (net/shm_transport.h):
//   * wraparound   — records survive the seam at EVERY byte offset of
//     the ring, including records split across the wrap;
//   * backpressure — a full ring rejects appends, frees exactly as
//     consumed, and the free space is gated by the SLOWER of the
//     reader and the snoop cursor (the ledger-exactness invariant);
//   * atomicity    — tail advances once per append, never exposing a
//     torn prefix: a reader that sees any of a record sees all of it;
//   * concurrency  — a 2-thread producer/consumer stress with verified
//     content, plus a trailing snooper (this suite is what the TSan CI
//     leg machine-checks).
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "net/spsc_ring.h"

namespace pem::net {
namespace {

// Aligned scratch region for a ring (the real transport mmaps; a unit
// test's aligned heap block exercises identical code).
struct RingMem {
  explicit RingMem(size_t capacity)
      : bytes(SpscRing::RegionBytes(capacity)),
        mem(std::aligned_alloc(64, (bytes + 63) / 64 * 64)) {
    std::memset(mem, 0, bytes);
  }
  ~RingMem() { std::free(mem); }
  RingMem(const RingMem&) = delete;
  RingMem& operator=(const RingMem&) = delete;

  size_t bytes;
  void* mem;
};

std::vector<uint8_t> Pattern(size_t len, uint8_t salt) {
  std::vector<uint8_t> out(len);
  for (size_t i = 0; i < len; ++i) {
    out[i] = static_cast<uint8_t>(i * 131 + salt);
  }
  return out;
}

TEST(SpscRing, InitAttachRoundTrip) {
  RingMem m(256);
  SpscRing writer = SpscRing::Init(m.mem, 256);
  SpscRing reader = SpscRing::Attach(m.mem);
  EXPECT_EQ(writer.capacity(), 256u);
  EXPECT_EQ(reader.capacity(), 256u);
  EXPECT_EQ(reader.ReadableBytes(), 0u);
  EXPECT_EQ(writer.FreeBytes(), 256u);

  const std::vector<uint8_t> rec = Pattern(33, 7);
  ASSERT_TRUE(writer.TryAppend(rec, {}));
  EXPECT_EQ(reader.ReadableBytes(), rec.size());
  std::vector<uint8_t> got(rec.size());
  reader.Peek(0, got.data(), got.size());
  EXPECT_EQ(got, rec);
}

TEST(SpscRing, TwoSpanAppendIsOneContiguousRecord) {
  RingMem m(128);
  SpscRing ring = SpscRing::Init(m.mem, 128);
  const std::vector<uint8_t> a = Pattern(10, 1);
  const std::vector<uint8_t> b = Pattern(21, 2);
  ASSERT_TRUE(ring.TryAppend(a, b));
  ASSERT_EQ(ring.ReadableBytes(), a.size() + b.size());
  std::vector<uint8_t> got(a.size() + b.size());
  ring.Peek(0, got.data(), got.size());
  EXPECT_TRUE(std::equal(a.begin(), a.end(), got.begin()));
  EXPECT_TRUE(std::equal(b.begin(), b.end(), got.begin() + a.size()));
}

TEST(SpscRing, AttachToUnformattedRegionDies) {
  RingMem m(64);
  EXPECT_DEATH((void)SpscRing::Attach(m.mem), "unformatted");
}

TEST(SpscRing, NonPowerOfTwoCapacityDies) {
  RingMem m(128);
  EXPECT_DEATH((void)SpscRing::Init(m.mem, 100), "power of two");
}

TEST(SpscRing, RecordLargerThanRingDies) {
  RingMem m(64);
  SpscRing ring = SpscRing::Init(m.mem, 64);
  const std::vector<uint8_t> big(65, 0xAB);
  EXPECT_DEATH((void)ring.TryAppend(big, {}), "larger than the whole ring");
}

TEST(SpscRing, WraparoundAtEveryOffset) {
  // Walk a fixed-size record across every start offset of a small
  // ring, so the record's body straddles the capacity seam at every
  // possible split point — including header-split and payload-split.
  constexpr size_t kCap = 64;
  constexpr size_t kRec = 24;
  RingMem m(kCap);
  SpscRing ring = SpscRing::Init(m.mem, kCap);
  // Snoop keeps pace with head (this test is about geometry, not the
  // tap): consume both cursors in lockstep.
  for (size_t offset = 0; offset < kCap; ++offset) {
    const std::vector<uint8_t> rec =
        Pattern(kRec, static_cast<uint8_t>(offset));
    ASSERT_TRUE(ring.TryAppend(rec, {})) << offset;
    ASSERT_EQ(ring.ReadableBytes(), kRec) << offset;
    std::vector<uint8_t> got(kRec);
    ring.Peek(0, got.data(), got.size());
    EXPECT_EQ(got, rec) << "content corrupted at ring offset " << offset;
    ring.Consume(kRec);
    ring.SnoopConsume(kRec);
    // Advance the seam by one extra byte so the next record starts one
    // position later (kRec alone would revisit the same offsets).
    const uint8_t pad = 0xEE;
    ASSERT_TRUE(ring.TryAppend(std::span<const uint8_t>(&pad, 1), {}));
    ring.Consume(1);
    ring.SnoopConsume(1);
  }
}

TEST(SpscRing, TwoSpanWraparoundSplitsInsideEachSpan) {
  // Both spans individually cross the seam at some offsets.
  constexpr size_t kCap = 32;
  RingMem m(kCap);
  SpscRing ring = SpscRing::Init(m.mem, kCap);
  // 9 + 13 + 1 pad = 23 bytes per iteration, coprime with the
  // capacity, so kCap iterations visit every start offset.
  const std::vector<uint8_t> a = Pattern(9, 31);
  const std::vector<uint8_t> b = Pattern(13, 77);
  for (size_t offset = 0; offset < kCap; ++offset) {
    ASSERT_TRUE(ring.TryAppend(a, b)) << offset;
    std::vector<uint8_t> got(a.size() + b.size());
    ring.Peek(0, got.data(), got.size());
    EXPECT_TRUE(std::equal(a.begin(), a.end(), got.begin())) << offset;
    EXPECT_TRUE(std::equal(b.begin(), b.end(), got.begin() + a.size()))
        << offset;
    ring.Consume(got.size());
    ring.SnoopConsume(got.size());
    const uint8_t pad = 0;
    ASSERT_TRUE(ring.TryAppend(std::span<const uint8_t>(&pad, 1), {}));
    ring.Consume(1);
    ring.SnoopConsume(1);
  }
}

TEST(SpscRing, FullRingRefusesAppendUntilConsumed) {
  constexpr size_t kCap = 64;
  RingMem m(kCap);
  SpscRing ring = SpscRing::Init(m.mem, kCap);
  const std::vector<uint8_t> half = Pattern(32, 5);
  ASSERT_TRUE(ring.TryAppend(half, {}));
  ASSERT_TRUE(ring.TryAppend(half, {}));
  EXPECT_EQ(ring.FreeBytes(), 0u);
  // Full: even one byte must be refused, with nothing written.
  const uint8_t one = 0xFF;
  EXPECT_FALSE(ring.TryAppend(std::span<const uint8_t>(&one, 1), {}));
  EXPECT_EQ(ring.ReadableBytes(), kCap);

  // Freeing needs BOTH cursors: head alone must not unblock the
  // writer (the snooper has not accounted those bytes yet).
  ring.Consume(32);
  EXPECT_EQ(ring.FreeBytes(), 0u);
  EXPECT_FALSE(ring.TryAppend(std::span<const uint8_t>(&one, 1), {}));
  ring.SnoopConsume(32);
  EXPECT_EQ(ring.FreeBytes(), 32u);
  EXPECT_TRUE(ring.TryAppend(std::span<const uint8_t>(&one, 1), {}));
}

TEST(SpscRing, SnoopCursorLagsIndependentlyOfHead) {
  RingMem m(128);
  SpscRing ring = SpscRing::Init(m.mem, 128);
  const std::vector<uint8_t> rec = Pattern(16, 9);
  ASSERT_TRUE(ring.TryAppend(rec, {}));
  ASSERT_TRUE(ring.TryAppend(rec, {}));
  // Reader consumes both; the snooper still sees both, byte-identical.
  ring.Consume(16);
  ring.Consume(16);
  EXPECT_EQ(ring.SnoopReadableBytes(), 32u);
  std::vector<uint8_t> got(16);
  ring.SnoopPeek(0, got.data(), got.size());
  EXPECT_EQ(got, rec);
  ring.SnoopConsume(16);
  ring.SnoopPeek(0, got.data(), got.size());
  EXPECT_EQ(got, rec);
  ring.SnoopConsume(16);
  EXPECT_EQ(ring.SnoopReadableBytes(), 0u);
  EXPECT_EQ(ring.FreeBytes(), 128u);
}

TEST(SpscRing, PublishIsAtomicNeverATornPrefix) {
  // The shm transport's no-torn-records argument: tail moves once per
  // append, so ReadableBytes() is always a sum of whole records.  Drive
  // a writer thread through thousands of varying-size records while
  // the main thread polls: every observed readable count must decompose
  // into whole records (here: all records are kRec bytes, so readable
  // must always be a multiple of kRec).
  constexpr size_t kCap = 1024;
  constexpr size_t kRec = 48;
  constexpr int kRecords = 4000;
  RingMem m(kCap);
  SpscRing ring = SpscRing::Init(m.mem, kCap);

  std::thread writer([&ring] {
    const std::vector<uint8_t> rec = Pattern(kRec, 3);
    for (int i = 0; i < kRecords; ++i) {
      while (!ring.TryAppend(rec, {})) {
        ring.WaitWritable(kRec, /*timeout_ms=*/50);
      }
    }
  });
  int consumed = 0;
  while (consumed < kRecords) {
    const size_t readable = ring.ReadableBytes();
    ASSERT_EQ(readable % kRec, 0u)
        << "a partial record became visible (torn publish)";
    if (readable == 0) {
      ring.WaitReadable(/*timeout_ms=*/50);
      continue;
    }
    ring.Consume(readable);
    ring.SnoopConsume(readable);
    consumed += static_cast<int>(readable / kRec);
  }
  writer.join();
  EXPECT_EQ(ring.ReadableBytes(), 0u);
}

TEST(SpscRing, TwoThreadStressWithTrailingSnooper) {
  // Producer / consumer on a deliberately tiny ring (constant
  // backpressure and wraps), with the main thread playing the trailing
  // snooper and re-verifying every byte independently.  Content is
  // position-dependent so any duplication, loss, or reorder corrupts
  // the checksum stream.
  constexpr size_t kCap = 512;
  constexpr int kRecords = 20'000;
  RingMem m(kCap);
  SpscRing ring = SpscRing::Init(m.mem, kCap);

  std::thread producer([&ring] {
    for (int i = 0; i < kRecords; ++i) {
      const size_t len = 1 + static_cast<size_t>(i % 96);
      std::vector<uint8_t> rec(len + 4);
      rec[0] = static_cast<uint8_t>(len);
      rec[1] = static_cast<uint8_t>(i);
      rec[2] = static_cast<uint8_t>(i >> 8);
      rec[3] = static_cast<uint8_t>(i >> 16);
      for (size_t j = 0; j < len; ++j) {
        rec[4 + j] = static_cast<uint8_t>(j * 7 + i);
      }
      while (!ring.TryAppend(rec, {})) {
        ring.WaitWritable(rec.size(), /*timeout_ms=*/50);
      }
    }
  });

  std::thread consumer([&ring] {
    for (int i = 0; i < kRecords; ++i) {
      uint8_t hdr[4];
      while (ring.ReadableBytes() < sizeof hdr) {
        ring.WaitReadable(/*timeout_ms=*/50);
      }
      ring.Peek(0, hdr, sizeof hdr);
      const size_t len = hdr[0];
      const int id = hdr[1] | hdr[2] << 8 | hdr[3] << 16;
      ASSERT_EQ(id, i) << "record lost, duplicated, or reordered";
      ASSERT_EQ(len, 1 + static_cast<size_t>(i % 96));
      // Whole-record publish: the body must already be visible.
      ASSERT_GE(ring.ReadableBytes(), sizeof hdr + len);
      std::vector<uint8_t> body(len);
      ring.Peek(sizeof hdr, body.data(), len);
      for (size_t j = 0; j < len; ++j) {
        ASSERT_EQ(body[j], static_cast<uint8_t>(j * 7 + i))
            << "payload corrupted at byte " << j << " of record " << i;
      }
      ring.Consume(sizeof hdr + len);
    }
  });

  // Trailing snooper: independently re-reads the same byte stream.
  int snooped = 0;
  while (snooped < kRecords) {
    if (ring.SnoopReadableBytes() < 4) {
      ring.WaitReadable(/*timeout_ms=*/50);
      continue;
    }
    uint8_t hdr[4];
    ring.SnoopPeek(0, hdr, sizeof hdr);
    const size_t len = hdr[0];
    const int id = hdr[1] | hdr[2] << 8 | hdr[3] << 16;
    ASSERT_EQ(id, snooped) << "snooper saw a different stream";
    ASSERT_GE(ring.SnoopReadableBytes(), sizeof hdr + len);
    ring.SnoopConsume(sizeof hdr + len);
    ++snooped;
  }
  producer.join();
  consumer.join();
  EXPECT_EQ(ring.ReadableBytes(), 0u);
  EXPECT_EQ(ring.SnoopReadableBytes(), 0u);
  EXPECT_EQ(ring.FreeBytes(), kCap);
}

}  // namespace
}  // namespace pem::net
