#include "net/serialize.h"

#include <gtest/gtest.h>

namespace pem::net {
namespace {

TEST(Serialize, ScalarRoundTrip) {
  ByteWriter w;
  w.U8(0xAB);
  w.U16(0x1234);
  w.U32(0xDEADBEEF);
  w.U64(0x0102030405060708ull);
  w.I64(-42);
  w.F64(3.14159);
  ByteReader r(w.data());
  EXPECT_EQ(r.U8(), 0xAB);
  EXPECT_EQ(r.U16(), 0x1234);
  EXPECT_EQ(r.U32(), 0xDEADBEEFu);
  EXPECT_EQ(r.U64(), 0x0102030405060708ull);
  EXPECT_EQ(r.I64(), -42);
  EXPECT_DOUBLE_EQ(r.F64(), 3.14159);
  EXPECT_TRUE(r.AtEnd());
}

TEST(Serialize, BytesRoundTrip) {
  ByteWriter w;
  const std::vector<uint8_t> blob = {1, 2, 3, 4, 5};
  w.Bytes(blob);
  w.Bytes({});  // empty blob is legal
  ByteReader r(w.data());
  EXPECT_EQ(r.Bytes(), blob);
  EXPECT_TRUE(r.Bytes().empty());
  EXPECT_TRUE(r.AtEnd());
}

TEST(Serialize, StringRoundTrip) {
  ByteWriter w;
  w.Str("hello pem");
  w.Str("");
  ByteReader r(w.data());
  EXPECT_EQ(r.Str(), "hello pem");
  EXPECT_EQ(r.Str(), "");
}

TEST(Serialize, MixedSequencePreservesOrder) {
  ByteWriter w;
  w.U32(7);
  w.Str("x");
  w.F64(-0.5);
  ByteReader r(w.data());
  EXPECT_EQ(r.U32(), 7u);
  EXPECT_EQ(r.Str(), "x");
  EXPECT_DOUBLE_EQ(r.F64(), -0.5);
}

TEST(Serialize, SpecialFloats) {
  ByteWriter w;
  w.F64(0.0);
  w.F64(-0.0);
  w.F64(std::numeric_limits<double>::infinity());
  ByteReader r(w.data());
  EXPECT_EQ(r.F64(), 0.0);
  EXPECT_EQ(r.F64(), -0.0);
  EXPECT_EQ(r.F64(), std::numeric_limits<double>::infinity());
}

TEST(Serialize, TakeMovesBuffer) {
  ByteWriter w;
  w.U32(1);
  const std::vector<uint8_t> taken = w.Take();
  EXPECT_EQ(taken.size(), 4u);
  EXPECT_EQ(w.size(), 0u);
}

TEST(Serialize, RemainingTracksPosition) {
  ByteWriter w;
  w.U64(0);
  w.U32(0);
  ByteReader r(w.data());
  EXPECT_EQ(r.remaining(), 12u);
  (void)r.U64();
  EXPECT_EQ(r.remaining(), 4u);
}

TEST(SerializeDeath, TruncatedScalarAborts) {
  const std::vector<uint8_t> two = {1, 2};
  ByteReader r(two);
  EXPECT_DEATH((void)r.U32(), "truncated");
}

TEST(SerializeDeath, TruncatedBlobAborts) {
  ByteWriter w;
  w.U32(100);  // claims 100 bytes follow; none do
  ByteReader r(w.data());
  EXPECT_DEATH((void)r.Bytes(), "truncated");
}

}  // namespace
}  // namespace pem::net
