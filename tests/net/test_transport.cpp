#include "net/transport.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "net/bus.h"
#include "net/concurrent_bus.h"
#include "util/parallel.h"

namespace pem::net {
namespace {

Message Make(AgentId from, AgentId to, uint32_t type, size_t payload_size) {
  Message m;
  m.from = from;
  m.to = to;
  m.type = type;
  m.payload.assign(payload_size, 0x5A);
  return m;
}

TEST(MakeTransport, ConstructsBothBackends) {
  for (TransportKind kind :
       {TransportKind::kSerialBus, TransportKind::kConcurrentBus}) {
    std::unique_ptr<Transport> t = MakeTransport(kind, 3);
    ASSERT_NE(t, nullptr);
    EXPECT_EQ(t->num_agents(), 3);
    t->Send(Make(0, 1, 7, 4));
    auto m = t->Receive(1);
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(m->type, 7u);
    EXPECT_EQ(t->total_bytes(), 4 + Transport::kFrameOverheadBytes);
  }
}

TEST(ExecutionPolicy, FactoriesAndHelpers) {
  const ExecutionPolicy serial = ExecutionPolicy::Serial();
  EXPECT_EQ(serial.transport_kind, TransportKind::kSerialBus);
  EXPECT_EQ(serial.threads, 1);
  EXPECT_FALSE(serial.parallel());
  EXPECT_EQ(serial.worker_count(), 1u);

  const ExecutionPolicy par = ExecutionPolicy::Parallel(4);
  EXPECT_EQ(par.transport_kind, TransportKind::kConcurrentBus);
  EXPECT_EQ(par.threads, 4);
  EXPECT_TRUE(par.parallel());
  EXPECT_EQ(par.worker_count(), 4u);
}

TEST(ConcurrentBus, BehavesLikeSerialBusSingleThreaded) {
  MessageBus serial(3);
  ConcurrentMessageBus concurrent(3);
  for (Transport* t : std::initializer_list<Transport*>{&serial, &concurrent}) {
    t->Send(Make(0, 1, 10, 8));
    t->Send(Make(2, kBroadcast, 11, 2));
  }
  EXPECT_EQ(concurrent.total_bytes(), serial.total_bytes());
  EXPECT_EQ(concurrent.total_messages(), serial.total_messages());
  for (AgentId a = 0; a < 3; ++a) {
    EXPECT_EQ(concurrent.stats(a).bytes_sent, serial.stats(a).bytes_sent) << a;
    EXPECT_EQ(concurrent.stats(a).bytes_received,
              serial.stats(a).bytes_received)
        << a;
    while (true) {
      auto ms = serial.Receive(a);
      auto mc = concurrent.Receive(a);
      ASSERT_EQ(ms.has_value(), mc.has_value());
      if (!ms) break;
      EXPECT_TRUE(*ms == *mc);
    }
  }
}

TEST(ConcurrentBus, AcceptsSendsFromParallelForWorkers) {
  constexpr int kSenders = 8;
  constexpr int kPerSender = 50;
  constexpr size_t kPayload = 16;
  ConcurrentMessageBus bus(kSenders + 1);
  const AgentId sink = kSenders;
  // Each worker is one sender streaming sequence-numbered messages.
  ParallelFor(0, kSenders, 4, [&](size_t sender) {
    for (int seq = 0; seq < kPerSender; ++seq) {
      Message m;
      m.from = static_cast<AgentId>(sender);
      m.to = sink;
      m.type = static_cast<uint32_t>(seq);
      m.payload.assign(kPayload, static_cast<uint8_t>(sender));
      bus.Send(std::move(m));
    }
  });

  // Byte-exact accounting despite the concurrent senders.
  const uint64_t per_msg = kPayload + Transport::kFrameOverheadBytes;
  EXPECT_EQ(bus.total_messages(),
            static_cast<uint64_t>(kSenders) * kPerSender);
  EXPECT_EQ(bus.total_bytes(),
            static_cast<uint64_t>(kSenders) * kPerSender * per_msg);
  EXPECT_EQ(bus.stats(sink).bytes_received,
            static_cast<uint64_t>(kSenders) * kPerSender * per_msg);
  for (AgentId s = 0; s < kSenders; ++s) {
    EXPECT_EQ(bus.stats(s).messages_sent, static_cast<uint64_t>(kPerSender));
    EXPECT_EQ(bus.stats(s).bytes_sent, kPerSender * per_msg);
  }

  // Per-sender FIFO order: each sender's messages arrive in its own
  // send order (sequence numbers strictly increasing per sender).
  std::map<AgentId, uint32_t> next_seq;
  int received = 0;
  while (auto m = bus.Receive(sink)) {
    EXPECT_EQ(m->type, next_seq[m->from]) << "sender " << m->from;
    next_seq[m->from] = m->type + 1;
    ++received;
  }
  EXPECT_EQ(received, kSenders * kPerSender);
}

TEST(ConcurrentBus, ObserverSeesEveryConcurrentSend) {
  constexpr int kSenders = 4;
  constexpr int kPerSender = 25;
  ConcurrentMessageBus bus(kSenders + 1);
  // The observer runs under the bus lock, so a plain counter is safe.
  int observed = 0;
  bus.SetObserver([&observed](const Message&) { ++observed; });
  ParallelFor(0, kSenders, kSenders, [&](size_t sender) {
    for (int i = 0; i < kPerSender; ++i) {
      bus.Send(Make(static_cast<AgentId>(sender), kSenders, 1, 4));
    }
  });
  EXPECT_EQ(observed, kSenders * kPerSender);
}

TEST(ConcurrentBus, ResetStatsKeepsInboxes) {
  ConcurrentMessageBus bus(2);
  bus.Send(Make(0, 1, 1, 10));
  bus.ResetStats();
  EXPECT_EQ(bus.total_bytes(), 0u);
  EXPECT_EQ(bus.stats(0).bytes_sent, 0u);
  EXPECT_TRUE(bus.HasMessage(1));
  EXPECT_DOUBLE_EQ(bus.AverageBytesPerAgent(), 0.0);
}

TEST(ConcurrentBus, ConcurrentStatReadsDuringSends) {
  // Readers racing writers must neither crash nor tear: every snapshot
  // of total_bytes is a multiple of the per-message size.
  constexpr size_t kPayload = 12;
  const uint64_t per_msg = kPayload + Transport::kFrameOverheadBytes;
  ConcurrentMessageBus bus(3);
  ParallelFor(0, 4, 4, [&](size_t worker) {
    if (worker == 0) {
      for (int i = 0; i < 200; ++i) bus.Send(Make(0, 1, 1, kPayload));
    } else {
      for (int i = 0; i < 200; ++i) {
        const uint64_t bytes = bus.total_bytes();
        EXPECT_EQ(bytes % per_msg, 0u);
        (void)bus.AverageBytesPerAgent();
        (void)bus.stats(1);
      }
    }
  });
  EXPECT_EQ(bus.total_messages(), 200u);
}

}  // namespace
}  // namespace pem::net
