#include "net/transport.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "net/bus.h"
#include "net/concurrent_bus.h"
#include "net/frame.h"
#include "net/socket_transport.h"
#include "util/parallel.h"

namespace pem::net {
namespace {

Message Make(AgentId from, AgentId to, uint32_t type, size_t payload_size) {
  Message m;
  m.from = from;
  m.to = to;
  m.type = type;
  m.payload.assign(payload_size, 0x5A);
  return m;
}

constexpr TransportKind kAllKinds[] = {
    TransportKind::kSerialBus, TransportKind::kConcurrentBus,
    TransportKind::kSocket};

TEST(MakeTransport, ConstructsEveryBackend) {
  for (TransportKind kind : kAllKinds) {
    std::unique_ptr<Transport> t = MakeTransport(kind, 3);
    ASSERT_NE(t, nullptr);
    EXPECT_EQ(t->num_agents(), 3);
    t->Send(Make(0, 1, 7, 4));
    auto m = t->Receive(1);
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(m->type, 7u);
    EXPECT_EQ(t->total_bytes(), FramedSize(size_t{4}));
  }
}

TEST(MakeTransportDeath, NonPositiveAgentCountAborts) {
  EXPECT_DEATH((void)MakeTransport(TransportKind::kSerialBus, 0), "positive");
  EXPECT_DEATH((void)MakeTransport(TransportKind::kConcurrentBus, -1),
               "positive");
  EXPECT_DEATH((void)MakeTransport(TransportKind::kSocket, 0), "positive");
}

TEST(TransportKindNames, EveryBackendHasAName) {
  EXPECT_STREQ(TransportKindName(TransportKind::kSerialBus), "serial");
  EXPECT_STREQ(TransportKindName(TransportKind::kConcurrentBus), "concurrent");
  EXPECT_STREQ(TransportKindName(TransportKind::kSocket), "socket");
  EXPECT_STREQ(TransportKindName(TransportKind::kProcess), "process");
}

// --- structured closed-peer errors ------------------------------------

TEST(SocketTransport, PeerHangupSurfacesStructuredError) {
  // A peer whose channel dies with a delivered message still pending
  // must produce a TransportError naming the agent — not an abort in
  // the relay thread, and not a silent empty inbox.  This is the exact
  // path ProcessTransport hits when a child process crashes.
  SocketTransport t(2);
  t.Send(Make(0, 1, 5, 3));
  ASSERT_TRUE(t.Receive(1).has_value());  // channel works beforehand

  t.SimulatePeerHangupForTest(1);
  t.Send(Make(0, 1, 5, 2));  // delivered per the ledger, lost on the wire
  try {
    (void)t.Receive(1);
    FAIL() << "Receive on a hung-up channel must throw";
  } catch (const TransportError& e) {
    EXPECT_EQ(e.fault().agent, 1);
    EXPECT_NE(std::string(e.what()).find("closed"), std::string::npos)
        << e.what();
  }
  // The healthy agent's channel keeps working: the router dropped the
  // dead peer instead of wedging.
  t.Send(Make(1, 0, 6, 1));
  auto m = t.Receive(0);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->type, 6u);
}

// --- Endpoint handles -------------------------------------------------

TEST(Endpoint, SendsReceivesAndCountsThroughTheHandle) {
  for (TransportKind kind : kAllKinds) {
    std::unique_ptr<Transport> t = MakeTransport(kind, 3);
    std::vector<Endpoint> eps = t->endpoints();
    ASSERT_EQ(eps.size(), 3u);
    EXPECT_EQ(eps[2].id(), 2);
    EXPECT_EQ(eps[0].num_agents(), 3);

    eps[0].Send(1, 9, {1, 2, 3});
    EXPECT_TRUE(eps[1].HasMessage());
    EXPECT_FALSE(eps[2].HasMessage());
    auto m = eps[1].Receive();
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(m->from, 0);
    EXPECT_EQ(m->to, 1);
    EXPECT_EQ(m->type, 9u);
    EXPECT_EQ(m->payload, (std::vector<uint8_t>{1, 2, 3}));
    EXPECT_FALSE(eps[1].Receive().has_value());

    EXPECT_EQ(eps[0].stats().bytes_sent, FramedSize(size_t{3}));
    EXPECT_EQ(eps[1].stats().bytes_received, FramedSize(size_t{3}));
    EXPECT_EQ(eps[2].stats().bytes_received, 0u);
  }
}

TEST(EndpointDeath, ForgedSenderAborts) {
  MessageBus bus(2);
  Endpoint ep = bus.endpoint(0);
  EXPECT_DEATH(ep.Send(Make(1, 0, 1, 1)), "forges");
}

TEST(EndpointDeath, OutOfRangeEndpointAborts) {
  MessageBus bus(2);
  EXPECT_DEATH((void)bus.endpoint(2), "out of range");
  EXPECT_DEATH((void)bus.endpoint(-1), "out of range");
}

// --- broadcast accounting across the backend matrix -------------------

TEST(BroadcastAccounting, ChargesExactlyNMinus1FramedCopiesEverywhere) {
  constexpr int kN = 5;
  constexpr size_t kPayload = 33;
  for (TransportKind kind : kAllKinds) {
    std::unique_ptr<Transport> t = MakeTransport(kind, kN);
    std::vector<Endpoint> eps = t->endpoints();
    eps[0].Send(kBroadcast, 42, std::vector<uint8_t>(kPayload, 0xAB));

    const uint64_t framed = FramedSize(kPayload);
    EXPECT_EQ(eps[0].stats().bytes_sent, (kN - 1) * framed)
        << TransportKindName(kind);
    EXPECT_EQ(eps[0].stats().messages_sent, uint64_t{kN - 1});
    EXPECT_EQ(t->total_bytes(), (kN - 1) * framed);
    EXPECT_EQ(t->total_messages(), uint64_t{kN - 1});
    EXPECT_FALSE(eps[0].HasMessage());  // no self-delivery
    for (int a = 1; a < kN; ++a) {
      EXPECT_EQ(eps[a].stats().bytes_received, framed) << a;
      auto m = eps[a].Receive();
      ASSERT_TRUE(m.has_value()) << a;
      EXPECT_EQ(m->from, 0);
      EXPECT_EQ(m->to, a);  // fan-out rewrote the recipient
      EXPECT_EQ(m->payload.size(), kPayload);
      EXPECT_FALSE(eps[a].Receive().has_value());
    }
  }
}

TEST(ExecutionPolicy, FactoriesAndHelpers) {
  const ExecutionPolicy serial = ExecutionPolicy::Serial();
  EXPECT_EQ(serial.transport_kind, TransportKind::kSerialBus);
  EXPECT_EQ(serial.threads, 1);
  EXPECT_FALSE(serial.parallel());
  EXPECT_EQ(serial.worker_count(), 1u);

  const ExecutionPolicy par = ExecutionPolicy::Parallel(4);
  EXPECT_EQ(par.transport_kind, TransportKind::kConcurrentBus);
  EXPECT_EQ(par.threads, 4);
  EXPECT_TRUE(par.parallel());
  EXPECT_EQ(par.worker_count(), 4u);
}

TEST(ConcurrentBus, BehavesLikeSerialBusSingleThreaded) {
  MessageBus serial(3);
  ConcurrentMessageBus concurrent(3);
  for (Transport* t : std::initializer_list<Transport*>{&serial, &concurrent}) {
    t->Send(Make(0, 1, 10, 8));
    t->Send(Make(2, kBroadcast, 11, 2));
  }
  EXPECT_EQ(concurrent.total_bytes(), serial.total_bytes());
  EXPECT_EQ(concurrent.total_messages(), serial.total_messages());
  for (AgentId a = 0; a < 3; ++a) {
    EXPECT_EQ(concurrent.stats(a).bytes_sent, serial.stats(a).bytes_sent) << a;
    EXPECT_EQ(concurrent.stats(a).bytes_received,
              serial.stats(a).bytes_received)
        << a;
    while (true) {
      auto ms = serial.Receive(a);
      auto mc = concurrent.Receive(a);
      ASSERT_EQ(ms.has_value(), mc.has_value());
      if (!ms) break;
      EXPECT_TRUE(*ms == *mc);
    }
  }
}

TEST(ConcurrentBus, AcceptsSendsFromParallelForWorkers) {
  constexpr int kSenders = 8;
  constexpr int kPerSender = 50;
  constexpr size_t kPayload = 16;
  ConcurrentMessageBus bus(kSenders + 1);
  const AgentId sink = kSenders;
  // Each worker is one sender streaming sequence-numbered messages.
  ParallelFor(0, kSenders, 4, [&](size_t sender) {
    for (int seq = 0; seq < kPerSender; ++seq) {
      Message m;
      m.from = static_cast<AgentId>(sender);
      m.to = sink;
      m.type = static_cast<uint32_t>(seq);
      m.payload.assign(kPayload, static_cast<uint8_t>(sender));
      bus.Send(std::move(m));
    }
  });

  // Byte-exact accounting despite the concurrent senders.
  const uint64_t per_msg = kPayload + Transport::kFrameOverheadBytes;
  EXPECT_EQ(bus.total_messages(),
            static_cast<uint64_t>(kSenders) * kPerSender);
  EXPECT_EQ(bus.total_bytes(),
            static_cast<uint64_t>(kSenders) * kPerSender * per_msg);
  EXPECT_EQ(bus.stats(sink).bytes_received,
            static_cast<uint64_t>(kSenders) * kPerSender * per_msg);
  for (AgentId s = 0; s < kSenders; ++s) {
    EXPECT_EQ(bus.stats(s).messages_sent, static_cast<uint64_t>(kPerSender));
    EXPECT_EQ(bus.stats(s).bytes_sent, kPerSender * per_msg);
  }

  // Per-sender FIFO order: each sender's messages arrive in its own
  // send order (sequence numbers strictly increasing per sender).
  std::map<AgentId, uint32_t> next_seq;
  int received = 0;
  while (auto m = bus.Receive(sink)) {
    EXPECT_EQ(m->type, next_seq[m->from]) << "sender " << m->from;
    next_seq[m->from] = m->type + 1;
    ++received;
  }
  EXPECT_EQ(received, kSenders * kPerSender);
}

TEST(ConcurrentBus, ObserverSeesEveryConcurrentSend) {
  constexpr int kSenders = 4;
  constexpr int kPerSender = 25;
  ConcurrentMessageBus bus(kSenders + 1);
  // The observer runs under the bus lock, so a plain counter is safe.
  int observed = 0;
  bus.SetObserver([&observed](const Message&) { ++observed; });
  ParallelFor(0, kSenders, kSenders, [&](size_t sender) {
    for (int i = 0; i < kPerSender; ++i) {
      bus.Send(Make(static_cast<AgentId>(sender), kSenders, 1, 4));
    }
  });
  EXPECT_EQ(observed, kSenders * kPerSender);
}

TEST(ConcurrentBus, ResetStatsKeepsInboxes) {
  ConcurrentMessageBus bus(2);
  bus.Send(Make(0, 1, 1, 10));
  bus.ResetStats();
  EXPECT_EQ(bus.total_bytes(), 0u);
  EXPECT_EQ(bus.stats(0).bytes_sent, 0u);
  EXPECT_TRUE(bus.HasMessage(1));
  EXPECT_DOUBLE_EQ(bus.AverageBytesPerAgent(), 0.0);
}

TEST(ConcurrentBus, ConcurrentStatReadsDuringSends) {
  // Readers racing writers must neither crash nor tear: every snapshot
  // of total_bytes is a multiple of the per-message size.
  constexpr size_t kPayload = 12;
  const uint64_t per_msg = kPayload + Transport::kFrameOverheadBytes;
  ConcurrentMessageBus bus(3);
  ParallelFor(0, 4, 4, [&](size_t worker) {
    if (worker == 0) {
      for (int i = 0; i < 200; ++i) bus.Send(Make(0, 1, 1, kPayload));
    } else {
      for (int i = 0; i < 200; ++i) {
        const uint64_t bytes = bus.total_bytes();
        EXPECT_EQ(bytes % per_msg, 0u);
        (void)bus.AverageBytesPerAgent();
        (void)bus.stats(1);
      }
    }
  });
  EXPECT_EQ(bus.total_messages(), 200u);
}

// --- SocketTransport behavior -----------------------------------------

TEST(SocketTransport, DeliversInGlobalSendOrderAcrossSenders) {
  // The router forwards wire frames in Send order (the ticket ledger),
  // so one inbox fed by many senders drains exactly like the bus.
  SocketTransport t(4);
  std::vector<Endpoint> eps = t.endpoints();
  eps[1].Send(3, 100, {1});
  eps[2].Send(3, 200, {2});
  eps[1].Send(3, 101, {3});
  eps[0].Send(3, 300, {4});
  const uint32_t expected[] = {100, 200, 101, 300};
  for (uint32_t type : expected) {
    auto m = eps[3].Receive();
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(m->type, type);
  }
  EXPECT_FALSE(eps[3].Receive().has_value());
}

TEST(SocketTransport, LargeFramesCrossTheRouterWithoutDeadlock) {
  // Several frames larger than a socket buffer, sent before anyone
  // receives: the router's pending queues must absorb them.
  SocketTransport t(2);
  std::vector<Endpoint> eps = t.endpoints();
  constexpr size_t kBig = 600'000;
  for (uint8_t i = 0; i < 3; ++i) {
    eps[0].Send(1, i, std::vector<uint8_t>(kBig, i));
  }
  for (uint8_t i = 0; i < 3; ++i) {
    auto m = eps[1].Receive();
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(m->type, i);
    ASSERT_EQ(m->payload.size(), kBig);
    EXPECT_EQ(m->payload.front(), i);
    EXPECT_EQ(m->payload.back(), i);
  }
  EXPECT_EQ(t.total_bytes(), 3 * FramedSize(kBig));
}

TEST(SocketTransport, ResetStatsKeepsInboxes) {
  SocketTransport t(2);
  std::vector<Endpoint> eps = t.endpoints();
  eps[0].Send(1, 1, {9, 9});
  t.ResetStats();
  EXPECT_EQ(t.total_bytes(), 0u);
  EXPECT_EQ(eps[0].stats().bytes_sent, 0u);
  EXPECT_TRUE(eps[1].HasMessage());
  auto m = eps[1].Receive();
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->payload, (std::vector<uint8_t>{9, 9}));
  EXPECT_DOUBLE_EQ(t.AverageBytesPerAgent(), 0.0);
}

TEST(SocketTransport, ObserverSeesSendOrderWithBroadcastFanOut) {
  SocketTransport t(3);
  std::vector<Endpoint> eps = t.endpoints();
  std::vector<std::pair<AgentId, AgentId>> seen;
  t.SetObserver([&seen](const Message& m) { seen.push_back({m.from, m.to}); });
  eps[2].Send(kBroadcast, 1, {});
  eps[0].Send(1, 2, {});
  const std::vector<std::pair<AgentId, AgentId>> expected = {
      {2, 0}, {2, 1}, {0, 1}};
  EXPECT_EQ(seen, expected);
  // Drain so destruction finds quiesced channels.
  (void)eps[0].Receive();
  (void)eps[1].Receive();
  (void)eps[1].Receive();
}

TEST(SocketTransport, AcceptsSendsFromParallelForWorkers) {
  constexpr int kSenders = 4;
  constexpr int kPerSender = 20;
  SocketTransport t(kSenders + 1);
  std::vector<Endpoint> eps = t.endpoints();
  const AgentId sink = kSenders;
  ParallelFor(0, kSenders, 4, [&](size_t sender) {
    for (int seq = 0; seq < kPerSender; ++seq) {
      eps[sender].Send(sink, static_cast<uint32_t>(seq),
                       std::vector<uint8_t>(8, static_cast<uint8_t>(sender)));
    }
  });
  EXPECT_EQ(t.total_messages(), uint64_t{kSenders} * kPerSender);
  // Per-sender FIFO survives concurrent senders.
  std::map<AgentId, uint32_t> next_seq;
  int received = 0;
  while (auto m = eps[sink].Receive()) {
    EXPECT_EQ(m->type, next_seq[m->from]) << "sender " << m->from;
    next_seq[m->from] = m->type + 1;
    ++received;
  }
  EXPECT_EQ(received, kSenders * kPerSender);
}

}  // namespace
}  // namespace pem::net
