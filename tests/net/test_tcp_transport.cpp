// TcpTransport: the remote deployment over a real network stack.
//
// Four walls, because TCP is the first backend whose transport layer
// can genuinely misbehave:
//   * wire      — frames really cross loopback TCP between processes,
//     accounted by the parent router, in both trusting and
//     shadow-verifying (debug) child modes;
//   * handshake — the rendezvous rejects duplicate agent ids, garbage
//     before the hello, out-of-range ids, and absent agents (connect
//     timeout) with structured errors naming the offender; port 0
//     auto-assign works;
//   * torture   — the stream segments and coalesces frames at will
//     (1-byte writes, many frames per read, frames far larger than a
//     shrunken SO_SNDBUF/SO_RCVBUF), so every short write must be
//     fully retried on both sides of the router;
//   * fault     — a SIGKILLed child or a severed connection mid-window
//     latches a structured TransportFault naming the peer within the
//     watchdog, survivors keep routing, teardown leaves no zombies
//     and a stable fd table.
//
// External (rendezvous-only) mode doubles as the multi-host
// deployment hook: here the "remote agents" are plain test threads
// speaking the client half (ConnectTcpAgent) over real sockets.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <dirent.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "net/frame.h"
#include "net/tcp_transport.h"

namespace pem::net {
namespace {

constexpr char kLoopback[] = "127.0.0.1";
constexpr int kDialMs = 20'000;

int CountOpenFds() {
  DIR* dir = opendir("/proc/self/fd");
  EXPECT_NE(dir, nullptr);
  int count = 0;
  while (readdir(dir) != nullptr) ++count;
  closedir(dir);
  // Minus ".", "..", and the directory stream's own descriptor.
  return count - 3;
}

void ExpectNoChildrenLeft() {
  int status = 0;
  errno = 0;
  const pid_t r = waitpid(-1, &status, WNOHANG);
  EXPECT_EQ(r, -1) << "an unreaped child (pid " << r << ") survived teardown";
  EXPECT_EQ(errno, ECHILD);
}

double ElapsedSeconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// Child that does nothing but answer the shutdown handshake.
int IdleChild(AgentId, Transport&, ControlChannel& ctl) {
  for (;;) {
    const ControlRecord cmd = ctl.Read(/*timeout_ms=*/60'000);
    if (cmd.tag == kCtlCmdShutdown) {
      ctl.Write(kCtlRepDone);
      return 0;
    }
  }
}

// Test-thread agent plumbing: blocking full write / frame read over a
// raw connected fd (the client half an external agent would run).
void WriteAll(int fd, const uint8_t* data, size_t len) {
  while (len > 0) {
    const ssize_t n = send(fd, data, len, MSG_NOSIGNAL);
    PEM_CHECK(n > 0 || errno == EINTR, "test agent: send failed");
    if (n < 0) continue;
    data += n;
    len -= static_cast<size_t>(n);
  }
}

Message ReadFrameBlocking(int fd, FrameDecoder& rx) {
  for (;;) {
    if (std::optional<Message> m = rx.Next()) return std::move(*m);
    uint8_t buf[4096];
    const ssize_t n = recv(fd, buf, sizeof buf, 0);
    PEM_CHECK(n > 0 || errno == EINTR, "test agent: wire closed mid-frame");
    if (n < 0) continue;
    rx.Feed(std::span<const uint8_t>(buf, static_cast<size_t>(n)));
  }
}

// Answers the parent's Shutdown command and says goodbye, then hangs
// up — what AgentDriver::Serve does for a real agent.
void AnswerShutdown(ControlChannel& ctl) {
  const ControlRecord cmd = ctl.Read(/*timeout_ms=*/60'000);
  PEM_CHECK(cmd.tag == kCtlCmdShutdown, "test agent: expected Shutdown");
  ctl.Write(kCtlRepDone);
}

// --- wire -------------------------------------------------------------

TEST(TcpTransport, RingExchangeCrossesRealTcpSockets) {
  constexpr int kAgents = 3;
  AgentSupervisor::ChildMain script = [](AgentId, Transport& wire,
                                         ControlChannel& ctl) -> int {
    const ControlRecord cmd = ctl.Read(/*timeout_ms=*/60'000);
    PEM_CHECK(cmd.tag == kCtlCmdRun, "test: expected a run command");
    const int n = wire.num_agents();
    std::vector<Endpoint> eps = wire.endpoints();
    for (AgentId a = 0; a < n; ++a) {
      eps[static_cast<size_t>(a)].Send((a + 1) % n, /*type=*/7,
                                       {uint8_t(10 + a), uint8_t(20 + a)});
    }
    for (AgentId a = 0; a < n; ++a) {
      const AgentId receiver = (a + 1) % n;
      std::optional<Message> m = eps[static_cast<size_t>(receiver)].Receive();
      PEM_CHECK(m.has_value(), "test: missing ring message");
      PEM_CHECK(m->from == a && m->type == 7, "test: wrong ring message");
      PEM_CHECK(m->payload == std::vector<uint8_t>(
                                  {uint8_t(10 + a), uint8_t(20 + a)}),
                "test: wrong ring payload");
    }
    ctl.Write(kCtlRepWindow);
    return IdleChild(0, wire, ctl);
  };

  TcpTransport transport(kAgents, script);
  EXPECT_GT(transport.port(), 0);
  std::vector<Message> seen;
  transport.SetObserver([&seen](const Message& m) { seen.push_back(m); });
  transport.CommandAll(kCtlCmdRun);
  for (AgentId a = 0; a < kAgents; ++a) {
    EXPECT_EQ(transport.ReadRecord(a).tag, kCtlRepWindow);
  }
  transport.Shutdown();
  EXPECT_FALSE(transport.fault().has_value());

  // Literal network bytes: each frame crossed child -> router -> child
  // over loopback TCP and was accounted exactly once.
  EXPECT_EQ(transport.total_messages(), 3u);
  EXPECT_EQ(transport.total_bytes(), 3 * FramedSize(2));
  for (AgentId a = 0; a < kAgents; ++a) {
    const TrafficStats s = transport.stats(a);
    EXPECT_EQ(s.bytes_sent, FramedSize(2)) << a;
    EXPECT_EQ(s.bytes_received, FramedSize(2)) << a;
  }
  ASSERT_EQ(seen.size(), 3u);
  for (const Message& m : seen) {
    EXPECT_EQ(m.to, (m.from + 1) % kAgents);
    EXPECT_EQ(m.type, 7u);
  }
  ExpectNoChildrenLeft();
}

TEST(TcpTransport, ShadowVerifyDebugModeAlsoPasses) {
  // The strict byte-match of the socketpair backend, re-enabled over
  // TCP as a debug mode: the same ring must still verify frame by
  // frame against the deterministic script.
  constexpr int kAgents = 2;
  AgentSupervisor::ChildMain script = [](AgentId, Transport& wire,
                                         ControlChannel& ctl) -> int {
    const ControlRecord cmd = ctl.Read(/*timeout_ms=*/60'000);
    PEM_CHECK(cmd.tag == kCtlCmdRun, "test: expected a run command");
    std::vector<Endpoint> eps = wire.endpoints();
    eps[0].Send(1, /*type=*/3, {9, 8, 7});
    eps[1].Send(0, /*type=*/4, {6, 5});
    PEM_CHECK(eps[1].Receive().has_value(), "test: missing message");
    PEM_CHECK(eps[0].Receive().has_value(), "test: missing message");
    ctl.Write(kCtlRepWindow);
    return IdleChild(0, wire, ctl);
  };
  TcpTransport::Options opts;
  opts.verify_frames = true;
  TcpTransport transport(kAgents, script, opts);
  transport.CommandAll(kCtlCmdRun);
  for (AgentId a = 0; a < kAgents; ++a) {
    EXPECT_EQ(transport.ReadRecord(a).tag, kCtlRepWindow);
  }
  transport.Shutdown();
  EXPECT_EQ(transport.total_messages(), 2u);
  ExpectNoChildrenLeft();
}

TEST(TcpTransport, MakeTransportRefusesTcpKind) {
  EXPECT_DEATH((void)MakeTransport(TransportKind::kTcp, 3),
               "child entry point");
}

// --- handshake --------------------------------------------------------

TEST(TcpHandshake, ListenerAutoAssignsDistinctPorts) {
  TcpListener a(kLoopback, 0, 4);
  TcpListener b(kLoopback, 0, 4);
  EXPECT_GT(a.port(), 0);
  EXPECT_GT(b.port(), 0);
  EXPECT_NE(a.port(), b.port());
}

TEST(TcpHandshake, ExternalAgentsCompleteRendezvous) {
  // The multi-host hook: agents launched elsewhere (here: threads)
  // dial the advertised port and the parent supervises them exactly
  // like forked children.
  TcpTransport::Options opts;
  TcpTransport transport(2, opts);
  const uint16_t port = transport.port();
  ASSERT_GT(port, 0);

  std::thread alice([port] {
    const TcpAgentSockets s = ConnectTcpAgent(kLoopback, port, 0, kDialMs);
    ControlChannel ctl(s.ctl_fd, 0);
    const Message m{0, 1, /*type=*/21, {1, 2, 3, 4}};
    const std::vector<uint8_t> frame = EncodeFrame(m);
    WriteAll(s.wire_fd, frame.data(), frame.size());
    AnswerShutdown(ctl);
    close(s.wire_fd);
  });
  std::thread bob([port] {
    const TcpAgentSockets s = ConnectTcpAgent(kLoopback, port, 1, kDialMs);
    ControlChannel ctl(s.ctl_fd, 1);
    FrameDecoder rx;
    const Message m = ReadFrameBlocking(s.wire_fd, rx);
    PEM_CHECK(m.from == 0 && m.to == 1 && m.type == 21 &&
                  m.payload == std::vector<uint8_t>({1, 2, 3, 4}),
              "test agent: wrong frame");
    AnswerShutdown(ctl);
    close(s.wire_fd);
  });

  transport.WaitForAgents();
  transport.Shutdown();
  alice.join();
  bob.join();
  EXPECT_EQ(transport.total_messages(), 1u);
  EXPECT_EQ(transport.total_bytes(), FramedSize(4));
  EXPECT_EQ(transport.stats(0).bytes_sent, FramedSize(4));
  EXPECT_EQ(transport.stats(1).bytes_received, FramedSize(4));
}

TEST(TcpHandshake, DuplicateAgentIdRejected) {
  TcpTransport::Options opts;
  opts.connect_timeout_ms = 10'000;
  TcpTransport transport(2, opts);
  const uint16_t port = transport.port();
  std::thread dialer([port] {
    const int first =
        TcpConnectAndHello(kLoopback, port, kTcpHelloKindWire, 0, kDialMs);
    const int second =
        TcpConnectAndHello(kLoopback, port, kTcpHelloKindWire, 0, kDialMs);
    // Hold both open until rejection; closing early could race the
    // parent's accept.
    usleep(200'000);
    close(first);
    close(second);
  });
  try {
    transport.WaitForAgents();
    FAIL() << "duplicate agent id must fail the rendezvous";
  } catch (const TransportError& e) {
    EXPECT_EQ(e.fault().agent, 0);
    EXPECT_NE(std::string(e.what()).find("duplicate wire connect for agent 0"),
              std::string::npos)
        << e.what();
  }
  dialer.join();
}

TEST(TcpHandshake, ConnectTimeoutNamesTheMissingAgent) {
  TcpTransport::Options opts;
  opts.connect_timeout_ms = 300;
  TcpTransport transport(2, opts);
  const uint16_t port = transport.port();
  std::thread dialer([port] {
    // Agent 0 shows up; agent 1 never does.
    const TcpAgentSockets s = ConnectTcpAgent(kLoopback, port, 0, kDialMs);
    usleep(500'000);
    close(s.wire_fd);
    close(s.ctl_fd);
  });
  const auto start = std::chrono::steady_clock::now();
  try {
    transport.WaitForAgents();
    FAIL() << "an absent agent must time the rendezvous out";
  } catch (const TransportError& e) {
    EXPECT_NE(std::string(e.what()).find("agent 1"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("timeout"), std::string::npos)
        << e.what();
  }
  EXPECT_LT(ElapsedSeconds(start), 8.0);
  dialer.join();
}

TEST(TcpHandshake, GarbageBeforeHelloRejected) {
  TcpTransport::Options opts;
  opts.connect_timeout_ms = 10'000;
  TcpTransport transport(1, opts);
  const uint16_t port = transport.port();
  std::thread dialer([port] {
    const int fd =
        TcpConnectAndHello(kLoopback, port, kTcpHelloKindWire, 0, kDialMs);
    // Overwriting the hello is not possible — so this is a SECOND
    // connection that opens with garbage instead of a hello.
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    inet_pton(AF_INET, kLoopback, &addr.sin_addr);
    const int bad = socket(AF_INET, SOCK_STREAM, 0);
    PEM_CHECK(bad >= 0 && connect(bad, reinterpret_cast<sockaddr*>(&addr),
                                  sizeof addr) == 0,
              "test: connect failed");
    const uint8_t junk[16] = {0xde, 0xad, 0xbe, 0xef, 0xde, 0xad, 0xbe, 0xef,
                              0xde, 0xad, 0xbe, 0xef, 0xde, 0xad, 0xbe, 0xef};
    WriteAll(bad, junk, sizeof junk);
    usleep(200'000);
    close(bad);
    close(fd);
  });
  try {
    transport.WaitForAgents();
    FAIL() << "garbage before the hello must fail the rendezvous";
  } catch (const TransportError& e) {
    EXPECT_EQ(e.fault().code, ErrorCode::kSerialization);
    EXPECT_NE(std::string(e.what()).find("garbage"), std::string::npos)
        << e.what();
  }
  dialer.join();
}

TEST(TcpHandshake, OutOfRangeAgentIdRejected) {
  TcpTransport::Options opts;
  opts.connect_timeout_ms = 10'000;
  TcpTransport transport(1, opts);
  const uint16_t port = transport.port();
  std::thread dialer([port] {
    const int fd =
        TcpConnectAndHello(kLoopback, port, kTcpHelloKindWire, 7, kDialMs);
    usleep(200'000);
    close(fd);
  });
  try {
    transport.WaitForAgents();
    FAIL() << "an out-of-range agent id must fail the rendezvous";
  } catch (const TransportError& e) {
    EXPECT_EQ(e.fault().agent, 7);
    EXPECT_NE(std::string(e.what()).find("out of range"), std::string::npos)
        << e.what();
  }
  dialer.join();
}

// --- torture ----------------------------------------------------------

TEST(TcpTorture, OneByteWritesReassembleAtTheRouter) {
  TcpTransport::Options opts;
  TcpTransport transport(2, opts);
  const uint16_t port = transport.port();
  std::vector<uint8_t> payload(257);
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<uint8_t>(i * 13 + 5);
  }
  const Message sent{0, 1, /*type=*/31, payload};

  std::thread alice([port, &sent] {
    const TcpAgentSockets s = ConnectTcpAgent(kLoopback, port, 0, kDialMs);
    ControlChannel ctl(s.ctl_fd, 0);
    const std::vector<uint8_t> frame = EncodeFrame(sent);
    // Drip the frame one byte per send(): with TCP_NODELAY each write
    // is pushed immediately, so the router's ingress sees a stream cut
    // at arbitrary (mostly 1-byte) boundaries.
    for (const uint8_t b : frame) WriteAll(s.wire_fd, &b, 1);
    AnswerShutdown(ctl);
    close(s.wire_fd);
  });
  Message got;
  std::thread bob([port, &got] {
    const TcpAgentSockets s = ConnectTcpAgent(kLoopback, port, 1, kDialMs);
    ControlChannel ctl(s.ctl_fd, 1);
    FrameDecoder rx;
    got = ReadFrameBlocking(s.wire_fd, rx);
    AnswerShutdown(ctl);
    close(s.wire_fd);
  });
  transport.WaitForAgents();
  transport.Shutdown();
  alice.join();
  bob.join();
  EXPECT_TRUE(got == sent);
  EXPECT_EQ(transport.total_bytes(), FramedSize(payload.size()));
}

TEST(TcpTorture, CoalescedFramesAllDecodeInOrder) {
  constexpr int kFrames = 64;
  TcpTransport::Options opts;
  TcpTransport transport(2, opts);
  const uint16_t port = transport.port();

  std::thread alice([port] {
    const TcpAgentSockets s = ConnectTcpAgent(kLoopback, port, 0, kDialMs);
    ControlChannel ctl(s.ctl_fd, 0);
    // One contiguous buffer of many frames: a single router recv()
    // will pull several at once and must decode them all.
    std::vector<uint8_t> burst;
    for (int i = 0; i < kFrames; ++i) {
      std::vector<uint8_t> payload(static_cast<size_t>(i % 7) + 1,
                                   static_cast<uint8_t>(i));
      AppendFrame(burst, Message{0, 1, static_cast<uint32_t>(100 + i),
                                 std::move(payload)});
    }
    WriteAll(s.wire_fd, burst.data(), burst.size());
    AnswerShutdown(ctl);
    close(s.wire_fd);
  });
  int got = 0;
  bool in_order = true;
  std::thread bob([port, &got, &in_order] {
    const TcpAgentSockets s = ConnectTcpAgent(kLoopback, port, 1, kDialMs);
    ControlChannel ctl(s.ctl_fd, 1);
    FrameDecoder rx;
    for (int i = 0; i < kFrames; ++i) {
      const Message m = ReadFrameBlocking(s.wire_fd, rx);
      if (m.type != static_cast<uint32_t>(100 + i)) in_order = false;
      ++got;
    }
    AnswerShutdown(ctl);
    close(s.wire_fd);
  });
  transport.WaitForAgents();
  transport.Shutdown();
  alice.join();
  bob.join();
  EXPECT_EQ(got, kFrames);
  EXPECT_TRUE(in_order) << "per-sender FIFO order must survive coalescing";
  EXPECT_EQ(transport.total_messages(), static_cast<uint64_t>(kFrames));
}

TEST(TcpTorture, FramesLargerThanShrunkenSocketBuffersCrossIntact) {
  // SO_SNDBUF/SO_RCVBUF far below one frame force short writes on the
  // sender, the router ingress (PendingBuf + POLLOUT), and short reads
  // everywhere; the frame must still arrive byte-identical.
  constexpr size_t kPayload = 256 * 1024;
  TcpTransport::Options opts;
  opts.socket_buffer_bytes = 4096;
  TcpTransport transport(2, opts);
  const uint16_t port = transport.port();

  std::vector<uint8_t> payload(kPayload);
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<uint8_t>(i * 31 + 7);
  }
  const Message sent{0, 1, /*type=*/77, payload};

  std::thread alice([port, &sent] {
    const TcpAgentSockets s =
        ConnectTcpAgent(kLoopback, port, 0, kDialMs, /*buffer=*/4096);
    ControlChannel ctl(s.ctl_fd, 0);
    const std::vector<uint8_t> frame = EncodeFrame(sent);
    // The shared retry loop: dozens of short writes before this
    // returns.
    SendAllOrThrow(s.wire_fd, frame.data(), frame.size(), 0, "test agent");
    AnswerShutdown(ctl);
    close(s.wire_fd);
  });
  Message got;
  std::thread bob([port, &got] {
    const TcpAgentSockets s =
        ConnectTcpAgent(kLoopback, port, 1, kDialMs, /*buffer=*/4096);
    ControlChannel ctl(s.ctl_fd, 1);
    FrameDecoder rx;
    got = ReadFrameBlocking(s.wire_fd, rx);
    AnswerShutdown(ctl);
    close(s.wire_fd);
  });
  transport.WaitForAgents();
  transport.Shutdown();
  alice.join();
  bob.join();
  ASSERT_EQ(got.payload.size(), kPayload);
  EXPECT_TRUE(got == sent) << "large frame corrupted in transit";
  EXPECT_EQ(transport.total_bytes(), FramedSize(kPayload));
  EXPECT_EQ(transport.stats(0).bytes_sent, FramedSize(kPayload));
  EXPECT_EQ(transport.stats(1).bytes_received, FramedSize(kPayload));
}

// --- fault injection --------------------------------------------------

// Two-phase script: phase 0 is where the designated victim dies;
// phase 1 proves the survivors still exchange real frames afterwards.
AgentSupervisor::ChildMain TwoPhaseScript(bool victim_sigkill) {
  return [victim_sigkill](AgentId self, Transport& wire,
                          ControlChannel& ctl) -> int {
    std::vector<Endpoint> eps = wire.endpoints();
    for (;;) {
      const ControlRecord cmd = ctl.Read(/*timeout_ms=*/60'000);
      if (cmd.tag == kCtlCmdShutdown) {
        ctl.Write(kCtlRepDone);
        return 0;
      }
      PEM_CHECK(cmd.tag == kCtlCmdRun && cmd.payload.size() == 1,
                "test: bad command");
      if (cmd.payload[0] == 0) {
        if (self == 1 && victim_sigkill) raise(SIGKILL);
        if (self == 1) {
          // Severed-wire victim: the deterministic script says agent 1
          // receives from agent 0 — its recv on the severed socket
          // surfaces the structured fault.
          eps[0].Send(1, /*type=*/50, {1});
          (void)eps[1].Receive();
        }
        ctl.Write(kCtlRepWindow);
      } else {
        // Survivor phase: a real exchange that must still route.
        eps[0].Send(2, /*type=*/51, {4, 2});
        std::optional<Message> m = eps[2].Receive();
        PEM_CHECK(m.has_value() && m->from == 0 && m->type == 51,
                  "test: survivor exchange failed");
        ctl.Write(kCtlRepWindow);
      }
    }
  };
}

TEST(TcpFault, KilledChildMidWindowSurfacesWithinWatchdog) {
  constexpr int kAgents = 3;
  const auto start = std::chrono::steady_clock::now();
  {
    TcpTransport::Options opts;
    opts.watchdog_ms = 10'000;
    TcpTransport transport(kAgents, TwoPhaseScript(/*victim_sigkill=*/true),
                           opts);
    const uint8_t phase0[] = {0};
    transport.CommandAll(kCtlCmdRun, phase0);
    EXPECT_EQ(transport.ReadRecord(0).tag, kCtlRepWindow);
    EXPECT_EQ(transport.ReadRecord(2).tag, kCtlRepWindow);
    try {
      (void)transport.ReadRecord(1);
      FAIL() << "a SIGKILLed child must not produce a record";
    } catch (const TransportError& e) {
      EXPECT_EQ(e.fault().agent, 1);
      EXPECT_NE(std::string(e.what()).find("signal 9"), std::string::npos)
          << e.what();
    }
    ASSERT_TRUE(transport.fault().has_value());
    EXPECT_EQ(transport.fault()->agent, 1);
    EXPECT_TRUE(transport.reaped(1));

    // Survivors keep routing after the fault is latched.
    const uint8_t phase1[] = {1};
    transport.Command(0, kCtlCmdRun, phase1);
    transport.Command(2, kCtlCmdRun, phase1);
    EXPECT_EQ(transport.ReadRecord(0).tag, kCtlRepWindow);
    EXPECT_EQ(transport.ReadRecord(2).tag, kCtlRepWindow);
  }
  // Hangup detection, not watchdog expiry (and certainly not a ctest
  // TIMEOUT), drove the whole sequence.
  EXPECT_LT(ElapsedSeconds(start), 8.0);
  ExpectNoChildrenLeft();
}

TEST(TcpFault, SeveredConnectionMidWindowFaultsFast) {
  constexpr int kAgents = 3;
  const auto start = std::chrono::steady_clock::now();
  {
    TcpTransport::Options opts;
    opts.watchdog_ms = 10'000;
    TcpTransport transport(kAgents, TwoPhaseScript(/*victim_sigkill=*/false),
                           opts);
    // The network "partitions" agent 1 away mid-window.
    transport.SeverWireForTest(1);
    const uint8_t phase0[] = {0};
    transport.CommandAll(kCtlCmdRun, phase0);
    EXPECT_EQ(transport.ReadRecord(0).tag, kCtlRepWindow);
    EXPECT_EQ(transport.ReadRecord(2).tag, kCtlRepWindow);
    try {
      (void)transport.ReadRecord(1);
      FAIL() << "a severed connection must not produce a clean record";
    } catch (const TransportError& e) {
      // The child saw its wire die and reported the structured error
      // over the (still healthy) control channel.
      EXPECT_EQ(e.fault().agent, 1);
      EXPECT_NE(std::string(e.what()).find("agent 1"), std::string::npos)
          << e.what();
    }
    ASSERT_TRUE(transport.fault().has_value());
    EXPECT_EQ(transport.fault()->agent, 1);

    // Survivors keep routing around the severed peer.
    const uint8_t phase1[] = {1};
    transport.Command(0, kCtlCmdRun, phase1);
    transport.Command(2, kCtlCmdRun, phase1);
    EXPECT_EQ(transport.ReadRecord(0).tag, kCtlRepWindow);
    EXPECT_EQ(transport.ReadRecord(2).tag, kCtlRepWindow);
  }
  EXPECT_LT(ElapsedSeconds(start), 8.0);
  ExpectNoChildrenLeft();
}

TEST(TcpFault, SlowExternalAgentIsATimeoutNotADisconnect) {
  // An external agent on a distant host may just be slow: the watchdog
  // must surface a ControlTimeout, not claim the peer disconnected
  // (and must not latch a transport fault).
  TcpTransport::Options opts;
  opts.watchdog_ms = 300;
  TcpTransport transport(1, opts);
  const uint16_t port = transport.port();
  std::atomic<bool> release{false};
  std::thread agent([port, &release] {
    const TcpAgentSockets s = ConnectTcpAgent(kLoopback, port, 0, kDialMs);
    // Alive but silent: hold both connections open without reporting.
    while (!release.load()) usleep(5'000);
    close(s.wire_fd);
    close(s.ctl_fd);
  });
  transport.WaitForAgents();
  const auto start = std::chrono::steady_clock::now();
  try {
    (void)transport.ReadRecord(0);
    FAIL() << "a silent agent must time out";
  } catch (const ControlTimeout& e) {
    EXPECT_NE(std::string(e.what()).find("watchdog timeout"),
              std::string::npos)
        << e.what();
  }
  EXPECT_LT(ElapsedSeconds(start), 8.0);
  EXPECT_FALSE(transport.fault().has_value())
      << "a timeout is not a disconnect";
  release.store(true);
  agent.join();
}

TEST(TcpFault, DisconnectedExternalAgentIsReportedAsSuch) {
  TcpTransport::Options opts;
  opts.watchdog_ms = 10'000;
  TcpTransport transport(1, opts);
  const uint16_t port = transport.port();
  std::thread agent([port] {
    const TcpAgentSockets s = ConnectTcpAgent(kLoopback, port, 0, kDialMs);
    // Vanish right after the rendezvous.
    close(s.wire_fd);
    close(s.ctl_fd);
  });
  transport.WaitForAgents();
  agent.join();
  const auto start = std::chrono::steady_clock::now();
  try {
    (void)transport.ReadRecord(0);
    FAIL() << "a vanished agent must not produce a record";
  } catch (const TransportError& e) {
    EXPECT_EQ(e.fault().agent, 0);
    EXPECT_NE(std::string(e.what()).find("disconnected before reporting"),
              std::string::npos)
        << e.what();
  }
  // Hangup detection, not watchdog expiry, drove this.
  EXPECT_LT(ElapsedSeconds(start), 8.0);
}

TEST(TcpFault, NoZombiesAndStableFdTableAcrossCycles) {
  // Warm up any lazy allocations (gtest, stdio, resolver) before the
  // baseline.
  {
    TcpTransport transport(2, IdleChild);
    transport.Shutdown();
  }
  ExpectNoChildrenLeft();
  const int fds_before = CountOpenFds();
  for (int cycle = 0; cycle < 3; ++cycle) {
    TcpTransport transport(2, IdleChild);
    transport.Shutdown();
  }
  EXPECT_EQ(CountOpenFds(), fds_before);
  ExpectNoChildrenLeft();

  // A failed run must clean the table just as thoroughly: crash one
  // child, let the destructor kill and reap the rest.
  for (int cycle = 0; cycle < 3; ++cycle) {
    AgentSupervisor::ChildMain script = [](AgentId self, Transport& wire,
                                           ControlChannel& ctl) -> int {
      if (self == 1) _exit(9);
      return IdleChild(self, wire, ctl);
    };
    TcpTransport transport(2, script);
    EXPECT_THROW((void)transport.ReadRecord(1), TransportError);
  }
  EXPECT_EQ(CountOpenFds(), fds_before);
  ExpectNoChildrenLeft();
}

}  // namespace
}  // namespace pem::net
