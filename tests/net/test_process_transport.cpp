// ProcessTransport: true multi-process agents over inherited
// socketpairs.
//
// Covers the wire path (frames really cross the kernel between forked
// processes, accounted by the parent router), the control plane, and —
// the part that pages people at 3am — child lifecycle: a crashed child
// surfaces a structured error naming its exit status within the
// watchdog, teardown leaves no zombie processes (asserted via waitpid)
// and no leaked descriptors (asserted by counting /proc/self/fd across
// construct/destroy cycles).
#include <gtest/gtest.h>

#include <dirent.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "net/frame.h"
#include "net/process_transport.h"

namespace pem::net {
namespace {

int CountOpenFds() {
  DIR* dir = opendir("/proc/self/fd");
  EXPECT_NE(dir, nullptr);
  int count = 0;
  while (readdir(dir) != nullptr) ++count;
  closedir(dir);
  // Minus ".", "..", and the directory stream's own descriptor.
  return count - 3;
}

void ExpectNoChildrenLeft() {
  int status = 0;
  errno = 0;
  const pid_t r = waitpid(-1, &status, WNOHANG);
  EXPECT_EQ(r, -1) << "an unreaped child (pid " << r << ") survived teardown";
  EXPECT_EQ(errno, ECHILD);
}

// Child that does nothing but answer the shutdown handshake.
int IdleChild(AgentId, Transport&, ControlChannel& ctl) {
  for (;;) {
    const ControlRecord cmd = ctl.Read(/*timeout_ms=*/60'000);
    if (cmd.tag == kCtlCmdShutdown) {
      ctl.Write(kCtlRepDone);
      return 0;
    }
  }
}

double ElapsedSeconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

TEST(ProcessTransport, RingExchangeCrossesRealSockets) {
  constexpr int kAgents = 3;
  // Every child runs the same canonical script; only its own agent's
  // sends and receives touch the real wire.  The exchange waits for a
  // run command so the parent can attach its observer first.
  ProcessTransport::ChildMain script = [](AgentId, Transport& wire,
                                          ControlChannel& ctl) -> int {
    const ControlRecord cmd = ctl.Read(/*timeout_ms=*/60'000);
    PEM_CHECK(cmd.tag == kCtlCmdRun, "test: expected a run command");
    const int n = wire.num_agents();
    std::vector<Endpoint> eps = wire.endpoints();
    for (AgentId a = 0; a < n; ++a) {
      eps[static_cast<size_t>(a)].Send((a + 1) % n, /*type=*/7,
                                       {uint8_t(10 + a), uint8_t(20 + a)});
    }
    for (AgentId a = 0; a < n; ++a) {
      const AgentId receiver = (a + 1) % n;
      std::optional<Message> m = eps[static_cast<size_t>(receiver)].Receive();
      PEM_CHECK(m.has_value(), "test: missing ring message");
      PEM_CHECK(m->from == a && m->type == 7, "test: wrong ring message");
      PEM_CHECK(m->payload == std::vector<uint8_t>(
                                  {uint8_t(10 + a), uint8_t(20 + a)}),
                "test: wrong ring payload");
    }
    ctl.Write(kCtlRepWindow);
    return IdleChild(0, wire, ctl);
  };

  ProcessTransport transport(kAgents, script);
  std::vector<Message> seen;
  transport.SetObserver([&seen](const Message& m) { seen.push_back(m); });
  transport.CommandAll(kCtlCmdRun);
  for (AgentId a = 0; a < kAgents; ++a) {
    EXPECT_EQ(transport.ReadRecord(a).tag, kCtlRepWindow);
  }
  transport.Shutdown();
  // A clean shutdown is not a fault, even though the router saw every
  // wire hang up as the children exited.
  EXPECT_FALSE(transport.fault().has_value());

  // Literal socket bytes: each of the 3 frames crossed child -> router
  // -> child and was accounted exactly once.
  EXPECT_EQ(transport.total_messages(), 3u);
  EXPECT_EQ(transport.total_bytes(), 3 * FramedSize(2));
  for (AgentId a = 0; a < kAgents; ++a) {
    const TrafficStats s = transport.stats(a);
    EXPECT_EQ(s.bytes_sent, FramedSize(2)) << a;
    EXPECT_EQ(s.bytes_received, FramedSize(2)) << a;
  }
  ASSERT_EQ(seen.size(), 3u);
  for (const Message& m : seen) {
    EXPECT_EQ(m.to, (m.from + 1) % kAgents);
    EXPECT_EQ(m.type, 7u);
  }
  ExpectNoChildrenLeft();
}

TEST(ProcessTransport, BroadcastFansOutAtTheRouter) {
  constexpr int kAgents = 4;
  ProcessTransport::ChildMain script = [](AgentId, Transport& wire,
                                          ControlChannel& ctl) -> int {
    const ControlRecord cmd = ctl.Read(/*timeout_ms=*/60'000);
    PEM_CHECK(cmd.tag == kCtlCmdRun, "test: expected a run command");
    std::vector<Endpoint> eps = wire.endpoints();
    eps[1].Send(kBroadcast, /*type=*/9, {1, 2, 3, 4, 5});
    for (AgentId a = 0; a < wire.num_agents(); ++a) {
      if (a == 1) continue;
      std::optional<Message> m = eps[static_cast<size_t>(a)].Receive();
      PEM_CHECK(m.has_value() && m->from == 1 && m->to == a,
                "test: bad broadcast copy");
    }
    ctl.Write(kCtlRepWindow);
    return IdleChild(0, wire, ctl);
  };
  ProcessTransport transport(kAgents, script);
  transport.CommandAll(kCtlCmdRun);
  for (AgentId a = 0; a < kAgents; ++a) {
    EXPECT_EQ(transport.ReadRecord(a).tag, kCtlRepWindow);
  }
  transport.Shutdown();
  // One frame on the sender's wire, fanned out to n-1 accounted copies
  // like a real broadcast over unicast links.
  EXPECT_EQ(transport.total_messages(), 3u);
  EXPECT_EQ(transport.stats(1).bytes_sent, 3 * FramedSize(5));
  EXPECT_EQ(transport.stats(0).bytes_received, FramedSize(5));
  ExpectNoChildrenLeft();
}

TEST(ProcessTransport, MakeTransportRefusesProcessKind) {
  EXPECT_DEATH((void)MakeTransport(TransportKind::kProcess, 3),
               "child entry point");
}

// --- child lifecycle --------------------------------------------------

TEST(ProcessLifecycle, CrashedChildSurfacesExitStatusFast) {
  constexpr int kAgents = 3;
  ProcessTransport::ChildMain script = [](AgentId self, Transport& wire,
                                          ControlChannel& ctl) -> int {
    if (self == 1) _exit(3);  // deliberate crash before any report
    return IdleChild(self, wire, ctl);
  };
  const auto start = std::chrono::steady_clock::now();
  {
    ProcessTransport::Options opts;
    opts.watchdog_ms = 10'000;
    ProcessTransport transport(kAgents, script, opts);
    try {
      (void)transport.ReadRecord(1);
      FAIL() << "a crashed child must not produce a record";
    } catch (const TransportError& e) {
      EXPECT_EQ(e.fault().agent, 1);
      EXPECT_NE(std::string(e.what()).find("status 3"), std::string::npos)
          << e.what();
    }
    EXPECT_TRUE(transport.reaped(1));
    // The crash is queryable as a structured fault too.
    ASSERT_TRUE(transport.fault().has_value());
    EXPECT_EQ(transport.fault()->agent, 1);
  }
  // Fail-fast: hangup detection, not watchdog expiry, drove this.
  EXPECT_LT(ElapsedSeconds(start), 8.0);
  ExpectNoChildrenLeft();
}

TEST(ProcessLifecycle, ChildExceptionArrivesAsStructuredReport) {
  ProcessTransport::ChildMain script = [](AgentId self, Transport& wire,
                                          ControlChannel& ctl) -> int {
    if (self == 0) throw std::runtime_error("boom in agent zero");
    return IdleChild(self, wire, ctl);
  };
  ProcessTransport transport(2, script);
  try {
    (void)transport.ReadRecord(0);
    FAIL() << "a throwing child must not produce a clean record";
  } catch (const TransportError& e) {
    EXPECT_EQ(e.fault().agent, 0);
    EXPECT_NE(std::string(e.what()).find("boom in agent zero"),
              std::string::npos)
        << e.what();
  }
}

TEST(ProcessLifecycle, WatchdogBoundsASilentChild) {
  ProcessTransport::ChildMain script = [](AgentId self, Transport& wire,
                                          ControlChannel& ctl) -> int {
    if (self == 0) {
      // Deadlocked child stand-in: alive but silent.
      for (;;) usleep(100'000);
    }
    return IdleChild(self, wire, ctl);
  };
  const auto start = std::chrono::steady_clock::now();
  {
    ProcessTransport::Options opts;
    opts.watchdog_ms = 400;
    ProcessTransport transport(2, script, opts);
    EXPECT_THROW((void)transport.ReadRecord(0), TransportError);
  }
  // Watchdog (0.4s) + kill/reap, not a hang until some outer timeout.
  EXPECT_LT(ElapsedSeconds(start), 8.0);
  ExpectNoChildrenLeft();
}

TEST(ProcessLifecycle, NoZombiesAndStableFdTableAcrossCycles) {
  // Warm up any lazy allocations (gtest, stdio) before the baseline.
  {
    ProcessTransport transport(2, IdleChild);
    transport.Shutdown();
  }
  ExpectNoChildrenLeft();
  const int fds_before = CountOpenFds();
  for (int cycle = 0; cycle < 3; ++cycle) {
    ProcessTransport transport(2, IdleChild);
    transport.Shutdown();
  }
  EXPECT_EQ(CountOpenFds(), fds_before);
  ExpectNoChildrenLeft();

  // A failed run must clean the table just as thoroughly: crash one
  // child, let the destructor kill and reap the rest.
  for (int cycle = 0; cycle < 3; ++cycle) {
    ProcessTransport::ChildMain script = [](AgentId self, Transport& wire,
                                            ControlChannel& ctl) -> int {
      if (self == 1) _exit(9);
      return IdleChild(self, wire, ctl);
    };
    ProcessTransport transport(2, script);
    EXPECT_THROW((void)transport.ReadRecord(1), TransportError);
  }
  EXPECT_EQ(CountOpenFds(), fds_before);
  ExpectNoChildrenLeft();
}

}  // namespace
}  // namespace pem::net
