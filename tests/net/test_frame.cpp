#include "net/frame.h"

#include <gtest/gtest.h>

#include <cstring>
#include <random>

namespace pem::net {
namespace {

Message Make(AgentId from, AgentId to, uint32_t type, size_t payload_size,
             uint32_t seed) {
  Message m;
  m.from = from;
  m.to = to;
  m.type = type;
  std::mt19937 gen(seed);
  m.payload.resize(payload_size);
  for (uint8_t& b : m.payload) b = static_cast<uint8_t>(gen());
  return m;
}

TEST(FrameCodec, RoundTripAcrossPayloadSizes) {
  // Empty, tiny, typical-ciphertext, and >64 KiB payloads all survive
  // encode -> decode bit-exactly, and consume exactly FramedSize.
  const size_t sizes[] = {0,    1,     7,      32,     1000,
                          4096, 65536, 70'000, 200'000};
  uint32_t seed = 1;
  for (size_t size : sizes) {
    const Message m = Make(3, 9, 0x5045'0001, size, seed++);
    const std::vector<uint8_t> wire = EncodeFrame(m);
    ASSERT_EQ(wire.size(), FramedSize(m));
    const FrameDecodeResult r = DecodeFrame(wire);
    ASSERT_EQ(r.status, FrameDecodeStatus::kFrame) << size;
    EXPECT_EQ(r.consumed, wire.size());
    EXPECT_TRUE(r.frame == m) << size;
  }
}

TEST(FrameCodec, RoundTripsBroadcastAndEdgeIds) {
  for (AgentId to : {kBroadcast, AgentId{0}, AgentId{1 << 20}}) {
    const Message m = Make(0, to, ~uint32_t{0}, 5, 42);
    const FrameDecodeResult r = DecodeFrame(EncodeFrame(m));
    ASSERT_EQ(r.status, FrameDecodeStatus::kFrame);
    EXPECT_TRUE(r.frame == m);
  }
}

TEST(FrameCodec, EveryTruncationNeedsMoreNotGarbage) {
  const Message m = Make(1, 2, 77, 33, 9);
  const std::vector<uint8_t> wire = EncodeFrame(m);
  for (size_t cut = 0; cut < wire.size(); ++cut) {
    const FrameDecodeResult r =
        DecodeFrame(std::span<const uint8_t>(wire.data(), cut));
    EXPECT_EQ(r.status, FrameDecodeStatus::kNeedMore) << "cut at " << cut;
    EXPECT_EQ(r.consumed, 0u);
  }
}

TEST(FrameCodec, CorruptLengthRejected) {
  const Message m = Make(1, 2, 77, 33, 10);
  std::vector<uint8_t> wire = EncodeFrame(m);
  // Flip a length byte: the header checksum no longer matches.
  wire[0] ^= 0x01;
  EXPECT_EQ(DecodeFrame(wire).status, FrameDecodeStatus::kCorrupt);
}

TEST(FrameCodec, InsaneLengthWithForgedChecksumRejected) {
  // Even a header whose checksum is internally consistent is rejected
  // when the length prefix exceeds the codec bound.
  const uint32_t len = kMaxFramePayloadBytes + 1;
  uint8_t header[kFrameHeaderBytes];
  const uint32_t fields[5] = {len, 1, 2, 77,
                              FrameHeaderChecksum(len, 1, 2, 77)};
  std::memcpy(header, fields, sizeof header);
  EXPECT_EQ(DecodeFrame(std::span<const uint8_t>(header, sizeof header)).status,
            FrameDecodeStatus::kCorrupt);
}

TEST(FrameCodec, CorruptTypeOrSenderRejected) {
  const Message m = Make(4, 5, 123, 16, 11);
  for (size_t byte : {size_t{4}, size_t{8}, size_t{12}, size_t{16}}) {
    std::vector<uint8_t> wire = EncodeFrame(m);
    wire[byte] ^= 0x40;
    EXPECT_EQ(DecodeFrame(wire).status, FrameDecodeStatus::kCorrupt) << byte;
  }
}

TEST(FrameDecoderStream, ReassemblesChunkedFrameSequence) {
  // Several frames, fed in awkward chunk sizes, pop out in order.
  std::vector<Message> msgs;
  std::vector<uint8_t> stream;
  for (int i = 0; i < 5; ++i) {
    msgs.push_back(Make(i, i + 1, static_cast<uint32_t>(100 + i),
                        static_cast<size_t>(17 * i * i), 20 + i));
    AppendFrame(stream, msgs.back());
  }
  FrameDecoder dec;
  std::vector<Message> out;
  size_t pos = 0;
  size_t chunk = 1;
  while (pos < stream.size()) {
    const size_t n = std::min(chunk, stream.size() - pos);
    dec.Feed(std::span<const uint8_t>(stream.data() + pos, n));
    pos += n;
    chunk = chunk * 2 + 3;  // uneven chunking crosses every boundary
    while (auto m = dec.Next()) out.push_back(std::move(*m));
  }
  ASSERT_EQ(out.size(), msgs.size());
  for (size_t i = 0; i < msgs.size(); ++i) {
    EXPECT_TRUE(out[i] == msgs[i]) << i;
  }
  EXPECT_EQ(dec.buffered_bytes(), 0u);
}

TEST(FrameDecoderStream, OneBytePerFeedReassembles) {
  // The TCP worst case, distilled: the stream arrives one byte at a
  // time, so every header and payload boundary is split.  Next() must
  // stay kNeedMore-silent until each frame completes, then pop it
  // bit-exactly.
  std::vector<Message> msgs;
  std::vector<uint8_t> stream;
  for (int i = 0; i < 3; ++i) {
    msgs.push_back(Make(i, 2 - i, static_cast<uint32_t>(7 + i),
                        static_cast<size_t>(i * 41), 60 + i));
    AppendFrame(stream, msgs.back());
  }
  FrameDecoder dec;
  std::vector<Message> out;
  for (const uint8_t b : stream) {
    dec.Feed(std::span<const uint8_t>(&b, 1));
    while (auto m = dec.Next()) out.push_back(std::move(*m));
  }
  ASSERT_EQ(out.size(), msgs.size());
  for (size_t i = 0; i < msgs.size(); ++i) {
    EXPECT_TRUE(out[i] == msgs[i]) << i;
  }
  EXPECT_EQ(dec.buffered_bytes(), 0u);
}

TEST(FrameDecoderStream, ManyFramesInOneFeedAllPop) {
  // The TCP opposite extreme: one recv() pulls a whole burst of
  // coalesced frames; a single Feed must yield every one, in order.
  constexpr int kFrames = 40;
  std::vector<Message> msgs;
  std::vector<uint8_t> stream;
  for (int i = 0; i < kFrames; ++i) {
    msgs.push_back(Make(0, 1, static_cast<uint32_t>(i),
                        static_cast<size_t>(i % 9), 80 + i));
    AppendFrame(stream, msgs.back());
  }
  FrameDecoder dec;
  dec.Feed(stream);
  for (int i = 0; i < kFrames; ++i) {
    const std::optional<Message> m = dec.Next();
    ASSERT_TRUE(m.has_value()) << i;
    EXPECT_TRUE(*m == msgs[static_cast<size_t>(i)]) << i;
  }
  EXPECT_FALSE(dec.Next().has_value());
  EXPECT_EQ(dec.buffered_bytes(), 0u);
}

TEST(FrameDecoderStreamDeath, CorruptStreamAborts) {
  const Message m = Make(1, 2, 3, 8, 30);
  std::vector<uint8_t> wire = EncodeFrame(m);
  wire[12] ^= 0xFF;  // corrupt the type field
  FrameDecoder dec;
  dec.Feed(wire);
  EXPECT_DEATH((void)dec.Next(), "corrupt");
}

TEST(FrameCodec, OverheadConstantMatchesTransportAccounting) {
  // The codec is the source of truth for the 20-byte header the
  // transports charge per message.
  EXPECT_EQ(FramedSize(size_t{0}), kFrameHeaderBytes);
  EXPECT_EQ(FramedSize(Message{}), kFrameHeaderBytes);
}

}  // namespace
}  // namespace pem::net
