// ShmTransport: the co-located zero-copy deployment.
//
// Mirrors the TCP transport wall for the transport that replaces the
// kernel with shared memory:
//   * wire     — frames really cross the per-pair SPSC rings between
//     forked processes, accounted exactly once by the parent snooper,
//     in both verifying and trusting child modes, with the observer
//     transcript in exact per-sender send order (the seq-merge);
//   * pressure — rings far smaller than the traffic force constant
//     backpressure and wraparound, and a frame close to the ring's
//     size still crosses intact;
//   * fault    — a SIGKILLed child mid-window latches a structured
//     TransportFault naming the agent and signal within the watchdog,
//     survivors keep exchanging through their own rings, and teardown
//     leaves no zombies, a stable fd table, AND a stable mapping count
//     (the mmap region must not leak across cycles);
//   * ledger   — SyncLedger drains the accounting tap to the write
//     cursors, so the parent ledger equals the canonical per-copy
//     accounting even though no frame ever crossed the parent.
#include <gtest/gtest.h>

#include <dirent.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "net/frame.h"
#include "net/shm_transport.h"

namespace pem::net {
namespace {

int CountOpenFds() {
  DIR* dir = opendir("/proc/self/fd");
  EXPECT_NE(dir, nullptr);
  int count = 0;
  while (readdir(dir) != nullptr) ++count;
  closedir(dir);
  // Minus ".", "..", and the directory stream's own descriptor.
  return count - 3;
}

// ThreadSanitizer keeps per-thread shadow mappings alive after the
// thread exits (each snooper thread grows /proc/self/maps), so the
// mapping-count stability assertions only hold on non-TSan builds.
#if defined(__SANITIZE_THREAD__)
constexpr bool kTsanActive = true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
constexpr bool kTsanActive = true;
#else
constexpr bool kTsanActive = false;
#endif
#else
constexpr bool kTsanActive = false;
#endif

// Lines in /proc/self/maps: a leaked mmap region shows up here even
// though it costs no file descriptor.
int CountMappings() {
  std::FILE* f = std::fopen("/proc/self/maps", "r");
  EXPECT_NE(f, nullptr);
  int lines = 0;
  int c;
  while ((c = std::fgetc(f)) != EOF) {
    if (c == '\n') ++lines;
  }
  std::fclose(f);
  return lines;
}

void ExpectNoChildrenLeft() {
  int status = 0;
  errno = 0;
  const pid_t r = waitpid(-1, &status, WNOHANG);
  EXPECT_EQ(r, -1) << "an unreaped child (pid " << r << ") survived teardown";
  EXPECT_EQ(errno, ECHILD);
}

double ElapsedSeconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// Child that does nothing but answer the shutdown handshake.
int IdleChild(AgentId, Transport&, ControlChannel& ctl) {
  for (;;) {
    const ControlRecord cmd = ctl.Read(/*timeout_ms=*/60'000);
    if (cmd.tag == kCtlCmdShutdown) {
      ctl.Write(kCtlRepDone);
      return 0;
    }
  }
}

// --- wire -------------------------------------------------------------

AgentSupervisor::ChildMain RingScript() {
  return [](AgentId, Transport& wire, ControlChannel& ctl) -> int {
    const ControlRecord cmd = ctl.Read(/*timeout_ms=*/60'000);
    PEM_CHECK(cmd.tag == kCtlCmdRun, "test: expected a run command");
    const int n = wire.num_agents();
    std::vector<Endpoint> eps = wire.endpoints();
    for (AgentId a = 0; a < n; ++a) {
      eps[static_cast<size_t>(a)].Send((a + 1) % n, /*type=*/7,
                                       {uint8_t(10 + a), uint8_t(20 + a)});
    }
    for (AgentId a = 0; a < n; ++a) {
      const AgentId receiver = (a + 1) % n;
      std::optional<Message> m = eps[static_cast<size_t>(receiver)].Receive();
      PEM_CHECK(m.has_value(), "test: missing ring message");
      PEM_CHECK(m->from == a && m->type == 7, "test: wrong ring message");
      PEM_CHECK(m->payload == std::vector<uint8_t>(
                                  {uint8_t(10 + a), uint8_t(20 + a)}),
                "test: wrong ring payload");
    }
    ctl.Write(kCtlRepWindow);
    return IdleChild(0, wire, ctl);
  };
}

TEST(ShmTransport, RingExchangeCrossesSharedMemory) {
  constexpr int kAgents = 3;
  ShmTransport transport(kAgents, RingScript());
  std::vector<Message> seen;
  transport.SetObserver([&seen](const Message& m) { seen.push_back(m); });
  transport.CommandAll(kCtlCmdRun);
  for (AgentId a = 0; a < kAgents; ++a) {
    EXPECT_EQ(transport.ReadRecord(a).tag, kCtlRepWindow);
  }
  // The parent never sat between the peers: the ledger fills from the
  // snoop cursors, which may trail delivery until synced.
  transport.SyncLedger();
  transport.Shutdown();
  EXPECT_FALSE(transport.fault().has_value());

  EXPECT_EQ(transport.total_messages(), 3u);
  EXPECT_EQ(transport.total_bytes(), 3 * FramedSize(2));
  for (AgentId a = 0; a < kAgents; ++a) {
    const TrafficStats s = transport.stats(a);
    EXPECT_EQ(s.bytes_sent, FramedSize(2)) << a;
    EXPECT_EQ(s.bytes_received, FramedSize(2)) << a;
  }
  ASSERT_EQ(seen.size(), 3u);
  for (const Message& m : seen) {
    EXPECT_EQ(m.to, (m.from + 1) % kAgents);
    EXPECT_EQ(m.type, 7u);
  }
  ExpectNoChildrenLeft();
}

TEST(ShmTransport, TrustingModeAlsoPasses) {
  // verify_frames off: the wire frame itself (not the shadow script's
  // expectation) is what Receive returns; the same ring must still run
  // clean and account the same bytes.
  constexpr int kAgents = 3;
  ShmTransport::Options opts;
  opts.verify_frames = false;
  ShmTransport transport(kAgents, RingScript(), opts);
  transport.CommandAll(kCtlCmdRun);
  for (AgentId a = 0; a < kAgents; ++a) {
    EXPECT_EQ(transport.ReadRecord(a).tag, kCtlRepWindow);
  }
  transport.SyncLedger();
  transport.Shutdown();
  EXPECT_EQ(transport.total_messages(), 3u);
  EXPECT_EQ(transport.total_bytes(), 3 * FramedSize(2));
  ExpectNoChildrenLeft();
}

TEST(ShmTransport, MakeTransportRefusesShmKind) {
  EXPECT_DEATH((void)MakeTransport(TransportKind::kShm, 3),
               "child entry point");
}

TEST(ShmTransport, BroadcastFansOutPerRecipientCopies) {
  constexpr int kAgents = 4;
  AgentSupervisor::ChildMain script = [](AgentId, Transport& wire,
                                         ControlChannel& ctl) -> int {
    const ControlRecord cmd = ctl.Read(/*timeout_ms=*/60'000);
    PEM_CHECK(cmd.tag == kCtlCmdRun, "test: expected a run command");
    std::vector<Endpoint> eps = wire.endpoints();
    eps[0].Send(kBroadcast, /*type=*/9, {1, 2, 3});
    for (AgentId a = 1; a < wire.num_agents(); ++a) {
      std::optional<Message> m = eps[static_cast<size_t>(a)].Receive();
      PEM_CHECK(m.has_value() && m->from == 0 && m->to == a && m->type == 9,
                "test: broadcast copy wrong");
    }
    ctl.Write(kCtlRepWindow);
    return IdleChild(0, wire, ctl);
  };
  ShmTransport transport(kAgents, script);
  std::vector<Message> seen;
  transport.SetObserver([&seen](const Message& m) { seen.push_back(m); });
  transport.CommandAll(kCtlCmdRun);
  for (AgentId a = 0; a < kAgents; ++a) {
    EXPECT_EQ(transport.ReadRecord(a).tag, kCtlRepWindow);
  }
  transport.SyncLedger();
  transport.Shutdown();
  // One copy per recipient, accounted like a real broadcast over
  // unicast links — and observed in recipient order (the sender's seq
  // numbers the copies, the snooper merges them back).
  EXPECT_EQ(transport.total_messages(), static_cast<uint64_t>(kAgents - 1));
  EXPECT_EQ(transport.total_bytes(), (kAgents - 1) * FramedSize(3));
  EXPECT_EQ(transport.stats(0).bytes_sent, (kAgents - 1) * FramedSize(3));
  ASSERT_EQ(seen.size(), static_cast<size_t>(kAgents - 1));
  for (size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i].to, static_cast<AgentId>(i + 1));
  }
  ExpectNoChildrenLeft();
}

TEST(ShmTransport, ObserverSeesExactPerSenderSendOrder) {
  // A sender alternating recipients spreads its frames across several
  // rings; ring position alone cannot reconstruct its send order.  The
  // per-record sequence number must: the observed transcript for the
  // sender has to be EXACTLY its send order, interleaved recipients
  // and all.
  constexpr int kAgents = 3;
  constexpr int kRounds = 50;
  AgentSupervisor::ChildMain script = [](AgentId, Transport& wire,
                                         ControlChannel& ctl) -> int {
    const ControlRecord cmd = ctl.Read(/*timeout_ms=*/60'000);
    PEM_CHECK(cmd.tag == kCtlCmdRun, "test: expected a run command");
    std::vector<Endpoint> eps = wire.endpoints();
    for (int i = 0; i < kRounds; ++i) {
      // Recipient alternates 1, 2, 1, 2, ... while the type encodes
      // the global send index.
      eps[0].Send(1 + (i % 2), static_cast<uint32_t>(1000 + i),
                  {static_cast<uint8_t>(i)});
    }
    for (int i = 0; i < kRounds; ++i) {
      std::optional<Message> m =
          eps[static_cast<size_t>(1 + (i % 2))].Receive();
      PEM_CHECK(m.has_value() &&
                    m->type == static_cast<uint32_t>(1000 + i),
                "test: per-ring FIFO order broken");
    }
    ctl.Write(kCtlRepWindow);
    return IdleChild(0, wire, ctl);
  };
  ShmTransport transport(kAgents, script);
  std::vector<Message> seen;
  transport.SetObserver([&seen](const Message& m) { seen.push_back(m); });
  transport.CommandAll(kCtlCmdRun);
  for (AgentId a = 0; a < kAgents; ++a) {
    EXPECT_EQ(transport.ReadRecord(a).tag, kCtlRepWindow);
  }
  transport.SyncLedger();
  transport.Shutdown();
  ASSERT_EQ(seen.size(), static_cast<size_t>(kRounds));
  for (int i = 0; i < kRounds; ++i) {
    EXPECT_EQ(seen[static_cast<size_t>(i)].type,
              static_cast<uint32_t>(1000 + i))
        << "snooper transcript diverged from send order at " << i;
    EXPECT_EQ(seen[static_cast<size_t>(i)].to, 1 + (i % 2));
  }
  ExpectNoChildrenLeft();
}

// --- pressure ---------------------------------------------------------

TEST(ShmPressure, TinyRingsForceBackpressureAndWraparound) {
  // 4 KiB rings, ~200 KiB of traffic per directed pair: every ring
  // wraps dozens of times and the writers repeatedly park on the space
  // doorbell until reader AND snooper catch up.  Count and content are
  // fully verified child-side; the ledger must account every copy.
  constexpr int kAgents = 2;
  constexpr int kFrames = 400;
  constexpr size_t kPayload = 500;
  AgentSupervisor::ChildMain script = [](AgentId, Transport& wire,
                                         ControlChannel& ctl) -> int {
    const ControlRecord cmd = ctl.Read(/*timeout_ms=*/60'000);
    PEM_CHECK(cmd.tag == kCtlCmdRun, "test: expected a run command");
    std::vector<Endpoint> eps = wire.endpoints();
    for (int i = 0; i < kFrames; ++i) {
      std::vector<uint8_t> payload(kPayload);
      for (size_t j = 0; j < payload.size(); ++j) {
        payload[j] = static_cast<uint8_t>(j * 3 + i);
      }
      // 0 -> 1 then 1 -> 0, strictly alternating so both processes
      // must make progress for either to finish.
      eps[0].Send(1, static_cast<uint32_t>(i), payload);
      std::optional<Message> m = eps[1].Receive();
      PEM_CHECK(m.has_value() && m->type == static_cast<uint32_t>(i) &&
                    m->payload == payload,
                "test: frame corrupted under backpressure");
      eps[1].Send(0, static_cast<uint32_t>(i), payload);
      m = eps[0].Receive();
      PEM_CHECK(m.has_value() && m->payload == payload,
                "test: reply corrupted under backpressure");
    }
    ctl.Write(kCtlRepWindow);
    return IdleChild(0, wire, ctl);
  };
  ShmTransport::Options opts;
  opts.ring_bytes = 4096;
  ShmTransport transport(kAgents, script, opts);
  transport.CommandAll(kCtlCmdRun);
  for (AgentId a = 0; a < kAgents; ++a) {
    EXPECT_EQ(transport.ReadRecord(a).tag, kCtlRepWindow);
  }
  transport.SyncLedger();
  transport.Shutdown();
  EXPECT_EQ(transport.total_messages(), 2u * kFrames);
  EXPECT_EQ(transport.total_bytes(), 2u * kFrames * FramedSize(kPayload));
  ExpectNoChildrenLeft();
}

TEST(ShmPressure, FrameNearlyTheRingSizeCrossesIntact) {
  constexpr int kAgents = 2;
  constexpr size_t kRing = 64 * 1024;
  // Largest payload that fits: ring header (16) + frame header (20)
  // must fit alongside; leave a margin.
  constexpr size_t kPayload = kRing - 256;
  AgentSupervisor::ChildMain script = [](AgentId, Transport& wire,
                                         ControlChannel& ctl) -> int {
    const ControlRecord cmd = ctl.Read(/*timeout_ms=*/60'000);
    PEM_CHECK(cmd.tag == kCtlCmdRun, "test: expected a run command");
    std::vector<Endpoint> eps = wire.endpoints();
    std::vector<uint8_t> payload(kPayload);
    for (size_t j = 0; j < payload.size(); ++j) {
      payload[j] = static_cast<uint8_t>(j * 31 + 7);
    }
    eps[0].Send(1, /*type=*/77, payload);
    std::optional<Message> m = eps[1].Receive();
    PEM_CHECK(m.has_value() && m->payload == payload,
              "test: near-ring-size frame corrupted");
    ctl.Write(kCtlRepWindow);
    return IdleChild(0, wire, ctl);
  };
  ShmTransport::Options opts;
  opts.ring_bytes = kRing;
  ShmTransport transport(kAgents, script, opts);
  transport.CommandAll(kCtlCmdRun);
  for (AgentId a = 0; a < kAgents; ++a) {
    EXPECT_EQ(transport.ReadRecord(a).tag, kCtlRepWindow);
  }
  transport.SyncLedger();
  transport.Shutdown();
  EXPECT_EQ(transport.total_bytes(), FramedSize(kPayload));
  ExpectNoChildrenLeft();
}

// --- fault injection --------------------------------------------------

// Two-phase script: phase 0 is where the designated victim dies;
// phase 1 proves the survivors still exchange real frames afterwards.
AgentSupervisor::ChildMain TwoPhaseScript() {
  return [](AgentId self, Transport& wire, ControlChannel& ctl) -> int {
    std::vector<Endpoint> eps = wire.endpoints();
    for (;;) {
      const ControlRecord cmd = ctl.Read(/*timeout_ms=*/60'000);
      if (cmd.tag == kCtlCmdShutdown) {
        ctl.Write(kCtlRepDone);
        return 0;
      }
      PEM_CHECK(cmd.tag == kCtlCmdRun && cmd.payload.size() == 1,
                "test: bad command");
      if (cmd.payload[0] == 0) {
        if (self == 1) raise(SIGKILL);
        ctl.Write(kCtlRepWindow);
      } else {
        // Survivor phase: a real exchange through rings that do not
        // involve the dead agent.
        eps[0].Send(2, /*type=*/51, {4, 2});
        std::optional<Message> m = eps[2].Receive();
        PEM_CHECK(m.has_value() && m->from == 0 && m->type == 51,
                  "test: survivor exchange failed");
        ctl.Write(kCtlRepWindow);
      }
    }
  };
}

TEST(ShmFault, KilledChildMidWindowSurfacesWithinWatchdog) {
  constexpr int kAgents = 3;
  const auto start = std::chrono::steady_clock::now();
  {
    ShmTransport::Options opts;
    opts.watchdog_ms = 10'000;
    ShmTransport transport(kAgents, TwoPhaseScript(), opts);
    const uint8_t phase0[] = {0};
    transport.CommandAll(kCtlCmdRun, phase0);
    EXPECT_EQ(transport.ReadRecord(0).tag, kCtlRepWindow);
    EXPECT_EQ(transport.ReadRecord(2).tag, kCtlRepWindow);
    try {
      (void)transport.ReadRecord(1);
      FAIL() << "a SIGKILLed child must not produce a record";
    } catch (const TransportError& e) {
      EXPECT_EQ(e.fault().agent, 1);
      EXPECT_NE(std::string(e.what()).find("signal 9"), std::string::npos)
          << e.what();
    }
    ASSERT_TRUE(transport.fault().has_value());
    EXPECT_EQ(transport.fault()->agent, 1);
    EXPECT_TRUE(transport.reaped(1));

    // Survivors keep exchanging through shared memory after the fault
    // is latched — their rings never involved the victim.
    const uint8_t phase1[] = {1};
    transport.Command(0, kCtlCmdRun, phase1);
    transport.Command(2, kCtlCmdRun, phase1);
    EXPECT_EQ(transport.ReadRecord(0).tag, kCtlRepWindow);
    EXPECT_EQ(transport.ReadRecord(2).tag, kCtlRepWindow);
    transport.SyncLedger();
    EXPECT_EQ(transport.total_messages(), 1u);
    EXPECT_EQ(transport.total_bytes(), FramedSize(2));
  }
  // Hangup detection, not watchdog expiry (and certainly not a ctest
  // TIMEOUT), drove the whole sequence — destructor teardown included.
  EXPECT_LT(ElapsedSeconds(start), 8.0);
  ExpectNoChildrenLeft();
}

TEST(ShmFault, ChildReportedErrorNamesTheScriptDivergence) {
  // A child whose protocol throws reports a structured Error record
  // (not a crash): the parent surfaces it verbatim, naming the agent.
  constexpr int kAgents = 2;
  AgentSupervisor::ChildMain script = [](AgentId self, Transport& wire,
                                         ControlChannel& ctl) -> int {
    const ControlRecord cmd = ctl.Read(/*timeout_ms=*/60'000);
    PEM_CHECK(cmd.tag == kCtlCmdRun, "test: expected a run command");
    if (self == 1) {
      throw TransportError(TransportFault{
          1, ErrorCode::kProtocolViolation, "deliberate test failure"});
    }
    return IdleChild(self, wire, ctl);
  };
  ShmTransport transport(kAgents, script);
  transport.CommandAll(kCtlCmdRun);
  try {
    (void)transport.ReadRecord(1);
    FAIL() << "a throwing child must not produce a clean record";
  } catch (const TransportError& e) {
    EXPECT_EQ(e.fault().agent, 1);
    EXPECT_NE(std::string(e.what()).find("deliberate test failure"),
              std::string::npos)
        << e.what();
  }
}

TEST(ShmFault, SilentChildIsATimeoutNotADisconnect) {
  // Alive but slow must surface as ControlTimeout, exactly like the
  // other supervised backends.
  constexpr int kAgents = 1;
  AgentSupervisor::ChildMain script = [](AgentId self, Transport& wire,
                                         ControlChannel& ctl) -> int {
    const ControlRecord cmd = ctl.Read(/*timeout_ms=*/60'000);
    PEM_CHECK(cmd.tag == kCtlCmdRun, "test: expected a run command");
    // Never report; just idle until shutdown.
    return IdleChild(self, wire, ctl);
  };
  ShmTransport::Options opts;
  opts.watchdog_ms = 300;
  ShmTransport transport(kAgents, script, opts);
  transport.CommandAll(kCtlCmdRun);
  const auto start = std::chrono::steady_clock::now();
  try {
    (void)transport.ReadRecord(0);
    FAIL() << "a silent child must time out";
  } catch (const ControlTimeout& e) {
    EXPECT_NE(std::string(e.what()).find("watchdog timeout"),
              std::string::npos)
        << e.what();
  }
  EXPECT_LT(ElapsedSeconds(start), 8.0);
  EXPECT_FALSE(transport.fault().has_value())
      << "a timeout is not a disconnect";
  transport.Shutdown();
  ExpectNoChildrenLeft();
}

TEST(ShmFault, NoZombiesStableFdsAndStableMappingsAcrossCycles) {
  // Warm up any lazy allocations (gtest, stdio, malloc arenas) before
  // the baselines.
  {
    ShmTransport transport(2, IdleChild);
    transport.Shutdown();
  }
  ExpectNoChildrenLeft();
  const int fds_before = CountOpenFds();
  const int maps_before = CountMappings();
  for (int cycle = 0; cycle < 3; ++cycle) {
    ShmTransport transport(2, IdleChild);
    transport.Shutdown();
  }
  EXPECT_EQ(CountOpenFds(), fds_before);
  if (!kTsanActive) {
    EXPECT_EQ(CountMappings(), maps_before) << "the shm region leaked";
  }
  ExpectNoChildrenLeft();

  // A failed run must clean up just as thoroughly: crash one child,
  // let the destructor kill and reap the rest and unmap the region.
  for (int cycle = 0; cycle < 3; ++cycle) {
    AgentSupervisor::ChildMain script = [](AgentId self, Transport& wire,
                                           ControlChannel& ctl) -> int {
      if (self == 1) _exit(9);
      return IdleChild(self, wire, ctl);
    };
    ShmTransport transport(2, script);
    EXPECT_THROW((void)transport.ReadRecord(1), TransportError);
  }
  EXPECT_EQ(CountOpenFds(), fds_before);
  if (!kTsanActive) {
    EXPECT_EQ(CountMappings(), maps_before)
        << "a failed run leaked the region";
  }
  ExpectNoChildrenLeft();
}

// --- options validation -----------------------------------------------

TEST(ShmOptions, NonPowerOfTwoRingSizeDies) {
  ShmTransport::Options opts;
  opts.ring_bytes = 5000;
  EXPECT_DEATH((void)ShmTransport(1, IdleChild, opts), "power of two");
}

}  // namespace
}  // namespace pem::net
