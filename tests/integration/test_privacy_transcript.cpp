// Privacy-oriented transcript checks.
//
// The simulation-based MPC proofs live in the paper (§V-A); these
// tests verify the mechanical prerequisites those proofs rely on:
//   * every message type on the wire is in the protocol's declared set;
//   * no agent's plaintext private data (net energy, nonce, k_i,
//     supply term) ever appears byte-for-byte in any payload;
//   * homomorphic payloads are ciphertext-sized, not plaintext-sized;
//   * protocol randomness refreshes the transcript between windows
//     while leaving the public outcome unchanged.
#include <gtest/gtest.h>

#include "net/bus.h"

#include <cstring>
#include <set>
#include <vector>

#include "crypto/secure_compare.h"
#include "market/clearing.h"
#include "protocol/coin_flip.h"
#include "protocol/market_eval.h"
#include "protocol/pem_protocol.h"

namespace pem::protocol {
namespace {

market::AgentWindowInput Agent(double g, double l, double k = 1.0) {
  market::AgentWindowInput in;
  in.params.preference_k = k;
  in.params.battery_epsilon = 0.9;
  in.state.generation_kwh = g;
  in.state.load_kwh = l;
  return in;
}

struct RecordedRun {
  std::vector<net::Message> messages;
  PemWindowResult result;
  std::vector<int64_t> private_ints;  // per-party net_raw, nonce, k, supply
};

RecordedRun RunRecorded(const std::vector<market::AgentWindowInput>& in,
                        uint64_t seed, bool collusion_resistant = false) {
  RecordedRun run;
  net::MessageBus bus(static_cast<int>(in.size()));
  std::vector<net::Endpoint> eps = bus.endpoints();
  bus.SetObserver([&run](const net::Message& m) { run.messages.push_back(m); });
  crypto::DeterministicRng rng(seed);
  PemConfig cfg;
  cfg.key_bits = 128;
  cfg.collusion_resistant_selection = collusion_resistant;
  std::vector<Party> parties;
  for (size_t i = 0; i < in.size(); ++i) {
    parties.emplace_back(static_cast<net::AgentId>(i), in[i].params);
    parties.back().BeginWindow(in[i].state, cfg.nonce_bound, rng);
  }
  for (const Party& p : parties) {
    run.private_ints.push_back(p.net_raw());
    run.private_ints.push_back(p.nonce());
    run.private_ints.push_back(p.PreferenceRaw());
    run.private_ints.push_back(p.SupplyTermRaw());
  }
  ProtocolContext ctx{eps, rng, cfg};
  run.result = RunPemWindow(ctx, parties);
  return run;
}

bool PayloadContains(const std::vector<uint8_t>& payload, int64_t value) {
  uint8_t needle[8];
  std::memcpy(needle, &value, 8);
  if (payload.size() < 8) return false;
  for (size_t i = 0; i + 8 <= payload.size(); ++i) {
    if (std::memcmp(payload.data() + i, needle, 8) == 0) return true;
  }
  return false;
}

const std::vector<market::AgentWindowInput> kMarket = {
    Agent(1.7, 0.3, 0.83), Agent(0.9, 0.2, 1.21), Agent(0.0, 1.4),
    Agent(0.1, 0.8),       Agent(0.0, 0.6),
};

TEST(PrivacyTranscript, OnlyDeclaredMessageTypesAppear) {
  const RecordedRun run = RunRecorded(kMarket, 1);
  const std::set<uint32_t> allowed = {
      kMsgRingHop,        kMsgRingFinal,     kMsgMarketCase,
      kMsgPrice,          kMsgEncTotal,      kMsgRatioCipher,
      kMsgRatioBroadcast, kMsgEnergyTransfer, kMsgPayment,
      kMsgPublicKey,      crypto::kMsgGcTablesAndOt1,
      crypto::kMsgGcOtResponses, crypto::kMsgGcOtFinal,
      crypto::kMsgGcResult};
  for (const net::Message& m : run.messages) {
    EXPECT_TRUE(allowed.contains(m.type))
        << "undeclared message type 0x" << std::hex << m.type;
  }
  EXPECT_FALSE(run.messages.empty());
}

TEST(PrivacyTranscript, PlaintextPrivateValuesNeverOnTheWire) {
  const RecordedRun run = RunRecorded(kMarket, 2);
  for (const net::Message& m : run.messages) {
    for (int64_t secret : run.private_ints) {
      if (secret == 0) continue;  // zero bytes appear incidentally
      EXPECT_FALSE(PayloadContains(m.payload, secret))
          << "secret " << secret << " leaked in message type 0x" << std::hex
          << m.type;
    }
  }
}

TEST(PrivacyTranscript, HomomorphicPayloadsAreCiphertextSized) {
  const RecordedRun run = RunRecorded(kMarket, 3);
  // 128-bit key -> 32-byte ciphertexts (+4-byte length prefix).
  const size_t ct_frame = 32 + 4;
  for (const net::Message& m : run.messages) {
    if (m.type == kMsgRingHop || m.type == kMsgRingFinal ||
        m.type == kMsgEncTotal) {
      EXPECT_EQ(m.payload.size(), ct_frame) << std::hex << m.type;
    }
    if (m.type == kMsgRatioCipher) {
      EXPECT_EQ(m.payload.size(), 4 + 8 + ct_frame);
    }
  }
}

TEST(PrivacyTranscript, TranscriptRefreshesAcrossRandomness) {
  const RecordedRun a = RunRecorded(kMarket, 10);
  const RecordedRun b = RunRecorded(kMarket, 11);
  // Public outcome identical...
  EXPECT_EQ(a.result.type, b.result.type);
  EXPECT_NEAR(a.result.price, b.result.price, 1e-9);
  EXPECT_NEAR(a.result.buyer_total_cost, b.result.buyer_total_cost, 1e-6);
  // ...but the encrypted transcript differs (fresh nonces + randomness).
  bool any_hop_differs = false;
  for (const net::Message& ma : a.messages) {
    if (ma.type != kMsgRingHop) continue;
    bool matched = false;
    for (const net::Message& mb : b.messages) {
      if (mb.type == kMsgRingHop && mb.payload == ma.payload) matched = true;
    }
    if (!matched) any_hop_differs = true;
  }
  EXPECT_TRUE(any_hop_differs);
}

TEST(PrivacyTranscript, PublicOutputsAreTheOnlyPlaintext) {
  const RecordedRun run = RunRecorded(kMarket, 4);
  // kMsgPrice carries exactly one double — the public price.
  for (const net::Message& m : run.messages) {
    if (m.type == kMsgPrice) {
      ASSERT_EQ(m.payload.size(), 8u);
      double p;
      std::memcpy(&p, m.payload.data(), 8);
      EXPECT_DOUBLE_EQ(p, run.result.price);
    }
    if (m.type == kMsgMarketCase) {
      ASSERT_EQ(m.payload.size(), 1u);
    }
  }
}

TEST(PrivacyTranscript, RatiosRevealOnlyQuotients) {
  // Lemma 4: the seller coalition learns |sn_j| / E_b, never |sn_j| or
  // E_b.  Check the broadcast ratios match the public quotients and are
  // strictly inside (0, 1).
  const RecordedRun run = RunRecorded(kMarket, 5);
  ASSERT_EQ(run.result.type, market::MarketType::kGeneral);
  for (const net::Message& m : run.messages) {
    if (m.type != kMsgRatioBroadcast) continue;
    net::ByteReader r(m.payload);
    const uint32_t count = r.U32();
    for (uint32_t i = 0; i < count; ++i) {
      (void)r.U32();
      const double ratio = r.F64();
      EXPECT_GT(ratio, 0.0);
      EXPECT_LT(ratio, 1.0);
    }
  }
}

TEST(PrivacyTranscript, CollusionResistantModeLeaksNothingExtra) {
  const RecordedRun run = RunRecorded(kMarket, 7, /*collusion_resistant=*/true);
  // Coin-flip commit/reveal messages appear...
  bool saw_commit = false, saw_reveal = false;
  for (const net::Message& m : run.messages) {
    saw_commit |= (m.type == kMsgCoinCommit);
    saw_reveal |= (m.type == kMsgCoinReveal);
  }
  EXPECT_TRUE(saw_commit);
  EXPECT_TRUE(saw_reveal);
  // ...but private values still never do.
  for (const net::Message& m : run.messages) {
    for (int64_t secret : run.private_ints) {
      if (secret == 0) continue;
      EXPECT_FALSE(PayloadContains(m.payload, secret))
          << "secret leaked in message type 0x" << std::hex << m.type;
    }
  }
}

TEST(PrivacyTranscript, NoMarketWindowsSendNothing) {
  const std::vector<market::AgentWindowInput> buyers_only = {Agent(0.0, 1.0),
                                                             Agent(0.0, 2.0)};
  const RecordedRun run = RunRecorded(buyers_only, 6);
  EXPECT_TRUE(run.messages.empty());
}

}  // namespace
}  // namespace pem::protocol
