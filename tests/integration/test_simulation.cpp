#include "core/simulation.h"

#include <gtest/gtest.h>

namespace pem::core {
namespace {

grid::TraceConfig SmallTrace(int homes = 16, int windows = 24) {
  grid::TraceConfig cfg;
  cfg.num_homes = homes;
  cfg.windows_per_day = windows;
  cfg.seed = 13;
  return cfg;
}

SimulationConfig FastCrypto() {
  SimulationConfig cfg;
  cfg.engine = Engine::kCrypto;
  cfg.pem.key_bits = 128;
  return cfg;
}

TEST(Simulation, PlaintextRunsEveryWindow) {
  const grid::CommunityTrace trace = grid::GenerateCommunityTrace(SmallTrace());
  SimulationConfig cfg;
  const SimulationResult r = RunSimulation(trace, cfg);
  ASSERT_EQ(r.windows.size(), 24u);
  for (size_t w = 0; w < r.windows.size(); ++w) {
    EXPECT_EQ(r.windows[w].window, static_cast<int>(w));
  }
}

TEST(Simulation, StrideSamplesWindows) {
  const grid::CommunityTrace trace = grid::GenerateCommunityTrace(SmallTrace());
  SimulationConfig cfg;
  cfg.window_stride = 6;
  const SimulationResult r = RunSimulation(trace, cfg);
  ASSERT_EQ(r.windows.size(), 4u);
  EXPECT_EQ(r.windows[1].window, 6);
}

TEST(Simulation, RecordsStatesWhenAsked) {
  const grid::CommunityTrace trace = grid::GenerateCommunityTrace(SmallTrace());
  SimulationConfig cfg;
  cfg.record_states = true;
  const SimulationResult r = RunSimulation(trace, cfg);
  ASSERT_EQ(r.resolved_states.size(), r.windows.size());
  EXPECT_EQ(r.resolved_states[0].size(), 16u);
}

TEST(Simulation, CoalitionSizesAreConsistent) {
  const grid::CommunityTrace trace = grid::GenerateCommunityTrace(SmallTrace());
  SimulationConfig cfg;
  const SimulationResult r = RunSimulation(trace, cfg);
  for (const WindowRecord& rec : r.windows) {
    EXPECT_LE(rec.num_sellers + rec.num_buyers, 16);
    if (rec.type != market::MarketType::kNoMarket) {
      EXPECT_GT(rec.num_sellers, 0);
      EXPECT_GT(rec.num_buyers, 0);
    }
  }
}

TEST(Simulation, PemNeverCostsBuyersMoreThanBaseline) {
  const grid::CommunityTrace trace =
      grid::GenerateCommunityTrace(SmallTrace(30, 48));
  SimulationConfig cfg;
  const SimulationResult r = RunSimulation(trace, cfg);
  for (const WindowRecord& rec : r.windows) {
    EXPECT_LE(rec.buyer_cost_pem, rec.buyer_cost_baseline + 1e-9)
        << "window " << rec.window;
    EXPECT_LE(rec.grid_interaction_pem, rec.grid_interaction_baseline + 1e-9)
        << "window " << rec.window;
  }
}

TEST(Simulation, PricesRespectMarketBand) {
  const grid::CommunityTrace trace =
      grid::GenerateCommunityTrace(SmallTrace(30, 48));
  SimulationConfig cfg;
  const SimulationResult r = RunSimulation(trace, cfg);
  const market::MarketParams& mp = cfg.pem.market;
  for (const WindowRecord& rec : r.windows) {
    if (rec.type == market::MarketType::kNoMarket) {
      EXPECT_DOUBLE_EQ(rec.price, mp.retail_price);
    } else {
      EXPECT_GE(rec.price, mp.price_floor - 1e-12);
      EXPECT_LE(rec.price, mp.price_ceiling + 1e-12);
    }
  }
}

TEST(Simulation, CryptoEngineMatchesPlaintextEngine) {
  const grid::CommunityTrace trace =
      grid::GenerateCommunityTrace(SmallTrace(10, 6));
  SimulationConfig plain_cfg;
  const SimulationResult plain = RunSimulation(trace, plain_cfg);
  const SimulationResult crypto = RunSimulation(trace, FastCrypto());
  ASSERT_EQ(plain.windows.size(), crypto.windows.size());
  for (size_t w = 0; w < plain.windows.size(); ++w) {
    EXPECT_EQ(crypto.windows[w].type, plain.windows[w].type) << w;
    EXPECT_NEAR(crypto.windows[w].price, plain.windows[w].price, 1e-5) << w;
    EXPECT_NEAR(crypto.windows[w].buyer_cost_pem,
                plain.windows[w].buyer_cost_pem, 1e-4)
        << w;
    EXPECT_NEAR(crypto.windows[w].grid_interaction_pem,
                plain.windows[w].grid_interaction_pem, 1e-4)
        << w;
    EXPECT_EQ(crypto.windows[w].num_sellers, plain.windows[w].num_sellers);
    EXPECT_EQ(crypto.windows[w].num_buyers, plain.windows[w].num_buyers);
  }
}

TEST(Simulation, CryptoEngineAccumulatesRuntimeAndBandwidth) {
  const grid::CommunityTrace trace =
      grid::GenerateCommunityTrace(SmallTrace(8, 4));
  const SimulationResult r = RunSimulation(trace, FastCrypto());
  EXPECT_GT(r.total_runtime_seconds, 0.0);
  EXPECT_GT(r.total_bus_bytes, 0u);
  EXPECT_GT(r.AverageRuntimeSeconds(), 0.0);
  EXPECT_GT(r.AverageBusBytes(), 0.0);
}

TEST(Simulation, DeterministicForSeed) {
  const grid::CommunityTrace trace =
      grid::GenerateCommunityTrace(SmallTrace(8, 4));
  SimulationConfig cfg = FastCrypto();
  cfg.crypto_seed = 77;
  const SimulationResult a = RunSimulation(trace, cfg);
  const SimulationResult b = RunSimulation(trace, cfg);
  ASSERT_EQ(a.windows.size(), b.windows.size());
  for (size_t w = 0; w < a.windows.size(); ++w) {
    EXPECT_EQ(a.windows[w].bus_bytes, b.windows[w].bus_bytes);
    EXPECT_DOUBLE_EQ(a.windows[w].price, b.windows[w].price);
  }
}

TEST(Simulation, PrecomputePoolsDoNotChangeOutcomes) {
  const grid::CommunityTrace trace =
      grid::GenerateCommunityTrace(SmallTrace(10, 6));
  SimulationConfig plain = FastCrypto();
  SimulationConfig pooled = FastCrypto();
  pooled.pem.precompute_encryption = true;
  pooled.pem.encryption_pool_target = 64;
  const SimulationResult a = RunSimulation(trace, plain);
  const SimulationResult b = RunSimulation(trace, pooled);
  ASSERT_EQ(a.windows.size(), b.windows.size());
  for (size_t w = 0; w < a.windows.size(); ++w) {
    EXPECT_EQ(b.windows[w].type, a.windows[w].type) << w;
    EXPECT_NEAR(b.windows[w].price, a.windows[w].price, 1e-5) << w;
    EXPECT_NEAR(b.windows[w].buyer_cost_pem, a.windows[w].buyer_cost_pem,
                1e-4)
        << w;
    // The wire format is identical too: pooled encryption changes who
    // computed r^n, not what goes on the bus.
    EXPECT_EQ(b.windows[w].bus_bytes, a.windows[w].bus_bytes) << w;
  }
}

TEST(Simulation, ParallelEncryptionDoesNotChangeOutcomes) {
  const grid::CommunityTrace trace =
      grid::GenerateCommunityTrace(SmallTrace(12, 5));
  SimulationConfig serial = FastCrypto();
  SimulationConfig parallel = FastCrypto();
  parallel.policy = net::ExecutionPolicy::Parallel(4);
  const SimulationResult a = RunSimulation(trace, serial);
  const SimulationResult b = RunSimulation(trace, parallel);
  ASSERT_EQ(a.windows.size(), b.windows.size());
  for (size_t w = 0; w < a.windows.size(); ++w) {
    EXPECT_EQ(b.windows[w].type, a.windows[w].type) << w;
    EXPECT_NEAR(b.windows[w].price, a.windows[w].price, 1e-5) << w;
    EXPECT_NEAR(b.windows[w].buyer_cost_pem, a.windows[w].buyer_cost_pem,
                1e-4)
        << w;
    // Same number of bytes: parallelism changes who computes, not what
    // is sent.
    EXPECT_EQ(b.windows[w].bus_bytes, a.windows[w].bus_bytes) << w;
  }
}

TEST(Simulation, ParallelModeIsDeterministicPerSeed) {
  const grid::CommunityTrace trace =
      grid::GenerateCommunityTrace(SmallTrace(8, 3));
  SimulationConfig cfg = FastCrypto();
  cfg.policy = net::ExecutionPolicy::Parallel(4);
  cfg.crypto_seed = 123;
  const SimulationResult a = RunSimulation(trace, cfg);
  const SimulationResult b = RunSimulation(trace, cfg);
  ASSERT_EQ(a.windows.size(), b.windows.size());
  for (size_t w = 0; w < a.windows.size(); ++w) {
    EXPECT_DOUBLE_EQ(a.windows[w].price, b.windows[w].price);
    EXPECT_EQ(a.windows[w].bus_bytes, b.windows[w].bus_bytes);
  }
}

TEST(Simulation, WindowOffsetSkipsEarlyWindows) {
  const grid::CommunityTrace trace = grid::GenerateCommunityTrace(SmallTrace());
  SimulationConfig cfg;
  cfg.window_offset = 10;
  cfg.window_stride = 5;
  const SimulationResult r = RunSimulation(trace, cfg);
  ASSERT_FALSE(r.windows.empty());
  EXPECT_EQ(r.windows[0].window, 10);
  EXPECT_EQ(r.windows[1].window, 15);
}

TEST(Simulation, TransportOptionsResolveFromPolicy) {
  // The folded knobs: one ExecutionPolicy object fully specifies the
  // backend.
  SimulationConfig cfg;
  cfg.policy = net::ExecutionPolicy::Tcp();
  cfg.policy.transport.watchdog_ms = 5'000;
  cfg.policy.transport.tcp_host = "10.0.0.1";
  cfg.policy.transport.tcp_port = 7777;
  cfg.policy.transport.tcp_verify_frames = true;
  cfg.policy.transport.shm_ring_bytes = size_t{1} << 16;
  const net::TransportOptions opts = ResolveTransportOptions(cfg);
  EXPECT_EQ(opts.watchdog_ms, 5'000);
  EXPECT_EQ(opts.tcp_host, "10.0.0.1");
  EXPECT_EQ(opts.tcp_port, 7777);
  EXPECT_TRUE(opts.tcp_verify_frames);
  EXPECT_EQ(opts.shm_ring_bytes, size_t{1} << 16);
}

TEST(Simulation, DeprecatedTransportAliasesStillWin) {
  // One-release compatibility: a legacy SimulationConfig field that was
  // explicitly assigned overrides policy.transport, so pre-fold callers
  // behave unchanged.
  SimulationConfig cfg;
  cfg.policy = net::ExecutionPolicy::Tcp();
  cfg.policy.transport.tcp_port = 7777;
  cfg.tcp_port = 8888;  // explicitly set alias wins
  cfg.policy.transport.tcp_host = "192.168.1.2";  // no alias: policy rules
  cfg.process_watchdog_ms = 9'000;
  const net::TransportOptions opts = ResolveTransportOptions(cfg);
  EXPECT_EQ(opts.tcp_port, 8888);
  EXPECT_EQ(opts.tcp_host, "192.168.1.2");
  EXPECT_EQ(opts.watchdog_ms, 9'000);
  // Untouched knobs keep the TransportOptions defaults.
  EXPECT_FALSE(opts.tcp_verify_frames);
  EXPECT_EQ(opts.shm_ring_bytes, size_t{1} << 20);
}

TEST(Simulation, AliasSetBackToHistoricalDefaultStillWins) {
  // The precedence bug this release fixes: precedence used to be
  // default-INEQUALITY based, so an alias explicitly set BACK to its
  // historical default (tcp_port = 0 restoring auto-assign, the
  // watchdog restored to 120 s) was silently ignored and the
  // policy.transport value leaked through.  The optionals latch "was
  // set", so the assignment wins.
  SimulationConfig cfg;
  cfg.policy = net::ExecutionPolicy::Tcp();
  cfg.policy.transport.tcp_port = 7777;
  cfg.policy.transport.watchdog_ms = 5'000;
  cfg.policy.transport.tcp_host = "192.168.1.2";
  cfg.tcp_port = 0;                  // back to auto-assign — must win
  cfg.process_watchdog_ms = 120'000; // back to the historical default
  cfg.tcp_host = "127.0.0.1";        // back to loopback
  const net::TransportOptions opts = ResolveTransportOptions(cfg);
  EXPECT_EQ(opts.tcp_port, 0);
  EXPECT_EQ(opts.watchdog_ms, 120'000);
  EXPECT_EQ(opts.tcp_host, "127.0.0.1");
}

TEST(Simulation, UntouchedAliasesNeverOverridePolicy) {
  // The flip side: aliases that were never assigned must leave every
  // policy.transport knob alone — even the knobs whose policy values
  // happen to equal the aliases' historical defaults.
  SimulationConfig cfg;
  cfg.policy = net::ExecutionPolicy::Shm();
  cfg.policy.transport.watchdog_ms = 7'500;
  cfg.policy.transport.tcp_host = "10.1.2.3";
  cfg.policy.transport.tcp_port = 4242;
  cfg.policy.transport.tcp_verify_frames = true;
  cfg.policy.transport.shm_ring_bytes = size_t{1} << 18;
  EXPECT_FALSE(cfg.process_watchdog_ms.has_value());
  const net::TransportOptions opts = ResolveTransportOptions(cfg);
  EXPECT_EQ(opts.watchdog_ms, 7'500);
  EXPECT_EQ(opts.tcp_host, "10.1.2.3");
  EXPECT_EQ(opts.tcp_port, 4242);
  EXPECT_TRUE(opts.tcp_verify_frames);
  EXPECT_EQ(opts.shm_ring_bytes, size_t{1} << 18);
}

TEST(SimulationDeath, BadStrideAborts) {
  const grid::CommunityTrace trace =
      grid::GenerateCommunityTrace(SmallTrace(4, 2));
  SimulationConfig cfg;
  cfg.window_stride = 0;
  EXPECT_DEATH((void)RunSimulation(trace, cfg), "stride");
}

}  // namespace
}  // namespace pem::core
