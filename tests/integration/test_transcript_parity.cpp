// Transport-backend / engine parity.
//
// The tentpole claim of the transport redesign: the execution policy
// (transport backend + compute workers) changes WHO computes each
// ciphertext, WHEN, and over WHICH medium — in-process FIFO queues,
// a mutex-guarded bus, framed Unix-domain socketpairs, one forked OS
// process per agent, one process per agent over loopback TCP, or one
// process per agent over zero-copy shared-memory rings — but never
// WHAT goes on the wire.  With the same seed, every backend must
// produce identical prices, trades, bus bytes, PER-AGENT byte totals,
// and an identical transcript (the serial/concurrent/socket/process/
// tcp/shm SIX-way matrix below).
//
// Transcript ordering caveat for the forked backends (process, tcp,
// shm): their agents really run concurrently, so the parent observes
// frames in physical arrival order — only per-sender FIFO order is
// defined, exactly as on a real network.  Those rows therefore compare
// per-sender message sequences (plus total counts); for the socketpair
// process backend AND the shm backend the message-level byte equality
// is additionally enforced INSIDE every child, which byte-matches each
// frame it consumes against the deterministic schedule
// (net/process_transport.h, net/shm_transport.h), while the tcp
// backend runs trusting mode (its parent-side ledger cross-check still
// runs per window).  The shm row is special in one more way: no frame
// ever crosses the parent, so its ledger and observer transcript come
// from the rings' snoop cursors — this matrix is what proves that tap
// misses nothing.
#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "core/simulation.h"
#include "net/process_transport.h"
#include "net/shm_transport.h"
#include "net/tcp_transport.h"
#include "net/transport.h"
#include "protocol/agent_driver.h"
#include "protocol/pem_protocol.h"

namespace pem {
namespace {

// --- window-level parity (RunPemWindow) -------------------------------

struct WindowRun {
  std::vector<net::Message> messages;
  protocol::PemWindowResult result;
  uint64_t transport_total_bytes = 0;
  // Per-agent counters for the measured window: Table-I's "bandwidth
  // per home" must agree across every backend, not just the total.
  std::vector<net::TrafficStats> per_agent;
  // Pooled r^n factors consumed by the measured window (pooled runs).
  size_t factors_consumed = 0;
};

market::AgentWindowInput Agent(double g, double l, double k = 1.0) {
  market::AgentWindowInput in;
  in.params.preference_k = k;
  in.params.battery_epsilon = 0.9;
  in.state.generation_kwh = g;
  in.state.load_kwh = l;
  return in;
}

const std::vector<market::AgentWindowInput> kMarket = {
    Agent(1.7, 0.3, 0.83), Agent(0.9, 0.2, 1.21), Agent(0.0, 1.4),
    Agent(0.1, 0.8),       Agent(0.0, 0.6),       Agent(2.2, 0.4, 1.05),
};

WindowRun RunWindow(const net::ExecutionPolicy& policy, uint64_t seed,
                    bool pooled = false, bool crt = true) {
  WindowRun run;
  std::unique_ptr<net::Transport> bus =
      net::MakeTransport(policy.transport_kind,
                         static_cast<int>(kMarket.size()));
  std::vector<net::Endpoint> eps = bus->endpoints();
  bus->SetObserver(
      [&run](const net::Message& m) { run.messages.push_back(m); });
  crypto::DeterministicRng rng(seed);
  protocol::PemConfig cfg;
  cfg.key_bits = 128;
  cfg.precompute_encryption = pooled;
  cfg.crt_encryption = crt;
  crypto::PaillierPoolRegistry pools;
  std::vector<protocol::Party> parties;
  for (size_t i = 0; i < kMarket.size(); ++i) {
    parties.emplace_back(static_cast<net::AgentId>(i), kMarket[i].params);
    parties.back().BeginWindow(kMarket[i].state, cfg.nonce_bound, rng);
  }
  protocol::ProtocolContext ctx{eps, rng, cfg, pooled ? &pools : nullptr,
                                policy};
  if (pooled) {
    // Keys (and thus pools, keyed by public key) only come into
    // existence inside a window, so a fresh registry would leave
    // TakeFactor() dry and the run would silently take the
    // fresh-randomness branch.  Mirror RunSimulation: a warm-up window
    // registers the pools, the between-window RefillAll stocks them,
    // and only the second window is measured.
    protocol::RunPemWindow(ctx, parties);
    if (crt) {
      // Mirror RunSimulation's owner registration: refills for keys
      // whose owner is known take the CRT fast path.
      for (const protocol::Party& p : parties) {
        if (p.HasKeys()) pools.AttachOwner(p.private_key());
      }
    }
    pools.RefillAll(/*target=*/64, rng, policy);
    for (size_t i = 0; i < kMarket.size(); ++i) {
      parties[i].BeginWindow(kMarket[i].state, cfg.nonce_bound, rng);
    }
    run.messages.clear();
  }
  const auto count_factors = [&]() {
    size_t total = 0;
    if (!pooled) return total;
    for (const protocol::Party& p : parties) {
      // Only the window's elected aggregators ever generate keys.
      if (p.HasKeys()) total += pools.PoolFor(p.public_key()).available();
    }
    return total;
  };
  const size_t factors_before = count_factors();
  bus->ResetStats();
  run.result = protocol::RunPemWindow(ctx, parties);
  run.factors_consumed = factors_before - count_factors();
  run.transport_total_bytes = bus->total_bytes();
  for (size_t i = 0; i < kMarket.size(); ++i) {
    run.per_agent.push_back(bus->stats(static_cast<net::AgentId>(i)));
  }
  return run;
}

// Byte-identical transcript in the single total order every in-process
// backend defines.
void ExpectSameTranscript(const std::vector<net::Message>& serial,
                          const std::vector<net::Message>& other) {
  ASSERT_EQ(other.size(), serial.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_TRUE(other[i] == serial[i])
        << "transcript diverges at message " << i << " (serial type 0x"
        << std::hex << serial[i].type << ", other type 0x" << other[i].type
        << ")";
  }
}

// Byte-identical transcript up to cross-sender interleaving: equal
// totals and, per sender, the identical message sequence — the
// strongest order a set of genuinely concurrent processes defines.
void ExpectSameTranscriptPerSender(const std::vector<net::Message>& serial,
                                   const std::vector<net::Message>& other) {
  ASSERT_EQ(other.size(), serial.size());
  std::map<net::AgentId, std::vector<const net::Message*>> a, b;
  for (const net::Message& m : serial) a[m.from].push_back(&m);
  for (const net::Message& m : other) b[m.from].push_back(&m);
  ASSERT_EQ(b.size(), a.size());
  for (const auto& [sender, seq] : a) {
    const auto it = b.find(sender);
    ASSERT_NE(it, b.end()) << "sender " << sender << " missing";
    ASSERT_EQ(it->second.size(), seq.size()) << "sender " << sender;
    for (size_t i = 0; i < seq.size(); ++i) {
      EXPECT_TRUE(*it->second[i] == *seq[i])
          << "sender " << sender << " diverges at its message " << i;
    }
  }
}

void ExpectWindowParity(const WindowRun& serial, const WindowRun& parallel,
                        bool strict_order = true) {
  // Market outcome.
  EXPECT_EQ(parallel.result.type, serial.result.type);
  EXPECT_DOUBLE_EQ(parallel.result.price, serial.result.price);
  EXPECT_EQ(parallel.result.bus_bytes, serial.result.bus_bytes);
  // The transport's own total must agree with the per-endpoint delta
  // accounting on every backend.
  EXPECT_EQ(parallel.transport_total_bytes, serial.transport_total_bytes);
  EXPECT_EQ(serial.transport_total_bytes, serial.result.bus_bytes);
  // Per-agent byte totals: every backend charges the same bandwidth to
  // the same home (what Table I reports), message by message.
  ASSERT_EQ(parallel.per_agent.size(), serial.per_agent.size());
  for (size_t a = 0; a < serial.per_agent.size(); ++a) {
    EXPECT_TRUE(parallel.per_agent[a] == serial.per_agent[a])
        << "per-agent traffic diverges for agent " << a;
  }
  ASSERT_EQ(parallel.result.trades.size(), serial.result.trades.size());
  for (size_t i = 0; i < serial.result.trades.size(); ++i) {
    const protocol::Trade& a = serial.result.trades[i];
    const protocol::Trade& b = parallel.result.trades[i];
    EXPECT_EQ(b.seller_index, a.seller_index) << i;
    EXPECT_EQ(b.buyer_index, a.buyer_index) << i;
    EXPECT_DOUBLE_EQ(b.energy_kwh, a.energy_kwh) << i;
    EXPECT_DOUBLE_EQ(b.payment, a.payment) << i;
  }
  if (strict_order) {
    ExpectSameTranscript(serial.messages, parallel.messages);
  } else {
    ExpectSameTranscriptPerSender(serial.messages, parallel.messages);
  }
  EXPECT_FALSE(serial.messages.empty());
}

// Forked-backend window run: the same market and seed as RunWindow,
// but with one OS process per agent — over inherited socketpairs
// (kProcess) or dialed loopback TCP connections (kTcp).  The
// transcript is what the parent router physically relayed between the
// children's sockets; bytes are the router ledger's literal socket
// (respectively network) bytes.
WindowRun RunWindowForked(net::TransportKind kind, uint64_t seed,
                          bool pooled = false, bool crt = true,
                          int threads = 1) {
  WindowRun run;
  protocol::PemConfig cfg;
  cfg.key_bits = 128;
  cfg.precompute_encryption = pooled;
  cfg.crt_encryption = crt;
  const net::ExecutionPolicy policy{kind, threads};

  crypto::DeterministicRng rng(seed);
  crypto::PaillierPoolRegistry pools;
  std::vector<protocol::Party> parties;
  for (size_t i = 0; i < kMarket.size(); ++i) {
    parties.emplace_back(static_cast<net::AgentId>(i), kMarket[i].params);
  }

  net::AgentSupervisor::ChildMain child_main =
      [&cfg, &policy, &rng, &pools, &parties](
          net::AgentId self, net::Transport& wire,
          net::ControlChannel& ctl) -> int {
    std::vector<net::Endpoint> eps = wire.endpoints();
    protocol::ProtocolContext ctx{eps, rng, cfg,
                                  cfg.precompute_encryption ? &pools : nullptr,
                                  policy};
    protocol::AgentDriver::Callbacks callbacks;
    callbacks.begin_window = [&](int) {
      // Same RNG draw order as RunWindow's party setup / re-begin.
      for (size_t i = 0; i < kMarket.size(); ++i) {
        parties[i].BeginWindow(kMarket[i].state, cfg.nonce_bound, rng);
      }
    };
    callbacks.after_window = [&](int) {
      if (!cfg.precompute_encryption) return;
      if (cfg.crt_encryption) {
        for (const protocol::Party& p : parties) {
          if (p.HasKeys()) pools.AttachOwner(p.private_key());
        }
      }
      pools.RefillAll(/*target=*/64, rng, policy);
    };
    protocol::AgentDriver driver(self, ctx, parties, callbacks);
    driver.Serve(ctl);
    return 0;
  };

  std::unique_ptr<net::AgentSupervisor> owner;
  if (kind == net::TransportKind::kTcp) {
    owner = std::make_unique<net::TcpTransport>(
        static_cast<int>(kMarket.size()), child_main,
        net::TcpTransport::Options{});
  } else if (kind == net::TransportKind::kShm) {
    owner = std::make_unique<net::ShmTransport>(
        static_cast<int>(kMarket.size()), child_main,
        net::ShmTransport::Options{});
  } else {
    owner = std::make_unique<net::ProcessTransport>(
        static_cast<int>(kMarket.size()), child_main);
  }
  net::AgentSupervisor& transport = *owner;
  const auto run_window = [&transport](int w) {
    std::vector<net::TrafficStats> before;
    for (net::AgentId a = 0; a < transport.num_agents(); ++a) {
      before.push_back(transport.stats(a));
    }
    net::ByteWriter cmd;
    cmd.U32(static_cast<uint32_t>(w));
    const std::vector<uint8_t> payload = cmd.Take();
    transport.CommandAll(net::kCtlCmdRun, payload);
    return protocol::CollectWindowReports(transport, before, w);
  };
  if (pooled) {
    // Warm-up window registers keys and pools; only the second window
    // is measured (mirrors RunWindow exactly — the children's
    // after_window refill runs between the two).
    (void)run_window(0);
  }
  transport.ResetStats();
  transport.SetObserver(
      [&run](const net::Message& m) { run.messages.push_back(m); });
  const protocol::WindowReport report = run_window(pooled ? 1 : 0);
  run.transport_total_bytes = transport.total_bytes();
  for (size_t i = 0; i < kMarket.size(); ++i) {
    run.per_agent.push_back(transport.stats(static_cast<net::AgentId>(i)));
  }
  transport.SetObserver(nullptr);
  transport.Shutdown();

  run.result.type = report.type;
  run.result.price = report.price;
  run.result.trades = report.trades;
  run.result.bus_bytes = report.bus_bytes;
  // Pool-factor accounting lives inside the children; the pooled-branch
  // coverage assertions stay with the in-process rows.
  run.factors_consumed = 0;
  return run;
}

TEST(TranscriptParity, WindowSixWayMatrix) {
  // serial / concurrent / socket / process / tcp / shm: same seed,
  // same transcript, same per-agent bytes.
  const WindowRun serial = RunWindow(net::ExecutionPolicy::Serial(), 42);
  const WindowRun parallel = RunWindow(net::ExecutionPolicy::Parallel(4), 42);
  const WindowRun socket = RunWindow(net::ExecutionPolicy::Socket(), 42);
  const WindowRun process =
      RunWindowForked(net::TransportKind::kProcess, 42);
  const WindowRun tcp = RunWindowForked(net::TransportKind::kTcp, 42);
  const WindowRun shm = RunWindowForked(net::TransportKind::kShm, 42);
  ExpectWindowParity(serial, parallel);
  ExpectWindowParity(serial, socket);
  ExpectWindowParity(parallel, socket);
  // Forked agents: identical outcome and bytes, per-sender-identical
  // transcript (their frames really interleave on arrival) — over
  // inherited socketpairs, loopback TCP, and shared-memory rings
  // alike.  The shm bytes were never routed: the snoop-cursor ledger
  // must equal the canonical accounting agent by agent.
  ExpectWindowParity(serial, process, /*strict_order=*/false);
  ExpectWindowParity(serial, tcp, /*strict_order=*/false);
  ExpectWindowParity(serial, shm, /*strict_order=*/false);
}

TEST(TranscriptParity, ProcessWithComputeWorkersAlsoMatches) {
  // The policy axes stay independent under fork too: each child fans
  // its compute phase across workers without moving a wire byte.
  const WindowRun serial = RunWindow(net::ExecutionPolicy::Serial(), 7);
  const WindowRun process =
      RunWindowForked(net::TransportKind::kProcess, 7, /*pooled=*/false,
                      /*crt=*/true, /*threads=*/2);
  ExpectWindowParity(serial, process, /*strict_order=*/false);
}

TEST(TranscriptParity, TcpWithComputeWorkersAlsoMatches) {
  // Same independence over real TCP connections.
  const WindowRun serial = RunWindow(net::ExecutionPolicy::Serial(), 7);
  const WindowRun tcp =
      RunWindowForked(net::TransportKind::kTcp, 7, /*pooled=*/false,
                      /*crt=*/true, /*threads=*/2);
  ExpectWindowParity(serial, tcp, /*strict_order=*/false);
}

TEST(TranscriptParity, ShmWithComputeWorkersAlsoMatches) {
  // Same independence over shared-memory rings.
  const WindowRun serial = RunWindow(net::ExecutionPolicy::Serial(), 7);
  const WindowRun shm =
      RunWindowForked(net::TransportKind::kShm, 7, /*pooled=*/false,
                      /*crt=*/true, /*threads=*/2);
  ExpectWindowParity(serial, shm, /*strict_order=*/false);
}

TEST(TranscriptParity, WindowParityHoldsAcrossSeeds) {
  for (uint64_t seed : {1u, 7u, 2020u}) {
    const WindowRun serial = RunWindow(net::ExecutionPolicy::Serial(), seed);
    const WindowRun parallel =
        RunWindow(net::ExecutionPolicy::Parallel(8), seed);
    ExpectWindowParity(serial, parallel);
  }
}

TEST(TranscriptParity, SocketWithComputeWorkersAlsoMatches) {
  // The policy axes stay independent on the socket backend too: frames
  // over socketpairs with a parallel compute phase carry the same
  // bytes as the serial in-process engine.
  const WindowRun serial = RunWindow(net::ExecutionPolicy::Serial(), 7);
  const WindowRun socket = RunWindow(net::ExecutionPolicy::Socket(4), 7);
  ExpectWindowParity(serial, socket);
}

TEST(TranscriptParity, WindowParityWithRandomnessPools) {
  const WindowRun serial =
      RunWindow(net::ExecutionPolicy::Serial(), 11, /*pooled=*/true);
  const WindowRun parallel =
      RunWindow(net::ExecutionPolicy::Parallel(4), 11, /*pooled=*/true);
  const WindowRun socket =
      RunWindow(net::ExecutionPolicy::Socket(), 11, /*pooled=*/true);
  const WindowRun process =
      RunWindowForked(net::TransportKind::kProcess, 11, /*pooled=*/true);
  const WindowRun tcp =
      RunWindowForked(net::TransportKind::kTcp, 11, /*pooled=*/true);
  const WindowRun shm =
      RunWindowForked(net::TransportKind::kShm, 11, /*pooled=*/true);
  ExpectWindowParity(serial, parallel);
  ExpectWindowParity(serial, socket);
  ExpectWindowParity(serial, process, /*strict_order=*/false);
  ExpectWindowParity(serial, tcp, /*strict_order=*/false);
  ExpectWindowParity(serial, shm, /*strict_order=*/false);
  // The parity must cover the pooled EncryptWithFactor branch, not just
  // the fresh-randomness fallback: all engines must actually draw
  // factors, and the same number of them.
  EXPECT_GT(serial.factors_consumed, 0u);
  EXPECT_EQ(parallel.factors_consumed, serial.factors_consumed);
  EXPECT_EQ(socket.factors_consumed, serial.factors_consumed);
}

// --- CRT encryption + concurrent refill parity ------------------------
//
// The two Fig. 5(b) idle-time optimizations of this PR change WHERE the
// r^n exponentiations run (mod p^2/q^2 instead of mod n^2) and HOW MANY
// workers compute them (pool refill fans out per the policy) — but not
// one wire byte.  Baseline: CRT off, serial refill.

TEST(TranscriptParity, CrtEncryptionChangesNoWireByte) {
  // Non-pooled: the owner fast path covers the aggregators' own ring
  // contributions (fresh-randomness branch).
  const WindowRun off =
      RunWindow(net::ExecutionPolicy::Serial(), 42, /*pooled=*/false,
                /*crt=*/false);
  const WindowRun on =
      RunWindow(net::ExecutionPolicy::Serial(), 42, /*pooled=*/false,
                /*crt=*/true);
  ExpectWindowParity(off, on);
}

TEST(TranscriptParity, CrtAndConcurrentRefillMatrix) {
  // Pooled: refills run the owner-CRT path and fan out across the
  // policy's workers on every backend; the transcript must match the
  // all-optimizations-off serial baseline byte for byte.
  const WindowRun base = RunWindow(net::ExecutionPolicy::Serial(), 11,
                                   /*pooled=*/true, /*crt=*/false);
  const WindowRun crt_serial = RunWindow(net::ExecutionPolicy::Serial(), 11,
                                         /*pooled=*/true, /*crt=*/true);
  const WindowRun crt_parallel = RunWindow(net::ExecutionPolicy::Parallel(8),
                                           11, /*pooled=*/true, /*crt=*/true);
  const WindowRun crt_socket = RunWindow(net::ExecutionPolicy::Socket(4), 11,
                                         /*pooled=*/true, /*crt=*/true);
  const WindowRun crt_process =
      RunWindowForked(net::TransportKind::kProcess, 11, /*pooled=*/true,
                      /*crt=*/true, /*threads=*/2);
  const WindowRun crt_tcp =
      RunWindowForked(net::TransportKind::kTcp, 11, /*pooled=*/true,
                      /*crt=*/true, /*threads=*/2);
  const WindowRun crt_shm =
      RunWindowForked(net::TransportKind::kShm, 11, /*pooled=*/true,
                      /*crt=*/true, /*threads=*/2);
  ExpectWindowParity(base, crt_serial);
  ExpectWindowParity(base, crt_parallel);
  ExpectWindowParity(base, crt_socket);
  ExpectWindowParity(base, crt_process, /*strict_order=*/false);
  ExpectWindowParity(base, crt_tcp, /*strict_order=*/false);
  ExpectWindowParity(base, crt_shm, /*strict_order=*/false);
  // All four runs must exercise the pooled branch, equally.
  EXPECT_GT(base.factors_consumed, 0u);
  EXPECT_EQ(crt_serial.factors_consumed, base.factors_consumed);
  EXPECT_EQ(crt_parallel.factors_consumed, base.factors_consumed);
  EXPECT_EQ(crt_socket.factors_consumed, base.factors_consumed);
}

TEST(TranscriptParity, SerialTransportWithWorkersAlsoMatches) {
  // The phase engine never sends from compute workers, so even the
  // unlocked serial bus stays correct under threads > 1; the policy's
  // two axes are independent.
  const WindowRun serial = RunWindow(net::ExecutionPolicy::Serial(), 3);
  const WindowRun hybrid =
      RunWindow({net::TransportKind::kSerialBus, 4}, 3);
  ExpectWindowParity(serial, hybrid);
}

// --- full-simulation parity (RunSimulation) ---------------------------

struct SimRun {
  std::vector<net::Message> messages;
  core::SimulationResult result;
};

// Optional per-test knob hook (batching width, pools, audits, churn).
using ConfigTweak = std::function<void(core::SimulationConfig&)>;

SimRun RunSim(const net::ExecutionPolicy& policy,
              const ConfigTweak& tweak = {}) {
  grid::TraceConfig tc;
  tc.num_homes = 10;
  tc.windows_per_day = 6;
  tc.seed = 13;
  const grid::CommunityTrace trace = grid::GenerateCommunityTrace(tc);

  SimRun run;
  core::SimulationConfig cfg;
  cfg.engine = core::Engine::kCrypto;
  cfg.pem.key_bits = 128;
  cfg.policy = policy;
  cfg.bus_observer = [&run](const net::Message& m) {
    run.messages.push_back(m);
  };
  if (tweak) tweak(cfg);
  run.result = core::RunSimulation(trace, cfg);
  return run;
}

void ExpectSimParity(const SimRun& serial, const SimRun& other,
                     bool strict_order = true) {
  ASSERT_EQ(other.result.windows.size(), serial.result.windows.size());
  ASSERT_FALSE(serial.result.windows.empty());
  for (size_t w = 0; w < serial.result.windows.size(); ++w) {
    const core::WindowRecord& a = serial.result.windows[w];
    const core::WindowRecord& b = other.result.windows[w];
    EXPECT_EQ(b.window, a.window) << w;
    EXPECT_EQ(b.type, a.type) << w;
    EXPECT_DOUBLE_EQ(b.price, a.price) << w;
    EXPECT_EQ(b.bus_bytes, a.bus_bytes) << w;
    EXPECT_EQ(b.num_sellers, a.num_sellers) << w;
    EXPECT_EQ(b.num_buyers, a.num_buyers) << w;
    EXPECT_DOUBLE_EQ(b.buyer_cost_pem, a.buyer_cost_pem) << w;
    // The rng stream position after the window's last protocol draw:
    // the strongest cheap witness that no engine, backend, or window
    // schedule moved a single random byte.
    EXPECT_EQ(b.rng_cursor, a.rng_cursor) << w;
    // Audit outcomes (who audited, what they found) are part of the
    // transcript too.
    EXPECT_EQ(b.audit.audited, a.audit.audited) << w;
    EXPECT_EQ(b.audit.auditor, a.audit.auditor) << w;
    EXPECT_EQ(b.audit.faults.size(), a.audit.faults.size()) << w;
  }
  EXPECT_EQ(other.result.total_bus_bytes, serial.result.total_bus_bytes);

  if (strict_order) {
    ExpectSameTranscript(serial.messages, other.messages);
  } else {
    ExpectSameTranscriptPerSender(serial.messages, other.messages);
  }
  EXPECT_FALSE(serial.messages.empty());
}

TEST(TranscriptParity, FullTradingDaySerialVsPhaseParallel) {
  const SimRun serial = RunSim(net::ExecutionPolicy::Serial());
  const SimRun parallel = RunSim(net::ExecutionPolicy::Parallel(4));
  ExpectSimParity(serial, parallel);
}

TEST(TranscriptParity, FullTradingDaySerialVsSocket) {
  const SimRun serial = RunSim(net::ExecutionPolicy::Serial());
  const SimRun socket = RunSim(net::ExecutionPolicy::Socket());
  ExpectSimParity(serial, socket);
}

TEST(TranscriptParity, FullTradingDaySerialVsProcess) {
  // Ten agents, ten OS processes, a six-window day: identical window
  // records (prices, trades, BYTES — the process bytes being literal
  // socketpair traffic, cross-checked against the canonical ledger on
  // every window inside CollectWindowReports) and a per-sender
  // byte-identical wire transcript.
  const SimRun serial = RunSim(net::ExecutionPolicy::Serial());
  const SimRun process = RunSim(net::ExecutionPolicy::Process());
  ExpectSimParity(serial, process, /*strict_order=*/false);
}

TEST(TranscriptParity, FullTradingDaySerialVsTcp) {
  // The same day with every agent behind a loopback TCP connection:
  // the Table-I numbers are now literal network bytes, still equal to
  // the canonical ledger window by window (CollectWindowReports) and
  // agent by agent.
  const SimRun serial = RunSim(net::ExecutionPolicy::Serial());
  const SimRun tcp = RunSim(net::ExecutionPolicy::Tcp());
  ExpectSimParity(serial, tcp, /*strict_order=*/false);
}

// --- serial-vs-batched parity (windows_in_flight > 1) -----------------
//
// The batched scheduler (protocol::WindowScheduler) keeps several
// sampled windows in flight: in-process it fuses their compute phases
// onto one persistent worker team, on the forked backends it pipelines
// kCtlCmdRun dispatch so children overlap across windows.  Randomness
// and sends stay sequential per window, so every row below must be
// BIT-identical to the windows_in_flight = 1 run: prices, trades,
// per-window ledger bytes, and rng cursors.

const ConfigTweak kBatch4 = [](core::SimulationConfig& c) {
  c.windows_in_flight = 4;
};

TEST(TranscriptParity, BatchedDayMatchesSerialInProcess) {
  // serial-bus / concurrent-bus / socket, all batched 4 wide, against
  // the windows_in_flight = 1 serial baseline.  The concurrent row is
  // the fused one (batched AND parallel compute); the other two prove
  // the scheduler is inert when there is no team to fuse onto.
  const SimRun serial = RunSim(net::ExecutionPolicy::Serial());
  const SimRun bus = RunSim(net::ExecutionPolicy::Serial(), kBatch4);
  const SimRun fused = RunSim(net::ExecutionPolicy::Parallel(4), kBatch4);
  const SimRun socket = RunSim(net::ExecutionPolicy::Socket(4), kBatch4);
  ExpectSimParity(serial, bus);
  ExpectSimParity(serial, fused);
  ExpectSimParity(serial, socket);
}

TEST(TranscriptParity, BatchedDayMatchesSerialForked) {
  // process / tcp / shm with four windows of control traffic in
  // flight: children overlap whole windows, reports come back keyed by
  // their echoed window id, and the day still reads exactly like the
  // serial one.
  const SimRun serial = RunSim(net::ExecutionPolicy::Serial());
  const SimRun process = RunSim(net::ExecutionPolicy::Process(), kBatch4);
  const SimRun tcp = RunSim(net::ExecutionPolicy::Tcp(), kBatch4);
  const SimRun shm = RunSim(net::ExecutionPolicy::Shm(), kBatch4);
  ExpectSimParity(serial, process, /*strict_order=*/false);
  ExpectSimParity(serial, tcp, /*strict_order=*/false);
  ExpectSimParity(serial, shm, /*strict_order=*/false);
  // Runtime attribution under overlap: each window's span runs from
  // its batch's dispatch to its own completion, and the day total
  // charges each batch once — so the total can never exceed the sum
  // of per-window spans (the windows genuinely share wall clock).
  double span_sum = 0.0;
  for (const core::WindowRecord& rec : process.result.windows) {
    EXPECT_GT(rec.runtime_seconds, 0.0) << rec.window;
    span_sum += rec.runtime_seconds;
  }
  EXPECT_LE(process.result.total_runtime_seconds, span_sum + 1e-9);
}

TEST(TranscriptParity, BatchedPooledDayMatchesSerial) {
  // Randomness pools refill between windows; batching must not move a
  // single factor draw.
  const ConfigTweak pooled = [](core::SimulationConfig& c) {
    c.pem.precompute_encryption = true;
    c.windows_in_flight = 4;
  };
  const SimRun serial =
      RunSim(net::ExecutionPolicy::Serial(), [](core::SimulationConfig& c) {
        c.pem.precompute_encryption = true;
      });
  const SimRun fused = RunSim(net::ExecutionPolicy::Parallel(4), pooled);
  const SimRun process = RunSim(net::ExecutionPolicy::Process(), pooled);
  ExpectSimParity(serial, fused);
  ExpectSimParity(serial, process, /*strict_order=*/false);
}

TEST(TranscriptParity, BatchedCrtDayMatchesSerial) {
  // The full Fig. 5 idle-time stack — pools, CRT exponentiation, AND
  // batching — against the same stack with windows_in_flight = 1:
  // batching is the only axis that moves, and it must not move a wire
  // byte or an rng draw.  (Pools themselves shift the day's stream —
  // refills draw ahead — which is why the baseline here is pooled+CRT
  // serial, not the bare serial day.)
  const ConfigTweak crt_serial = [](core::SimulationConfig& c) {
    c.pem.precompute_encryption = true;
    c.pem.crt_encryption = true;
  };
  const ConfigTweak crt_b4 = [crt_serial](core::SimulationConfig& c) {
    crt_serial(c);
    c.windows_in_flight = 4;
  };
  const SimRun base = RunSim(net::ExecutionPolicy::Serial(), crt_serial);
  const SimRun fused = RunSim(net::ExecutionPolicy::Parallel(4), crt_b4);
  const SimRun shm = RunSim(net::ExecutionPolicy::Shm(), crt_b4);
  ExpectSimParity(base, fused);
  ExpectSimParity(base, shm, /*strict_order=*/false);
}

TEST(TranscriptParity, BatchedAuditArmedDayMatchesSerial) {
  // §VI audits draw their coin flips and verification traffic inside
  // the window; the batched run must elect the same auditors and reach
  // the same (clean) verdicts window by window.
  const ConfigTweak audited = [](core::SimulationConfig& c) {
    c.pem.audit.enabled = true;
  };
  const ConfigTweak audited_b4 = [](core::SimulationConfig& c) {
    c.pem.audit.enabled = true;
    c.windows_in_flight = 4;
  };
  const SimRun serial = RunSim(net::ExecutionPolicy::Serial(), audited);
  const SimRun fused = RunSim(net::ExecutionPolicy::Parallel(4), audited_b4);
  const SimRun process = RunSim(net::ExecutionPolicy::Process(), audited_b4);
  ExpectSimParity(serial, fused);
  ExpectSimParity(serial, process, /*strict_order=*/false);
  // The row is only meaningful if somebody actually audited.
  bool any_audited = false;
  for (const core::WindowRecord& rec : serial.result.windows) {
    any_audited |= rec.audit.audited;
  }
  EXPECT_TRUE(any_audited);
}

TEST(TranscriptParity, BatchedChurnedStridedDayMatchesSerial) {
  // Membership churn lands on windows the stride skips as well as ones
  // it runs; the parent must replay every event in window order before
  // deciding what a sampled window looks like (the forked parent loop
  // used to skip churn entirely — this row is its regression test).
  const ConfigTweak churned = [](core::SimulationConfig& c) {
    c.window_stride = 2;
    c.window_offset = 1;
    c.churn = {{2, 3, false}, {4, 3, true}, {3, 7, false}};
  };
  const ConfigTweak churned_b3 = [churned](core::SimulationConfig& c) {
    churned(c);
    c.windows_in_flight = 3;
  };
  const SimRun serial = RunSim(net::ExecutionPolicy::Serial(), churned);
  const SimRun process = RunSim(net::ExecutionPolicy::Process(), churned);
  const SimRun process_b3 =
      RunSim(net::ExecutionPolicy::Process(), churned_b3);
  const SimRun fused = RunSim(net::ExecutionPolicy::Parallel(4), churned_b3);
  ASSERT_EQ(serial.result.windows.size(), 3u);  // windows 1, 3, 5
  ExpectSimParity(serial, process, /*strict_order=*/false);
  ExpectSimParity(serial, process_b3, /*strict_order=*/false);
  ExpectSimParity(serial, fused);
}

TEST(TranscriptParity, FullTradingDaySerialVsShm) {
  // The same day over zero-copy shared-memory rings: every frame is
  // written once and consumed in place, yet the Table-I numbers —
  // accounted from the snoop cursors, synced by CollectWindowReports
  // before each window's cross-check — still equal the canonical
  // ledger window by window and agent by agent.
  const SimRun serial = RunSim(net::ExecutionPolicy::Serial());
  const SimRun shm = RunSim(net::ExecutionPolicy::Shm());
  ExpectSimParity(serial, shm, /*strict_order=*/false);
}

}  // namespace
}  // namespace pem
