// End-to-end equivalence: the full cryptographic PEM window (Protocols
// 1-4 over the bus) must compute exactly the plaintext clearing
// outcome, across market types, population sizes, and key sizes.
#include <gtest/gtest.h>

#include "net/bus.h"

#include <numeric>

#include "grid/trace.h"
#include "market/clearing.h"
#include "protocol/pem_protocol.h"

namespace pem::protocol {
namespace {

struct Fixture {
  std::vector<Party> parties;
  std::vector<market::AgentWindowInput> inputs;
  net::MessageBus bus;
  std::vector<net::Endpoint> eps = bus.endpoints();
  crypto::DeterministicRng rng;
  PemConfig cfg;

  Fixture(const std::vector<market::AgentWindowInput>& in, uint64_t seed,
          int key_bits = 128)
      : inputs(in), bus(static_cast<int>(in.size())), rng(seed) {
    cfg.key_bits = key_bits;
    for (size_t i = 0; i < in.size(); ++i) {
      parties.emplace_back(static_cast<net::AgentId>(i), in[i].params);
      parties.back().BeginWindow(in[i].state, cfg.nonce_bound, rng);
    }
  }

  PemWindowResult Run() {
    ProtocolContext ctx{eps, rng, cfg};
    return RunPemWindow(ctx, parties);
  }
};

market::AgentWindowInput Agent(double g, double l, double b = 0.0,
                               double k = 1.0, double eps = 0.9) {
  market::AgentWindowInput in;
  in.params.preference_k = k;
  in.params.battery_epsilon = eps;
  in.state.generation_kwh = g;
  in.state.load_kwh = l;
  in.state.battery_kwh = b;
  return in;
}

void ExpectOutcomesMatch(const PemWindowResult& crypto_out,
                         const market::MarketOutcome& oracle,
                         double tol = 1e-4) {
  EXPECT_EQ(crypto_out.type, oracle.type);
  EXPECT_NEAR(crypto_out.price, oracle.price, 1e-5);
  EXPECT_NEAR(crypto_out.supply_total, oracle.supply_total, tol);
  EXPECT_NEAR(crypto_out.demand_total, oracle.demand_total, tol);
  ASSERT_EQ(crypto_out.market_sale.size(), oracle.market_sale.size());
  for (size_t i = 0; i < oracle.market_sale.size(); ++i) {
    EXPECT_NEAR(crypto_out.market_sale[i], oracle.market_sale[i], tol) << i;
    EXPECT_NEAR(crypto_out.market_purchase[i], oracle.market_purchase[i], tol)
        << i;
    EXPECT_NEAR(crypto_out.money_paid[i], oracle.money_paid[i], tol) << i;
    EXPECT_NEAR(crypto_out.money_received[i], oracle.money_received[i], tol)
        << i;
  }
  EXPECT_NEAR(crypto_out.buyer_total_cost, oracle.buyer_total_cost, tol);
  EXPECT_NEAR(crypto_out.grid_import_kwh, oracle.grid_import_kwh, tol);
  EXPECT_NEAR(crypto_out.grid_export_kwh, oracle.grid_export_kwh, tol);
}

TEST(EndToEnd, GeneralMarketMatchesOracle) {
  const std::vector<market::AgentWindowInput> agents = {
      Agent(1.2, 0.3, 0.0, 0.9),  Agent(0.8, 0.2, 0.1, 1.1),
      Agent(0.0, 1.0),            Agent(0.1, 0.9),
      Agent(0.0, 0.7),
  };
  Fixture f(agents, 1);
  const PemWindowResult out = f.Run();
  ASSERT_EQ(out.type, market::MarketType::kGeneral);
  ExpectOutcomesMatch(out, market::ClearMarket(agents, f.cfg.market));
}

TEST(EndToEnd, ExtremeMarketMatchesOracle) {
  const std::vector<market::AgentWindowInput> agents = {
      Agent(3.0, 0.3), Agent(2.5, 0.4), Agent(0.0, 1.0), Agent(0.0, 0.5)};
  Fixture f(agents, 2);
  const PemWindowResult out = f.Run();
  ASSERT_EQ(out.type, market::MarketType::kExtreme);
  ExpectOutcomesMatch(out, market::ClearMarket(agents, f.cfg.market));
}

TEST(EndToEnd, NoSellersFallsBackToGrid) {
  const std::vector<market::AgentWindowInput> agents = {Agent(0.0, 1.0),
                                                        Agent(0.2, 0.8)};
  Fixture f(agents, 3);
  const PemWindowResult out = f.Run();
  EXPECT_EQ(out.type, market::MarketType::kNoMarket);
  EXPECT_TRUE(out.trades.empty());
  ExpectOutcomesMatch(out, market::ClearMarket(agents, f.cfg.market));
  EXPECT_EQ(out.bus_bytes, 0u);  // no protocol traffic at all
}

TEST(EndToEnd, NoBuyersFallsBackToGrid) {
  const std::vector<market::AgentWindowInput> agents = {Agent(2.0, 0.5),
                                                        Agent(1.0, 0.2)};
  Fixture f(agents, 4);
  const PemWindowResult out = f.Run();
  EXPECT_EQ(out.type, market::MarketType::kNoMarket);
  ExpectOutcomesMatch(out, market::ClearMarket(agents, f.cfg.market));
}

TEST(EndToEnd, OffMarketAgentsAreUntouched) {
  const std::vector<market::AgentWindowInput> agents = {
      Agent(1.0, 0.2), Agent(0.5, 0.5), Agent(0.0, 0.9)};
  Fixture f(agents, 5);
  const PemWindowResult out = f.Run();
  EXPECT_DOUBLE_EQ(out.money_paid[1], 0.0);
  EXPECT_DOUBLE_EQ(out.money_received[1], 0.0);
  EXPECT_DOUBLE_EQ(out.market_sale[1], 0.0);
}

TEST(EndToEnd, PriceClampedWindowsMatchOracle) {
  // Force floor clamping with small k sellers.
  const std::vector<market::AgentWindowInput> low_k = {
      Agent(1.0, 0.1, 0.0, 0.3), Agent(0.0, 2.0)};
  Fixture f_low(low_k, 6);
  const PemWindowResult out_low = f_low.Run();
  EXPECT_DOUBLE_EQ(out_low.price, f_low.cfg.market.price_floor);
  ExpectOutcomesMatch(out_low, market::ClearMarket(low_k, f_low.cfg.market));

  const std::vector<market::AgentWindowInput> high_k = {
      Agent(1.0, 0.1, 0.0, 5.0), Agent(0.0, 2.0)};
  Fixture f_high(high_k, 7);
  const PemWindowResult out_high = f_high.Run();
  EXPECT_DOUBLE_EQ(out_high.price, f_high.cfg.market.price_ceiling);
}

TEST(EndToEnd, BatteriesFlowThroughWholePipeline) {
  const std::vector<market::AgentWindowInput> agents = {
      Agent(2.0, 0.3, 0.5, 1.0, 0.92),   // charging seller
      Agent(0.4, 0.8, -0.2, 1.0, 0.88),  // discharging smooths a buyer
      Agent(0.0, 1.5),
  };
  Fixture f(agents, 8);
  ExpectOutcomesMatch(f.Run(), market::ClearMarket(agents, f.cfg.market));
}

TEST(EndToEnd, TradeLedgerConsistentWithAggregates) {
  const std::vector<market::AgentWindowInput> agents = {
      Agent(0.9, 0.2), Agent(0.6, 0.1), Agent(0.0, 1.1), Agent(0.0, 0.8),
      Agent(0.0, 0.6)};
  Fixture f(agents, 9);
  const PemWindowResult out = f.Run();
  double ledger_energy = 0, ledger_money = 0;
  for (const Trade& t : out.trades) {
    ledger_energy += t.energy_kwh;
    ledger_money += t.payment;
  }
  double sales = std::accumulate(out.market_sale.begin(),
                                 out.market_sale.end(), 0.0);
  EXPECT_NEAR(ledger_energy, sales, 1e-9);
  EXPECT_NEAR(ledger_money, out.price * sales, 1e-9);
}

TEST(EndToEnd, RandomMarketsSweepAgainstOracle) {
  grid::TraceConfig tcfg;
  tcfg.num_homes = 14;
  tcfg.windows_per_day = 6;
  tcfg.seed = 99;
  const grid::CommunityTrace trace = grid::GenerateCommunityTrace(tcfg);
  std::vector<grid::Battery> batteries = trace.MakeBatteries();
  for (int w = 0; w < trace.windows_per_day; ++w) {
    std::vector<market::AgentWindowInput> agents;
    for (int h = 0; h < trace.num_homes(); ++h) {
      agents.push_back(market::AgentWindowInput{
          trace.homes[static_cast<size_t>(h)].params,
          trace.ResolveWindow(h, w, batteries)});
    }
    Fixture f(agents, 100 + static_cast<uint64_t>(w));
    ExpectOutcomesMatch(f.Run(), market::ClearMarket(agents, f.cfg.market));
  }
}

class EndToEndKeySizes : public ::testing::TestWithParam<int> {};

TEST_P(EndToEndKeySizes, OutcomeIndependentOfKeySize) {
  const std::vector<market::AgentWindowInput> agents = {
      Agent(1.1, 0.2, 0.0, 0.95), Agent(0.0, 0.9), Agent(0.0, 0.6)};
  Fixture f(agents, 42, GetParam());
  ExpectOutcomesMatch(f.Run(), market::ClearMarket(agents, f.cfg.market));
}

INSTANTIATE_TEST_SUITE_P(KeyBits, EndToEndKeySizes,
                         ::testing::Values(128, 256, 512));

TEST(EndToEnd, RuntimeAndBandwidthAreMeasured) {
  const std::vector<market::AgentWindowInput> agents = {
      Agent(1.0, 0.2), Agent(0.0, 0.9)};
  Fixture f(agents, 11);
  const PemWindowResult out = f.Run();
  EXPECT_GT(out.runtime_seconds, 0.0);
  EXPECT_GT(out.bus_bytes, 1000u);
}

}  // namespace
}  // namespace pem::protocol
