// Compile-and-smoke test for the umbrella header: everything a
// downstream user needs must be reachable through pem.h alone.
#include "pem.h"

#include <gtest/gtest.h>

namespace {

TEST(PublicApi, UmbrellaHeaderExposesCoreTypes) {
  // Market model.
  pem::market::MarketParams params;
  params.Validate();
  EXPECT_GT(pem::market::SellerUtility(1.0, 0.5, 0.9, 0.0, 1.0, 2.0), 0.0);

  // Crypto substrate.
  pem::crypto::DeterministicRng rng(1);
  const pem::crypto::PaillierKeyPair kp =
      pem::crypto::GeneratePaillierKeyPair(128, rng);
  EXPECT_EQ(kp.priv.DecryptSigned(kp.pub.EncryptSigned(-7, rng)), -7);

  // Grid simulation.
  pem::grid::TraceConfig tc;
  tc.num_homes = 3;
  tc.windows_per_day = 4;
  const pem::grid::CommunityTrace trace = pem::grid::GenerateCommunityTrace(tc);
  EXPECT_EQ(trace.num_homes(), 3);

  // Simulation driver.
  pem::core::SimulationConfig sc;
  const pem::core::SimulationResult r = pem::core::RunSimulation(trace, sc);
  EXPECT_EQ(r.windows.size(), 4u);

  // Ledger.
  pem::ledger::Ledger chain;
  EXPECT_TRUE(chain.Validate().empty());
}

TEST(PublicApi, FullWindowThroughUmbrellaHeader) {
  pem::net::MessageBus bus(3);
  std::vector<pem::net::Endpoint> eps = bus.endpoints();
  pem::crypto::DeterministicRng rng(2);
  pem::protocol::PemConfig config;
  config.key_bits = 128;
  std::vector<pem::protocol::Party> parties;
  const double nets[] = {0.5, -0.3, -0.4};
  for (int i = 0; i < 3; ++i) {
    parties.emplace_back(i, pem::grid::AgentParams{});
    pem::grid::WindowState st;
    st.generation_kwh = nets[i] > 0 ? nets[i] : 0;
    st.load_kwh = nets[i] < 0 ? -nets[i] : 0;
    parties.back().BeginWindow(st, config.nonce_bound, rng);
  }
  pem::protocol::ProtocolContext ctx{eps, rng, config};
  const pem::protocol::PemWindowResult out =
      pem::protocol::RunPemWindow(ctx, parties);
  EXPECT_EQ(out.type, pem::market::MarketType::kGeneral);
  EXPECT_EQ(out.trades.size(), 2u);

  pem::ledger::Ledger chain;
  pem::ledger::SettlementContract contract(chain);
  EXPECT_TRUE(contract.SettleWindow(0, out).accepted);
}

}  // namespace
