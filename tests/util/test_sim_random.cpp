#include "util/sim_random.h"

#include <gtest/gtest.h>

namespace pem {
namespace {

TEST(SimRandom, DeterministicForSameSeed) {
  SimRandom a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(0, 1), b.Uniform(0, 1));
  }
}

TEST(SimRandom, DifferentSeedsDiverge) {
  SimRandom a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.Uniform(0, 1) != b.Uniform(0, 1)) ++differing;
  }
  EXPECT_GT(differing, 45);
}

TEST(SimRandom, UniformStaysInRange) {
  SimRandom rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(SimRandom, UniformIntInclusiveRange) {
  SimRandom rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInt(0, 5);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 5);
    saw_lo |= (v == 0);
    saw_hi |= (v == 5);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(SimRandom, GaussianHasRoughlyCorrectMoments) {
  SimRandom rng(42);
  double sum = 0, sum_sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Gaussian(3.0, 2.0);
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(SimRandom, BernoulliFrequencyTracksP) {
  SimRandom rng(5);
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.03);
}

}  // namespace
}  // namespace pem
