#include "util/fixed_point.h"

#include <gtest/gtest.h>

#include <cmath>

namespace pem {
namespace {

TEST(FixedPoint, RoundTripsPositiveValues) {
  const FixedPoint fp = FixedPoint::FromDouble(1.234567);
  EXPECT_EQ(fp.raw(), 1'234'567);
  EXPECT_DOUBLE_EQ(fp.ToDouble(), 1.234567);
}

TEST(FixedPoint, RoundTripsNegativeValues) {
  const FixedPoint fp = FixedPoint::FromDouble(-0.5);
  EXPECT_EQ(fp.raw(), -500'000);
  EXPECT_DOUBLE_EQ(fp.ToDouble(), -0.5);
}

TEST(FixedPoint, RoundsToNearestUnit) {
  EXPECT_EQ(FixedPoint::FromDouble(0.0000014).raw(), 1);
  EXPECT_EQ(FixedPoint::FromDouble(0.0000016).raw(), 2);
  EXPECT_EQ(FixedPoint::FromDouble(-0.0000016).raw(), -2);
}

TEST(FixedPoint, ZeroIsZero) {
  const FixedPoint fp = FixedPoint::FromDouble(0.0);
  EXPECT_TRUE(fp.IsZero());
  EXPECT_FALSE(fp.IsNegative());
}

TEST(FixedPoint, AdditionMatchesRealAddition) {
  const FixedPoint a = FixedPoint::FromDouble(1.5);
  const FixedPoint b = FixedPoint::FromDouble(2.25);
  EXPECT_DOUBLE_EQ((a + b).ToDouble(), 3.75);
  EXPECT_DOUBLE_EQ((a - b).ToDouble(), -0.75);
}

TEST(FixedPoint, NegationFlipsSign) {
  const FixedPoint a = FixedPoint::FromDouble(2.5);
  EXPECT_DOUBLE_EQ((-a).ToDouble(), -2.5);
  EXPECT_TRUE((-a).IsNegative());
}

TEST(FixedPoint, ComparisonFollowsRealOrder) {
  const FixedPoint a = FixedPoint::FromDouble(1.0);
  const FixedPoint b = FixedPoint::FromDouble(1.000001);
  EXPECT_LT(a, b);
  EXPECT_GT(b, a);
  EXPECT_EQ(a, FixedPoint::FromDouble(1.0));
}

TEST(FixedPoint, CustomScaleSupported) {
  const FixedPoint fp = FixedPoint::FromDouble(3.14, 100);
  EXPECT_EQ(fp.raw(), 314);
  EXPECT_DOUBLE_EQ(fp.ToDouble(), 3.14);
}

TEST(FixedPoint, ToStringFormatsSixDecimals) {
  EXPECT_EQ(FixedPoint::FromDouble(1.5).ToString(), "1.500000");
}

TEST(RoundDiv, RoundsHalfAwayFromZeroForPositives) {
  EXPECT_EQ(RoundDiv(7, 2), 4);   // 3.5 -> 4
  EXPECT_EQ(RoundDiv(6, 4), 2);   // 1.5 -> 2
  EXPECT_EQ(RoundDiv(5, 4), 1);   // 1.25 -> 1
}

TEST(RoundDiv, HandlesNegativeNumerators) {
  EXPECT_EQ(RoundDiv(-7, 2), -4);
  EXPECT_EQ(RoundDiv(-5, 4), -1);
}

TEST(RoundDiv, ExactDivisionIsExact) {
  EXPECT_EQ(RoundDiv(100, 10), 10);
  EXPECT_EQ(RoundDiv(-100, 10), -10);
  EXPECT_EQ(RoundDiv(0, 7), 0);
}

// Property sweep: RoundDiv(n, d) equals llround(n / (double)d) for a
// grid of values (the reciprocal trick in Protocol 4 relies on this).
class RoundDivProperty : public ::testing::TestWithParam<int64_t> {};

TEST_P(RoundDivProperty, MatchesFloatingPointRounding) {
  const int64_t den = GetParam();
  for (int64_t num = -1000; num <= 1000; num += 37) {
    const double expected =
        static_cast<double>(num) / static_cast<double>(den);
    EXPECT_EQ(RoundDiv(num, den), std::llround(expected))
        << "num=" << num << " den=" << den;
  }
}

INSTANTIATE_TEST_SUITE_P(Denominators, RoundDivProperty,
                         ::testing::Values(1, 2, 3, 7, 10, 97, 1000));

}  // namespace
}  // namespace pem
