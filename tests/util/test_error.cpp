#include "util/error.h"

#include <gtest/gtest.h>

namespace pem {
namespace {

TEST(Result, HoldsValue) {
  const Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(Result, HoldsError) {
  const Result<int> r(Error(ErrorCode::kNotFound, "missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code(), ErrorCode::kNotFound);
  EXPECT_EQ(r.error().message(), "missing");
}

TEST(Result, ValueOrFallsBack) {
  const Result<int> ok(7);
  const Result<int> bad(Error(ErrorCode::kInternal, "x"));
  EXPECT_EQ(ok.value_or(-1), 7);
  EXPECT_EQ(bad.value_or(-1), -1);
}

TEST(Result, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  const std::string s = std::move(r).value();
  EXPECT_EQ(s, "hello");
}

TEST(Status, DefaultIsOk) {
  const Status s;
  EXPECT_TRUE(s.ok());
}

TEST(Status, CarriesError) {
  const Status s(Error(ErrorCode::kProtocolViolation, "bad message"));
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.error().code(), ErrorCode::kProtocolViolation);
}

TEST(Error, ToStringIncludesCodeAndMessage) {
  const Error e(ErrorCode::kCryptoFailure, "decrypt failed");
  EXPECT_EQ(e.ToString(), "crypto_failure: decrypt failed");
}

TEST(Error, AllCodesHaveNames) {
  for (ErrorCode c : {ErrorCode::kInvalidArgument, ErrorCode::kOutOfRange,
                      ErrorCode::kCryptoFailure, ErrorCode::kProtocolViolation,
                      ErrorCode::kSerialization, ErrorCode::kNotFound,
                      ErrorCode::kInternal}) {
    EXPECT_STRNE(ErrorCodeName(c), "unknown");
  }
}

TEST(PemCheckDeath, AbortsOnViolation) {
  EXPECT_DEATH(PEM_CHECK(false, "boom"), "boom");
}

TEST(ResultDeath, ValueOnErrorAborts) {
  const Result<int> r(Error(ErrorCode::kInternal, "x"));
  EXPECT_DEATH((void)r.value(), "Result::value");
}

}  // namespace
}  // namespace pem
