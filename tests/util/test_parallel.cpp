#include "util/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace pem {
namespace {

TEST(ParallelFor, CoversEveryIndexOnce) {
  std::vector<std::atomic<int>> hits(100);
  ParallelFor(0, hits.size(), 4, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ParallelFor, RespectsBeginOffset) {
  std::vector<std::atomic<int>> hits(10);
  ParallelFor(3, 7, 2, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), (i >= 3 && i < 7) ? 1 : 0) << i;
  }
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  int calls = 0;
  ParallelFor(5, 5, 4, [&](size_t) { ++calls; });
  ParallelFor(7, 3, 4, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelFor, SingleThreadDegradesToSerialLoop) {
  std::vector<size_t> order;
  ParallelFor(0, 5, 1, [&](size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(ParallelFor, WorkerExceptionPropagatesToCaller) {
  EXPECT_THROW(
      ParallelFor(0, 64, 4,
                  [](size_t i) {
                    if (i == 17) throw std::runtime_error("worker 17 failed");
                  }),
      std::runtime_error);
}

TEST(ParallelFor, ExceptionMessageIsPreserved) {
  try {
    ParallelFor(0, 8, 4, [](size_t) { throw std::runtime_error("boom"); });
    FAIL() << "expected ParallelFor to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom");
  }
}

TEST(ParallelFor, SerialPathAlsoPropagates) {
  EXPECT_THROW(ParallelFor(0, 4, 1,
                           [](size_t i) {
                             if (i == 2) throw std::logic_error("serial");
                           }),
               std::logic_error);
}

TEST(ParallelFor, FailureStopsPickingUpNewWork) {
  // After the failure flag is set, workers abandon their remaining
  // strides; with one worker per index we can only assert the call
  // still joins and rethrows (no hang, no terminate).
  std::atomic<int> executed{0};
  EXPECT_THROW(ParallelFor(0, 1000, 4,
                           [&](size_t i) {
                             executed.fetch_add(1);
                             if (i == 0) throw std::runtime_error("stop");
                           }),
               std::runtime_error);
  EXPECT_GE(executed.load(), 1);
}

TEST(ParallelFor, MoreThreadsThanWorkItems) {
  std::vector<std::atomic<int>> hits(3);
  ParallelFor(0, hits.size(), 16, [&](size_t i) { hits[i].fetch_add(1); });
  int total = 0;
  for (auto& h : hits) total += h.load();
  EXPECT_EQ(total, 3);
}

TEST(DefaultThreads, AtLeastOne) { EXPECT_GE(DefaultThreads(), 1u); }

}  // namespace
}  // namespace pem
