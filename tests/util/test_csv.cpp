#include "util/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace pem {
namespace {

std::string ReadAll(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

class CsvTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "/pem_csv_test.csv";

  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(CsvTest, WritesHeaderAndRows) {
  {
    CsvWriter w(path_, {"a", "b"});
    ASSERT_TRUE(w.ok());
    w.Row({"1", "2"});
    w.Row({"x", "y"});
  }
  EXPECT_EQ(ReadAll(path_), "a,b\n1,2\nx,y\n");
}

TEST_F(CsvTest, EmptyRowProducesBlankLine) {
  {
    CsvWriter w(path_, {"only"});
    w.Row({});
  }
  EXPECT_EQ(ReadAll(path_), "only\n\n");
}

TEST(CsvWriter, BadPathDegradesToNoop) {
  CsvWriter w("/nonexistent_dir_zzz/file.csv", {"h"});
  EXPECT_FALSE(w.ok());
  w.Row({"ignored"});  // must not crash
}

TEST(CsvWriter, NumFormatsDoubles) {
  EXPECT_EQ(CsvWriter::Num(1.5), "1.5");
  EXPECT_EQ(CsvWriter::Num(0.000001), "1e-06");
}

TEST(CsvWriter, NumFormatsIntegers) {
  EXPECT_EQ(CsvWriter::Num(int64_t{42}), "42");
  EXPECT_EQ(CsvWriter::Num(int64_t{-7}), "-7");
}

}  // namespace
}  // namespace pem
