#include "crypto/commitment.h"

#include <gtest/gtest.h>

#include "crypto/rng.h"

namespace pem::crypto {
namespace {

TEST(Commitment, HonestOpeningVerifies) {
  DeterministicRng rng(1);
  const std::vector<uint8_t> value = {1, 2, 3, 4};
  const CommitmentOpening opening = MakeOpening(value, rng);
  const Commitment c = Commit(opening.value, opening.blinder);
  EXPECT_TRUE(VerifyOpening(c, opening));
}

TEST(Commitment, TamperedValueFails) {
  DeterministicRng rng(2);
  const std::vector<uint8_t> value = {9, 9, 9};
  CommitmentOpening opening = MakeOpening(value, rng);
  const Commitment c = Commit(opening.value, opening.blinder);
  opening.value[0] ^= 1;
  EXPECT_FALSE(VerifyOpening(c, opening));
}

TEST(Commitment, TamperedBlinderFails) {
  DeterministicRng rng(3);
  CommitmentOpening opening = MakeOpening(std::vector<uint8_t>{5}, rng);
  const Commitment c = Commit(opening.value, opening.blinder);
  opening.blinder[31] ^= 0x80;
  EXPECT_FALSE(VerifyOpening(c, opening));
}

TEST(Commitment, HidingAcrossBlinders) {
  // Same value, different blinders -> different digests.
  DeterministicRng rng(4);
  const std::vector<uint8_t> value = {7, 7};
  const CommitmentOpening a = MakeOpening(value, rng);
  const CommitmentOpening b = MakeOpening(value, rng);
  EXPECT_NE(Commit(a.value, a.blinder), Commit(b.value, b.blinder));
}

TEST(Commitment, EmptyValueSupported) {
  DeterministicRng rng(5);
  const CommitmentOpening opening = MakeOpening({}, rng);
  const Commitment c = Commit(opening.value, opening.blinder);
  EXPECT_TRUE(VerifyOpening(c, opening));
}

TEST(Commitment, Int64ConvenienceRoundTrip) {
  DeterministicRng rng(6);
  const CommitmentOpening opening = MakeInt64Opening(-123456789, rng);
  const Commitment c = CommitInt64(
      -123456789, std::span<const uint8_t, 32>(opening.blinder));
  EXPECT_TRUE(VerifyOpening(c, opening));
  // A different value under the same blinder must not verify.
  const Commitment wrong = CommitInt64(
      -123456788, std::span<const uint8_t, 32>(opening.blinder));
  EXPECT_FALSE(VerifyOpening(wrong, opening));
}

TEST(Commitment, BindsAcrossValueBlinderBoundary) {
  // (value=[1,2], blinder starting 3...) vs (value=[1,2,3], shifted
  // blinder) must differ — the KDF length-prefixing guarantees it.
  DeterministicRng rng(7);
  CommitmentOpening a = MakeOpening(std::vector<uint8_t>{1, 2}, rng);
  const Commitment ca = Commit(a.value, a.blinder);
  CommitmentOpening b = a;
  b.value.push_back(a.blinder[0]);
  // b's blinder would need to shift — any such confusion must fail.
  EXPECT_FALSE(VerifyOpening(ca, b));
}

}  // namespace
}  // namespace pem::crypto
