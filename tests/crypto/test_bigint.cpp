#include "crypto/bigint.h"

#include <gtest/gtest.h>

#include "crypto/rng.h"

namespace pem::crypto {
namespace {

TEST(BigInt, DefaultIsZero) {
  const BigInt z;
  EXPECT_TRUE(z.IsZero());
  EXPECT_EQ(z.BitLength(), 0u);
}

TEST(BigInt, Int64RoundTrip) {
  for (int64_t v : {int64_t{0}, int64_t{1}, int64_t{-1}, int64_t{1} << 40,
                    int64_t{-(int64_t{1} << 40)}, INT64_MAX, INT64_MIN + 1}) {
    EXPECT_EQ(BigInt(v).ToInt64(), v) << v;
  }
}

TEST(BigInt, Int64MinHandled) {
  // INT64_MIN negation is UB in naive code; the assignment path avoids it.
  const BigInt v(INT64_MIN);
  EXPECT_TRUE(v.IsNegative());
  EXPECT_EQ(v.ToDecString(), "-9223372036854775808");
}

TEST(BigInt, DecStringRoundTrip) {
  const std::string s = "123456789012345678901234567890";
  EXPECT_EQ(BigInt::FromDecString(s).ToDecString(), s);
}

TEST(BigInt, HexStringRoundTrip) {
  const std::string s = "deadbeefcafe1234567890abcdef";
  EXPECT_EQ(BigInt::FromHexString(s).ToHexString(), s);
}

TEST(BigInt, BasicArithmetic) {
  const BigInt a(100), b(7);
  EXPECT_EQ((a + b).ToInt64(), 107);
  EXPECT_EQ((a - b).ToInt64(), 93);
  EXPECT_EQ((a * b).ToInt64(), 700);
  EXPECT_EQ((a / b).ToInt64(), 14);  // floor
  EXPECT_EQ((a % b).ToInt64(), 2);
  EXPECT_EQ((-a).ToInt64(), -100);
}

TEST(BigInt, ModIsAlwaysNonNegative) {
  EXPECT_EQ((BigInt(-5) % BigInt(3)).ToInt64(), 1);
  EXPECT_EQ((BigInt(-6) % BigInt(3)).ToInt64(), 0);
}

TEST(BigInt, CompoundAssignment) {
  BigInt a(10);
  a += BigInt(5);
  EXPECT_EQ(a.ToInt64(), 15);
  a -= BigInt(20);
  EXPECT_EQ(a.ToInt64(), -5);
  a *= BigInt(-4);
  EXPECT_EQ(a.ToInt64(), 20);
}

TEST(BigInt, ModularArithmetic) {
  const BigInt m(97);
  EXPECT_EQ(BigInt(90).AddMod(BigInt(10), m).ToInt64(), 3);
  EXPECT_EQ(BigInt(5).SubMod(BigInt(10), m).ToInt64(), 92);
  EXPECT_EQ(BigInt(50).MulMod(BigInt(3), m).ToInt64(), 53);
}

TEST(BigInt, PowModSmallCases) {
  EXPECT_EQ(BigInt(2).PowMod(BigInt(10), BigInt(1000)).ToInt64(), 24);
  EXPECT_EQ(BigInt(3).PowMod(BigInt(0), BigInt(7)).ToInt64(), 1);
}

TEST(BigInt, PowModFermat) {
  // a^(p-1) = 1 mod p for prime p, gcd(a,p)=1.
  const BigInt p(101);
  for (int64_t a = 2; a < 20; ++a) {
    EXPECT_EQ(BigInt(a).PowMod(p - BigInt(1), p).ToInt64(), 1) << a;
  }
}

TEST(BigInt, PowModNegativeExponent) {
  // 3^-1 mod 7 = 5; 3^-2 mod 7 = 25 mod 7 = 4.
  EXPECT_EQ(BigInt(3).PowMod(BigInt(-1), BigInt(7)).ToInt64(), 5);
  EXPECT_EQ(BigInt(3).PowMod(BigInt(-2), BigInt(7)).ToInt64(), 4);
}

TEST(BigInt, InvModCorrect) {
  const BigInt m(97);
  for (int64_t a = 1; a < 97; ++a) {
    const BigInt inv = BigInt(a).InvMod(m);
    EXPECT_EQ(BigInt(a).MulMod(inv, m).ToInt64(), 1) << a;
  }
}

TEST(BigInt, IsInvertibleMod) {
  EXPECT_TRUE(BigInt(3).IsInvertibleMod(BigInt(10)));
  EXPECT_FALSE(BigInt(4).IsInvertibleMod(BigInt(10)));
  EXPECT_FALSE(BigInt(0).IsInvertibleMod(BigInt(10)));
}

TEST(BigInt, GcdLcm) {
  EXPECT_EQ(BigInt(12).Gcd(BigInt(18)).ToInt64(), 6);
  EXPECT_EQ(BigInt(4).Lcm(BigInt(6)).ToInt64(), 12);
  EXPECT_EQ(BigInt(17).Gcd(BigInt(13)).ToInt64(), 1);
}

TEST(BigInt, AbsAndSqrt) {
  EXPECT_EQ(BigInt(-42).Abs().ToInt64(), 42);
  EXPECT_EQ(BigInt(144).Sqrt().ToInt64(), 12);
  EXPECT_EQ(BigInt(150).Sqrt().ToInt64(), 12);  // floor
}

TEST(BigInt, PrimalityKnownValues) {
  EXPECT_TRUE(BigInt(2).IsProbablePrime());
  EXPECT_TRUE(BigInt(97).IsProbablePrime());
  EXPECT_TRUE(BigInt::FromDecString("2305843009213693951").IsProbablePrime());
  EXPECT_FALSE(BigInt(1).IsProbablePrime());
  EXPECT_FALSE(BigInt(100).IsProbablePrime());
}

TEST(BigInt, BitLength) {
  EXPECT_EQ(BigInt(1).BitLength(), 1u);
  EXPECT_EQ(BigInt(255).BitLength(), 8u);
  EXPECT_EQ(BigInt(256).BitLength(), 9u);
}

TEST(BigInt, BytesRoundTrip) {
  const BigInt v = BigInt::FromHexString("0102030405060708090a");
  const std::vector<uint8_t> bytes = v.ToBytes();
  ASSERT_EQ(bytes.size(), 10u);
  EXPECT_EQ(bytes[0], 0x01);
  EXPECT_EQ(bytes[9], 0x0a);
  EXPECT_EQ(BigInt::FromBytes(bytes), v);
}

TEST(BigInt, PaddedBytesPreserveValue) {
  const BigInt v(0x1234);
  const std::vector<uint8_t> padded = v.ToBytesPadded(8);
  ASSERT_EQ(padded.size(), 8u);
  EXPECT_EQ(padded[0], 0);
  EXPECT_EQ(padded[6], 0x12);
  EXPECT_EQ(padded[7], 0x34);
  EXPECT_EQ(BigInt::FromBytes(padded), v);
}

TEST(BigInt, ZeroSerializesEmpty) {
  EXPECT_TRUE(BigInt(0).ToBytes().empty());
  EXPECT_EQ(BigInt::FromBytes({}), BigInt(0));
}

TEST(BigIntRandom, RandomBelowStaysBelow) {
  DeterministicRng rng(1);
  const BigInt bound = BigInt::FromDecString("1000000000000000000000");
  for (int i = 0; i < 200; ++i) {
    const BigInt r = BigInt::RandomBelow(bound, rng);
    EXPECT_LT(r, bound);
    EXPECT_FALSE(r.IsNegative());
  }
}

TEST(BigIntRandom, RandomBelowCoversSmallRangeUniformly) {
  DeterministicRng rng(2);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 5000; ++i) {
    ++counts[static_cast<size_t>(
        BigInt::RandomBelow(BigInt(10), rng).ToInt64())];
  }
  for (int c : counts) EXPECT_GT(c, 350);  // expected 500 each
}

TEST(BigIntRandom, RandomBitsHasExactWidth) {
  DeterministicRng rng(3);
  for (int bits : {8, 17, 64, 129, 512}) {
    const BigInt r = BigInt::RandomBits(bits, rng);
    EXPECT_EQ(r.BitLength(), static_cast<size_t>(bits)) << bits;
  }
}

TEST(BigIntRandom, RandomPrimeIsPrimeWithExactWidth) {
  DeterministicRng rng(4);
  for (int bits : {64, 128, 256}) {
    const BigInt p = BigInt::RandomPrime(bits, rng);
    EXPECT_TRUE(p.IsProbablePrime()) << bits;
    EXPECT_EQ(p.BitLength(), static_cast<size_t>(bits)) << bits;
  }
}

TEST(BigIntRandom, DistinctDrawsDiffer) {
  DeterministicRng rng(5);
  const BigInt a = BigInt::RandomBits(256, rng);
  const BigInt b = BigInt::RandomBits(256, rng);
  EXPECT_NE(a, b);
}

TEST(BigIntDeath, DivisionByZeroAborts) {
  EXPECT_DEATH((void)(BigInt(1) / BigInt(0)), "division by zero");
}

TEST(BigIntDeath, InvModNonInvertibleAborts) {
  EXPECT_DEATH((void)BigInt(4).InvMod(BigInt(10)), "not invertible");
}

TEST(BigIntDeath, ToBytesNegativeAborts) {
  EXPECT_DEATH((void)BigInt(-1).ToBytes(), "negative");
}

// Algebraic property sweep over random operands.
class BigIntAlgebra : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BigIntAlgebra, RingAxiomsHold) {
  DeterministicRng rng(GetParam());
  const BigInt a = BigInt::RandomBits(200, rng);
  const BigInt b = BigInt::RandomBits(180, rng);
  const BigInt c = BigInt::RandomBits(150, rng);
  EXPECT_EQ(a + b, b + a);
  EXPECT_EQ(a * b, b * a);
  EXPECT_EQ((a + b) + c, a + (b + c));
  EXPECT_EQ(a * (b + c), a * b + a * c);
  EXPECT_EQ(a - a, BigInt(0));
}

TEST_P(BigIntAlgebra, DivModIdentity) {
  DeterministicRng rng(GetParam() + 1000);
  const BigInt a = BigInt::RandomBits(200, rng);
  const BigInt b = BigInt::RandomBits(90, rng);
  EXPECT_EQ((a / b) * b + (a % b), a);
}

TEST_P(BigIntAlgebra, PowModMatchesRepeatedMultiplication) {
  DeterministicRng rng(GetParam() + 2000);
  const BigInt base = BigInt::RandomBits(64, rng);
  const BigInt mod = BigInt::RandomBits(64, rng) + BigInt(1);
  BigInt expected(1);
  for (int e = 0; e <= 16; ++e) {
    EXPECT_EQ(base.PowMod(BigInt(e), mod), expected) << "e=" << e;
    expected = expected.MulMod(base, mod);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BigIntAlgebra,
                         ::testing::Values(11, 22, 33, 44, 55));

}  // namespace
}  // namespace pem::crypto
