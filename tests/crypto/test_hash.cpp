#include "crypto/hash.h"

#include <gtest/gtest.h>

namespace pem::crypto {
namespace {

TEST(Sha256, KnownVector) {
  // SHA-256("abc") from FIPS 180-2.
  EXPECT_EQ(
      Sha256(std::string("abc")).Hex(),
      "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, EmptyInputVector) {
  EXPECT_EQ(
      Sha256(std::string("")).Hex(),
      "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Deterministic) {
  EXPECT_EQ(Sha256(std::string("pem")), Sha256(std::string("pem")));
}

TEST(Sha256, SensitiveToInput) {
  EXPECT_NE(Sha256(std::string("a")), Sha256(std::string("b")));
}

TEST(Kdf, TagSeparatesDomains) {
  const uint8_t data[4] = {1, 2, 3, 4};
  const std::span<const uint8_t> chunks[] = {std::span<const uint8_t>(data)};
  EXPECT_NE(Kdf(1, chunks), Kdf(2, chunks));
}

TEST(Kdf, LengthPrefixPreventsConcatenationCollision) {
  // ("ab", "c") must differ from ("a", "bc").
  const uint8_t ab[] = {'a', 'b'};
  const uint8_t c[] = {'c'};
  const uint8_t a[] = {'a'};
  const uint8_t bc[] = {'b', 'c'};
  EXPECT_NE(Kdf2(7, ab, c), Kdf2(7, a, bc));
}

TEST(Kdf, Deterministic) {
  const uint8_t x[] = {9, 9};
  const uint8_t y[] = {8};
  EXPECT_EQ(Kdf2(42, x, y), Kdf2(42, x, y));
}

TEST(Kdf, OrderMatters) {
  const uint8_t x[] = {1};
  const uint8_t y[] = {2};
  EXPECT_NE(Kdf2(0, x, y), Kdf2(0, y, x));
}

}  // namespace
}  // namespace pem::crypto
