#include "crypto/modp_group.h"

#include <gtest/gtest.h>

#include "crypto/rng.h"

namespace pem::crypto {
namespace {

class ModpGroupTest : public ::testing::TestWithParam<ModpGroupId> {};

TEST_P(ModpGroupTest, PrimeIsSafePrime) {
  const ModpGroup& g = ModpGroup::Get(GetParam());
  EXPECT_TRUE(g.p().IsProbablePrime());
  EXPECT_TRUE(g.q().IsProbablePrime());
  EXPECT_EQ(g.p(), g.q() * BigInt(2) + BigInt(1));
}

TEST_P(ModpGroupTest, GeneratorHasOrderQ) {
  const ModpGroup& g = ModpGroup::Get(GetParam());
  // g^q == 1 and g != 1 (so order divides q, a prime, and is not 1).
  EXPECT_EQ(g.Exp(g.g(), g.q()), BigInt(1));
  EXPECT_NE(g.g(), BigInt(1));
}

TEST_P(ModpGroupTest, ExponentLawsHold) {
  const ModpGroup& g = ModpGroup::Get(GetParam());
  DeterministicRng rng(1);
  const BigInt a = g.RandomExponent(rng);
  const BigInt b = g.RandomExponent(rng);
  // g^a * g^b == g^(a+b mod q)
  const BigInt lhs = g.Mul(g.Exp(a), g.Exp(b));
  const BigInt rhs = g.Exp(a.AddMod(b, g.q()));
  EXPECT_EQ(lhs, rhs);
}

TEST_P(ModpGroupTest, DivIsMulInverse) {
  const ModpGroup& g = ModpGroup::Get(GetParam());
  DeterministicRng rng(2);
  const BigInt x = g.Exp(g.RandomExponent(rng));
  const BigInt y = g.Exp(g.RandomExponent(rng));
  EXPECT_EQ(g.Mul(g.Div(x, y), y), x);
  EXPECT_EQ(g.Div(x, x), BigInt(1));
}

TEST_P(ModpGroupTest, RandomExponentInRange) {
  const ModpGroup& g = ModpGroup::Get(GetParam());
  DeterministicRng rng(3);
  for (int i = 0; i < 50; ++i) {
    const BigInt e = g.RandomExponent(rng);
    EXPECT_FALSE(e.IsZero());
    EXPECT_LT(e, g.q());
  }
}

TEST_P(ModpGroupTest, ElementBytesMatchesPrimeWidth) {
  const ModpGroup& g = ModpGroup::Get(GetParam());
  EXPECT_EQ(g.element_bytes(), (g.p().BitLength() + 7) / 8);
}

INSTANTIATE_TEST_SUITE_P(AllGroups, ModpGroupTest,
                         ::testing::Values(ModpGroupId::kModp768,
                                           ModpGroupId::kModp1536,
                                           ModpGroupId::kModp2048));

TEST(ModpGroup, KnownWidths) {
  EXPECT_EQ(ModpGroup::Get(ModpGroupId::kModp768).p().BitLength(), 768u);
  EXPECT_EQ(ModpGroup::Get(ModpGroupId::kModp1536).p().BitLength(), 1536u);
  EXPECT_EQ(ModpGroup::Get(ModpGroupId::kModp2048).p().BitLength(), 2048u);
}

}  // namespace
}  // namespace pem::crypto
