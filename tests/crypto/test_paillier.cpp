#include "crypto/paillier.h"

#include <gtest/gtest.h>

#include "crypto/rng.h"
#include "net/serialize.h"

namespace pem::crypto {
namespace {

// 256-bit keys keep the unit tests fast; the parameterized suite below
// also exercises 512-bit.  Production sizes are covered by the benches.
PaillierKeyPair TestKeys(int bits = 256, uint64_t seed = 1) {
  DeterministicRng rng(seed);
  return GeneratePaillierKeyPair(bits, rng);
}

TEST(Paillier, KeyGenerationProducesExactModulusWidth) {
  const PaillierKeyPair kp = TestKeys(256);
  EXPECT_EQ(kp.pub.n().BitLength(), 256u);
  EXPECT_EQ(kp.pub.key_bits(), 256);
  EXPECT_EQ(kp.pub.ciphertext_bytes(), 64u);
}

TEST(Paillier, EncryptDecryptRoundTrip) {
  const PaillierKeyPair kp = TestKeys();
  DeterministicRng rng(2);
  for (int64_t m : {int64_t{0}, int64_t{1}, int64_t{42},
                    int64_t{1} << 40, int64_t{123456789}}) {
    const PaillierCiphertext ct = kp.pub.Encrypt(BigInt(m), rng);
    EXPECT_EQ(kp.priv.Decrypt(ct).ToInt64(), m) << m;
  }
}

TEST(Paillier, SignedEncodingRoundTrip) {
  const PaillierKeyPair kp = TestKeys();
  DeterministicRng rng(3);
  for (int64_t m : {int64_t{0}, int64_t{5}, int64_t{-5}, int64_t{-1},
                    int64_t{1} << 50, -(int64_t{1} << 50)}) {
    const PaillierCiphertext ct = kp.pub.EncryptSigned(m, rng);
    EXPECT_EQ(kp.priv.DecryptSigned(ct), m) << m;
  }
}

TEST(Paillier, EncryptionIsProbabilistic) {
  const PaillierKeyPair kp = TestKeys();
  DeterministicRng rng(4);
  const PaillierCiphertext a = kp.pub.Encrypt(BigInt(7), rng);
  const PaillierCiphertext b = kp.pub.Encrypt(BigInt(7), rng);
  EXPECT_NE(a.value, b.value);
  EXPECT_EQ(kp.priv.Decrypt(a), kp.priv.Decrypt(b));
}

TEST(Paillier, HomomorphicAddition) {
  const PaillierKeyPair kp = TestKeys();
  DeterministicRng rng(5);
  const PaillierCiphertext a = kp.pub.Encrypt(BigInt(1234), rng);
  const PaillierCiphertext b = kp.pub.Encrypt(BigInt(8766), rng);
  EXPECT_EQ(kp.priv.Decrypt(kp.pub.Add(a, b)).ToInt64(), 10000);
}

TEST(Paillier, HomomorphicAdditionWithNegatives) {
  const PaillierKeyPair kp = TestKeys();
  DeterministicRng rng(6);
  const PaillierCiphertext a = kp.pub.EncryptSigned(-500, rng);
  const PaillierCiphertext b = kp.pub.EncryptSigned(200, rng);
  EXPECT_EQ(kp.priv.DecryptSigned(kp.pub.Add(a, b)), -300);
}

TEST(Paillier, ScalarMultiplication) {
  const PaillierKeyPair kp = TestKeys();
  DeterministicRng rng(7);
  const PaillierCiphertext a = kp.pub.Encrypt(BigInt(111), rng);
  EXPECT_EQ(kp.priv.Decrypt(kp.pub.ScalarMul(a, BigInt(9))).ToInt64(), 999);
}

TEST(Paillier, ScalarMultiplicationByZeroAndOne) {
  const PaillierKeyPair kp = TestKeys();
  DeterministicRng rng(8);
  const PaillierCiphertext a = kp.pub.Encrypt(BigInt(55), rng);
  EXPECT_EQ(kp.priv.Decrypt(kp.pub.ScalarMul(a, BigInt(0))).ToInt64(), 0);
  EXPECT_EQ(kp.priv.Decrypt(kp.pub.ScalarMul(a, BigInt(1))).ToInt64(), 55);
}

TEST(Paillier, NegativeScalarMultiplication) {
  const PaillierKeyPair kp = TestKeys();
  DeterministicRng rng(9);
  const PaillierCiphertext a = kp.pub.EncryptSigned(40, rng);
  EXPECT_EQ(kp.priv.DecryptSigned(kp.pub.ScalarMul(a, BigInt(-3))), -120);
}

TEST(Paillier, RerandomizeChangesCiphertextNotPlaintext) {
  const PaillierKeyPair kp = TestKeys();
  DeterministicRng rng(10);
  const PaillierCiphertext a = kp.pub.Encrypt(BigInt(77), rng);
  const PaillierCiphertext b = kp.pub.Rerandomize(a, rng);
  EXPECT_NE(a.value, b.value);
  EXPECT_EQ(kp.priv.Decrypt(b).ToInt64(), 77);
}

TEST(Paillier, EncryptZeroIsAdditiveIdentity) {
  const PaillierKeyPair kp = TestKeys();
  DeterministicRng rng(11);
  const PaillierCiphertext z = kp.pub.EncryptZero(rng);
  const PaillierCiphertext a = kp.pub.Encrypt(BigInt(31), rng);
  EXPECT_EQ(kp.priv.Decrypt(kp.pub.Add(a, z)).ToInt64(), 31);
}

TEST(Paillier, CrtAndPlainDecryptionAgree) {
  PaillierKeyPair kp = TestKeys();
  DeterministicRng rng(12);
  for (int i = 0; i < 20; ++i) {
    const BigInt m = BigInt::RandomBelow(kp.pub.n(), rng);
    const PaillierCiphertext ct = kp.pub.Encrypt(m, rng);
    kp.priv.set_use_crt(true);
    const BigInt crt = kp.priv.Decrypt(ct);
    kp.priv.set_use_crt(false);
    const BigInt plain = kp.priv.Decrypt(ct);
    EXPECT_EQ(crt, plain);
    EXPECT_EQ(crt, m);
  }
}

TEST(Paillier, LargePlaintextNearModulus) {
  const PaillierKeyPair kp = TestKeys();
  DeterministicRng rng(13);
  const BigInt m = kp.pub.n() - BigInt(1);
  const PaillierCiphertext ct = kp.pub.Encrypt(m, rng);
  EXPECT_EQ(kp.priv.Decrypt(ct), m);
}

TEST(Paillier, SignedDecodeBoundary) {
  const PaillierKeyPair kp = TestKeys();
  // n-1 encodes -1 in the half-range convention.
  EXPECT_EQ(kp.pub.DecodeSigned(kp.pub.n() - BigInt(1)), -1);
  EXPECT_EQ(kp.pub.DecodeSigned(BigInt(0)), 0);
  EXPECT_EQ(kp.pub.DecodeSigned(BigInt(12345)), 12345);
}

TEST(Paillier, DistinctSeedsGiveDistinctKeys) {
  const PaillierKeyPair a = TestKeys(256, 100);
  const PaillierKeyPair b = TestKeys(256, 200);
  EXPECT_NE(a.pub.n(), b.pub.n());
}

TEST(PaillierDeath, PlaintextOutOfRangeAborts) {
  const PaillierKeyPair kp = TestKeys();
  DeterministicRng rng(14);
  EXPECT_DEATH((void)kp.pub.Encrypt(kp.pub.n(), rng), "out of range");
}

TEST(PaillierDeath, OddKeyBitsAborts) {
  DeterministicRng rng(15);
  EXPECT_DEATH((void)GeneratePaillierKeyPair(255, rng), "even");
}

// The market protocols aggregate hundreds of signed fixed-point values
// multiplicatively; this sweep checks long homomorphic chains at
// several key sizes.
class PaillierAggregation
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(PaillierAggregation, LongAdditiveChainsDecryptToExactSums) {
  const auto [bits, seed] = GetParam();
  DeterministicRng rng(seed);
  const PaillierKeyPair kp = GeneratePaillierKeyPair(bits, rng);
  int64_t expected = 0;
  PaillierCiphertext acc = kp.pub.EncryptZero(rng);
  for (int i = 0; i < 60; ++i) {
    // Mix of positive and negative contributions, like net energies.
    const int64_t v = (i % 3 == 0 ? -1 : 1) * (1000 + 37 * i);
    expected += v;
    acc = kp.pub.Add(acc, kp.pub.EncryptSigned(v, rng));
  }
  EXPECT_EQ(kp.priv.DecryptSigned(acc), expected);
}

TEST_P(PaillierAggregation, ScalarChainMatchesInt128Math) {
  const auto [bits, seed] = GetParam();
  DeterministicRng rng(seed + 1);
  const PaillierKeyPair kp = GeneratePaillierKeyPair(bits, rng);
  const int64_t base = 123456;
  const int64_t scalar = int64_t{1} << 30;
  const PaillierCiphertext ct =
      kp.pub.ScalarMul(kp.pub.EncryptSigned(base, rng), BigInt(scalar));
  // base * 2^30 exceeds int32 but fits int64.
  EXPECT_EQ(kp.priv.DecryptSigned(ct), base * scalar);
}

INSTANTIATE_TEST_SUITE_P(
    KeySizes, PaillierAggregation,
    ::testing::Combine(::testing::Values(128, 256, 512),
                       ::testing::Values(uint64_t{17}, uint64_t{18})));

TEST(PaillierDeterministic, EncryptWithRandomnessIsReproducible) {
  const PaillierKeyPair kp = TestKeys();
  const BigInt r(12345);
  const PaillierCiphertext a = kp.pub.EncryptWithRandomness(BigInt(77), r);
  const PaillierCiphertext b = kp.pub.EncryptWithRandomness(BigInt(77), r);
  EXPECT_EQ(a.value, b.value);
  EXPECT_EQ(kp.priv.Decrypt(a).ToInt64(), 77);
}

TEST(PaillierDeterministic, DifferentRandomnessDifferentCiphertext) {
  const PaillierKeyPair kp = TestKeys();
  const PaillierCiphertext a =
      kp.pub.EncryptWithRandomness(BigInt(77), BigInt(111));
  const PaillierCiphertext b =
      kp.pub.EncryptWithRandomness(BigInt(77), BigInt(222));
  EXPECT_NE(a.value, b.value);
}

TEST(PaillierDeterministicDeath, NonUnitRandomnessAborts) {
  const PaillierKeyPair kp = TestKeys();
  EXPECT_DEATH((void)kp.pub.EncryptWithRandomness(BigInt(1), BigInt(0)),
               "unit");
}

TEST(PaillierPool, RefillReachesTarget) {
  const PaillierKeyPair kp = TestKeys();
  DeterministicRng rng(30);
  PaillierRandomnessPool pool(kp.pub);
  EXPECT_EQ(pool.available(), 0u);
  pool.Refill(16, rng);
  EXPECT_EQ(pool.available(), 16u);
  pool.Refill(8, rng);  // never shrinks
  EXPECT_EQ(pool.available(), 16u);
}

TEST(PaillierPool, PooledCiphertextsDecryptCorrectly) {
  const PaillierKeyPair kp = TestKeys();
  DeterministicRng rng(31);
  PaillierRandomnessPool pool(kp.pub);
  pool.Refill(10, rng);
  for (int64_t v : {int64_t{5}, int64_t{-5}, int64_t{0}, int64_t{1} << 40}) {
    EXPECT_EQ(kp.priv.DecryptSigned(pool.EncryptSigned(v, rng)), v);
  }
  EXPECT_EQ(pool.available(), 6u);  // four factors consumed
}

TEST(PaillierPool, DryPoolFallsBackToFreshRandomness) {
  const PaillierKeyPair kp = TestKeys();
  DeterministicRng rng(32);
  PaillierRandomnessPool pool(kp.pub);  // never refilled
  const PaillierCiphertext ct = pool.EncryptSigned(99, rng);
  EXPECT_EQ(kp.priv.DecryptSigned(ct), 99);
}

TEST(PaillierPool, PooledEncryptionsStayProbabilistic) {
  const PaillierKeyPair kp = TestKeys();
  DeterministicRng rng(33);
  PaillierRandomnessPool pool(kp.pub);
  pool.Refill(2, rng);
  const PaillierCiphertext a = pool.EncryptSigned(7, rng);
  const PaillierCiphertext b = pool.EncryptSigned(7, rng);
  EXPECT_NE(a.value, b.value);
}

TEST(PaillierPoolRegistry, OnePoolPerModulus) {
  DeterministicRng rng(34);
  const PaillierKeyPair a = GeneratePaillierKeyPair(128, rng);
  const PaillierKeyPair b = GeneratePaillierKeyPair(128, rng);
  PaillierPoolRegistry registry;
  PaillierRandomnessPool& pa1 = registry.PoolFor(a.pub);
  PaillierRandomnessPool& pb = registry.PoolFor(b.pub);
  PaillierRandomnessPool& pa2 = registry.PoolFor(a.pub);
  EXPECT_EQ(&pa1, &pa2);
  EXPECT_NE(&pa1, &pb);
  EXPECT_EQ(registry.pool_count(), 2u);
}

TEST(PaillierSerialization, PublicKeyRoundTrip) {
  const PaillierKeyPair kp = TestKeys();
  const std::vector<uint8_t> bytes = kp.pub.Serialize();
  const Result<PaillierPublicKey> back = PaillierPublicKey::Deserialize(bytes);
  ASSERT_TRUE(back.ok()) << back.error().ToString();
  EXPECT_EQ(back.value(), kp.pub);
  // The deserialized key encrypts for the original private key.
  DeterministicRng rng(40);
  EXPECT_EQ(kp.priv.DecryptSigned(back.value().EncryptSigned(-99, rng)), -99);
}

TEST(PaillierSerialization, PrivateKeyRoundTrip) {
  const PaillierKeyPair kp = TestKeys();
  const Result<PaillierPrivateKey> back =
      PaillierPrivateKey::Deserialize(kp.priv.Serialize());
  ASSERT_TRUE(back.ok()) << back.error().ToString();
  DeterministicRng rng(41);
  const PaillierCiphertext ct = kp.pub.EncryptSigned(123456, rng);
  EXPECT_EQ(back.value().DecryptSigned(ct), 123456);
}

TEST(PaillierSerialization, RejectsTruncatedPublicKey) {
  const PaillierKeyPair kp = TestKeys();
  std::vector<uint8_t> bytes = kp.pub.Serialize();
  bytes.resize(bytes.size() / 2);
  EXPECT_FALSE(PaillierPublicKey::Deserialize(bytes).ok());
  EXPECT_FALSE(PaillierPublicKey::Deserialize({}).ok());
}

TEST(PaillierSerialization, RejectsWidthMismatch) {
  const PaillierKeyPair kp = TestKeys();
  std::vector<uint8_t> bytes = kp.pub.Serialize();
  bytes[0] = 0x00;  // claim a different key_bits
  bytes[1] = 0x02;  // 512
  EXPECT_FALSE(PaillierPublicKey::Deserialize(bytes).ok());
}

TEST(PaillierSerialization, RejectsTrailingGarbage) {
  const PaillierKeyPair kp = TestKeys();
  std::vector<uint8_t> bytes = kp.pub.Serialize();
  bytes.push_back(0xFF);
  EXPECT_FALSE(PaillierPublicKey::Deserialize(bytes).ok());
}

TEST(PaillierSerialization, RejectsInconsistentPrimes) {
  const PaillierKeyPair a = TestKeys(256, 50);
  const PaillierKeyPair b = TestKeys(256, 60);
  // Splice a's public key with b's primes.
  net::ByteWriter w;
  w.Bytes(a.pub.Serialize());
  // Reuse b's private serialization minus its public prefix.
  const std::vector<uint8_t> b_priv = b.priv.Serialize();
  net::ByteReader r(b_priv);
  (void)r.Bytes();  // skip b's public key
  w.Bytes(r.Bytes());
  w.Bytes(r.Bytes());
  const Result<PaillierPrivateKey> spliced =
      PaillierPrivateKey::Deserialize(w.data());
  ASSERT_FALSE(spliced.ok());
  EXPECT_NE(spliced.error().message().find("inconsistent"),
            std::string::npos);
}

TEST(PaillierPoolRegistry, RefillAllTopsUpEveryPool) {
  DeterministicRng rng(35);
  const PaillierKeyPair a = GeneratePaillierKeyPair(128, rng);
  const PaillierKeyPair b = GeneratePaillierKeyPair(128, rng);
  PaillierPoolRegistry registry;
  (void)registry.PoolFor(a.pub);
  (void)registry.PoolFor(b.pub);
  registry.RefillAll(5, rng);
  EXPECT_EQ(registry.PoolFor(a.pub).available(), 5u);
  EXPECT_EQ(registry.PoolFor(b.pub).available(), 5u);
}

}  // namespace
}  // namespace pem::crypto
