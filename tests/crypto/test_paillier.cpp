#include "crypto/paillier.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "crypto/rng.h"
#include "net/serialize.h"
#include "net/transport.h"

namespace pem::crypto {
namespace {

// 256-bit keys keep the unit tests fast; the parameterized suite below
// also exercises 512-bit.  Production sizes are covered by the benches.
PaillierKeyPair TestKeys(int bits = 256, uint64_t seed = 1) {
  DeterministicRng rng(seed);
  return GeneratePaillierKeyPair(bits, rng);
}

TEST(Paillier, KeyGenerationProducesExactModulusWidth) {
  const PaillierKeyPair kp = TestKeys(256);
  EXPECT_EQ(kp.pub.n().BitLength(), 256u);
  EXPECT_EQ(kp.pub.key_bits(), 256);
  EXPECT_EQ(kp.pub.ciphertext_bytes(), 64u);
}

TEST(Paillier, EncryptDecryptRoundTrip) {
  const PaillierKeyPair kp = TestKeys();
  DeterministicRng rng(2);
  for (int64_t m : {int64_t{0}, int64_t{1}, int64_t{42},
                    int64_t{1} << 40, int64_t{123456789}}) {
    const PaillierCiphertext ct = kp.pub.Encrypt(BigInt(m), rng);
    EXPECT_EQ(kp.priv.Decrypt(ct).ToInt64(), m) << m;
  }
}

TEST(Paillier, SignedEncodingRoundTrip) {
  const PaillierKeyPair kp = TestKeys();
  DeterministicRng rng(3);
  for (int64_t m : {int64_t{0}, int64_t{5}, int64_t{-5}, int64_t{-1},
                    int64_t{1} << 50, -(int64_t{1} << 50)}) {
    const PaillierCiphertext ct = kp.pub.EncryptSigned(m, rng);
    EXPECT_EQ(kp.priv.DecryptSigned(ct), m) << m;
  }
}

TEST(Paillier, EncryptionIsProbabilistic) {
  const PaillierKeyPair kp = TestKeys();
  DeterministicRng rng(4);
  const PaillierCiphertext a = kp.pub.Encrypt(BigInt(7), rng);
  const PaillierCiphertext b = kp.pub.Encrypt(BigInt(7), rng);
  EXPECT_NE(a.value, b.value);
  EXPECT_EQ(kp.priv.Decrypt(a), kp.priv.Decrypt(b));
}

TEST(Paillier, HomomorphicAddition) {
  const PaillierKeyPair kp = TestKeys();
  DeterministicRng rng(5);
  const PaillierCiphertext a = kp.pub.Encrypt(BigInt(1234), rng);
  const PaillierCiphertext b = kp.pub.Encrypt(BigInt(8766), rng);
  EXPECT_EQ(kp.priv.Decrypt(kp.pub.Add(a, b)).ToInt64(), 10000);
}

TEST(Paillier, HomomorphicAdditionWithNegatives) {
  const PaillierKeyPair kp = TestKeys();
  DeterministicRng rng(6);
  const PaillierCiphertext a = kp.pub.EncryptSigned(-500, rng);
  const PaillierCiphertext b = kp.pub.EncryptSigned(200, rng);
  EXPECT_EQ(kp.priv.DecryptSigned(kp.pub.Add(a, b)), -300);
}

TEST(Paillier, ScalarMultiplication) {
  const PaillierKeyPair kp = TestKeys();
  DeterministicRng rng(7);
  const PaillierCiphertext a = kp.pub.Encrypt(BigInt(111), rng);
  EXPECT_EQ(kp.priv.Decrypt(kp.pub.ScalarMul(a, BigInt(9))).ToInt64(), 999);
}

TEST(Paillier, ScalarMultiplicationByZeroAndOne) {
  const PaillierKeyPair kp = TestKeys();
  DeterministicRng rng(8);
  const PaillierCiphertext a = kp.pub.Encrypt(BigInt(55), rng);
  EXPECT_EQ(kp.priv.Decrypt(kp.pub.ScalarMul(a, BigInt(0))).ToInt64(), 0);
  EXPECT_EQ(kp.priv.Decrypt(kp.pub.ScalarMul(a, BigInt(1))).ToInt64(), 55);
}

TEST(Paillier, NegativeScalarMultiplication) {
  const PaillierKeyPair kp = TestKeys();
  DeterministicRng rng(9);
  const PaillierCiphertext a = kp.pub.EncryptSigned(40, rng);
  EXPECT_EQ(kp.priv.DecryptSigned(kp.pub.ScalarMul(a, BigInt(-3))), -120);
}

TEST(Paillier, RerandomizeChangesCiphertextNotPlaintext) {
  const PaillierKeyPair kp = TestKeys();
  DeterministicRng rng(10);
  const PaillierCiphertext a = kp.pub.Encrypt(BigInt(77), rng);
  const PaillierCiphertext b = kp.pub.Rerandomize(a, rng);
  EXPECT_NE(a.value, b.value);
  EXPECT_EQ(kp.priv.Decrypt(b).ToInt64(), 77);
}

TEST(Paillier, EncryptZeroIsAdditiveIdentity) {
  const PaillierKeyPair kp = TestKeys();
  DeterministicRng rng(11);
  const PaillierCiphertext z = kp.pub.EncryptZero(rng);
  const PaillierCiphertext a = kp.pub.Encrypt(BigInt(31), rng);
  EXPECT_EQ(kp.priv.Decrypt(kp.pub.Add(a, z)).ToInt64(), 31);
}

TEST(Paillier, CrtAndPlainDecryptionAgree) {
  PaillierKeyPair kp = TestKeys();
  DeterministicRng rng(12);
  for (int i = 0; i < 20; ++i) {
    const BigInt m = BigInt::RandomBelow(kp.pub.n(), rng);
    const PaillierCiphertext ct = kp.pub.Encrypt(m, rng);
    kp.priv.set_use_crt(true);
    const BigInt crt = kp.priv.Decrypt(ct);
    kp.priv.set_use_crt(false);
    const BigInt plain = kp.priv.Decrypt(ct);
    EXPECT_EQ(crt, plain);
    EXPECT_EQ(crt, m);
  }
}

TEST(Paillier, LargePlaintextNearModulus) {
  const PaillierKeyPair kp = TestKeys();
  DeterministicRng rng(13);
  const BigInt m = kp.pub.n() - BigInt(1);
  const PaillierCiphertext ct = kp.pub.Encrypt(m, rng);
  EXPECT_EQ(kp.priv.Decrypt(ct), m);
}

TEST(Paillier, SignedDecodeBoundary) {
  const PaillierKeyPair kp = TestKeys();
  // n-1 encodes -1 in the half-range convention.
  EXPECT_EQ(kp.pub.DecodeSigned(kp.pub.n() - BigInt(1)), -1);
  EXPECT_EQ(kp.pub.DecodeSigned(BigInt(0)), 0);
  EXPECT_EQ(kp.pub.DecodeSigned(BigInt(12345)), 12345);
}

TEST(Paillier, DistinctSeedsGiveDistinctKeys) {
  const PaillierKeyPair a = TestKeys(256, 100);
  const PaillierKeyPair b = TestKeys(256, 200);
  EXPECT_NE(a.pub.n(), b.pub.n());
}

TEST(PaillierDeath, PlaintextOutOfRangeAborts) {
  const PaillierKeyPair kp = TestKeys();
  DeterministicRng rng(14);
  EXPECT_DEATH((void)kp.pub.Encrypt(kp.pub.n(), rng), "out of range");
}

TEST(PaillierDeath, OddKeyBitsAborts) {
  DeterministicRng rng(15);
  EXPECT_DEATH((void)GeneratePaillierKeyPair(255, rng), "even");
}

// The market protocols aggregate hundreds of signed fixed-point values
// multiplicatively; this sweep checks long homomorphic chains at
// several key sizes.
class PaillierAggregation
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(PaillierAggregation, LongAdditiveChainsDecryptToExactSums) {
  const auto [bits, seed] = GetParam();
  DeterministicRng rng(seed);
  const PaillierKeyPair kp = GeneratePaillierKeyPair(bits, rng);
  int64_t expected = 0;
  PaillierCiphertext acc = kp.pub.EncryptZero(rng);
  for (int i = 0; i < 60; ++i) {
    // Mix of positive and negative contributions, like net energies.
    const int64_t v = (i % 3 == 0 ? -1 : 1) * (1000 + 37 * i);
    expected += v;
    acc = kp.pub.Add(acc, kp.pub.EncryptSigned(v, rng));
  }
  EXPECT_EQ(kp.priv.DecryptSigned(acc), expected);
}

TEST_P(PaillierAggregation, ScalarChainMatchesInt128Math) {
  const auto [bits, seed] = GetParam();
  DeterministicRng rng(seed + 1);
  const PaillierKeyPair kp = GeneratePaillierKeyPair(bits, rng);
  const int64_t base = 123456;
  const int64_t scalar = int64_t{1} << 30;
  const PaillierCiphertext ct =
      kp.pub.ScalarMul(kp.pub.EncryptSigned(base, rng), BigInt(scalar));
  // base * 2^30 exceeds int32 but fits int64.
  EXPECT_EQ(kp.priv.DecryptSigned(ct), base * scalar);
}

INSTANTIATE_TEST_SUITE_P(
    KeySizes, PaillierAggregation,
    ::testing::Combine(::testing::Values(128, 256, 512),
                       ::testing::Values(uint64_t{17}, uint64_t{18})));

TEST(PaillierDeterministic, EncryptWithRandomnessIsReproducible) {
  const PaillierKeyPair kp = TestKeys();
  const BigInt r(12345);
  const PaillierCiphertext a = kp.pub.EncryptWithRandomness(BigInt(77), r);
  const PaillierCiphertext b = kp.pub.EncryptWithRandomness(BigInt(77), r);
  EXPECT_EQ(a.value, b.value);
  EXPECT_EQ(kp.priv.Decrypt(a).ToInt64(), 77);
}

TEST(PaillierDeterministic, DifferentRandomnessDifferentCiphertext) {
  const PaillierKeyPair kp = TestKeys();
  const PaillierCiphertext a =
      kp.pub.EncryptWithRandomness(BigInt(77), BigInt(111));
  const PaillierCiphertext b =
      kp.pub.EncryptWithRandomness(BigInt(77), BigInt(222));
  EXPECT_NE(a.value, b.value);
}

TEST(PaillierDeterministicDeath, NonUnitRandomnessAborts) {
  const PaillierKeyPair kp = TestKeys();
  EXPECT_DEATH((void)kp.pub.EncryptWithRandomness(BigInt(1), BigInt(0)),
               "unit");
}

TEST(PaillierPool, RefillReachesTarget) {
  const PaillierKeyPair kp = TestKeys();
  DeterministicRng rng(30);
  PaillierRandomnessPool pool(kp.pub);
  EXPECT_EQ(pool.available(), 0u);
  pool.Refill(16, rng);
  EXPECT_EQ(pool.available(), 16u);
  pool.Refill(8, rng);  // never shrinks
  EXPECT_EQ(pool.available(), 16u);
}

TEST(PaillierPool, PooledCiphertextsDecryptCorrectly) {
  const PaillierKeyPair kp = TestKeys();
  DeterministicRng rng(31);
  PaillierRandomnessPool pool(kp.pub);
  pool.Refill(10, rng);
  for (int64_t v : {int64_t{5}, int64_t{-5}, int64_t{0}, int64_t{1} << 40}) {
    EXPECT_EQ(kp.priv.DecryptSigned(pool.EncryptSigned(v, rng)), v);
  }
  EXPECT_EQ(pool.available(), 6u);  // four factors consumed
}

TEST(PaillierPool, DryPoolFallsBackToFreshRandomness) {
  const PaillierKeyPair kp = TestKeys();
  DeterministicRng rng(32);
  PaillierRandomnessPool pool(kp.pub);  // never refilled
  const PaillierCiphertext ct = pool.EncryptSigned(99, rng);
  EXPECT_EQ(kp.priv.DecryptSigned(ct), 99);
}

TEST(PaillierPool, PooledEncryptionsStayProbabilistic) {
  const PaillierKeyPair kp = TestKeys();
  DeterministicRng rng(33);
  PaillierRandomnessPool pool(kp.pub);
  pool.Refill(2, rng);
  const PaillierCiphertext a = pool.EncryptSigned(7, rng);
  const PaillierCiphertext b = pool.EncryptSigned(7, rng);
  EXPECT_NE(a.value, b.value);
}

TEST(PaillierPoolRegistry, OnePoolPerModulus) {
  DeterministicRng rng(34);
  const PaillierKeyPair a = GeneratePaillierKeyPair(128, rng);
  const PaillierKeyPair b = GeneratePaillierKeyPair(128, rng);
  PaillierPoolRegistry registry;
  PaillierRandomnessPool& pa1 = registry.PoolFor(a.pub);
  PaillierRandomnessPool& pb = registry.PoolFor(b.pub);
  PaillierRandomnessPool& pa2 = registry.PoolFor(a.pub);
  EXPECT_EQ(&pa1, &pa2);
  EXPECT_NE(&pa1, &pb);
  EXPECT_EQ(registry.pool_count(), 2u);
}

TEST(PaillierSerialization, PublicKeyRoundTrip) {
  const PaillierKeyPair kp = TestKeys();
  const std::vector<uint8_t> bytes = kp.pub.Serialize();
  const Result<PaillierPublicKey> back = PaillierPublicKey::Deserialize(bytes);
  ASSERT_TRUE(back.ok()) << back.error().ToString();
  EXPECT_EQ(back.value(), kp.pub);
  // The deserialized key encrypts for the original private key.
  DeterministicRng rng(40);
  EXPECT_EQ(kp.priv.DecryptSigned(back.value().EncryptSigned(-99, rng)), -99);
}

TEST(PaillierSerialization, PrivateKeyRoundTrip) {
  const PaillierKeyPair kp = TestKeys();
  const Result<PaillierPrivateKey> back =
      PaillierPrivateKey::Deserialize(kp.priv.Serialize());
  ASSERT_TRUE(back.ok()) << back.error().ToString();
  DeterministicRng rng(41);
  const PaillierCiphertext ct = kp.pub.EncryptSigned(123456, rng);
  EXPECT_EQ(back.value().DecryptSigned(ct), 123456);
}

TEST(PaillierSerialization, RejectsTruncatedPublicKey) {
  const PaillierKeyPair kp = TestKeys();
  std::vector<uint8_t> bytes = kp.pub.Serialize();
  bytes.resize(bytes.size() / 2);
  EXPECT_FALSE(PaillierPublicKey::Deserialize(bytes).ok());
  EXPECT_FALSE(PaillierPublicKey::Deserialize({}).ok());
}

TEST(PaillierSerialization, RejectsWidthMismatch) {
  const PaillierKeyPair kp = TestKeys();
  std::vector<uint8_t> bytes = kp.pub.Serialize();
  bytes[0] = 0x00;  // claim a different key_bits
  bytes[1] = 0x02;  // 512
  EXPECT_FALSE(PaillierPublicKey::Deserialize(bytes).ok());
}

TEST(PaillierSerialization, RejectsTrailingGarbage) {
  const PaillierKeyPair kp = TestKeys();
  std::vector<uint8_t> bytes = kp.pub.Serialize();
  bytes.push_back(0xFF);
  EXPECT_FALSE(PaillierPublicKey::Deserialize(bytes).ok());
}

TEST(PaillierSerialization, RejectsInconsistentPrimes) {
  const PaillierKeyPair a = TestKeys(256, 50);
  const PaillierKeyPair b = TestKeys(256, 60);
  // Splice a's public key with b's primes.
  net::ByteWriter w;
  w.Bytes(a.pub.Serialize());
  // Reuse b's private serialization minus its public prefix.
  const std::vector<uint8_t> b_priv = b.priv.Serialize();
  net::ByteReader r(b_priv);
  (void)r.Bytes();  // skip b's public key
  w.Bytes(r.Bytes());
  w.Bytes(r.Bytes());
  const Result<PaillierPrivateKey> spliced =
      PaillierPrivateKey::Deserialize(w.data());
  ASSERT_FALSE(spliced.ok());
  EXPECT_NE(spliced.error().message().find("inconsistent"),
            std::string::npos);
}

TEST(PaillierPoolRegistry, RefillAllTopsUpEveryPool) {
  DeterministicRng rng(35);
  const PaillierKeyPair a = GeneratePaillierKeyPair(128, rng);
  const PaillierKeyPair b = GeneratePaillierKeyPair(128, rng);
  PaillierPoolRegistry registry;
  (void)registry.PoolFor(a.pub);
  (void)registry.PoolFor(b.pub);
  registry.RefillAll(5, rng);
  EXPECT_EQ(registry.PoolFor(a.pub).available(), 5u);
  EXPECT_EQ(registry.PoolFor(b.pub).available(), 5u);
}

// --- owner-side CRT encryption (known-answer parity) ------------------
//
// The tentpole invariant of the CRT encryption fast path: for the SAME
// (m, r) the owner path must produce ciphertexts that are byte-for-byte
// identical to the public full-width path, at every key size the
// protocols use.  If this holds, swapping the fast path in can never
// change a wire transcript.

class PaillierCrtParity : public ::testing::TestWithParam<int> {};

TEST_P(PaillierCrtParity, KnownAnswerByteParityAndRoundTrip) {
  const int bits = GetParam();
  DeterministicRng rng(1000 + static_cast<uint64_t>(bits));
  const PaillierKeyPair kp = GeneratePaillierKeyPair(bits, rng);
  const PaillierCrtEncryptor crt(kp.pub, kp.priv);

  // Fixed (m, r) pairs, deterministic functions of the key.
  const BigInt n = kp.pub.n();
  const std::vector<BigInt> plaintexts = {BigInt(0), BigInt(1),
                                          n - BigInt(1), n / BigInt(3)};
  BigInt r = n / BigInt(7);
  for (const BigInt& m : plaintexts) {
    while (r.IsZero() || !r.IsInvertibleMod(n)) r = r + BigInt(1);
    // The r^n factor itself must be bit-identical...
    EXPECT_EQ(crt.RandomnessFactor(r), r.PowMod(n, kp.pub.n_squared()));
    // ...and so must the assembled ciphertext.
    const PaillierCiphertext pub_ct = kp.pub.EncryptWithRandomness(m, r);
    const PaillierCiphertext crt_ct = crt.EncryptWithRandomness(m, r);
    EXPECT_EQ(crt_ct.value, pub_ct.value);
    const std::vector<uint8_t> pub_bytes =
        pub_ct.value.ToBytesPadded(kp.pub.ciphertext_bytes());
    const std::vector<uint8_t> crt_bytes =
        crt_ct.value.ToBytesPadded(kp.pub.ciphertext_bytes());
    EXPECT_EQ(crt_bytes, pub_bytes);
    // Serialized form round-trips to the same ciphertext and plaintext.
    const PaillierCiphertext back{BigInt::FromBytes(crt_bytes)};
    EXPECT_EQ(back.value, pub_ct.value);
    EXPECT_EQ(kp.priv.Decrypt(back), m);
    r = r + BigInt(1);  // a different unit for the next pair
  }
}

TEST_P(PaillierCrtParity, SampledFactorsMatchFullWidthPath) {
  const int bits = GetParam();
  DeterministicRng rng(2000 + static_cast<uint64_t>(bits));
  const PaillierKeyPair kp = GeneratePaillierKeyPair(bits, rng);
  const PaillierCrtEncryptor crt(kp.priv);
  // Both entry points consume the RNG identically (one r draw), so the
  // same seed must yield the same factor stream.
  DeterministicRng rng_pub(9);
  DeterministicRng rng_crt(9);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(crt.SampleRandomnessFactor(rng_crt),
              kp.pub.SampleRandomnessFactor(rng_pub));
  }
}

INSTANTIATE_TEST_SUITE_P(KeySizes, PaillierCrtParity,
                         ::testing::Values(128, 256, 512, 1024));

TEST(PaillierCrt, EncryptionsDecryptAndStayProbabilistic) {
  const PaillierKeyPair kp = TestKeys();
  const PaillierCrtEncryptor crt(kp.priv);
  DeterministicRng rng(60);
  for (int64_t v : {int64_t{0}, int64_t{7}, int64_t{-7}, int64_t{1} << 40,
                    -(int64_t{1} << 40)}) {
    EXPECT_EQ(kp.priv.DecryptSigned(crt.EncryptSigned(v, rng)), v) << v;
  }
  const PaillierCiphertext a = crt.Encrypt(BigInt(5), rng);
  const PaillierCiphertext b = crt.Encrypt(BigInt(5), rng);
  EXPECT_NE(a.value, b.value);
  EXPECT_EQ(kp.priv.Decrypt(a), kp.priv.Decrypt(b));
}

TEST(PaillierCrt, InteroperatesWithHomomorphicOps) {
  const PaillierKeyPair kp = TestKeys();
  const PaillierCrtEncryptor crt(kp.priv);
  DeterministicRng rng(61);
  // Owner-encrypted and publicly-encrypted ciphertexts mix freely.
  const PaillierCiphertext sum = kp.pub.Add(crt.EncryptSigned(-200, rng),
                                            kp.pub.EncryptSigned(1200, rng));
  EXPECT_EQ(kp.priv.DecryptSigned(sum), 1000);
}

TEST(PaillierCrtDeath, MismatchedPublicKeyAborts) {
  const PaillierKeyPair a = TestKeys(128, 81);
  const PaillierKeyPair b = TestKeys(128, 82);
  EXPECT_DEATH((void)PaillierCrtEncryptor(a.pub, b.priv), "does not match");
}

TEST(PaillierCrtDeath, NonUnitRandomnessAborts) {
  const PaillierKeyPair kp = TestKeys();
  const PaillierCrtEncryptor crt(kp.priv);
  EXPECT_DEATH((void)crt.EncryptWithRandomness(BigInt(1), BigInt(0)), "unit");
  EXPECT_DEATH((void)crt.EncryptWithRandomness(BigInt(1), kp.pub.n()), "unit");
}

// --- refill determinism -----------------------------------------------
//
// The concurrent-refill invariant: the pooled factor sequence — and so
// every transcript downstream of the pool — is identical whatever the
// worker count, and whether or not the owner CRT path computes it.

std::vector<BigInt> DrainFactors(PaillierRandomnessPool& pool) {
  std::vector<BigInt> out;
  while (std::optional<BigInt> f = pool.TakeFactor()) {
    out.push_back(std::move(*f));
  }
  return out;
}

TEST(PaillierPool, RefillThreadCountInvariant) {
  const PaillierKeyPair kp = TestKeys();
  DeterministicRng serial_rng(90);
  PaillierRandomnessPool serial_pool(kp.pub);
  serial_pool.Refill(24, serial_rng);
  const std::vector<BigInt> expected = DrainFactors(serial_pool);
  ASSERT_EQ(expected.size(), 24u);
  for (unsigned threads : {1u, 2u, 8u}) {
    DeterministicRng rng(90);
    PaillierRandomnessPool pool(kp.pub);
    pool.Refill(24, rng, threads);
    EXPECT_EQ(DrainFactors(pool), expected) << threads << " threads";
  }
}

TEST(PaillierPool, CrtRefillProducesIdenticalFactors) {
  const PaillierKeyPair kp = TestKeys();
  DeterministicRng full_rng(91);
  PaillierRandomnessPool full_pool(kp.pub);
  full_pool.Refill(12, full_rng);

  DeterministicRng crt_rng(91);
  PaillierRandomnessPool crt_pool(kp.pub);
  crt_pool.AttachCrtEncryptor(PaillierCrtEncryptor(kp.priv));
  EXPECT_TRUE(crt_pool.has_crt_encryptor());
  crt_pool.Refill(12, crt_rng, /*threads=*/4);

  EXPECT_EQ(DrainFactors(crt_pool), DrainFactors(full_pool));
}

TEST(PaillierPool, IncrementalRefillKeepsEarlierFactors) {
  const PaillierKeyPair kp = TestKeys();
  DeterministicRng rng(92);
  PaillierRandomnessPool pool(kp.pub);
  pool.Refill(4, rng, 2);
  EXPECT_EQ(pool.available(), 4u);
  pool.Refill(10, rng, 2);  // tops up, never recomputes
  EXPECT_EQ(pool.available(), 10u);
  // The first refill's factors must survive verbatim — a same-seed pool
  // stopped at 4 pins down their values.  DrainFactors pops from the
  // back, so the earliest-inserted factors are the drain's tail.
  DeterministicRng pinned_rng(92);
  PaillierRandomnessPool pinned(kp.pub);
  pinned.Refill(4, pinned_rng, 2);
  const std::vector<BigInt> first_four = DrainFactors(pinned);
  const std::vector<BigInt> all = DrainFactors(pool);
  ASSERT_EQ(all.size(), 10u);
  EXPECT_EQ(std::vector<BigInt>(all.end() - 4, all.end()), first_four);
}

TEST(PaillierPoolRegistry, RefillAllThreadAndPolicyInvariant) {
  // Two pools so the sequential cross-pool draw order is exercised.
  const PaillierKeyPair a = TestKeys(128, 93);
  const PaillierKeyPair b = TestKeys(128, 94);

  const auto run = [&](auto refill) {
    PaillierPoolRegistry reg;
    (void)reg.PoolFor(a.pub);
    (void)reg.PoolFor(b.pub);
    reg.AttachOwner(a.priv);  // mixed: one CRT pool, one full-width
    DeterministicRng rng(95);
    refill(reg, rng);
    std::vector<BigInt> all = DrainFactors(reg.PoolFor(a.pub));
    std::vector<BigInt> bs = DrainFactors(reg.PoolFor(b.pub));
    all.insert(all.end(), bs.begin(), bs.end());
    return all;
  };

  const std::vector<BigInt> serial = run(
      [](PaillierPoolRegistry& reg, Rng& rng) { reg.RefillAll(8, rng); });
  ASSERT_EQ(serial.size(), 16u);
  for (unsigned threads : {2u, 8u}) {
    EXPECT_EQ(run([threads](PaillierPoolRegistry& reg, Rng& rng) {
                reg.RefillAll(8, rng, threads);
              }),
              serial)
        << threads << " threads";
  }
  // The ExecutionPolicy overload is the same computation.
  EXPECT_EQ(run([](PaillierPoolRegistry& reg, Rng& rng) {
              reg.RefillAll(8, rng, net::ExecutionPolicy::Parallel(8));
            }),
            serial);
}

TEST(PaillierPoolRegistry, AttachOwnerIsIdempotentAndCreatesPool) {
  const PaillierKeyPair kp = TestKeys(128, 96);
  PaillierPoolRegistry reg;
  reg.AttachOwner(kp.priv);  // creates the pool
  EXPECT_EQ(reg.pool_count(), 1u);
  EXPECT_TRUE(reg.PoolFor(kp.pub).has_crt_encryptor());
  reg.AttachOwner(kp.priv);  // no duplicate pool, no re-attach churn
  EXPECT_EQ(reg.pool_count(), 1u);
}

TEST(PaillierPoolDeath, MismatchedCrtEncryptorAborts) {
  const PaillierKeyPair a = TestKeys(128, 97);
  const PaillierKeyPair b = TestKeys(128, 98);
  PaillierRandomnessPool pool(a.pub);
  EXPECT_DEATH(pool.AttachCrtEncryptor(PaillierCrtEncryptor(b.priv)),
               "different modulus");
}

// --- signed-encoding edges --------------------------------------------

TEST(Paillier, SignedEncodingHalfRangeBoundary) {
  // EncodeSigned/DecodeSigned are pure modular-arithmetic maps, so a
  // tiny (cryptographically useless) modulus makes the ±n/2 boundary
  // reachable: n = 101, half = 50.
  const PaillierPublicKey pk(BigInt(101), 8);
  EXPECT_EQ(pk.EncodeSigned(50), BigInt(50));
  EXPECT_EQ(pk.DecodeSigned(BigInt(50)), 50);  // m == half is positive
  EXPECT_EQ(pk.EncodeSigned(-50), BigInt(51));
  EXPECT_EQ(pk.DecodeSigned(BigInt(51)), -50);  // m == half+1 wraps negative
  EXPECT_EQ(pk.EncodeSigned(-1), BigInt(100));
  EXPECT_EQ(pk.DecodeSigned(BigInt(100)), -1);
  for (int64_t v = -50; v <= 50; ++v) {
    EXPECT_EQ(pk.DecodeSigned(pk.EncodeSigned(v)), v) << v;
  }
}

TEST(Paillier, SignedEncodingInt64Extremes) {
  const PaillierKeyPair kp = TestKeys();
  constexpr int64_t kMax = std::numeric_limits<int64_t>::max();
  constexpr int64_t kMin = std::numeric_limits<int64_t>::min();
  // Raw mapping round-trips (INT64_MIN's magnitude is not a valid
  // int64, so both directions need the unsigned-space handling).
  for (int64_t v : {kMax, kMax - 1, kMin, kMin + 1}) {
    EXPECT_EQ(kp.pub.DecodeSigned(kp.pub.EncodeSigned(v)), v) << v;
  }
  EXPECT_EQ(kp.pub.EncodeSigned(kMin), kp.pub.n() - (BigInt(kMax) + BigInt(1)));
  // And so does the full encrypt/decrypt pipeline, on both the public
  // and the owner-CRT path.
  DeterministicRng rng(99);
  const PaillierCrtEncryptor crt(kp.priv);
  for (int64_t v : {kMax, kMin}) {
    EXPECT_EQ(kp.priv.DecryptSigned(kp.pub.EncryptSigned(v, rng)), v) << v;
    EXPECT_EQ(kp.priv.DecryptSigned(crt.EncryptSigned(v, rng)), v) << v;
  }
}

// --- dry-pool behavior ------------------------------------------------

TEST(PaillierPool, TakeFactorDrainsThenReportsDry) {
  const PaillierKeyPair kp = TestKeys();
  DeterministicRng rng(36);
  PaillierRandomnessPool pool(kp.pub);
  EXPECT_EQ(pool.TakeFactor(), std::nullopt);  // never refilled
  pool.Refill(2, rng);
  EXPECT_TRUE(pool.TakeFactor().has_value());
  EXPECT_TRUE(pool.TakeFactor().has_value());
  EXPECT_EQ(pool.TakeFactor(), std::nullopt);  // dry again
  // Encrypt*() on the drained pool falls back to fresh randomness and
  // still produces valid ciphertexts.
  EXPECT_EQ(kp.priv.DecryptSigned(pool.EncryptSigned(-42, rng)), -42);
  EXPECT_EQ(kp.priv.Decrypt(pool.Encrypt(BigInt(7), rng)).ToInt64(), 7);
  EXPECT_EQ(pool.available(), 0u);
}

// --- private-key deserialization hardening ----------------------------

TEST(PaillierSerialization, RejectsRepeatedPrime) {
  // n = p^2 passes the p*q == n product and primality checks; it must
  // still be rejected (q == p is not invertible mod p, so the CRT
  // tables would abort during construction).
  DeterministicRng rng(70);
  const BigInt p = BigInt::RandomPrime(128, rng);
  const BigInt n = p * p;
  const PaillierPublicKey pk(n, static_cast<int>(n.BitLength()));
  net::ByteWriter w;
  w.Bytes(pk.Serialize());
  w.Bytes(p.ToBytes());
  w.Bytes(p.ToBytes());
  const Result<PaillierPrivateKey> forged =
      PaillierPrivateKey::Deserialize(w.data());
  ASSERT_FALSE(forged.ok());
  EXPECT_NE(forged.error().message().find("distinct"), std::string::npos);
}

TEST(PaillierSerialization, RejectsCompositeFactors) {
  // p' = p*q with a tiny cofactor that keeps p'*q' == n fails the
  // primality check even though the product matches.
  const PaillierKeyPair kp = TestKeys();
  net::ByteWriter w;
  w.Bytes(kp.pub.Serialize());
  w.Bytes(kp.pub.n().ToBytes());  // "p" = n (composite)
  w.Bytes(BigInt(1).ToBytes());   // "q" = 1
  EXPECT_FALSE(PaillierPrivateKey::Deserialize(w.data()).ok());
}

}  // namespace
}  // namespace pem::crypto
