#include "crypto/circuit.h"

#include <gtest/gtest.h>

namespace pem::crypto {
namespace {

TEST(BitHelpers, ToBitsLsbFirst) {
  const std::vector<bool> bits = ToBits(0b1011, 4);
  ASSERT_EQ(bits.size(), 4u);
  EXPECT_TRUE(bits[0]);
  EXPECT_TRUE(bits[1]);
  EXPECT_FALSE(bits[2]);
  EXPECT_TRUE(bits[3]);
}

TEST(BitHelpers, RoundTrip) {
  for (uint64_t v : {uint64_t{0}, uint64_t{1}, uint64_t{0xDEADBEEF},
                     ~uint64_t{0}}) {
    EXPECT_EQ(FromBits(ToBits(v, 64)), v);
  }
}

TEST(CircuitBuilder, XorGateTruthTable) {
  for (int a = 0; a < 2; ++a) {
    for (int b = 0; b < 2; ++b) {
      CircuitBuilder cb(1, 1);
      cb.MarkOutput(cb.Xor(cb.garbler_inputs()[0], cb.evaluator_inputs()[0]));
      const Circuit c = cb.Build();
      EXPECT_EQ(c.EvalPlain({a != 0}, {b != 0})[0], (a ^ b) != 0);
    }
  }
}

TEST(CircuitBuilder, AndOrNotMuxTruthTables) {
  for (int a = 0; a < 2; ++a) {
    for (int b = 0; b < 2; ++b) {
      CircuitBuilder cb(1, 1);
      const int32_t wa = cb.garbler_inputs()[0];
      const int32_t wb = cb.evaluator_inputs()[0];
      cb.MarkOutput(cb.And(wa, wb));
      cb.MarkOutput(cb.Or(wa, wb));
      cb.MarkOutput(cb.Not(wa));
      cb.MarkOutput(cb.Xnor(wa, wb));
      cb.MarkOutput(cb.Mux(wa, wb, cb.Not(wb)));  // a ? b : !b
      const Circuit c = cb.Build();
      const std::vector<bool> out = c.EvalPlain({a != 0}, {b != 0});
      EXPECT_EQ(out[0], (a & b) != 0);
      EXPECT_EQ(out[1], (a | b) != 0);
      EXPECT_EQ(out[2], a == 0);
      EXPECT_EQ(out[3], a == b);
      EXPECT_EQ(out[4], a ? (b != 0) : (b == 0));
    }
  }
}

TEST(LessThanCircuit, ExhaustiveFourBits) {
  const Circuit c = BuildLessThanCircuit(4);
  for (uint64_t x = 0; x < 16; ++x) {
    for (uint64_t y = 0; y < 16; ++y) {
      const std::vector<bool> out = c.EvalPlain(ToBits(x, 4), ToBits(y, 4));
      ASSERT_EQ(out.size(), 1u);
      EXPECT_EQ(out[0], x < y) << x << " < " << y;
    }
  }
}

TEST(LessThanCircuit, SingleBit) {
  const Circuit c = BuildLessThanCircuit(1);
  EXPECT_FALSE(c.EvalPlain({false}, {false})[0]);
  EXPECT_TRUE(c.EvalPlain({false}, {true})[0]);
  EXPECT_FALSE(c.EvalPlain({true}, {false})[0]);
  EXPECT_FALSE(c.EvalPlain({true}, {true})[0]);
}

TEST(LessThanCircuit, SixtyFourBitEdgeCases) {
  const Circuit c = BuildLessThanCircuit(64);
  const uint64_t max = ~uint64_t{0};
  struct Case { uint64_t x, y; };
  for (const Case& t : {Case{0, 0}, Case{0, 1}, Case{1, 0}, Case{max, max},
                        Case{max - 1, max}, Case{max, max - 1},
                        Case{uint64_t{1} << 63, (uint64_t{1} << 63) - 1}}) {
    EXPECT_EQ(c.EvalPlain(ToBits(t.x, 64), ToBits(t.y, 64))[0], t.x < t.y)
        << t.x << " < " << t.y;
  }
}

TEST(LessThanCircuit, AndGateBudget) {
  // 2 ANDs per bit except the first (see circuit.cpp).
  EXPECT_EQ(BuildLessThanCircuit(64).AndGateCount(), 127u);
  EXPECT_EQ(BuildLessThanCircuit(1).AndGateCount(), 1u);
}

TEST(EqualityCircuit, ExhaustiveThreeBits) {
  const Circuit c = BuildEqualityCircuit(3);
  for (uint64_t x = 0; x < 8; ++x) {
    for (uint64_t y = 0; y < 8; ++y) {
      EXPECT_EQ(c.EvalPlain(ToBits(x, 3), ToBits(y, 3))[0], x == y);
    }
  }
}

TEST(AdderCircuit, ExhaustiveFourBits) {
  const Circuit c = BuildAdderCircuit(4);
  for (uint64_t x = 0; x < 16; ++x) {
    for (uint64_t y = 0; y < 16; ++y) {
      const uint64_t sum = FromBits(c.EvalPlain(ToBits(x, 4), ToBits(y, 4)));
      EXPECT_EQ(sum, (x + y) & 0xF) << x << " + " << y;
    }
  }
}

TEST(AdderCircuit, WrapsModulo2ToTheN) {
  const Circuit c = BuildAdderCircuit(8);
  EXPECT_EQ(FromBits(c.EvalPlain(ToBits(200, 8), ToBits(100, 8))), 44u);
}

TEST(SubtractorCircuit, ExhaustiveFourBits) {
  const Circuit c = BuildSubtractorCircuit(4);
  for (uint64_t x = 0; x < 16; ++x) {
    for (uint64_t y = 0; y < 16; ++y) {
      const uint64_t diff = FromBits(c.EvalPlain(ToBits(x, 4), ToBits(y, 4)));
      EXPECT_EQ(diff, (x - y) & 0xF) << x << " - " << y;
    }
  }
}

TEST(SubtractorCircuit, WrapsOnUnderflow) {
  const Circuit c = BuildSubtractorCircuit(8);
  EXPECT_EQ(FromBits(c.EvalPlain(ToBits(3, 8), ToBits(5, 8))), 254u);
}

TEST(SubtractorCircuit, SixteenBitSpotChecks) {
  const Circuit c = BuildSubtractorCircuit(16);
  for (uint64_t x : {uint64_t{0}, uint64_t{1}, uint64_t{40000},
                     uint64_t{65535}}) {
    for (uint64_t y : {uint64_t{0}, uint64_t{1}, uint64_t{12345},
                       uint64_t{65535}}) {
      EXPECT_EQ(FromBits(c.EvalPlain(ToBits(x, 16), ToBits(y, 16))),
                (x - y) & 0xFFFF);
    }
  }
}

TEST(MaxCircuit, ExhaustiveFourBits) {
  const Circuit c = BuildMaxCircuit(4);
  for (uint64_t x = 0; x < 16; ++x) {
    for (uint64_t y = 0; y < 16; ++y) {
      EXPECT_EQ(FromBits(c.EvalPlain(ToBits(x, 4), ToBits(y, 4))),
                std::max(x, y))
          << x << "," << y;
    }
  }
}

TEST(MaxCircuit, EqualInputsReturnEither) {
  const Circuit c = BuildMaxCircuit(8);
  EXPECT_EQ(FromBits(c.EvalPlain(ToBits(77, 8), ToBits(77, 8))), 77u);
}

TEST(Circuit, AndCountMatchesGateList) {
  const Circuit c = BuildAdderCircuit(16);
  size_t manual = 0;
  for (const Gate& g : c.gates) manual += (g.type == GateType::kAnd);
  EXPECT_EQ(c.AndGateCount(), manual);
}

TEST(CircuitDeath, BadWireAborts) {
  CircuitBuilder cb(1, 1);
  EXPECT_DEATH((void)cb.Xor(0, 99), "bad wire");
}

TEST(CircuitDeath, BuildTwiceAborts) {
  CircuitBuilder cb(1, 1);
  cb.MarkOutput(cb.garbler_inputs()[0]);
  (void)cb.Build();
  EXPECT_DEATH((void)cb.Build(), "finalized");
}

TEST(CircuitDeath, InputSizeMismatchAborts) {
  const Circuit c = BuildLessThanCircuit(4);
  EXPECT_DEATH((void)c.EvalPlain({true}, ToBits(0, 4)), "mismatch");
}

// Random property sweep across widths.
class ComparatorWidths : public ::testing::TestWithParam<int> {};

TEST_P(ComparatorWidths, RandomPairsMatchNativeComparison) {
  const int bits = GetParam();
  const Circuit c = BuildLessThanCircuit(bits);
  uint64_t state = 0x9E3779B97F4A7C15ull + static_cast<uint64_t>(bits);
  auto next = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  const uint64_t mask = bits == 64 ? ~uint64_t{0} : ((uint64_t{1} << bits) - 1);
  for (int i = 0; i < 200; ++i) {
    const uint64_t x = next() & mask;
    const uint64_t y = next() & mask;
    EXPECT_EQ(c.EvalPlain(ToBits(x, bits), ToBits(y, bits))[0], x < y)
        << "bits=" << bits << " x=" << x << " y=" << y;
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, ComparatorWidths,
                         ::testing::Values(2, 8, 16, 31, 48, 64));

}  // namespace
}  // namespace pem::crypto
