#include "crypto/secure_compare.h"

#include "net/bus.h"

#include <gtest/gtest.h>

#include "crypto/rng.h"

namespace pem::crypto {
namespace {

SecureCompareConfig FastConfig(int bits = 64) {
  SecureCompareConfig cfg;
  cfg.bits = bits;
  cfg.group = ModpGroupId::kModp768;
  return cfg;
}

TEST(SecureCompare, BasicOrdering) {
  net::MessageBus bus(2);
  DeterministicRng rng(1);
  EXPECT_TRUE(SecureCompareLess(bus, 0, 5, 1, 9, FastConfig(), rng));
  EXPECT_FALSE(SecureCompareLess(bus, 0, 9, 1, 5, FastConfig(), rng));
  EXPECT_FALSE(SecureCompareLess(bus, 0, 7, 1, 7, FastConfig(), rng));
}

TEST(SecureCompare, ZeroAndMaxValues) {
  net::MessageBus bus(2);
  DeterministicRng rng(2);
  const uint64_t max = ~uint64_t{0};
  EXPECT_TRUE(SecureCompareLess(bus, 0, 0, 1, max, FastConfig(), rng));
  EXPECT_FALSE(SecureCompareLess(bus, 0, max, 1, 0, FastConfig(), rng));
  EXPECT_FALSE(SecureCompareLess(bus, 0, 0, 1, 0, FastConfig(), rng));
}

TEST(SecureCompare, AdjacentValues) {
  net::MessageBus bus(2);
  DeterministicRng rng(3);
  for (uint64_t v : {uint64_t{1}, uint64_t{1} << 20, uint64_t{1} << 62}) {
    EXPECT_TRUE(SecureCompareLess(bus, 0, v - 1, 1, v, FastConfig(), rng));
    EXPECT_FALSE(SecureCompareLess(bus, 0, v, 1, v - 1, FastConfig(), rng));
  }
}

TEST(SecureCompare, RandomSweepMatchesNative) {
  net::MessageBus bus(2);
  DeterministicRng rng(4);
  DeterministicRng values(5);
  for (int i = 0; i < 8; ++i) {
    const uint64_t x = values.NextU64();
    const uint64_t y = values.NextU64();
    EXPECT_EQ(SecureCompareLess(bus, 0, x, 1, y, FastConfig(), rng), x < y)
        << x << " < " << y;
  }
}

TEST(SecureCompare, NarrowWidthConfig) {
  net::MessageBus bus(2);
  DeterministicRng rng(6);
  const SecureCompareConfig cfg = FastConfig(16);
  EXPECT_TRUE(SecureCompareLess(bus, 0, 1000, 1, 60000, cfg, rng));
  EXPECT_FALSE(SecureCompareLess(bus, 0, 60000, 1, 1000, cfg, rng));
}

TEST(SecureCompare, TrafficIsAccounted) {
  net::MessageBus bus(2);
  DeterministicRng rng(7);
  (void)SecureCompareLess(bus, 0, 1, 1, 2, FastConfig(), rng);
  // Tables + 64 OTs in each direction: must be substantial.
  EXPECT_GT(bus.stats(0).bytes_sent, 10'000u);
  EXPECT_GT(bus.stats(1).bytes_sent, 5'000u);
  EXPECT_EQ(bus.total_messages(), 4u);
}

TEST(SecureCompare, WorksBetweenArbitraryAgentIds) {
  net::MessageBus bus(10);
  DeterministicRng rng(8);
  EXPECT_TRUE(SecureCompareLess(bus, 7, 3, 2, 4, FastConfig(), rng));
  // Other agents saw no traffic.
  EXPECT_EQ(bus.stats(0).messages_received, 0u);
  EXPECT_EQ(bus.stats(5).bytes_sent, 0u);
}

TEST(SecureCompareDeath, InputExceedingWidthAborts) {
  net::MessageBus bus(2);
  DeterministicRng rng(9);
  const SecureCompareConfig cfg = FastConfig(8);
  EXPECT_DEATH(
      (void)SecureCompareLess(bus, 0, 256, 1, 1, cfg, rng),
      "exceed");
}

}  // namespace
}  // namespace pem::crypto
