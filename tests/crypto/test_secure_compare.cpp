#include "crypto/secure_compare.h"

#include "net/bus.h"

#include <gtest/gtest.h>

#include "crypto/rng.h"

namespace pem::crypto {
namespace {

SecureCompareConfig FastConfig(int bits = 64) {
  SecureCompareConfig cfg;
  cfg.bits = bits;
  cfg.group = ModpGroupId::kModp768;
  return cfg;
}

// Two endpoints on a fresh bus — the handles the comparison runs over.
struct TwoParty {
  net::MessageBus bus;
  net::Endpoint garbler;
  net::Endpoint evaluator;

  explicit TwoParty(int n = 2, net::AgentId g = 0, net::AgentId e = 1)
      : bus(n), garbler(bus.endpoint(g)), evaluator(bus.endpoint(e)) {}

  bool Less(uint64_t x, uint64_t y, const SecureCompareConfig& cfg, Rng& rng) {
    return SecureCompareLess(garbler, x, evaluator, y, cfg, rng);
  }
};

TEST(SecureCompare, BasicOrdering) {
  TwoParty p;
  DeterministicRng rng(1);
  EXPECT_TRUE(p.Less(5, 9, FastConfig(), rng));
  EXPECT_FALSE(p.Less(9, 5, FastConfig(), rng));
  EXPECT_FALSE(p.Less(7, 7, FastConfig(), rng));
}

TEST(SecureCompare, ZeroAndMaxValues) {
  TwoParty p;
  DeterministicRng rng(2);
  const uint64_t max = ~uint64_t{0};
  EXPECT_TRUE(p.Less(0, max, FastConfig(), rng));
  EXPECT_FALSE(p.Less(max, 0, FastConfig(), rng));
  EXPECT_FALSE(p.Less(0, 0, FastConfig(), rng));
}

TEST(SecureCompare, AdjacentValues) {
  TwoParty p;
  DeterministicRng rng(3);
  for (uint64_t v : {uint64_t{1}, uint64_t{1} << 20, uint64_t{1} << 62}) {
    EXPECT_TRUE(p.Less(v - 1, v, FastConfig(), rng));
    EXPECT_FALSE(p.Less(v, v - 1, FastConfig(), rng));
  }
}

TEST(SecureCompare, RandomSweepMatchesNative) {
  TwoParty p;
  DeterministicRng rng(4);
  DeterministicRng values(5);
  for (int i = 0; i < 8; ++i) {
    const uint64_t x = values.NextU64();
    const uint64_t y = values.NextU64();
    EXPECT_EQ(p.Less(x, y, FastConfig(), rng), x < y) << x << " < " << y;
  }
}

TEST(SecureCompare, NarrowWidthConfig) {
  TwoParty p;
  DeterministicRng rng(6);
  const SecureCompareConfig cfg = FastConfig(16);
  EXPECT_TRUE(p.Less(1000, 60000, cfg, rng));
  EXPECT_FALSE(p.Less(60000, 1000, cfg, rng));
}

TEST(SecureCompare, TrafficIsAccounted) {
  TwoParty p;
  DeterministicRng rng(7);
  (void)p.Less(1, 2, FastConfig(), rng);
  // Tables + 64 OTs in each direction: must be substantial.
  EXPECT_GT(p.garbler.stats().bytes_sent, 10'000u);
  EXPECT_GT(p.evaluator.stats().bytes_sent, 5'000u);
  EXPECT_EQ(p.bus.total_messages(), 4u);
}

TEST(SecureCompare, WorksBetweenArbitraryAgentIds) {
  TwoParty p(10, /*g=*/7, /*e=*/2);
  DeterministicRng rng(8);
  EXPECT_TRUE(p.Less(3, 4, FastConfig(), rng));
  // Other agents saw no traffic.
  EXPECT_EQ(p.bus.endpoint(0).stats().messages_received, 0u);
  EXPECT_EQ(p.bus.endpoint(5).stats().bytes_sent, 0u);
}

TEST(SecureCompareDeath, InputExceedingWidthAborts) {
  TwoParty p;
  DeterministicRng rng(9);
  const SecureCompareConfig cfg = FastConfig(8);
  EXPECT_DEATH((void)p.Less(256, 1, cfg, rng), "exceed");
}

TEST(SecureCompareDeath, SameAgentOnBothSidesAborts) {
  net::MessageBus bus(2);
  net::Endpoint a = bus.endpoint(0);
  net::Endpoint also_a = bus.endpoint(0);
  DeterministicRng rng(10);
  EXPECT_DEATH(
      (void)SecureCompareLess(a, 1, also_a, 2, FastConfig(), rng),
      "distinct");
}

}  // namespace
}  // namespace pem::crypto
