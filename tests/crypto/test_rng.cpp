#include "crypto/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace pem::crypto {
namespace {

TEST(SystemRng, FillsRequestedBytes) {
  std::vector<uint8_t> buf(64, 0);
  SystemRng::Instance().Fill(buf);
  // 64 zero bytes after filling would indicate a broken RNG.
  int nonzero = 0;
  for (uint8_t b : buf) nonzero += (b != 0);
  EXPECT_GT(nonzero, 32);
}

TEST(SystemRng, SuccessiveDrawsDiffer) {
  EXPECT_NE(SystemRng::Instance().NextU64(), SystemRng::Instance().NextU64());
}

TEST(DeterministicRng, SameSeedSameStream) {
  DeterministicRng a(99), b(99);
  std::vector<uint8_t> ba(100), bb(100);
  a.Fill(ba);
  b.Fill(bb);
  EXPECT_EQ(ba, bb);
}

TEST(DeterministicRng, DifferentSeedsDifferentStreams) {
  DeterministicRng a(1), b(2);
  std::vector<uint8_t> ba(32), bb(32);
  a.Fill(ba);
  b.Fill(bb);
  EXPECT_NE(ba, bb);
}

TEST(DeterministicRng, StreamIndependentOfChunking) {
  DeterministicRng a(7), b(7);
  std::vector<uint8_t> one(100);
  a.Fill(one);
  std::vector<uint8_t> parts(100);
  b.Fill(std::span<uint8_t>(parts).subspan(0, 33));
  b.Fill(std::span<uint8_t>(parts).subspan(33, 50));
  b.Fill(std::span<uint8_t>(parts).subspan(83, 17));
  EXPECT_EQ(one, parts);
}

TEST(DeterministicRng, NextU64CoversRange) {
  DeterministicRng rng(5);
  std::set<uint64_t> seen;
  for (int i = 0; i < 100; ++i) seen.insert(rng.NextU64());
  EXPECT_EQ(seen.size(), 100u);  // collisions would be astronomically rare
}

TEST(DeterministicRng, ByteHistogramIsRoughlyUniform) {
  DeterministicRng rng(11);
  std::vector<int> counts(256, 0);
  std::vector<uint8_t> buf(65536);
  rng.Fill(buf);
  for (uint8_t b : buf) ++counts[b];
  // Expected 256 per bucket; allow generous slack.
  for (int c : counts) {
    EXPECT_GT(c, 150);
    EXPECT_LT(c, 400);
  }
}

}  // namespace
}  // namespace pem::crypto
