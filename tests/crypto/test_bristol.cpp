#include "crypto/bristol.h"

#include <gtest/gtest.h>

#include "crypto/garble.h"
#include "crypto/rng.h"

namespace pem::crypto {
namespace {

// A hand-written 1-bit half adder in Bristol fashion:
// inputs: wire 0 (garbler), wire 1 (evaluator); outputs: carry, sum.
constexpr const char* kHalfAdder =
    "2 4\n"
    "1 1 2\n"
    "\n"
    "2 1 0 1 3 XOR\n"
    "2 1 0 1 2 AND\n";

TEST(Bristol, ParsesHandWrittenHalfAdder) {
  const Result<Circuit> r = ParseBristolCircuit(kHalfAdder);
  ASSERT_TRUE(r.ok()) << r.error().ToString();
  const Circuit& c = r.value();
  EXPECT_EQ(c.num_wires, 4);
  EXPECT_EQ(c.garbler_inputs, (std::vector<int32_t>{0}));
  EXPECT_EQ(c.evaluator_inputs, (std::vector<int32_t>{1}));
  EXPECT_EQ(c.outputs, (std::vector<int32_t>{2, 3}));
  ASSERT_EQ(c.gates.size(), 2u);
  for (int a = 0; a < 2; ++a) {
    for (int b = 0; b < 2; ++b) {
      const std::vector<bool> out = c.EvalPlain({a != 0}, {b != 0});
      EXPECT_EQ(out[0], (a & b) != 0) << "carry " << a << b;   // wire 2
      EXPECT_EQ(out[1], (a ^ b) != 0) << "sum " << a << b;     // wire 3
    }
  }
}

TEST(Bristol, ParsesInvGate) {
  const char* text =
      "1 2\n"
      "1 0 1\n"
      "\n"
      "1 1 0 1 INV\n";
  const Result<Circuit> r = ParseBristolCircuit(text);
  ASSERT_TRUE(r.ok()) << r.error().ToString();
  EXPECT_TRUE(r.value().EvalPlain({false}, {})[0]);
  EXPECT_FALSE(r.value().EvalPlain({true}, {})[0]);
}

TEST(Bristol, ComparatorRoundTripsThroughText) {
  const Circuit original = BuildLessThanCircuit(8);
  const Result<Circuit> renumbered = RenumberForBristol(original);
  ASSERT_TRUE(renumbered.ok()) << renumbered.error().ToString();
  const Result<std::string> text = WriteBristolCircuit(renumbered.value());
  ASSERT_TRUE(text.ok()) << text.error().ToString();
  const Result<Circuit> back = ParseBristolCircuit(text.value());
  ASSERT_TRUE(back.ok()) << back.error().ToString();

  for (uint64_t x = 0; x < 256; x += 17) {
    for (uint64_t y = 0; y < 256; y += 13) {
      EXPECT_EQ(back.value().EvalPlain(ToBits(x, 8), ToBits(y, 8))[0], x < y)
          << x << " < " << y;
    }
  }
}

TEST(Bristol, AdderRoundTripAfterRenumbering) {
  // The adder's outputs are interleaved sum wires — the renumber pass
  // must move them to the tail without changing semantics.
  const Circuit original = BuildAdderCircuit(6);
  const Result<Circuit> renumbered = RenumberForBristol(original);
  ASSERT_TRUE(renumbered.ok());
  const Result<std::string> text = WriteBristolCircuit(renumbered.value());
  ASSERT_TRUE(text.ok()) << text.error().ToString();
  const Result<Circuit> back = ParseBristolCircuit(text.value());
  ASSERT_TRUE(back.ok());
  for (uint64_t x = 0; x < 64; x += 7) {
    for (uint64_t y = 0; y < 64; y += 5) {
      EXPECT_EQ(FromBits(back.value().EvalPlain(ToBits(x, 6), ToBits(y, 6))),
                (x + y) & 0x3F);
    }
  }
}

TEST(Bristol, ParsedCircuitsGarbleCorrectly) {
  const Result<Circuit> r = ParseBristolCircuit(kHalfAdder);
  ASSERT_TRUE(r.ok());
  const Circuit& c = r.value();
  DeterministicRng rng(1);
  const Garbler g(c, rng);
  Evaluator eval(c, GarbledTables::Deserialize(g.tables().Serialize(), c));
  const auto [e0, e1] = g.EvaluatorInputLabels(0);
  const std::vector<bool> out =
      eval.Evaluate({g.GarblerInputLabel(0, true)}, {e1});
  EXPECT_TRUE(out[0]);   // carry of 1+1
  EXPECT_FALSE(out[1]);  // sum of 1+1
}

TEST(Bristol, RejectsUnknownGateKind) {
  const char* text = "1 3\n1 1 1\n\n2 1 0 1 2 NAND\n";
  const Result<Circuit> r = ParseBristolCircuit(text);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message().find("unknown gate"), std::string::npos);
}

TEST(Bristol, RejectsNonTopologicalOrder) {
  const char* text =
      "2 4\n1 1 2\n\n"
      "2 1 0 3 2 AND\n"   // consumes wire 3 before it is defined
      "2 1 0 1 3 XOR\n";
  EXPECT_FALSE(ParseBristolCircuit(text).ok());
}

TEST(Bristol, RejectsDoubleDefinition) {
  const char* text =
      "2 3\n1 1 1\n\n"
      "2 1 0 1 2 XOR\n"
      "2 1 0 1 2 AND\n";  // wire 2 defined twice
  EXPECT_FALSE(ParseBristolCircuit(text).ok());
}

TEST(Bristol, RejectsTruncatedInput) {
  EXPECT_FALSE(ParseBristolCircuit("3").ok());
  EXPECT_FALSE(ParseBristolCircuit("1 2\n1 0 1\n\n1 1 0").ok());
  EXPECT_FALSE(ParseBristolCircuit("").ok());
}

TEST(Bristol, RejectsWireOutOfRange) {
  const char* text = "1 3\n1 1 1\n\n2 1 0 9 2 XOR\n";
  EXPECT_FALSE(ParseBristolCircuit(text).ok());
}

TEST(Bristol, RenumberRejectsOutputAliasingInput) {
  CircuitBuilder cb(1, 1);
  cb.MarkOutput(cb.garbler_inputs()[0]);  // passthrough output
  const Circuit c = cb.Build();
  EXPECT_FALSE(RenumberForBristol(c).ok());
}

TEST(Bristol, RenumberRejectsDuplicateOutputs) {
  CircuitBuilder cb(1, 1);
  const int32_t w = cb.Xor(cb.garbler_inputs()[0], cb.evaluator_inputs()[0]);
  cb.MarkOutput(w);
  cb.MarkOutput(w);
  const Circuit c = cb.Build();
  EXPECT_FALSE(RenumberForBristol(c).ok());
}

}  // namespace
}  // namespace pem::crypto
