#include "crypto/ot.h"

#include <gtest/gtest.h>

#include "crypto/rng.h"

namespace pem::crypto {
namespace {

OtMessage MakeMessage(uint8_t fill) {
  OtMessage m;
  m.fill(fill);
  return m;
}

const ModpGroup& TestGroup() {
  return ModpGroup::Get(ModpGroupId::kModp768);
}

// Runs the full 1-of-2 OT locally and returns what the receiver got.
OtMessage RunOt(const OtMessage& m0, const OtMessage& m1, bool choice,
                uint64_t seed) {
  DeterministicRng rng(seed);
  OtSender sender(TestGroup(), rng);
  OtReceiver receiver(TestGroup(), rng);
  const std::vector<uint8_t> a = sender.Round1();
  const std::vector<uint8_t> b = receiver.Round1(a, choice);
  const std::vector<uint8_t> cts = sender.Round2(b, m0, m1);
  return receiver.Decrypt(cts);
}

TEST(ObliviousTransfer, ReceiverGetsChosenMessageZero) {
  EXPECT_EQ(RunOt(MakeMessage(0xAA), MakeMessage(0xBB), false, 1),
            MakeMessage(0xAA));
}

TEST(ObliviousTransfer, ReceiverGetsChosenMessageOne) {
  EXPECT_EQ(RunOt(MakeMessage(0xAA), MakeMessage(0xBB), true, 2),
            MakeMessage(0xBB));
}

TEST(ObliviousTransfer, WorksAcrossManySeeds) {
  for (uint64_t seed = 10; seed < 30; ++seed) {
    OtMessage m0, m1;
    DeterministicRng fill(seed * 7);
    fill.Fill(m0);
    fill.Fill(m1);
    const bool choice = (seed % 2) == 0;
    EXPECT_EQ(RunOt(m0, m1, choice, seed), choice ? m1 : m0) << seed;
  }
}

TEST(ObliviousTransfer, UnchosenPadLooksUnrelated) {
  // The receiver's transcript for choice=0 must not decrypt m1: decrypt
  // the wrong slot by flipping the ciphertext halves and check mismatch.
  DeterministicRng rng(3);
  OtSender sender(TestGroup(), rng);
  OtReceiver receiver(TestGroup(), rng);
  const std::vector<uint8_t> a = sender.Round1();
  const std::vector<uint8_t> b = receiver.Round1(a, false);
  const OtMessage m0 = MakeMessage(0x00), m1 = MakeMessage(0xFF);
  std::vector<uint8_t> cts = sender.Round2(b, m0, m1);
  // Swap c0 and c1 so the receiver decrypts c1 with pad for slot 0.
  std::vector<uint8_t> swapped(cts.begin() + 16, cts.end());
  swapped.insert(swapped.end(), cts.begin(), cts.begin() + 16);
  const OtMessage wrong = receiver.Decrypt(swapped);
  EXPECT_NE(wrong, m0);
  EXPECT_NE(wrong, m1);
}

TEST(ObliviousTransfer, Round1ElementsAreGroupSized) {
  DeterministicRng rng(4);
  OtSender sender(TestGroup(), rng);
  OtReceiver receiver(TestGroup(), rng);
  const std::vector<uint8_t> a = sender.Round1();
  EXPECT_EQ(a.size(), TestGroup().element_bytes());
  EXPECT_EQ(receiver.Round1(a, true).size(), TestGroup().element_bytes());
}

TEST(ObliviousTransfer, SenderRound1IsStable) {
  DeterministicRng rng(5);
  OtSender sender(TestGroup(), rng);
  EXPECT_EQ(sender.Round1(), sender.Round1());
}

TEST(ObliviousTransferDeath, BadElementSizeAborts) {
  DeterministicRng rng(6);
  OtSender sender(TestGroup(), rng);
  const std::vector<uint8_t> junk(7, 1);
  EXPECT_DEATH((void)sender.Round2(junk, MakeMessage(0), MakeMessage(1)),
               "element size");
}

TEST(ObliviousTransferDeath, BadRound2SizeAborts) {
  DeterministicRng rng(7);
  OtSender sender(TestGroup(), rng);
  OtReceiver receiver(TestGroup(), rng);
  (void)receiver.Round1(sender.Round1(), false);
  const std::vector<uint8_t> junk(31, 0);
  EXPECT_DEATH((void)receiver.Decrypt(junk), "round2");
}

// Sweep all group presets to confirm OT is group-agnostic.
class OtGroupSweep : public ::testing::TestWithParam<ModpGroupId> {};

TEST_P(OtGroupSweep, CorrectForBothChoices) {
  const ModpGroup& group = ModpGroup::Get(GetParam());
  for (bool choice : {false, true}) {
    DeterministicRng rng(42);
    OtSender sender(group, rng);
    OtReceiver receiver(group, rng);
    const std::vector<uint8_t> b = receiver.Round1(sender.Round1(), choice);
    const OtMessage m0 = MakeMessage(1), m1 = MakeMessage(2);
    const OtMessage got = receiver.Decrypt(sender.Round2(b, m0, m1));
    EXPECT_EQ(got, choice ? m1 : m0);
  }
}

INSTANTIATE_TEST_SUITE_P(Groups, OtGroupSweep,
                         ::testing::Values(ModpGroupId::kModp768,
                                           ModpGroupId::kModp1536,
                                           ModpGroupId::kModp2048));

}  // namespace
}  // namespace pem::crypto
