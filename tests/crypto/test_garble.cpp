#include "crypto/garble.h"

#include <gtest/gtest.h>

#include "crypto/circuit.h"
#include "crypto/rng.h"

namespace pem::crypto {
namespace {

// Garbles + evaluates `circuit` on (x, y) with trusted label delivery
// (no OT — that path is covered by test_secure_compare).
std::vector<bool> GarbledEval(const Circuit& circuit, uint64_t x, uint64_t y,
                              uint64_t seed) {
  DeterministicRng rng(seed);
  Garbler g(circuit, rng);
  std::vector<WireLabel> gl, el;
  const int gbits = static_cast<int>(circuit.garbler_inputs.size());
  const int ebits = static_cast<int>(circuit.evaluator_inputs.size());
  const std::vector<bool> xb =
      gbits > 0 ? ToBits(x, gbits) : std::vector<bool>{};
  const std::vector<bool> yb =
      ebits > 0 ? ToBits(y, ebits) : std::vector<bool>{};
  for (int i = 0; i < gbits; ++i) {
    gl.push_back(g.GarblerInputLabel(static_cast<size_t>(i), xb[static_cast<size_t>(i)]));
  }
  for (int i = 0; i < ebits; ++i) {
    const auto [l0, l1] = g.EvaluatorInputLabels(static_cast<size_t>(i));
    el.push_back(yb[static_cast<size_t>(i)] ? l1 : l0);
  }
  // Round-trip the tables through serialization, as the wire protocol does.
  GarbledTables tables =
      GarbledTables::Deserialize(g.tables().Serialize(), circuit);
  Evaluator eval(circuit, std::move(tables));
  return eval.Evaluate(gl, el);
}

TEST(Garble, SingleAndGateAllInputs) {
  CircuitBuilder cb(1, 1);
  cb.MarkOutput(cb.And(cb.garbler_inputs()[0], cb.evaluator_inputs()[0]));
  const Circuit c = cb.Build();
  for (uint64_t x = 0; x < 2; ++x) {
    for (uint64_t y = 0; y < 2; ++y) {
      EXPECT_EQ(GarbledEval(c, x, y, 1)[0], (x & y) != 0) << x << "," << y;
    }
  }
}

TEST(Garble, FreeXorGateAllInputs) {
  CircuitBuilder cb(1, 1);
  cb.MarkOutput(cb.Xor(cb.garbler_inputs()[0], cb.evaluator_inputs()[0]));
  const Circuit c = cb.Build();
  EXPECT_EQ(c.AndGateCount(), 0u);  // XOR must be free
  for (uint64_t x = 0; x < 2; ++x) {
    for (uint64_t y = 0; y < 2; ++y) {
      EXPECT_EQ(GarbledEval(c, x, y, 2)[0], ((x ^ y) & 1) != 0);
    }
  }
}

TEST(Garble, NotGateIsFreeAndCorrect) {
  CircuitBuilder cb(1, 0);
  cb.MarkOutput(cb.Not(cb.garbler_inputs()[0]));
  const Circuit c = cb.Build();
  EXPECT_EQ(c.AndGateCount(), 0u);
  EXPECT_TRUE(GarbledEval(c, 0, 0, 3)[0]);
  EXPECT_FALSE(GarbledEval(c, 1, 0, 3)[0]);
}

TEST(Garble, ComparatorMatchesPlainEvaluationExhaustively) {
  const Circuit c = BuildLessThanCircuit(4);
  for (uint64_t x = 0; x < 16; ++x) {
    for (uint64_t y = 0; y < 16; ++y) {
      EXPECT_EQ(GarbledEval(c, x, y, 4)[0], x < y) << x << " < " << y;
    }
  }
}

TEST(Garble, AdderMatchesPlainEvaluation) {
  const Circuit c = BuildAdderCircuit(8);
  for (uint64_t x : {uint64_t{0}, uint64_t{1}, uint64_t{127}, uint64_t{200},
                     uint64_t{255}}) {
    for (uint64_t y : {uint64_t{0}, uint64_t{1}, uint64_t{55}, uint64_t{255}}) {
      EXPECT_EQ(FromBits(GarbledEval(c, x, y, 5)), (x + y) & 0xFF);
    }
  }
}

TEST(Garble, SixtyFourBitComparatorRandomSweep) {
  const Circuit c = BuildLessThanCircuit(64);
  DeterministicRng rng(6);
  for (int i = 0; i < 25; ++i) {
    const uint64_t x = rng.NextU64();
    const uint64_t y = rng.NextU64();
    EXPECT_EQ(GarbledEval(c, x, y, 7 + static_cast<uint64_t>(i))[0], x < y);
  }
}

TEST(Garble, DifferentSeedsProduceDifferentTablesSameResult) {
  const Circuit c = BuildLessThanCircuit(8);
  DeterministicRng r1(10), r2(11);
  Garbler g1(c, r1), g2(c, r2);
  EXPECT_NE(g1.tables().Serialize(), g2.tables().Serialize());
  EXPECT_EQ(GarbledEval(c, 3, 9, 10)[0], GarbledEval(c, 3, 9, 11)[0]);
}

TEST(Garble, LabelsCarryPermuteBitConvention) {
  const Circuit c = BuildLessThanCircuit(8);
  DeterministicRng rng(12);
  const Garbler g(c, rng);
  for (size_t i = 0; i < 8; ++i) {
    const auto [l0, l1] = g.EvaluatorInputLabels(i);
    // Free-XOR forces complementary permute bits (lsb(delta) = 1).
    EXPECT_NE(l0.permute_bit(), l1.permute_bit()) << i;
    EXPECT_NE(l0, l1);
  }
}

TEST(Garble, GarblerCanDecodeOutputs) {
  CircuitBuilder cb(1, 1);
  cb.MarkOutput(cb.And(cb.garbler_inputs()[0], cb.evaluator_inputs()[0]));
  const Circuit c = cb.Build();
  DeterministicRng rng(13);
  const Garbler g(c, rng);
  // Evaluate manually to recover the active output label, then have the
  // garbler decode it.
  Evaluator eval(c, GarbledTables::Deserialize(g.tables().Serialize(), c));
  const auto [e0, e1] = g.EvaluatorInputLabels(0);
  const std::vector<bool> out =
      eval.Evaluate({g.GarblerInputLabel(0, true)}, {e1});
  EXPECT_TRUE(out[0]);
}

TEST(GarbledTables, SerializationRoundTrip) {
  const Circuit c = BuildLessThanCircuit(16);
  DeterministicRng rng(14);
  const Garbler g(c, rng);
  const std::vector<uint8_t> bytes = g.tables().Serialize();
  EXPECT_EQ(bytes.size(), g.tables().SerializedSize());
  const GarbledTables back = GarbledTables::Deserialize(bytes, c);
  EXPECT_EQ(back.Serialize(), bytes);
}

TEST(GarbledTables, SizeIs64BytesPerAndGatePlusDecode) {
  const Circuit c = BuildLessThanCircuit(32);
  DeterministicRng rng(15);
  const Garbler g(c, rng);
  EXPECT_EQ(g.tables().SerializedSize(), c.AndGateCount() * 64 + 1);
}

TEST(GarbledTablesDeath, TruncatedBytesAbort) {
  const Circuit c = BuildLessThanCircuit(8);
  DeterministicRng rng(16);
  const Garbler g(c, rng);
  std::vector<uint8_t> bytes = g.tables().Serialize();
  bytes.pop_back();
  EXPECT_DEATH((void)GarbledTables::Deserialize(bytes, c), "size mismatch");
}

TEST(GarbleDeath, WrongLabelCountAborts) {
  const Circuit c = BuildLessThanCircuit(4);
  DeterministicRng rng(17);
  const Garbler g(c, rng);
  Evaluator eval(c, GarbledTables::Deserialize(g.tables().Serialize(), c));
  EXPECT_DEATH((void)eval.Evaluate({}, {}), "label count");
}

// Parameterized: every builder circuit, garbled output == plain output
// on random inputs.
struct GarbleCase {
  const char* name;
  Circuit (*build)(int);
  int bits;
};

class GarbleVsPlain : public ::testing::TestWithParam<GarbleCase> {};

TEST_P(GarbleVsPlain, GarbledEqualsPlain) {
  const GarbleCase& tc = GetParam();
  const Circuit c = tc.build(tc.bits);
  DeterministicRng rng(99);
  const uint64_t mask =
      tc.bits == 64 ? ~uint64_t{0} : ((uint64_t{1} << tc.bits) - 1);
  for (int i = 0; i < 40; ++i) {
    const uint64_t x = rng.NextU64() & mask;
    const uint64_t y = rng.NextU64() & mask;
    const std::vector<bool> plain =
        c.EvalPlain(ToBits(x, tc.bits), ToBits(y, tc.bits));
    const std::vector<bool> garbled =
        GarbledEval(c, x, y, 1000 + static_cast<uint64_t>(i));
    EXPECT_EQ(garbled, plain) << tc.name << " x=" << x << " y=" << y;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Circuits, GarbleVsPlain,
    ::testing::Values(GarbleCase{"lt8", BuildLessThanCircuit, 8},
                      GarbleCase{"lt64", BuildLessThanCircuit, 64},
                      GarbleCase{"eq8", BuildEqualityCircuit, 8},
                      GarbleCase{"add8", BuildAdderCircuit, 8},
                      GarbleCase{"add16", BuildAdderCircuit, 16},
                      GarbleCase{"sub8", BuildSubtractorCircuit, 8},
                      GarbleCase{"max8", BuildMaxCircuit, 8}),
    [](const ::testing::TestParamInfo<GarbleCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace pem::crypto
