#include "grid/trace.h"

#include <gtest/gtest.h>

#include <cstdio>

namespace pem::grid {
namespace {

TraceConfig SmallConfig() {
  TraceConfig cfg;
  cfg.num_homes = 20;
  cfg.windows_per_day = 48;
  cfg.seed = 7;
  return cfg;
}

TEST(TraceGenerator, ShapeMatchesConfig) {
  const CommunityTrace t = GenerateCommunityTrace(SmallConfig());
  EXPECT_EQ(t.num_homes(), 20);
  EXPECT_EQ(t.windows_per_day, 48);
  for (const HomeTrace& h : t.homes) {
    EXPECT_EQ(h.observations.size(), 48u);
  }
}

TEST(TraceGenerator, DeterministicForSeed) {
  const CommunityTrace a = GenerateCommunityTrace(SmallConfig());
  const CommunityTrace b = GenerateCommunityTrace(SmallConfig());
  for (int h = 0; h < a.num_homes(); ++h) {
    for (int w = 0; w < a.windows_per_day; ++w) {
      EXPECT_DOUBLE_EQ(
          a.homes[static_cast<size_t>(h)].observations[static_cast<size_t>(w)].generation_kwh,
          b.homes[static_cast<size_t>(h)].observations[static_cast<size_t>(w)].generation_kwh);
    }
  }
}

TEST(TraceGenerator, SeedChangesTrace) {
  TraceConfig c2 = SmallConfig();
  c2.seed = 8;
  const CommunityTrace a = GenerateCommunityTrace(SmallConfig());
  const CommunityTrace b = GenerateCommunityTrace(c2);
  EXPECT_NE(a.homes[0].observations[10].load_kwh,
            b.homes[0].observations[10].load_kwh);
}

TEST(TraceGenerator, ParamsWithinConfiguredRanges) {
  const TraceConfig cfg = SmallConfig();
  const CommunityTrace t = GenerateCommunityTrace(cfg);
  for (const HomeTrace& h : t.homes) {
    EXPECT_GE(h.params.preference_k, cfg.min_preference_k);
    EXPECT_LE(h.params.preference_k, cfg.max_preference_k);
    EXPECT_GE(h.params.battery_epsilon, cfg.min_epsilon);
    EXPECT_LE(h.params.battery_epsilon, cfg.max_epsilon);
    if (h.params.battery_capacity_kwh > 0) {
      EXPECT_GE(h.params.battery_capacity_kwh, cfg.min_battery_kwh);
      EXPECT_LE(h.params.battery_capacity_kwh, cfg.max_battery_kwh);
      EXPECT_GT(h.params.battery_rate_kwh, 0.0);
    }
  }
}

TEST(TraceGenerator, SomeHomesHaveNoPanel) {
  TraceConfig cfg = SmallConfig();
  cfg.num_homes = 200;
  cfg.no_panel_fraction = 0.3;
  const CommunityTrace t = GenerateCommunityTrace(cfg);
  int without_panel = 0;
  for (const HomeTrace& h : t.homes) {
    double total_gen = 0;
    for (const WindowObservation& o : h.observations) {
      total_gen += o.generation_kwh;
    }
    if (total_gen == 0.0) ++without_panel;
  }
  EXPECT_GT(without_panel, 20);
  EXPECT_LT(without_panel, 120);
}

TEST(TraceGenerator, RolesChurnAcrossTheDay) {
  // Midday should have net producers; edges should be dominated by
  // consumers (the Fig. 4 shape).
  TraceConfig cfg;
  cfg.num_homes = 100;
  cfg.windows_per_day = 720;
  const CommunityTrace t = GenerateCommunityTrace(cfg);
  std::vector<Battery> bats = t.MakeBatteries();
  std::vector<int> seller_count(static_cast<size_t>(t.windows_per_day), 0);
  for (int w = 0; w < t.windows_per_day; ++w) {
    for (int h = 0; h < t.num_homes(); ++h) {
      const WindowState st = t.ResolveWindow(h, w, bats);
      if (ClassifyRole(st.NetEnergy()) == Role::kSeller) {
        ++seller_count[static_cast<size_t>(w)];
      }
    }
  }
  const int sellers_early = seller_count[10];
  const int sellers_noon = seller_count[360];
  EXPECT_GT(sellers_noon, sellers_early + 10);
}

TEST(TraceGenerator, CsvRoundTrip) {
  const std::string path = ::testing::TempDir() + "/pem_trace_test.csv";
  TraceConfig cfg = SmallConfig();
  cfg.num_homes = 5;
  cfg.windows_per_day = 12;
  const CommunityTrace t = GenerateCommunityTrace(cfg);
  t.SaveCsv(path);
  const CommunityTrace back = CommunityTrace::LoadCsv(path);
  std::remove(path.c_str());

  ASSERT_EQ(back.num_homes(), t.num_homes());
  ASSERT_EQ(back.windows_per_day, t.windows_per_day);
  for (int h = 0; h < t.num_homes(); ++h) {
    const auto& orig = t.homes[static_cast<size_t>(h)];
    const auto& got = back.homes[static_cast<size_t>(h)];
    EXPECT_NEAR(got.params.preference_k, orig.params.preference_k, 1e-6);
    for (int w = 0; w < t.windows_per_day; ++w) {
      EXPECT_NEAR(got.observations[static_cast<size_t>(w)].generation_kwh,
                  orig.observations[static_cast<size_t>(w)].generation_kwh,
                  1e-8);
      EXPECT_NEAR(got.observations[static_cast<size_t>(w)].load_kwh,
                  orig.observations[static_cast<size_t>(w)].load_kwh, 1e-8);
    }
  }
}

TEST(TraceResolve, BatteryStateCarriesAcrossWindows) {
  TraceConfig cfg = SmallConfig();
  cfg.battery_fraction = 1.0;
  cfg.no_panel_fraction = 0.0;
  const CommunityTrace t = GenerateCommunityTrace(cfg);
  std::vector<Battery> bats = t.MakeBatteries();
  // After resolving all windows the SoC should have moved for at least
  // one home with a battery (charging happened midday).
  for (int w = 0; w < t.windows_per_day; ++w) {
    for (int h = 0; h < t.num_homes(); ++h) (void)t.ResolveWindow(h, w, bats);
  }
  bool any_charged = false;
  for (const Battery& b : bats) {
    if (b.state_of_charge() > 0.0) any_charged = true;
  }
  EXPECT_TRUE(any_charged);
}

TEST(TraceResolve, NetEnergyIdentityHolds) {
  const CommunityTrace t = GenerateCommunityTrace(SmallConfig());
  std::vector<Battery> bats = t.MakeBatteries();
  const WindowState st = t.ResolveWindow(3, 5, bats);
  EXPECT_DOUBLE_EQ(st.NetEnergy(),
                   st.generation_kwh - st.load_kwh - st.battery_kwh);
}

TEST(TraceDeath, BadIndicesAbort) {
  const CommunityTrace t = GenerateCommunityTrace(SmallConfig());
  std::vector<Battery> bats = t.MakeBatteries();
  EXPECT_DEATH((void)t.ResolveWindow(99, 0, bats), "home index");
  EXPECT_DEATH((void)t.ResolveWindow(0, 99, bats), "window index");
}

}  // namespace
}  // namespace pem::grid
