#include "grid/solar.h"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

namespace pem::grid {
namespace {

std::vector<double> FullDay(const SolarConfig& cfg, uint64_t seed) {
  SimRandom rng(seed);
  SolarModel model(cfg, rng);
  std::vector<double> out(static_cast<size_t>(cfg.windows_per_day));
  for (int w = 0; w < cfg.windows_per_day; ++w) {
    out[static_cast<size_t>(w)] = model.GenerationAt(w);
  }
  return out;
}

TEST(SolarModel, GenerationIsNonNegative) {
  for (double g : FullDay(SolarConfig{}, 1)) EXPECT_GE(g, 0.0);
}

TEST(SolarModel, ZeroCapacityMeansZeroOutput) {
  SolarConfig cfg;
  cfg.capacity_kw = 0.0;
  for (double g : FullDay(cfg, 2)) EXPECT_DOUBLE_EQ(g, 0.0);
}

TEST(SolarModel, PeaksNearMidday) {
  const std::vector<double> day = FullDay(SolarConfig{}, 3);
  // Average over the noon band vs. the edges.
  auto avg = [&](size_t lo, size_t hi) {
    return std::accumulate(day.begin() + static_cast<ptrdiff_t>(lo),
                           day.begin() + static_cast<ptrdiff_t>(hi), 0.0) /
           static_cast<double>(hi - lo);
  };
  const double noon = avg(330, 390);   // ~12:30-13:30
  const double morning = avg(0, 60);   // 7:00-8:00
  const double evening = avg(660, 720);
  EXPECT_GT(noon, 3 * morning);
  EXPECT_GT(noon, 3 * evening);
}

TEST(SolarModel, OutputBoundedByCapacity) {
  SolarConfig cfg;
  cfg.capacity_kw = 2.0;
  const double hours_per_window = 12.0 / cfg.windows_per_day;
  for (double g : FullDay(cfg, 4)) {
    EXPECT_LE(g, cfg.capacity_kw * hours_per_window + 1e-12);
  }
}

TEST(SolarModel, DeterministicForSeed) {
  EXPECT_EQ(FullDay(SolarConfig{}, 7), FullDay(SolarConfig{}, 7));
  EXPECT_NE(FullDay(SolarConfig{}, 7), FullDay(SolarConfig{}, 8));
}

TEST(SolarModel, CloudsCreateVariation) {
  const std::vector<double> day = FullDay(SolarConfig{}, 9);
  // Successive midday values should not all be identical.
  int distinct = 0;
  for (size_t w = 300; w < 420; ++w) {
    if (std::abs(day[w] - day[w - 1]) > 1e-9) ++distinct;
  }
  EXPECT_GT(distinct, 60);
}

TEST(SolarModel, DailyTotalIsPlausible) {
  // A 3 kW panel over a 12h day should produce on the order of
  // 8-25 kWh (bell curve with cloud losses).
  const std::vector<double> day = FullDay(SolarConfig{}, 10);
  const double total = std::accumulate(day.begin(), day.end(), 0.0);
  EXPECT_GT(total, 5.0);
  EXPECT_LT(total, 30.0);
}

TEST(SolarModelDeath, WindowOutOfRangeAborts) {
  SimRandom rng(1);
  SolarModel model(SolarConfig{}, rng);
  EXPECT_DEATH((void)model.GenerationAt(720), "window");
  EXPECT_DEATH((void)model.GenerationAt(-1), "window");
}

}  // namespace
}  // namespace pem::grid
