#include "grid/arbitrage.h"

#include <gtest/gtest.h>

namespace pem::grid {
namespace {

// A day with a cheap middle and expensive edges (the Fig. 6(a) shape).
std::vector<double> PriceValley(int windows = 12) {
  std::vector<double> f(static_cast<size_t>(windows), 1.2);
  for (int w = windows / 3; w < 2 * windows / 3; ++w) {
    f[static_cast<size_t>(w)] = 0.9;
  }
  return f;
}

TEST(ArbitrageBattery, ThresholdsFollowForecastQuantiles) {
  ArbitrageBattery b(10, 1, PriceValley());
  EXPECT_NEAR(b.cheap_threshold(), 0.9, 0.05);
  EXPECT_NEAR(b.expensive_threshold(), 1.2, 0.05);
}

TEST(ArbitrageBattery, ChargesInCheapWindows) {
  ArbitrageBattery b(10, 1, PriceValley());
  // Window 5 is cheap: charge even with no surplus.
  const double action = b.Step(5, 0.0, 0.0);
  EXPECT_GT(action, 0.0);
  EXPECT_DOUBLE_EQ(b.state_of_charge(), action);
}

TEST(ArbitrageBattery, DischargesInExpensiveWindows) {
  ArbitrageBattery b(10, 1, PriceValley());
  (void)b.Step(5, 0.0, 0.0);  // charge 1 kWh midday
  const double action = b.Step(11, 0.0, 0.0);  // expensive evening
  EXPECT_LT(action, 0.0);
  EXPECT_NEAR(b.state_of_charge(), 0.0, 1e-12);
}

TEST(ArbitrageBattery, DischargeBoundedByStoredEnergy) {
  ArbitrageBattery b(10, 5, PriceValley());
  (void)b.Step(5, 0.5, 0.0);  // rate-limited to 5 but headroom 10: +5
  const double action = b.Step(11, 0.0, 0.0);
  EXPECT_GE(action, -5.0 - 1e-12);
  EXPECT_GE(b.state_of_charge(), 0.0);
}

TEST(ArbitrageBattery, ChargeBoundedByCapacity) {
  ArbitrageBattery b(1.5, 1.0, PriceValley());
  (void)b.Step(4, 0, 0);
  (void)b.Step(5, 0, 0);
  const double third = b.Step(6, 0, 0);
  EXPECT_NEAR(b.state_of_charge(), 1.5, 1e-12);
  EXPECT_LE(third, 0.5 + 1e-12);
}

TEST(ArbitrageBattery, NeutralBandBehavesGreedily) {
  std::vector<double> flat_with_band = PriceValley();
  flat_with_band[7] = 1.05;  // strictly between the thresholds
  ArbitrageBattery b(10, 2, flat_with_band);
  EXPECT_GT(b.Step(7, 1.0, 0.2), 0.0);   // surplus -> charge
  EXPECT_LT(b.Step(7, 0.0, 0.5), 0.0);   // deficit -> discharge
}

TEST(ArbitrageBattery, AggressivenessScalesActions) {
  ArbitrageConfig gentle;
  gentle.aggressiveness = 0.5;
  ArbitrageBattery full(10, 2, PriceValley());
  ArbitrageBattery half(10, 2, PriceValley(), gentle);
  EXPECT_NEAR(half.Step(5, 0, 0), 0.5 * full.Step(5, 0, 0), 1e-12);
}

TEST(ArbitrageBattery, NoBatteryNeverActs) {
  ArbitrageBattery b(0, 0, PriceValley());
  EXPECT_DOUBLE_EQ(b.Step(5, 1.0, 0.0), 0.0);
}

TEST(ArbitrageBattery, ArbitrageBeatsGreedyOnValleyDay) {
  // Revenue comparison over a valley-price day with a solar home:
  // selling surplus at window price, buying deficits at window price.
  const std::vector<double> prices = PriceValley(12);
  auto day_profit = [&](auto& battery, auto step) {
    double profit = 0;
    for (int w = 0; w < 12; ++w) {
      const double g = (w >= 4 && w < 8) ? 1.0 : 0.0;  // midday sun
      const double l = 0.2;
      const double b = step(battery, w, g, l);
      const double net = g - l - b;
      profit += prices[static_cast<size_t>(w)] * net;
    }
    return profit;
  };
  Battery greedy(3, 1);
  ArbitrageBattery smart(3, 1, prices);
  const double greedy_profit = day_profit(
      greedy, [](Battery& b, int, double g, double l) { return b.Step(g, l); });
  const double smart_profit =
      day_profit(smart, [](ArbitrageBattery& b, int w, double g, double l) {
        return b.Step(w, g, l);
      });
  EXPECT_GT(smart_profit, greedy_profit);
}

TEST(ArbitrageBatteryDeath, EmptyForecastAborts) {
  EXPECT_DEATH(ArbitrageBattery(1, 1, {}), "forecast");
}

TEST(ArbitrageBatteryDeath, WindowOutsideForecastAborts) {
  ArbitrageBattery b(1, 1, PriceValley(4));
  EXPECT_DEATH((void)b.Step(10, 0, 0), "forecast");
}

}  // namespace
}  // namespace pem::grid
