#include "grid/battery.h"

#include <gtest/gtest.h>

namespace pem::grid {
namespace {

TEST(Battery, NoBatteryNeverActs) {
  Battery b(0.0, 0.0);
  EXPECT_FALSE(b.installed());
  EXPECT_DOUBLE_EQ(b.Step(5.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(b.Step(0.0, 5.0), 0.0);
}

TEST(Battery, ChargesFromSurplusUpToRate) {
  Battery b(10.0, 0.5);
  EXPECT_DOUBLE_EQ(b.Step(2.0, 1.0), 0.5);  // surplus 1.0, rate-limited
  EXPECT_DOUBLE_EQ(b.state_of_charge(), 0.5);
}

TEST(Battery, ChargesOnlyAvailableSurplus) {
  Battery b(10.0, 5.0);
  EXPECT_DOUBLE_EQ(b.Step(1.3, 1.0), 0.3);  // surplus-limited
}

TEST(Battery, ChargeStopsAtCapacity) {
  Battery b(1.0, 5.0, 0.8);
  EXPECT_DOUBLE_EQ(b.Step(3.0, 0.0), 0.2);  // headroom-limited
  EXPECT_DOUBLE_EQ(b.state_of_charge(), 1.0);
  EXPECT_DOUBLE_EQ(b.Step(3.0, 0.0), 0.0);  // full
}

TEST(Battery, DischargesToCoverDeficit) {
  Battery b(10.0, 2.0, 5.0);
  EXPECT_DOUBLE_EQ(b.Step(0.0, 1.5), -1.5);  // deficit-limited
  EXPECT_DOUBLE_EQ(b.state_of_charge(), 3.5);
}

TEST(Battery, DischargeRateLimited) {
  Battery b(10.0, 1.0, 5.0);
  EXPECT_DOUBLE_EQ(b.Step(0.0, 3.0), -1.0);
}

TEST(Battery, DischargeStopsWhenEmpty) {
  Battery b(10.0, 5.0, 0.4);
  EXPECT_DOUBLE_EQ(b.Step(0.0, 2.0), -0.4);
  EXPECT_DOUBLE_EQ(b.state_of_charge(), 0.0);
  EXPECT_DOUBLE_EQ(b.Step(0.0, 2.0), 0.0);
}

TEST(Battery, BalancedWindowDoesNothing) {
  Battery b(10.0, 5.0, 5.0);
  EXPECT_DOUBLE_EQ(b.Step(2.0, 2.0), 0.0);
  EXPECT_DOUBLE_EQ(b.state_of_charge(), 5.0);
}

TEST(Battery, SocNeverLeavesBounds) {
  Battery b(2.0, 0.7);
  for (int i = 0; i < 100; ++i) {
    (void)b.Step((i % 3) * 1.0, (i % 5) * 0.5);
    EXPECT_GE(b.state_of_charge(), 0.0);
    EXPECT_LE(b.state_of_charge(), 2.0);
  }
}

TEST(Battery, EnergyConservationOverCycle) {
  Battery b(5.0, 5.0);
  double net_in = 0.0;
  net_in += b.Step(4.0, 0.0);   // charge
  net_in += b.Step(0.0, 2.0);   // discharge
  net_in += b.Step(3.0, 1.0);   // charge again
  EXPECT_NEAR(b.state_of_charge(), net_in, 1e-12);
}

TEST(BatteryDeath, NegativeCapacityAborts) {
  EXPECT_DEATH(Battery(-1.0, 1.0), "capacity");
}

TEST(BatteryDeath, InitialSocAboveCapacityAborts) {
  EXPECT_DEATH(Battery(1.0, 1.0, 2.0), "SoC");
}

}  // namespace
}  // namespace pem::grid
