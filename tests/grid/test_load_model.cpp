#include "grid/load_model.h"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

namespace pem::grid {
namespace {

std::vector<double> FullDay(const LoadConfig& cfg, uint64_t seed) {
  SimRandom rng(seed);
  LoadModel model(cfg, rng);
  std::vector<double> out(static_cast<size_t>(cfg.windows_per_day));
  for (int w = 0; w < cfg.windows_per_day; ++w) {
    out[static_cast<size_t>(w)] = model.LoadAt(w);
  }
  return out;
}

TEST(LoadModel, LoadIsStrictlyPositive) {
  for (double l : FullDay(LoadConfig{}, 1)) EXPECT_GT(l, 0.0);
}

TEST(LoadModel, EveningPeakExceedsMidday) {
  const std::vector<double> day = FullDay(LoadConfig{}, 2);
  auto avg = [&](size_t lo, size_t hi) {
    return std::accumulate(day.begin() + static_cast<ptrdiff_t>(lo),
                           day.begin() + static_cast<ptrdiff_t>(hi), 0.0) /
           static_cast<double>(hi - lo);
  };
  const double evening = avg(630, 700);  // ~17:30-18:40
  const double midday = avg(330, 420);   // 12:30-14:00
  EXPECT_GT(evening, 1.4 * midday);
}

TEST(LoadModel, MorningHumpVisible) {
  const std::vector<double> day = FullDay(LoadConfig{}, 3);
  auto avg = [&](size_t lo, size_t hi) {
    return std::accumulate(day.begin() + static_cast<ptrdiff_t>(lo),
                           day.begin() + static_cast<ptrdiff_t>(hi), 0.0) /
           static_cast<double>(hi - lo);
  };
  const double morning = avg(20, 90);   // ~7:20-8:30
  const double midday = avg(330, 420);
  EXPECT_GT(morning, midday);
}

TEST(LoadModel, DeterministicForSeed) {
  EXPECT_EQ(FullDay(LoadConfig{}, 5), FullDay(LoadConfig{}, 5));
  EXPECT_NE(FullDay(LoadConfig{}, 5), FullDay(LoadConfig{}, 6));
}

TEST(LoadModel, DailyConsumptionPlausible) {
  // Typical household: 5-25 kWh over the 12 daytime hours.
  const std::vector<double> day = FullDay(LoadConfig{}, 7);
  const double total = std::accumulate(day.begin(), day.end(), 0.0);
  EXPECT_GT(total, 3.0);
  EXPECT_LT(total, 30.0);
}

TEST(LoadModel, NoiseFractionZeroIsSmooth) {
  LoadConfig cfg;
  cfg.noise_fraction = 0.0;
  const std::vector<double> a = FullDay(cfg, 8);
  const std::vector<double> b = FullDay(cfg, 9);
  for (size_t w = 0; w < a.size(); ++w) EXPECT_DOUBLE_EQ(a[w], b[w]);
}

TEST(LoadModelDeath, WindowOutOfRangeAborts) {
  SimRandom rng(1);
  LoadModel model(LoadConfig{}, rng);
  EXPECT_DEATH((void)model.LoadAt(999), "window");
}

}  // namespace
}  // namespace pem::grid
