// Adversarial + churn scenario wall.
//
// §VI's security argument is only worth reproducing if an ACTIVE
// cheater is actually caught — on every backend, with the honest
// survivors unharmed.  This suite drives the protocol/audit.h cheat
// detection engine and the dynamic-membership machinery through the
// full transport matrix:
//
//   * every scripted cheat class (mis-encrypted contribution,
//     commitment mismatch, replayed contribution, forged byte count)
//     is detected and NAMED — identical structured ProtocolFault — on
//     serial / concurrent / socket / process / tcp / shm;
//   * the window still completes for the honest survivors: the cheater
//     is excluded mid-window and the coalitions re-form without it;
//   * honest agents' wire bytes are byte-identical to a cheat-free run
//     (the audit draws all randomness from side streams, never the
//     protocol RNG — a cheater cannot perturb a bystander's traffic);
//   * key equivocation and forged window reports — the two cheats that
//     cannot be survived by exclusion — end the window with a
//     ProtocolError naming the cheater, on the in-process and forked
//     backends alike;
//   * membership churn (leaves, rejoins) re-forms rings
//     deterministically over a full simulated day, with the per-window
//     ledger still balancing on every backend;
//   * no forked run leaves a zombie behind, even when it ends in a
//     detected cheat.
#include <gtest/gtest.h>
#include <sys/wait.h>

#include <algorithm>
#include <cerrno>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/simulation.h"
#include "net/process_transport.h"
#include "net/shm_transport.h"
#include "net/tcp_transport.h"
#include "net/transport.h"
#include "protocol/agent_driver.h"
#include "protocol/audit.h"
#include "protocol/key_directory.h"
#include "protocol/pem_protocol.h"

namespace pem {
namespace {

using protocol::CheatClass;

// Same fixed six-agent market the transcript-parity wall uses; the
// g/l values pin the roles, so the tests can name a cheater that is
// guaranteed to be a market participant.  Sellers: 0, 1, 5; buyers:
// 2, 3, 4.
market::AgentWindowInput Agent(double g, double l, double k = 1.0) {
  market::AgentWindowInput in;
  in.params.preference_k = k;
  in.params.battery_epsilon = 0.9;
  in.state.generation_kwh = g;
  in.state.load_kwh = l;
  return in;
}

const std::vector<market::AgentWindowInput> kMarket = {
    Agent(1.7, 0.3, 0.83), Agent(0.9, 0.2, 1.21), Agent(0.0, 1.4),
    Agent(0.1, 0.8),       Agent(0.0, 0.6),       Agent(2.2, 0.4, 1.05),
};

constexpr net::AgentId kAuditor = 0;  // seller; pinned by the tests
constexpr net::AgentId kCheater = 2;  // buyer; scripted to misbehave

// Every forked test ends with this: a supervisor that shut down (or
// died trying) must have reaped every child it ever forked.
void ExpectNoZombies() {
  int status = 0;
  errno = 0;
  EXPECT_EQ(waitpid(-1, &status, WNOHANG), -1);
  EXPECT_EQ(errno, ECHILD);
}

protocol::PemConfig AuditedConfig(protocol::CheatPlan cheat = {}) {
  protocol::PemConfig cfg;
  cfg.key_bits = 128;
  cfg.audit.enabled = true;
  cfg.audit.fixed_auditor = kAuditor;
  cfg.cheat = cheat;
  return cfg;
}

struct AdvRun {
  std::vector<net::Message> messages;
  protocol::AuditOutcome audit;
  market::MarketType type = market::MarketType::kNoMarket;
  int num_sellers = 0;
  int num_buyers = 0;
  double price = 0.0;
  uint64_t bus_bytes = 0;
};

// One audited window on an in-process backend.  `inactive` marks
// parties that left before the window (the churned-out clean-run
// baseline the byte-identity rows compare against).
AdvRun RunAuditedWindow(const net::ExecutionPolicy& policy,
                        const protocol::PemConfig& cfg, uint64_t seed = 42,
                        const std::vector<net::AgentId>& inactive = {}) {
  AdvRun run;
  std::unique_ptr<net::Transport> bus = net::MakeTransport(
      policy.transport_kind, static_cast<int>(kMarket.size()));
  std::vector<net::Endpoint> eps = bus->endpoints();
  bus->SetObserver(
      [&run](const net::Message& m) { run.messages.push_back(m); });
  crypto::DeterministicRng rng(seed);
  protocol::KeyDirectory directory;
  std::vector<protocol::Party> parties;
  for (size_t i = 0; i < kMarket.size(); ++i) {
    parties.emplace_back(static_cast<net::AgentId>(i), kMarket[i].params);
    for (net::AgentId a : inactive) {
      if (a == parties.back().id()) parties.back().SetActive(false);
    }
    parties.back().BeginWindow(kMarket[i].state, cfg.nonce_bound, rng);
  }
  protocol::ProtocolContext ctx{eps,    rng, cfg, nullptr,
                                policy, &directory};
  const protocol::PemWindowResult result =
      protocol::RunPemWindow(ctx, parties, /*window=*/0);
  run.audit = result.audit;
  run.type = result.type;
  for (const protocol::Party& p : parties) {
    if (p.role() == grid::Role::kSeller) ++run.num_sellers;
    if (p.role() == grid::Role::kBuyer) ++run.num_buyers;
  }
  run.price = result.price;
  run.bus_bytes = result.bus_bytes;
  return run;
}

// The same audited window with one forked OS process per agent.  The
// cheat plan rides in the fork-copied config, so every child replays
// the identical misbehavior and derives the identical verdict — which
// CollectWindowReports then cross-checks bit for bit.
AdvRun RunAuditedWindowForked(net::TransportKind kind,
                              const protocol::PemConfig& cfg,
                              uint64_t seed = 42) {
  AdvRun run;
  const net::ExecutionPolicy policy{kind, 1};
  crypto::DeterministicRng rng(seed);
  protocol::KeyDirectory directory;
  std::vector<protocol::Party> parties;
  for (size_t i = 0; i < kMarket.size(); ++i) {
    parties.emplace_back(static_cast<net::AgentId>(i), kMarket[i].params);
  }

  net::AgentSupervisor::ChildMain child_main =
      [&cfg, &policy, &rng, &parties, &directory](
          net::AgentId self, net::Transport& wire,
          net::ControlChannel& ctl) -> int {
    std::vector<net::Endpoint> eps = wire.endpoints();
    protocol::ProtocolContext ctx{eps,    rng, cfg, nullptr,
                                  policy, &directory};
    protocol::AgentDriver::Callbacks callbacks;
    callbacks.begin_window = [&](int) {
      for (size_t i = 0; i < kMarket.size(); ++i) {
        parties[i].BeginWindow(kMarket[i].state, cfg.nonce_bound, rng);
      }
    };
    protocol::AgentDriver driver(self, ctx, parties, callbacks);
    driver.Serve(ctl);
    return 0;
  };

  std::unique_ptr<net::AgentSupervisor> owner;
  const int n = static_cast<int>(kMarket.size());
  if (kind == net::TransportKind::kTcp) {
    owner = std::make_unique<net::TcpTransport>(n, child_main,
                                                net::TcpTransport::Options{});
  } else if (kind == net::TransportKind::kShm) {
    owner = std::make_unique<net::ShmTransport>(n, child_main,
                                                net::ShmTransport::Options{});
  } else {
    owner = std::make_unique<net::ProcessTransport>(n, child_main);
  }
  std::vector<net::TrafficStats> before;
  for (net::AgentId a = 0; a < owner->num_agents(); ++a) {
    before.push_back(owner->stats(a));
  }
  owner->SetObserver(
      [&run](const net::Message& m) { run.messages.push_back(m); });
  net::ByteWriter cmd;
  cmd.U32(0);
  owner->CommandAll(net::kCtlCmdRun, cmd.Take());
  const protocol::WindowReport report =
      protocol::CollectWindowReports(*owner, before, 0);
  owner->SetObserver(nullptr);
  owner->Shutdown();
  owner.reset();
  ExpectNoZombies();

  run.audit = report.audit;
  run.type = report.type;
  run.num_sellers = report.num_sellers;
  run.num_buyers = report.num_buyers;
  run.price = report.price;
  run.bus_bytes = report.bus_bytes;
  return run;
}

// Runs a forked audited window that is EXPECTED to die with a
// structured error (equivocation, forged report).  Returns the error
// text; cleans up the supervisor and asserts no zombies either way.
std::string RunForkedWindowExpectingError(net::TransportKind kind,
                                          const protocol::PemConfig& cfg) {
  std::string what;
  try {
    (void)RunAuditedWindowForked(kind, cfg);
    ADD_FAILURE() << "forked window unexpectedly succeeded";
  } catch (const std::exception& e) {
    what = e.what();
  }
  ExpectNoZombies();
  return what;
}

void ExpectSingleFault(const AdvRun& run, CheatClass cheat,
                       const char* backend) {
  EXPECT_TRUE(run.audit.audited) << backend;
  EXPECT_EQ(run.audit.auditor, kAuditor) << backend;
  ASSERT_EQ(run.audit.faults.size(), 1u) << backend;
  const protocol::ProtocolFault& f = run.audit.faults[0];
  EXPECT_EQ(f.cheater, kCheater) << backend;
  EXPECT_EQ(f.cheat, cheat) << backend;
  EXPECT_EQ(f.window, 0) << backend;
  EXPECT_FALSE(f.detail.empty()) << backend;
  // The honest survivors still complete the window: the cheating buyer
  // is excluded mid-window and the market forms without it.
  EXPECT_NE(run.type, market::MarketType::kNoMarket) << backend;
  EXPECT_EQ(run.num_sellers, 3) << backend;
  EXPECT_EQ(run.num_buyers, 2) << backend;
  EXPECT_GT(run.bus_bytes, 0u) << backend;
}

// Every cheat class, every backend: detection is a deterministic
// function of the transcript, so the SAME named fault must come out of
// all six transports.
void ExpectCheatCaughtEverywhere(CheatClass cheat) {
  const protocol::PemConfig cfg = AuditedConfig({kCheater, cheat, 0});
  ExpectSingleFault(RunAuditedWindow(net::ExecutionPolicy::Serial(), cfg),
                    cheat, "serial");
  ExpectSingleFault(RunAuditedWindow(net::ExecutionPolicy::Parallel(4), cfg),
                    cheat, "concurrent");
  ExpectSingleFault(RunAuditedWindow(net::ExecutionPolicy::Socket(), cfg),
                    cheat, "socket");
  ExpectSingleFault(RunAuditedWindowForked(net::TransportKind::kProcess, cfg),
                    cheat, "process");
  ExpectSingleFault(RunAuditedWindowForked(net::TransportKind::kTcp, cfg),
                    cheat, "tcp");
  ExpectSingleFault(RunAuditedWindowForked(net::TransportKind::kShm, cfg),
                    cheat, "shm");
}

TEST(AdversarialWall, MisEncryptedContributionCaughtOnAllBackends) {
  ExpectCheatCaughtEverywhere(CheatClass::kMisEncryptedContribution);
}

TEST(AdversarialWall, CommitmentMismatchCaughtOnAllBackends) {
  ExpectCheatCaughtEverywhere(CheatClass::kCommitmentMismatch);
}

TEST(AdversarialWall, ReplayedContributionCaughtOnAllBackends) {
  ExpectCheatCaughtEverywhere(CheatClass::kReplayedFrame);
}

TEST(AdversarialWall, ForgedByteCountCaughtOnAllBackends) {
  ExpectCheatCaughtEverywhere(CheatClass::kForgedByteCount);
}

TEST(AdversarialWall, CleanWindowAuditsWithoutFaults) {
  const AdvRun run =
      RunAuditedWindow(net::ExecutionPolicy::Serial(), AuditedConfig());
  EXPECT_TRUE(run.audit.audited);
  EXPECT_EQ(run.audit.auditor, kAuditor);
  EXPECT_TRUE(run.audit.faults.empty());
  EXPECT_EQ(run.num_sellers, 3);
  EXPECT_EQ(run.num_buyers, 3);
}

TEST(AdversarialWall, AuditDisabledMeansNoAuditTraffic) {
  protocol::PemConfig off = AuditedConfig();
  off.audit.enabled = false;
  const AdvRun run = RunAuditedWindow(net::ExecutionPolicy::Serial(), off);
  EXPECT_FALSE(run.audit.audited);
  EXPECT_EQ(run.audit.auditor, -1);
  for (const net::Message& m : run.messages) {
    EXPECT_NE(m.type, protocol::kMsgAuditContribution);
    EXPECT_NE(m.type, protocol::kMsgAuditVerdict);
  }
}

// The §VI claim with teeth: the audit draws all randomness from side
// streams, so an honest bystander's wire bytes are IDENTICAL whether
// the cheater misbehaved (and got excluded mid-window) or had never
// been in the roster at all.  Only the cheater's own frames and the
// auditor's (its demand count and verdict bytes legitimately reflect
// the roster) may differ.
TEST(AdversarialWall, HonestTranscriptsByteIdenticalUnderEveryCheat) {
  const std::vector<net::AgentId> churned = {kCheater};
  const AdvRun clean = RunAuditedWindow(net::ExecutionPolicy::Serial(),
                                        AuditedConfig(), 42, churned);
  for (CheatClass cheat :
       {CheatClass::kMisEncryptedContribution, CheatClass::kCommitmentMismatch,
        CheatClass::kReplayedFrame, CheatClass::kForgedByteCount}) {
    const AdvRun cheated = RunAuditedWindow(
        net::ExecutionPolicy::Serial(), AuditedConfig({kCheater, cheat, 0}));
    std::map<net::AgentId, std::vector<const net::Message*>> a, b;
    for (const net::Message& m : clean.messages) {
      if (m.from != kCheater && m.from != kAuditor) a[m.from].push_back(&m);
    }
    for (const net::Message& m : cheated.messages) {
      if (m.from != kCheater && m.from != kAuditor) b[m.from].push_back(&m);
    }
    ASSERT_EQ(b.size(), a.size());
    for (const auto& [sender, seq] : a) {
      const auto it = b.find(sender);
      ASSERT_NE(it, b.end()) << "sender " << sender << " missing";
      ASSERT_EQ(it->second.size(), seq.size())
          << "honest sender " << sender << " message count changed under "
          << CheatClassName(cheat);
      for (size_t i = 0; i < seq.size(); ++i) {
        EXPECT_TRUE(*it->second[i] == *seq[i])
            << "honest sender " << sender << " byte-diverges at message "
            << i << " under " << CheatClassName(cheat);
      }
    }
    // Market outcome also matches the cheater-never-joined baseline:
    // exclusion leaves exactly the same survivors trading.
    EXPECT_EQ(cheated.type, clean.type);
    EXPECT_DOUBLE_EQ(cheated.price, clean.price);
    EXPECT_EQ(cheated.num_sellers, clean.num_sellers);
    EXPECT_EQ(cheated.num_buyers, clean.num_buyers);
  }
}

TEST(AdversarialWall, AuditCoinFlipIsSeededAndSparse) {
  // audit_one_in = 3: over twelve windows some are audited and some
  // are not, and the selection is a pure function of (seed, window).
  protocol::PemConfig cfg = AuditedConfig();
  cfg.audit.audit_one_in = 3;
  std::vector<bool> audited;
  for (int w = 0; w < 12; ++w) {
    crypto::DeterministicRng rng(42);
    protocol::KeyDirectory directory;
    std::unique_ptr<net::Transport> bus = net::MakeTransport(
        net::TransportKind::kSerialBus, static_cast<int>(kMarket.size()));
    std::vector<net::Endpoint> eps = bus->endpoints();
    std::vector<protocol::Party> parties;
    for (size_t i = 0; i < kMarket.size(); ++i) {
      parties.emplace_back(static_cast<net::AgentId>(i), kMarket[i].params);
      parties.back().BeginWindow(kMarket[i].state, cfg.nonce_bound, rng);
    }
    protocol::ProtocolContext ctx{eps, rng, cfg, nullptr,
                                  net::ExecutionPolicy::Serial(), &directory};
    audited.push_back(protocol::RunPemWindow(ctx, parties, w).audit.audited);
  }
  const size_t hits =
      static_cast<size_t>(std::count(audited.begin(), audited.end(), true));
  EXPECT_GT(hits, 0u);
  EXPECT_LT(hits, audited.size());
}

// --- key equivocation (satellite: directory over the wire) ------------

TEST(AdversarialWall, EquivocationNamedInProcess) {
  const protocol::PemConfig cfg =
      AuditedConfig({kAuditor, CheatClass::kKeyEquivocation, 0});
  for (const net::ExecutionPolicy& policy :
       {net::ExecutionPolicy::Serial(), net::ExecutionPolicy::Parallel(4)}) {
    try {
      (void)RunAuditedWindow(policy, cfg);
      FAIL() << "equivocation not detected";
    } catch (const protocol::ProtocolError& e) {
      EXPECT_EQ(e.fault().cheater, kAuditor);
      EXPECT_EQ(e.fault().cheat, CheatClass::kKeyEquivocation);
      EXPECT_EQ(e.fault().window, 0);
    }
  }
}

TEST(AdversarialWall, EquivocationNamedOverForkedBackends) {
  // Every child replays the doctored broadcast from the fork-copied
  // cheat plan, detects the conflict in its own directory replica, and
  // reports the structured error; the parent surfaces the first one.
  const protocol::PemConfig cfg =
      AuditedConfig({kAuditor, CheatClass::kKeyEquivocation, 0});
  for (net::TransportKind kind :
       {net::TransportKind::kProcess, net::TransportKind::kTcp,
        net::TransportKind::kShm}) {
    const std::string what = RunForkedWindowExpectingError(kind, cfg);
    EXPECT_NE(what.find("protocol_violation"), std::string::npos) << what;
    EXPECT_NE(what.find("key_equivocation"), std::string::npos) << what;
    EXPECT_NE(what.find("agent 0"), std::string::npos) << what;
  }
}

// --- forged window reports (parent-side cross-check) ------------------

TEST(AdversarialWall, ForgedReportCaughtByParentOnEveryForkedBackend) {
  // The cheater's child inflates the byte count in its own window
  // report; the parent's wire ledger knows better.
  const protocol::PemConfig cfg =
      AuditedConfig({kCheater, CheatClass::kForgedReport, 0});
  for (net::TransportKind kind :
       {net::TransportKind::kProcess, net::TransportKind::kTcp,
        net::TransportKind::kShm}) {
    try {
      (void)RunAuditedWindowForked(kind, cfg);
      FAIL() << "forged report not detected";
    } catch (const protocol::ProtocolError& e) {
      EXPECT_EQ(e.fault().cheater, kCheater);
      EXPECT_EQ(e.fault().cheat, CheatClass::kForgedReport);
    }
    ExpectNoZombies();
  }
}

TEST(AdversarialWall, StaleReportEchoRejectedOnEveryForkedBackend) {
  // The cheater's child answers the Run command with a report stamped
  // for the PREVIOUS window.  With batched dispatch the parent keys
  // collection on the echoed window id, so a stale echo must be
  // rejected as a structured fault BEFORE the cross-child agreement or
  // byte cross-checks get a chance to compare apples to oranges.
  const protocol::PemConfig cfg =
      AuditedConfig({kCheater, CheatClass::kStaleReport, 0});
  for (net::TransportKind kind :
       {net::TransportKind::kProcess, net::TransportKind::kTcp,
        net::TransportKind::kShm}) {
    try {
      (void)RunAuditedWindowForked(kind, cfg);
      FAIL() << "stale report echo not detected";
    } catch (const protocol::ProtocolError& e) {
      EXPECT_EQ(e.fault().cheater, kCheater);
      EXPECT_EQ(e.fault().cheat, CheatClass::kStaleReport);
      EXPECT_EQ(e.fault().window, 0);
      EXPECT_NE(std::string(e.what()).find("stale_report"),
                std::string::npos)
          << e.what();
    }
    ExpectNoZombies();
  }
}

// --- membership churn over a full simulated day -----------------------

grid::CommunityTrace ChurnTrace() {
  grid::TraceConfig tc;
  tc.num_homes = 10;
  tc.windows_per_day = 6;
  tc.seed = 13;
  return grid::GenerateCommunityTrace(tc);
}

core::SimulationConfig ChurnConfig(const net::ExecutionPolicy& policy) {
  core::SimulationConfig cfg;
  cfg.engine = core::Engine::kCrypto;
  cfg.pem.key_bits = 128;
  cfg.pem.audit.enabled = true;  // churn + audit together, all day
  cfg.policy = policy;
  // Agent 3 leaves before window 2 and rejoins before window 4; agent
  // 7 leaves before window 3 and stays out.
  cfg.churn = {{2, 3, false}, {4, 3, true}, {3, 7, false}};
  return cfg;
}

TEST(AdversarialWall, ChurnDayIsDeterministicAndRostersShrink) {
  const grid::CommunityTrace trace = ChurnTrace();
  const core::SimulationConfig cfg =
      ChurnConfig(net::ExecutionPolicy::Serial());
  const core::SimulationResult a = core::RunSimulation(trace, cfg);
  const core::SimulationResult b = core::RunSimulation(trace, cfg);
  ASSERT_EQ(a.windows.size(), 6u);
  ASSERT_EQ(b.windows.size(), a.windows.size());
  for (size_t w = 0; w < a.windows.size(); ++w) {
    EXPECT_EQ(b.windows[w].bus_bytes, a.windows[w].bus_bytes) << w;
    EXPECT_DOUBLE_EQ(b.windows[w].price, a.windows[w].price) << w;
    EXPECT_TRUE(b.windows[w].audit == a.windows[w].audit) << w;
    // The roster bound: every trading seat is an ACTIVE agent.
    int active = 10;
    if (w >= 2 && w < 4) --active;  // agent 3 out
    if (w >= 3) --active;           // agent 7 out
    EXPECT_LE(a.windows[w].num_sellers + a.windows[w].num_buyers, active)
        << w;
  }
}

struct ChurnRun {
  std::vector<net::Message> messages;
  core::SimulationResult result;
};

ChurnRun RunChurnDay(const net::ExecutionPolicy& policy) {
  ChurnRun run;
  core::SimulationConfig cfg = ChurnConfig(policy);
  cfg.bus_observer = [&run](const net::Message& m) {
    run.messages.push_back(m);
  };
  run.result = core::RunSimulation(ChurnTrace(), cfg);
  return run;
}

void ExpectChurnParity(const ChurnRun& serial, const ChurnRun& other,
                       bool strict_order) {
  ASSERT_EQ(other.result.windows.size(), serial.result.windows.size());
  for (size_t w = 0; w < serial.result.windows.size(); ++w) {
    const core::WindowRecord& a = serial.result.windows[w];
    const core::WindowRecord& b = other.result.windows[w];
    EXPECT_EQ(b.type, a.type) << w;
    EXPECT_DOUBLE_EQ(b.price, a.price) << w;
    EXPECT_EQ(b.bus_bytes, a.bus_bytes) << w;
    EXPECT_EQ(b.num_sellers, a.num_sellers) << w;
    EXPECT_EQ(b.num_buyers, a.num_buyers) << w;
    EXPECT_TRUE(b.audit == a.audit) << w;
  }
  EXPECT_EQ(other.result.total_bus_bytes, serial.result.total_bus_bytes);
  ASSERT_EQ(other.messages.size(), serial.messages.size());
  if (strict_order) {
    for (size_t i = 0; i < serial.messages.size(); ++i) {
      EXPECT_TRUE(other.messages[i] == serial.messages[i])
          << "transcript diverges at message " << i;
    }
  } else {
    std::map<net::AgentId, std::vector<const net::Message*>> a, b;
    for (const net::Message& m : serial.messages) a[m.from].push_back(&m);
    for (const net::Message& m : other.messages) b[m.from].push_back(&m);
    ASSERT_EQ(b.size(), a.size());
    for (const auto& [sender, seq] : a) {
      const auto it = b.find(sender);
      ASSERT_NE(it, b.end()) << "sender " << sender << " missing";
      ASSERT_EQ(it->second.size(), seq.size()) << "sender " << sender;
      for (size_t i = 0; i < seq.size(); ++i) {
        EXPECT_TRUE(*it->second[i] == *seq[i])
            << "sender " << sender << " diverges at its message " << i;
      }
    }
  }
  EXPECT_FALSE(serial.messages.empty());
}

TEST(AdversarialWall, ChurnDayMatchesAcrossInProcessBackends) {
  const ChurnRun serial = RunChurnDay(net::ExecutionPolicy::Serial());
  ExpectChurnParity(serial, RunChurnDay(net::ExecutionPolicy::Parallel(4)),
                    /*strict_order=*/true);
  ExpectChurnParity(serial, RunChurnDay(net::ExecutionPolicy::Socket()),
                    /*strict_order=*/true);
}

TEST(AdversarialWall, ChurnDayMatchesAcrossForkedBackends) {
  // Every child replays the churn schedule on its own roster replica,
  // so leaves and rejoins re-form the rings identically in all n
  // processes — and the per-window ledger cross-check inside
  // CollectWindowReports keeps passing throughout.
  const ChurnRun serial = RunChurnDay(net::ExecutionPolicy::Serial());
  ExpectChurnParity(serial, RunChurnDay(net::ExecutionPolicy::Process()),
                    /*strict_order=*/false);
  ExpectNoZombies();
  ExpectChurnParity(serial, RunChurnDay(net::ExecutionPolicy::Tcp()),
                    /*strict_order=*/false);
  ExpectNoZombies();
  ExpectChurnParity(serial, RunChurnDay(net::ExecutionPolicy::Shm()),
                    /*strict_order=*/false);
  ExpectNoZombies();
}

// --- cheat + churn through RunSimulation ------------------------------

TEST(AdversarialWall, SimulationSurfacesEquivocationOnSerialAndProcess) {
  // Probe a clean audited day for the first audited window and its
  // drawn auditor, then script that auditor to equivocate there: the
  // day must END with the structured fault, in-process and forked
  // alike.
  const grid::CommunityTrace trace = ChurnTrace();
  core::SimulationConfig clean;
  clean.engine = core::Engine::kCrypto;
  clean.pem.key_bits = 128;
  clean.pem.audit.enabled = true;
  const core::SimulationResult probe = core::RunSimulation(trace, clean);
  int cheat_window = -1;
  net::AgentId drawn_auditor = -1;
  for (const core::WindowRecord& rec : probe.windows) {
    if (rec.audit.audited) {
      cheat_window = rec.window;
      drawn_auditor = rec.audit.auditor;
      break;
    }
  }
  ASSERT_GE(cheat_window, 0) << "no window audited in the probe day";

  core::SimulationConfig cheat = clean;
  cheat.pem.cheat = {drawn_auditor, CheatClass::kKeyEquivocation,
                     cheat_window};
  try {
    (void)core::RunSimulation(trace, cheat);
    FAIL() << "equivocation not detected";
  } catch (const protocol::ProtocolError& e) {
    EXPECT_EQ(e.fault().cheater, drawn_auditor);
    EXPECT_EQ(e.fault().cheat, CheatClass::kKeyEquivocation);
    EXPECT_EQ(e.fault().window, cheat_window);
  }

  cheat.policy = net::ExecutionPolicy::Process();
  try {
    (void)core::RunSimulation(trace, cheat);
    FAIL() << "equivocation not detected over fork";
  } catch (const net::TransportError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("key_equivocation"), std::string::npos) << what;
  }
  ExpectNoZombies();
}

TEST(AdversarialWall, SimulationRecordsAuditOutcomesPerWindow) {
  const grid::CommunityTrace trace = ChurnTrace();
  core::SimulationConfig cfg;
  cfg.engine = core::Engine::kCrypto;
  cfg.pem.key_bits = 128;
  cfg.pem.audit.enabled = true;
  const core::SimulationResult r = core::RunSimulation(trace, cfg);
  size_t audited = 0;
  for (const core::WindowRecord& rec : r.windows) {
    if (rec.audit.audited) {
      ++audited;
      EXPECT_GE(rec.audit.auditor, 0) << rec.window;
      EXPECT_TRUE(rec.audit.faults.empty()) << rec.window;
    }
  }
  EXPECT_GT(audited, 0u);
}

}  // namespace
}  // namespace pem
